// Covertchannel: the §2.2 attack, step by step. user_B holds the update
// privilege on salaries but may not read them. Under SQL-style semantics
// (the paper's earlier model [10], package internal/baseline), an UPDATE
// with a WHERE clause over the hidden data leaks through the "n rows
// updated" count. Under this paper's model the same probe is evaluated on
// user_B's view and learns nothing.
//
//	go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"

	"securexml/internal/access"
	"securexml/internal/baseline"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

const employees = `<employees>
  <employee><name>ann</name><salary>4000</salary></employee>
  <employee><name>bob</name><salary>3500</salary></employee>
  <employee><name>cid</name><salary>2000</salary></employee>
</employees>`

func env() (*xmltree.Document, *subject.Hierarchy, *policy.Policy, error) {
	d, err := xmltree.ParseString(employees, xmltree.ParseOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	h := subject.NewHierarchy()
	if err := h.AddUser("user_B"); err != nil {
		return nil, nil, nil, err
	}
	p := policy.New()
	// The §2.2 grant: sole update privilege on salaries, no read below the
	// root ("user_B is not permitted to see user_A's employee table").
	if err := p.Grant(h, policy.Update, "//salary/node()", "user_B"); err != nil {
		return nil, nil, nil, err
	}
	if err := p.Grant(h, policy.Read, "/employees", "user_B"); err != nil {
		return nil, nil, nil, err
	}
	return d, h, p, nil
}

func main() {
	fmt.Println("The database (which user_B may NOT read):")
	fmt.Println(employees)

	// The probe: "UPDATE employee SET salary = 9999 WHERE salary > 3000".
	probe := &xupdate.Op{
		Kind:     xupdate.Update,
		Select:   "//employee[salary > 3000]/salary",
		NewValue: "9999",
	}
	fmt.Printf("\nuser_B's probe: %s select=%q\n", probe.Kind, probe.Select)

	// --- SQL / model [10]: writes evaluated on the source. ---
	d, h, p, err := env()
	if err != nil {
		log.Fatal(err)
	}
	res, err := baseline.Execute(d, h, p, "user_B", probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBaseline (SQL semantics): %d rows updated\n", res.Applied)
	fmt.Printf("  -> user_B now knows %d employees earn more than 3000,\n", res.Applied)
	fmt.Println("     and can binary-search exact salaries with more probes.")

	// Demonstrate the binary search against the hidden maximum salary.
	lo, hi := 0, 8192
	for lo+1 < hi {
		mid := (lo + hi) / 2
		d2, h2, p2, err := env()
		if err != nil {
			log.Fatal(err)
		}
		r, err := baseline.Execute(d2, h2, p2, "user_B", &xupdate.Op{
			Kind:     xupdate.Update,
			Select:   fmt.Sprintf("//employee[salary > %d]/salary", mid),
			NewValue: "0",
		})
		if err != nil {
			log.Fatal(err)
		}
		if r.Applied > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	fmt.Printf("  -> %d probes later: the top salary is exactly %d.\n", 13, hi)

	// --- This paper's model: writes evaluated on the view. ---
	d3, h3, p3, err := env()
	if err != nil {
		log.Fatal(err)
	}
	sres, v, err := access.Execute(d3, h3, p3, "user_B", probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThis paper's model: %d rows updated\n", sres.Applied)
	fmt.Println("  user_B's view, on which the probe was evaluated:")
	fmt.Printf("  %s\n", v.Doc.CompactXML())
	fmt.Println("  -> the salaries are simply not there; every probe answers 0.")
}
