// Quickstart: build a secure XML database, declare subjects, write a
// policy, and watch two users see two different databases.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"securexml/internal/core"
	"securexml/internal/policy"
	"securexml/internal/xupdate"
)

func main() {
	db := core.New()

	// 1. Load a document.
	if err := db.LoadXMLString(`
		<notes>
		  <note author="ann"><body>public standup summary</body></note>
		  <note author="bob"><body>secret performance review</body></note>
		</notes>`); err != nil {
		log.Fatal(err)
	}

	// 2. Declare subjects: a role and two users.
	for _, step := range []error{
		db.AddRole("team"),
		db.AddUser("ann", "team"),
		db.AddUser("bob", "team"),
	} {
		if step != nil {
			log.Fatal(step)
		}
	}

	// 3. Write the policy. Later rules override earlier ones (the paper's
	// timestamp priorities): the team reads everything, then note bodies
	// not authored by the session user are pulled back to position-only.
	// Attribute nodes are not on the descendant axis (XPath 1.0), so they
	// get their own grant.
	for _, step := range []error{
		db.Grant(policy.Read, "/descendant-or-self::node()", "team"),
		db.Grant(policy.Read, "//@* | //@*/node()", "team"),
		db.Revoke(policy.Read, "//note[@author != $USER]/body/node()", "team"),
		db.Grant(policy.Position, "//note[@author != $USER]/body/node()", "team"),
		db.Grant(policy.Update, "//note[@author = $USER]/body/node()", "team"),
	} {
		if step != nil {
			log.Fatal(step)
		}
	}

	// 4. Each user sees their own view.
	for _, user := range []string{"ann", "bob"} {
		s, err := db.Session(user)
		if err != nil {
			log.Fatal(err)
		}
		xml, err := s.ViewXML()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- view for %s ---\n%s\n", user, xml)
	}

	// 5. Writes are evaluated on the view: ann can update her note but her
	// probe into bob's body selects only a RESTRICTED placeholder she
	// cannot modify.
	ann, err := db.Session("ann")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ann.Update(&xupdate.Op{
		Kind: xupdate.Update, Select: "//note[@author = 'ann']/body", NewValue: "updated!",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ann updates her note:   selected=%d applied=%d\n", res.Selected, res.Applied)

	res, err = ann.Update(&xupdate.Op{
		Kind: xupdate.Update, Select: "//note[@author = 'bob']/body", NewValue: "defaced!",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ann attacks bob's note: selected=%d applied=%d (skipped: %d)\n",
		res.Selected, res.Applied, len(res.Skipped))
}
