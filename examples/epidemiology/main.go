// Epidemiology: the use case that motivates the paper's position privilege
// (§2.1: "s is permitted to read illnesses, most probably for statistical
// purpose, but she is forbidden to see patients' names"). A researcher runs
// aggregate queries over a 200-patient hospital in which every patient name
// is RESTRICTED — full statistics, zero identities — and the view-evaluated
// write semantics keep even her *probes* blind.
//
//	go run ./examples/epidemiology
package main

import (
	"fmt"
	"log"
	"sort"

	"securexml/internal/core"
	"securexml/internal/policy"
	"securexml/internal/workload"
	"securexml/internal/xupdate"
)

func main() {
	// A 200-patient synthetic hospital (deterministic seed).
	doc, err := workload.Hospital(workload.HospitalConfig{Patients: 200, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	db := core.New()
	if err := db.LoadXMLString(workload.XML(doc)); err != nil {
		log.Fatal(err)
	}
	steps := []error{
		db.AddRole("staff"),
		db.AddRole("epidemiologist", "staff"),
		db.AddUser("vera", "epidemiologist"),
		// Rules 1, 6, 7 of axiom 13: read everything, then pull patient
		// names back to position-only.
		db.Grant(policy.Read, "/descendant-or-self::node()", "staff"),
		db.Revoke(policy.Read, "/patients/*", "epidemiologist"),
		db.Grant(policy.Position, "/patients/*", "epidemiologist"),
	}
	for _, err := range steps {
		if err != nil {
			log.Fatal(err)
		}
	}

	vera, err := db.Session("vera")
	if err != nil {
		log.Fatal(err)
	}

	// Total patient count is available — structure is preserved (§2.1).
	total, err := vera.QueryValue("count(/patients/*)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patients on file:     %s\n", total.Str())

	// But every one of them is anonymous.
	named, err := vera.QueryValue("count(/patients/*[name() != 'RESTRICTED'])")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identifiable names:   %s\n\n", named.Str())

	// Illness prevalence — the statistics the role exists for.
	illnesses := []string{"tonsillitis", "pneumonia", "angina", "bronchitis", "migraine", "fracture", "flu"}
	type stat struct {
		name  string
		count int
	}
	var stats []stat
	for _, ill := range illnesses {
		v, err := vera.QueryValue(fmt.Sprintf("count(//diagnosis[text() = '%s'])", ill))
		if err != nil {
			log.Fatal(err)
		}
		stats = append(stats, stat{ill, int(v.Num())})
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].count > stats[j].count })
	fmt.Println("illness prevalence (no identity ever disclosed):")
	for _, s := range stats {
		fmt.Printf("  %-12s %3d  %s\n", s.name, s.count, bar(s.count))
	}

	// Cross-tabulation: which services treat the most pneumonia?
	fmt.Println("\npneumonia cases by service:")
	for _, svc := range []string{"cardiology", "oncology", "pneumology", "otolaryngology", "neurology", "orthopedics"} {
		v, err := vera.QueryValue(fmt.Sprintf(
			"count(//*[service = '%s'][diagnosis = 'pneumonia'])", svc))
		if err != nil {
			log.Fatal(err)
		}
		if v.Num() > 0 {
			fmt.Printf("  %-15s %3.0f\n", svc, v.Num())
		}
	}

	// Even a *write probe* cannot be used to de-anonymize: selecting "the
	// patient named p17" on her view matches nothing.
	res, err := vera.Update(probeFor("p17"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nde-anonymization probe (rename patient 'p17'): selected=%d applied=%d\n",
		res.Selected, res.Applied)
	fmt.Println("-> the name does not exist in vera's world; the probe learns nothing.")
}

func bar(n int) string {
	out := make([]byte, n/2)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// probeFor builds a rename targeting a patient by name — the probe an
// attacker in vera's role would try.
func probeFor(name string) *xupdate.Op {
	return &xupdate.Op{
		Kind:     xupdate.Rename,
		Select:   fmt.Sprintf("/patients/%s", name),
		NewValue: "gotcha",
	}
}
