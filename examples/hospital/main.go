// Hospital: the paper's full running scenario on the public API — the
// Fig. 2 medical-files database, the Fig. 3 subject hierarchy, the twelve
// rules of axiom 13, the four §4.4.1 views, and a working day of updates
// under the §4.4.2 write access controls.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"securexml/internal/core"
	"securexml/internal/policy"
	"securexml/internal/xupdate"
)

func main() {
	db := core.New()
	if err := setup(db); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== The four views of §4.4.1 ==")
	for _, user := range []string{"beaufort", "robert", "richard", "laporte"} {
		s, err := db.Session(user)
		if err != nil {
			log.Fatal(err)
		}
		xml, err := s.ViewXML()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n%s", user, xml)
	}

	fmt.Println("\n== A working day ==")

	// The secretary admits a new patient (rule 8: insert on /patients).
	beaufort, err := db.Session("beaufort")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := beaufort.Apply(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/patients">
		    <xupdate:element name="albert">
		      <service>cardiology</service>
		      <diagnosis/>
		    </xupdate:element>
		  </xupdate:append>
		</xupdate:modifications>`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("beaufort admitted albert (append under /patients).")

	// The doctor poses a diagnosis (rule 10: insert into //diagnosis).
	laporte, err := db.Session("laporte")
	if err != nil {
		log.Fatal(err)
	}
	frag := "<xupdate:modifications xmlns:xupdate=\"http://www.xmldb.org/xupdate\">" +
		"<xupdate:append select=\"/patients/albert/diagnosis\"><xupdate:text>angina</xupdate:text></xupdate:append>" +
		"</xupdate:modifications>"
	if _, err := laporte.Apply(frag); err != nil {
		log.Fatal(err)
	}
	fmt.Println("laporte posed albert's diagnosis: angina.")

	// The doctor revises franck's diagnosis (rule 11: update //diagnosis content).
	if _, err := laporte.Update(&xupdate.Op{
		Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "pharyngitis",
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("laporte revised franck's diagnosis: pharyngitis.")

	// The secretary tries the same and is refused per node (axiom 21).
	res, err := beaufort.Update(&xupdate.Op{
		Kind: xupdate.Update, Select: "/patients/albert/diagnosis", NewValue: "oops",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("beaufort tried to edit a diagnosis: applied=%d, refused: %q\n",
		res.Applied, res.Skipped[0].Reason)

	// The epidemiologist counts illnesses without ever seeing a name.
	richard, err := db.Session("richard")
	if err != nil {
		log.Fatal(err)
	}
	v, err := richard.QueryValue("count(//diagnosis[text() = 'angina'])")
	if err != nil {
		log.Fatal(err)
	}
	names, err := richard.Query("/patients/*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("richard counts %s angina case(s); the %d patients he sees are all %q.\n",
		v.Str(), len(names), names[0].Label)

	// Patient albert reads his own file.
	if err := db.AddUser("albert", "patient"); err != nil {
		log.Fatal(err)
	}
	albert, err := db.Session("albert")
	if err != nil {
		log.Fatal(err)
	}
	own, err := albert.ViewXML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- albert's own view ---\n%s", own)
}

func setup(db *core.Database) error {
	steps := []error{
		db.LoadXMLString(`<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`),
		db.AddRole("staff"),
		db.AddRole("secretary", "staff"),
		db.AddRole("doctor", "staff"),
		db.AddRole("epidemiologist", "staff"),
		db.AddRole("patient"),
		db.AddUser("beaufort", "secretary"),
		db.AddUser("laporte", "doctor"),
		db.AddUser("richard", "epidemiologist"),
		db.AddUser("robert", "patient"),
		db.AddUser("franck", "patient"),
		// Axiom 13, rules 1-12.
		db.Grant(policy.Read, "/descendant-or-self::node()", "staff"),
		db.Revoke(policy.Read, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Position, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Read, "/patients", "patient"),
		db.Grant(policy.Read, "/patients/*[name() = $USER]/descendant-or-self::node()", "patient"),
		db.Revoke(policy.Read, "/patients/*", "epidemiologist"),
		db.Grant(policy.Position, "/patients/*", "epidemiologist"),
		db.Grant(policy.Insert, "/patients", "secretary"),
		db.Grant(policy.Update, "/patients/*", "secretary"),
		db.Grant(policy.Insert, "//diagnosis", "doctor"),
		db.Grant(policy.Update, "//diagnosis/node()", "doctor"),
		db.Grant(policy.Delete, "//diagnosis/node()", "doctor"),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	return nil
}
