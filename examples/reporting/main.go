// Reporting: the §5 "XSLT-based security processor". One stylesheet renders
// a hospital report; executed through each user's security filter it
// produces per-user documents — the doctor's has everything, the
// secretary's shows RESTRICTED where diagnosis content would be, and a
// patient's contains only their own record. No intermediate view is
// materialized: the transformation runs on the source through the filter.
//
//	go run ./examples/reporting
package main

import (
	"fmt"
	"log"

	"securexml/internal/policy"
	"securexml/internal/qfilter"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xslt"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

const reportSheet = `
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <hospital-report patients="{count(/patients/*)}">
      <xsl:apply-templates select="/patients/*"/>
    </hospital-report>
  </xsl:template>
  <xsl:template match="/patients/*">
    <record name="{name()}">
      <ward><xsl:value-of select="service"/></ward>
      <xsl:choose>
        <xsl:when test="diagnosis/node()">
          <finding><xsl:value-of select="diagnosis"/></finding>
        </xsl:when>
        <xsl:otherwise><finding>none on file</finding></xsl:otherwise>
      </xsl:choose>
    </record>
  </xsl:template>
</xsl:stylesheet>`

func main() {
	doc, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	h := subject.PaperHierarchy()
	pol, err := policy.PaperPolicy(h)
	if err != nil {
		log.Fatal(err)
	}
	sheet := xslt.MustParseStylesheet(reportSheet)

	for _, user := range []string{"laporte", "beaufort", "robert"} {
		pm, err := pol.Evaluate(doc, h, user)
		if err != nil {
			log.Fatal(err)
		}
		out, err := sheet.TransformString(doc,
			xpath.Vars{"USER": xpath.String(user)}, qfilter.ForPerms(pm))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- report as %s ---\n%s\n", user, out)
	}
}
