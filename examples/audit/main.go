// Audit: run a mixed workload of permitted and refused operations and then
// read the database's audit trail — what a security officer reviewing the
// paper's model in production would look at. Refusals are not errors (the
// model degrades to partial application, §4.4.2), so the audit log is where
// denied intent becomes visible.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"securexml/internal/core"
	"securexml/internal/policy"
	"securexml/internal/xupdate"
)

func main() {
	db := core.New(core.WithAuditLimit(100))
	steps := []error{
		db.LoadXMLString(`<vault><entry level="public">weather</entry><entry level="secret">launch codes</entry></vault>`),
		db.AddRole("analyst"),
		db.AddRole("admin", "analyst"),
		db.AddUser("eve", "analyst"),
		db.AddUser("root", "admin"),
		// Everyone reads structure; only admin reads secret entries.
		db.Grant(policy.Read, "/descendant-or-self::node()", "analyst"),
		db.Grant(policy.Read, "//@* | //@*/node()", "analyst"),
		db.Revoke(policy.Read, "//entry[@level = 'secret']/node()", "analyst"),
		db.Grant(policy.Read, "//entry[@level = 'secret']/node()", "admin"),
		db.Grant(policy.Update, "//entry/node()", "admin"),
		db.Grant(policy.Delete, "//entry", "admin"),
	}
	for _, err := range steps {
		if err != nil {
			log.Fatal(err)
		}
	}

	eve, err := db.Session("eve")
	if err != nil {
		log.Fatal(err)
	}
	root, err := db.Session("root")
	if err != nil {
		log.Fatal(err)
	}

	// A mixed workload.
	if _, err := eve.Query("//entry"); err != nil {
		log.Fatal(err)
	}
	if _, err := eve.Query("//entry[@level = 'secret']"); err != nil {
		log.Fatal(err)
	}
	// Eve probes the secret content; the view-mediated write silently
	// applies to nothing — but it is on the record.
	if _, err := eve.Update(&xupdate.Op{
		Kind: xupdate.Update, Select: "//entry[text() = 'launch codes']", NewValue: "defaced",
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := root.Update(&xupdate.Op{
		Kind: xupdate.Update, Select: "//entry[@level = 'secret']", NewValue: "rotated codes",
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("What eve saw:")
	xml, err := eve.ViewXML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xml)

	fmt.Println("The audit trail:")
	for _, e := range db.Audit() {
		fmt.Printf("#%-3d %-8s %-8s %-58s -> %s\n", e.Seq, e.User, e.Action, truncate(e.Detail, 58), e.Outcome)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
