// Package securexml is a secure XML database implementing Gabillon's formal
// access control model for XML databases (VLDB Workshop on Secure Data
// Management, 2005): XPath as query language, XUpdate as modification
// language, position/read/insert/update/delete privileges with
// timestamp-priority rules, per-user views with RESTRICTED labels, and
// write operations evaluated on views rather than on the source database.
//
// The implementation lives in internal/ packages (see DESIGN.md for the
// full inventory); the user-facing entry point is internal/core's Database
// and Session types, exercised by the binaries under cmd/ and the programs
// under examples/.
//
// The benchmarks in bench_test.go regenerate the performance study
// documented in EXPERIMENTS.md.
package securexml
