package securexml_test

// End-to-end integration: the paper scenario driven through the public
// layers together — core sessions, the HTTP server, XUpdate wire documents,
// snapshot persistence, and the logic oracle — verifying that the pieces
// compose, not just pass their unit tests.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"securexml/internal/core"
	"securexml/internal/logicmodel"
	"securexml/internal/policy"
	"securexml/internal/scenario"
	"securexml/internal/server"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// TestFullLifecycle walks one database through a working day across every
// layer: HTTP reads/writes, session queries, policy changes, snapshot and
// restore.
func TestFullLifecycle(t *testing.T) {
	db, err := scenario.New()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(db))
	defer ts.Close()

	httpGet := func(user, path string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.SetBasicAuth(user, "")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// 1. The secretary admits a patient over HTTP.
	mods := `<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:append select="/patients">
	    <xupdate:element name="albert"><service>cardiology</service><diagnosis/></xupdate:element>
	  </xupdate:append>
	</xupdate:modifications>`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/update", strings.NewReader(mods))
	if err != nil {
		t.Fatal(err)
	}
	req.SetBasicAuth("beaufort", "")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "applied=1") {
		t.Fatalf("admission over HTTP: %d %s", resp.StatusCode, body)
	}

	// 2. The doctor poses the diagnosis through a session.
	laporte, err := db.Session("laporte")
	if err != nil {
		t.Fatal(err)
	}
	frag := workloadFragment(t, "angina")
	if _, err := laporte.Update(&xupdate.Op{Kind: xupdate.Append,
		Select: "/patients/albert/diagnosis", Content: frag}); err != nil {
		t.Fatal(err)
	}

	// 3. A brand-new patient user reads exactly their own record via HTTP.
	if err := db.AddUser("albert", "patient"); err != nil {
		t.Fatal(err)
	}
	code, viewXML := httpGet("albert", "/view")
	if code != http.StatusOK {
		t.Fatalf("albert /view -> %d", code)
	}
	if !strings.Contains(viewXML, "angina") || strings.Contains(viewXML, "franck") {
		t.Errorf("albert's HTTP view wrong:\n%s", viewXML)
	}

	// 4. Policy change mid-flight: epidemiologists lose read on services.
	if err := db.Revoke(policy.Read, "//service/node()", "epidemiologist"); err != nil {
		t.Fatal(err)
	}
	_, q := httpGet("richard", "/value?xpath=count(//service/text())")
	if strings.TrimSpace(q) != "0" {
		t.Errorf("policy change not live over HTTP: %q", q)
	}

	// 5. Snapshot, restore, and confirm the restored database serves the
	// same views through a fresh server.
	var snap strings.Builder
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := core.Open(strings.NewReader(snap.String()))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(server.New(restored))
	defer ts2.Close()
	req2, err := http.NewRequest(http.MethodGet, ts2.URL+"/view", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.SetBasicAuth("albert", "")
	resp2, err := ts2.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	restoredView, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(restoredView) != viewXML {
		t.Errorf("restored server view differs:\n%s\nvs\n%s", restoredView, viewXML)
	}
}

func workloadFragment(t *testing.T, text string) *xmltree.Document {
	t.Helper()
	f, err := xmltree.ParseString(text, xmltree.ParseOptions{Fragment: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestScaledScenarioAgainstLogicOracle runs a mid-sized synthetic hospital
// through the native engines and the Datalog axioms, confirming agreement
// beyond the toy paper document.
func TestScaledScenarioAgainstLogicOracle(t *testing.T) {
	d, err := workload.Hospital(workload.HospitalConfig{Patients: 8, RecordsPerPatient: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	h, err := workload.HospitalHierarchy(8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.HospitalPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range []string{"beaufort", "laporte", "richard", "p0", "p5"} {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			t.Fatal(err)
		}
		v := view.Materialize(d, pm)
		m, err := logicmodel.Build(d, h, p, user)
		if err != nil {
			t.Fatal(err)
		}
		facts := m.ViewFacts()
		if len(facts) != v.Doc.Len() {
			t.Errorf("%s: native view %d nodes, logic %d", user, v.Doc.Len(), len(facts))
		}
		for _, n := range v.Doc.Nodes() {
			if facts[n.ID().String()] != n.Label() {
				t.Errorf("%s: node %s: native %q, logic %q",
					user, n.ID(), n.Label(), facts[n.ID().String()])
			}
		}
	}
}
