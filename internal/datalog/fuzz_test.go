package datalog

import "testing"

// FuzzParse checks the Datalog text parser never panics, and that accepted
// programs render back to parseable text.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(a).",
		"p(X) :- q(X).",
		"p(X) :- q(X), not r(X).",
		`p("quoted \" string").`,
		"p(a) :- q(a), gt(1, 2).",
		"% comment only",
		"p(a). q(b). r(X, Y) :- p(X), q(Y).",
		"p(", ":-", "p(a)", "p(a) :-", "not p(a).", `p(").`, "p(a))).",
		"p(a,b,c,d,e,f,g,h).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		for _, r := range e.Rules() {
			if _, err := Parse(r.String()); err != nil {
				t.Fatalf("accepted rule %q does not reparse: %v", r.String(), err)
			}
		}
		// Tiny programs must also evaluate without panicking (they may
		// legitimately fail stratification).
		_, _ = e.Run()
	})
}
