package datalog

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, e *Engine) *DB {
	t.Helper()
	db, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFactsOnly(t *testing.T) {
	e := NewEngine()
	e.Fact("node", "n1", "patients")
	e.Fact("node", "n2", "franck")
	e.Fact("node", "n1", "patients") // duplicate
	db := run(t, e)
	if db.Count("node") != 2 {
		t.Errorf("node count = %d, want 2 (deduplicated)", db.Count("node"))
	}
	if !db.Has("node", "n1", "patients") || db.Has("node", "n9", "x") {
		t.Error("Has wrong")
	}
}

func TestSimpleRule(t *testing.T) {
	e := NewEngine()
	e.Fact("parent", "a", "b")
	e.Fact("parent", "b", "c")
	e.MustRule(Rule{Head: A("grand", V("X"), V("Z")),
		Body: []Literal{Pos(A("parent", V("X"), V("Y"))), Pos(A("parent", V("Y"), V("Z")))}})
	db := run(t, e)
	if !db.Has("grand", "a", "c") {
		t.Error("grand(a, c) not derived")
	}
	if db.Count("grand") != 1 {
		t.Errorf("grand count = %d", db.Count("grand"))
	}
}

func TestTransitiveClosure(t *testing.T) {
	e := NewEngine()
	for _, edge := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}} {
		e.Fact("edge", edge[0], edge[1])
	}
	e.MustRule(Rule{Head: A("path", V("X"), V("Y")), Body: []Literal{Pos(A("edge", V("X"), V("Y")))}})
	e.MustRule(Rule{Head: A("path", V("X"), V("Z")),
		Body: []Literal{Pos(A("edge", V("X"), V("Y"))), Pos(A("path", V("Y"), V("Z")))}})
	db := run(t, e)
	if db.Count("path") != 10 {
		t.Errorf("path count = %d, want 10", db.Count("path"))
	}
	if !db.Has("path", "a", "e") {
		t.Error("path(a, e) missing")
	}
}

func TestNegationStratified(t *testing.T) {
	e := NewEngine()
	e.Fact("node", "a")
	e.Fact("node", "b")
	e.Fact("deleted", "b")
	e.MustRule(Rule{Head: A("kept", V("X")),
		Body: []Literal{Pos(A("node", V("X"))), Not(A("deleted", V("X")))}})
	db := run(t, e)
	if !db.Has("kept", "a") || db.Has("kept", "b") {
		t.Errorf("kept = %v", db.All("kept"))
	}
}

func TestNegationOverDerived(t *testing.T) {
	// Two strata: reachable, then isolated = node ∧ ¬reachable.
	e := NewEngine()
	e.Fact("node", "a")
	e.Fact("node", "b")
	e.Fact("node", "c")
	e.Fact("edge", "a", "b")
	e.MustRule(Rule{Head: A("reachable", V("Y")), Body: []Literal{Pos(A("edge", V("X"), V("Y")))}})
	e.MustRule(Rule{Head: A("isolated", V("X")),
		Body: []Literal{Pos(A("node", V("X"))), Not(A("reachable", V("X")))}})
	db := run(t, e)
	want := [][]string{{"a"}, {"c"}}
	if got := db.All("isolated"); !reflect.DeepEqual(got, want) {
		t.Errorf("isolated = %v, want %v", got, want)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	e := NewEngine()
	e.Fact("thing", "a")
	e.MustRule(Rule{Head: A("p", V("X")),
		Body: []Literal{Pos(A("thing", V("X"))), Not(A("q", V("X")))}})
	e.MustRule(Rule{Head: A("q", V("X")),
		Body: []Literal{Pos(A("thing", V("X"))), Not(A("p", V("X")))}})
	_, err := e.Run()
	if !errors.Is(err, ErrNotStratified) {
		t.Errorf("err = %v, want ErrNotStratified", err)
	}
}

func TestBuiltins(t *testing.T) {
	e := NewEngine()
	e.Fact("val", "x", "10")
	e.Fact("val", "y", "9")
	e.Fact("val", "z", "10")
	e.MustRule(Rule{Head: A("bigger", V("A"), V("B")),
		Body: []Literal{Pos(A("val", V("A"), V("VA"))), Pos(A("val", V("B"), V("VB"))),
			Pos(A("gt", V("VA"), V("VB")))}})
	db := run(t, e)
	// Numeric comparison: 10 > 9 (lexicographic would say "10" < "9").
	if !db.Has("bigger", "x", "y") || !db.Has("bigger", "z", "y") {
		t.Errorf("bigger = %v", db.All("bigger"))
	}
	if db.Has("bigger", "y", "x") || db.Has("bigger", "x", "z") {
		t.Errorf("bigger has wrong tuples: %v", db.All("bigger"))
	}
}

func TestBuiltinTable(t *testing.T) {
	cases := []struct {
		pred string
		a, b string
		want bool
	}{
		{"gt", "2", "1", true}, {"gt", "1", "2", false}, {"gt", "b", "a", true},
		{"lt", "1", "2", true}, {"lt", "10", "9", false}, // numeric, not lexicographic
		{"geq", "2", "2", true}, {"leq", "2", "2", true},
		{"eq", "a", "a", true}, {"eq", "a", "b", false},
		{"neq", "a", "b", true}, {"neq", "a", "a", false},
	}
	for _, tc := range cases {
		if got := builtins[tc.pred](tc.a, tc.b); got != tc.want {
			t.Errorf("%s(%s, %s) = %v, want %v", tc.pred, tc.a, tc.b, got, tc.want)
		}
	}
	if !IsBuiltin("gt") || IsBuiltin("node") {
		t.Error("IsBuiltin wrong")
	}
}

// TestBuiltinArityRejected: a builtin body literal with the wrong arity is
// a validation error, not an evaluation-time panic (fuzz regression).
func TestBuiltinArityRejected(t *testing.T) {
	for _, src := range []string{
		"p(a) :- q(a), gt.",
		"p(a) :- q(a), gt(1).",
		"p(a) :- q(a), not eq(1, 2, 3).",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: wrong-arity builtin accepted", src)
		}
	}
}

func TestNegatedBuiltin(t *testing.T) {
	e := NewEngine()
	e.Fact("v", "1")
	e.Fact("v", "2")
	e.MustRule(Rule{Head: A("pair", V("A"), V("B")),
		Body: []Literal{Pos(A("v", V("A"))), Pos(A("v", V("B"))),
			Not(A("eq", V("A"), V("B")))}})
	db := run(t, e)
	if db.Count("pair") != 2 {
		t.Errorf("pair = %v", db.All("pair"))
	}
}

func TestRuleSafety(t *testing.T) {
	e := NewEngine()
	bad := []Rule{
		// Head variable not bound.
		{Head: A("p", V("X")), Body: []Literal{Pos(A("q", V("Y")))}},
		// Negated literal with unbound variable.
		{Head: A("p", V("X")), Body: []Literal{Pos(A("q", V("X"))), Not(A("r", V("Z")))}},
		// Builtin with unbound variable.
		{Head: A("p", V("X")), Body: []Literal{Pos(A("q", V("X"))), Pos(A("gt", V("X"), V("W")))}},
		// Builtin head.
		{Head: A("gt", V("X"), V("X")), Body: []Literal{Pos(A("q", V("X")))}},
	}
	for i, r := range bad {
		if err := e.AddRule(r); err == nil {
			t.Errorf("rule %d accepted: %s", i, r)
		}
	}
}

func TestFactsForBuiltinRejected(t *testing.T) {
	e := NewEngine()
	e.Fact("gt", "1", "2")
	if _, err := e.Run(); err == nil {
		t.Error("facts for builtin accepted")
	}
}

func TestConstantsInRules(t *testing.T) {
	e := NewEngine()
	e.Fact("rule", "accept", "read", "staff")
	e.Fact("rule", "deny", "read", "secretary")
	e.MustRule(Rule{Head: A("accepted", V("S")),
		Body: []Literal{Pos(A("rule", C("accept"), C("read"), V("S")))}})
	db := run(t, e)
	if !db.Has("accepted", "staff") || db.Has("accepted", "secretary") {
		t.Errorf("accepted = %v", db.All("accepted"))
	}
}

func TestDBAccessors(t *testing.T) {
	e := NewEngine()
	e.Fact("b", "2")
	e.Fact("a", "1")
	db := run(t, e)
	if got := db.Preds(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Preds = %v", got)
	}
	if db.Count("zzz") != 0 || db.All("zzz") != nil && len(db.All("zzz")) != 0 {
		t.Error("missing predicate accessors wrong")
	}
}

// --- text syntax ---------------------------------------------------------------

func TestParseProgram(t *testing.T) {
	e := MustParse(`
		% the Fig. 3 subject facts, abridged
		subject(staff). subject(secretary). subject(beaufort).
		isa_edge(secretary, staff).
		isa_edge(beaufort, secretary).

		isa(S, S) :- subject(S).
		isa(S, T) :- isa_edge(S, T).
		isa(S, T) :- isa_edge(S, M), isa(M, T).
	`)
	db := run(t, e)
	if !db.Has("isa", "beaufort", "staff") {
		t.Error("transitive isa missing")
	}
	if !db.Has("isa", "staff", "staff") {
		t.Error("reflexive isa missing")
	}
	if db.Count("isa") != 6 {
		t.Errorf("isa count = %d, want 6", db.Count("isa"))
	}
}

func TestParseQuotedAndNumbers(t *testing.T) {
	e := MustParse(`
		rule(accept, read, "//diagnosis/node()", secretary, 11).
		prio(T) :- rule(accept, read, P, S, T).
	`)
	db := run(t, e)
	if !db.Has("prio", "11") {
		t.Errorf("prio = %v", db.All("prio"))
	}
	if !db.Has("rule", "accept", "read", "//diagnosis/node()", "secretary", "11") {
		t.Error("quoted path constant lost")
	}
}

func TestParseNot(t *testing.T) {
	e := MustParse(`
		n(a). n(b). bad(b).
		good(X) :- n(X), not bad(X).
		% "nothing" starts with the word not but is a predicate
		nothing(a).
		also(X) :- nothing(X).
	`)
	db := run(t, e)
	if !db.Has("good", "a") || db.Has("good", "b") {
		t.Errorf("good = %v", db.All("good"))
	}
	if !db.Has("also", "a") {
		t.Error("predicate starting with 'not' mishandled")
	}
}

func TestParseEscapes(t *testing.T) {
	e := MustParse(`s("a\"b").
		t(X) :- s(X).`)
	db := run(t, e)
	if !db.Has("t", `a"b`) {
		t.Errorf("t = %v", db.All("t"))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`p(X).`,        // fact with variable
		`p(a) :- .`,    // empty body
		`p(a)`,         // missing period
		`p(a :- q(a).`, // bad arg list
		`:- q(a).`,     // missing head
		`p("unterminated).`,
		`p(a) :- q(a) r(a).`, // missing comma
		`p(X) :- not q(X).`,  // unsafe
		`p("bad\`,            // unterminated escape
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	rules := []string{
		`grand(X, Z) :- parent(X, Y), parent(Y, Z).`,
		`kept(X) :- node(X, V), not deleted(X).`,
		`perm(S, N, R) :- rulef(accept, R, P, S2, T), isa(S, S2), xpathf(P, N), not defeated(S2, N, R, T).`,
	}
	for _, src := range rules {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if len(e.Rules()) != 1 {
			t.Fatalf("%q: %d rules", src, len(e.Rules()))
		}
		rendered := e.Rules()[0].String()
		e2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if e2.Rules()[0].String() != rendered {
			t.Errorf("unstable rendering: %q -> %q", rendered, e2.Rules()[0].String())
		}
	}
	// Term rendering quotes when needed.
	if C("has space").String() != `"has space"` {
		t.Errorf("C quoting: %s", C("has space"))
	}
	if C("plain").String() != "plain" {
		t.Errorf("C plain: %s", C("plain"))
	}
	if V("X").String() != "X" {
		t.Errorf("V: %s", V("X"))
	}
	if Not(A("p", C("a"))).String() != "not p(a)" {
		t.Errorf("Not: %s", Not(A("p", C("a"))))
	}
	if (Rule{Head: A("f", C("a"))}).String() != "f(a)." {
		t.Error("fact rendering")
	}
	if A("prop").String() != "prop" {
		t.Error("propositional atom rendering")
	}
}

// TestQuickClosureMonotone: on random edge sets, the derived transitive
// closure contains the edges and is transitively closed — a soundness
// property of the fixpoint evaluation.
func TestQuickClosureMonotone(t *testing.T) {
	f := func(pairs []uint8) bool {
		e := NewEngine()
		names := []string{"a", "b", "c", "d", "e", "f"}
		type edge struct{ x, y string }
		var edges []edge
		for _, p := range pairs {
			x := names[int(p)%len(names)]
			y := names[int(p/8)%len(names)]
			e.Fact("edge", x, y)
			edges = append(edges, edge{x, y})
		}
		e.MustRule(Rule{Head: A("path", V("X"), V("Y")), Body: []Literal{Pos(A("edge", V("X"), V("Y")))}})
		e.MustRule(Rule{Head: A("path", V("X"), V("Z")),
			Body: []Literal{Pos(A("path", V("X"), V("Y"))), Pos(A("path", V("Y"), V("Z")))}})
		db, err := e.Run()
		if err != nil {
			return false
		}
		for _, ed := range edges {
			if !db.Has("path", ed.x, ed.y) {
				return false
			}
		}
		for _, p := range db.All("path") {
			for _, q := range db.All("path") {
				if p[1] == q[0] && !db.Has("path", p[0], q[1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLargeJoinTerminates(t *testing.T) {
	// A linear chain of 60 nodes: the naive fixpoint must converge quickly.
	var b strings.Builder
	for i := 0; i < 60; i++ {
		b.WriteString("edge(n")
		b.WriteString(strings.Repeat("x", i%3)) // vary names slightly
		b.WriteString(string(rune('a'+i%26)) + itoa(i) + ", n" + strings.Repeat("x", (i+1)%3) + string(rune('a'+(i+1)%26)) + itoa(i+1) + ").\n")
	}
	e, err := Parse(b.String() + `
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := run(t, e)
	if db.Count("path") != 60*61/2 {
		t.Errorf("path count = %d, want %d", db.Count("path"), 60*61/2)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for ; i > 0; i /= 10 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
	}
	return string(digits)
}
