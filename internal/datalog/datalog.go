// Package datalog implements a stratified Datalog engine with negation as
// failure: the substrate that plays the role of the author's Prolog
// prototype. Every formula in the paper is a Horn clause whose negations
// are stratified, so bottom-up evaluation of the rules computes the same
// minimal model the Prolog prototype enumerates under the closed world
// assumption (§3: "anything that we cannot show to be true is false").
//
// The engine supports:
//
//   - facts and rules with variables (uppercase) and constants;
//   - negated body literals (not p(X)), restricted to stratified programs;
//   - the comparison builtins gt/lt/geq/leq/eq/neq, numeric when both
//     arguments parse as integers (rule priorities), lexicographic
//     otherwise;
//   - a Prolog-style text syntax (see Parse) used by the logic reference
//     model and the demo binary.
package datalog

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Term is a variable or a constant.
type Term struct {
	// Var is true for variables.
	Var bool
	// Val is the variable name or the constant value.
	Val string
}

// V returns a variable term.
func V(name string) Term { return Term{Var: true, Val: name} }

// C returns a constant term.
func C(val string) Term { return Term{Val: val} }

// String renders the term in source syntax.
func (t Term) String() string {
	if t.Var {
		return t.Val
	}
	if needsQuotes(t.Val) {
		return strconv.Quote(t.Val)
	}
	return t.Val
}

func needsQuotes(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '_' || r == '-' || r == '/' || r == '.':
		case i > 0 && r >= 'A' && r <= 'Z':
		default:
			return true
		}
	}
	// Must not look like a variable (leading uppercase handled above).
	return s[0] >= 'A' && s[0] <= 'Z'
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// A builds an atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// String renders the atom in source syntax.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Literal is a possibly negated atom.
type Literal struct {
	Atom Atom
	Neg  bool
}

// Pos and Not build body literals.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Not builds a negated body literal.
func Not(a Atom) Literal { return Literal{Atom: a, Neg: true} }

// String renders the literal in source syntax.
func (l Literal) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is head :- body. An empty body makes the head a fact (it must then
// be ground).
type Rule struct {
	Head Atom
	Body []Literal
}

// String renders the rule in source syntax.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// builtins are comparison predicates evaluated over bound arguments.
var builtins = map[string]func(a, b string) bool{
	"gt":  func(a, b string) bool { return cmpVals(a, b) > 0 },
	"lt":  func(a, b string) bool { return cmpVals(a, b) < 0 },
	"geq": func(a, b string) bool { return cmpVals(a, b) >= 0 },
	"leq": func(a, b string) bool { return cmpVals(a, b) <= 0 },
	"eq":  func(a, b string) bool { return a == b },
	"neq": func(a, b string) bool { return a != b },
}

// cmpVals compares numerically when both values are integers, else
// lexicographically.
func cmpVals(a, b string) int {
	na, errA := strconv.ParseInt(a, 10, 64)
	nb, errB := strconv.ParseInt(b, 10, 64)
	if errA == nil && errB == nil {
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// IsBuiltin reports whether pred is a comparison builtin.
func IsBuiltin(pred string) bool {
	_, ok := builtins[pred]
	return ok
}

// Engine holds a program: extensional facts and rules.
type Engine struct {
	rules []Rule
	facts map[string][][]string // EDB tuples per predicate
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{facts: make(map[string][][]string)}
}

// Fact asserts a ground fact.
func (e *Engine) Fact(pred string, args ...string) {
	tuple := append([]string(nil), args...)
	e.facts[pred] = append(e.facts[pred], tuple)
}

// AddRule adds a rule after validating it (see Validate).
func (e *Engine) AddRule(r Rule) error {
	if err := validateRule(r); err != nil {
		return err
	}
	e.rules = append(e.rules, r)
	return nil
}

// MustRule is AddRule panicking on error, for static rule sets.
func (e *Engine) MustRule(r Rule) {
	if err := e.AddRule(r); err != nil {
		panic(err)
	}
}

// Rules returns the rules added so far.
func (e *Engine) Rules() []Rule { return e.rules }

// validateRule enforces safety: head variables must occur in a positive,
// non-builtin body literal, and so must all variables of negated or builtin
// literals; builtin literals must be binary. A bodyless rule must be ground.
func validateRule(r Rule) error {
	if IsBuiltin(r.Head.Pred) {
		return fmt.Errorf("datalog: rule head %s uses a builtin predicate", r.Head.Pred)
	}
	for _, l := range r.Body {
		if IsBuiltin(l.Atom.Pred) && len(l.Atom.Args) != 2 {
			return fmt.Errorf("datalog: builtin %s takes exactly 2 arguments, got %d",
				l.Atom.Pred, len(l.Atom.Args))
		}
	}
	positive := map[string]bool{}
	for _, l := range r.Body {
		if l.Neg || IsBuiltin(l.Atom.Pred) {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.Var {
				positive[t.Val] = true
			}
		}
	}
	check := func(where string, args []Term) error {
		for _, t := range args {
			if t.Var && !positive[t.Val] {
				return fmt.Errorf("datalog: unsafe rule %s: variable %s in %s not bound by a positive literal",
					r, t.Val, where)
			}
		}
		return nil
	}
	if err := check("head", r.Head.Args); err != nil {
		return err
	}
	for _, l := range r.Body {
		if l.Neg || IsBuiltin(l.Atom.Pred) {
			if err := check(l.String(), l.Atom.Args); err != nil {
				return err
			}
		}
	}
	return nil
}

// ErrNotStratified is returned when negation cycles make the program
// unstratifiable.
var ErrNotStratified = errors.New("datalog: program is not stratified (negation inside a recursive cycle)")

// stratify assigns each IDB predicate a stratum such that positive
// dependencies stay within a stratum or below, and negative dependencies go
// strictly below. Returns predicates grouped per stratum, lowest first.
func (e *Engine) stratify() ([][]string, error) {
	// Collect IDB predicates.
	idb := map[string]bool{}
	for _, r := range e.rules {
		idb[r.Head.Pred] = true
	}
	strata := map[string]int{}
	for p := range idb {
		strata[p] = 0
	}
	n := len(idb)
	for round := 0; ; round++ {
		changed := false
		for _, r := range e.rules {
			for _, l := range r.Body {
				if !idb[l.Atom.Pred] {
					continue
				}
				min := strata[l.Atom.Pred]
				if l.Neg {
					min++
				}
				if strata[r.Head.Pred] < min {
					strata[r.Head.Pred] = min
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if round > n+1 {
			return nil, ErrNotStratified
		}
	}
	max := 0
	for _, s := range strata {
		if s > max {
			max = s
		}
	}
	groups := make([][]string, max+1)
	preds := make([]string, 0, len(strata))
	for p := range strata {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		groups[strata[p]] = append(groups[strata[p]], p)
	}
	return groups, nil
}

// DB is the evaluated database: derived and extensional tuples per
// predicate.
type DB struct {
	tuples map[string]map[string][]string // pred -> key -> tuple
}

func newDB() *DB { return &DB{tuples: make(map[string]map[string][]string)} }

func tupleKey(args []string) string { return strings.Join(args, "\x00") }

func (db *DB) insert(pred string, tuple []string) bool {
	m := db.tuples[pred]
	if m == nil {
		m = make(map[string][]string)
		db.tuples[pred] = m
	}
	k := tupleKey(tuple)
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = tuple
	return true
}

// Has reports whether the fact pred(args...) holds.
func (db *DB) Has(pred string, args ...string) bool {
	m := db.tuples[pred]
	if m == nil {
		return false
	}
	_, ok := m[tupleKey(args)]
	return ok
}

// All returns the tuples of a predicate, sorted for determinism.
func (db *DB) All(pred string) [][]string {
	m := db.tuples[pred]
	out := make([][]string, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return tupleKey(out[i]) < tupleKey(out[j])
	})
	return out
}

// Count returns the number of tuples of a predicate.
func (db *DB) Count(pred string) int { return len(db.tuples[pred]) }

// Preds returns all predicates with at least one tuple, sorted.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.tuples))
	for p := range db.tuples {
		if len(db.tuples[p]) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Run evaluates the program bottom-up, stratum by stratum, to fixpoint and
// returns the resulting database.
func (e *Engine) Run() (*DB, error) {
	groups, err := e.stratify()
	if err != nil {
		return nil, err
	}
	db := newDB()
	for pred, tuples := range e.facts {
		if IsBuiltin(pred) {
			return nil, fmt.Errorf("datalog: facts asserted for builtin %s", pred)
		}
		for _, t := range tuples {
			db.insert(pred, t)
		}
	}
	inStratum := map[string]int{}
	for s, preds := range groups {
		for _, p := range preds {
			inStratum[p] = s
		}
	}
	for s := range groups {
		// Fixpoint over the rules whose head is in stratum s.
		var rules []Rule
		for _, r := range e.rules {
			if inStratum[r.Head.Pred] == s {
				rules = append(rules, r)
			}
		}
		for {
			changed := false
			for _, r := range rules {
				derived := evalRule(db, r)
				for _, tuple := range derived {
					if db.insert(r.Head.Pred, tuple) {
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	return db, nil
}

// evalRule computes all head tuples derivable from the rule under db.
func evalRule(db *DB, r Rule) [][]string {
	envs := []map[string]string{{}}
	for _, l := range r.Body {
		envs = extend(db, envs, l)
		if len(envs) == 0 {
			return nil
		}
	}
	out := make([][]string, 0, len(envs))
	for _, env := range envs {
		tuple := make([]string, len(r.Head.Args))
		for i, t := range r.Head.Args {
			if t.Var {
				tuple[i] = env[t.Val]
			} else {
				tuple[i] = t.Val
			}
		}
		out = append(out, tuple)
	}
	return out
}

// extend joins the current environments with one body literal.
func extend(db *DB, envs []map[string]string, l Literal) []map[string]string {
	if fn, ok := builtins[l.Atom.Pred]; ok {
		var out []map[string]string
		for _, env := range envs {
			a := resolve(env, l.Atom.Args[0])
			b := resolve(env, l.Atom.Args[1])
			ok := fn(a, b)
			if l.Neg {
				ok = !ok
			}
			if ok {
				out = append(out, env)
			}
		}
		return out
	}
	if l.Neg {
		var out []map[string]string
		for _, env := range envs {
			args := make([]string, len(l.Atom.Args))
			for i, t := range l.Atom.Args {
				args[i] = resolve(env, t)
			}
			if !db.Has(l.Atom.Pred, args...) {
				out = append(out, env)
			}
		}
		return out
	}
	var out []map[string]string
	tuples := db.tuples[l.Atom.Pred]
	for _, env := range envs {
		for _, tuple := range tuples {
			if len(tuple) != len(l.Atom.Args) {
				continue
			}
			next := matchTuple(env, l.Atom.Args, tuple)
			if next != nil {
				out = append(out, next)
			}
		}
	}
	return out
}

func resolve(env map[string]string, t Term) string {
	if t.Var {
		return env[t.Val]
	}
	return t.Val
}

// matchTuple unifies a tuple with the literal's argument pattern under env,
// returning the extended environment or nil.
func matchTuple(env map[string]string, args []Term, tuple []string) map[string]string {
	next := env
	copied := false
	for i, t := range args {
		if !t.Var {
			if t.Val != tuple[i] {
				return nil
			}
			continue
		}
		if bound, ok := next[t.Val]; ok {
			if bound != tuple[i] {
				return nil
			}
			continue
		}
		if !copied {
			clone := make(map[string]string, len(next)+1)
			for k, v := range next {
				clone[k] = v
			}
			next = clone
			copied = true
		}
		next[t.Val] = tuple[i]
	}
	if !copied && len(args) > 0 {
		// No new bindings: reuse env (it is never mutated).
		return env
	}
	return next
}
