package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a program in Prolog-style syntax, one clause per '.':
//
//	node(n1, patients).
//	child(n2, n1).
//	visible(N) :- node(N, V), not hidden(N).
//	perm(S, N, R) :- rule(accept, R, P, S2, T), isa(S, S2), xpath(P, N, V),
//	                 not defeated(S2, N, R, T).
//
// Identifiers starting with an uppercase letter are variables; everything
// else (bare lowercase identifiers, numbers, double-quoted strings) is a
// constant. '%' starts a line comment. Ground bodyless clauses become
// facts; everything else must be a valid safe rule.
func Parse(src string) (*Engine, error) {
	e := NewEngine()
	p := &dlParser{src: src}
	for {
		p.skipSpace()
		if p.eof() {
			return e, nil
		}
		r, err := p.clause()
		if err != nil {
			return nil, err
		}
		if len(r.Body) == 0 {
			args := make([]string, len(r.Head.Args))
			for i, t := range r.Head.Args {
				if t.Var {
					return nil, fmt.Errorf("datalog: parse: fact %s has a variable", r.Head)
				}
				args[i] = t.Val
			}
			e.Fact(r.Head.Pred, args...)
			continue
		}
		if err := e.AddRule(r); err != nil {
			return nil, err
		}
	}
}

// MustParse is Parse panicking on error, for static programs.
func MustParse(src string) *Engine {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type dlParser struct {
	src string
	pos int
}

func (p *dlParser) eof() bool { return p.pos >= len(p.src) }

func (p *dlParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("datalog: parse: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *dlParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '%' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func (p *dlParser) clause() (Rule, error) {
	head, err := p.atom()
	if err != nil {
		return Rule{}, err
	}
	p.skipSpace()
	if p.consume(".") {
		return Rule{Head: head}, nil
	}
	if !p.consume(":-") {
		return Rule{}, p.errf("expected ':-' or '.' after %s", head)
	}
	var body []Literal
	for {
		p.skipSpace()
		neg := false
		if p.consumeWord("not") {
			neg = true
			p.skipSpace()
		}
		a, err := p.atom()
		if err != nil {
			return Rule{}, err
		}
		body = append(body, Literal{Atom: a, Neg: neg})
		p.skipSpace()
		if p.consume(",") {
			continue
		}
		if p.consume(".") {
			return Rule{Head: head, Body: body}, nil
		}
		return Rule{}, p.errf("expected ',' or '.' in rule body")
	}
}

func (p *dlParser) consume(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// consumeWord consumes tok only when followed by a non-identifier byte.
func (p *dlParser) consumeWord(tok string) bool {
	rest := p.src[p.pos:]
	if !strings.HasPrefix(rest, tok) {
		return false
	}
	if len(rest) > len(tok) {
		c := rune(rest[len(tok)])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			return false
		}
	}
	p.pos += len(tok)
	return true
}

func (p *dlParser) atom() (Atom, error) {
	p.skipSpace()
	pred, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	if pred == "" {
		return Atom{}, p.errf("expected a predicate name")
	}
	p.skipSpace()
	if !p.consume("(") {
		return Atom{Pred: pred}, nil // propositional atom
	}
	var args []Term
	for {
		p.skipSpace()
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		p.skipSpace()
		if p.consume(",") {
			continue
		}
		if p.consume(")") {
			return Atom{Pred: pred, Args: args}, nil
		}
		return Atom{}, p.errf("expected ',' or ')' in argument list of %s", pred)
	}
}

func (p *dlParser) term() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("unexpected end of input in term")
	}
	c := p.src[p.pos]
	if c == '"' {
		return p.quoted()
	}
	word, err := p.ident()
	if err != nil {
		return Term{}, err
	}
	if word == "" {
		return Term{}, p.errf("expected a term, found %q", c)
	}
	if word[0] >= 'A' && word[0] <= 'Z' || word[0] == '_' {
		return V(word), nil
	}
	return C(word), nil
}

func (p *dlParser) quoted() (Term, error) {
	start := p.pos
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '"':
			p.pos++
			return C(b.String()), nil
		case '\\':
			if p.pos+1 < len(p.src) {
				p.pos++
				b.WriteByte(p.src[p.pos])
				p.pos++
				continue
			}
			p.pos = start
			return Term{}, p.errf("unterminated escape in string")
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	p.pos = start
	return Term{}, p.errf("unterminated string literal")
}

// ident scans an identifier / number: letters, digits, and the punctuation
// that appears in node identifiers and paths (_ - / . * [ ] $ : ( ) are NOT
// included; quote paths instead).
func (p *dlParser) ident() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == '/' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos], nil
}
