package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4): metrics sorted by name with # HELP / # TYPE
// headers, series sorted by label rendering, histograms as cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	byName := make(map[string][]*series)
	for _, s := range r.series {
		byName[s.name] = append(byName[s.name], s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		sort.Slice(group, func(i, j int) bool { return group[i].id < group[j].id })
		if h := help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, group[0].kind); err != nil {
			return err
		}
		for _, s := range group {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, s *series) error {
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", s.id, s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", s.id, s.gauge.Value())
		return err
	default:
		h := s.hist
		var cum uint64
		counts := h.BucketCounts()
		for i, upper := range h.uppers {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.name, labelString(s.labels, "le", formatFloat(upper)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.name, labelString(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			s.name, labelString(s.labels, "", ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			s.name, labelString(s.labels, "", ""), h.Count())
		return err
	}
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// CounterSnap is one counter series in a Snapshot.
type CounterSnap struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnap is one gauge series in a Snapshot.
type GaugeSnap struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramSnap is one histogram series in a Snapshot, with estimated
// quantiles (same units as the observations; seconds for stage timings).
type HistogramSnap struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	P50    float64           `json:"p50"`
	P95    float64           `json:"p95"`
	P99    float64           `json:"p99"`
}

// Snapshot is a structured point-in-time copy of a registry, ordered by
// series id. It is what the bench harness serializes and what /debug/vars
// exposes.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot captures every series.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	snap := &Snapshot{}
	for _, s := range all {
		switch s.kind {
		case kindCounter:
			snap.Counters = append(snap.Counters, CounterSnap{
				ID: s.id, Name: s.name, Labels: labelMap(s.labels), Value: s.counter.Value(),
			})
		case kindGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnap{
				ID: s.id, Name: s.name, Labels: labelMap(s.labels), Value: s.gauge.Value(),
			})
		default:
			h := s.hist
			snap.Histograms = append(snap.Histograms, HistogramSnap{
				ID: s.id, Name: s.name, Labels: labelMap(s.labels),
				Count: h.Count(), Sum: h.Sum(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			})
		}
	}
	return snap
}

func labelMap(labels []string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		m[labels[i]] = labels[i+1]
	}
	return m
}

// PublishExpvar publishes the registry's Snapshot under the given expvar
// name (served on GET /debug/vars). Safe to call repeatedly; only the first
// call per registry publishes.
func (r *Registry) PublishExpvar(name string) {
	r.expvarOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
