package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4): metrics sorted by name with # HELP / # TYPE
// headers, series sorted by label rendering, histograms as cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	byName := make(map[string][]*series)
	for _, s := range r.series {
		byName[s.name] = append(byName[s.name], s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		sort.Slice(group, func(i, j int) bool { return group[i].id < group[j].id })
		if h := help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, group[0].kind); err != nil {
			return err
		}
		for _, s := range group {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, s *series) error {
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", s.id, s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", s.id, s.gauge.Value())
		return err
	default:
		h := s.hist
		var cum uint64
		counts := h.BucketCounts()
		for i, upper := range h.uppers {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.name, labelString(s.labels, "le", formatFloat(upper)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.name, labelString(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			s.name, labelString(s.labels, "", ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
			s.name, labelString(s.labels, "", ""), h.Count()); err != nil {
			return err
		}
		// The max-latency exemplar is emitted as a comment line: the 0.0.4
		// text format has no exemplar syntax, and a comment keeps every
		// parser happy while still putting the trace ID next to its series.
		if id, v, ok := h.Exemplar(); ok {
			if _, err := fmt.Fprintf(w, "# EXEMPLAR %s%s trace_id=%q value=%s\n",
				s.name, labelString(s.labels, "", ""), id, formatFloat(v)); err != nil {
				return err
			}
		}
		return nil
	}
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// helpEscaper implements the 0.0.4 HELP escaping (backslash and newline
// only — quotes are legal in help text, unlike in label values).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// CounterSnap is one counter series in a Snapshot.
type CounterSnap struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnap is one gauge series in a Snapshot.
type GaugeSnap struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramSnap is one histogram series in a Snapshot, with estimated
// quantiles (same units as the observations; seconds for stage timings).
type HistogramSnap struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	P50    float64           `json:"p50"`
	P95    float64           `json:"p95"`
	P99    float64           `json:"p99"`

	// ExemplarTraceID/ExemplarSeconds identify the largest traced
	// observation of the series (empty when tracing is off).
	ExemplarTraceID string  `json:"exemplar_trace_id,omitempty"`
	ExemplarSeconds float64 `json:"exemplar_seconds,omitempty"`
}

// Snapshot is a structured point-in-time copy of a registry, ordered by
// series id. It is what the bench harness serializes and what /debug/vars
// exposes.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot captures every series.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	snap := &Snapshot{}
	for _, s := range all {
		switch s.kind {
		case kindCounter:
			snap.Counters = append(snap.Counters, CounterSnap{
				ID: s.id, Name: s.name, Labels: labelMap(s.labels), Value: s.counter.Value(),
			})
		case kindGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnap{
				ID: s.id, Name: s.name, Labels: labelMap(s.labels), Value: s.gauge.Value(),
			})
		default:
			h := s.hist
			hs := HistogramSnap{
				ID: s.id, Name: s.name, Labels: labelMap(s.labels),
				Count: h.Count(), Sum: h.Sum(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
			hs.ExemplarTraceID, hs.ExemplarSeconds, _ = h.Exemplar()
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	return snap
}

func labelMap(labels []string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		m[labels[i]] = labels[i+1]
	}
	return m
}

// PublishExpvar publishes the registry's Snapshot under the given expvar
// name (served on GET /debug/vars). Safe to call repeatedly; only the first
// call per registry publishes.
func (r *Registry) PublishExpvar(name string) {
	r.expvarOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
