package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTreeStructure(t *testing.T) {
	tr := NewTracer(8, 0, nil)
	ctx, trace := tr.StartTrace(context.Background(), "req")
	if trace.ID() == "" || RequestID(ctx) != trace.ID() {
		t.Fatalf("trace ID %q must be the context request ID %q", trace.ID(), RequestID(ctx))
	}
	ctx1, outer := StartSpanCtx(ctx, "outer", nil)
	outer.Annotate("k", "v")
	outer.AnnotateInt("n", 42)
	_, inner := StartSpanCtx(ctx1, "inner", nil)
	AnnotateCtx(ctx1, "via_ctx", "yes") // lands on outer, the ctx's current span
	inner.End()
	outer.End()
	// A sibling of outer, started from the root context.
	_, sib := StartSpanCtx(ctx, "sibling", nil)
	sib.End()
	trace.Finish()

	ex := trace.Export()
	if ex.Spans != 4 { // root + outer + inner + sibling
		t.Fatalf("spans = %d, want 4", ex.Spans)
	}
	if ex.DurNS < 0 || ex.Root == nil || ex.Root.Name != "req" {
		t.Fatalf("root: %+v", ex.Root)
	}
	if len(ex.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (outer, sibling)", len(ex.Root.Children))
	}
	o := ex.Root.Children[0]
	if o.Name != "outer" || o.Attrs["k"] != "v" || o.Attrs["n"] != "42" || o.Attrs["via_ctx"] != "yes" {
		t.Fatalf("outer span: %+v", o)
	}
	if len(o.Children) != 1 || o.Children[0].Name != "inner" || o.Children[0].DurNS < 0 {
		t.Fatalf("inner span: %+v", o.Children)
	}
	if ex.Root.Children[1].Name != "sibling" {
		t.Fatalf("sibling span: %+v", ex.Root.Children[1])
	}
	// Export must be JSON-serializable (the /trace/{id} payload).
	if _, err := json.Marshal(ex); err != nil {
		t.Fatalf("export does not marshal: %v", err)
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpanCtx(ctx, "stage", nil)
	if ctx2 != ctx {
		t.Fatal("untraced StartSpanCtx must return the context unchanged")
	}
	sp.Annotate("k", "v") // all no-ops, must not panic
	AnnotateCtx(ctx, "k", "v")
	AnnotateIntCtx(ctx, "k", 1)
	if d := sp.End(); d < 0 {
		t.Fatalf("duration = %v", d)
	}
	if TraceFrom(ctx) != nil || TraceFrom(nil) != nil {
		t.Fatal("TraceFrom must be nil outside a trace")
	}
}

func TestNilTracerAndNilTrace(t *testing.T) {
	var tr *Tracer
	ctx, trace := tr.StartTrace(context.Background(), "req")
	if trace != nil {
		t.Fatal("nil tracer must return a nil trace")
	}
	trace.Annotate("k", "v") // nil-trace no-ops
	trace.Finish()
	if trace.ID() != "" {
		t.Fatal("nil trace ID must be empty")
	}
	if tr.Summaries() != nil {
		t.Fatal("nil tracer summaries must be nil")
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("nil tracer Get must miss")
	}
	_, sp := StartSpanCtx(ctx, "stage", nil)
	sp.End()
}

func TestTraceSpanBudget(t *testing.T) {
	tr := NewTracer(2, 0, nil)
	ctx, trace := tr.StartTrace(context.Background(), "req")
	for i := 0; i < maxSpansPerTrace+50; i++ {
		_, sp := StartSpanCtx(ctx, "stage", nil)
		sp.End()
	}
	trace.Finish()
	if got := trace.Summary().Spans; got != maxSpansPerTrace {
		t.Fatalf("spans = %d, want capped at %d", got, maxSpansPerTrace)
	}
	// Spans after Finish are dropped too.
	_, late := StartSpanCtx(ctx, "late", nil)
	late.End()
	if got := trace.Summary().Spans; got != maxSpansPerTrace {
		t.Fatalf("span after Finish grew the tree to %d", got)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3, 0, nil)
	var ids []string
	for i := 0; i < 5; i++ {
		_, trace := tr.StartTrace(context.Background(), "req")
		trace.Finish()
		ids = append(ids, trace.ID())
	}
	sums := tr.Summaries()
	if len(sums) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(sums))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if sums[i].ID != want {
			t.Fatalf("summaries[%d] = %q, want %q", i, sums[i].ID, want)
		}
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("evicted trace still reachable by ID")
	}
	if got, ok := tr.Get(ids[4]); !ok || got.ID() != ids[4] {
		t.Fatal("latest trace not reachable by ID")
	}
	// Double Finish must not duplicate the ring entry.
	got, _ := tr.Get(ids[4])
	got.Finish()
	if len(tr.Summaries()) != 3 {
		t.Fatal("double Finish changed the ring")
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1}, "stage", "s")
	h.Observe(5) // untraced: no exemplar
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("untraced observation must not set an exemplar")
	}
	tr := NewTracer(4, 0, nil)
	ctx, t1 := tr.StartTrace(context.Background(), "req")
	_, sp := StartSpanCtx(ctx, "stage", h)
	time.Sleep(time.Millisecond)
	sp.End()
	t1.Finish()
	id, v, ok := h.Exemplar()
	if !ok || id != t1.ID() || v <= 0 {
		t.Fatalf("exemplar = (%q, %v, %v), want trace %q", id, v, ok, t1.ID())
	}
	// A faster traced observation must not displace the max.
	ctx2, t2 := tr.StartTrace(context.Background(), "req")
	_, sp2 := StartSpanCtx(ctx2, "stage", h)
	sp2.End()
	t2.Finish()
	if id2, _, _ := h.Exemplar(); id2 != t1.ID() {
		t.Fatalf("faster trace displaced the max exemplar: %q", id2)
	}
	// The exemplar shows up in the exposition and the snapshot.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	wantLine := fmt.Sprintf("# EXEMPLAR lat_seconds{stage=\"s\"} trace_id=%q", t1.ID())
	if !strings.Contains(b.String(), wantLine) {
		t.Fatalf("exposition missing exemplar comment %q:\n%s", wantLine, b.String())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms[0].ExemplarTraceID != t1.ID() {
		t.Fatalf("snapshot exemplar: %+v", snap.Histograms)
	}
	// Reset clears it.
	r.Reset()
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("reset did not clear the exemplar")
	}
}

func TestSlowTraceLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := NewTracer(4, time.Nanosecond, logger) // everything is slow
	ctx, trace := tr.StartTrace(context.Background(), "req")
	_, sp := StartSpanCtx(ctx, "stage", nil)
	sp.End()
	time.Sleep(time.Millisecond)
	trace.Finish()
	out := buf.String()
	if !strings.Contains(out, "slow trace") || !strings.Contains(out, trace.ID()) {
		t.Fatalf("slow trace not logged: %s", out)
	}
	if !strings.Contains(out, "stage") {
		t.Fatalf("slow trace log missing span tree: %s", out)
	}
	if !trace.Summary().Slow {
		t.Fatal("summary not marked slow")
	}

	// Below the threshold (or with it disabled) nothing is logged.
	buf.Reset()
	quiet := NewTracer(4, 0, logger)
	_, fast := quiet.StartTrace(context.Background(), "req")
	fast.Finish()
	if buf.Len() != 0 {
		t.Fatalf("slow-disabled tracer logged: %s", buf.String())
	}
}

func TestDefaultTracer(t *testing.T) {
	if DefaultTracer() != nil {
		t.Fatal("default tracer must start nil")
	}
	tr := NewTracer(4, 0, nil)
	SetDefaultTracer(tr)
	defer SetDefaultTracer(nil)
	ctx, trace := StartTrace(context.Background(), "req")
	if trace == nil || TraceFrom(ctx) != trace {
		t.Fatal("package StartTrace did not use the default tracer")
	}
	trace.Finish()
	if len(tr.Summaries()) != 1 {
		t.Fatal("trace not recorded in the default tracer's ring")
	}
	SetDefaultTracer(nil)
	if _, trace := StartTrace(context.Background(), "req"); trace != nil {
		t.Fatal("cleared default tracer must disable tracing")
	}
}

// TestTraceRingConcurrency is the -race stress test: concurrent request
// goroutines finishing traces (with span churn) while readers drain
// Summaries, Get and Export from the same ring.
func TestTraceRingConcurrency(t *testing.T) {
	tr := NewTracer(16, 0, nil)
	const writers, readers, perWriter = 8, 4, 200
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				ctx, trace := tr.StartTrace(context.Background(), "req")
				ctx1, sp := StartSpanCtx(ctx, "outer", nil)
				sp.AnnotateInt("i", int64(i))
				_, in := StartSpanCtx(ctx1, "inner", nil)
				in.End()
				sp.End()
				trace.Finish()
			}
		}()
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sum := range tr.Summaries() {
					if trace, ok := tr.Get(sum.ID); ok {
						if ex := trace.Export(); ex.Root == nil {
							t.Error("finished trace exported without a root")
							return
						}
					}
				}
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if got := len(tr.Summaries()); got != 16 {
		t.Fatalf("ring holds %d traces after the stress, want capacity 16", got)
	}
}
