// Request span tracing. A Trace is one request's tree of timed spans:
// the root covers the whole request and child spans cover the pipeline
// stages underneath it (axiom-14 policy evaluation, the bank walk or
// per-rule fallback inside it, axiom 15–17 view derivation, the secured
// executor's per-op checks, journal append). Finished traces land in a
// Tracer's bounded mutex-guarded ring for GET /traces and GET /trace/{id},
// and traces over the tracer's slow threshold are logged whole through
// the process slog logger. Span names and attribute keys/values are
// bounded label strings (vet: obslabel); dynamic data goes through
// AnnotateInt or the request-ID-derived trace ID.
package obs

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's span tree so a pathological request
// cannot grow memory without bound; spans past the cap are dropped (the
// trace itself stays intact).
const maxSpansPerTrace = 512

// defaultTraceRing is the number of finished traces a Tracer retains when
// NewTracer is given a non-positive capacity.
const defaultTraceRing = 256

type traceKey struct{}
type spanKey struct{}

// ctxSpan is the context value naming the current span: the trace it
// belongs to plus the tree node new child spans attach under.
type ctxSpan struct {
	tr   *Trace
	node *TraceSpan
}

// TraceFrom returns the active trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

func spanNode(ctx context.Context) *TraceSpan {
	cs, _ := ctx.Value(spanKey{}).(ctxSpan)
	return cs.node
}

// TraceSpan is one node of a trace's span tree in its exported (JSON)
// form. StartNS is the offset from the trace start; DurNS is -1 while the
// span is unfinished.
type TraceSpan struct {
	Name     string            `json:"name"`
	StartNS  int64             `json:"start_ns"`
	DurNS    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*TraceSpan      `json:"children,omitempty"`
}

// Trace is one request's span tree under construction. All tree access is
// serialized by mu, so spans may start, end and annotate from concurrent
// goroutines of the same request; readers only see the tree through
// deep-copying accessors.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time

	mu sync.Mutex
	// root, spans, dur, slow and done are guarded by mu: root is the span
	// tree, spans counts its nodes, and done marks Finish having run.
	root  *TraceSpan
	spans int
	dur   time.Duration
	slow  bool
	done  bool
}

// ID returns the trace identifier — the request ID the trace was started
// under. A nil trace returns "".
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

func (t *Trace) startSpan(parent *TraceSpan, name string, start time.Time) *TraceSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || t.spans >= maxSpansPerTrace {
		return nil
	}
	node := &TraceSpan{Name: name, StartNS: start.Sub(t.start).Nanoseconds(), DurNS: -1}
	if parent == nil {
		parent = t.root
	}
	parent.Children = append(parent.Children, node)
	t.spans++
	return node
}

func (t *Trace) endSpan(node *TraceSpan, d time.Duration) {
	if node == nil {
		return
	}
	t.mu.Lock()
	node.DurNS = d.Nanoseconds()
	t.mu.Unlock()
}

func (t *Trace) annotate(node *TraceSpan, key, value string) {
	if node == nil {
		return
	}
	t.mu.Lock()
	if node.Attrs == nil {
		node.Attrs = make(map[string]string, 4)
	}
	node.Attrs[key] = value
	t.mu.Unlock()
}

// Annotate attaches a key/value attribute to the trace's root span. Both
// strings must be compile-time bounded (vet: obslabel). A nil trace is a
// no-op.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	root := t.root
	t.mu.Unlock()
	t.annotate(root, key, value)
}

// Finish stamps the root duration and hands the trace to its tracer's
// ring, logging it when it crossed the slow threshold. Finish is
// idempotent, and a nil trace (tracing disabled) is a no-op, so callers
// can defer it unconditionally.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.dur = time.Since(t.start)
	t.root.DurNS = t.dur.Nanoseconds()
	t.slow = t.tracer != nil && t.tracer.slow > 0 && t.dur >= t.tracer.slow
	t.mu.Unlock()
	if t.tracer != nil {
		t.tracer.record(t)
	}
}

// TraceExport is the JSON form of a trace: its summary fields plus, when
// exported with Export, the deep-copied span tree.
type TraceExport struct {
	ID    string     `json:"id"`
	Name  string     `json:"name"`
	Start time.Time  `json:"start"`
	DurNS int64      `json:"dur_ns"`
	Spans int        `json:"spans"`
	Slow  bool       `json:"slow,omitempty"`
	Root  *TraceSpan `json:"root,omitempty"`
}

// Summary returns the trace's summary fields (no span tree).
func (t *Trace) Summary() TraceExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceExport{
		ID: t.id, Name: t.name, Start: t.start,
		DurNS: t.dur.Nanoseconds(), Spans: t.spans, Slow: t.slow,
	}
}

// Export returns the trace with a deep copy of its span tree, safe to
// serialize while the trace is still being written.
func (t *Trace) Export() *TraceExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := &TraceExport{
		ID: t.id, Name: t.name, Start: t.start,
		DurNS: t.dur.Nanoseconds(), Spans: t.spans, Slow: t.slow,
		Root: copySpan(t.root),
	}
	return e
}

func copySpan(s *TraceSpan) *TraceSpan {
	if s == nil {
		return nil
	}
	cp := &TraceSpan{Name: s.Name, StartNS: s.StartNS, DurNS: s.DurNS}
	if len(s.Attrs) > 0 {
		cp.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			cp.Attrs[k] = v
		}
	}
	if len(s.Children) > 0 {
		cp.Children = make([]*TraceSpan, 0, len(s.Children))
		for _, c := range s.Children {
			cp.Children = append(cp.Children, copySpan(c))
		}
	}
	return cp
}

// Tracer owns the bounded ring of finished traces behind GET /traces.
type Tracer struct {
	capacity int
	slow     time.Duration
	logger   *slog.Logger

	mu sync.Mutex
	// ring holds the most recent finished traces oldest-first and byID
	// indexes them by trace ID; both are guarded by mu.
	ring []*Trace
	byID map[string]*Trace
}

// NewTracer returns a tracer retaining the last capacity finished traces
// (non-positive selects the default of 256). Traces taking at least slow
// (0 disables the threshold) are logged with their full span tree through
// logger (nil disables logging).
func NewTracer(capacity int, slow time.Duration, logger *slog.Logger) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceRing
	}
	return &Tracer{
		capacity: capacity, slow: slow, logger: logger,
		byID: make(map[string]*Trace, capacity),
	}
}

// StartTrace returns ctx carrying a new active trace named name, using
// the context's request ID as the trace ID (a fresh ID is minted — and
// attached to the returned context — when absent). A nil tracer returns
// ctx unchanged and a nil trace; all operations on the nil trace are
// no-ops, so disabled tracing needs no branching at call sites.
func (tr *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if tr == nil {
		return ctx, nil
	}
	id := RequestID(ctx)
	if id == "" {
		id = NewRequestID()
		ctx = WithRequestID(ctx, id)
	}
	t := &Trace{
		tracer: tr, id: id, name: name, start: time.Now(),
		root: &TraceSpan{Name: name, DurNS: -1}, spans: 1,
	}
	ctx = context.WithValue(ctx, traceKey{}, t)
	ctx = context.WithValue(ctx, spanKey{}, ctxSpan{tr: t, node: t.root})
	return ctx, t
}

func (tr *Tracer) record(t *Trace) {
	tr.mu.Lock()
	if len(tr.ring) >= tr.capacity {
		evict := len(tr.ring) - tr.capacity + 1
		for _, old := range tr.ring[:evict] {
			delete(tr.byID, old.id)
		}
		n := copy(tr.ring, tr.ring[evict:])
		for i := n; i < len(tr.ring); i++ {
			tr.ring[i] = nil
		}
		tr.ring = tr.ring[:n]
	}
	tr.ring = append(tr.ring, t)
	tr.byID[t.id] = t
	tr.mu.Unlock()
	if tr.logger != nil {
		if sum := t.Summary(); sum.Slow {
			tr.logger.Warn("slow trace",
				"trace_id", sum.ID, "trace_name", sum.Name,
				"duration_us", sum.DurNS/1e3, "spans", sum.Spans,
				"trace", t.Export())
		}
	}
}

// Summaries returns summaries of the retained traces, newest first. A nil
// tracer returns nil.
func (tr *Tracer) Summaries() []TraceExport {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	traces := make([]*Trace, len(tr.ring))
	copy(traces, tr.ring)
	tr.mu.Unlock()
	out := make([]TraceExport, 0, len(traces))
	for i := len(traces) - 1; i >= 0; i-- {
		out = append(out, traces[i].Summary())
	}
	return out
}

// Get returns the retained trace with the given ID. A nil tracer returns
// nothing.
func (tr *Tracer) Get(id string) (*Trace, bool) {
	if tr == nil {
		return nil, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.byID[id]
	return t, ok
}

var processTracer atomic.Pointer[Tracer]

// SetDefaultTracer installs t as the process-wide tracer used by the
// package-level StartTrace (nil disables it). Intended for the shell and
// bench harness; the HTTP server holds its own tracer.
func SetDefaultTracer(t *Tracer) { processTracer.Store(t) }

// DefaultTracer returns the tracer installed by SetDefaultTracer, or nil.
func DefaultTracer() *Tracer { return processTracer.Load() }

// StartTrace starts a trace named name against the default tracer; with
// no tracer installed it returns ctx unchanged and a nil trace.
func StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	return DefaultTracer().StartTrace(ctx, name)
}
