package obs

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

type reqIDKey struct{}

// WithRequestID returns ctx carrying the request ID. An empty id returns
// ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

var (
	procEpoch = uint64(time.Now().UnixNano())
	reqSeq    atomic.Uint64
)

// NewRequestID returns a process-unique request identifier: a per-process
// epoch prefix plus a monotonic sequence number.
func NewRequestID() string {
	return strconv.FormatUint(procEpoch&0xffffffff, 16) + "-" +
		strconv.FormatUint(reqSeq.Add(1), 16)
}

// Span times one stage of a request into a histogram and — when started
// with StartSpanCtx under an active trace — into a node of that trace's
// span tree.
type Span struct {
	hist  *Histogram
	start time.Time
	cs    ctxSpan
	d     time.Duration
	ended bool
}

// NewSpan starts timing against h (which may be nil for a plain timer).
// The span is not attached to any trace; use StartSpanCtx for that.
func NewSpan(h *Histogram) Span { return Span{hist: h, start: time.Now()} }

// StartSpanCtx starts a span named name timing against h (which may be
// nil). When ctx carries an active trace, the span becomes a child of the
// context's current span and the returned context carries it as the new
// current span; otherwise the returned context is ctx unchanged and the
// only cost over NewSpan is one context lookup.
func StartSpanCtx(ctx context.Context, name string, h *Histogram) (context.Context, Span) {
	sp := Span{hist: h, start: time.Now()}
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, sp
	}
	node := tr.startSpan(spanNode(ctx), name, sp.start)
	if node == nil { // trace finished, or its span budget is exhausted
		return ctx, sp
	}
	sp.cs = ctxSpan{tr: tr, node: node}
	return context.WithValue(ctx, spanKey{}, sp.cs), sp
}

// End stops the span, records the duration into the histogram and the
// trace node (if any), and returns it. End is idempotent: only the first
// call records; later calls return the already-recorded duration, so a
// deferred End after an explicit one no longer doubles histogram counts.
func (s *Span) End() time.Duration {
	if s.ended {
		return s.d
	}
	s.ended = true
	s.d = time.Since(s.start)
	if s.hist != nil {
		s.hist.ObserveDuration(s.d)
		if s.cs.tr != nil {
			s.hist.noteExemplar(s.d.Seconds(), s.cs.tr.ID())
		}
	}
	if s.cs.tr != nil {
		s.cs.tr.endSpan(s.cs.node, s.d)
	}
	return s.d
}

// Annotate attaches a key/value attribute to the span's trace node; a
// no-op for spans not attached to a trace. Both key and value must be
// compile-time bounded (vet: obslabel); use AnnotateInt for dynamic
// numbers.
func (s *Span) Annotate(key, value string) {
	if s.cs.tr != nil {
		s.cs.tr.annotate(s.cs.node, key, value)
	}
}

// AnnotateInt attaches an integer attribute to the span's trace node; a
// no-op for spans not attached to a trace.
func (s *Span) AnnotateInt(key string, v int64) {
	if s.cs.tr != nil {
		s.cs.tr.annotate(s.cs.node, key, strconv.FormatInt(v, 10))
	}
}

// AnnotateCtx attaches a key/value attribute to the current span carried
// by ctx; a no-op outside a trace. It lets callees annotate their caller's
// span without threading the Span handle through the call chain.
func AnnotateCtx(ctx context.Context, key, value string) {
	if cs, ok := ctx.Value(spanKey{}).(ctxSpan); ok && cs.tr != nil {
		cs.tr.annotate(cs.node, key, value)
	}
}

// AnnotateIntCtx attaches an integer attribute to the current span carried
// by ctx; a no-op outside a trace.
func AnnotateIntCtx(ctx context.Context, key string, v int64) {
	if cs, ok := ctx.Value(spanKey{}).(ctxSpan); ok && cs.tr != nil {
		cs.tr.annotate(cs.node, key, strconv.FormatInt(v, 10))
	}
}
