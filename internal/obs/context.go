package obs

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

type reqIDKey struct{}

// WithRequestID returns ctx carrying the request ID. An empty id returns
// ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

var (
	procEpoch = uint64(time.Now().UnixNano())
	reqSeq    atomic.Uint64
)

// NewRequestID returns a process-unique request identifier: a per-process
// epoch prefix plus a monotonic sequence number.
func NewRequestID() string {
	return strconv.FormatUint(procEpoch&0xffffffff, 16) + "-" +
		strconv.FormatUint(reqSeq.Add(1), 16)
}

// Span times one stage of a request into a histogram.
type Span struct {
	hist  *Histogram
	start time.Time
}

// StartSpan starts timing against h (which may be nil for a plain timer).
func StartSpan(h *Histogram) Span { return Span{hist: h, start: time.Now()} }

// End stops the span, records the duration and returns it. Safe to call
// multiple times; every call records.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.ObserveDuration(d)
	}
	return d
}
