package obs

import (
	"context"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "op", "query")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("op", "op", "query"); again == c {
		t.Fatal("different names must not share a handle")
	}
	// Label order does not split series.
	same := r.Counter("ops_total", "op", "query")
	if same != c {
		t.Fatal("same series must return the same handle")
	}
	g := r.Gauge("in_flight")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "x", "1", "y", "2")
	b := r.Counter("m", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order must not split series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as a gauge after counter should panic")
		}
	}()
	r.Gauge("m")
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Resolve the handle every iteration: exercises the
				// registry map under concurrency, not just the atomics.
				r.Counter("c_total", "shard", "s").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{0.001, 0.01, 0.1}).Observe(0.005)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "shard", "s").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
	h := r.Histogram("h", nil)
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.001, 0.01, 0.1})
	// Prometheus le semantics: upper bounds are inclusive.
	h.Observe(0.0005) // le=0.001
	h.Observe(0.001)  // le=0.001 (boundary is inclusive)
	h.Observe(0.0011) // le=0.01
	h.Observe(0.1)    // le=0.1 (boundary)
	h.Observe(0.2)    // +Inf
	want := []uint64{2, 1, 1, 1}
	got := h.BucketCounts()
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], w, got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if s := h.Sum(); s < 0.30259 || s > 0.30261 {
		t.Fatalf("sum = %v, want ~0.3026", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 3, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 50; i++ {
		h.Observe(2.5) // bucket (2,3]
	}
	approx := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	if p50 := h.Quantile(0.50); !approx(p50, 1.0) {
		t.Fatalf("p50 = %v, want 1.0", p50)
	}
	// rank 95: 45 of 50 into the (2,3] bucket → 2 + 0.9.
	if p95 := h.Quantile(0.95); !approx(p95, 2.9) {
		t.Fatalf("p95 = %v, want 2.9", p95)
	}
	if h.Quantile(0.50) > h.Quantile(0.95) || h.Quantile(0.95) > h.Quantile(0.99) {
		t.Fatal("quantiles must be monotone")
	}
	// Observations beyond the last bound clamp to it.
	over := r.Histogram("over", []float64{1})
	over.Observe(50)
	if got := over.Quantile(0.99); !approx(got, 1) {
		t.Fatalf("overflow quantile = %v, want clamp to 1", got)
	}
	// Empty histogram.
	if got := r.Histogram("empty", []float64{1}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

// TestPrometheusExposition is the exposition-format golden test: exact
// output for a small deterministic registry.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("requests_total", "HTTP requests by endpoint.")
	r.Counter("requests_total", "endpoint", "view", "status", "2xx").Add(3)
	r.Counter("requests_total", "endpoint", "query", "status", "4xx").Inc()
	r.Gauge("in_flight").Set(2)
	h := r.Histogram("stage_seconds", []float64{0.001, 0.25}, "stage", "eval")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE in_flight gauge
in_flight 2
# HELP requests_total HTTP requests by endpoint.
# TYPE requests_total counter
requests_total{endpoint="query",status="4xx"} 1
requests_total{endpoint="view",status="2xx"} 3
# TYPE stage_seconds histogram
stage_seconds_bucket{stage="eval",le="0.001"} 2
stage_seconds_bucket{stage="eval",le="0.25"} 2
stage_seconds_bucket{stage="eval",le="+Inf"} 3
stage_seconds_sum{stage="eval"} 0.501
stage_seconds_count{stage="eval"} 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `m{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Help("m_total", "line one\nline \\two")
	r.Counter("m_total").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP m_total line one\nline \\two`+"\n") {
		t.Fatalf("help escaping wrong:\n%s", b.String())
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	r := NewRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("empty registry wrote %q, want empty output", b.String())
	}
	// Help for a never-registered metric must not invent a series either.
	r.Help("ghost_total", "never registered")
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("help-only registry wrote %q, want empty output", b.String())
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "x", "1")
	c.Add(9)
	g := r.Gauge("g")
	g.Set(-4)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(1.5)
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 ||
		snap.Counters[0].Labels["x"] != "1" || snap.Counters[0].ID != `c_total{x="1"}` {
		t.Fatalf("counter snap: %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != -4 {
		t.Fatalf("gauge snap: %+v", snap.Gauges)
	}
	hs := snap.Histograms
	if len(hs) != 1 || hs[0].Count != 1 || hs[0].Sum != 1.5 || hs[0].P50 <= 1 || hs[0].P50 > 2 {
		t.Fatalf("histogram snap: %+v", hs)
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset did not zero the series")
	}
	if got := h.BucketCounts(); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("reset left bucket counts: %v", got)
	}
}

func TestRequestIDContext(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == "" || a == b {
		t.Fatalf("request IDs must be unique and non-empty: %q %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Fatalf("RequestID = %q, want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("empty ctx RequestID = %q, want \"\"", got)
	}
	if got := WithRequestID(context.Background(), ""); got != context.Background() {
		t.Fatal("empty id must return ctx unchanged")
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", []float64{10})
	sp := NewSpan(h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("duration = %v, want > 0", d)
	}
	if h.Count() != 1 {
		t.Fatalf("span did not record: count = %d", h.Count())
	}
	// nil histogram span is a plain timer
	nilSpan := NewSpan(nil)
	if d := nilSpan.End(); d < 0 {
		t.Fatalf("nil span duration = %v", d)
	}
}

// TestSpanEndIdempotent is the regression test for the double-record
// footgun: an explicit End followed by a deferred End used to observe the
// histogram twice.
func TestSpanEndIdempotent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", []float64{10})
	sp := NewSpan(h)
	first := sp.End()
	second := sp.End()
	if h.Count() != 1 {
		t.Fatalf("double End recorded %d observations, want 1", h.Count())
	}
	if first != second {
		t.Fatalf("second End returned %v, want the recorded %v", second, first)
	}
	// The same holds for trace-attached spans: one histogram observation,
	// one finished trace node.
	tr := NewTracer(4, 0, nil)
	ctx, trace := tr.StartTrace(context.Background(), "req")
	_, child := StartSpanCtx(ctx, "stage", h)
	child.End()
	child.End()
	trace.Finish()
	if h.Count() != 2 {
		t.Fatalf("traced double End: histogram count = %d, want 2", h.Count())
	}
	ex := trace.Export()
	if len(ex.Root.Children) != 1 || ex.Root.Children[0].DurNS < 0 {
		t.Fatalf("trace tree after double End: %+v", ex.Root)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub_total").Inc()
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // second call is a no-op, no panic
	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), "pub_total") {
		t.Fatalf("expvar payload missing counter: %s", v.String())
	}
}
