// Package obs is the repository's dependency-free telemetry layer: a
// concurrent-safe registry of counters, gauges and fixed-bucket latency
// histograms, Prometheus text exposition and expvar publication, structured
// snapshots for the bench harness, and request-scoped span timing with
// request IDs propagated via context.Context.
//
// The package mirrors the subset of the Prometheus data model this
// repository needs — stdlib only, no client library. Metric handles are
// cheap to hold: instrumented packages resolve them once (package-level
// vars) so the hot path is a single atomic operation. The paper's pipeline
// stages (axiom-14 conflict resolution, axiom 15–17 view materialization,
// axiom 18–25 write application) all record into the shared
// xmlsec_stage_duration_seconds histogram, one series per stage.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageMetric is the shared histogram for pipeline stage timings; each
// stage is one series labeled stage=<name>.
const StageMetric = "xmlsec_stage_duration_seconds"

// LatencyBuckets are the default histogram bounds for stage timings, in
// seconds: 1µs to 10s, roughly ×2.5 per step.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default histogram bounds for small count
// distributions (group-commit batch sizes, queue depths): powers of two
// from 1 to 256.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with Prometheus le semantics: an
// observation lands in the first bucket whose upper bound is >= the value
// (bounds are inclusive); values beyond the last bound land in +Inf.
type Histogram struct {
	uppers  []float64
	counts  []atomic.Uint64 // len(uppers)+1; last is the +Inf overflow
	sumBits atomic.Uint64
	total   atomic.Uint64

	exMu sync.Mutex
	// exID and exV are the series' max-latency exemplar — the trace ID and
	// value of the largest traced observation since the last reset; both
	// are guarded by exMu.
	exID string
	exV  float64
}

func newHistogram(uppers []float64) *Histogram {
	if len(uppers) == 0 {
		uppers = LatencyBuckets
	}
	cp := append([]float64(nil), uppers...)
	sort.Float64s(cp)
	return &Histogram{uppers: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.uppers, v)].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Uppers returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Uppers() []float64 { return append([]float64(nil), h.uppers...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket containing the rank. Observations in the +Inf bucket
// clamp to the last finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, upper := range h.uppers {
		c := h.counts[i].Load()
		cum += c
		if c > 0 && float64(cum) >= rank {
			frac := (rank - float64(cum-c)) / float64(c)
			return lower + (upper-lower)*frac
		}
		lower = upper
	}
	return h.uppers[len(h.uppers)-1]
}

// noteExemplar records a traced observation, keeping the largest value
// seen since the last reset so a p99 outlier on /metrics links back to
// the trace that produced it. Only traced spans call it, so untraced hot
// paths never touch the exemplar mutex.
func (h *Histogram) noteExemplar(v float64, traceID string) {
	if traceID == "" {
		return
	}
	h.exMu.Lock()
	if h.exID == "" || v >= h.exV {
		h.exID, h.exV = traceID, v
	}
	h.exMu.Unlock()
}

// Exemplar returns the max-latency exemplar's trace ID and value; ok is
// false when no traced observation has been recorded since the last
// reset.
func (h *Histogram) Exemplar() (traceID string, v float64, ok bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exID, h.exV, h.exID != ""
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sumBits.Store(0)
	h.exMu.Lock()
	h.exID, h.exV = "", 0
	h.exMu.Unlock()
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) time series in a registry.
type series struct {
	id     string // name + canonical label rendering, e.g. a_total{k="v"}
	name   string
	labels []string // alternating key, value; sorted by key
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metric series. All methods are safe for concurrent use;
// getter methods return the same handle for the same (name, labels).
type Registry struct {
	mu         sync.Mutex
	series     map[string]*series
	help       map[string]string
	expvarOnce sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series), help: make(map[string]string)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the instrumented packages
// record into.
func Default() *Registry { return defaultRegistry }

// Stage returns the default registry's stage-duration histogram series for
// one pipeline stage.
func Stage(stage string) *Histogram {
	return Default().Histogram(StageMetric, LatencyBuckets, "stage", stage)
}

// Help sets the exposition HELP text for a metric name.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// Counter returns (creating if needed) the counter for name and the given
// label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.get(name, kindCounter, labels, nil).counter
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.get(name, kindGauge, labels, nil).gauge
}

// Histogram returns (creating if needed) the histogram for name and labels.
// buckets are the upper bounds (nil = LatencyBuckets); they are fixed by the
// first registration.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return r.get(name, kindHistogram, labels, buckets).hist
}

func (r *Registry) get(name string, k kind, labels []string, buckets []float64) *series {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs: " + name)
	}
	ls := canonicalLabels(labels)
	id := name + labelString(ls, "", "")
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[id]; ok {
		if s.kind != k {
			panic("obs: " + id + " already registered as a " + s.kind.String())
		}
		return s
	}
	s := &series{id: id, name: name, labels: ls, kind: k}
	switch k {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(buckets)
	}
	r.series[id] = s
	return s
}

// Reset zeroes every series in place. Handles held by instrumented packages
// stay valid. Intended for the bench harness and tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.series {
		switch s.kind {
		case kindCounter:
			s.counter.v.Store(0)
		case kindGauge:
			s.gauge.v.Store(0)
		case kindHistogram:
			s.hist.reset()
		}
	}
}

// canonicalLabels copies the pairs and sorts them by key so label order at
// the call site does not split series.
func canonicalLabels(labels []string) []string {
	if len(labels) == 0 {
		return nil
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		ps = append(ps, pair{labels[i], labels[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	out := make([]string, 0, len(labels))
	for _, p := range ps {
		out = append(out, p.k, p.v)
	}
	return out
}

// labelString renders {k="v",...}; extraK/extraV append one more pair
// (used for the histogram le label). Empty labels and no extra renders "".
func labelString(labels []string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }
