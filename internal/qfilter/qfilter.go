// Package qfilter implements the alternative read-enforcement strategy the
// paper's conclusion sketches (§5, after Fundulaki & Marx [9]): instead of
// materializing the user's view and evaluating queries on it, queries are
// evaluated directly on the source document through a security filter that
// reflects the user's privileges — hiding invisible nodes (hereditarily)
// and substituting RESTRICTED for position-only labels.
//
// The paper leaves open "how answers to filtered queries could include
// RESTRICTED labels"; this package's answer is the xpath.Security label
// hook, and the package's property tests establish the theorem the paper
// asks for: for every query, filtered evaluation on the source is
// answer-equivalent to plain evaluation on the materialized view.
//
// The trade-off is quantified by the BenchmarkQueryFilter ablation: the
// filtered path wins for one-shot queries on large documents (no O(n)
// materialization), while the view path amortizes over many queries per
// policy epoch — which is why internal/core materializes and caches.
//
// internal/rewrite is the static refinement of this package: where qfilter
// computes the full axiom-14 permission mask (one policy evaluation per
// document version) and then filters, rewrite re-derives the same
// per-node decision during evaluation from chain-only rules, holding no
// per-document state at all. The session ladder (core.Session.QueryTiered)
// tries rewrite first and lands here when the profile or query leaves the
// chain-only fragment; both rungs are pinned answer-equivalent to the view
// by this package's property tests and internal/rewrite's oracle.
package qfilter

import (
	"securexml/internal/policy"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// ForPerms builds the security filter equivalent to the axiom-15–17 view
// for the user whose permissions are pm:
//
//   - a node is visible iff the user holds read or position on it (the
//     hereditary "parent must be selected" condition of axioms 16–17 is
//     supplied by the evaluator, which never descends below an invisible
//     node);
//   - a visible node's effective label is its own with read, RESTRICTED
//     with position only (axiom 17).
func ForPerms(pm *policy.Perms) *xpath.Security {
	return &xpath.Security{
		Visible: func(n *xmltree.Node) bool {
			if n.Kind() == xmltree.KindDocument {
				return true // axiom 15
			}
			return pm.Has(n, policy.Read) || pm.Has(n, policy.Position)
		},
		Label: func(n *xmltree.Node) string {
			if n.Kind() == xmltree.KindDocument {
				return n.Label()
			}
			if pm.Has(n, policy.Read) {
				return n.Label()
			}
			return xmltree.Restricted
		},
	}
}

// Select evaluates path on the source document under the user's filter and
// returns the matching *source* nodes in document order. The answer set
// equals { source node of v : v in Select(view, path) }.
func Select(doc *xmltree.Document, pm *policy.Perms, path string, vars xpath.Vars) (xpath.NodeSet, error) {
	c, err := xpath.Compile(path)
	if err != nil {
		return nil, err
	}
	return c.SelectFiltered(doc.Root(), vars, ForPerms(pm))
}

// Eval evaluates an arbitrary expression (node-set or atomic) under the
// user's filter.
func Eval(doc *xmltree.Document, pm *policy.Perms, path string, vars xpath.Vars) (xpath.Value, error) {
	c, err := xpath.Compile(path)
	if err != nil {
		return nil, err
	}
	return c.EvalFiltered(doc.Root(), vars, ForPerms(pm))
}
