package qfilter

import (
	"fmt"
	"math/rand"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

func paperEnv(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

func perms(t *testing.T, d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, user string) *policy.Perms {
	t.Helper()
	pm, err := p.Evaluate(d, h, user)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

// ids extracts source identifiers from a node-set.
func ids(ns xpath.NodeSet) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.ID().String()
	}
	return out
}

// checkEquivalence: Select on source with the filter must return the same
// identifier sequence as Select on the materialized view, and atomic
// results must match too.
func checkEquivalence(t *testing.T, d *xmltree.Document, pm *policy.Perms, path, user string) {
	t.Helper()
	vars := xpath.Vars{"USER": xpath.String(user)}
	v := view.Materialize(d, pm)

	c, err := xpath.Compile(path)
	if err != nil {
		t.Fatal(err)
	}
	filteredVal, ferr := c.EvalFiltered(d.Root(), vars, ForPerms(pm))
	viewVal, verr := c.Eval(v.Doc.Root(), vars)
	if (ferr == nil) != (verr == nil) {
		t.Fatalf("%s (%s): error mismatch: filtered=%v view=%v", path, user, ferr, verr)
	}
	if ferr != nil {
		return
	}
	fNS, fIsNS := filteredVal.(xpath.NodeSet)
	vNS, vIsNS := viewVal.(xpath.NodeSet)
	if fIsNS != vIsNS {
		t.Fatalf("%s (%s): type mismatch: %s vs %s", path, user, filteredVal.TypeName(), viewVal.TypeName())
	}
	if fIsNS {
		got, want := ids(fNS), ids(vNS)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s (%s):\n filtered: %v\n view:     %v", path, user, got, want)
		}
		return
	}
	if filteredVal != viewVal {
		t.Errorf("%s (%s): filtered %v, view %v", path, user, filteredVal, viewVal)
	}
}

// paperQueries covers names, wildcards, text tests, predicates, positions,
// string functions, counts — including RESTRICTED-label node tests.
var paperQueries = []string{
	"/patients",
	"/patients/*",
	"//diagnosis",
	"//diagnosis/text()",
	"//service/text()",
	"/patients/franck",
	"/patients/RESTRICTED",
	"/patients/RESTRICTED/service",
	"//RESTRICTED",
	"//*[text() = 'RESTRICTED']",
	"//*[service = 'pneumology']",
	"/patients/*[2]",
	"/patients/*[last()]",
	"//diagnosis/..",
	"//text()",
	"count(//diagnosis)",
	"count(//*)",
	"string(/patients/franck/diagnosis)",
	"string(//RESTRICTED)",
	"name(/patients/*[1])",
	"count(//*[name() = 'RESTRICTED'])",
	"sum(//nothing)",
	"normalize-space(/patients/robert/service)",
	"boolean(//RESTRICTED)",
	"//*[starts-with(text(), 'pneu')]",
	"/patients/descendant-or-self::node()",
	"//diagnosis/following-sibling::*",
	"//service/preceding-sibling::*",
	"//tonsillitis",
}

// TestPaperEquivalence: every query, every paper user.
func TestPaperEquivalence(t *testing.T) {
	d, h, p := paperEnv(t)
	for _, user := range h.Users() {
		pm := perms(t, d, h, p, user)
		for _, q := range paperQueries {
			checkEquivalence(t, d, pm, q, user)
		}
	}
}

// TestFilteredHidesInvisible: direct checks that the filter enforces the
// model (not only equivalence).
func TestFilteredHidesInvisible(t *testing.T) {
	d, h, p := paperEnv(t)
	// robert must not reach franck's data however the query is phrased.
	pm := perms(t, d, h, p, "robert")
	for _, q := range []string{"//franck", "//tonsillitis", "/patients/franck/diagnosis", "//*[text() = 'tonsillitis']"} {
		ns, err := Select(d, pm, q, xpath.Vars{"USER": xpath.String("robert")})
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != 0 {
			t.Errorf("robert reached %s: %d nodes", q, len(ns))
		}
	}
	// The secretary sees diagnosis texts as RESTRICTED: the true label must
	// not match, the effective label must.
	pmS := perms(t, d, h, p, "beaufort")
	ns, err := Select(d, pmS, "//tonsillitis", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Error("secretary matched the hidden label")
	}
	ns, err = Select(d, pmS, "//diagnosis/RESTRICTED", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Error("text nodes are not elements; RESTRICTED name test must not match them")
	}
	ns, err = Select(d, pmS, "//diagnosis/text()", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("secretary sees %d diagnosis texts", len(ns))
	}
	// And their effective string value is RESTRICTED.
	v, err := Eval(d, pmS, "string(//diagnosis/text())", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != xmltree.Restricted {
		t.Errorf("effective text = %q", v.Str())
	}
}

// TestFilteredStringValueOfElements: an element's string-value under the
// filter concatenates only visible text, with RESTRICTED substitutions.
func TestFilteredStringValueOfElements(t *testing.T) {
	d, h, p := paperEnv(t)
	pm := perms(t, d, h, p, "beaufort")
	v, err := Eval(d, pm, "string(/patients/franck)", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "otolaryngology" + xmltree.Restricted
	if v.Str() != want {
		t.Errorf("franck string-value = %q, want %q", v.Str(), want)
	}
	// For robert (patient), franck is invisible entirely: string of the
	// patients element includes only robert's subtree.
	pmR := perms(t, d, h, p, "robert")
	v, err = Eval(d, pmR, "string(/patients)", xpath.Vars{"USER": xpath.String("robert")})
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "pneumologypneumonia" {
		t.Errorf("patients string-value for robert = %q", v.Str())
	}
}

// TestRandomizedEquivalence fuzzes documents, policies and queries.
func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	names := []string{"a", "b", "c", "diagnosis"}
	queryPool := []string{
		"//a", "//b", "//c", "//diagnosis", "//RESTRICTED", "//*",
		"//a/node()", "/root/*", "//text()", "count(//*)",
		"//*[a]", "//*[not(b)]", "//a[1]", "//*[text()]",
		"string(//a)", "//b/following-sibling::*", "//c/ancestor::*",
		"//*[name() = 'RESTRICTED']", "count(//RESTRICTED)",
	}
	for round := 0; round < 30; round++ {
		// Random doc.
		d := xmltree.New(nil)
		root, err := d.AppendChild(d.Root(), xmltree.KindElement, "root")
		if err != nil {
			t.Fatal(err)
		}
		elems := []*xmltree.Node{root}
		for i := 0; i < 15+rng.Intn(15); i++ {
			parent := elems[rng.Intn(len(elems))]
			if rng.Intn(4) == 0 {
				if _, err := d.AppendChild(parent, xmltree.KindText, fmt.Sprintf("t%d", i)); err != nil {
					t.Fatal(err)
				}
				continue
			}
			n, err := d.AppendChild(parent, xmltree.KindElement, names[rng.Intn(len(names))])
			if err != nil {
				t.Fatal(err)
			}
			elems = append(elems, n)
		}
		// Random policy.
		h := subject.NewHierarchy()
		if err := h.AddUser("u"); err != nil {
			t.Fatal(err)
		}
		p := policy.New()
		paths := []string{
			"/descendant-or-self::node()", "//a", "//b", "//c/node()",
			"//diagnosis", "/root/*", "//a/node()", "//text()",
		}
		for i := 0; i < 4+rng.Intn(6); i++ {
			eff := policy.Accept
			if rng.Intn(3) == 0 {
				eff = policy.Deny
			}
			priv := policy.Read
			if rng.Intn(3) == 0 {
				priv = policy.Position
			}
			err := p.Add(h, policy.Rule{
				Effect: eff, Privilege: priv, Path: paths[rng.Intn(len(paths))],
				Subject: "u", Priority: int64(i + 1),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		pm := perms(t, d, h, p, "u")
		for _, q := range queryPool {
			checkEquivalence(t, d, pm, q, "u")
		}
	}
}

func TestSelectCompileError(t *testing.T) {
	d, h, p := paperEnv(t)
	pm := perms(t, d, h, p, "laporte")
	if _, err := Select(d, pm, "//[", nil); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := Eval(d, pm, "//[", nil); err == nil {
		t.Error("bad expression accepted")
	}
}
