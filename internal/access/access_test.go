package access

import (
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

// paperEnv builds the Fig. 2 document, Fig. 3 hierarchy and axiom-13 policy.
func paperEnv(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

func text(t *testing.T, d *xmltree.Document, path string) string {
	t.Helper()
	ns, err := xpath.Select(d, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		return ""
	}
	return ns[0].StringValue()
}

func countNodes(t *testing.T, d *xmltree.Document, path string) int {
	t.Helper()
	ns, err := xpath.Select(d, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return len(ns)
}

func fragment(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	f, err := xmltree.ParseString(src, xmltree.ParseOptions{Fragment: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnknownUserRejected(t *testing.T) {
	d, h, p := paperEnv(t)
	_, _, err := Execute(d, h, p, "mallory", &xupdate.Op{Kind: xupdate.Remove, Select: "//diagnosis"})
	if err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestInvalidOpRejected(t *testing.T) {
	d, h, p := paperEnv(t)
	if _, _, err := Execute(d, h, p, "laporte", &xupdate.Op{Kind: xupdate.Remove, Select: "//["}); err == nil {
		t.Fatal("invalid op accepted")
	}
}

// TestDoctorUpdatesDiagnosis: rule 11 — doctors update diagnosis content via
// xupdate:update (the update privilege sits on the diagnosis text child).
func TestDoctorUpdatesDiagnosis(t *testing.T) {
	d, h, p := paperEnv(t)
	res, _, err := Execute(d, h, p, "laporte",
		&xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "pharyngitis"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Errorf("applied = %d: %+v", res.Applied, res)
	}
	if got := text(t, d, "/patients/franck/diagnosis"); got != "pharyngitis" {
		t.Errorf("diagnosis = %q", got)
	}
}

// TestSecretaryCannotUpdateDiagnosis: secretaries hold update on patient
// names (rule 9) but not on diagnosis content, and they cannot even read it
// (rule 2) — both conditions of axiom 21 fail.
func TestSecretaryCannotUpdateDiagnosis(t *testing.T) {
	d, h, p := paperEnv(t)
	res, _, err := Execute(d, h, p, "beaufort",
		&xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "flu"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.Skipped) == 0 {
		t.Errorf("result = %+v, want nothing applied", res)
	}
	if got := text(t, d, "/patients/franck/diagnosis"); got != "tonsillitis" {
		t.Errorf("diagnosis changed to %q", got)
	}
}

// TestSecretaryRenamesPatient: rule 9 — update privilege on /patients/*.
func TestSecretaryRenamesPatient(t *testing.T) {
	d, h, p := paperEnv(t)
	res, _, err := Execute(d, h, p, "beaufort",
		&xupdate.Op{Kind: xupdate.Rename, Select: "/patients/franck", NewValue: "francois"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result = %+v", res)
	}
	if countNodes(t, d, "/patients/francois") != 1 {
		t.Error("rename did not reach the source")
	}
}

// TestRenameRequiresReadOnRestrictedNode: an epidemiologist granted update
// on patient names still cannot rename them, because they are RESTRICTED in
// the view (§4.4.2: RESTRICTED nodes cannot be updated).
func TestRenameRequiresReadOnRestrictedNode(t *testing.T) {
	d, h, p := paperEnv(t)
	if err := p.Grant(h, policy.Update, "/patients/*", "epidemiologist"); err != nil {
		t.Fatal(err)
	}
	// The epidemiologist sees the name as RESTRICTED and addresses it as such.
	res, v, err := Execute(d, h, p, "richard",
		&xupdate.Op{Kind: xupdate.Rename, Select: "/patients/RESTRICTED[1]", NewValue: "leaked"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 1 {
		t.Fatalf("selection on view failed: %+v\n%s", res, v.Doc.Sketch())
	}
	if res.Applied != 0 || len(res.Skipped) != 1 {
		t.Errorf("RESTRICTED node renamed: %+v", res)
	}
	if countNodes(t, d, "/patients/franck") != 1 {
		t.Error("source label changed")
	}
}

// TestSelectByRestrictedLabel: §4.4.2 — "PATH might include some node tests
// equal to RESTRICTED"; operations on nodes *below* a RESTRICTED node work
// when privileges allow.
func TestSelectByRestrictedLabel(t *testing.T) {
	d, h, p := paperEnv(t)
	if err := p.Grant(h, policy.Update, "//service/node()", "epidemiologist"); err != nil {
		t.Fatal(err)
	}
	res, _, err := Execute(d, h, p, "richard",
		&xupdate.Op{Kind: xupdate.Update, Select: "/patients/RESTRICTED[2]/service", NewValue: "cardiology"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := text(t, d, "/patients/robert/service"); got != "cardiology" {
		t.Errorf("service = %q", got)
	}
}

// TestDoctorPosesDiagnosis: rule 10 — insert on //diagnosis via append.
func TestDoctorPosesDiagnosis(t *testing.T) {
	d, h, p := paperEnv(t)
	// Clear robert's diagnosis first (doctor holds delete on the text).
	if _, _, err := Execute(d, h, p, "laporte",
		&xupdate.Op{Kind: xupdate.Remove, Select: "/patients/robert/diagnosis/text()"}); err != nil {
		t.Fatal(err)
	}
	res, _, err := Execute(d, h, p, "laporte", &xupdate.Op{
		Kind: xupdate.Append, Select: "/patients/robert/diagnosis",
		Content: fragment(t, "bronchitis"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Created != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := text(t, d, "/patients/robert/diagnosis"); got != "bronchitis" {
		t.Errorf("diagnosis = %q", got)
	}
}

// TestSecretaryInsertsMedicalFile: rule 8 — insert on /patients.
func TestSecretaryInsertsMedicalFile(t *testing.T) {
	d, h, p := paperEnv(t)
	res, _, err := Execute(d, h, p, "beaufort", &xupdate.Op{
		Kind: xupdate.Append, Select: "/patients",
		Content: fragment(t, "<albert><service>cardiology</service><diagnosis/></albert>"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Created != 4 {
		t.Fatalf("result = %+v", res)
	}
	if countNodes(t, d, "/patients/albert") != 1 {
		t.Error("albert missing from source")
	}
}

// TestPatientCannotWriteAnything: patients hold no write privileges.
func TestPatientCannotWriteAnything(t *testing.T) {
	d, h, p := paperEnv(t)
	ops := []*xupdate.Op{
		{Kind: xupdate.Rename, Select: "/patients/robert", NewValue: "king"},
		{Kind: xupdate.Update, Select: "/patients/robert/diagnosis", NewValue: "cured"},
		{Kind: xupdate.Append, Select: "/patients/robert", Content: fragment(t, "<note/>")},
		{Kind: xupdate.InsertBefore, Select: "/patients/robert", Content: fragment(t, "<fake/>")},
		{Kind: xupdate.Remove, Select: "/patients/robert/diagnosis"},
	}
	before := d.Len()
	for _, op := range ops {
		res, _, err := Execute(d, h, p, "robert", op)
		if err != nil {
			t.Fatalf("%s: %v", op.Kind, err)
		}
		if res.Applied != 0 {
			t.Errorf("%s: applied %d, want 0", op.Kind, res.Applied)
		}
	}
	if d.Len() != before {
		t.Error("document changed despite denials")
	}
	if got := text(t, d, "/patients/robert"); got == "" {
		t.Error("robert vanished")
	}
}

// TestInsertBeforeRequiresParentPrivilege: axioms 23–24 place the insert
// privilege on the *parent* of the selected node.
func TestInsertBeforeRequiresParentPrivilege(t *testing.T) {
	d, h, p := paperEnv(t)
	// Secretary holds insert on /patients (rule 8), so inserting a sibling
	// of franck (child of /patients) is allowed.
	res, _, err := Execute(d, h, p, "beaufort", &xupdate.Op{
		Kind: xupdate.InsertBefore, Select: "/patients/franck",
		Content: fragment(t, "<aaron/>"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result = %+v", res)
	}
	kids, _ := xpath.Select(d, "/patients/*", nil)
	if kids[0].Label() != "aaron" {
		t.Error("aaron not first child")
	}
	// But inserting a sibling of a service element is not: the secretary
	// has no insert privilege on the patient element.
	res2, _, err := Execute(d, h, p, "beaufort", &xupdate.Op{
		Kind: xupdate.InsertAfter, Select: "/patients/franck/service",
		Content: fragment(t, "<allergy/>"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied != 0 {
		t.Errorf("insert-after applied without parent privilege: %+v", res2)
	}
}

// TestRemoveDeletesInvisibleDescendants: axiom 25 and the §4.4.2 discussion
// — a delete-privileged user removes a subtree even where parts of it are
// invisible to them (confidentiality preferred over integrity).
func TestRemoveDeletesInvisibleDescendants(t *testing.T) {
	d, h, p := paperEnv(t)
	// Give secretaries delete on patient files. Secretaries cannot read
	// diagnosis *content* (rule 2), which is position-only in their view.
	if err := p.Grant(h, policy.Delete, "/patients/*", "secretary"); err != nil {
		t.Fatal(err)
	}
	res, _, err := Execute(d, h, p, "beaufort",
		&xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result = %+v", res)
	}
	// The whole 5-node subtree is gone, including the invisible text.
	if res.Removed != 5 {
		t.Errorf("removed %d nodes, want 5", res.Removed)
	}
	if countNodes(t, d, "//franck") != 0 || countNodes(t, d, "//tonsillitis") != 0 {
		t.Error("subtree not fully removed")
	}
}

// TestPartialSuccessAcrossSelection: an op addressing several nodes succeeds
// where privileges allow and reports the rest as skipped (§4.4.2).
func TestPartialSuccessAcrossSelection(t *testing.T) {
	d, h, p := paperEnv(t)
	// Doctor updates all diagnoses: both children are updatable.
	res, _, err := Execute(d, h, p, "laporte",
		&xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "checked"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 2 || res.Applied != 2 {
		t.Fatalf("doctor update result = %+v", res)
	}
	// Secretary renames everything under /patients: the two patient names
	// succeed (rule 9); selected diagnosis/service elements are skipped.
	d2, h2, p2 := paperEnv(t)
	res2, _, err := Execute(d2, h2, p2, "beaufort",
		&xupdate.Op{Kind: xupdate.Rename, Select: "/patients//*", NewValue: "X"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Selected != 6 { // 2 names + 2 services + 2 diagnoses
		t.Fatalf("selected = %d, want 6", res2.Selected)
	}
	if res2.Applied != 2 || len(res2.Skipped) != 4 {
		t.Errorf("result = %+v, want 2 applied, 4 skipped", res2)
	}
	if countNodes(t, d2, "/patients/X") != 2 {
		t.Error("patient names not renamed")
	}
	if countNodes(t, d2, "//service") != 2 {
		t.Error("service elements renamed without privilege")
	}
}

// TestWriteSelectionIsOnView: a doctor-wide select path cannot touch nodes
// outside the user's view even when the user holds the write privilege on
// them in the source. Construct: a user with delete on everything but read
// on nothing below /patients — their view stops at /patients, so //diagnosis
// selects nothing.
func TestWriteSelectionIsOnView(t *testing.T) {
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := subject.NewHierarchy()
	if err := h.AddUser("auditor"); err != nil {
		t.Fatal(err)
	}
	p := policy.New()
	if err := p.Grant(h, policy.Delete, "/descendant-or-self::node()", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := p.Grant(h, policy.Read, "/patients", "auditor"); err != nil {
		t.Fatal(err)
	}
	res, _, err := Execute(d, h, p, "auditor",
		&xupdate.Op{Kind: xupdate.Remove, Select: "//diagnosis"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 0 || res.Applied != 0 {
		t.Fatalf("selection escaped the view: %+v", res)
	}
	if countNodes(t, d, "//diagnosis") != 2 {
		t.Error("invisible nodes were deleted")
	}
}

// TestUpdateSkipsInvisibleChildren: axiom 20 quantifies over child_view —
// children hidden from the view are not updated even if the update
// privilege would allow it.
func TestUpdateSkipsInvisibleChildren(t *testing.T) {
	d, _ := xmltree.ParseString("<r><e><a>1</a><b>2</b></e></r>", xmltree.ParseOptions{})
	h := subject.NewHierarchy()
	if err := h.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	p := policy.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Grant(h, policy.Read, "/descendant-or-self::node()", "u"))
	must(p.Grant(h, policy.Update, "/descendant-or-self::node()", "u"))
	must(p.Revoke(h, policy.Read, "/r/e/b", "u")) // b invisible
	res, _, err := Execute(d, h, p, "u",
		&xupdate.Op{Kind: xupdate.Update, Select: "/r/e", NewValue: "z"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result = %+v", res)
	}
	if countNodes(t, d, "/r/e/z") != 1 {
		t.Error("visible child not updated")
	}
	if countNodes(t, d, "/r/e/b") != 1 {
		t.Error("invisible child was updated")
	}
}

// TestRemoveNestedSelectionOnView: removing an ancestor first must leave the
// descendant's removal as a recorded skip, not an error.
func TestRemoveNestedSelectionOnView(t *testing.T) {
	d, h, p := paperEnv(t)
	if err := p.Grant(h, policy.Delete, "/patients/* | /patients//diagnosis", "doctor"); err != nil {
		t.Fatal(err)
	}
	res, _, err := Execute(d, h, p, "laporte",
		&xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck | /patients/franck/diagnosis"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 2 || res.Applied != 1 || len(res.Skipped) != 1 {
		t.Errorf("result = %+v", res)
	}
}

// TestViewReturnedMatchesUser: the view handed back by Execute is the one
// the selection ran on.
func TestViewReturnedMatchesUser(t *testing.T) {
	d, h, p := paperEnv(t)
	_, v, err := Execute(d, h, p, "beaufort",
		&xupdate.Op{Kind: xupdate.Rename, Select: "/patients/franck", NewValue: "f2"})
	if err != nil {
		t.Fatal(err)
	}
	if v.User != "beaufort" {
		t.Errorf("view user = %q", v.User)
	}
	if v.Restricted != 2 {
		t.Errorf("view restricted = %d, want 2 (diagnosis texts)", v.Restricted)
	}
}

// TestInsertMultiTopFragmentsKeepOrder: multi-rooted content must land in
// fragment order for both insert-before and insert-after (axioms 23–24).
func TestInsertMultiTopFragmentsKeepOrder(t *testing.T) {
	d, h, p := paperEnv(t)
	res, _, err := Execute(d, h, p, "beaufort", &xupdate.Op{
		Kind: xupdate.InsertBefore, Select: "/patients/franck",
		Content: fragment(t, "<a1/><a2/>"),
	})
	if err != nil || res.Applied != 1 || res.Created != 2 {
		t.Fatalf("insert-before multi: %v %+v", err, res)
	}
	res, _, err = Execute(d, h, p, "beaufort", &xupdate.Op{
		Kind: xupdate.InsertAfter, Select: "/patients/franck",
		Content: fragment(t, "<z1/><z2/>"),
	})
	if err != nil || res.Applied != 1 || res.Created != 2 {
		t.Fatalf("insert-after multi: %v %+v", err, res)
	}
	kids, _ := xpath.Select(d, "/patients/*", nil)
	want := []string{"a1", "a2", "franck", "z1", "z2", "robert"}
	if len(kids) != len(want) {
		t.Fatalf("%d children", len(kids))
	}
	for i := range want {
		if kids[i].Label() != want[i] {
			got := make([]string, len(kids))
			for j, k := range kids {
				got[j] = k.Label()
			}
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestAppendMultiTopFragment: several top nodes all append under the target.
func TestAppendMultiTopFragment(t *testing.T) {
	d, h, p := paperEnv(t)
	res, _, err := Execute(d, h, p, "beaufort", &xupdate.Op{
		Kind: xupdate.Append, Select: "/patients",
		Content: fragment(t, "<p1/><p2>x</p2>"),
	})
	if err != nil || res.Applied != 1 || res.Created != 3 {
		t.Fatalf("append multi: %v %+v", err, res)
	}
	if countNodes(t, d, "/patients/p1") != 1 || countNodes(t, d, "/patients/p2") != 1 {
		t.Error("multi-top append incomplete")
	}
}

// TestRenameDocumentNodeSelection: selecting "/" is possible (axiom 15 puts
// it in every view) but renaming it is structurally refused.
func TestRenameDocumentNodeSelection(t *testing.T) {
	d, h, p := paperEnv(t)
	res, _, err := Execute(d, h, p, "laporte",
		&xupdate.Op{Kind: xupdate.Rename, Select: "/", NewValue: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 1 || res.Applied != 0 || len(res.Skipped) != 1 {
		t.Errorf("result = %+v", res)
	}
	// The document node also has no siblings for insert-before.
	res, _, err = Execute(d, h, p, "beaufort", &xupdate.Op{
		Kind: xupdate.InsertBefore, Select: "/", Content: fragment(t, "<x/>")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.Skipped) != 1 {
		t.Errorf("insert beside document node: %+v", res)
	}
}

// TestUpdateAttributeThroughView: updating an attribute's value via its
// view node (attributes are first-class nodes in the model).
func TestUpdateAttributeThroughView(t *testing.T) {
	d, err := xmltree.ParseString(`<r><e id="old">t</e></r>`, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.NewHierarchy()
	if err := h.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	p := policy.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Grant(h, policy.Read, "/descendant-or-self::node()", "u"))
	must(p.Grant(h, policy.Read, "//@* | //@*/node()", "u"))
	must(p.Grant(h, policy.Update, "//@id/node()", "u"))
	res, _, err := Execute(d, h, p, "u",
		&xupdate.Op{Kind: xupdate.Update, Select: "/r/e/@id", NewValue: "new"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result = %+v", res)
	}
	if countNodes(t, d, "/r/e[@id='new']") != 1 {
		t.Error("attribute not updated through the view path")
	}
}
