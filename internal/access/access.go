// Package access implements the write access controls of §4.4.2 (axioms
// 18–25): XUpdate operations whose target nodes are selected on the user's
// *view* rather than on the source database, killing the SQL-style covert
// channel of §2.2.
//
// Per-operation privilege requirements (§4.4.2), with n the selected node:
//
//	xupdate:rename        update on n, and read on n (a node shown with the
//	                      RESTRICTED label cannot be renamed, because that
//	                      would overwrite a label the user may not see)
//	xupdate:update        update AND read on each child of n in the view
//	                      (axioms 20–21)
//	xupdate:append        insert on n (axiom 22)
//	xupdate:insert-before insert on the parent of n (axiom 23)
//	xupdate:insert-after  insert on the parent of n (axiom 24)
//	xupdate:remove        delete on n (axiom 25); invisible descendants are
//	                      deleted silently — the paper prefers
//	                      confidentiality over integrity
//
// Operations may succeed on some selected nodes and fail on others; the
// Result records both.
package access

import (
	"context"
	"errors"
	"fmt"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

// ErrUnknownUser is returned when the session user is not in the hierarchy.
var ErrUnknownUser = errors.New("access: unknown user")

// Telemetry: the secured write pipeline records the view-select and the
// axiom 18–25 application loop as stages, plus per-kind op outcomes and
// per-node applied/skipped counts.
var (
	selectStage  = obs.Stage("xpath_eval")
	applyStage   = obs.Stage("xupdate_apply")
	nodesApplied = obs.Default().Counter("xmlsec_xupdate_nodes_total", "result", "applied")
	nodesSkipped = obs.Default().Counter("xmlsec_xupdate_nodes_total", "result", "skipped")
)

// opOutcome counts one secured operation by kind and outcome
// (applied | skipped | noop | error). The label drops the wire prefix:
// kind="update", not kind="xupdate:update".
func opOutcome(k xupdate.Kind, outcome string) {
	obs.Default().Counter("xmlsec_xupdate_ops_total",
		"kind", k.MetricLabel(), "outcome", outcome).Inc()
}

// Execute applies op on behalf of user: permissions are evaluated (axiom
// 14), the user's view is materialized (axioms 15–17), the op's select path
// runs on the view with $USER bound, and each selected node is updated in
// the source document if and only if the §4.4.2 privilege requirements
// hold. It returns the operation result and the view that was used.
func Execute(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, user string, op *xupdate.Op) (*xupdate.Result, *view.View, error) {
	return ExecuteWithVars(doc, h, pol, user, op, nil)
}

// ExecuteWithVars is Execute with additional XPath variable bindings (e.g.
// xupdate:variable bindings threaded through a modification sequence).
// $USER always binds to the session user. Dynamic content (value-of
// placeholders) is expanded against the user's *view*, so inserted copies
// can never carry data the user may not read.
func ExecuteWithVars(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, user string, op *xupdate.Op, extra xpath.Vars) (*xupdate.Result, *view.View, error) {
	return ExecuteWithVarsCtx(context.Background(), doc, h, pol, user, op, extra)
}

// ExecuteWithVarsCtx is ExecuteWithVars with request-scoped tracing: under
// an active trace the policy evaluation, view materialization, view-select
// and axiom 18–25 application loop all appear as child spans, the latter
// annotated with the op kind and per-node accounting.
func ExecuteWithVarsCtx(ctx context.Context, doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, user string, op *xupdate.Op, extra xpath.Vars) (*xupdate.Result, *view.View, error) {
	if !h.Exists(user) {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	if err := op.Validate(); err != nil {
		return nil, nil, err
	}
	if op.Kind == xupdate.Variable {
		return nil, nil, fmt.Errorf("access: variable bindings need a sequence context (Session.Apply)")
	}
	pm, err := pol.EvaluateCtx(ctx, doc, h, user)
	if err != nil {
		return nil, nil, err
	}
	v := view.MaterializeCtx(ctx, doc, pm)
	vars := make(xpath.Vars, len(extra)+1)
	for k, val := range extra {
		vars[k] = val
	}
	vars["USER"] = xpath.String(user)
	run := op
	if op.HasDynamicContent() {
		expanded, err := op.ExpandContent(v.Doc.Root(), vars)
		if err != nil {
			return nil, nil, fmt.Errorf("access: expanding dynamic content on view: %w", err)
		}
		cp := *op
		cp.Content = expanded
		run = &cp
	}
	_, selSpan := obs.StartSpanCtx(ctx, "view_select", selectStage)
	sel, err := xpath.Select(v.Doc, run.Select, vars)
	selSpan.AnnotateInt("selected", int64(len(sel)))
	selSpan.End()
	if err != nil {
		opOutcome(op.Kind, "error")
		return nil, nil, fmt.Errorf("access: evaluating select path on view: %w", err)
	}
	res := &xupdate.Result{Selected: len(sel)}
	_, applySpan := obs.StartSpanCtx(ctx, "secured_apply", applyStage)
	applySpan.Annotate("kind", op.Kind.MetricLabel())
	for _, vn := range sel {
		if err := applySecured(doc, pm, v, run, vn, res); err != nil {
			applySpan.End()
			opOutcome(op.Kind, "error")
			return nil, nil, err
		}
	}
	applySpan.AnnotateInt("applied", int64(res.Applied))
	applySpan.AnnotateInt("skipped", int64(len(res.Skipped)))
	applySpan.End()
	nodesApplied.Add(uint64(res.Applied))
	nodesSkipped.Add(uint64(len(res.Skipped)))
	switch {
	case res.Applied > 0:
		opOutcome(op.Kind, "applied")
	case len(res.Skipped) > 0:
		opOutcome(op.Kind, "skipped")
	default:
		opOutcome(op.Kind, "noop")
	}
	return res, v, nil
}

// skip records a per-node refusal.
func skip(res *xupdate.Result, n *xmltree.Node, reason string) {
	res.Skipped = append(res.Skipped, xupdate.SkipReason{NodeID: n.ID().String(), Reason: reason})
}

// applySecured enforces the §4.4.2 requirements for one node selected on
// the view and, if satisfied, performs the change on the source document.
func applySecured(doc *xmltree.Document, pm *policy.Perms, v *view.View, op *xupdate.Op, vn *xmltree.Node, res *xupdate.Result) error {
	// Map the view node back to its source node via the shared identifier.
	src := doc.NodeByID(vn.ID())
	if src == nil {
		// The node vanished from the source while this op ran over a
		// multi-node selection (e.g. removed with an earlier target).
		skip(res, vn, "node no longer exists in the source document")
		return nil
	}
	switch op.Kind {
	case xupdate.Rename:
		if src.Kind() == xmltree.KindDocument {
			skip(res, vn, "cannot rename the document node")
			return nil
		}
		if !pm.Has(src, policy.Update) {
			skip(res, vn, "update privilege required")
			return nil
		}
		if !pm.Has(src, policy.Read) {
			// The node is in the view only via position: its label shows as
			// RESTRICTED and must not be overwritten blindly.
			skip(res, vn, "node is RESTRICTED: renaming would overwrite a label the user cannot see")
			return nil
		}
		old := src.Label()
		if err := doc.Rename(src, op.NewValue); err != nil {
			return err
		}
		if old != op.NewValue {
			res.Deltas = append(res.Deltas, xupdate.Delta{Kind: xupdate.DeltaRelabel, NodeID: src.ID().String(), NewLabel: op.NewValue})
		}
		res.Applied++
	case xupdate.Update:
		// Axioms 20–21: the children of the selected node *in the view*,
		// each requiring both update and read.
		kids := vn.Children()
		if len(kids) == 0 {
			skip(res, vn, "no children visible to update (xupdate:update renames the children of the selected node)")
			return nil
		}
		applied := false
		for _, vk := range kids {
			sk := doc.NodeByID(vk.ID())
			if sk == nil {
				skip(res, vk, "child no longer exists in the source document")
				continue
			}
			if !pm.Has(sk, policy.Update) {
				skip(res, vk, "update privilege required on the child")
				continue
			}
			if !pm.Has(sk, policy.Read) {
				skip(res, vk, "read privilege required on the child (axiom 21)")
				continue
			}
			old := sk.Label()
			if err := doc.Rename(sk, op.NewValue); err != nil {
				return err
			}
			if old != op.NewValue {
				res.Deltas = append(res.Deltas, xupdate.Delta{Kind: xupdate.DeltaRelabel, NodeID: sk.ID().String(), NewLabel: op.NewValue})
			}
			applied = true
		}
		if applied {
			res.Applied++
		}
	case xupdate.Append:
		if !pm.Has(src, policy.Insert) {
			skip(res, vn, "insert privilege required")
			return nil
		}
		for _, top := range op.Content.Root().Children() {
			created, err := graft(doc, src, xmltree.GraftAppend, top, res)
			if err != nil {
				return err
			}
			res.Created += created
		}
		res.Applied++
	case xupdate.InsertBefore, xupdate.InsertAfter:
		// Axioms 23–24: insert privilege on the parent of the selected node.
		parent := vn.Parent()
		if parent == nil || src.Parent() == nil {
			skip(res, vn, "document node has no siblings")
			return nil
		}
		srcParent := doc.NodeByID(parent.ID())
		if srcParent == nil || !pm.Has(srcParent, policy.Insert) {
			skip(res, vn, "insert privilege required on the parent")
			return nil
		}
		mode := xmltree.GraftBefore
		tops := op.Content.Root().Children()
		if op.Kind == xupdate.InsertAfter {
			mode = xmltree.GraftAfter
			for i := len(tops) - 1; i >= 0; i-- {
				created, err := graft(doc, src, mode, tops[i], res)
				if err != nil {
					return err
				}
				res.Created += created
			}
		} else {
			for _, top := range tops {
				created, err := graft(doc, src, mode, top, res)
				if err != nil {
					return err
				}
				res.Created += created
			}
		}
		res.Applied++
	case xupdate.Remove:
		if !pm.Has(src, policy.Delete) {
			skip(res, vn, "delete privilege required")
			return nil
		}
		// Axiom 25: the whole source subtree goes, including nodes the user
		// cannot see (confidentiality over integrity).
		sub := src.Subtree()
		ids := make([]string, len(sub))
		for i, s := range sub {
			ids[i] = s.ID().String()
		}
		res.Removed += len(sub)
		if err := doc.Remove(src); err != nil {
			return err
		}
		res.Deltas = append(res.Deltas, xupdate.Delta{Kind: xupdate.DeltaRemove, NodeID: ids[0], RemovedIDs: ids})
		res.Applied++
	default:
		return fmt.Errorf("access: unknown operation kind %d", int(op.Kind))
	}
	return nil
}

// graft grafts srcTop relative to ref, records the insert delta, and
// returns the number of nodes created.
func graft(doc *xmltree.Document, ref *xmltree.Node, mode xmltree.GraftMode, srcTop *xmltree.Node, res *xupdate.Result) (int, error) {
	top, err := doc.Graft(ref, mode, srcTop)
	if err != nil {
		return 0, err
	}
	res.Deltas = append(res.Deltas, xupdate.Delta{Kind: xupdate.DeltaInsert, NodeID: top.ID().String()})
	return len(top.Subtree()), nil
}
