package access

// Reproduction of the §2.2 covert channel (experiment E7 in DESIGN.md).
//
// The SQL example of the paper, transposed to XML: user_B may update
// salaries but not read them. Under the baseline model [10] (writes
// evaluated on the source), the operation outcome reveals how many
// employees earn more than 3000 — "2 rows updated". Under this paper's
// model (writes evaluated on the view), the same operation selects nothing,
// because the salaries are not in user_B's view.

import (
	"testing"

	"securexml/internal/baseline"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

const employeesXML = `<employees>
  <employee><name>ann</name><salary>4000</salary></employee>
  <employee><name>bob</name><salary>3500</salary></employee>
  <employee><name>cid</name><salary>2000</salary></employee>
</employees>`

// covertEnv: user_B holds update on salary contents but read on nothing
// below the root — the §2.2 grant "sole update privilege".
func covertEnv(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := xmltree.ParseString(employeesXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.NewHierarchy()
	if err := h.AddUser("user_B"); err != nil {
		t.Fatal(err)
	}
	p := policy.New()
	if err := p.Grant(h, policy.Update, "//salary/node()", "user_B"); err != nil {
		t.Fatal(err)
	}
	if err := p.Grant(h, policy.Read, "/employees", "user_B"); err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

// probe is the §2.2 attack: "UPDATE ... WHERE salary > 3000" as an XUpdate.
var probe = &xupdate.Op{
	Kind:     xupdate.Update,
	Select:   "//employee[salary > 3000]/salary",
	NewValue: "9999",
}

// TestBaselineLeaksCount: under model [10], the attack succeeds and the
// result count reveals there are exactly 2 employees above 3000.
func TestBaselineLeaksCount(t *testing.T) {
	d, h, p := covertEnv(t)
	res, err := baseline.Execute(d, h, p, "user_B", probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 2 {
		t.Fatalf("baseline selected %d, want the leak of 2", res.Selected)
	}
	if res.Applied != 2 {
		t.Fatalf("baseline applied %d, want 2 ('2 rows updated')", res.Applied)
	}
}

// TestSecuredModelClosesChannel: under this paper's model the same probe
// runs against user_B's view, which contains no salary data; the result is
// indistinguishable from "no such employees".
func TestSecuredModelClosesChannel(t *testing.T) {
	d, h, p := covertEnv(t)
	res, _, err := Execute(d, h, p, "user_B", probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 0 || res.Applied != 0 {
		t.Fatalf("secured model leaked: %+v", res)
	}
	// And the database is untouched.
	if got := countNodes(t, d, "//salary[. = '9999']"); got != 0 {
		t.Errorf("secured model modified %d salaries", got)
	}
}

// TestSecuredResultIndependentOfHiddenData: the decisive property — two
// databases differing only in data hidden from user_B produce identical
// operation results, so no function of the result can leak. The baseline
// model distinguishes them.
func TestSecuredResultIndependentOfHiddenData(t *testing.T) {
	run := func(xml string, secured bool) *xupdate.Result {
		t.Helper()
		d, err := xmltree.ParseString(xml, xmltree.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h := subject.NewHierarchy()
		if err := h.AddUser("user_B"); err != nil {
			t.Fatal(err)
		}
		p := policy.New()
		if err := p.Grant(h, policy.Update, "//salary/node()", "user_B"); err != nil {
			t.Fatal(err)
		}
		if err := p.Grant(h, policy.Read, "/employees", "user_B"); err != nil {
			t.Fatal(err)
		}
		if secured {
			res, _, err := Execute(d, h, p, "user_B", probe)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		res, err := baseline.Execute(d, h, p, "user_B", probe)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rich := `<employees><employee><name>a</name><salary>9000</salary></employee><employee><name>b</name><salary>8000</salary></employee></employees>`
	poor := `<employees><employee><name>a</name><salary>100</salary></employee><employee><name>b</name><salary>200</salary></employee></employees>`

	sRich, sPoor := run(rich, true), run(poor, true)
	if sRich.Selected != sPoor.Selected || sRich.Applied != sPoor.Applied {
		t.Errorf("secured results differ on hidden data: %+v vs %+v", sRich, sPoor)
	}
	bRich, bPoor := run(rich, false), run(poor, false)
	if bRich.Selected == bPoor.Selected {
		t.Error("baseline unexpectedly does not distinguish the databases (test setup broken?)")
	}
}

// TestBaselinePrivilegeChecksStillApply: the baseline is not a free-for-all
// — it checks write privileges like [10]; it only skips read mediation.
func TestBaselinePrivilegeChecksStillApply(t *testing.T) {
	d, h, p := covertEnv(t)
	// Renaming employee elements requires update on them — not granted.
	res, err := baseline.Execute(d, h, p, "user_B",
		&xupdate.Op{Kind: xupdate.Rename, Select: "//employee", NewValue: "person"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.Skipped) != 3 {
		t.Errorf("result = %+v", res)
	}
	if _, err := baseline.Execute(d, h, p, "ghost", probe); err == nil {
		t.Error("baseline accepted unknown user")
	}
	if _, err := baseline.Execute(d, h, p, "user_B", &xupdate.Op{Kind: xupdate.Remove, Select: "//["}); err == nil {
		t.Error("baseline accepted invalid op")
	}
}

// TestBaselineAllOpsOnSource exercises the remaining baseline operations so
// the comparison harness (bench B3) measures real work.
func TestBaselineAllOpsOnSource(t *testing.T) {
	d, h, p := covertEnv(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Grant(h, policy.Insert, "//employee", "user_B"))
	must(p.Grant(h, policy.Insert, "/employees", "user_B"))
	must(p.Grant(h, policy.Delete, "//employee[3]", "user_B"))

	frag := func(s string) *xmltree.Document {
		f, err := xmltree.ParseString(s, xmltree.ParseOptions{Fragment: true})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	res, err := baseline.Execute(d, h, p, "user_B",
		&xupdate.Op{Kind: xupdate.Append, Select: "//employee[1]", Content: frag("<badge>1</badge>")})
	if err != nil || res.Applied != 1 {
		t.Fatalf("append: %v %+v", err, res)
	}
	res, err = baseline.Execute(d, h, p, "user_B",
		&xupdate.Op{Kind: xupdate.InsertBefore, Select: "//employee[1]", Content: frag("<intern/>")})
	if err != nil || res.Applied != 1 {
		t.Fatalf("insert-before: %v %+v", err, res)
	}
	res, err = baseline.Execute(d, h, p, "user_B",
		&xupdate.Op{Kind: xupdate.InsertAfter, Select: "//employee[1]", Content: frag("<temp/>")})
	if err != nil || res.Applied != 1 {
		t.Fatalf("insert-after: %v %+v", err, res)
	}
	res, err = baseline.Execute(d, h, p, "user_B",
		&xupdate.Op{Kind: xupdate.Remove, Select: "//employee[3]"})
	if err != nil || res.Applied != 1 {
		t.Fatalf("remove: %v %+v", err, res)
	}
}

// TestValueOfCannotExfiltrateHiddenData: the second face of the §2.2
// channel — using a write's *content* rather than its result count to copy
// hidden data somewhere readable. With dynamic content expanded on the
// view, the copy carries only what the user could already see.
func TestValueOfCannotExfiltrateHiddenData(t *testing.T) {
	// user_B can insert under /employees but cannot read salaries.
	d, h, p := covertEnv(t)
	if err := p.Grant(h, policy.Insert, "/employees", "user_B"); err != nil {
		t.Fatal(err)
	}
	ops, err := xupdate.ParseModificationsString(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/employees">
		    <xupdate:element name="stash"><xupdate:value-of select="//salary"/></xupdate:element>
		  </xupdate:append>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline [10]: the stash fills with the hidden salaries.
	dB, hB, pB := covertEnv(t)
	if err := pB.Grant(hB, policy.Insert, "/employees", "user_B"); err != nil {
		t.Fatal(err)
	}
	bres, err := baseline.Execute(dB, hB, pB, "user_B", ops[0])
	if err != nil {
		t.Fatal(err)
	}
	if bres.Created < 2 {
		t.Fatalf("baseline did not exfiltrate (test setup broken): %+v", bres)
	}
	if got := countNodes(t, dB, "/employees/stash/salary"); got != 3 {
		t.Fatalf("baseline stash has %d salaries, want 3 (the leak)", got)
	}
	// This paper's model: value-of expands on user_B's view, which contains
	// no salaries — the stash is created but empty.
	res, _, err := Execute(d, h, p, "user_B", ops[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("append refused entirely: %+v", res)
	}
	if got := countNodes(t, d, "/employees/stash/salary"); got != 0 {
		t.Errorf("secured model exfiltrated %d salaries", got)
	}
	if got := text(t, d, "/employees/stash"); got != "" {
		t.Errorf("secured stash contains %q", got)
	}
}
