// Package baseline implements the write semantics of the author's earlier
// model [10] (and of SQL, per §2.2): write operations are evaluated on the
// *source* database regardless of the read privileges of the user. The
// select path of an operation therefore reads data the user is not
// permitted to see, and the operation outcome (how many rows/nodes were
// touched) leaks that data back — the covert channel the paper's model
// closes by evaluating writes on views instead.
//
// The package exists as the comparison baseline for experiment E7 and the
// covert-channel example; it must not be used to protect anything.
package baseline

import (
	"errors"
	"fmt"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

// ErrUnknownUser is returned when the session user is not in the hierarchy.
var ErrUnknownUser = errors.New("baseline: unknown user")

// Execute applies op on behalf of user with the model-[10] semantics:
// the select path runs on the source document, and only the *write*
// privilege relevant to the operation is checked per node — read privileges
// are ignored exactly as in SQL's UPDATE/DELETE.
//
// The returned Result's Selected and Applied counts are visible to the user
// in this model (SQL reports "n rows updated"); that is the leak.
func Execute(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, user string, op *xupdate.Op) (*xupdate.Result, error) {
	if !h.Exists(user) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if op.Kind == xupdate.Variable {
		return nil, errors.New("baseline: variable bindings need a sequence context")
	}
	pm, err := pol.Evaluate(doc, h, user)
	if err != nil {
		return nil, err
	}
	vars := xpath.Vars{"USER": xpath.String(user)}
	if op.HasDynamicContent() {
		// Model [10] reads the source even here — another face of the leak.
		expanded, err := op.ExpandContent(doc.Root(), vars)
		if err != nil {
			return nil, err
		}
		cp := *op
		cp.Content = expanded
		op = &cp
	}
	sel, err := xpath.Select(doc, op.Select, vars) // source, not view
	if err != nil {
		return nil, fmt.Errorf("baseline: evaluating select path: %w", err)
	}
	res := &xupdate.Result{Selected: len(sel)}
	for _, n := range sel {
		if err := applyOne(doc, pm, op, n, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func skip(res *xupdate.Result, n *xmltree.Node, reason string) {
	res.Skipped = append(res.Skipped, xupdate.SkipReason{NodeID: n.ID().String(), Reason: reason})
}

func applyOne(doc *xmltree.Document, pm *policy.Perms, op *xupdate.Op, n *xmltree.Node, res *xupdate.Result) error {
	if n.Document() != doc {
		skip(res, n, "already removed with an ancestor")
		return nil
	}
	switch op.Kind {
	case xupdate.Rename:
		if n.Kind() == xmltree.KindDocument {
			skip(res, n, "cannot rename the document node")
			return nil
		}
		if !pm.Has(n, policy.Update) {
			skip(res, n, "update privilege required")
			return nil
		}
		if err := doc.Rename(n, op.NewValue); err != nil {
			return err
		}
		res.Applied++
	case xupdate.Update:
		kids := append([]*xmltree.Node(nil), n.Children()...)
		if len(kids) == 0 {
			skip(res, n, "no children to update")
			return nil
		}
		applied := false
		for _, k := range kids {
			if !pm.Has(k, policy.Update) {
				skip(res, k, "update privilege required on the child")
				continue
			}
			if err := doc.Rename(k, op.NewValue); err != nil {
				return err
			}
			applied = true
		}
		if applied {
			res.Applied++
		}
	case xupdate.Append:
		if !pm.Has(n, policy.Insert) {
			skip(res, n, "insert privilege required")
			return nil
		}
		for _, top := range op.Content.Root().Children() {
			t, err := doc.Graft(n, xmltree.GraftAppend, top)
			if err != nil {
				return err
			}
			res.Created += len(t.Subtree())
		}
		res.Applied++
	case xupdate.InsertBefore, xupdate.InsertAfter:
		parent := n.Parent()
		if parent == nil {
			skip(res, n, "document node has no siblings")
			return nil
		}
		if !pm.Has(parent, policy.Insert) {
			skip(res, n, "insert privilege required on the parent")
			return nil
		}
		mode := xmltree.GraftBefore
		tops := op.Content.Root().Children()
		if op.Kind == xupdate.InsertAfter {
			mode = xmltree.GraftAfter
			for i := len(tops) - 1; i >= 0; i-- {
				t, err := doc.Graft(n, mode, tops[i])
				if err != nil {
					return err
				}
				res.Created += len(t.Subtree())
			}
		} else {
			for _, top := range tops {
				t, err := doc.Graft(n, mode, top)
				if err != nil {
					return err
				}
				res.Created += len(t.Subtree())
			}
		}
		res.Applied++
	case xupdate.Remove:
		if n.Kind() == xmltree.KindDocument {
			skip(res, n, "cannot remove the document node")
			return nil
		}
		if !pm.Has(n, policy.Delete) {
			skip(res, n, "delete privilege required")
			return nil
		}
		res.Removed += len(n.Subtree())
		if err := doc.Remove(n); err != nil {
			return err
		}
		res.Applied++
	default:
		return fmt.Errorf("baseline: unknown operation kind %d", int(op.Kind))
	}
	return nil
}
