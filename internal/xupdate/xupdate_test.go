package xupdate

import (
	"strings"
	"testing"

	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

const src = `<patients>
  <franck>
    <service>otolaryngology</service>
    <diagnosis>tonsillitis</diagnosis>
  </franck>
  <robert>
    <service>pneumology</service>
    <diagnosis>pneumonia</diagnosis>
  </robert>
</patients>`

func parse(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func firstText(t *testing.T, d *xmltree.Document, path string) string {
	t.Helper()
	ns, err := xpath.Select(d, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		return ""
	}
	return ns[0].StringValue()
}

func count(t *testing.T, d *xmltree.Document, path string) int {
	t.Helper()
	ns, err := xpath.Select(d, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return len(ns)
}

func TestRenameAllMatches(t *testing.T) {
	d := parse(t)
	res, err := Execute(d, &Op{Kind: Rename, Select: "//service", NewValue: "department"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 2 || res.Applied != 2 {
		t.Errorf("result = %+v, want 2 selected and applied", res)
	}
	if got := count(t, d, "//department"); got != 2 {
		t.Errorf("%d department elements, want 2", got)
	}
	if got := count(t, d, "//service"); got != 0 {
		t.Errorf("%d service elements remain", got)
	}
	// Content is untouched.
	if got := firstText(t, d, "/patients/franck/department"); got != "otolaryngology" {
		t.Errorf("franck department = %q", got)
	}
}

func TestUpdateReplacesChildren(t *testing.T) {
	d := parse(t)
	res, err := Execute(d, &Op{Kind: Update, Select: "/patients/franck/diagnosis", NewValue: "pharyngitis"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Errorf("applied = %d, want 1", res.Applied)
	}
	if got := firstText(t, d, "/patients/franck/diagnosis"); got != "pharyngitis" {
		t.Errorf("diagnosis = %q, want pharyngitis", got)
	}
	// Robert's diagnosis unchanged.
	if got := firstText(t, d, "/patients/robert/diagnosis"); got != "pneumonia" {
		t.Errorf("robert diagnosis = %q", got)
	}
}

func TestUpdateEmptyElementCreatesText(t *testing.T) {
	d, err := xmltree.ParseString("<r><empty/></r>", xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(d, &Op{Kind: Update, Select: "/r/empty", NewValue: "filled"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Created != 1 {
		t.Errorf("result = %+v", res)
	}
	if got := firstText(t, d, "/r/empty"); got != "filled" {
		t.Errorf("empty element content = %q", got)
	}
}

func TestUpdateAttributeValue(t *testing.T) {
	d, err := xmltree.ParseString(`<r><e id="old"/></r>`, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(d, &Op{Kind: Update, Select: "/r/e/@id", NewValue: "new"}, nil); err != nil {
		t.Fatal(err)
	}
	ns, err := xpath.Select(d, "/r/e[@id='new']", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 {
		t.Error("attribute value not updated")
	}
}

func TestAppendTree(t *testing.T) {
	d := parse(t)
	frag, err := xmltree.ParseString("<albert><service>cardiology</service><diagnosis/></albert>",
		xmltree.ParseOptions{Fragment: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(d, &Op{Kind: Append, Select: "/patients", Content: frag}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Created != 4 {
		t.Errorf("result = %+v, want 1 applied, 4 created", res)
	}
	kids, err := xpath.Select(d, "/patients/*", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 3 || kids[2].Label() != "albert" {
		t.Errorf("patients children after append: %d, last = %s", len(kids), kids[len(kids)-1].Label())
	}
	if got := firstText(t, d, "/patients/albert/service"); got != "cardiology" {
		t.Errorf("albert service = %q", got)
	}
}

func TestAppendToSeveralTargets(t *testing.T) {
	d := parse(t)
	frag, _ := xmltree.ParseString("<note>seen</note>", xmltree.ParseOptions{Fragment: true})
	res, err := Execute(d, &Op{Kind: Append, Select: "/patients/*", Content: frag}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Axiom 7: the tree is inserted at as many places as nodes addressed.
	if res.Applied != 2 || res.Created != 4 {
		t.Errorf("result = %+v, want 2 applied, 4 created", res)
	}
	if got := count(t, d, "//note"); got != 2 {
		t.Errorf("%d note elements, want 2", got)
	}
}

func TestInsertBeforeAfterOrder(t *testing.T) {
	d := parse(t)
	fragB, _ := xmltree.ParseString("<first/><second/>", xmltree.ParseOptions{Fragment: true})
	if _, err := Execute(d, &Op{Kind: InsertBefore, Select: "/patients/franck", Content: fragB}, nil); err != nil {
		t.Fatal(err)
	}
	fragA, _ := xmltree.ParseString("<third/><fourth/>", xmltree.ParseOptions{Fragment: true})
	if _, err := Execute(d, &Op{Kind: InsertAfter, Select: "/patients/robert", Content: fragA}, nil); err != nil {
		t.Fatal(err)
	}
	kids, err := xpath.Select(d, "/patients/*", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "franck", "robert", "third", "fourth"}
	if len(kids) != len(want) {
		t.Fatalf("children: %d, want %d", len(kids), len(want))
	}
	for i, k := range kids {
		if k.Label() != want[i] {
			got := make([]string, len(kids))
			for j, kk := range kids {
				got[j] = kk.Label()
			}
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestInsertAfterMiddleSibling(t *testing.T) {
	d := parse(t)
	frag, _ := xmltree.ParseString("<middle/>", xmltree.ParseOptions{Fragment: true})
	if _, err := Execute(d, &Op{Kind: InsertAfter, Select: "/patients/franck", Content: frag}, nil); err != nil {
		t.Fatal(err)
	}
	kids, _ := xpath.Select(d, "/patients/*", nil)
	if kids[1].Label() != "middle" || kids[2].Label() != "robert" {
		t.Error("insert-after did not land between franck and robert")
	}
}

func TestRemoveSubtree(t *testing.T) {
	d := parse(t)
	res, err := Execute(d, &Op{Kind: Remove, Select: "/patients/franck/diagnosis"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Removed != 2 { // diagnosis element + its text
		t.Errorf("result = %+v, want 1 applied, 2 removed", res)
	}
	if got := count(t, d, "/patients/franck/diagnosis"); got != 0 {
		t.Error("diagnosis still present")
	}
	if got := count(t, d, "/patients/robert/diagnosis"); got != 1 {
		t.Error("robert's diagnosis was removed too")
	}
}

func TestRemoveNestedSelection(t *testing.T) {
	// Selecting both an ancestor and its descendant must not double-remove.
	d := parse(t)
	res, err := Execute(d, &Op{Kind: Remove, Select: "/patients/franck | /patients/franck/diagnosis"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 2 || res.Applied != 1 || len(res.Skipped) != 1 {
		t.Errorf("result = %+v, want 1 applied 1 skipped of 2 selected", res)
	}
	if got := count(t, d, "/patients/*"); got != 1 {
		t.Errorf("%d patients remain, want 1", got)
	}
}

func TestExecuteEmptySelection(t *testing.T) {
	d := parse(t)
	res, err := Execute(d, &Op{Kind: Remove, Select: "//nothing"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 0 || res.Applied != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestExecuteWithVariables(t *testing.T) {
	d := parse(t)
	vars := xpath.Vars{"USER": xpath.String("franck")}
	res, err := Execute(d, &Op{Kind: Remove, Select: "/patients/*[name() = $USER]"}, vars)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Errorf("applied = %d", res.Applied)
	}
	if got := count(t, d, "/patients/franck"); got != 0 {
		t.Error("franck not removed")
	}
}

func TestValidateRejectsBadOps(t *testing.T) {
	frag, _ := xmltree.ParseString("<x/>", xmltree.ParseOptions{Fragment: true})
	cases := []*Op{
		{Kind: Update, Select: ""},
		{Kind: Update, Select: "//["},
		{Kind: Update, Select: "//a", Content: frag},
		{Kind: Rename, Select: "//a", Content: frag},
		{Kind: Append, Select: "//a"},
		{Kind: InsertBefore, Select: "//a"},
		{Kind: InsertAfter, Select: "//a", Content: xmltree.NewFragment(nil)},
		{Kind: Remove, Select: "//a", NewValue: "x"},
		{Kind: Kind(42), Select: "//a"},
	}
	for i, op := range cases {
		if err := op.Validate(); err == nil {
			t.Errorf("case %d (%s): expected validation error", i, op.Kind)
		}
	}
}

func TestRenameDocumentNodeSkipped(t *testing.T) {
	d := parse(t)
	res, err := Execute(d, &Op{Kind: Rename, Select: "/", NewValue: "x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.Skipped) != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Update: "xupdate:update", Rename: "xupdate:rename", Append: "xupdate:append",
		InsertBefore: "xupdate:insert-before", InsertAfter: "xupdate:insert-after",
		Remove: "xupdate:remove",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}

// --- wire format --------------------------------------------------------------

const wireDoc = `<?xml version="1.0"?>
<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:rename select="//service">department</xupdate:rename>
  <xupdate:update select="/patients/franck/diagnosis">pharyngitis</xupdate:update>
  <xupdate:append select="/patients">
    <xupdate:element name="albert">
      <xupdate:attribute name="insured">yes</xupdate:attribute>
      <service>cardiology</service>
      <xupdate:element name="diagnosis"><xupdate:text>angina</xupdate:text></xupdate:element>
    </xupdate:element>
  </xupdate:append>
  <xupdate:insert-before select="/patients/franck"><zoe/></xupdate:insert-before>
  <xupdate:insert-after select="/patients/robert"><yann/></xupdate:insert-after>
  <xupdate:remove select="/patients/robert/diagnosis"/>
</xupdate:modifications>`

func TestParseModifications(t *testing.T) {
	ops, err := ParseModificationsString(wireDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 6 {
		t.Fatalf("%d operations, want 6", len(ops))
	}
	wantKinds := []Kind{Rename, Update, Append, InsertBefore, InsertAfter, Remove}
	for i, op := range ops {
		if op.Kind != wantKinds[i] {
			t.Errorf("op %d kind = %s, want %s", i, op.Kind, wantKinds[i])
		}
		if err := op.Validate(); err != nil {
			t.Errorf("op %d invalid: %v", i, err)
		}
	}
	if ops[0].NewValue != "department" || ops[1].NewValue != "pharyngitis" {
		t.Errorf("text params: %q, %q", ops[0].NewValue, ops[1].NewValue)
	}
	albert := ops[2].Content.Root().Children()[0]
	if albert.Label() != "albert" {
		t.Fatalf("append content root = %q", albert.Label())
	}
	if v, ok := albert.AttrValue("insured"); !ok || v != "yes" {
		t.Errorf("xupdate:attribute constructor: %q, %v", v, ok)
	}
	if len(albert.Children()) != 2 {
		t.Errorf("albert content children = %d, want 2", len(albert.Children()))
	}
	if albert.Children()[1].StringValue() != "angina" {
		t.Errorf("nested element/text constructors: %q", albert.Children()[1].StringValue())
	}
}

func TestParseAndExecuteWireDoc(t *testing.T) {
	d := parse(t)
	ops, err := ParseModificationsString(wireDoc)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if _, err := Execute(d, op, nil); err != nil {
			t.Fatalf("executing op %d (%s): %v", i, op.Kind, err)
		}
	}
	if got := count(t, d, "//department"); got != 2 {
		t.Errorf("departments = %d", got)
	}
	if got := firstText(t, d, "/patients/franck/diagnosis"); got != "pharyngitis" {
		t.Errorf("franck diagnosis = %q", got)
	}
	kids, _ := xpath.Select(d, "/patients/*", nil)
	want := []string{"zoe", "franck", "robert", "yann", "albert"}
	if len(kids) != len(want) {
		t.Fatalf("%d children, want %d", len(kids), len(want))
	}
	for i := range want {
		if kids[i].Label() != want[i] {
			t.Fatalf("child %d = %q, want %q", i, kids[i].Label(), want[i])
		}
	}
	if got := count(t, d, "/patients/robert/diagnosis"); got != 0 {
		t.Error("robert's diagnosis not removed")
	}
}

func TestParseModificationsErrors(t *testing.T) {
	bad := []string{
		``,
		`<wrong/>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><xupdate:nonsense select="/x"/></xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><xupdate:remove/></xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><literal select="/x"/></xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">stray text</xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><xupdate:update select="/x"><child/></xupdate:update></xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><xupdate:append select="/x"><xupdate:element/></xupdate:append></xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">`,
	}
	for _, src := range bad {
		if _, err := ParseModificationsString(src); err == nil {
			t.Errorf("ParseModifications(%q): expected error", src)
		}
	}
}

func TestParseModificationsPrefixWithoutNamespace(t *testing.T) {
	// Documents omitting the xmlns declaration still parse.
	src := `<xupdate:modifications><xupdate:remove select="/x"/></xupdate:modifications>`
	ops, err := ParseModificationsString(src)
	if err != nil {
		t.Fatalf("prefix-only parse: %v", err)
	}
	if len(ops) != 1 || ops[0].Kind != Remove {
		t.Errorf("ops = %v", ops)
	}
}
