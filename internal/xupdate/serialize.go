package xupdate

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"securexml/internal/xmltree"
)

// WriteModifications renders operations back to the <xupdate:modifications>
// wire syntax. Round trip holds: ParseModifications(WriteModifications(ops))
// yields equivalent operations. Content fragments render as literal XML
// with value-of placeholders restored to <xupdate:value-of/> elements.
//
// It is what the operation journal stores, so a command log can be
// re-parsed and re-executed during recovery.
func WriteModifications(w io.Writer, ops []*Op) error {
	if _, err := fmt.Fprintf(w, "<xupdate:modifications version=\"1.0\" xmlns:xupdate=%q>\n", Namespace); err != nil {
		return err
	}
	for _, op := range ops {
		if err := writeOp(w, op); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</xupdate:modifications>\n")
	return err
}

// ModificationsString is WriteModifications into a string.
func ModificationsString(ops []*Op) (string, error) {
	var b strings.Builder
	if err := WriteModifications(&b, ops); err != nil {
		return "", err
	}
	return b.String(), nil
}

func writeOp(w io.Writer, op *Op) error {
	sel := escapeAttr(op.Select)
	switch op.Kind {
	case Remove:
		_, err := fmt.Fprintf(w, "  <xupdate:remove select=\"%s\"/>\n", sel)
		return err
	case Variable:
		_, err := fmt.Fprintf(w, "  <xupdate:variable name=\"%s\" select=\"%s\"/>\n",
			escapeAttr(op.NewValue), sel)
		return err
	case Update, Rename:
		name := "update"
		if op.Kind == Rename {
			name = "rename"
		}
		_, err := fmt.Fprintf(w, "  <xupdate:%s select=\"%s\">%s</xupdate:%s>\n",
			name, sel, escapeText(op.NewValue), name)
		return err
	case Append, InsertBefore, InsertAfter:
		name := map[Kind]string{Append: "append", InsertBefore: "insert-before", InsertAfter: "insert-after"}[op.Kind]
		if _, err := fmt.Fprintf(w, "  <xupdate:%s select=\"%s\">", name, sel); err != nil {
			return err
		}
		if op.Content != nil {
			for _, c := range op.Content.Root().Children() {
				if err := writeContent(w, c); err != nil {
					return err
				}
			}
		}
		_, err := fmt.Fprintf(w, "</xupdate:%s>\n", name)
		return err
	default:
		return fmt.Errorf("xupdate: cannot serialize operation kind %d", int(op.Kind))
	}
}

// writeContent renders one content node: literal elements/text, with
// placeholders restored.
func writeContent(w io.Writer, n *xmltree.Node) error {
	switch n.Kind() {
	case xmltree.KindText:
		_, err := io.WriteString(w, escapeText(n.Label()))
		return err
	case xmltree.KindComment:
		if isPlaceholder(n) {
			sel := strings.TrimPrefix(n.Label(), valueOfMarker)
			_, err := fmt.Fprintf(w, "<xupdate:value-of select=\"%s\"/>", escapeAttr(sel))
			return err
		}
		_, err := fmt.Fprintf(w, "<!--%s-->", n.Label())
		return err
	case xmltree.KindElement:
		if _, err := fmt.Fprintf(w, "<%s", n.Label()); err != nil {
			return err
		}
		for _, a := range n.Attributes() {
			if _, err := fmt.Fprintf(w, " %s=\"%s\"", a.Label(), escapeAttr(a.StringValue())); err != nil {
				return err
			}
		}
		if len(n.Children()) == 0 {
			_, err := io.WriteString(w, "/>")
			return err
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		for _, c := range n.Children() {
			if err := writeContent(w, c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "</%s>", n.Label())
		return err
	default:
		return fmt.Errorf("xupdate: cannot serialize %s content node", n.Kind())
	}
}

func escapeText(s string) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}

func escapeAttr(s string) string {
	// EscapeText also escapes quotes and newlines, which is what attribute
	// values need.
	return escapeText(s)
}
