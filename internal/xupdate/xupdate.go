// Package xupdate implements the XUpdate modification language of §3.4:
// the six operations xupdate:update, xupdate:rename, xupdate:append,
// xupdate:insert-before, xupdate:insert-after and xupdate:remove, both as
// typed Op values and in the XML wire syntax of the XUpdate working draft
// (<xupdate:modifications>).
//
// Execute applies an operation with the paper's *unsecured* semantics
// (axioms 2–9): target nodes are selected on the document itself and no
// privileges are consulted. The secured semantics (axioms 18–25), which
// select on the user's view and check privileges per node, live in
// internal/access.
package xupdate

import (
	"errors"
	"fmt"

	"securexml/internal/obs"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// Telemetry: the unsecured executor (axioms 2–9) records its own stage and
// per-kind counters, so baselines and the secured path (internal/access)
// stay distinguishable in the registry.
var execStage = obs.Stage("xupdate_exec")

// Kind enumerates the XUpdate operations.
type Kind int

// The six XUpdate operations (§3.4.1–3.4.3).
const (
	Update       Kind = iota // replace the content (child) of selected nodes
	Rename                   // relabel selected nodes
	Append                   // insert a tree as last child of selected nodes
	InsertBefore             // insert a tree as immediately preceding sibling
	InsertAfter              // insert a tree as immediately following sibling
	Remove                   // delete the subtrees rooted at selected nodes
)

// String returns the xupdate element name of the operation.
func (k Kind) String() string {
	switch k {
	case Update:
		return "xupdate:update"
	case Rename:
		return "xupdate:rename"
	case Append:
		return "xupdate:append"
	case InsertBefore:
		return "xupdate:insert-before"
	case InsertAfter:
		return "xupdate:insert-after"
	case Remove:
		return "xupdate:remove"
	case Variable:
		return "xupdate:variable"
	default:
		return fmt.Sprintf("xupdate:kind(%d)", int(k))
	}
}

// MetricLabel returns the operation's telemetry label: the element name
// without the wire prefix. Every branch returns a literal (including the
// default), so metric labels built from kinds stay compile-time bounded —
// the property cmd/xmlsec-vet's obslabel pass enforces.
func (k Kind) MetricLabel() string {
	switch k {
	case Update:
		return "update"
	case Rename:
		return "rename"
	case Append:
		return "append"
	case InsertBefore:
		return "insert-before"
	case InsertAfter:
		return "insert-after"
	case Remove:
		return "remove"
	case Variable:
		return "variable"
	default:
		return "unknown"
	}
}

// Op is one XUpdate operation.
type Op struct {
	// Kind selects the operation.
	Kind Kind
	// Select is the PATH parameter: the XPath expression addressing the
	// nodes to operate on.
	Select string
	// NewValue is the VNEW parameter of update and rename.
	NewValue string
	// Content is the TREE parameter of the creating operations: a fragment
	// document whose top-level nodes are inserted. Unused otherwise.
	Content *xmltree.Document
}

// NewOp builds an operation from string parameters, as a command surface
// (shell, HTTP handler) receives them: arg is the new value for Update and
// Rename, the XML content fragment for Append/InsertBefore/InsertAfter,
// the variable name for Variable, and must be empty for Remove. Callers
// that go through NewOp never need to touch xmltree directly.
func NewOp(kind Kind, path, arg string) (*Op, error) {
	op := &Op{Kind: kind, Select: path}
	switch kind {
	case Update, Rename, Variable:
		op.NewValue = arg
	case Append, InsertBefore, InsertAfter:
		content, err := xmltree.ParseString(arg, xmltree.ParseOptions{Fragment: true})
		if err != nil {
			return nil, fmt.Errorf("xupdate: parsing content fragment: %w", err)
		}
		op.Content = content
	case Remove:
		if arg != "" {
			return nil, errors.New("xupdate: remove takes only a select path")
		}
	default:
		return nil, fmt.Errorf("xupdate: unknown operation kind %d", int(kind))
	}
	if err := op.Validate(); err != nil {
		return nil, err
	}
	return op, nil
}

// Validate checks the operation's shape before execution.
func (op *Op) Validate() error {
	if op.Select == "" {
		return errors.New("xupdate: operation has an empty select path")
	}
	if _, err := xpath.Compile(op.Select); err != nil {
		return fmt.Errorf("xupdate: invalid select path: %w", err)
	}
	switch op.Kind {
	case Update, Rename:
		if op.Content != nil {
			return fmt.Errorf("xupdate: %s does not take content", op.Kind)
		}
	case Append, InsertBefore, InsertAfter:
		if op.Content == nil || len(op.Content.Root().Children()) == 0 {
			return fmt.Errorf("xupdate: %s requires a content tree", op.Kind)
		}
	case Remove:
		if op.Content != nil || op.NewValue != "" {
			return errors.New("xupdate: remove takes only a select path")
		}
	case Variable:
		if op.NewValue == "" {
			return errors.New("xupdate: variable requires a name")
		}
		if op.Content != nil {
			return errors.New("xupdate: variable takes only a select expression")
		}
	default:
		return fmt.Errorf("xupdate: unknown operation kind %d", int(op.Kind))
	}
	return nil
}

// Result reports what an executed operation did.
type Result struct {
	// Selected is the number of nodes the select path addressed.
	Selected int
	// Applied is the number of selected nodes the operation acted on. With
	// the unsecured executor Applied == Selected unless a node was
	// structurally ineligible (e.g. renaming the document node).
	Applied int
	// Skipped records selected nodes the operation did not act on, with
	// reasons (structural with Execute; privilege-based with the secured
	// executor in internal/access).
	Skipped []SkipReason
	// Created is the number of nodes added to the document.
	Created int
	// Removed is the number of nodes deleted from the document.
	Removed int
	// Deltas records the structural changes in application order.
	Deltas []Delta
}

// SkipReason explains why one selected node was not acted on.
type SkipReason struct {
	// NodeID is the persistent identifier of the skipped node.
	NodeID string
	// Reason is a human-readable explanation.
	Reason string
}

// DeltaKind classifies one structural change to the document.
type DeltaKind int

// The delta kinds. Every mutation the six operations can make reduces to
// one of these three.
const (
	// DeltaRelabel: the node kept its identity but its label changed.
	DeltaRelabel DeltaKind = iota
	// DeltaInsert: a new subtree rooted at NodeID was added.
	DeltaInsert
	// DeltaRemove: the subtree rooted at NodeID was removed.
	DeltaRemove
)

// Delta is one structural change made by an executed operation, precise
// enough for a consumer to patch derived state (a cached user view)
// without rescanning the document — see internal/view/incremental.go.
type Delta struct {
	// Kind classifies the change.
	Kind DeltaKind
	// NodeID is the persistent identifier of the affected node: the
	// relabeled node, the root of the inserted subtree (as grafted into
	// the target document), or the root of the removed subtree.
	NodeID string
	// NewLabel is the label after a DeltaRelabel.
	NewLabel string
	// RemovedIDs lists every identifier in the removed subtree (root
	// first, document order) for a DeltaRemove. Persistent labels can be
	// re-allocated after a removal, so consumers must scrub state keyed
	// by these ids before processing later deltas.
	RemovedIDs []string
}

// Execute applies op to doc with the unsecured semantics of axioms 2–9:
// the select path is evaluated on doc itself and every addressed node is
// acted on. vars supplies XPath variable bindings. Variable ops are only
// meaningful in sequences; use ExecuteAll.
func Execute(doc *xmltree.Document, op *Op, vars xpath.Vars) (*Result, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if op.Kind == Variable {
		return nil, errors.New("xupdate: variable bindings need a sequence context; use ExecuteAll")
	}
	run := op
	if op.HasDynamicContent() {
		expanded, err := op.ExpandContent(doc.Root(), vars)
		if err != nil {
			return nil, err
		}
		cp := *op
		cp.Content = expanded
		run = &cp
	}
	sel, err := xpath.Select(doc, run.Select, vars)
	if err != nil {
		return nil, fmt.Errorf("xupdate: evaluating select path: %w", err)
	}
	res := &Result{Selected: len(sel)}
	sp := obs.NewSpan(execStage)
	for _, n := range sel {
		if err := applyOne(doc, run, n, res); err != nil {
			sp.End()
			return nil, err
		}
	}
	sp.End()
	obs.Default().Counter("xmlsec_xupdate_unsecured_ops_total",
		"kind", op.Kind.MetricLabel()).Inc()
	return res, nil
}

// ExecuteAll applies a modification document's operations in order with
// the unsecured semantics, threading xupdate:variable bindings through the
// sequence. One Result is returned per operation (a zero Result for
// variable bindings).
func ExecuteAll(doc *xmltree.Document, ops []*Op, vars xpath.Vars) ([]*Result, error) {
	env := make(xpath.Vars, len(vars)+2)
	for k, v := range vars {
		env[k] = v
	}
	results := make([]*Result, 0, len(ops))
	for _, op := range ops {
		if op.Kind == Variable {
			if err := op.Validate(); err != nil {
				return results, err
			}
			v, err := op.BindVariable(doc.Root(), env)
			if err != nil {
				return results, err
			}
			env[op.VarName()] = v
			results = append(results, &Result{})
			continue
		}
		res, err := Execute(doc, op, env)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// applyOne applies the operation to a single selected source node.
func applyOne(doc *xmltree.Document, op *Op, n *xmltree.Node, res *Result) error {
	switch op.Kind {
	case Rename:
		// Axioms 2–3: the label of every node addressed by PATH becomes VNEW.
		if n.Kind() == xmltree.KindDocument {
			res.Skipped = append(res.Skipped, SkipReason{n.ID().String(), "cannot rename the document node"})
			return nil
		}
		old := n.Label()
		if err := doc.Rename(n, op.NewValue); err != nil {
			return err
		}
		if old != op.NewValue {
			res.Deltas = append(res.Deltas, Delta{Kind: DeltaRelabel, NodeID: n.ID().String(), NewLabel: op.NewValue})
		}
		res.Applied++
	case Update:
		// Axioms 4–5: the label of every *child* of an addressed node
		// becomes VNEW. On element targets this replaces the content.
		kids := append([]*xmltree.Node(nil), n.Children()...)
		if len(kids) == 0 {
			// An empty element gets a text child carrying the new content.
			if n.Kind() != xmltree.KindElement && n.Kind() != xmltree.KindAttribute {
				res.Skipped = append(res.Skipped, SkipReason{n.ID().String(), "node has no children to update"})
				return nil
			}
			created, err := doc.AppendChild(n, xmltree.KindText, op.NewValue)
			if err != nil {
				return err
			}
			res.Deltas = append(res.Deltas, Delta{Kind: DeltaInsert, NodeID: created.ID().String()})
			res.Applied++
			res.Created++
			return nil
		}
		for _, c := range kids {
			old := c.Label()
			if err := doc.Rename(c, op.NewValue); err != nil {
				return err
			}
			if old != op.NewValue {
				res.Deltas = append(res.Deltas, Delta{Kind: DeltaRelabel, NodeID: c.ID().String(), NewLabel: op.NewValue})
			}
		}
		res.Applied++
	case Append:
		for _, top := range op.Content.Root().Children() {
			grafted, err := graftOne(doc, n, xmltree.GraftAppend, top, res)
			if err != nil {
				return err
			}
			res.Created += grafted
		}
		res.Applied++
	case InsertBefore, InsertAfter:
		mode := xmltree.GraftBefore
		if op.Kind == InsertAfter {
			mode = xmltree.GraftAfter
		}
		if n.Kind() == xmltree.KindDocument {
			res.Skipped = append(res.Skipped, SkipReason{n.ID().String(), "document node has no siblings"})
			return nil
		}
		tops := op.Content.Root().Children()
		if op.Kind == InsertBefore {
			for _, top := range tops {
				grafted, err := graftOne(doc, n, mode, top, res)
				if err != nil {
					return err
				}
				res.Created += grafted
			}
		} else {
			// Insert-after in reverse so the fragment keeps its order.
			for i := len(tops) - 1; i >= 0; i-- {
				grafted, err := graftOne(doc, n, mode, tops[i], res)
				if err != nil {
					return err
				}
				res.Created += grafted
			}
		}
		res.Applied++
	case Remove:
		// Axioms 8–9: the subtree rooted at each addressed node disappears.
		if n.Kind() == xmltree.KindDocument {
			res.Skipped = append(res.Skipped, SkipReason{n.ID().String(), "cannot remove the document node"})
			return nil
		}
		if n.Document() != doc {
			// Already removed as part of an earlier selected subtree.
			res.Skipped = append(res.Skipped, SkipReason{n.ID().String(), "already removed with an ancestor"})
			return nil
		}
		sub := n.Subtree()
		ids := make([]string, len(sub))
		for i, s := range sub {
			ids[i] = s.ID().String()
		}
		res.Removed += len(sub)
		if err := doc.Remove(n); err != nil {
			return err
		}
		res.Deltas = append(res.Deltas, Delta{Kind: DeltaRemove, NodeID: ids[0], RemovedIDs: ids})
		res.Applied++
	}
	return nil
}

// graftOne grafts src relative to ref, records the insert delta, and
// returns the number of nodes created.
func graftOne(doc *xmltree.Document, ref *xmltree.Node, mode xmltree.GraftMode, src *xmltree.Node, res *Result) (int, error) {
	top, err := doc.Graft(ref, mode, src)
	if err != nil {
		return 0, err
	}
	res.Deltas = append(res.Deltas, Delta{Kind: DeltaInsert, NodeID: top.ID().String()})
	return len(top.Subtree()), nil
}
