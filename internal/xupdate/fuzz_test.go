package xupdate

import "testing"

// FuzzParseModifications checks the wire parser never panics and that every
// accepted operation validates or is reported as invalid — never a crash.
func FuzzParseModifications(f *testing.F) {
	seeds := []string{
		wireDoc,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"/>`,
		`<xupdate:modifications><xupdate:remove select="/a"/></xupdate:modifications>`,
		`<xupdate:modifications><xupdate:update select="/a">v</xupdate:update></xupdate:modifications>`,
		`<xupdate:modifications><xupdate:append select="/a"><b/></xupdate:append></xupdate:modifications>`,
		`<wrong/>`, `<`, ``, `<xupdate:modifications>`,
		`<xupdate:modifications><xupdate:append select="/"><xupdate:element name="x"><xupdate:attribute name="a">v</xupdate:attribute></xupdate:element></xupdate:append></xupdate:modifications>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ops, err := ParseModificationsString(src)
		if err != nil {
			return
		}
		for _, op := range ops {
			_ = op.Validate()
		}
	})
}
