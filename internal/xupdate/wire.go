package xupdate

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"securexml/internal/xmltree"
)

// Namespace is the XUpdate namespace of the working draft.
const Namespace = "http://www.xmldb.org/xupdate"

// isXUpdateName reports whether an element name belongs to the xupdate
// namespace. The prefix form is accepted too, so documents that omit the
// xmlns declaration still parse.
func isXUpdateName(n xml.Name) bool {
	return n.Space == Namespace || n.Space == "xupdate"
}

// ParseModifications reads an <xupdate:modifications> document and returns
// the operations in document order.
//
// Supported content constructors inside creating operations:
// xupdate:element (with name attribute), xupdate:attribute (with name
// attribute), xupdate:text, and literal XML elements/text.
func ParseModifications(r io.Reader) ([]*Op, error) {
	dec := xml.NewDecoder(r)

	// Find the root element.
	var root xml.StartElement
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xupdate: parse: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			root = se
			break
		}
	}
	if !isXUpdateName(root.Name) || root.Name.Local != "modifications" {
		return nil, fmt.Errorf("xupdate: root element is <%s>, want <xupdate:modifications>", root.Name.Local)
	}

	var ops []*Op
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xupdate: parse: unexpected EOF inside <xupdate:modifications>")
		}
		if err != nil {
			return nil, fmt.Errorf("xupdate: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			op, err := parseOp(dec, t)
			if err != nil {
				return nil, err
			}
			ops = append(ops, op)
		case xml.EndElement:
			return ops, nil
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, fmt.Errorf("xupdate: parse: stray text %q between operations", strings.TrimSpace(string(t)))
			}
		}
	}
}

// ParseModificationsString is ParseModifications over a string.
func ParseModificationsString(s string) ([]*Op, error) {
	return ParseModifications(strings.NewReader(s))
}

func parseOp(dec *xml.Decoder, se xml.StartElement) (*Op, error) {
	if !isXUpdateName(se.Name) {
		return nil, fmt.Errorf("xupdate: parse: unexpected element <%s> (operations must be xupdate:*)", se.Name.Local)
	}
	var kind Kind
	switch se.Name.Local {
	case "update":
		kind = Update
	case "rename":
		kind = Rename
	case "append":
		kind = Append
	case "insert-before":
		kind = InsertBefore
	case "insert-after":
		kind = InsertAfter
	case "remove":
		kind = Remove
	case "variable":
		kind = Variable
	default:
		return nil, fmt.Errorf("xupdate: parse: unknown operation <xupdate:%s>", se.Name.Local)
	}
	op := &Op{Kind: kind}
	for _, a := range se.Attr {
		switch a.Name.Local {
		case "select":
			op.Select = a.Value
		case "name":
			if kind == Variable {
				op.NewValue = a.Value // variable name
			}
		}
	}
	if op.Select == "" {
		return nil, fmt.Errorf("xupdate: parse: <xupdate:%s> lacks a select attribute", se.Name.Local)
	}

	switch kind {
	case Variable:
		if op.NewValue == "" {
			return nil, fmt.Errorf("xupdate: parse: <xupdate:variable> lacks a name attribute")
		}
		if err := skipToEnd(dec); err != nil {
			return nil, err
		}
	case Remove:
		if err := skipToEnd(dec); err != nil {
			return nil, err
		}
	case Update, Rename:
		text, err := collectText(dec)
		if err != nil {
			return nil, err
		}
		op.NewValue = text
	default: // creating operations
		frag := xmltree.NewFragment(nil)
		if err := parseContent(dec, frag, frag.Root()); err != nil {
			return nil, err
		}
		op.Content = frag
	}
	return op, nil
}

// skipToEnd consumes tokens to the matching end element, rejecting child
// content.
func skipToEnd(dec *xml.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xupdate: parse: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil
			}
			depth--
		}
	}
}

// collectText gathers the text content of update/rename operations.
func collectText(dec *xml.Decoder) (string, error) {
	var b strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("xupdate: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			b.Write(t)
		case xml.EndElement:
			return strings.TrimSpace(b.String()), nil
		case xml.StartElement:
			return "", fmt.Errorf("xupdate: parse: unexpected child element <%s> in update/rename", t.Name.Local)
		}
	}
}

// parseContent builds the content fragment under cur until the enclosing
// operation's end element.
func parseContent(dec *xml.Decoder, frag *xmltree.Document, cur *xmltree.Node) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xupdate: parse content: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch {
			case isXUpdateName(t.Name) && t.Name.Local == "element":
				name := attrOf(t, "name")
				if name == "" {
					return fmt.Errorf("xupdate: parse: xupdate:element lacks a name attribute")
				}
				el, err := frag.AppendChild(cur, xmltree.KindElement, name)
				if err != nil {
					return err
				}
				if err := parseContent(dec, frag, el); err != nil {
					return err
				}
			case isXUpdateName(t.Name) && t.Name.Local == "attribute":
				name := attrOf(t, "name")
				if name == "" {
					return fmt.Errorf("xupdate: parse: xupdate:attribute lacks a name attribute")
				}
				value, err := collectText(dec)
				if err != nil {
					return err
				}
				if cur.Kind() != xmltree.KindElement {
					return fmt.Errorf("xupdate: parse: xupdate:attribute outside an element constructor")
				}
				if _, err := frag.SetAttribute(cur, name, value); err != nil {
					return err
				}
			case isXUpdateName(t.Name) && t.Name.Local == "text":
				value, err := collectText(dec)
				if err != nil {
					return err
				}
				if _, err := frag.AppendChild(cur, xmltree.KindText, value); err != nil {
					return err
				}
			case isXUpdateName(t.Name) && t.Name.Local == "value-of":
				sel := attrOf(t, "select")
				if sel == "" {
					return fmt.Errorf("xupdate: parse: xupdate:value-of lacks a select attribute")
				}
				if err := skipToEnd(dec); err != nil {
					return err
				}
				if err := addValueOfPlaceholder(frag, cur, sel); err != nil {
					return err
				}
			case isXUpdateName(t.Name):
				return fmt.Errorf("xupdate: parse: unsupported constructor <xupdate:%s>", t.Name.Local)
			default:
				// Literal element content.
				el, err := frag.AppendChild(cur, xmltree.KindElement, t.Name.Local)
				if err != nil {
					return err
				}
				for _, a := range t.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					if _, err := frag.SetAttribute(el, a.Name.Local, a.Value); err != nil {
						return err
					}
				}
				if err := parseContent(dec, frag, el); err != nil {
					return err
				}
			}
		case xml.CharData:
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			if _, err := frag.AppendChild(cur, xmltree.KindText, text); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		}
	}
}

func attrOf(se xml.StartElement, name string) string {
	for _, a := range se.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}
