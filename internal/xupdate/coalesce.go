package xupdate

// Coalesce collapses a delta sequence into an equivalent, usually shorter
// one, for the group-commit path: a commit round merges the deltas of every
// write in the batch and publishes one coalesced sequence with the new
// generation, so downstream incremental consumers (view.Maintainer, cache
// invalidation) do work proportional to the net change, not the raw op
// count.
//
// Soundness rests on how consumers interpret deltas: every non-remove delta
// is re-derived from the *final* document (the maintainer rescores the
// subtree rooted at NodeID against the post-batch source and ignores
// NewLabel beyond treating the node as touched), while a remove's
// RemovedIDs drive permission-cache forgetting and view scrubbing. Hence:
//
//   - removes are kept verbatim, in order — their RemovedIDs snapshots are
//     the only record of identifiers that left the tree (identifiers may be
//     reused by later inserts, so removes are never merged or dropped);
//   - a relabel or insert whose NodeID is swept away by a LATER remove is
//     dead — the node is gone from the final document (a consumer would hit
//     the defensive drop path) — unless a later delta re-touches the same
//     identifier after reuse, which appears as its own surviving entry;
//   - of several surviving relabels on one identifier, only the last
//     matters: the maintainer reads the final label from the document.
//
// The result preserves the relative order of surviving deltas. The input
// slice is not modified.
func Coalesce(deltas []Delta) []Delta {
	if len(deltas) <= 1 {
		return deltas
	}
	keep := make([]bool, len(deltas))
	// removed holds identifiers swept by a remove seen later than the
	// position being examined; lastTouch holds identifiers already kept by
	// a later relabel/insert (keep-last for duplicate touches).
	removed := make(map[string]struct{})
	lastTouch := make(map[string]struct{})
	kept := 0
	for i := len(deltas) - 1; i >= 0; i-- {
		d := deltas[i]
		switch d.Kind {
		case DeltaRemove:
			keep[i] = true
			kept++
			for _, id := range d.RemovedIDs {
				removed[id] = struct{}{}
				// A removal severs any link to earlier touches of a
				// (possibly reused) identifier: earlier deltas on it are
				// dead regardless of what was kept later.
				delete(lastTouch, id)
			}
		case DeltaRelabel, DeltaInsert:
			if _, gone := removed[d.NodeID]; gone {
				continue
			}
			if _, dup := lastTouch[d.NodeID]; dup {
				continue
			}
			lastTouch[d.NodeID] = struct{}{}
			keep[i] = true
			kept++
		default:
			keep[i] = true
			kept++
		}
	}
	if kept == len(deltas) {
		return deltas
	}
	out := make([]Delta, 0, kept)
	for i, k := range keep {
		if k {
			out = append(out, deltas[i])
		}
	}
	return out
}
