package xupdate

import (
	"fmt"
	"strings"

	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// valueOfMarker prefixes the label of the comment nodes the wire parser
// plants as xupdate:value-of placeholders inside content fragments. The
// wire parser discards real XML comments, so marker nodes can only come
// from <xupdate:value-of select="..."/> — no collision is possible.
const valueOfMarker = "\x00xupdate:value-of\x00"

// Variable is the Kind of <xupdate:variable name="..." select="..."/>: it
// binds the selected node-set (or the evaluated value) to $name for the
// remaining operations of the modification document.
const Variable Kind = 100

// VarName returns the variable name of a Variable op (stored in NewValue).
func (op *Op) VarName() string { return op.NewValue }

// addValueOfPlaceholder plants a placeholder carrying the select
// expression under cur.
func addValueOfPlaceholder(frag *xmltree.Document, cur *xmltree.Node, sel string) error {
	if _, err := xpath.Compile(sel); err != nil {
		return fmt.Errorf("xupdate: value-of select: %w", err)
	}
	_, err := frag.AppendChild(cur, xmltree.KindComment, valueOfMarker+sel)
	return err
}

// HasDynamicContent reports whether the op's content contains value-of
// placeholders that must be expanded against a document at execution time.
func (op *Op) HasDynamicContent() bool {
	if op.Content == nil {
		return false
	}
	found := false
	op.Content.Root().Walk(func(n *xmltree.Node) bool {
		if isPlaceholder(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isPlaceholder(n *xmltree.Node) bool {
	return n.Kind() == xmltree.KindComment && strings.HasPrefix(n.Label(), valueOfMarker)
}

// ExpandContent resolves the value-of placeholders of op.Content by
// evaluating their select expressions with ctx as the context node
// (the document the operation reads from — the user's view under the
// secured executor, the source under the unsecured one) and returns a
// fresh fragment with the placeholders replaced:
//
//   - a node-set result is replaced by deep copies of its nodes in
//     document order (elements and text; attribute results contribute
//     their values as text, as serializing an attribute alone would);
//   - an atomic result is replaced by a text node with its string value.
//
// Content without placeholders is returned unchanged.
func (op *Op) ExpandContent(ctx *xmltree.Node, vars xpath.Vars) (*xmltree.Document, error) {
	if !op.HasDynamicContent() {
		return op.Content, nil
	}
	out := xmltree.NewFragment(op.Content.Scheme())
	if err := expandInto(out, out.Root(), op.Content.Root(), ctx, vars); err != nil {
		return nil, err
	}
	return out, nil
}

// expandInto copies src's children under dst, resolving placeholders.
func expandInto(out *xmltree.Document, dst, src *xmltree.Node, ctx *xmltree.Node, vars xpath.Vars) error {
	for _, a := range src.Attributes() {
		if _, err := out.SetAttribute(dst, a.Label(), a.StringValue()); err != nil {
			return err
		}
	}
	for _, c := range src.Children() {
		if isPlaceholder(c) {
			if err := resolvePlaceholder(out, dst, c, ctx, vars); err != nil {
				return err
			}
			continue
		}
		nc, err := out.AppendChild(dst, c.Kind(), c.Label())
		if err != nil {
			return err
		}
		if err := expandInto(out, nc, c, ctx, vars); err != nil {
			return err
		}
	}
	return nil
}

func resolvePlaceholder(out *xmltree.Document, dst, ph *xmltree.Node, ctx *xmltree.Node, vars xpath.Vars) error {
	sel := strings.TrimPrefix(ph.Label(), valueOfMarker)
	c, err := xpath.Compile(sel)
	if err != nil {
		return fmt.Errorf("xupdate: value-of select: %w", err)
	}
	v, err := c.Eval(ctx, vars)
	if err != nil {
		return fmt.Errorf("xupdate: evaluating value-of %q: %w", sel, err)
	}
	ns, isNodeSet := v.(xpath.NodeSet)
	if !isNodeSet {
		_, err := out.AppendChild(dst, xmltree.KindText, v.Str())
		return err
	}
	for _, n := range ns {
		switch n.Kind() {
		case xmltree.KindAttribute:
			if _, err := out.AppendChild(dst, xmltree.KindText, n.StringValue()); err != nil {
				return err
			}
		case xmltree.KindDocument:
			for _, ch := range n.Children() {
				if err := copyNodeInto(out, dst, ch); err != nil {
					return err
				}
			}
		default:
			if err := copyNodeInto(out, dst, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// copyNodeInto deep-copies node n (from any document) under dst.
func copyNodeInto(out *xmltree.Document, dst, n *xmltree.Node) error {
	nc, err := out.AppendChild(dst, n.Kind(), n.Label())
	if err != nil {
		return err
	}
	for _, a := range n.Attributes() {
		if _, err := out.SetAttribute(nc, a.Label(), a.StringValue()); err != nil {
			return err
		}
	}
	for _, c := range n.Children() {
		if err := copyNodeInto(out, nc, c); err != nil {
			return err
		}
	}
	return nil
}

// BindVariable executes a Variable op: it evaluates the select expression
// with ctx as the context node and returns the binding to add to vars.
func (op *Op) BindVariable(ctx *xmltree.Node, vars xpath.Vars) (xpath.Value, error) {
	if op.Kind != Variable {
		return nil, fmt.Errorf("xupdate: BindVariable on %s", op.Kind)
	}
	c, err := xpath.Compile(op.Select)
	if err != nil {
		return nil, err
	}
	return c.Eval(ctx, vars)
}
