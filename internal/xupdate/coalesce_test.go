package xupdate_test

import (
	"testing"

	"securexml/internal/labeling"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// consumerState models how the incremental consumers read a delta stream
// against the FINAL document: a remove forgets every swept identifier, a
// relabel/insert rescores the whole surviving subtree rooted at NodeID
// (view.Maintainer ignores NewLabel and re-derives from the source), and a
// touch whose root is gone from the final document drops it defensively.
// Two delta streams are equivalent iff they leave this state equal.
func consumerState(t *testing.T, final *xmltree.Document, deltas []xupdate.Delta) map[string]string {
	t.Helper()
	state := make(map[string]string)
	for _, d := range deltas {
		if d.Kind == xupdate.DeltaRemove {
			for _, id := range d.RemovedIDs {
				state[id] = "forgotten"
			}
			continue
		}
		id, err := labeling.Parse(d.NodeID)
		if err != nil {
			t.Fatalf("bad delta id %q: %v", d.NodeID, err)
		}
		n := final.NodeByID(id)
		if n == nil {
			state[d.NodeID] = "dropped"
			continue
		}
		n.Walk(func(m *xmltree.Node) bool {
			state[m.ID().String()] = "rescored"
			return true
		})
	}
	return state
}

// TestCoalesceEquivalentToRawStream drives deterministic mixed op streams
// against a hospital document, collects the raw delta sequence, and checks
// that Coalesce (a) never changes the consumer-visible final state, (b)
// keeps every remove verbatim and in order, and (c) preserves the relative
// order of survivors.
func TestCoalesceEquivalentToRawStream(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		doc, err := workload.Hospital(workload.HospitalConfig{Patients: 12, RecordsPerPatient: 3, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: hospital: %v", seed, err)
		}
		stream := workload.OpStream(workload.OpConfig{Doc: doc, Seed: seed})
		var raw []xupdate.Delta
		for i := 0; i < 400; i++ {
			op, err := stream.Next()
			if err != nil {
				t.Fatalf("seed %d: op %d: %v", seed, i, err)
			}
			res, err := xupdate.Execute(doc, op, nil)
			if err != nil {
				// Stream ops can race their own removals; skip invalid ones.
				continue
			}
			raw = append(raw, res.Deltas...)
		}
		if len(raw) == 0 {
			t.Fatalf("seed %d: stream produced no deltas", seed)
		}
		co := xupdate.Coalesce(raw)
		if len(co) > len(raw) {
			t.Fatalf("seed %d: coalesce grew the stream: %d -> %d", seed, len(raw), len(co))
		}

		want := consumerState(t, doc, raw)
		got := consumerState(t, doc, co)
		if len(want) != len(got) {
			t.Fatalf("seed %d: state size mismatch: raw %d, coalesced %d", seed, len(want), len(got))
		}
		for id, w := range want {
			if got[id] != w {
				t.Fatalf("seed %d: id %s: raw state %q, coalesced %q", seed, id, w, got[id])
			}
		}

		// Every remove survives verbatim, in order.
		var rawRm, coRm []xupdate.Delta
		for _, d := range raw {
			if d.Kind == xupdate.DeltaRemove {
				rawRm = append(rawRm, d)
			}
		}
		for _, d := range co {
			if d.Kind == xupdate.DeltaRemove {
				coRm = append(coRm, d)
			}
		}
		if len(rawRm) != len(coRm) {
			t.Fatalf("seed %d: removes not preserved: %d -> %d", seed, len(rawRm), len(coRm))
		}
		for i := range rawRm {
			if rawRm[i].NodeID != coRm[i].NodeID || len(rawRm[i].RemovedIDs) != len(coRm[i].RemovedIDs) {
				t.Fatalf("seed %d: remove %d altered by coalesce", seed, i)
			}
		}

		// Survivor order: coalesced must be a subsequence of raw (removes
		// anchor it; this checks the touches too).
		j := 0
		for i := 0; i < len(raw) && j < len(co); i++ {
			if raw[i].Kind == co[j].Kind && raw[i].NodeID == co[j].NodeID && raw[i].NewLabel == co[j].NewLabel {
				j++
			}
		}
		if j != len(co) {
			t.Fatalf("seed %d: coalesced stream is not a subsequence of the raw stream", seed)
		}
	}
}

// TestCoalesceDropsSupersededTouches pins the two hand-written cases the
// group-commit merge relies on: duplicate relabels keep only the last, and
// touches swept by a later remove disappear.
func TestCoalesceDropsSupersededTouches(t *testing.T) {
	ds := []xupdate.Delta{
		{Kind: xupdate.DeltaRelabel, NodeID: "/a", NewLabel: "x"},
		{Kind: xupdate.DeltaRelabel, NodeID: "/a", NewLabel: "y"},
		{Kind: xupdate.DeltaInsert, NodeID: "/b"},
		{Kind: xupdate.DeltaRemove, NodeID: "/b", RemovedIDs: []string{"/b", "/b/c"}},
		{Kind: xupdate.DeltaRelabel, NodeID: "/a", NewLabel: "z"},
	}
	co := xupdate.Coalesce(ds)
	want := []xupdate.Delta{
		{Kind: xupdate.DeltaRemove, NodeID: "/b", RemovedIDs: []string{"/b", "/b/c"}},
		{Kind: xupdate.DeltaRelabel, NodeID: "/a", NewLabel: "z"},
	}
	if len(co) != len(want) {
		t.Fatalf("coalesced to %d deltas, want %d: %+v", len(co), len(want), co)
	}
	for i := range want {
		if co[i].Kind != want[i].Kind || co[i].NodeID != want[i].NodeID || co[i].NewLabel != want[i].NewLabel {
			t.Fatalf("delta %d = %+v, want %+v", i, co[i], want[i])
		}
	}
	// Reuse after removal: the insert that re-creates a swept identifier
	// must survive a PRECEDING remove.
	reuse := []xupdate.Delta{
		{Kind: xupdate.DeltaRemove, NodeID: "/a/b", RemovedIDs: []string{"/a/b"}},
		{Kind: xupdate.DeltaInsert, NodeID: "/a/b"},
	}
	if co := xupdate.Coalesce(reuse); len(co) != 2 {
		t.Fatalf("reused-id insert dropped: %+v", co)
	}
}
