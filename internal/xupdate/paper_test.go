package xupdate

// Reproductions of the worked XUpdate examples of §3.4 (experiments E1–E4
// in DESIGN.md). Each example derives the paper's new set F of node facts.

import (
	"testing"

	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// fact is a (kind, label) pair; the paper identifies nodes by number, which
// maps to position in document order here.
type fact struct {
	kind  xmltree.Kind
	label string
}

func factsOf(d *xmltree.Document) []fact {
	var out []fact
	for _, n := range d.Nodes() {
		out = append(out, fact{n.Kind(), n.Label()})
	}
	return out
}

func expectFacts(t *testing.T, d *xmltree.Document, want []fact) {
	t.Helper()
	got := factsOf(d)
	if len(got) != len(want) {
		t.Fatalf("document has %d nodes, want %d:\n%s", len(got), len(want), d.Sketch())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d = (%s, %q), want (%s, %q)\n%s",
				i, got[i].kind, got[i].label, want[i].kind, want[i].label, d.Sketch())
		}
	}
}

// paperDoc is the Fig. 2 document restricted to the nodes the examples use
// (franck and robert; robert's subtree elided as in Fig. 2 is kept minimal).
func paperDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(
		`<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert/></patients>`,
		xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPaperRenameExample is the §3.4.1 example: xupdate:rename with
// PATH=//service, VNEW=department yields node(n3, department) while every
// other fact is unchanged (formulae 2 and 3).
func TestPaperRenameExample(t *testing.T) {
	d := paperDoc(t)
	if _, err := Execute(d, &Op{Kind: Rename, Select: "//service", NewValue: "department"}, nil); err != nil {
		t.Fatal(err)
	}
	expectFacts(t, d, []fact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, "franck"},
		{xmltree.KindElement, "department"},  // n3: renamed
		{xmltree.KindText, "otolaryngology"}, // n4: content preserved
		{xmltree.KindElement, "diagnosis"},   // n5
		{xmltree.KindText, "tonsillitis"},    // n6
		{xmltree.KindElement, "robert"},      // n7
	})
}

// TestPaperUpdateExample is the §3.4.1 example: xupdate:update with
// PATH=/patients/franck/diagnosis, VNEW=pharyngitis updates the child of the
// addressed node (formulae 4 and 5): node(n6, pharyngitis).
func TestPaperUpdateExample(t *testing.T) {
	d := paperDoc(t)
	if _, err := Execute(d, &Op{Kind: Update, Select: "/patients/franck/diagnosis", NewValue: "pharyngitis"}, nil); err != nil {
		t.Fatal(err)
	}
	expectFacts(t, d, []fact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, "franck"},
		{xmltree.KindElement, "service"},
		{xmltree.KindText, "otolaryngology"},
		{xmltree.KindElement, "diagnosis"}, // n5: label untouched
		{xmltree.KindText, "pharyngitis"},  // n6: updated
		{xmltree.KindElement, "robert"},
	})
}

// TestPaperAppendExample is the §3.4.2 example: xupdate:append of albert's
// record under /patients (formulae 6 and 7) plus the derived geometry facts.
func TestPaperAppendExample(t *testing.T) {
	d := paperDoc(t)
	frag, err := xmltree.ParseString(
		`<albert><service>cardiology</service><diagnosis/></albert>`,
		xmltree.ParseOptions{Fragment: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(d, &Op{Kind: Append, Select: "/patients", Content: frag}, nil); err != nil {
		t.Fatal(err)
	}
	expectFacts(t, d, []fact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, "franck"},
		{xmltree.KindElement, "service"},
		{xmltree.KindText, "otolaryngology"},
		{xmltree.KindElement, "diagnosis"},
		{xmltree.KindText, "tonsillitis"},
		{xmltree.KindElement, "robert"},
		{xmltree.KindElement, "albert"},    // n1''
		{xmltree.KindElement, "service"},   // n2''
		{xmltree.KindText, "cardiology"},   // n3''
		{xmltree.KindElement, "diagnosis"}, // n4''
	})
	// Derived geometry facts from the paper: preceding_sibling(n7, n1''),
	// child(n1'', n1), child(n2'', n1''), child(n4'', n1''), child(n3'', n2'').
	get := func(path string) *xmltree.Node {
		ns, err := xpath.Select(d, path, nil)
		if err != nil || len(ns) != 1 {
			t.Fatalf("%s: %v (%d nodes)", path, err, len(ns))
		}
		return ns[0]
	}
	albert := get("/patients/albert")
	robert := get("/patients/robert")
	if robert.FollowingSibling() != albert {
		t.Error("robert is not the immediately preceding sibling of albert")
	}
	if albert.Parent() != get("/patients") {
		t.Error("albert not a child of patients")
	}
}

// TestPaperRemoveExample is the §3.4.3 example: xupdate:remove of
// /patients/franck/diagnosis deletes the subtree (formulae 8 and 9).
func TestPaperRemoveExample(t *testing.T) {
	d := paperDoc(t)
	if _, err := Execute(d, &Op{Kind: Remove, Select: "/patients/franck/diagnosis"}, nil); err != nil {
		t.Fatal(err)
	}
	expectFacts(t, d, []fact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, "franck"},
		{xmltree.KindElement, "service"},
		{xmltree.KindText, "otolaryngology"},
		{xmltree.KindElement, "robert"},
	})
}
