package xupdate

import (
	"strings"
	"testing"

	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

func TestValueOfCopiesNodes(t *testing.T) {
	d := parse(t)
	ops, err := ParseModificationsString(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/patients">
		    <xupdate:element name="summary">
		      <xupdate:value-of select="//service"/>
		    </xupdate:element>
		  </xupdate:append>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	if !ops[0].HasDynamicContent() {
		t.Fatal("value-of not detected as dynamic content")
	}
	res, err := Execute(d, ops[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	// summary + two copied service elements + their text children.
	if res.Applied != 1 || res.Created != 5 {
		t.Fatalf("result = %+v", res)
	}
	if got := count(t, d, "/patients/summary/service"); got != 2 {
		t.Errorf("%d copied services, want 2", got)
	}
	if got := firstText(t, d, "/patients/summary/service[1]"); got != "otolaryngology" {
		t.Errorf("copied content = %q", got)
	}
	// The originals are untouched (value-of copies).
	if got := count(t, d, "/patients/franck/service"); got != 1 {
		t.Error("original service moved instead of copied")
	}
}

func TestValueOfAtomicResult(t *testing.T) {
	d := parse(t)
	ops, err := ParseModificationsString(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/patients">
		    <xupdate:element name="stats"><xupdate:value-of select="count(//diagnosis)"/></xupdate:element>
		  </xupdate:append>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(d, ops[0], nil); err != nil {
		t.Fatal(err)
	}
	if got := firstText(t, d, "/patients/stats"); got != "2" {
		t.Errorf("stats = %q, want 2", got)
	}
}

func TestValueOfAttributeResult(t *testing.T) {
	d, err := xmltree.ParseString(`<r><e id="alpha"/><t/></r>`, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frag := xmltree.NewFragment(nil)
	if err := addValueOfPlaceholder(frag, frag.Root(), "//@id"); err != nil {
		t.Fatal(err)
	}
	op := &Op{Kind: Append, Select: "/r/t", Content: frag}
	if _, err := Execute(d, op, nil); err != nil {
		t.Fatal(err)
	}
	if got := firstText(t, d, "/r/t"); got != "alpha" {
		t.Errorf("attribute value-of = %q", got)
	}
}

func TestVariableThreadsThroughSequence(t *testing.T) {
	d := parse(t)
	ops, err := ParseModificationsString(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:variable name="sick" select="//diagnosis/text()"/>
		  <xupdate:append select="/patients">
		    <xupdate:element name="report"><xupdate:value-of select="$sick"/></xupdate:element>
		  </xupdate:append>
		  <xupdate:remove select="/patients/report[text() = 'nonexistent']"/>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	if ops[0].Kind != Variable || ops[0].VarName() != "sick" {
		t.Fatalf("variable op = %+v", ops[0])
	}
	results, err := ExecuteAll(d, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if got := firstText(t, d, "/patients/report"); got != "tonsillitispneumonia" {
		t.Errorf("report = %q", got)
	}
}

func TestVariableRequiresSequence(t *testing.T) {
	d := parse(t)
	op := &Op{Kind: Variable, Select: "//diagnosis", NewValue: "x"}
	if _, err := Execute(d, op, nil); err == nil {
		t.Error("lone variable op accepted by Execute")
	}
	if err := (&Op{Kind: Variable, Select: "//x"}).Validate(); err == nil {
		t.Error("variable without name validated")
	}
	if op.Kind.String() != "xupdate:variable" {
		t.Errorf("kind string = %q", op.Kind.String())
	}
}

func TestValueOfParseErrors(t *testing.T) {
	bad := []string{
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><xupdate:append select="/x"><xupdate:value-of/></xupdate:append></xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><xupdate:append select="/x"><xupdate:value-of select="//["/></xupdate:append></xupdate:modifications>`,
		`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate"><xupdate:variable select="//x"/></xupdate:modifications>`,
	}
	for _, src := range bad {
		if _, err := ParseModificationsString(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestExpandContentNoPlaceholders(t *testing.T) {
	d := parse(t)
	frag, _ := xmltree.ParseString("<x/>", xmltree.ParseOptions{Fragment: true})
	op := &Op{Kind: Append, Select: "/patients", Content: frag}
	out, err := op.ExpandContent(d.Root(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != frag {
		t.Error("static content should be returned unchanged")
	}
}

func TestExpandContentBadSelect(t *testing.T) {
	d := parse(t)
	frag := xmltree.NewFragment(nil)
	// Bypass the parser validation to hit the execution-time check.
	if _, err := frag.AppendChild(frag.Root(), xmltree.KindComment, valueOfMarker+"$undefined"); err != nil {
		t.Fatal(err)
	}
	op := &Op{Kind: Append, Select: "/patients", Content: frag}
	if _, err := Execute(d, op, nil); err == nil {
		t.Error("undefined variable in value-of accepted")
	}
	if _, err := Execute(d, op, xpath.Vars{"undefined": xpath.String("ok")}); err != nil {
		t.Errorf("bound variable rejected: %v", err)
	}
}

func TestValueOfDeepStructuresAndAttrs(t *testing.T) {
	d, err := xmltree.ParseString(`<r><src a="1"><in>deep</in></src><dst/></r>`, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frag := xmltree.NewFragment(nil)
	if err := addValueOfPlaceholder(frag, frag.Root(), "//src"); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(d, &Op{Kind: Append, Select: "/r/dst", Content: frag}, nil); err != nil {
		t.Fatal(err)
	}
	ns, err := xpath.Select(d, "/r/dst/src[@a='1']/in", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].StringValue() != "deep" {
		t.Errorf("deep copy incomplete: %v", ns)
	}
}

func TestWireRoundTripWithValueOf(t *testing.T) {
	// The placeholder mechanism must not leak into serialized documents:
	// after execution the result contains plain nodes only.
	d := parse(t)
	ops, err := ParseModificationsString(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/patients"><xupdate:element name="copy"><xupdate:value-of select="//service[1]"/></xupdate:element></xupdate:append>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(d, ops[0], nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(d.XML(), "value-of") || strings.Contains(d.XML(), "\x00") {
		t.Errorf("placeholder leaked into the document:\n%s", d.XML())
	}
}

// TestWriteModificationsRoundTrip: ops → wire → ops must preserve kind,
// select, values and content (including value-of placeholders).
func TestWriteModificationsRoundTrip(t *testing.T) {
	src := `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:variable name="v" select="//service"/>
	  <xupdate:rename select="//service">department</xupdate:rename>
	  <xupdate:update select="/patients/franck/diagnosis">text &amp; entities</xupdate:update>
	  <xupdate:append select="/patients">
	    <albert insured="yes &quot;sure&quot;"><service>cardio</service><xupdate:value-of select="$v"/></albert>
	  </xupdate:append>
	  <xupdate:insert-before select="/patients/franck"><x/>literal text</xupdate:insert-before>
	  <xupdate:insert-after select="/patients/franck"><y/></xupdate:insert-after>
	  <xupdate:remove select="/patients/robert"/>
	</xupdate:modifications>`
	ops, err := ParseModificationsString(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered, err := ModificationsString(ops)
	if err != nil {
		t.Fatal(err)
	}
	ops2, err := ParseModificationsString(rendered)
	if err != nil {
		t.Fatalf("rendered form does not reparse: %v\n%s", err, rendered)
	}
	if len(ops2) != len(ops) {
		t.Fatalf("%d ops after round trip, want %d", len(ops2), len(ops))
	}
	for i := range ops {
		a, b := ops[i], ops2[i]
		if a.Kind != b.Kind || a.Select != b.Select || a.NewValue != b.NewValue {
			t.Errorf("op %d: %+v vs %+v", i, a, b)
		}
		if (a.Content == nil) != (b.Content == nil) {
			t.Errorf("op %d content presence differs", i)
			continue
		}
		if a.Content != nil {
			ca, errA := ModificationsString([]*Op{a})
			cb, errB := ModificationsString([]*Op{b})
			if errA != nil || errB != nil || ca != cb {
				t.Errorf("op %d content differs:\n%s\nvs\n%s", i, ca, cb)
			}
		}
	}
	// And executing both against identical documents gives identical results.
	d1, d2 := parse(t), parse(t)
	if _, err := ExecuteAll(d1, ops, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteAll(d2, ops2, nil); err != nil {
		t.Fatal(err)
	}
	if d1.XML() != d2.XML() {
		t.Errorf("round-tripped ops diverge:\n%s\nvs\n%s", d1.XML(), d2.XML())
	}
}

func TestWriteModificationsRejectsUnknownKind(t *testing.T) {
	if _, err := ModificationsString([]*Op{{Kind: Kind(77), Select: "/x"}}); err == nil {
		t.Error("unknown kind serialized")
	}
}
