package findings

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Report {
	return &Report{
		Tool:       "xmlsec-vet",
		Analyzed:   7,
		Suppressed: 2,
		Findings: []Finding{
			{
				Tool: "xmlsec-vet", Pass: "viewbypass", Code: "unsecured-write",
				Severity: Error, Message: "xupdate.Execute bypasses the §4.4.2 access controls",
				Pos: "internal/shell/shell.go:10:4", Function: "Shell.runOp", Key: "xupdate.Execute",
			},
			{
				Tool: "xmlsec-lint", Pass: "policy", Code: "dead-rule",
				Severity: Warning, Message: "rule is shadowed for every subject",
				Rule: "accept read //x for nurse", Priority: 4,
				Related: []int64{7}, Subjects: []string{"nurse"},
			},
		},
	}
}

// TestSeverityJSONRoundTrip checks the string encoding both ways.
func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, got)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("unknown severity decoded without error")
	}
}

// TestReportJSONSchema round-trips a report through the schema with unknown
// fields disallowed: what the struct emits is exactly what it accepts.
func TestReportJSONSchema(t *testing.T) {
	rep := sample()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var back Report
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict decode of own output: %v", err)
	}
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("re-encoding changed the document:\n%s\n%s", raw, raw2)
	}
}

func TestExitCodes(t *testing.T) {
	clean := &Report{Tool: "xmlsec-vet"}
	if got := clean.ExitCode(); got != 0 {
		t.Errorf("clean report exit %d, want 0", got)
	}
	warn := &Report{Findings: []Finding{{Severity: Warning}}}
	if got := warn.ExitCode(); got != 1 {
		t.Errorf("warning report exit %d, want 1", got)
	}
	if got := sample().ExitCode(); got != 2 {
		t.Errorf("error report exit %d, want 2", got)
	}
}

func TestText(t *testing.T) {
	out := sample().Text()
	for _, want := range []string{
		"xmlsec-vet: 7 package(s) analyzed: 2 finding(s) (2 suppressed by baseline)",
		"viewbypass/unsecured-write internal/shell/shell.go:10:4",
		"policy/dead-rule rule@4",
		"[nurse]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	empty := &Report{Tool: "xmlsec-lint", Analyzed: 12}
	if want := "xmlsec-lint: 12 rule(s) analyzed: no findings\n"; empty.Text() != want {
		t.Errorf("empty text = %q, want %q", empty.Text(), want)
	}
}
