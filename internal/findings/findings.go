// Package findings defines the diagnostic schema shared by the repository's
// two static analyzers: xmlsec-lint (the policy analyzer over
// internal/policyanalysis) and xmlsec-vet (the source-level invariant
// checker over internal/srcanalysis). Both binaries emit a Report in this
// one JSON shape with -json, so CI consumes a single format regardless of
// which gate produced the finding.
//
// A Finding carries two kinds of anchor and uses whichever applies: source
// anchors (Pos, Function, Key) for code-level findings, and policy anchors
// (Rule, Priority, Related, Subjects) for rule-level findings. Exit-code
// semantics are shared too: 0 clean, 1 warnings only, 2 errors.
package findings

import (
	"fmt"
	"strings"
)

// Severity ranks findings. Errors are violations of an invariant the
// analyzer can prove; warnings are constructs that weaken a guarantee
// without provably breaking it.
type Severity int

// Severities in ascending order.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity lowercase, as used in text and JSON output.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes the string form written by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("findings: unknown severity %s", b)
	}
	return nil
}

// Finding is one diagnostic from either analyzer.
type Finding struct {
	// Tool is the emitting analyzer: "xmlsec-lint" or "xmlsec-vet".
	Tool string `json:"tool"`
	// Pass names the analysis that produced the finding ("viewbypass",
	// "ctxflow", ... for vet; "policy" for lint).
	Pass string `json:"pass"`
	// Code is the stable machine-readable finding code CI matches on.
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`

	// Source anchors (xmlsec-vet).
	Pos      string `json:"pos,omitempty"`      // module-relative file:line:col
	Function string `json:"function,omitempty"` // enclosing function
	Key      string `json:"key,omitempty"`      // stable key for baseline matching

	// Policy anchors (xmlsec-lint).
	Rule     string   `json:"rule,omitempty"`
	Priority int64    `json:"priority,omitempty"`
	Related  []int64  `json:"related,omitempty"`
	Subjects []string `json:"subjects,omitempty"`
}

// anchor renders the finding's location: source position for vet findings,
// rule priority for lint findings, nothing for tool-level findings.
func (f *Finding) anchor() string {
	switch {
	case f.Pos != "":
		return f.Pos
	case f.Rule != "":
		return fmt.Sprintf("rule@%d", f.Priority)
	default:
		return "-"
	}
}

// RepairEdit is one primitive policy edit inside a candidate repair.
// Index addresses the rule by position in the analyzed rule slice — the
// only unambiguous key when the finding under repair is a priority
// collision — with Rule and Priority carried for human consumption.
type RepairEdit struct {
	// Kind is the edit primitive: "delete-rule", "flip-effect",
	// "set-priority" or "narrow-path".
	Kind string `json:"kind"`
	// Index of the target rule in the analyzed (snapshot-order) slice.
	Index int `json:"index"`
	// Rule is the target rule's rendering; Priority its current priority.
	Rule     string `json:"rule,omitempty"`
	Priority int64  `json:"priority,omitempty"`
	// Exactly one of the following is set, matching Kind.
	NewPriority int64  `json:"new_priority,omitempty"`
	NewPath     string `json:"new_path,omitempty"`
	NewEffect   string `json:"new_effect,omitempty"`
}

// Repair is one validated candidate fix for a finding: a minimal edit set
// that the repair engine has re-analyzed (finding gone, nothing new) and —
// when a document was available — differentially classified against the
// original policy's full permission matrix.
type Repair struct {
	// Code and Priority anchor the finding this repair addresses.
	Code     string `json:"code"`
	Priority int64  `json:"priority"`
	// Edits applied together constitute the repair; Distance is the edit
	// count (the ranking key — lower is more minimal).
	Edits    []RepairEdit `json:"edits"`
	Distance int          `json:"distance"`
	// Validated: re-analysis of the patched rules proved the finding gone
	// with no new finding introduced. Only validated repairs are offered.
	Validated bool `json:"validated"`
	// SemanticsChecked is true when a scenario document was available to
	// run the differential oracle; SemanticsPreserving then reports whether
	// every user's permission matrix stayed cell-for-cell identical.
	SemanticsChecked    bool   `json:"semantics_checked"`
	SemanticsPreserving bool   `json:"semantics_preserving"`
	Description         string `json:"description"`
}

// Report is the full result of one analyzer run.
type Report struct {
	// Tool is the emitting analyzer: "xmlsec-lint" or "xmlsec-vet".
	Tool string `json:"tool"`
	// Analyzed counts the units examined: rules for lint, packages for vet.
	Analyzed int `json:"analyzed"`
	// Suppressed counts findings matched (and hidden) by a baseline entry.
	Suppressed int       `json:"suppressed,omitempty"`
	Findings   []Finding `json:"findings"`
	// Repairs holds the validated candidate fixes computed by
	// xmlsec-lint -fix, ranked per finding by ascending distance.
	Repairs []Repair `json:"repairs,omitempty"`
}

// Max returns the highest severity present, or Info for a clean report.
func (r *Report) Max() Severity {
	max := Info
	for i := range r.Findings {
		if r.Findings[i].Severity > max {
			max = r.Findings[i].Severity
		}
	}
	return max
}

// HasErrors reports whether any finding is an Error.
func (r *Report) HasErrors() bool { return r.Max() >= Error }

// HasWarnings reports whether any finding is Warning or worse.
func (r *Report) HasWarnings() bool { return r.Max() >= Warning }

// ExitCode maps the report to the shared CI exit-code contract:
// 0 no findings, 1 warnings only, 2 errors.
func (r *Report) ExitCode() int {
	switch {
	case r.HasErrors():
		return 2
	case r.HasWarnings():
		return 1
	default:
		return 0
	}
}

// Text renders the report for terminals: one line per finding, with a
// summary header.
func (r *Report) Text() string {
	var b strings.Builder
	unit := "unit(s)"
	switch r.Tool {
	case "xmlsec-lint":
		unit = "rule(s)"
	case "xmlsec-vet":
		unit = "package(s)"
	}
	if len(r.Findings) == 0 {
		fmt.Fprintf(&b, "%s: %d %s analyzed: no findings", r.Tool, r.Analyzed, unit)
		if r.Suppressed > 0 {
			fmt.Fprintf(&b, " (%d suppressed by baseline)", r.Suppressed)
		}
		b.WriteByte('\n')
		return b.String()
	}
	fmt.Fprintf(&b, "%s: %d %s analyzed: %d finding(s)", r.Tool, r.Analyzed, unit, len(r.Findings))
	if r.Suppressed > 0 {
		fmt.Fprintf(&b, " (%d suppressed by baseline)", r.Suppressed)
	}
	b.WriteByte('\n')
	for i := range r.Findings {
		f := &r.Findings[i]
		fmt.Fprintf(&b, "%-7s %s/%s %s: %s", f.Severity, f.Pass, f.Code, f.anchor(), f.Message)
		if len(f.Related) > 0 {
			parts := make([]string, len(f.Related))
			for i, p := range f.Related {
				parts[i] = fmt.Sprintf("@%d", p)
			}
			fmt.Fprintf(&b, " (related: %s)", strings.Join(parts, ", "))
		}
		if len(f.Subjects) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(f.Subjects, ", "))
		}
		b.WriteByte('\n')
	}
	for i := range r.Repairs {
		rp := &r.Repairs[i]
		label := "semantics-changing"
		if !rp.SemanticsChecked {
			label = "semantics-unchecked"
		} else if rp.SemanticsPreserving {
			label = "semantics-preserving"
		}
		fmt.Fprintf(&b, "repair  %s rule@%d (distance %d, %s): %s\n",
			rp.Code, rp.Priority, rp.Distance, label, rp.Description)
		for _, e := range rp.Edits {
			fmt.Fprintf(&b, "        %s #%d %s", e.Kind, e.Index, e.Rule)
			switch e.Kind {
			case "set-priority":
				fmt.Fprintf(&b, " -> priority %d", e.NewPriority)
			case "narrow-path":
				fmt.Fprintf(&b, " -> path %s", e.NewPath)
			case "flip-effect":
				fmt.Fprintf(&b, " -> %s", e.NewEffect)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
