// Package subject implements the subject hierarchy of §4.2: subjects are
// roles (internal nodes) and users (leaves), related by the isa relation.
// The reflexive-transitive closure of isa (axioms 11 and 12) determines
// which security rules apply to a session user: a rule granted to subject s'
// applies to s whenever isa(s, s').
package subject

import (
	"errors"
	"fmt"
	"sort"
)

// Kind distinguishes roles from users.
type Kind int

// Subject kinds.
const (
	Role Kind = iota
	User
)

// String returns the kind name.
func (k Kind) String() string {
	if k == User {
		return "user"
	}
	return "role"
}

// Errors returned by hierarchy mutations.
var (
	ErrUnknownSubject   = errors.New("subject: unknown subject")
	ErrDuplicateSubject = errors.New("subject: subject already exists")
	ErrCycle            = errors.New("subject: isa edge would create a cycle")
	ErrUserParent       = errors.New("subject: a user cannot be the parent of another subject")
)

// Hierarchy is a mutable subject hierarchy: a DAG of roles with users at the
// leaves. The zero value is not usable; call NewHierarchy.
type Hierarchy struct {
	kinds   map[string]Kind
	parents map[string][]string // direct isa edges: subject -> parents
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		kinds:   make(map[string]Kind),
		parents: make(map[string][]string),
	}
}

// AddRole declares a role, optionally under parent roles (isa edges).
func (h *Hierarchy) AddRole(name string, parents ...string) error {
	return h.add(name, Role, parents)
}

// AddUser declares a user belonging to the given roles.
func (h *Hierarchy) AddUser(name string, roles ...string) error {
	return h.add(name, User, roles)
}

func (h *Hierarchy) add(name string, kind Kind, parents []string) error {
	if name == "" {
		return errors.New("subject: empty subject name")
	}
	if _, ok := h.kinds[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateSubject, name)
	}
	for _, p := range parents {
		pk, ok := h.kinds[p]
		if !ok {
			return fmt.Errorf("%w: parent %q of %q", ErrUnknownSubject, p, name)
		}
		if pk == User {
			return fmt.Errorf("%w: %q under user %q", ErrUserParent, name, p)
		}
	}
	h.kinds[name] = kind
	h.parents[name] = append([]string(nil), parents...)
	return nil
}

// AddISA adds an isa edge from child to parent after both exist. It rejects
// edges that would create a cycle (the closure must stay a partial order).
func (h *Hierarchy) AddISA(child, parent string) error {
	if _, ok := h.kinds[child]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubject, child)
	}
	pk, ok := h.kinds[parent]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubject, parent)
	}
	if pk == User {
		return fmt.Errorf("%w: %q under user %q", ErrUserParent, child, parent)
	}
	if child == parent || h.ISA(parent, child) {
		return fmt.Errorf("%w: isa(%s, %s)", ErrCycle, child, parent)
	}
	for _, p := range h.parents[child] {
		if p == parent {
			return nil // idempotent
		}
	}
	h.parents[child] = append(h.parents[child], parent)
	return nil
}

// Exists reports whether name is a declared subject.
func (h *Hierarchy) Exists(name string) bool {
	_, ok := h.kinds[name]
	return ok
}

// KindOf returns the kind of a subject; ok is false for unknown names.
func (h *Hierarchy) KindOf(name string) (Kind, bool) {
	k, ok := h.kinds[name]
	return k, ok
}

// ISA implements the reflexive-transitive closure of axioms 11 and 12:
// it reports whether subject s "is a" subject target. Unknown subjects are
// related to nothing (closed world).
func (h *Hierarchy) ISA(s, target string) bool {
	if _, ok := h.kinds[s]; !ok {
		return false
	}
	if _, ok := h.kinds[target]; !ok {
		return false
	}
	if s == target {
		return true // axiom 11: reflexivity
	}
	// Axiom 12: transitivity, via upward search.
	seen := map[string]bool{s: true}
	stack := append([]string(nil), h.parents[s]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, h.parents[cur]...)
	}
	return false
}

// Ancestors returns every subject s' with isa(s, s'), including s itself,
// sorted by name. It is the set of subjects whose rules apply to s.
func (h *Hierarchy) Ancestors(s string) []string {
	if _, ok := h.kinds[s]; !ok {
		return nil
	}
	seen := map[string]bool{}
	var visit func(string)
	visit = func(cur string) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		for _, p := range h.parents[cur] {
			visit(p)
		}
	}
	visit(s)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parents returns the direct isa parents of s.
func (h *Hierarchy) Parents(s string) []string {
	return append([]string(nil), h.parents[s]...)
}

// Members returns every subject s with isa(s, role), including the role
// itself, sorted by name — the downward closure.
func (h *Hierarchy) Members(role string) []string {
	if _, ok := h.kinds[role]; !ok {
		return nil
	}
	var out []string
	for name := range h.kinds {
		if h.ISA(name, role) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Users returns all declared users, sorted by name.
func (h *Hierarchy) Users() []string { return h.byKind(User) }

// Roles returns all declared roles, sorted by name.
func (h *Hierarchy) Roles() []string { return h.byKind(Role) }

func (h *Hierarchy) byKind(k Kind) []string {
	var out []string
	for name, kind := range h.kinds {
		if kind == k {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	c := NewHierarchy()
	for name, k := range h.kinds {
		c.kinds[name] = k
	}
	for name, ps := range h.parents {
		c.parents[name] = append([]string(nil), ps...)
	}
	return c
}

// Facts enumerates the subject(s) and direct isa(s, s') facts — the sets S
// of axiom 10 — for the logic reference model.
func (h *Hierarchy) Facts() (subjects []string, isa [][2]string) {
	subjects = make([]string, 0, len(h.kinds))
	for name := range h.kinds {
		subjects = append(subjects, name)
	}
	sort.Strings(subjects)
	for _, s := range subjects {
		for _, p := range h.parents[s] {
			isa = append(isa, [2]string{s, p})
		}
	}
	return subjects, isa
}

// PaperHierarchy builds the Fig. 3 hierarchy: roles staff, secretary,
// doctor, epidemiologist, patient; users beaufort (secretary), laporte
// (doctor), richard (epidemiologist), robert and franck (patients).
func PaperHierarchy() *Hierarchy {
	h := NewHierarchy()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(h.AddRole("staff"))
	must(h.AddRole("secretary", "staff"))
	must(h.AddRole("doctor", "staff"))
	must(h.AddRole("epidemiologist", "staff"))
	must(h.AddRole("patient"))
	must(h.AddUser("beaufort", "secretary"))
	must(h.AddUser("laporte", "doctor"))
	must(h.AddUser("richard", "epidemiologist"))
	must(h.AddUser("robert", "patient"))
	must(h.AddUser("franck", "patient"))
	return h
}
