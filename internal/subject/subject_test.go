package subject

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddAndKinds(t *testing.T) {
	h := NewHierarchy()
	if err := h.AddRole("staff"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddUser("alice", "staff"); err != nil {
		t.Fatal(err)
	}
	if !h.Exists("staff") || !h.Exists("alice") || h.Exists("bob") {
		t.Error("Exists wrong")
	}
	if k, _ := h.KindOf("staff"); k != Role {
		t.Error("staff should be a role")
	}
	if k, _ := h.KindOf("alice"); k != User {
		t.Error("alice should be a user")
	}
	if _, ok := h.KindOf("bob"); ok {
		t.Error("KindOf(bob) should report absence")
	}
	if Role.String() != "role" || User.String() != "user" {
		t.Error("Kind.String wrong")
	}
}

func TestAddErrors(t *testing.T) {
	h := NewHierarchy()
	if err := h.AddRole(""); err == nil {
		t.Error("empty name accepted")
	}
	if err := h.AddRole("staff"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRole("staff"); !errors.Is(err, ErrDuplicateSubject) {
		t.Errorf("duplicate role: %v", err)
	}
	if err := h.AddRole("x", "ghost"); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("unknown parent: %v", err)
	}
	if err := h.AddUser("u", "staff"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRole("y", "u"); !errors.Is(err, ErrUserParent) {
		t.Errorf("user parent: %v", err)
	}
}

func TestISAReflexiveTransitive(t *testing.T) {
	h := PaperHierarchy()
	cases := []struct {
		s, target string
		want      bool
	}{
		{"staff", "staff", true},        // axiom 11
		{"beaufort", "beaufort", true},  // axiom 11 for users
		{"secretary", "staff", true},    // direct edge
		{"beaufort", "secretary", true}, // direct edge
		{"beaufort", "staff", true},     // axiom 12: transitivity
		{"laporte", "staff", true},
		{"richard", "epidemiologist", true},
		{"robert", "patient", true},
		{"robert", "staff", false},
		{"staff", "secretary", false}, // isa is directed
		{"franck", "doctor", false},
		{"ghost", "staff", false},
		{"staff", "ghost", false},
	}
	for _, tc := range cases {
		if got := h.ISA(tc.s, tc.target); got != tc.want {
			t.Errorf("ISA(%s, %s) = %v, want %v", tc.s, tc.target, got, tc.want)
		}
	}
}

func TestAncestors(t *testing.T) {
	h := PaperHierarchy()
	got := h.Ancestors("beaufort")
	want := []string{"beaufort", "secretary", "staff"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors(beaufort) = %v, want %v", got, want)
	}
	if h.Ancestors("ghost") != nil {
		t.Error("Ancestors of unknown subject should be nil")
	}
	if got := h.Ancestors("staff"); !reflect.DeepEqual(got, []string{"staff"}) {
		t.Errorf("Ancestors(staff) = %v", got)
	}
}

func TestMembers(t *testing.T) {
	h := PaperHierarchy()
	got := h.Members("staff")
	want := []string{"beaufort", "doctor", "epidemiologist", "laporte", "richard", "secretary", "staff"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Members(staff) = %v, want %v", got, want)
	}
	if h.Members("ghost") != nil {
		t.Error("Members of unknown subject should be nil")
	}
}

func TestUsersRoles(t *testing.T) {
	h := PaperHierarchy()
	wantUsers := []string{"beaufort", "franck", "laporte", "richard", "robert"}
	if got := h.Users(); !reflect.DeepEqual(got, wantUsers) {
		t.Errorf("Users() = %v", got)
	}
	wantRoles := []string{"doctor", "epidemiologist", "patient", "secretary", "staff"}
	if got := h.Roles(); !reflect.DeepEqual(got, wantRoles) {
		t.Errorf("Roles() = %v", got)
	}
}

func TestAddISA(t *testing.T) {
	h := NewHierarchy()
	for _, r := range []string{"a", "b", "c"} {
		if err := h.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddISA("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddISA("b", "c"); err != nil {
		t.Fatal(err)
	}
	if !h.ISA("a", "c") {
		t.Error("transitive isa missing after AddISA")
	}
	// Idempotence.
	if err := h.AddISA("a", "b"); err != nil {
		t.Errorf("re-adding edge: %v", err)
	}
	if got := len(h.Parents("a")); got != 1 {
		t.Errorf("duplicate edge recorded: %d parents", got)
	}
	// Cycles rejected.
	if err := h.AddISA("c", "a"); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle: %v", err)
	}
	if err := h.AddISA("a", "a"); !errors.Is(err, ErrCycle) {
		t.Errorf("self edge: %v", err)
	}
	if err := h.AddISA("ghost", "a"); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("unknown child: %v", err)
	}
	if err := h.AddISA("a", "ghost"); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("unknown parent: %v", err)
	}
	if err := h.AddUser("u", "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddISA("b", "u"); !errors.Is(err, ErrUserParent) {
		t.Errorf("user as parent: %v", err)
	}
}

func TestMultipleInheritance(t *testing.T) {
	h := NewHierarchy()
	for _, r := range []string{"admin", "medical"} {
		if err := h.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddUser("head", "admin", "medical"); err != nil {
		t.Fatal(err)
	}
	if !h.ISA("head", "admin") || !h.ISA("head", "medical") {
		t.Error("multi-parent isa broken")
	}
	want := []string{"admin", "head", "medical"}
	if got := h.Ancestors("head"); !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors(head) = %v", got)
	}
}

func TestDiamondHierarchy(t *testing.T) {
	// a -> b -> d, a -> c -> d: closure must not loop or duplicate.
	h := NewHierarchy()
	for _, r := range []string{"d", "b", "c", "a"} {
		if err := h.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"b", "d"}, {"c", "d"}, {"a", "b"}, {"a", "c"}} {
		if err := h.AddISA(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !h.ISA("a", "d") {
		t.Error("diamond closure broken")
	}
	if got := h.Ancestors("a"); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Errorf("Ancestors(a) = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := PaperHierarchy()
	c := h.Clone()
	if err := c.AddRole("nurse", "staff"); err != nil {
		t.Fatal(err)
	}
	if h.Exists("nurse") {
		t.Error("mutating clone changed the original")
	}
	if !c.ISA("nurse", "staff") {
		t.Error("clone lost edges")
	}
}

func TestFacts(t *testing.T) {
	h := PaperHierarchy()
	subjects, isa := h.Facts()
	if len(subjects) != 10 {
		t.Errorf("%d subjects, want 10 (Fig. 3)", len(subjects))
	}
	if len(isa) != 8 {
		t.Errorf("%d direct isa facts, want 8", len(isa))
	}
	for _, e := range isa {
		if !h.ISA(e[0], e[1]) {
			t.Errorf("fact isa(%s, %s) not in closure", e[0], e[1])
		}
	}
}

// TestQuickISAPartialOrder checks closure properties on a random DAG:
// reflexivity, transitivity, antisymmetry.
func TestQuickISAPartialOrder(t *testing.T) {
	build := func(edges []uint8) *Hierarchy {
		h := NewHierarchy()
		names := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}
		for _, n := range names {
			if err := h.AddRole(n); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range edges {
			child := names[int(e)%len(names)]
			parent := names[int(e/8)%len(names)]
			_ = h.AddISA(child, parent) // cycles are rejected; that's fine
		}
		return h
	}
	f := func(edges []uint8) bool {
		h := build(edges)
		names := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}
		for _, a := range names {
			if !h.ISA(a, a) {
				return false // reflexivity
			}
			for _, b := range names {
				for _, c := range names {
					if h.ISA(a, b) && h.ISA(b, c) && !h.ISA(a, c) {
						return false // transitivity
					}
				}
				if a != b && h.ISA(a, b) && h.ISA(b, a) {
					return false // antisymmetry (no cycles survive)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
