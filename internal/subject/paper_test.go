package subject

// Reproduction of Fig. 3 and the sets S and RS of §4.2 (experiment F3 in
// DESIGN.md): the subject hierarchy with roles staff/secretary/doctor/
// epidemiologist/patient and users beaufort/laporte/richard/robert/franck,
// and the reflexive-transitive isa closure of axioms 11 and 12.

import (
	"reflect"
	"sort"
	"testing"
)

// TestFig3Subjects checks the subject(s) facts of axiom 10.
func TestFig3Subjects(t *testing.T) {
	h := PaperHierarchy()
	subjects, _ := h.Facts()
	want := []string{
		"beaufort", "doctor", "epidemiologist", "franck", "laporte",
		"patient", "richard", "robert", "secretary", "staff",
	}
	if !reflect.DeepEqual(subjects, want) {
		t.Errorf("subjects = %v, want %v", subjects, want)
	}
}

// TestFig3DirectISA checks the direct isa facts of axiom 10.
func TestFig3DirectISA(t *testing.T) {
	h := PaperHierarchy()
	_, isa := h.Facts()
	got := make([]string, len(isa))
	for i, e := range isa {
		got[i] = e[0] + "->" + e[1]
	}
	sort.Strings(got)
	want := []string{
		"beaufort->secretary",
		"doctor->staff",
		"epidemiologist->staff",
		"franck->patient",
		"laporte->doctor",
		"richard->epidemiologist",
		"robert->patient",
		"secretary->staff",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("direct isa = %v, want %v", got, want)
	}
}

// TestFig3Closure checks the derived closure (axioms 11–12) exhaustively:
// every pair of subjects, exactly the expected relations.
func TestFig3Closure(t *testing.T) {
	h := PaperHierarchy()
	subjects, _ := h.Facts()

	derived := map[string]bool{}
	for _, e := range [][2]string{
		// From axiom 12 (transitivity):
		{"beaufort", "staff"}, {"laporte", "staff"}, {"richard", "staff"},
		// Direct edges:
		{"secretary", "staff"}, {"doctor", "staff"}, {"epidemiologist", "staff"},
		{"beaufort", "secretary"}, {"laporte", "doctor"}, {"richard", "epidemiologist"},
		{"robert", "patient"}, {"franck", "patient"},
	} {
		derived[e[0]+"|"+e[1]] = true
	}
	for _, s := range subjects {
		derived[s+"|"+s] = true // axiom 11 (reflexivity)
	}
	for _, a := range subjects {
		for _, b := range subjects {
			want := derived[a+"|"+b]
			if got := h.ISA(a, b); got != want {
				t.Errorf("isa(%s, %s) = %v, want %v", a, b, got, want)
			}
		}
	}
}
