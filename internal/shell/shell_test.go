package shell

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securexml/internal/scenario"
)

// run executes a sequence of commands and returns the accumulated output;
// commands expected to fail carry a leading "!".
func run(t *testing.T, lines ...string) string {
	t.Helper()
	db, err := scenario.New()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := New(db, &out)
	for _, line := range lines {
		wantErr := strings.HasPrefix(line, "!")
		line = strings.TrimPrefix(line, "!")
		err := sh.Execute(line)
		if wantErr && err == nil {
			t.Fatalf("command %q: expected error", line)
		}
		if !wantErr && err != nil {
			t.Fatalf("command %q: %v", line, err)
		}
	}
	return out.String()
}

func TestLoginAndWhoami(t *testing.T) {
	out := run(t,
		"whoami",
		"login beaufort",
		"whoami",
		"logout",
		"whoami",
		"!login mallory",
		"!login doctor",
		"!login",
	)
	if !strings.Contains(out, "not logged in") || !strings.Contains(out, "beaufort") {
		t.Errorf("output:\n%s", out)
	}
}

func TestViewAndQuery(t *testing.T) {
	out := run(t,
		"login beaufort",
		"view",
		"query //diagnosis",
		"value count(//RESTRICTED)",
		"!query",
		"!query //[",
		"!value",
	)
	if !strings.Contains(out, "RESTRICTED") {
		t.Errorf("secretary view/query missing RESTRICTED:\n%s", out)
	}
	if strings.Contains(out, "tonsillitis") {
		t.Error("secretary shell leaks diagnosis content")
	}
	if !strings.Contains(out, "(2 nodes)") {
		t.Errorf("query count missing:\n%s", out)
	}
}

func TestExplainCommand(t *testing.T) {
	out := run(t,
		"!explain //diagnosis", // requires a session
		"login beaufort",
		"!explain", // requires an xpath
		"explain //diagnosis/text()",
	)
	for _, want := range []string{
		"explain //diagnosis/text() as beaufort",
		"restricted",
		"read     denied by rule(deny,read,//diagnosis/node(),secretary",
		"defeats rule(accept,read,/descendant-or-self::node(),staff",
		"position granted by",
		"cell=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISMATCH") || strings.Contains(out, "WARNING") {
		t.Fatalf("paper scenario must explain consistently:\n%s", out)
	}
}

func TestUpdateCommands(t *testing.T) {
	out := run(t,
		"login laporte",
		"update /patients/franck/diagnosis pharyngitis",
		"query /patients/franck/diagnosis/text()",
		"remove /patients/robert/diagnosis/text()",
		"append /patients/robert/diagnosis <note>pending</note>",
		"!rename",
		"!update /patients/franck/diagnosis",
		"!append /patients/franck",
		"!append /patients/franck <unclosed",
		"!remove",
	)
	if !strings.Contains(out, "pharyngitis") {
		t.Errorf("update not visible:\n%s", out)
	}
	if !strings.Contains(out, "applied=1") {
		t.Errorf("op results missing:\n%s", out)
	}
}

func TestDeniedUpdateShowsSkips(t *testing.T) {
	out := run(t,
		"login beaufort",
		"update /patients/franck/diagnosis leak",
	)
	if !strings.Contains(out, "applied=0") || !strings.Contains(out, "skipped") {
		t.Errorf("refusal not reported:\n%s", out)
	}
}

func TestAdminCommands(t *testing.T) {
	out := run(t,
		"addrole intern doctor",
		"adduser kim intern",
		"grant read kim //service",
		"revoke read kim //service/text()",
		"rules",
		"users",
		"roles",
		"stats",
		"audit 3",
		"!grant fly kim //x",
		"!grant read ghost //x",
		"!grant",
		"!addrole",
		"!adduser",
		"!badcommand",
	)
	if !strings.Contains(out, "kim") || !strings.Contains(out, "intern") {
		t.Errorf("admin output:\n%s", out)
	}
	if !strings.Contains(out, "rule(deny,read,//service/text(),kim,") {
		t.Errorf("rules listing missing revoke:\n%s", out)
	}
	if !strings.Contains(out, "nodes=12") {
		t.Errorf("stats missing:\n%s", out)
	}
}

// TestStatsTelemetry exercises the pipeline and asserts stats reports the
// observability snapshot: cache effectiveness, session-op counters and
// per-stage latency quantiles.
func TestStatsTelemetry(t *testing.T) {
	out := run(t,
		"login laporte",
		"query //diagnosis",
		"query //diagnosis",
		"stats",
	)
	for _, want := range []string{
		"view-cache: hits=",
		"hit-rate=",
		"session-op: query ok=",
		"view_materialize",
		"p95=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats telemetry missing %q:\n%s", want, out)
		}
	}
}

func TestSaveOpenCycle(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.sxml")
	db, err := scenario.New()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := New(db, &out)
	cmds := []string{
		"save " + snap,
		"login laporte",
		"remove //diagnosis/text()",
		"open " + snap,
		"login laporte",
		"query //diagnosis/text()",
	}
	for _, c := range cmds {
		if err := sh.Execute(c); err != nil {
			t.Fatalf("%q: %v", c, err)
		}
	}
	if !strings.Contains(out.String(), "tonsillitis") {
		t.Errorf("restore did not bring data back:\n%s", out.String())
	}
	if sh.DB() == db {
		t.Error("open did not swap the database")
	}
	if sh.User() == "laporte" && !strings.Contains(out.String(), "log in again") {
		t.Error("open kept the stale session silently")
	}
	// Error paths.
	if err := sh.Execute("save"); err == nil {
		t.Error("save without path accepted")
	}
	if err := sh.Execute("open"); err == nil {
		t.Error("open without path accepted")
	}
	if err := sh.Execute("open /nonexistent/nope.sxml"); err == nil {
		t.Error("open of missing file accepted")
	}
	if err := sh.Execute("save /nonexistent/nope.sxml"); err == nil {
		t.Error("save into missing dir accepted")
	}
}

func TestSessionRequired(t *testing.T) {
	run(t,
		"!view",
		"!query //x",
		"!value 1",
		"!remove //x",
	)
}

func TestHelpAndNoop(t *testing.T) {
	out := run(t, "help", "", "quit")
	if !strings.Contains(out, "login <user>") {
		t.Error("help output missing")
	}
}

func TestSourceVisibleToAdminCommand(t *testing.T) {
	out := run(t, "source")
	if !strings.Contains(out, "tonsillitis") {
		t.Error("source should show the raw document")
	}
}

func TestTransformCommand(t *testing.T) {
	dir := t.TempDir()
	sheetPath := filepath.Join(dir, "report.xsl")
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	  <xsl:template match="/"><r><xsl:value-of select="count(/patients/*)"/></xsl:template>
	</xsl:stylesheet>`
	// Intentionally malformed first (unclosed <r>), to hit the error path.
	if err := osWriteFile(sheetPath, sheet); err != nil {
		t.Fatal(err)
	}
	db, err := scenario.New()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := New(db, &out)
	if err := sh.Execute("login laporte"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Execute("transform " + sheetPath); err == nil {
		t.Error("malformed stylesheet accepted")
	}
	good := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	  <xsl:template match="/"><r><xsl:value-of select="count(/patients/*)"/></r></xsl:template>
	</xsl:stylesheet>`
	if err := osWriteFile(sheetPath, good); err != nil {
		t.Fatal(err)
	}
	if err := sh.Execute("transform " + sheetPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<r>2</r>") {
		t.Errorf("transform output:\n%s", out.String())
	}
	if err := sh.Execute("transform"); err == nil {
		t.Error("missing path accepted")
	}
	if err := sh.Execute("transform /nonexistent.xsl"); err == nil {
		t.Error("missing file accepted")
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestLintCommand(t *testing.T) {
	out := run(t, "lint")
	if !strings.Contains(out, "no findings") {
		t.Errorf("lint on the paper policy: %q", out)
	}
	out = run(t,
		"grant update secretary //diagnosis/node()",
		"lint",
	)
	if !strings.Contains(out, "covert-channel-hazard") {
		t.Errorf("lint after covert grant: %q", out)
	}
}

func TestLintFixCommand(t *testing.T) {
	out := run(t, "lint -fix")
	if !strings.Contains(out, "no findings") {
		t.Errorf("lint -fix on the paper policy: %q", out)
	}
	// Reopen the secretary diagnosis deny: lint -fix must print the
	// finding together with a validated repair suggestion.
	out = run(t,
		"grant read secretary //diagnosis/node()",
		"lint -fix",
	)
	if !strings.Contains(out, "conflict-overlap") {
		t.Errorf("lint -fix after reopening grant: %q", out)
	}
	if !strings.Contains(out, "repair  conflict-overlap") {
		t.Errorf("lint -fix printed no repair: %q", out)
	}
}

func TestTierCommand(t *testing.T) {
	out := run(t,
		"tier",
		"tier view",
		"login laporte",
		"query //service",
		"tier rewrite",
		"query //service",
		// A non-empty node-set value cannot be served by a pinned rewrite
		// tier (it would leak source nodes).
		"!value //service",
		"tier auto",
		"value //service",
		"!tier bogus",
	)
	for _, want := range []string{
		"tier: auto\n",
		"tier: view (pinned)\n",
		"[view]",
		"tier: rewrite (pinned)\n",
		"[rewrite]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
