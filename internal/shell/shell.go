// Package shell implements the command interpreter behind cmd/xmlsec-shell:
// login/session management, view and query display, the six XUpdate
// operations, policy administration and snapshot persistence. It is
// separated from the binary so the command surface is unit-testable.
package shell

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"securexml/internal/core"
	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/xupdate"
)

// HelpText lists the commands; the binary prints it for "help".
const HelpText = `Commands:
  login <user>                    open a session (e.g. login beaufort)
  logout                          close the session
  whoami                          show the session user
  view                            print your authorized view
  query <xpath>                   select nodes on your view
  value <xpath>                   evaluate an expression (count(...), ...)
  tier [rewrite|qfilter|view|auto]  pin the read ladder to one tier (A/B
                                  debugging); no argument prints the pin
  explain <xpath>                 why each matched node is (in)visible: the
                                  winning rule, what it defeated, cell origin
  rename <path> <new-label>       xupdate:rename
  update <path> <new-content>     xupdate:update
  append <path> <xml-fragment>    xupdate:append
  insert-before <path> <xml>      xupdate:insert-before
  insert-after <path> <xml>       xupdate:insert-after
  remove <path>                   xupdate:remove
  grant <priv> <subject> <path>   add an accept rule (admin)
  revoke <priv> <subject> <path>  add a deny rule (admin)
  addrole <name> [parents...]     declare a role (admin)
  adduser <name> [roles...]       declare a user (admin)
  rules | users | roles | stats   inspect the database
  lint [-fix]                     static policy analysis (admin); -fix adds repairs
  source                          print the raw document (admin)
  save <file>                     write a durable snapshot (admin)
  open <file>                     restore a snapshot (admin)
  transform <stylesheet-file>     run XSLT through your security filter
  audit [n]                       print the last n audit entries
  help | quit`

// Shell interprets commands against a database, writing results to out.
type Shell struct {
	db      *core.Database
	session *core.Session
	out     io.Writer
	// forced pins the read ladder for query/value (the "tier" command);
	// TierAuto means the normal descent.
	forced core.Tier
}

// New builds a shell over db writing to out.
func New(db *core.Database, out io.Writer) *Shell {
	return &Shell{db: db, out: out, forced: core.TierAuto}
}

// DB returns the current database (it changes when "open" restores one).
func (sh *Shell) DB() *core.Database { return sh.db }

// User returns the session login, or "" when logged out.
func (sh *Shell) User() string {
	if sh.session == nil {
		return ""
	}
	return sh.session.User()
}

func (sh *Shell) printf(format string, args ...any) {
	fmt.Fprintf(sh.out, format, args...)
}

// printTelemetry appends the process-wide observability snapshot to the
// stats output: view-cache effectiveness, per-op session counters, and
// per-stage latency quantiles.
func (sh *Shell) printTelemetry() {
	snap := obs.Default().Snapshot()
	var hits, misses uint64
	for _, c := range snap.Counters {
		switch c.Name {
		case "xmlsec_view_cache_hits_total":
			hits += c.Value
		case "xmlsec_view_cache_misses_total":
			misses += c.Value
		}
	}
	if hits+misses > 0 {
		sh.printf("view-cache: hits=%d misses=%d hit-rate=%.2f\n",
			hits, misses, float64(hits)/float64(hits+misses))
	}
	for _, c := range snap.Counters {
		if c.Name == "xmlsec_session_ops_total" && c.Value > 0 {
			sh.printf("session-op: %s %s=%d\n", c.Labels["op"], c.Labels["outcome"], c.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == obs.StageMetric && h.Count > 0 {
			sh.printf("stage %-18s count=%-6d p50=%.6fs p95=%.6fs p99=%.6fs\n",
				h.Labels["stage"], h.Count, h.P50, h.P95, h.P99)
		}
	}
}

// Execute runs one command line. Returned errors are user-facing (bad
// command, refused operation, unreadable file); the shell state stays
// consistent either way.
func (sh *Shell) Execute(line string) error {
	cmd, rest := splitWord(line)
	switch cmd {
	case "", "quit", "exit":
		return nil
	case "help":
		sh.printf("%s\n", HelpText)
		return nil
	case "login":
		user, _ := splitWord(rest)
		if user == "" {
			return fmt.Errorf("usage: login <user>")
		}
		s, err := sh.db.Session(user)
		if err != nil {
			return err
		}
		sh.session = s
		return nil
	case "logout":
		sh.session = nil
		return nil
	case "whoami":
		if sh.session == nil {
			sh.printf("not logged in\n")
		} else {
			sh.printf("%s\n", sh.session.User())
		}
		return nil
	case "rules":
		for i, r := range sh.db.Rules() {
			sh.printf("%2d. %s\n", i+1, r.String())
		}
		return nil
	case "users":
		sh.printf("%s\n", strings.Join(sh.db.Users(), ", "))
		return nil
	case "roles":
		sh.printf("%s\n", strings.Join(sh.db.Roles(), ", "))
		return nil
	case "stats":
		st := sh.db.Stats()
		sh.printf("nodes=%d rules=%d users=%d roles=%d doc-version=%d policy-epoch=%d\n",
			st.Nodes, st.Rules, st.Users, st.Roles, st.DocVersion, st.PolicyEpoch)
		sh.printTelemetry()
		return nil
	case "source":
		sh.printf("%s\n", sh.db.SourceXML())
		return nil
	case "lint":
		if strings.TrimSpace(rest) == "-fix" {
			sh.printf("%s", sh.db.PlanRepairs().Canonical().Text())
			return nil
		}
		sh.printf("%s", sh.db.AnalyzePolicy().Text())
		return nil
	case "save":
		return sh.save(rest)
	case "open":
		return sh.open(rest)
	case "audit":
		entries := sh.db.Audit()
		n := 10
		fmt.Sscanf(rest, "%d", &n)
		if n > len(entries) {
			n = len(entries)
		}
		for _, e := range entries[len(entries)-n:] {
			sh.printf("#%d %-10s %-8s %-50s %s\n", e.Seq, e.User, e.Action, e.Detail, e.Outcome)
		}
		return nil
	case "grant", "revoke":
		parts := strings.Fields(rest)
		if len(parts) < 3 {
			return fmt.Errorf("usage: %s <priv> <subject> <path>", cmd)
		}
		priv, err := policy.ParsePrivilege(parts[0])
		if err != nil {
			return err
		}
		path := strings.Join(parts[2:], " ")
		if cmd == "grant" {
			return sh.db.Grant(priv, path, parts[1])
		}
		return sh.db.Revoke(priv, path, parts[1])
	case "addrole":
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			return fmt.Errorf("usage: addrole <name> [parents...]")
		}
		return sh.db.AddRole(parts[0], parts[1:]...)
	case "adduser":
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			return fmt.Errorf("usage: adduser <name> [roles...]")
		}
		return sh.db.AddUser(parts[0], parts[1:]...)
	case "tier":
		arg, _ := splitWord(rest)
		if arg == "" {
			if sh.forced == core.TierAuto {
				sh.printf("tier: auto\n")
			} else {
				sh.printf("tier: %s (pinned)\n", sh.forced)
			}
			return nil
		}
		forced, err := core.ParseTier(arg)
		if err != nil {
			return err
		}
		sh.forced = forced
		if forced == core.TierAuto {
			sh.printf("tier: auto\n")
		} else {
			sh.printf("tier: %s (pinned)\n", forced)
		}
		return nil
	}
	return sh.sessionCommand(cmd, rest)
}

func (sh *Shell) sessionCommand(cmd, rest string) error {
	if sh.session == nil {
		return fmt.Errorf("log in first (login <user>)")
	}
	s := sh.session
	switch cmd {
	case "view":
		out, err := s.ViewXML()
		if err != nil {
			return err
		}
		sh.printf("%s\n", out)
		return nil
	case "query":
		if rest == "" {
			return fmt.Errorf("usage: query <xpath>")
		}
		results, tier, err := s.QueryTierCtx(context.Background(), rest, sh.forced)
		if err != nil {
			return err
		}
		for _, r := range results {
			sh.printf("%-40s %-9s %s\n", r.Path, r.Kind, r.Value)
		}
		sh.printf("(%d nodes) [%s]\n", len(results), tier)
		return nil
	case "value":
		if rest == "" {
			return fmt.Errorf("usage: value <expression>")
		}
		v, tier, err := s.QueryValueTierCtx(context.Background(), rest, sh.forced)
		if err != nil {
			return err
		}
		sh.printf("%s (%s) [%s]\n", v.Str(), v.TypeName(), tier)
		return nil
	case "explain":
		if rest == "" {
			return fmt.Errorf("usage: explain <xpath>")
		}
		ex, err := s.Explain(rest)
		if err != nil {
			return err
		}
		sh.printExplanation(ex)
		return nil
	case "rename", "update":
		path, arg := splitWord(rest)
		if path == "" || arg == "" {
			return fmt.Errorf("usage: %s <path> <value>", cmd)
		}
		kind := xupdate.Rename
		if cmd == "update" {
			kind = xupdate.Update
		}
		op, err := xupdate.NewOp(kind, path, arg)
		if err != nil {
			return err
		}
		return sh.runOp(op)
	case "append", "insert-before", "insert-after":
		path, frag := splitWord(rest)
		if path == "" || frag == "" {
			return fmt.Errorf("usage: %s <path> <xml-fragment>", cmd)
		}
		kind := map[string]xupdate.Kind{
			"append": xupdate.Append, "insert-before": xupdate.InsertBefore,
			"insert-after": xupdate.InsertAfter,
		}[cmd]
		op, err := xupdate.NewOp(kind, path, frag)
		if err != nil {
			return fmt.Errorf("fragment: %w", err)
		}
		return sh.runOp(op)
	case "remove":
		if rest == "" {
			return fmt.Errorf("usage: remove <path>")
		}
		op, err := xupdate.NewOp(xupdate.Remove, rest, "")
		if err != nil {
			return err
		}
		return sh.runOp(op)
	case "transform":
		if rest == "" {
			return fmt.Errorf("usage: transform <stylesheet-file>")
		}
		src, err := os.ReadFile(rest)
		if err != nil {
			return err
		}
		out, err := s.Transform(string(src))
		if err != nil {
			return err
		}
		sh.printf("%s\n", out)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

// printExplanation renders a decision-provenance report: one block per
// matched node with its visibility verdict, cell origin, and per-privilege
// rule story (winner first, then what it defeated).
func (sh *Shell) printExplanation(ex *core.Explanation) {
	sh.printf("explain %s as %s (%d applicable rules, doc v%d, policy epoch %d)\n",
		ex.XPath, ex.User, ex.RulesApplicable, ex.DocVersion, ex.PolicyEpoch)
	for _, n := range ex.Nodes {
		sh.printf("%s [%s %s] %s, cell=%s\n", n.Path, n.Kind, n.NodeID, n.Visibility, n.Origin)
		for _, ps := range n.Privileges {
			if ps.Winner == nil {
				if ps.Privilege == "read" || ps.Privilege == "position" {
					sh.printf("  %-8s denied (closed world: no rule addresses the node)\n", ps.Privilege)
				}
				continue
			}
			verdict := "denied"
			if ps.Granted {
				verdict = "granted"
			}
			sh.printf("  %-8s %s by %s\n", ps.Privilege, verdict, ps.Winner.Rule)
			for _, d := range ps.Defeated {
				sh.printf("           defeats %s\n", d.Rule)
			}
		}
		for _, m := range n.Mismatches {
			sh.printf("  MISMATCH: %s\n", m)
		}
	}
	if !ex.Consistent {
		sh.printf("WARNING: provenance disagrees with the production decision (see mismatches)\n")
	}
	sh.printf("(%d nodes)\n", len(ex.Nodes))
}

func (sh *Shell) runOp(op *xupdate.Op) error {
	res, err := sh.session.Update(op)
	if err != nil {
		return err
	}
	sh.printf("selected=%d applied=%d created=%d removed=%d\n",
		res.Selected, res.Applied, res.Created, res.Removed)
	for _, sk := range res.Skipped {
		sh.printf("  skipped %s: %s\n", sk.NodeID, sk.Reason)
	}
	return nil
}

func (sh *Shell) save(path string) error {
	if path == "" {
		return fmt.Errorf("usage: save <file>")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sh.db.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sh.printf("saved to %s\n", path)
	return nil
}

func (sh *Shell) open(path string) error {
	if path == "" {
		return fmt.Errorf("usage: open <file>")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	restored, err := core.Open(f)
	f.Close()
	if err != nil {
		return err
	}
	sh.db = restored
	sh.session = nil
	st := restored.Stats()
	sh.printf("restored %s: %d nodes, %d rules, %d users (log in again)\n",
		path, st.Nodes, st.Rules, st.Users)
	return nil
}

func splitWord(s string) (first, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}
