package xpath

import (
	"fmt"

	"securexml/internal/xmltree"
)

// NodeMatcher answers "does the expression, evaluated from the document
// node, select this node?" for a single node in O(depth × steps) — without
// materializing the full node-set the way Matches does.
//
// It exists for incremental view maintenance: when every rule applicable
// to a user compiles to a NodeMatcher, the membership of a node in a
// rule's select set depends only on the node's root-to-node chain (kinds
// and labels) plus the variable bindings. Under that restriction an update
// can only change the permissions of the subtree it touched, which is what
// makes patching a cached view sound (see internal/view/incremental.go).
//
// The supported fragment is a union of rooted location paths whose steps
// use only the downward axes (child, attribute, self, descendant,
// descendant-or-self) and whose predicates are self-contained: they
// evaluate to a boolean from string/number/variable operands and the
// context node's own name — no location paths, no position()/last(), no
// numeric (positional) predicates. All twelve rules of the paper's
// axiom-13 policy fall inside the fragment, including rule 5's
// /patients/*[name() = $USER]/descendant-or-self::node().
type NodeMatcher struct {
	alts [][]step
}

// maxMatcherSteps bounds a path's step count so the DP state fits a
// uint64 bitmask (state i = "first i steps consumed", 0..len(steps)).
const maxMatcherSteps = 62

// NodeMatcher compiles the per-node membership form of the expression.
// It returns (nil, false) when the expression falls outside the supported
// fragment; callers then fall back to full evaluation.
func (c *Compiled) NodeMatcher() (*NodeMatcher, bool) {
	var alts [][]step
	if !collectMatchAlts(c.root, &alts) {
		return nil, false
	}
	return &NodeMatcher{alts: alts}, true
}

// collectMatchAlts flattens unions into alternative step lists, rejecting
// anything outside the matchable fragment.
func collectMatchAlts(e expr, alts *[][]step) bool {
	switch v := e.(type) {
	case *binaryExpr:
		if v.op != opUnion {
			return false
		}
		return collectMatchAlts(v.l, alts) && collectMatchAlts(v.r, alts)
	case *pathExpr:
		// Rule paths are evaluated with the document node as the context
		// node, so relative and absolute paths both start at the root.
		if v.base != nil || len(v.steps) > maxMatcherSteps {
			return false
		}
		for _, st := range v.steps {
			switch st.axis {
			case AxisChild, AxisAttribute, AxisSelf, AxisDescendant, AxisDescendantOrSelf:
			default:
				return false
			}
			for _, p := range st.preds {
				if !selfContainedPred(p) {
					return false
				}
			}
		}
		*alts = append(*alts, v.steps)
		return true
	default:
		return false
	}
}

// selfContainedPred accepts predicates whose top-level result is a boolean
// computed from self-contained values. Numbers are rejected at the top
// level because a numeric predicate is positional ([2] keeps the second
// sibling), and position depends on nodes outside the candidate's chain.
func selfContainedPred(e expr) bool {
	switch v := e.(type) {
	case *binaryExpr:
		switch v.op {
		case opOr, opAnd:
			return selfContainedPredOrVal(v.l) && selfContainedPredOrVal(v.r)
		case opEq, opNeq, opLt, opLeq, opGt, opGeq:
			return selfContainedVal(v.l) && selfContainedVal(v.r)
		}
		return false
	case *funcCall:
		switch v.name {
		case "not", "boolean":
			return len(v.args) == 1 && selfContainedVal(v.args[0])
		case "true", "false":
			return len(v.args) == 0
		case "contains", "starts-with":
			return len(v.args) == 2 && selfContainedVal(v.args[0]) && selfContainedVal(v.args[1])
		}
		return false
	}
	return false
}

// selfContainedPredOrVal is the operand form of and/or: either a boolean
// predicate or any self-contained value (and/or coerce with Bool, so a
// number operand is not positional).
func selfContainedPredOrVal(e expr) bool {
	return selfContainedPred(e) || selfContainedVal(e)
}

// matcherPureFns are core functions whose result depends only on their
// arguments. Zero-argument forms that read the context node's string-value
// (string(), number(), string-length(), normalize-space()) are excluded:
// a string-value depends on the node's descendants, which breaks the
// chain-only property the matcher guarantees.
var matcherPureFns = map[string]bool{
	"concat": true, "contains": true, "starts-with": true,
	"substring": true, "substring-before": true, "substring-after": true,
	"translate": true, "not": true, "boolean": true,
	"string": true, "number": true, "string-length": true,
	"normalize-space": true, "floor": true, "ceiling": true, "round": true,
}

// selfContainedVal accepts operand expressions whose value depends only on
// literals, variables and the context node's own name.
func selfContainedVal(e expr) bool {
	switch v := e.(type) {
	case stringLit, numberLit, varRef:
		return true
	case *negExpr:
		return selfContainedVal(v.e)
	case *binaryExpr:
		if v.op == opUnion {
			return false
		}
		return selfContainedVal(v.l) && selfContainedVal(v.r)
	case *funcCall:
		switch v.name {
		case "name", "local-name", "true", "false":
			return len(v.args) == 0
		}
		if !matcherPureFns[v.name] || len(v.args) == 0 {
			return false
		}
		for _, a := range v.args {
			if !selfContainedVal(a) {
				return false
			}
		}
		return true
	}
	return false
}

// Match reports whether the expression selects n when evaluated from n's
// document node. Nodes detached from any document never match.
func (m *NodeMatcher) Match(n *xmltree.Node, vars Vars) (bool, error) {
	if n == nil {
		return false, errNilContext
	}
	var chain []*xmltree.Node
	for c := n; c != nil; c = c.Parent() {
		chain = append(chain, c)
	}
	reverseNodes(chain)
	if chain[0].Kind() != xmltree.KindDocument {
		return false, nil
	}
	for _, steps := range m.alts {
		ok, err := matchSteps(steps, chain, vars)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// matchSteps runs an NFA over the root-to-node chain. exact[j] bit i means
// "the first i steps select chain[j]"; gap[j] bit i means "step i is a
// descendant(-or-self) step whose walk has reached chain[j] and may
// continue downward". A gap may not cross into an attribute node — the
// descendant axis walks Children() only, and attributes are reachable
// solely through an explicit attribute step (matching axisNodes/filterTest
// in eval.go); below an attribute, its text child is an ordinary child
// again.
func matchSteps(steps []step, chain []*xmltree.Node, vars Vars) (bool, error) {
	exact := make([]uint64, len(chain))
	gap := make([]uint64, len(chain))
	exact[0] = 1 // zero steps consumed at the document node
	for j := 0; j < len(chain); j++ {
		// Land gaps carried to this node (a descendant step may land here
		// and also keep descending, so landing does not close the gap).
		for i := 0; i < len(steps); i++ {
			if gap[j]&(1<<uint(i)) == 0 {
				continue
			}
			ok, err := matchStepAt(steps[i], chain[j], vars)
			if err != nil {
				return false, err
			}
			if ok {
				exact[j] |= 1 << uint(i+1)
			}
		}
		// Close self-transitions at this node, ascending so a newly
		// consumed step can enable the next one at the same node.
		for i := 0; i < len(steps); i++ {
			if exact[j]&(1<<uint(i)) == 0 {
				continue
			}
			st := steps[i]
			switch st.axis {
			case AxisSelf, AxisDescendantOrSelf:
				ok, err := matchStepAt(st, chain[j], vars)
				if err != nil {
					return false, err
				}
				if ok {
					exact[j] |= 1 << uint(i+1)
				}
			}
			if st.axis == AxisDescendant || st.axis == AxisDescendantOrSelf {
				gap[j] |= 1 << uint(i)
			}
		}
		if j+1 == len(chain) {
			break
		}
		next := chain[j+1]
		intoAttr := next.Kind() == xmltree.KindAttribute
		if !intoAttr {
			gap[j+1] |= gap[j]
		}
		for i := 0; i < len(steps); i++ {
			if exact[j]&(1<<uint(i)) == 0 {
				continue
			}
			st := steps[i]
			if (st.axis == AxisChild && !intoAttr) || (st.axis == AxisAttribute && intoAttr) {
				ok, err := matchStepAt(st, next, vars)
				if err != nil {
					return false, err
				}
				if ok {
					exact[j+1] |= 1 << uint(i+1)
				}
			}
		}
	}
	return exact[len(chain)-1]&(1<<uint(len(steps))) != 0, nil
}

// matchStepAt applies one step's node test and predicates to a single
// candidate node. Predicates run with position 1 of 1 — sound because the
// fragment bans positional predicates.
func matchStepAt(st step, n *xmltree.Node, vars Vars) (bool, error) {
	if !stepNodeOK(st, n) {
		return false, nil
	}
	for _, p := range st.preds {
		v, err := p.eval(&evalCtx{node: n, pos: 1, size: 1, vars: vars})
		if err != nil {
			return false, err
		}
		if _, isNum := v.(Number); isNum {
			return false, fmt.Errorf("xpath: positional predicate reached the per-node matcher")
		}
		if !v.Bool() {
			return false, nil
		}
	}
	return true, nil
}

// stepNodeOK mirrors filterTest for a single candidate: the principal node
// type is Attribute for the attribute axis and Element otherwise.
func stepNodeOK(st step, n *xmltree.Node) bool {
	principal := xmltree.KindElement
	if st.axis == AxisAttribute {
		principal = xmltree.KindAttribute
	}
	switch st.test.kind {
	case testNode:
		return true
	case testText:
		return n.Kind() == xmltree.KindText
	case testComment:
		return n.Kind() == xmltree.KindComment
	case testPI:
		return false
	case testWildcard:
		return n.Kind() == principal
	case testName:
		return n.Kind() == principal && n.Label() == st.test.name
	default:
		return false
	}
}
