package xpath

import "testing"

func patOf(t *testing.T, src string) *Pattern {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return c.Pattern()
}

func TestPatternExactFragment(t *testing.T) {
	cases := []struct {
		src   string
		want  string
		exact bool
	}{
		{"/", "/", true},
		{"/patients", "/patients", true},
		{"/patients/*", "/patients/*", true},
		{"//diagnosis", "//diagnosis", true},
		{"//diagnosis/node()", "//diagnosis/node()", true},
		{"/a//b/c", "/a//b/c", true},
		{"/a/@id", "/a/@id", true},
		{"/a/@*", "/a/@*", true},
		{"/a/text()", "/a/text()", true},
		{"/a/comment()", "/a/comment()", true},
		{"/a | /b", "/a | /b", true},
		{"/descendant-or-self::node()", "/ | //node()", true},
		// //node() expands to descendant-or-self::node()/child::node(),
		// which never selects the document node itself.
		{"//node()", "//node()", true},
		{"/descendant::rec", "//rec", true},
	}
	for _, tc := range cases {
		p := patOf(t, tc.src)
		if got := p.String(); got != tc.want {
			t.Errorf("Pattern(%q) = %q, want %q", tc.src, got, tc.want)
		}
		if p.Exact != tc.exact {
			t.Errorf("Pattern(%q).Exact = %v, want %v", tc.src, p.Exact, tc.exact)
		}
	}
}

func TestPatternApproximations(t *testing.T) {
	for _, src := range []string{
		"/patients/*[name() = $USER]",
		"/patients/*[name() = $USER]/descendant-or-self::node()",
		"/a/parent::b",
		"/a/ancestor::node()",
		"/a/following-sibling::b",
		"count(/a)",
		"$USER",
	} {
		p := patOf(t, src)
		if p.Exact {
			t.Errorf("Pattern(%q) claims exactness", src)
		}
		if len(p.Alts) == 0 {
			t.Errorf("Pattern(%q) is empty; over-approximations must stay satisfiable", src)
		}
	}
}

func TestPatternPredicateKeepsShape(t *testing.T) {
	// Predicates widen the pattern only by dropping the filter: the step
	// skeleton must survive.
	p := patOf(t, "/patients/*[name() = $USER]")
	if got, want := p.String(), "/patients/* (approx)"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestPatternEmpty(t *testing.T) {
	// attribute::text() can never select a node.
	p := patOf(t, "/a/attribute::text()")
	if len(p.Alts) != 0 {
		t.Errorf("Pattern(/a/attribute::text()) = %s, want empty", p)
	}
}

func TestPatternMatchesRoot(t *testing.T) {
	if !patOf(t, "/").MatchesRoot() {
		t.Error("/ must match root")
	}
	if !patOf(t, "/descendant-or-self::node()").MatchesRoot() {
		t.Error("/descendant-or-self::node() must match root")
	}
	if patOf(t, "/patients").MatchesRoot() {
		t.Error("/patients must not match root")
	}
}

func TestPatternReverseAxisIsUniversal(t *testing.T) {
	p := patOf(t, "/a/b/parent::node()")
	if !p.MatchesRoot() {
		t.Error("reverse-axis over-approximation must include the root")
	}
	if p.Exact {
		t.Error("reverse-axis abstraction cannot be exact")
	}
}
