package xpath

// In-package tests for the Security filter hooks (the qfilter package
// property-tests the full view-equivalence; these pin the primitive
// behaviours).

import (
	"strings"
	"testing"

	"securexml/internal/xmltree"
)

// secDoc: <r><pub>open</pub><priv><deep>hidden</deep></priv><alias>x</alias></r>
// with priv invisible and alias relabeled RESTRICTED.
func secFixture(t *testing.T) (*xmltree.Document, *Security) {
	t.Helper()
	d, err := xmltree.ParseString(
		`<r><pub>open</pub><priv><deep>hidden</deep></priv><alias>x</alias></r>`,
		xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sec := &Security{
		Visible: func(n *xmltree.Node) bool {
			return n.Label() != "priv" // hereditary: evaluator prunes below
		},
		Label: func(n *xmltree.Node) string {
			if n.Label() == "alias" {
				return xmltree.Restricted
			}
			return n.Label()
		},
	}
	return d, sec
}

func selFiltered(t *testing.T, d *xmltree.Document, sec *Security, path string) NodeSet {
	t.Helper()
	c := MustCompile(path)
	ns, err := c.SelectFiltered(d.Root(), nil, sec)
	if err != nil {
		t.Fatalf("SelectFiltered(%q): %v", path, err)
	}
	return ns
}

func TestSecurityPrunesSubtrees(t *testing.T) {
	d, sec := secFixture(t)
	if got := selFiltered(t, d, sec, "//priv"); len(got) != 0 {
		t.Error("invisible node selected")
	}
	if got := selFiltered(t, d, sec, "//deep"); len(got) != 0 {
		t.Error("descendant of invisible node selected (pruning not hereditary)")
	}
	if got := selFiltered(t, d, sec, "//pub"); len(got) != 1 {
		t.Error("visible node lost")
	}
	if got := selFiltered(t, d, sec, "/r/*"); len(got) != 2 {
		t.Errorf("children = %d, want 2 (pub, alias)", len(got))
	}
	// Sibling axes skip invisible nodes too.
	if got := selFiltered(t, d, sec, "//pub/following-sibling::*"); len(got) != 1 {
		t.Errorf("following-sibling through invisible = %d nodes", len(got))
	}
	if got := selFiltered(t, d, sec, "//RESTRICTED/preceding-sibling::*"); len(got) != 1 {
		t.Errorf("preceding-sibling = %d nodes", len(got))
	}
	if got := selFiltered(t, d, sec, "//pub/following::*"); len(got) != 1 {
		t.Errorf("following axis = %d nodes", len(got))
	}
}

func TestSecurityEffectiveLabels(t *testing.T) {
	d, sec := secFixture(t)
	// The stored name no longer matches; RESTRICTED does.
	if got := selFiltered(t, d, sec, "//alias"); len(got) != 0 {
		t.Error("hidden label matched")
	}
	if got := selFiltered(t, d, sec, "//RESTRICTED"); len(got) != 1 {
		t.Error("effective label did not match")
	}
	// name() observes the effective label.
	c := MustCompile("name(/r/*[2]/following-sibling::*[1])")
	v, err := c.EvalFiltered(d.Root(), nil, sec)
	if err != nil {
		t.Fatal(err)
	}
	_ = v // position depends on pruning; just ensure no panic and a string
	if _, ok := v.(String); !ok {
		t.Errorf("name() returned %s", v.TypeName())
	}
}

func TestSecurityStringValue(t *testing.T) {
	d, sec := secFixture(t)
	// string(/r) concatenates only visible text.
	c := MustCompile("string(/r)")
	v, err := c.EvalFiltered(d.Root(), nil, sec)
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "openx" {
		t.Errorf("filtered string(/r) = %q, want %q", v.Str(), "openx")
	}
	// Unfiltered sees everything.
	v2, err := c.Eval(d.Root(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Str() != "openhiddenx" {
		t.Errorf("unfiltered string(/r) = %q", v2.Str())
	}
	// Nil-Security fast path of stringValue.
	var nilSec *Security
	if nilSec.stringValue(d.RootElement()) != "openhiddenx" {
		t.Error("nil security stringValue wrong")
	}
	// Label-only filter (no Visible).
	labelOnly := &Security{Label: func(n *xmltree.Node) string { return strings.ToUpper(n.Label()) }}
	if got := labelOnly.stringValue(d.RootElement().Children()[0]); got != "OPEN" {
		t.Errorf("label-only stringValue = %q", got)
	}
}

func TestSecurityFilteredErrors(t *testing.T) {
	d, sec := secFixture(t)
	c := MustCompile("1 + 1")
	if _, err := c.SelectFiltered(d.Root(), nil, sec); err == nil {
		t.Error("atomic result accepted by SelectFiltered")
	}
	if _, err := c.EvalFiltered(nil, nil, sec); err == nil {
		t.Error("nil context accepted")
	}
}

func TestCompiledSource(t *testing.T) {
	c := MustCompile("//a[1]")
	if c.Source() != "//a[1]" {
		t.Errorf("Source = %q", c.Source())
	}
}

func TestTokenKindStrings(t *testing.T) {
	// Error messages must name every token readably.
	kinds := []tokenKind{
		tokEOF, tokNumber, tokLiteral, tokName, tokVariable, tokLParen,
		tokRParen, tokLBracket, tokRBracket, tokDot, tokDotDot, tokAt,
		tokComma, tokColonColon, tokSlash, tokSlashSlash, tokUnion, tokPlus,
		tokMinus, tokEq, tokNeq, tokLt, tokLeq, tokGt, tokGeq, tokStar,
		tokMultiply, tokAnd, tokOr, tokDiv, tokMod, tokenKind(99),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("token kind %d has empty String", int(k))
		}
	}
}

func TestAxisAndOpStrings(t *testing.T) {
	for ax := AxisChild; ax <= AxisAncestorOrSelf; ax++ {
		if ax.String() == "" || strings.HasPrefix(ax.String(), "axis(") {
			t.Errorf("axis %d renders as %q", int(ax), ax.String())
		}
	}
	if Axis(99).String() != "axis(99)" {
		t.Error("unknown axis String")
	}
	for op := opOr; op <= opUnion; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("operator %d renders as %q", int(op), op.String())
		}
	}
	if binaryOp(99).String() != "op(99)" {
		t.Error("unknown op String")
	}
}
