package xpath

import (
	"errors"
	"fmt"
	"math"

	"securexml/internal/xmltree"
)

// Vars supplies variable bindings (e.g. the paper's $USER) to evaluation.
type Vars map[string]Value

// ErrNotNodeSet is returned by Select when the expression evaluates to an
// atomic value instead of a node-set.
var ErrNotNodeSet = errors.New("xpath: expression does not evaluate to a node-set")

// evalCtx carries the dynamic evaluation context.
type evalCtx struct {
	node *xmltree.Node
	pos  int // proximity position, 1-based
	size int // context size
	vars Vars
	sec  *Security // nil = unfiltered
}

// errNilContext is returned when evaluation is attempted without a node.
var errNilContext = errors.New("xpath: nil context node")

func errNotNodeSetf(src string, v Value) error {
	return fmt.Errorf("%w: %q yields a %s", ErrNotNodeSet, src, v.TypeName())
}

// Eval evaluates the compiled expression with node as the context node and
// returns the resulting value.
func (c *Compiled) Eval(node *xmltree.Node, vars Vars) (Value, error) {
	if node == nil {
		return nil, errNilContext
	}
	return c.root.eval(&evalCtx{node: node, pos: 1, size: 1, vars: vars})
}

// Select evaluates the expression and returns the resulting node-set in
// document order. It fails with ErrNotNodeSet for atomic results.
func (c *Compiled) Select(node *xmltree.Node, vars Vars) (NodeSet, error) {
	v, err := c.Eval(node, vars)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, errNotNodeSetf(c.src, v)
	}
	return ns, nil
}

// Select compiles path and selects from the document root of doc.
func Select(doc *xmltree.Document, path string, vars Vars) (NodeSet, error) {
	c, err := Compile(path)
	if err != nil {
		return nil, err
	}
	return c.Select(doc.Root(), vars)
}

// Matches reports whether node n is one of the nodes addressed by the
// compiled path evaluated from the document node — the xpath(p, n, v)
// predicate of §3.4 as a membership test.
func (c *Compiled) Matches(n *xmltree.Node, vars Vars) (bool, error) {
	ns, err := c.Select(n.Document().Root(), vars)
	if err != nil {
		return false, err
	}
	for _, m := range ns {
		if m == n {
			return true, nil
		}
	}
	return false, nil
}

// --- expression evaluation ---------------------------------------------------

func (n numberLit) eval(*evalCtx) (Value, error) { return Number(n.val), nil }
func (s stringLit) eval(*evalCtx) (Value, error) { return String(s), nil }

func (v varRef) eval(ctx *evalCtx) (Value, error) {
	if ctx.vars != nil {
		if val, ok := ctx.vars[string(v)]; ok {
			return val, nil
		}
	}
	return nil, fmt.Errorf("xpath: undefined variable $%s", string(v))
}

func (n *negExpr) eval(ctx *evalCtx) (Value, error) {
	v, err := n.e.eval(ctx)
	if err != nil {
		return nil, err
	}
	return Number(-v.Num()), nil
}

func (b *binaryExpr) eval(ctx *evalCtx) (Value, error) {
	switch b.op {
	case opOr, opAnd:
		l, err := b.l.eval(ctx)
		if err != nil {
			return nil, err
		}
		if b.op == opOr && l.Bool() {
			return Boolean(true), nil
		}
		if b.op == opAnd && !l.Bool() {
			return Boolean(false), nil
		}
		r, err := b.r.eval(ctx)
		if err != nil {
			return nil, err
		}
		return Boolean(r.Bool()), nil
	}
	l, err := b.l.eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := b.r.eval(ctx)
	if err != nil {
		return nil, err
	}
	switch b.op {
	case opEq, opNeq, opLt, opLeq, opGt, opGeq:
		ok, err := compareValues(b.op, l, r, ctx.sec)
		if err != nil {
			return nil, err
		}
		return Boolean(ok), nil
	case opPlus:
		return Number(l.Num() + r.Num()), nil
	case opMinus:
		return Number(l.Num() - r.Num()), nil
	case opMul:
		return Number(l.Num() * r.Num()), nil
	case opDiv:
		return Number(l.Num() / r.Num()), nil
	case opMod:
		return Number(math.Mod(l.Num(), r.Num())), nil
	case opUnion:
		ln, lok := l.(NodeSet)
		rn, rok := r.(NodeSet)
		if !lok || !rok {
			return nil, fmt.Errorf("xpath: '|' requires node-sets, got %s and %s", l.TypeName(), r.TypeName())
		}
		merged := make([]*xmltree.Node, 0, len(ln)+len(rn))
		merged = append(merged, ln...)
		merged = append(merged, rn...)
		return NodeSet(xmltree.SortDocOrder(merged)), nil
	default:
		return nil, fmt.Errorf("xpath: unknown operator %s", b.op)
	}
}

func (f *filterExpr) eval(ctx *evalCtx) (Value, error) {
	v, err := f.primary.eval(ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: predicate applied to %s", v.TypeName())
	}
	for _, pred := range f.preds {
		ns, err = applyPredicate(ns, pred, ctx, false)
		if err != nil {
			return nil, err
		}
	}
	return ns, nil
}

func (p *pathExpr) eval(ctx *evalCtx) (Value, error) {
	var current NodeSet
	switch {
	case p.base != nil:
		v, err := p.base.eval(ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: path step applied to %s", v.TypeName())
		}
		current = ns
	case p.absolute:
		root := ctx.node
		for root.Parent() != nil {
			root = root.Parent()
		}
		current = NodeSet{root}
		if rest, ns, ok := p.indexFastPath(root, ctx); ok {
			var err error
			current = ns
			for _, st := range rest {
				current, err = evalStep(current, st, ctx)
				if err != nil {
					return nil, err
				}
			}
			return current, nil
		}
	default:
		current = NodeSet{ctx.node}
	}
	for _, st := range p.steps {
		next, err := evalStep(current, st, ctx)
		if err != nil {
			return nil, err
		}
		current = next
	}
	return current, nil
}

// indexFastPath recognizes the compiled form of absolute //name —
// /descendant-or-self::node()/child::name — and answers its first two
// steps from the document's element-name index instead of walking the
// tree. It applies only without a security filter (visibility pruning is
// hereditary and needs the walk) and without predicates on the name step
// (their proximity positions are per-parent). Returns the remaining steps
// and the candidate set.
func (p *pathExpr) indexFastPath(root *xmltree.Node, ctx *evalCtx) ([]step, NodeSet, bool) {
	if ctx.sec != nil || len(p.steps) < 2 {
		return nil, nil, false
	}
	s0, s1 := p.steps[0], p.steps[1]
	if s0.axis != AxisDescendantOrSelf || s0.test.kind != testNode || len(s0.preds) != 0 {
		return nil, nil, false
	}
	if s1.axis != AxisChild || s1.test.kind != testName || len(s1.preds) != 0 {
		return nil, nil, false
	}
	doc := root.Document()
	if doc == nil {
		return nil, nil, false
	}
	return p.steps[2:], NodeSet(doc.ElementsByName(s1.test.name)), true
}

// evalStep applies one location step to every node of the input set and
// merges the results in document order.
func evalStep(input NodeSet, st step, ctx *evalCtx) (NodeSet, error) {
	var merged []*xmltree.Node
	for _, n := range input {
		cands := axisNodes(n, st.axis, ctx.sec)
		cands = filterTest(cands, st.test, st.axis, ctx.sec)
		selected := NodeSet(cands)
		var err error
		for _, pred := range st.preds {
			selected, err = applyPredicate(selected, pred, ctx, st.axis.isReverse())
			if err != nil {
				return nil, err
			}
		}
		merged = append(merged, selected...)
	}
	if len(input) <= 1 {
		// A single context node yields results already in document order
		// and free of duplicates; skip the merge sort.
		return NodeSet(merged), nil
	}
	return NodeSet(xmltree.SortDocOrder(merged)), nil
}

// applyPredicate keeps the nodes for which the predicate holds. nodes must
// be in axis order (reverse axes pass reverse=true with nodes in document
// order, so positions are counted from the far end).
func applyPredicate(nodes NodeSet, pred expr, ctx *evalCtx, reverse bool) (NodeSet, error) {
	// Always allocate: the input may alias a caller-owned node-set (e.g. a
	// variable binding) that must not be disturbed.
	out := make(NodeSet, 0, len(nodes))
	size := len(nodes)
	for i, n := range nodes {
		pos := i + 1
		if reverse {
			pos = size - i
		}
		v, err := pred.eval(&evalCtx{node: n, pos: pos, size: size, vars: ctx.vars, sec: ctx.sec})
		if err != nil {
			return nil, err
		}
		keep := false
		if num, ok := v.(Number); ok {
			keep = float64(num) == float64(pos)
		} else {
			keep = v.Bool()
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

// axisNodes returns the nodes reachable from n along the axis, in document
// order. When sec carries a visibility filter, invisible nodes are skipped
// and — because invisibility is hereditary (children of an invisible node
// are invisible, mirroring axioms 16–17) — their subtrees are pruned.
func axisNodes(n *xmltree.Node, axis Axis, sec *Security) []*xmltree.Node {
	switch axis {
	case AxisSelf:
		return []*xmltree.Node{n}
	case AxisChild:
		return filterVisible(n.Children(), sec)
	case AxisAttribute:
		return filterVisible(n.Attributes(), sec)
	case AxisParent:
		if p := n.Parent(); p != nil {
			return []*xmltree.Node{p}
		}
		return nil
	case AxisAncestor:
		var out []*xmltree.Node
		for p := n.Parent(); p != nil; p = p.Parent() {
			out = append(out, p)
		}
		reverseNodes(out)
		return out
	case AxisAncestorOrSelf:
		out := []*xmltree.Node{n}
		for p := n.Parent(); p != nil; p = p.Parent() {
			out = append(out, p)
		}
		reverseNodes(out)
		return out
	case AxisDescendant:
		var out []*xmltree.Node
		collectDescendants(n, &out, sec)
		return out
	case AxisDescendantOrSelf:
		out := []*xmltree.Node{n}
		collectDescendants(n, &out, sec)
		return out
	case AxisFollowingSibling:
		p := n.Parent()
		if p == nil || n.Kind() == xmltree.KindAttribute {
			return nil
		}
		i := p.ChildIndex(n)
		if i < 0 {
			return nil
		}
		return filterVisible(p.Children()[i+1:], sec)
	case AxisPrecedingSibling:
		p := n.Parent()
		if p == nil || n.Kind() == xmltree.KindAttribute {
			return nil
		}
		i := p.ChildIndex(n)
		if i <= 0 {
			return nil
		}
		return filterVisible(p.Children()[:i], sec)
	case AxisFollowing:
		// All nodes after n in document order, excluding descendants.
		// Attribute nodes are not on the following/preceding axes per spec.
		var out []*xmltree.Node
		for cur := n; cur != nil; cur = cur.Parent() {
			if cur.Kind() == xmltree.KindAttribute {
				continue
			}
			for sib := cur.FollowingSibling(); sib != nil; sib = sib.FollowingSibling() {
				if !sec.visible(sib) {
					continue
				}
				out = append(out, sib)
				collectDescendants(sib, &out, sec)
			}
		}
		return xmltree.SortDocOrder(out)
	case AxisPreceding:
		var out []*xmltree.Node
		for cur := n; cur != nil; cur = cur.Parent() {
			if cur.Kind() == xmltree.KindAttribute {
				continue
			}
			for sib := cur.PrecedingSibling(); sib != nil; sib = sib.PrecedingSibling() {
				if !sec.visible(sib) {
					continue
				}
				out = append(out, sib)
				collectDescendants(sib, &out, sec)
			}
		}
		return xmltree.SortDocOrder(out)
	default:
		return nil
	}
}

// filterVisible returns the visible candidates; with no filter the input
// slice is returned as-is (callers never mutate it).
func filterVisible(ns []*xmltree.Node, sec *Security) []*xmltree.Node {
	if sec == nil || sec.Visible == nil {
		return ns
	}
	var out []*xmltree.Node
	for _, n := range ns {
		if sec.visible(n) {
			out = append(out, n)
		}
	}
	return out
}

// collectDescendants appends all visible descendants of n (excluding
// attribute nodes, which are not on the descendant axis) in document
// order, pruning below invisible nodes.
func collectDescendants(n *xmltree.Node, out *[]*xmltree.Node, sec *Security) {
	for _, c := range n.Children() {
		if !sec.visible(c) {
			continue
		}
		*out = append(*out, c)
		collectDescendants(c, out, sec)
	}
}

func reverseNodes(ns []*xmltree.Node) {
	for i, j := 0, len(ns)-1; i < j; i, j = i+1, j-1 {
		ns[i], ns[j] = ns[j], ns[i]
	}
}

// filterTest keeps the candidates matching the node test. The principal
// node type is Attribute for the attribute axis and Element otherwise.
func filterTest(cands []*xmltree.Node, nt nodeTest, axis Axis, sec *Security) []*xmltree.Node {
	principal := xmltree.KindElement
	if axis == AxisAttribute {
		principal = xmltree.KindAttribute
	}
	var out []*xmltree.Node
	for _, c := range cands {
		switch nt.kind {
		case testNode:
			out = append(out, c)
		case testText:
			if c.Kind() == xmltree.KindText {
				out = append(out, c)
			}
		case testComment:
			if c.Kind() == xmltree.KindComment {
				out = append(out, c)
			}
		case testPI:
			// Processing instructions are not stored in the model.
		case testWildcard:
			if c.Kind() == principal {
				out = append(out, c)
			}
		case testName:
			if c.Kind() == principal && sec.label(c) == nt.name {
				out = append(out, c)
			}
		}
	}
	return out
}
