// Package xpath implements an XPath 1.0 query engine over xmltree
// documents: lexer, parser, and evaluator with the full axis set (except the
// namespace axis), the core function library, and variable bindings.
//
// It is the interpretation of the paper's xpath(p, n, v) predicate (§3.4):
// Select(doc, p) returns exactly the nodes n (with labels v) addressed by
// path p. Variables — in particular $USER, which the paper's security
// policies bind to the session login (§4.3) — are resolved from the
// evaluation context.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokLiteral  // quoted string
	tokName     // NCName / QName
	tokVariable // $name
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokDot
	tokDotDot
	tokAt
	tokComma
	tokColonColon
	tokSlash
	tokSlashSlash
	tokUnion    // |
	tokPlus     // +
	tokMinus    // -
	tokEq       // =
	tokNeq      // !=
	tokLt       // <
	tokLeq      // <=
	tokGt       // >
	tokGeq      // >=
	tokStar     // * as wildcard name test
	tokMultiply // * as operator
	tokAnd      // 'and'
	tokOr       // 'or'
	tokDiv      // 'div'
	tokMod      // 'mod'
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return "number"
	case tokLiteral:
		return "literal"
	case tokName:
		return "name"
	case tokVariable:
		return "variable"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokDot:
		return "'.'"
	case tokDotDot:
		return "'..'"
	case tokAt:
		return "'@'"
	case tokComma:
		return "','"
	case tokColonColon:
		return "'::'"
	case tokSlash:
		return "'/'"
	case tokSlashSlash:
		return "'//'"
	case tokUnion:
		return "'|'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLeq:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGeq:
		return "'>='"
	case tokStar:
		return "'*'"
	case tokMultiply:
		return "'*' (multiply)"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokDiv:
		return "'div'"
	case tokMod:
		return "'mod'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a lexical or grammatical error with its byte offset in
// the original expression.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: syntax error at offset %d in %q: %s", e.Pos, e.Expr, e.Msg)
}

// lexer tokenizes an XPath 1.0 expression, applying the spec's
// disambiguation rules: after a token that can end an operand, '*' is the
// multiply operator and the names and/or/div/mod are operators; otherwise
// '*' is a wildcard and those names are ordinary NCNames.
type lexer struct {
	src  string
	pos  int
	prev tokenKind
	has  bool // a previous token exists
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Expr: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// operandEnd reports whether the previous token can terminate an operand,
// which switches the lexer into "operator expected" mode per XPath 1.0 §3.7.
func (l *lexer) operandEnd() bool {
	if !l.has {
		return false
	}
	switch l.prev {
	case tokNumber, tokLiteral, tokName, tokVariable, tokRParen, tokRBracket,
		tokDot, tokDotDot, tokStar:
		return true
	default:
		return false
	}
}

func (l *lexer) emit(k tokenKind, text string, pos int) token {
	l.prev, l.has = k, true
	return token{kind: k, text: text, pos: pos}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return l.emit(tokLParen, "(", start), nil
	case ')':
		l.pos++
		return l.emit(tokRParen, ")", start), nil
	case '[':
		l.pos++
		return l.emit(tokLBracket, "[", start), nil
	case ']':
		l.pos++
		return l.emit(tokRBracket, "]", start), nil
	case ',':
		l.pos++
		return l.emit(tokComma, ",", start), nil
	case '@':
		l.pos++
		return l.emit(tokAt, "@", start), nil
	case '|':
		l.pos++
		return l.emit(tokUnion, "|", start), nil
	case '+':
		l.pos++
		return l.emit(tokPlus, "+", start), nil
	case '-':
		l.pos++
		return l.emit(tokMinus, "-", start), nil
	case '=':
		l.pos++
		return l.emit(tokEq, "=", start), nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return l.emit(tokNeq, "!=", start), nil
		}
		return token{}, l.errf(start, "'!' must be followed by '='")
	case '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return l.emit(tokLeq, "<=", start), nil
		}
		l.pos++
		return l.emit(tokLt, "<", start), nil
	case '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return l.emit(tokGeq, ">=", start), nil
		}
		l.pos++
		return l.emit(tokGt, ">", start), nil
	case '/':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			l.pos += 2
			return l.emit(tokSlashSlash, "//", start), nil
		}
		l.pos++
		return l.emit(tokSlash, "/", start), nil
	case '*':
		l.pos++
		if l.operandEnd() {
			return l.emit(tokMultiply, "*", start), nil
		}
		return l.emit(tokStar, "*", start), nil
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			l.pos += 2
			return l.emit(tokColonColon, "::", start), nil
		}
		return token{}, l.errf(start, "unexpected ':'")
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return l.emit(tokDotDot, "..", start), nil
		}
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return l.emit(tokDot, ".", start), nil
	case '"', '\'':
		return l.lexLiteral()
	case '$':
		return l.lexVariable()
	}
	if isDigit(c) {
		return l.lexNumber()
	}
	if isNameStart(rune(c)) || c >= utf8.RuneSelf {
		return l.lexName()
	}
	return token{}, l.errf(start, "unexpected byte %q", c)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	return l.emit(tokNumber, l.src[start:l.pos], start), nil
}

func (l *lexer) lexLiteral() (token, error) {
	start := l.pos
	quote := l.src[l.pos]
	l.pos++
	i := strings.IndexByte(l.src[l.pos:], quote)
	if i < 0 {
		return token{}, l.errf(start, "unterminated string literal")
	}
	text := l.src[l.pos : l.pos+i]
	l.pos += i + 1
	return l.emit(tokLiteral, text, start), nil
}

func (l *lexer) lexVariable() (token, error) {
	start := l.pos
	l.pos++ // consume '$'
	if l.pos >= len(l.src) {
		return token{}, l.errf(start, "'$' must be followed by a variable name")
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if !isNameStart(r) {
		return token{}, l.errf(start, "'$' must be followed by a variable name")
	}
	name := l.scanNCName()
	return l.emit(tokVariable, name, start), nil
}

func (l *lexer) lexName() (token, error) {
	start := l.pos
	name := l.scanNCName()
	// Operator-name disambiguation.
	if l.operandEnd() {
		switch name {
		case "and":
			return l.emit(tokAnd, name, start), nil
		case "or":
			return l.emit(tokOr, name, start), nil
		case "div":
			return l.emit(tokDiv, name, start), nil
		case "mod":
			return l.emit(tokMod, name, start), nil
		}
	}
	return l.emit(tokName, name, start), nil
}

func (l *lexer) scanNCName() string {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isNameChar(r) {
			break
		}
		l.pos += size
	}
	return l.src[start:l.pos]
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }
func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
