package xpath

import (
	"testing"

	"securexml/internal/xmltree"
)

const matchDocXML = `<patients>
  <franck vip="yes"><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck>
  <robert><service>pneumology</service><diagnosis b="2">pneumonia</diagnosis></robert>
  <diagnosis>stray</diagnosis>
</patients>`

func matchDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(matchDocXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestNodeMatcherAgainstSelect compares the per-node matcher with full
// evaluation for every node of the document, over expressions covering the
// whole supported fragment (including the paper's twelve rule paths).
func TestNodeMatcherAgainstSelect(t *testing.T) {
	d := matchDoc(t)
	vars := Vars{"USER": String("robert")}
	exprs := []string{
		"/",
		"/patients",
		"/patients/*",
		"/patients/franck",
		"//diagnosis",
		"//diagnosis/node()",
		"/descendant-or-self::node()",
		"/descendant::text()",
		"/patients/*/service/text()",
		"/patients/*[name() = $USER]/descendant-or-self::node()",
		"/patients/*[name() = 'franck']/diagnosis",
		"//@vip",
		"//attribute::node()",
		"//@vip/text()",
		"/patients//text()",
		"//diagnosis[starts-with(name(), 'diag')]/node()",
		"//*[contains(name(), 'serv') or name() = 'diagnosis']",
		"//*[not(name() = 'service')]",
		"//diagnosis | //service",
		"/patients/child::comment()",
		"descendant-or-self::node()", // relative: same root context
		"self::node()",
		"//*[string-length(name()) > 7]",
		"//*[translate(name(), 'abc', 'xyz') = 'servize']",
		"//*[true()]",
		"//*[false()]",
	}
	for _, src := range exprs {
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		m, ok := c.NodeMatcher()
		if !ok {
			t.Fatalf("%q: expected a NodeMatcher, got ineligible", src)
		}
		for _, n := range d.Nodes() {
			want, err := c.Matches(n, vars)
			if err != nil {
				t.Fatalf("%q Matches(%s): %v", src, n.ID(), err)
			}
			got, err := m.Match(n, vars)
			if err != nil {
				t.Fatalf("%q Match(%s): %v", src, n.ID(), err)
			}
			if got != want {
				t.Errorf("%q on %s [%s]: matcher=%v, full eval=%v", src, n.ID(), n.Path(), got, want)
			}
		}
	}
}

// TestNodeMatcherRejectsUnsupported asserts everything outside the
// fragment is refused rather than mis-answered.
func TestNodeMatcherRejectsUnsupported(t *testing.T) {
	rejected := []string{
		"//diagnosis[2]",               // positional predicate
		"//diagnosis[position() = 1]",  // position()
		"//diagnosis[last()]",          // last()
		"//*[text() = 'pneumonia']",    // location path in predicate
		"//*[service]",                 // location path in predicate
		"//*[count(node()) > 1]",       // node-set function
		"//*[string() = 'x']",          // context string-value
		"//*[string-length() > 2]",     // context string-value
		"//*[normalize-space() = 'x']", // context string-value
		"//diagnosis/parent::*",        // upward axis
		"//diagnosis/ancestor::node()", // upward axis
		"//diagnosis/following-sibling::node()",
		"/patients/*[$USER]",   // top-level variable (truthiness of any value)
		"//*['x']",             // top-level literal
		"$v/diagnosis",         // variable-rooted path
		"//diagnosis | //a[1]", // one union arm outside the fragment
		"count(//diagnosis)",   // not a path at all
		"//*[name(..) = 'x']",  // name with a node-set argument
		"//*[sum(node()) > 0]", // node-set function
	}
	for _, src := range rejected {
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, ok := c.NodeMatcher(); ok {
			t.Errorf("%q: expected NodeMatcher to refuse, got one", src)
		}
	}
}

// TestNodeMatcherDetachedNode: nodes outside any document never match.
func TestNodeMatcherDetachedNode(t *testing.T) {
	d := matchDoc(t)
	n := d.RootElement().Children()[0] // franck
	if err := d.Remove(n); err != nil {
		t.Fatal(err)
	}
	m, ok := MustCompile("//franck").NodeMatcher()
	if !ok {
		t.Fatal("no matcher")
	}
	got, err := m.Match(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("detached node matched")
	}
}

// TestNodeMatcherUndefinedVariable: evaluation errors surface, they are
// not silently treated as non-matches.
func TestNodeMatcherUndefinedVariable(t *testing.T) {
	d := matchDoc(t)
	m, ok := MustCompile("/patients/*[name() = $USER]").NodeMatcher()
	if !ok {
		t.Fatal("no matcher")
	}
	if _, err := m.Match(d.RootElement().Children()[0], nil); err == nil {
		t.Error("want undefined-variable error, got nil")
	}
}

// TestPaperPolicyPathsAllMatchable: every path of the axiom-13 policy is
// inside the matchable fragment — the eligibility gate the incremental
// view path depends on.
func TestPaperPolicyPathsAllMatchable(t *testing.T) {
	paths := []string{
		"/descendant-or-self::node()",
		"//diagnosis/node()",
		"/patients",
		"/patients/*[name() = $USER]/descendant-or-self::node()",
		"/patients/*",
		"//diagnosis",
	}
	for _, p := range paths {
		if _, ok := MustCompile(p).NodeMatcher(); !ok {
			t.Errorf("paper rule path %q not matchable", p)
		}
	}
}
