package xpath

import "fmt"

// Compiled is a parsed, reusable XPath expression.
type Compiled struct {
	src  string
	root expr
}

// Source returns the original expression text.
func (c *Compiled) Source() string { return c.src }

// String returns a normalized rendering of the parsed expression.
func (c *Compiled) String() string { return c.root.String() }

// Compile parses an XPath 1.0 expression.
func Compile(src string) (*Compiled, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after complete expression", p.tok.kind)
	}
	return &Compiled{src: src, root: e}, nil
}

// MustCompile is Compile, panicking on error. For tests, examples and
// package-level path constants.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Expr: p.lex.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return p.errf("expected %s, found %s", k, p.tok.kind)
	}
	return p.advance()
}

// parseExpr parses OrExpr, the grammar's top production.
func (p *parser) parseExpr() (expr, error) {
	return p.parseBinary(0)
}

// binary operator precedence levels, loosest first.
var precedence = []struct {
	toks []tokenKind
	ops  []binaryOp
}{
	{[]tokenKind{tokOr}, []binaryOp{opOr}},
	{[]tokenKind{tokAnd}, []binaryOp{opAnd}},
	{[]tokenKind{tokEq, tokNeq}, []binaryOp{opEq, opNeq}},
	{[]tokenKind{tokLt, tokLeq, tokGt, tokGeq}, []binaryOp{opLt, opLeq, opGt, opGeq}},
	{[]tokenKind{tokPlus, tokMinus}, []binaryOp{opPlus, opMinus}},
	{[]tokenKind{tokMultiply, tokDiv, tokMod}, []binaryOp{opMul, opDiv, opMod}},
}

func (p *parser) parseBinary(level int) (expr, error) {
	if level >= len(precedence) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		var op binaryOp
		found := false
		for i, tk := range precedence[level].toks {
			if p.tok.kind == tk {
				op = precedence[level].ops[i]
				found = true
				break
			}
		}
		if !found {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, l: left, r: right}
	}
}

func (p *parser) parseUnary() (expr, error) {
	neg := 0
	for p.tok.kind == tokMinus {
		neg++
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for ; neg > 0; neg-- {
		e = &negExpr{e: e}
	}
	return e, nil
}

func (p *parser) parseUnion() (expr, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokUnion {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: opUnion, l: left, r: right}
	}
	return left, nil
}

// parsePath parses PathExpr: either a LocationPath, or a FilterExpr possibly
// continued with '/' or '//' steps.
func (p *parser) parsePath() (expr, error) {
	switch p.tok.kind {
	case tokSlash, tokSlashSlash:
		return p.parseLocationPath(nil, true)
	}
	if p.startsStep() {
		return p.parseLocationPath(nil, false)
	}
	// FilterExpr.
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var preds []expr
	for p.tok.kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
	}
	var base expr = prim
	if len(preds) > 0 {
		base = &filterExpr{primary: prim, preds: preds}
	}
	if p.tok.kind == tokSlash || p.tok.kind == tokSlashSlash {
		return p.parseLocationPath(base, false)
	}
	return base, nil
}

// startsStep reports whether the current token can begin a location step.
func (p *parser) startsStep() bool {
	switch p.tok.kind {
	case tokDot, tokDotDot, tokAt, tokStar:
		return true
	case tokName:
		// A name starts a step unless it is a function call — but node-type
		// tests (text(), node(), …) are steps even with parentheses.
		if p.peekIsLParen() {
			switch p.tok.text {
			case "text", "comment", "node", "processing-instruction":
				return true
			default:
				return false
			}
		}
		return true
	default:
		return false
	}
}

// peekIsLParen looks ahead one token without consuming it.
func (p *parser) peekIsLParen() bool {
	save := *p.lex
	tok, err := p.lex.next()
	*p.lex = save
	return err == nil && tok.kind == tokLParen
}

// parseLocationPath parses steps. If base is non-nil the path extends a
// filter expression. absolute indicates a leading '/' or '//' (only when
// base is nil).
func (p *parser) parseLocationPath(base expr, absolute bool) (expr, error) {
	pe := &pathExpr{absolute: absolute, base: base}
	if absolute {
		switch p.tok.kind {
		case tokSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if !p.startsStep() {
				// Bare "/": the document node itself.
				return pe, nil
			}
		case tokSlashSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
			pe.steps = append(pe.steps, step{axis: AxisDescendantOrSelf, test: nodeTest{kind: testNode}})
		}
	} else if base != nil {
		// The filter expression is followed by '/' or '//'.
		switch p.tok.kind {
		case tokSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokSlashSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
			pe.steps = append(pe.steps, step{axis: AxisDescendantOrSelf, test: nodeTest{kind: testNode}})
		}
	}
	for {
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		pe.steps = append(pe.steps, st)
		switch p.tok.kind {
		case tokSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokSlashSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
			pe.steps = append(pe.steps, step{axis: AxisDescendantOrSelf, test: nodeTest{kind: testNode}})
		default:
			return pe, nil
		}
	}
}

func (p *parser) parseStep() (step, error) {
	switch p.tok.kind {
	case tokDot:
		if err := p.advance(); err != nil {
			return step{}, err
		}
		return step{axis: AxisSelf, test: nodeTest{kind: testNode}}, nil
	case tokDotDot:
		if err := p.advance(); err != nil {
			return step{}, err
		}
		return step{axis: AxisParent, test: nodeTest{kind: testNode}}, nil
	}
	st := step{axis: AxisChild}
	if p.tok.kind == tokAt {
		st.axis = AxisAttribute
		if err := p.advance(); err != nil {
			return step{}, err
		}
	} else if p.tok.kind == tokName {
		// Possible explicit axis.
		if ax, ok := axisNames[p.tok.text]; ok && p.peekIsColonColon() {
			st.axis = ax
			if err := p.advance(); err != nil { // axis name
				return step{}, err
			}
			if err := p.advance(); err != nil { // '::'
				return step{}, err
			}
		} else if p.peekIsColonColon() {
			return step{}, p.errf("unknown axis %q", p.tok.text)
		}
	}
	nt, err := p.parseNodeTest()
	if err != nil {
		return step{}, err
	}
	st.test = nt
	for p.tok.kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return step{}, err
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

func (p *parser) peekIsColonColon() bool {
	save := *p.lex
	tok, err := p.lex.next()
	*p.lex = save
	return err == nil && tok.kind == tokColonColon
}

func (p *parser) parseNodeTest() (nodeTest, error) {
	switch p.tok.kind {
	case tokStar:
		if err := p.advance(); err != nil {
			return nodeTest{}, err
		}
		return nodeTest{kind: testWildcard}, nil
	case tokName:
		name := p.tok.text
		if p.peekIsLParen() {
			var kind nodeTestKind
			switch name {
			case "text":
				kind = testText
			case "comment":
				kind = testComment
			case "node":
				kind = testNode
			case "processing-instruction":
				kind = testPI
			default:
				return nodeTest{}, p.errf("unknown node type %q", name)
			}
			if err := p.advance(); err != nil { // name
				return nodeTest{}, err
			}
			if err := p.expect(tokLParen); err != nil {
				return nodeTest{}, err
			}
			if kind == testPI && p.tok.kind == tokLiteral {
				if err := p.advance(); err != nil {
					return nodeTest{}, err
				}
			}
			if err := p.expect(tokRParen); err != nil {
				return nodeTest{}, err
			}
			return nodeTest{kind: kind}, nil
		}
		if err := p.advance(); err != nil {
			return nodeTest{}, err
		}
		return nodeTest{kind: testName, name: name}, nil
	default:
		return nodeTest{}, p.errf("expected a node test, found %s", p.tok.kind)
	}
}

func (p *parser) parsePredicate() (expr, error) {
	if err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parsePrimary() (expr, error) {
	switch p.tok.kind {
	case tokNumber:
		lit := numberLit{val: parseNumber(p.tok.text), text: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return lit, nil
	case tokLiteral:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return stringLit(s), nil
	case tokVariable:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return varRef(name), nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		name := p.tok.text
		if !p.peekIsLParen() {
			return nil, p.errf("unexpected name %q (not a function call)", name)
		}
		fn, ok := functions[name]
		if !ok {
			return nil, p.errf("unknown function %q", name)
		}
		if err := p.advance(); err != nil { // name
			return nil, err
		}
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var args []expr
		if p.tok.kind != tokRParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if len(args) < fn.minArgs || (fn.maxArgs >= 0 && len(args) > fn.maxArgs) {
			return nil, p.errf("function %s called with %d arguments", name, len(args))
		}
		return &funcCall{name: name, fn: fn, args: args}, nil
	default:
		return nil, p.errf("unexpected %s", p.tok.kind)
	}
}
