package xpath

import (
	"fmt"
	"strings"
	"testing"

	"securexml/internal/xmltree"
)

// bankDoc is shaped like the paper's hospital document, with attributes and
// mixed content so attribute steps and text tests are exercised.
const bankDoc = `<patients>
  <franck id="f1"><service>otolaryngology</service><diagnosis code="t">tonsillitis</diagnosis></franck>
  <robert id="r1"><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert>
  <nested><franck><diagnosis>shadow</diagnosis></franck></nested>
</patients>`

func parseBankDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.Parse(strings.NewReader(bankDoc), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// bankExprs spans the chain-only fragment: rooted paths, descendant gaps,
// unions, attribute steps, self-contained predicates, $USER.
var bankExprs = []string{
	"/descendant-or-self::node()",
	"//diagnosis/node()",
	"/patients",
	"/patients/*[name() = $USER]/descendant-or-self::node()",
	"//diagnosis",
	"//@id",
	"//franck/diagnosis | //robert/service",
	"/patients/*/service/text()",
	"//diagnosis[starts-with(name(), 'diag')]",
	"/patients/franck/attribute::id",
}

// TestBankMatchesSelect: one bank walk must select, per expression, exactly
// the node set the per-expression Select does.
func TestBankMatchesSelect(t *testing.T) {
	d := parseBankDoc(t)
	vars := Vars{"USER": String("franck")}
	var ms []*NodeMatcher
	var cs []*Compiled
	for _, src := range bankExprs {
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		m, ok := c.NodeMatcher()
		if !ok {
			t.Fatalf("%s: expected inside the chain-only fragment", src)
		}
		cs = append(cs, c)
		ms = append(ms, m)
	}
	got, err := NewBank(ms).Select(d, vars)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		want, err := c.Select(d.Root(), vars)
		if err != nil {
			t.Fatalf("%s: %v", bankExprs[i], err)
		}
		if diff := compareNodeSets(got[i], want); diff != "" {
			t.Errorf("%s: bank vs Select: %s", bankExprs[i], diff)
		}
	}
}

// TestBankAgainstMatch cross-checks the bank against the per-node matcher
// over every node of the document.
func TestBankAgainstMatch(t *testing.T) {
	d := parseBankDoc(t)
	vars := Vars{"USER": String("robert")}
	for _, src := range bankExprs {
		c, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := c.NodeMatcher()
		sets, err := NewBank([]*NodeMatcher{m}).Select(d, vars)
		if err != nil {
			t.Fatal(err)
		}
		inBank := make(map[*xmltree.Node]bool, len(sets[0]))
		for _, n := range sets[0] {
			inBank[n] = true
		}
		for _, n := range d.Nodes() {
			ok, err := m.Match(n, vars)
			if err != nil {
				t.Fatal(err)
			}
			if ok != inBank[n] {
				t.Errorf("%s: node %s (%s): Match=%v bank=%v", src, n.ID(), n.Label(), ok, inBank[n])
			}
		}
	}
}

// TestBankDedupUnionAlts: a union whose alternatives overlap must still
// report each node once.
func TestBankDedupUnionAlts(t *testing.T) {
	d := parseBankDoc(t)
	c := MustCompile("//diagnosis | /patients/*/diagnosis")
	m, ok := c.NodeMatcher()
	if !ok {
		t.Fatal("expected matchable")
	}
	sets, err := NewBank([]*NodeMatcher{m}).Select(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[*xmltree.Node]bool)
	for _, n := range sets[0] {
		if seen[n] {
			t.Fatalf("node %s reported twice", n.ID())
		}
		seen[n] = true
	}
	want, err := c.Select(d.Root(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets[0]) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(sets[0]), len(want))
	}
}

// TestBankUndefinedVariable: evaluation errors surface instead of silently
// dropping rules.
func TestBankUndefinedVariable(t *testing.T) {
	d := parseBankDoc(t)
	c := MustCompile("/patients/*[name() = $USER]")
	m, _ := c.NodeMatcher()
	if _, err := NewBank([]*NodeMatcher{m}).Select(d, nil); err == nil {
		t.Fatal("want undefined-variable error, got nil")
	}
}

// TestBankEmpty: a bank over zero matchers is a no-op walk.
func TestBankEmpty(t *testing.T) {
	d := parseBankDoc(t)
	sets, err := NewBank(nil).Select(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 0 {
		t.Fatalf("got %d sets, want 0", len(sets))
	}
}

func compareNodeSets(got []*xmltree.Node, want NodeSet) string {
	g := make(map[*xmltree.Node]bool, len(got))
	for _, n := range got {
		g[n] = true
	}
	w := make(map[*xmltree.Node]bool, len(want))
	for _, n := range want {
		w[n] = true
	}
	var missing, extra []string
	for n := range w {
		if !g[n] {
			missing = append(missing, fmt.Sprintf("%s(%s)", n.ID(), n.Label()))
		}
	}
	for n := range g {
		if !w[n] {
			extra = append(extra, fmt.Sprintf("%s(%s)", n.ID(), n.Label()))
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		if len(got) != len(want) {
			return fmt.Sprintf("duplicates: got %d nodes, want %d", len(got), len(want))
		}
		return ""
	}
	return fmt.Sprintf("missing=%v extra=%v", missing, extra)
}

// TestUsesVariable covers every expression position a variable can hide in.
func TestUsesVariable(t *testing.T) {
	cases := []struct {
		src  string
		uses bool
	}{
		{"/patients/*[name() = $USER]", true},
		{"$USER", true},
		{"//diagnosis[contains($USER, 'a')]", true},
		{"//a[$OTHER = 1]", false},
		{"/patients/*[name() = concat($USER, '')]", true},
		{"//diagnosis/node()", false},
		{"count(//a[. = $USER])", true},
		{"-$USER", true},
		{"($USER)[1]/x", true},
		{"//a | //b[$USER]", true},
	}
	for _, tc := range cases {
		c, err := Compile(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got := c.UsesVariable("USER"); got != tc.uses {
			t.Errorf("UsesVariable(%q, USER) = %v, want %v", tc.src, got, tc.uses)
		}
	}
}
