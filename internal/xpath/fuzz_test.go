package xpath

import (
	"testing"

	"securexml/internal/xmltree"
)

// FuzzCompile checks the parser never panics and that accepted expressions
// render to a stable, re-parseable normal form. Run with
// `go test -fuzz=FuzzCompile ./internal/xpath` for a real campaign; the
// seed corpus runs on every `go test`.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"/", "//*", "/a/b/c", "//a[b]", "//a[1]/b[last()]",
		"count(//x) + 1", "//a | //b | //c", "key", "'literal'", "3.14",
		"-(-3)", "a and b or c", "//a[@x = 'y'][2]",
		"/patients/*[name() = $USER]/descendant-or-self::node()",
		"ancestor-or-self::*", "..//x", "@*", "text()", "node()",
		"substring-after(concat(a, 'x'), translate(b, 'ab', 'ba'))",
		"1 div 0 > 2 mod -3", "((((x))))", "a[b[c[d]]]",
		"//RESTRICTED[. != '']", "1<2", "processing-instruction('pi')",
		"", "[", "]", ")", "a:", "$", "!", "'", "//a[", "1..2", "a-b",
		"child::", "..::x", "@@", "--1", "//*[position()=last()-1]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := xmltree.MustParse("<a><b x='1'>t</b><c/></a>")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile(src)
		if err != nil {
			return // rejected input: fine
		}
		rendered := c.String()
		c2, err := Compile(rendered)
		if err != nil {
			t.Fatalf("accepted %q but its rendering %q does not reparse: %v", src, rendered, err)
		}
		if c2.String() != rendered {
			t.Fatalf("unstable normal form: %q -> %q -> %q", src, rendered, c2.String())
		}
		// Evaluation must not panic, whatever the expression does.
		_, _ = c.Eval(doc.Root(), Vars{"USER": String("u")})
	})
}
