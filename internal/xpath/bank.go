package xpath

import (
	"math/bits"

	"securexml/internal/xmltree"
)

// Bank evaluates many NodeMatchers in a single document walk — YFilter-style
// multi-query evaluation. Where R separate Select calls traverse the
// document R times (once per rule path), a Bank advances R NFA state sets
// together during one depth-first walk: at every node, each live matcher
// lands its pending descendant gaps, closes its self-transitions and
// forwards child/attribute transitions to the node's children, exactly as
// NodeMatcher.Match does per chain position. Matchers whose state set goes
// empty are dropped for the whole subtree, so cost concentrates where paths
// are still alive.
//
// The supported inputs are NodeMatchers (the chain-only fragment of
// match.go); callers route expressions outside the fragment through
// per-expression Select instead.
type Bank struct {
	entries []bankEntry
	n       int // number of matchers
}

// bankEntry is one union alternative of one matcher.
type bankEntry struct {
	matcher int
	steps   []step
}

// NewBank builds a bank over the given matchers. The result slices of
// Select are indexed like ms.
func NewBank(ms []*NodeMatcher) *Bank {
	b := &Bank{n: len(ms)}
	for i, m := range ms {
		for _, steps := range m.alts {
			b.entries = append(b.entries, bankEntry{matcher: i, steps: steps})
		}
	}
	return b
}

// bankState is one live NFA instance at the current node: the exact and gap
// bitmasks of matchSteps for this chain position.
type bankState struct {
	entry      int
	exact, gap uint64
}

// Select walks doc once and returns, per matcher, the nodes the matcher
// selects, in document order (attributes before children, like Node.Walk).
// The result set of matcher i equals { n : ms[i].Match(n, vars) } for the
// matchers the bank was built over.
func (b *Bank) Select(doc *xmltree.Document, vars Vars) ([][]*xmltree.Node, error) {
	root := doc.Root()
	if root == nil {
		return nil, errNilContext
	}
	w := &bankWalker{b: b, vars: vars, out: make([][]*xmltree.Node, b.n)}
	live := make([]bankState, len(b.entries))
	for i := range b.entries {
		live[i] = bankState{entry: i, exact: 1} // zero steps consumed at the document node
	}
	if err := w.walk(root, live, 0); err != nil {
		return nil, err
	}
	return w.out, nil
}

// bankWalker carries one Select's traversal state. bufs holds one reusable
// state slice per tree depth: the buffer filled for edge n→c is consumed
// entirely by the recursion into c before the next sibling edge reuses it,
// so the whole walk allocates O(depth) slices instead of O(edges).
type bankWalker struct {
	b    *Bank
	vars Vars
	out  [][]*xmltree.Node
	bufs [][]bankState
}

func (w *bankWalker) buf(depth int) []bankState {
	for len(w.bufs) <= depth {
		w.bufs = append(w.bufs, nil)
	}
	return w.bufs[depth][:0]
}

// walk advances the incoming states over n, records matches, and descends
// into n's attributes and children. incoming holds, per live entry, the
// exact bits forwarded by the parent's child/attribute transitions and the
// gap bits propagated downward; walk owns the slice and filters it in
// place.
func (w *bankWalker) walk(n *xmltree.Node, incoming []bankState, depth int) error {
	cur := incoming[:0]
	for _, st := range incoming {
		steps := w.b.entries[st.entry].steps
		ns, matched, err := advanceAt(st, steps, n, w.vars)
		if err != nil {
			return err
		}
		if matched {
			m := w.b.entries[st.entry].matcher
			// Two alternatives of the same matcher can select the same node;
			// all of n's matches are appended during this call, so a
			// duplicate is always the previous element.
			if k := len(w.out[m]); k == 0 || w.out[m][k-1] != n {
				w.out[m] = append(w.out[m], n)
			}
		}
		if ns.exact|ns.gap != 0 {
			cur = append(cur, ns)
		}
	}
	if len(cur) == 0 {
		return nil
	}
	for _, a := range n.Attributes() {
		if err := w.descend(cur, a, depth); err != nil {
			return err
		}
	}
	for _, c := range n.Children() {
		if err := w.descend(cur, c, depth); err != nil {
			return err
		}
	}
	return nil
}

// descend forwards the current states across the tree edge n→c and recurses
// when any state survives. Mirrors matchSteps' inter-node transition: gaps
// do not cross into attribute nodes, child steps feed non-attribute
// children, attribute steps feed attributes.
func (w *bankWalker) descend(cur []bankState, c *xmltree.Node, depth int) error {
	intoAttr := c.Kind() == xmltree.KindAttribute
	next := w.buf(depth)
	for _, st := range cur {
		steps := w.b.entries[st.entry].steps
		ns := bankState{entry: st.entry}
		if !intoAttr {
			ns.gap = st.gap
		}
		for rem := st.exact; rem != 0; rem &= rem - 1 {
			i := bits.TrailingZeros64(rem)
			if i >= len(steps) {
				break
			}
			stp := steps[i]
			if (stp.axis == AxisChild && !intoAttr) || (stp.axis == AxisAttribute && intoAttr) {
				ok, err := matchStepAt(stp, c, w.vars)
				if err != nil {
					return err
				}
				if ok {
					ns.exact |= 1 << uint(i+1)
				}
			}
		}
		if ns.exact|ns.gap != 0 {
			next = append(next, ns)
		}
	}
	w.bufs[depth] = next // keep any growth for the next edge at this depth
	if len(next) == 0 {
		return nil
	}
	return w.walk(c, next, depth+1)
}

// advanceAt applies matchSteps' per-chain-position processing for one entry
// at node n: land the gaps carried to this node, then close
// self-transitions ascending (a newly consumed step can enable the next one
// at the same node) and open descendant gaps.
func advanceAt(st bankState, steps []step, n *xmltree.Node, vars Vars) (bankState, bool, error) {
	exact, gap := st.exact, st.gap
	for rem := gap; rem != 0; rem &= rem - 1 {
		i := bits.TrailingZeros64(rem)
		if i >= len(steps) {
			break
		}
		ok, err := matchStepAt(steps[i], n, vars)
		if err != nil {
			return st, false, err
		}
		if ok {
			exact |= 1 << uint(i+1)
		}
	}
	for i := 0; i < len(steps); i++ {
		if exact&(1<<uint(i)) == 0 {
			continue
		}
		stp := steps[i]
		switch stp.axis {
		case AxisSelf, AxisDescendantOrSelf:
			ok, err := matchStepAt(stp, n, vars)
			if err != nil {
				return st, false, err
			}
			if ok {
				exact |= 1 << uint(i+1)
			}
		}
		if stp.axis == AxisDescendant || stp.axis == AxisDescendantOrSelf {
			gap |= 1 << uint(i)
		}
	}
	st.exact, st.gap = exact, gap
	return st, exact&(1<<uint(len(steps))) != 0, nil
}

// UsesVariable reports whether the compiled expression references $name
// anywhere — in a step predicate, a filter base, or a function argument.
// Expressions that do not are independent of the binding: they evaluate
// identically whatever value (or no value) name is bound to.
func (c *Compiled) UsesVariable(name string) bool {
	return exprUsesVar(c.root, name)
}

// exprUsesVar walks the expression tree looking for $name.
func exprUsesVar(e expr, name string) bool {
	switch v := e.(type) {
	case varRef:
		return string(v) == name
	case *pathExpr:
		if v.base != nil && exprUsesVar(v.base, name) {
			return true
		}
		for _, st := range v.steps {
			for _, p := range st.preds {
				if exprUsesVar(p, name) {
					return true
				}
			}
		}
		return false
	case *filterExpr:
		if exprUsesVar(v.primary, name) {
			return true
		}
		for _, p := range v.preds {
			if exprUsesVar(p, name) {
				return true
			}
		}
		return false
	case *binaryExpr:
		return exprUsesVar(v.l, name) || exprUsesVar(v.r, name)
	case *negExpr:
		return exprUsesVar(v.e, name)
	case *funcCall:
		for _, a := range v.args {
			if exprUsesVar(a, name) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
