package xpath

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"securexml/internal/xmltree"
)

// Value is an XPath 1.0 value: one of Number, String, Boolean or NodeSet.
type Value interface {
	// Bool converts the value with the boolean() rules.
	Bool() bool
	// Num converts the value with the number() rules.
	Num() float64
	// Str converts the value with the string() rules.
	Str() string
	// TypeName names the XPath type for error messages.
	TypeName() string
}

// Number is an XPath number (IEEE 754 double).
type Number float64

// Bool implements Value: a number is true unless zero or NaN.
func (n Number) Bool() bool { f := float64(n); return f != 0 && !math.IsNaN(f) }

// Num implements Value.
func (n Number) Num() float64 { return float64(n) }

// Str implements Value with the XPath number→string rules.
func (n Number) Str() string { return formatNumber(float64(n)) }

// TypeName implements Value.
func (n Number) TypeName() string { return "number" }

// String is an XPath string.
type String string

// Bool implements Value: a string is true when non-empty.
func (s String) Bool() bool { return len(s) > 0 }

// Num implements Value with the XPath string→number rules (leading/trailing
// whitespace allowed; anything unparseable is NaN).
func (s String) Num() float64 { return parseNumber(string(s)) }

// Str implements Value.
func (s String) Str() string { return string(s) }

// TypeName implements Value.
func (s String) TypeName() string { return "string" }

// Boolean is an XPath boolean.
type Boolean bool

// Bool implements Value.
func (b Boolean) Bool() bool { return bool(b) }

// Num implements Value: true is 1, false is 0.
func (b Boolean) Num() float64 {
	if b {
		return 1
	}
	return 0
}

// Str implements Value.
func (b Boolean) Str() string {
	if b {
		return "true"
	}
	return "false"
}

// TypeName implements Value.
func (b Boolean) TypeName() string { return "boolean" }

// NodeSet is a set of nodes in document order without duplicates.
type NodeSet []*xmltree.Node

// Bool implements Value: a node-set is true when non-empty.
func (ns NodeSet) Bool() bool { return len(ns) > 0 }

// Num implements Value: number(string(ns)).
func (ns NodeSet) Num() float64 { return parseNumber(ns.Str()) }

// Str implements Value: the string-value of the first node in document
// order, or "" for the empty set.
func (ns NodeSet) Str() string {
	if len(ns) == 0 {
		return ""
	}
	return ns[0].StringValue()
}

// TypeName implements Value.
func (ns NodeSet) TypeName() string { return "node-set" }

// formatNumber renders a float with the XPath 1.0 number→string rules.
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == 0:
		return "0" // both zeroes render as "0" per XPath 1.0 §4.2
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatFloat(f, 'f', 0, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// parseNumber implements the XPath string→number conversion.
func parseNumber(s string) float64 {
	t := strings.TrimSpace(s)
	if t == "" {
		return math.NaN()
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		var ne *strconv.NumError
		if errors.As(err, &ne) && ne.Err == strconv.ErrRange {
			return f // IEEE overflow/underflow keeps the clamped value
		}
		return math.NaN()
	}
	return f
}

// compareValues implements the XPath 1.0 comparison semantics for =, !=, <,
// <=, >, >=, including the existential semantics when node-sets are
// involved. Node string-values are computed under the security filter so
// that filtered queries observe effective (possibly RESTRICTED) content.
func compareValues(op binaryOp, l, r Value, sec *Security) (bool, error) {
	ln, lok := l.(NodeSet)
	rn, rok := r.(NodeSet)
	switch {
	case lok && rok:
		// Exists a pair of nodes whose string-values satisfy the comparison.
		for _, a := range ln {
			av := sec.stringValue(a)
			for _, b := range rn {
				ok, err := compareAtomic(op, String(av), String(sec.stringValue(b)))
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
		}
		return false, nil
	case lok:
		return compareNodeSetAtomic(op, ln, r, false, sec)
	case rok:
		return compareNodeSetAtomic(op, rn, l, true, sec)
	default:
		return compareAtomic(op, l, r)
	}
}

// compareNodeSetAtomic compares a node-set against an atomic value; swapped
// indicates the node-set was the right operand (relational operators must be
// mirrored).
func compareNodeSetAtomic(op binaryOp, ns NodeSet, atom Value, swapped bool, sec *Security) (bool, error) {
	if b, ok := atom.(Boolean); ok {
		// boolean(node-set) against the boolean.
		return compareAtomic(op, Boolean(ns.Bool()), b)
	}
	for _, n := range ns {
		var nodeVal Value
		switch atom.(type) {
		case Number:
			nodeVal = Number(parseNumber(sec.stringValue(n)))
		default:
			nodeVal = String(sec.stringValue(n))
		}
		l, r := nodeVal, atom
		if swapped {
			l, r = atom, nodeVal
		}
		ok, err := compareAtomic(op, l, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// compareAtomic compares two non-node-set values.
func compareAtomic(op binaryOp, l, r Value) (bool, error) {
	switch op {
	case opEq, opNeq:
		var eq bool
		switch {
		case isBoolean(l) || isBoolean(r):
			eq = l.Bool() == r.Bool()
		case isNumber(l) || isNumber(r):
			eq = l.Num() == r.Num()
		default:
			eq = l.Str() == r.Str()
		}
		if op == opNeq {
			return !eq, nil
		}
		return eq, nil
	case opLt:
		return l.Num() < r.Num(), nil
	case opLeq:
		return l.Num() <= r.Num(), nil
	case opGt:
		return l.Num() > r.Num(), nil
	case opGeq:
		return l.Num() >= r.Num(), nil
	default:
		return false, fmt.Errorf("xpath: operator %s is not a comparison", op)
	}
}

func isBoolean(v Value) bool { _, ok := v.(Boolean); return ok }
func isNumber(v Value) bool  { _, ok := v.(Number); return ok }
