package xpath

import (
	"fmt"
	"math"
	"strings"

	"securexml/internal/xmltree"
)

// function describes one core-library function.
type function struct {
	minArgs int
	maxArgs int // -1 = unbounded
	impl    func(ctx *evalCtx, args []Value) (Value, error)
}

// functions is the XPath 1.0 core function library. Omitted relative to the
// spec: id() (no DTD ids in the model), lang() and namespace-uri() (no
// namespaces).
var functions map[string]*function

func init() {
	functions = map[string]*function{
		"last": {0, 0, func(ctx *evalCtx, _ []Value) (Value, error) {
			return Number(ctx.size), nil
		}},
		"position": {0, 0, func(ctx *evalCtx, _ []Value) (Value, error) {
			return Number(ctx.pos), nil
		}},
		"count": {1, 1, func(_ *evalCtx, args []Value) (Value, error) {
			ns, ok := args[0].(NodeSet)
			if !ok {
				return nil, fmt.Errorf("xpath: count() requires a node-set, got %s", args[0].TypeName())
			}
			return Number(len(ns)), nil
		}},
		"name":       {0, 1, nameFunc},
		"local-name": {0, 1, nameFunc},
		"string": {0, 1, func(ctx *evalCtx, args []Value) (Value, error) {
			if len(args) == 0 {
				return String(ctx.sec.stringValue(ctx.node)), nil
			}
			if ns, ok := args[0].(NodeSet); ok {
				if len(ns) == 0 {
					return String(""), nil
				}
				return String(ctx.sec.stringValue(ns[0])), nil
			}
			return String(args[0].Str()), nil
		}},
		"concat": {2, -1, func(ctx *evalCtx, args []Value) (Value, error) {
			var b strings.Builder
			for _, a := range args {
				b.WriteString(valueStr(ctx, a))
			}
			return String(b.String()), nil
		}},
		"starts-with": {2, 2, func(ctx *evalCtx, args []Value) (Value, error) {
			return Boolean(strings.HasPrefix(valueStr(ctx, args[0]), valueStr(ctx, args[1]))), nil
		}},
		"contains": {2, 2, func(ctx *evalCtx, args []Value) (Value, error) {
			return Boolean(strings.Contains(valueStr(ctx, args[0]), valueStr(ctx, args[1]))), nil
		}},
		"substring-before": {2, 2, func(ctx *evalCtx, args []Value) (Value, error) {
			s, sep := valueStr(ctx, args[0]), valueStr(ctx, args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return String(s[:i]), nil
			}
			return String(""), nil
		}},
		"substring-after": {2, 2, func(ctx *evalCtx, args []Value) (Value, error) {
			s, sep := valueStr(ctx, args[0]), valueStr(ctx, args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return String(s[i+len(sep):]), nil
			}
			return String(""), nil
		}},
		"substring": {2, 3, substringFunc},
		"string-length": {0, 1, func(ctx *evalCtx, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(len([]rune(ctx.sec.stringValue(ctx.node)))), nil
			}
			return Number(len([]rune(valueStr(ctx, args[0])))), nil
		}},
		"normalize-space": {0, 1, func(ctx *evalCtx, args []Value) (Value, error) {
			s := ""
			if len(args) == 0 {
				s = ctx.sec.stringValue(ctx.node)
			} else {
				s = valueStr(ctx, args[0])
			}
			return String(strings.Join(strings.Fields(s), " ")), nil
		}},
		"translate": {3, 3, func(ctx *evalCtx, args []Value) (Value, error) {
			src, from, to := valueStr(ctx, args[0]), []rune(valueStr(ctx, args[1])), []rune(valueStr(ctx, args[2]))
			mapping := make(map[rune]rune, len(from))
			remove := make(map[rune]bool)
			for i, r := range from {
				if _, seen := mapping[r]; seen || remove[r] {
					continue
				}
				if i < len(to) {
					mapping[r] = to[i]
				} else {
					remove[r] = true
				}
			}
			var b strings.Builder
			for _, r := range src {
				if remove[r] {
					continue
				}
				if m, ok := mapping[r]; ok {
					b.WriteRune(m)
				} else {
					b.WriteRune(r)
				}
			}
			return String(b.String()), nil
		}},
		"boolean": {1, 1, func(_ *evalCtx, args []Value) (Value, error) {
			return Boolean(args[0].Bool()), nil
		}},
		"not": {1, 1, func(_ *evalCtx, args []Value) (Value, error) {
			return Boolean(!args[0].Bool()), nil
		}},
		"true": {0, 0, func(_ *evalCtx, _ []Value) (Value, error) {
			return Boolean(true), nil
		}},
		"false": {0, 0, func(_ *evalCtx, _ []Value) (Value, error) {
			return Boolean(false), nil
		}},
		"number": {0, 1, func(ctx *evalCtx, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(parseNumber(ctx.sec.stringValue(ctx.node))), nil
			}
			if ns, ok := args[0].(NodeSet); ok {
				if len(ns) == 0 {
					return Number(parseNumber("")), nil
				}
				return Number(parseNumber(ctx.sec.stringValue(ns[0]))), nil
			}
			return Number(args[0].Num()), nil
		}},
		"sum": {1, 1, func(ctx *evalCtx, args []Value) (Value, error) {
			ns, ok := args[0].(NodeSet)
			if !ok {
				return nil, fmt.Errorf("xpath: sum() requires a node-set, got %s", args[0].TypeName())
			}
			total := 0.0
			for _, n := range ns {
				total += parseNumber(ctx.sec.stringValue(n))
			}
			return Number(total), nil
		}},
		"floor": {1, 1, func(_ *evalCtx, args []Value) (Value, error) {
			return Number(math.Floor(args[0].Num())), nil
		}},
		"ceiling": {1, 1, func(_ *evalCtx, args []Value) (Value, error) {
			return Number(math.Ceil(args[0].Num())), nil
		}},
		"round": {1, 1, func(_ *evalCtx, args []Value) (Value, error) {
			f := args[0].Num()
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return Number(f), nil
			}
			// XPath rounds half towards +infinity.
			return Number(math.Floor(f + 0.5)), nil
		}},
	}
}

// nameFunc implements name()/local-name(): with no argument it names the
// context node; with a node-set argument it names the first node in
// document order. Names observe the security filter's effective labels
// (e.g. RESTRICTED), matching what the user's view would answer.
func nameFunc(ctx *evalCtx, args []Value) (Value, error) {
	node := ctx.node
	if len(args) > 0 {
		ns, ok := args[0].(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: name() requires a node-set, got %s", args[0].TypeName())
		}
		if len(ns) == 0 {
			return String(""), nil
		}
		node = ns[0]
	}
	switch node.Kind() {
	case xmltree.KindElement, xmltree.KindAttribute:
		return String(ctx.sec.label(node)), nil
	default:
		return String(""), nil
	}
}

// valueStr converts an argument value to a string, routing node-sets
// through the security filter.
func valueStr(ctx *evalCtx, v Value) string {
	if ns, ok := v.(NodeSet); ok {
		if len(ns) == 0 {
			return ""
		}
		return ctx.sec.stringValue(ns[0])
	}
	return v.Str()
}

// substringFunc implements substring() with the spec's rounding and NaN
// corner cases (1-based positions).
func substringFunc(ctx *evalCtx, args []Value) (Value, error) {
	runes := []rune(valueStr(ctx, args[0]))
	start := math.Floor(args[1].Num() + 0.5)
	end := math.Inf(1)
	if len(args) == 3 {
		end = start + math.Floor(args[2].Num()+0.5)
	}
	if math.IsNaN(start) || math.IsNaN(end) {
		return String(""), nil
	}
	var b strings.Builder
	for i, r := range runes {
		pos := float64(i + 1)
		if pos >= start && pos < end {
			b.WriteRune(r)
		}
	}
	return String(b.String()), nil
}

// funcCall evaluation lives here to keep the function table and its
// consumers together.
func (f *funcCall) eval(ctx *evalCtx) (Value, error) {
	args := make([]Value, len(f.args))
	for i, a := range f.args {
		v, err := a.eval(ctx)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return f.fn.impl(ctx, args)
}
