package xpath

import (
	"math"
	"strings"
	"testing"

	"securexml/internal/xmltree"
)

const bookXML = `<library>
  <book year="2001" lang="en">
    <title>Go in Practice</title>
    <author>Ann</author>
    <author>Bob</author>
    <price>30</price>
  </book>
  <book year="1999">
    <title>Datalog Rising</title>
    <author>Cid</author>
    <price>55.5</price>
  </book>
  <journal year="2001">
    <title>XML Security</title>
    <price>12</price>
  </journal>
</library>`

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(bookXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sel evaluates path on the document and returns the node-set.
func sel(t *testing.T, d *xmltree.Document, path string, vars Vars) NodeSet {
	t.Helper()
	ns, err := Select(d, path, vars)
	if err != nil {
		t.Fatalf("Select(%q): %v", path, err)
	}
	return ns
}

func names(ns NodeSet) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		switch n.Kind() {
		case xmltree.KindText:
			out[i] = "text:" + n.Label()
		case xmltree.KindAttribute:
			out[i] = "@" + n.Label()
		default:
			out[i] = n.Label()
		}
	}
	return out
}

func wantNames(t *testing.T, path string, got NodeSet, want ...string) {
	t.Helper()
	gotN := names(got)
	if len(gotN) != len(want) {
		t.Fatalf("%s: got %v, want %v", path, gotN, want)
	}
	for i := range want {
		if gotN[i] != want[i] {
			t.Fatalf("%s: got %v, want %v", path, gotN, want)
		}
	}
}

func TestSelectBasicPaths(t *testing.T) {
	d := doc(t)
	cases := []struct {
		path string
		want []string
	}{
		{"/library", []string{"library"}},
		{"/library/book", []string{"book", "book"}},
		{"/library/book/title", []string{"title", "title"}},
		{"/library/*", []string{"book", "book", "journal"}},
		{"/library/book/author/text()", []string{"text:Ann", "text:Bob", "text:Cid"}},
		{"//title", []string{"title", "title", "title"}},
		{"//book//text()", []string{"text:Go in Practice", "text:Ann", "text:Bob", "text:30", "text:Datalog Rising", "text:Cid", "text:55.5"}},
		{"/", []string{"/"}},
		{"/library/missing", nil},
		{"//journal/title", []string{"title"}},
	}
	for _, tc := range cases {
		wantNames(t, tc.path, sel(t, d, tc.path, nil), tc.want...)
	}
}

func TestSelectAxes(t *testing.T) {
	d := doc(t)
	cases := []struct {
		path string
		want []string
	}{
		{"/library/book[1]/child::author", []string{"author", "author"}},
		{"/library/book[1]/descendant::text()", []string{"text:Go in Practice", "text:Ann", "text:Bob", "text:30"}},
		{"//price/parent::*", []string{"book", "book", "journal"}},
		{"//author/ancestor::*", []string{"library", "book", "book"}},
		{"//author/ancestor-or-self::*", []string{"library", "book", "author", "author", "book", "author"}},
		{"/library/book[1]/following-sibling::*", []string{"book", "journal"}},
		{"/library/journal/preceding-sibling::*", []string{"book", "book"}},
		{"/library/book[2]/following::*", []string{"journal", "title", "price"}},
		{"/library/journal/preceding::title", []string{"title", "title"}},
		{"//title/self::title", []string{"title", "title", "title"}},
		{"/library/descendant-or-self::journal", []string{"journal"}},
		{"//book/attribute::year", []string{"@year", "@year"}},
		{"//book/@*", []string{"@year", "@lang", "@year"}},
		{"//@lang", []string{"@lang"}},
	}
	for _, tc := range cases {
		wantNames(t, tc.path, sel(t, d, tc.path, nil), tc.want...)
	}
}

func TestSelectPredicates(t *testing.T) {
	d := doc(t)
	cases := []struct {
		path string
		want []string
	}{
		{"/library/book[1]/title/text()", []string{"text:Go in Practice"}},
		{"/library/book[2]/title/text()", []string{"text:Datalog Rising"}},
		{"/library/book[last()]/title/text()", []string{"text:Datalog Rising"}},
		{"/library/book[position() = 2]/title/text()", []string{"text:Datalog Rising"}},
		{"/library/book[position() > 1]/title/text()", []string{"text:Datalog Rising"}},
		{"//book[author = 'Cid']/title/text()", []string{"text:Datalog Rising"}},
		{"//book[price > 40]/title/text()", []string{"text:Datalog Rising"}},
		{"//book[price < 40]/title/text()", []string{"text:Go in Practice"}},
		{"//book[@year = '2001']/title/text()", []string{"text:Go in Practice"}},
		{"//book[@lang]/title/text()", []string{"text:Go in Practice"}},
		{"//book[not(@lang)]/title/text()", []string{"text:Datalog Rising"}},
		{"//book[count(author) = 2]/title/text()", []string{"text:Go in Practice"}},
		{"//book[author][price > 40]/title/text()", []string{"text:Datalog Rising"}},
		{"//*[title = 'XML Security']", []string{"journal"}},
		{"//book[author = 'Ann' and price = 30]/title/text()", []string{"text:Go in Practice"}},
		{"//book[author = 'Zed' or @year = '1999']/title/text()", []string{"text:Datalog Rising"}},
	}
	for _, tc := range cases {
		wantNames(t, tc.path, sel(t, d, tc.path, nil), tc.want...)
	}
}

// TestReverseAxisPositions checks proximity positions on reverse axes:
// ancestor::*[1] is the nearest ancestor, preceding-sibling::*[1] the
// closest preceding sibling.
func TestReverseAxisPositions(t *testing.T) {
	d := doc(t)
	wantNames(t, "anc1", sel(t, d, "//author[1]/ancestor::*[1]", nil), "book", "book")
	wantNames(t, "anc2", sel(t, d, "//price/ancestor::*[2]", nil), "library")
	wantNames(t, "prec", sel(t, d, "/library/journal/preceding-sibling::*[1]/title/text()", nil),
		"text:Datalog Rising")
	wantNames(t, "precLast", sel(t, d, "/library/journal/preceding-sibling::*[last()]/title/text()", nil),
		"text:Go in Practice")
}

func TestSelectUnion(t *testing.T) {
	d := doc(t)
	got := sel(t, d, "//journal/title | //book[1]/title | //journal/title", nil)
	wantNames(t, "union", got, "title", "title")
	// Union result must be in document order regardless of operand order.
	if xmltree.CompareDocOrder(got[0], got[1]) >= 0 {
		t.Error("union result not in document order")
	}
}

func TestSelectAbbreviations(t *testing.T) {
	d := doc(t)
	wantNames(t, "dot", sel(t, d, "/library/.", nil), "library")
	wantNames(t, "dotdot", sel(t, d, "/library/book[1]/..", nil), "library")
	wantNames(t, "dotdotslash", sel(t, d, "//price/../title", nil), "title", "title", "title")
	wantNames(t, "descabbr", sel(t, d, "/library//author", nil), "author", "author", "author")
	wantNames(t, "slashslashroot", sel(t, d, "//library", nil), "library")
	wantNames(t, "attrpred", sel(t, d, "//*[@year='1999']", nil), "book")
}

func TestVariables(t *testing.T) {
	d := doc(t)
	vars := Vars{"USER": String("Cid"), "limit": Number(40)}
	wantNames(t, "varstr", sel(t, d, "//book[author = $USER]/title/text()", vars), "text:Datalog Rising")
	wantNames(t, "varnum", sel(t, d, "//book[price > $limit]/title/text()", vars), "text:Datalog Rising")
	// The paper's rule-5 pattern: select the subtree of the element named $USER.
	vars2 := Vars{"USER": String("book")}
	got := sel(t, d, "/library/*[name() = $USER]", vars2)
	wantNames(t, "byname", got, "book", "book")
	if _, err := Select(d, "//book[$undefined]", nil); err == nil {
		t.Error("undefined variable did not error")
	}
}

func TestEvalAtomicResults(t *testing.T) {
	d := doc(t)
	cases := []struct {
		path string
		want Value
	}{
		{"count(//book)", Number(2)},
		{"count(//author)", Number(3)},
		{"sum(//price)", Number(97.5)},
		{"1 + 2 * 3", Number(7)},
		{"(1 + 2) * 3", Number(9)},
		{"10 div 4", Number(2.5)},
		{"10 mod 4", Number(2)},
		{"-5 + 2", Number(-3)},
		{"2 > 1", Boolean(true)},
		{"2 = 2 and 3 = 4", Boolean(false)},
		{"2 = 2 or 3 = 4", Boolean(true)},
		{"'abc' = 'abc'", Boolean(true)},
		{"'abc' != 'abc'", Boolean(false)},
		{"string(//book[1]/price)", String("30")},
		{"string(3.0)", String("3")},
		{"string(0.5)", String("0.5")},
		{"concat('a', 'b', 'c')", String("abc")},
		{"starts-with('hello', 'he')", Boolean(true)},
		{"contains('hello', 'ell')", Boolean(true)},
		{"substring-before('1999/04/01', '/')", String("1999")},
		{"substring-after('1999/04/01', '/')", String("04/01")},
		{"substring('12345', 2, 3)", String("234")},
		{"substring('12345', 2)", String("2345")},
		{"substring('12345', 1.5, 2.6)", String("234")},
		{"string-length('hello')", Number(5)},
		{"normalize-space('  a   b  ')", String("a b")},
		{"translate('bar', 'abc', 'ABC')", String("BAr")},
		{"translate('--aaa--', 'abc-', 'ABC')", String("AAA")},
		{"boolean(//book)", Boolean(true)},
		{"boolean(//nothing)", Boolean(false)},
		{"not(false())", Boolean(true)},
		{"true()", Boolean(true)},
		{"false()", Boolean(false)},
		{"number('12.5')", Number(12.5)},
		{"floor(2.7)", Number(2)},
		{"ceiling(2.1)", Number(3)},
		{"round(2.5)", Number(3)},
		{"round(-2.5)", Number(-2)},
		{"name(//book[1]/..)", String("library")},
		{"local-name(//@lang)", String("lang")},
	}
	for _, tc := range cases {
		c, err := Compile(tc.path)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.path, err)
			continue
		}
		got, err := c.Eval(d.Root(), nil)
		if err != nil {
			t.Errorf("Eval(%q): %v", tc.path, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Eval(%q) = %v (%s), want %v", tc.path, got, got.TypeName(), tc.want)
		}
	}
}

func TestNumberStringEdgeCases(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"string(1 div 0)", "Infinity"},
		{"string(-1 div 0)", "-Infinity"},
		{"string(0 div 0)", "NaN"},
		{"string(number('abc'))", "NaN"},
		{"string(-0.0)", "0"},
		{"string(1000000)", "1000000"},
	}
	d := doc(t)
	for _, tc := range cases {
		c := MustCompile(tc.expr)
		got, err := c.Eval(d.Root(), nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if got.Str() != tc.want {
			t.Errorf("%s = %q, want %q", tc.expr, got.Str(), tc.want)
		}
	}
	if !math.IsNaN(String("").Num()) {
		t.Error("number('') should be NaN")
	}
}

func TestNodeSetComparisons(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr string
		want bool
	}{
		{"//author = 'Ann'", true},                // exists an author 'Ann'
		{"//author = 'Zed'", false},               //
		{"//author != 'Ann'", true},               // exists an author that isn't Ann
		{"//price > 50", true},                    //
		{"//price > 100", false},                  //
		{"//price < 20", true},                    // journal price 12
		{"30 = //price", true},                    // swapped operands
		{"//book/title = //journal/title", false}, // no common string value
		{"//book/author = //book/author", true},   //
		{"//missing = //missing", false},          // empty sets never compare equal
		{"//book = true()", true},                 // boolean(nodeset)
		{"//missing = false()", true},             //
	}
	for _, tc := range cases {
		c := MustCompile(tc.expr)
		got, err := c.Eval(d.Root(), nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if got.Bool() != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got.Bool(), tc.want)
		}
	}
}

func TestFilterExpressions(t *testing.T) {
	d := doc(t)
	vars := Vars{"books": nil}
	// Bind $books to a node-set, then filter and step from it.
	ns := sel(t, d, "//book", nil)
	vars["books"] = ns
	wantNames(t, "filter", sel(t, d, "$books[2]/title/text()", vars), "text:Datalog Rising")
	wantNames(t, "filterstep", sel(t, d, "$books/author[1]/text()", vars), "text:Ann", "text:Cid")
	wantNames(t, "paren", sel(t, d, "(//book | //journal)[3]", vars), "journal")
	wantNames(t, "parenslash", sel(t, d, "(//book)[1]/title", vars), "title")
	wantNames(t, "filterdesc", sel(t, d, "$books[1]//text()", vars),
		"text:Go in Practice", "text:Ann", "text:Bob", "text:30")
	// Variable node-set must not be mutated by predicate filtering.
	if len(ns) != 2 {
		t.Fatalf("variable node-set was mutated: %v", names(ns))
	}
}

func TestMatches(t *testing.T) {
	d := doc(t)
	c := MustCompile("//book[price > 40]")
	book2 := sel(t, d, "/library/book[2]", nil)[0]
	book1 := sel(t, d, "/library/book[1]", nil)[0]
	if ok, err := c.Matches(book2, nil); err != nil || !ok {
		t.Errorf("Matches(book2) = %v, %v; want true", ok, err)
	}
	if ok, err := c.Matches(book1, nil); err != nil || ok {
		t.Errorf("Matches(book1) = %v, %v; want false", ok, err)
	}
}

func TestSelectOnSubtreeContext(t *testing.T) {
	d := doc(t)
	book1 := sel(t, d, "/library/book[1]", nil)[0]
	c := MustCompile("author")
	ns, err := c.Select(book1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, "relative", ns, "author", "author")
	// Absolute paths escape to the root even from a subtree context.
	c2 := MustCompile("/library/journal")
	ns2, err := c2.Select(book1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, "absolute-from-subtree", ns2, "journal")
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"//book[",
		"//book]",
		"/library/",
		"1 +",
		"@",
		"foo(",
		"unknownfn()",
		"//book[price >]",
		"'unterminated",
		"$",
		"$ x",
		"!",
		"!=3",
		"//book[1]extra",
		"::",
		"a:b",
		"child::",
		"badaxis::x",
		"//book[position( = 1]",
		"processing-instruction('x'",
		"count()",
		"count(1, 2)",
		"not()",
		"concat('one')",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestCompileErrorHasPosition(t *testing.T) {
	_, err := Compile("//book[price >]")
	if err == nil {
		t.Fatal("expected error")
	}
	var se *SyntaxError
	if !asSyntaxError(err, &se) {
		t.Fatalf("error %T is not a *SyntaxError", err)
	}
	if se.Pos <= 0 || !strings.Contains(se.Error(), "offset") {
		t.Errorf("syntax error lacks position info: %v", se)
	}
}

func asSyntaxError(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}

func TestEvalTypeErrors(t *testing.T) {
	d := doc(t)
	cases := []string{
		"count('str')", // count of non-node-set
		"sum(1)",       // sum of non-node-set
		"name(3)",      // name of non-node-set
		"'a' | //book", // union with atomic
		"('str')[1]",   // predicate on atomic
		"('str')/x",    // path step on atomic
	}
	for _, src := range cases {
		c, err := Compile(src)
		if err != nil {
			t.Errorf("Compile(%q) failed at parse time: %v", src, err)
			continue
		}
		if _, err := c.Eval(d.Root(), nil); err == nil {
			t.Errorf("Eval(%q): expected runtime type error", src)
		}
	}
	if _, err := Select(d, "1 + 1", nil); err == nil {
		t.Error("Select of numeric expression should fail with ErrNotNodeSet")
	}
}

func TestStringRendering(t *testing.T) {
	// The normalized rendering must itself be parseable (idempotence).
	exprs := []string{
		"//book[price > 40]/title",
		"/library/book[1]/following-sibling::*",
		"count(//book) + 2 * 3",
		"//book[@year = '2001' and not(@lang)]",
		"(//book | //journal)[last()]",
		"-(3)",
		"substring('abc', 1, 2)",
	}
	for _, src := range exprs {
		c := MustCompile(src)
		rendered := c.String()
		c2, err := Compile(rendered)
		if err != nil {
			t.Errorf("rendering of %q is not reparseable: %q: %v", src, rendered, err)
			continue
		}
		if c2.String() != rendered {
			t.Errorf("rendering not stable: %q -> %q -> %q", src, rendered, c2.String())
		}
	}
}

func TestWhitespaceTolerance(t *testing.T) {
	d := doc(t)
	a := sel(t, d, "//book[price>40]/title", nil)
	b := sel(t, d, " //book[ price > 40 ] /title ", nil)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Error("whitespace changes the result")
	}
}

func TestOperatorNameDisambiguation(t *testing.T) {
	// Elements named like operators must still be addressable.
	d, err := xmltree.ParseString("<r><and>1</and><or>2</or><div>3</div><mod>4</mod></r>", xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"and", "or", "div", "mod"} {
		ns := sel(t, d, "/r/"+name, nil)
		if len(ns) != 1 {
			t.Errorf("element <%s> not selectable", name)
		}
	}
	// And they act as operators after an operand.
	v, err := MustCompile("/r/div div /r/mod").Eval(d.Root(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Num() != 0.75 {
		t.Errorf("div operator = %v, want 0.75", v.Num())
	}
}

func TestRestrictedIsPlainNameTest(t *testing.T) {
	// §4.4.2: users express paths against their view, which may contain
	// RESTRICTED labels; RESTRICTED must lex as an ordinary name.
	d, err := xmltree.ParseString("<r><RESTRICTED><x>1</x></RESTRICTED></r>", xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ns := sel(t, d, "/r/RESTRICTED/x", nil)
	if len(ns) != 1 {
		t.Error("RESTRICTED name test failed")
	}
}

func TestPositionOnDescendantAxis(t *testing.T) {
	d := doc(t)
	// //author[1]: first author of EACH book (per-step semantics).
	wantNames(t, "perstep", sel(t, d, "//author[1]/text()", nil), "text:Ann", "text:Cid")
	// (//author)[1]: globally first author.
	wantNames(t, "global", sel(t, d, "(//author)[1]/text()", nil), "text:Ann")
}

func TestSelfAxisOnAttributes(t *testing.T) {
	d := doc(t)
	wantNames(t, "attrself", sel(t, d, "//@year/self::node()", nil), "@year", "@year", "@year")
	// Attribute string values flow into comparisons.
	v, err := MustCompile("//book[1]/@year + 1").Eval(d.Root(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Num() != 2002 {
		t.Errorf("@year + 1 = %v", v.Num())
	}
}

// TestIndexFastPathMatchesWalk: absolute //name answers must be identical
// with and without the element-name index fast path — checked by comparing
// against the equivalent spelled-out path that does not trigger it, across
// documents mutated between queries.
func TestIndexFastPathMatchesWalk(t *testing.T) {
	d := doc(t)
	pairs := [][2]string{
		{"//book", "/descendant-or-self::*/self::book"},
		{"//title", "/descendant-or-self::*/self::title"},
		{"//author", "/descendant-or-self::*/self::author"},
		{"//missing", "/descendant-or-self::*/self::missing"},
		{"//book/title", "/descendant-or-self::*/self::book/title"},
	}
	check := func() {
		t.Helper()
		for _, pr := range pairs {
			fast := sel(t, d, pr[0], nil)
			slow := sel(t, d, pr[1], nil)
			if len(fast) != len(slow) {
				t.Fatalf("%s: fast %d nodes, walk %d", pr[0], len(fast), len(slow))
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("%s: node %d differs", pr[0], i)
				}
			}
		}
	}
	check()
	// Mutations must keep the index fresh: rename, remove, insert.
	book1 := sel(t, d, "/library/book[1]", nil)[0]
	if err := d.Rename(book1, "tome"); err != nil {
		t.Fatal(err)
	}
	if got := sel(t, d, "//tome", nil); len(got) != 1 {
		t.Fatalf("renamed element not found via index: %d", len(got))
	}
	if got := sel(t, d, "//book", nil); len(got) != 1 {
		t.Fatalf("index kept stale name: %d books", len(got))
	}
	check()
	if err := d.Remove(sel(t, d, "/library/journal", nil)[0]); err != nil {
		t.Fatal(err)
	}
	if got := sel(t, d, "//journal", nil); len(got) != 0 {
		t.Fatal("removed element still indexed")
	}
	lib := d.RootElement()
	if _, err := d.AppendChild(lib, xmltree.KindElement, "book"); err != nil {
		t.Fatal(err)
	}
	if got := sel(t, d, "//book", nil); len(got) != 2 {
		t.Fatalf("inserted element not indexed: %d", len(got))
	}
	check()
}

// TestIndexFastPathSkipsUnsupportedShapes: positional predicates on the
// name step have per-parent semantics and must not take the indexed path.
func TestIndexFastPathSkipsUnsupportedShapes(t *testing.T) {
	d := doc(t)
	// //author[1] = first author of EACH book (2 results, not 1).
	wantNames(t, "posfast", sel(t, d, "//author[1]/text()", nil), "text:Ann", "text:Cid")
	// Relative paths never use the index.
	book := sel(t, d, "/library/book[1]", nil)[0]
	c := MustCompile(".//author")
	ns, err := c.Select(book, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("relative .//author = %d nodes", len(ns))
	}
}
