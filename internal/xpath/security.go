package xpath

import (
	"strings"

	"securexml/internal/xmltree"
)

// Security is an optional evaluation-time filter implementing the
// query-filtering enforcement sketched in the paper's conclusion (§5,
// after Fundulaki & Marx [9]): instead of materializing a user view and
// querying it, the query runs on the source document while the evaluator
//
//   - skips nodes the user may not know exist (Visible), pruning whole
//     subtrees exactly like view derivation does, and
//   - substitutes the effective label of position-only nodes (Label), so
//     that node tests and string-values observe RESTRICTED rather than the
//     hidden label — the paper's open question of "how answers to filtered
//     queries could include RESTRICTED labels".
//
// With both functions derived from the same perm relation, a filtered
// query over the source is answer-equivalent to the plain query over the
// materialized view; internal/qfilter packages that construction and
// property-tests the equivalence.
type Security struct {
	// Visible reports whether the node exists for this evaluation. A nil
	// Security or nil Visible means everything is visible. Invisibility is
	// hereditary: children of an invisible node are never reached.
	Visible func(*xmltree.Node) bool
	// Label returns the node's effective label (e.g. RESTRICTED). nil
	// means the stored label.
	Label func(*xmltree.Node) string
}

// visible reports whether n passes the filter.
func (s *Security) visible(n *xmltree.Node) bool {
	if s == nil || s.Visible == nil {
		return true
	}
	return s.Visible(n)
}

// label returns the effective label of n.
func (s *Security) label(n *xmltree.Node) string {
	if s == nil || s.Label == nil {
		return n.Label()
	}
	return s.Label(n)
}

// stringValue computes the XPath string-value of n under the filter: the
// concatenation of the effective labels of visible text descendants (or
// the effective label itself for text/comment nodes).
func (s *Security) stringValue(n *xmltree.Node) string {
	if s == nil || (s.Visible == nil && s.Label == nil) {
		return n.StringValue()
	}
	switch n.Kind() {
	case xmltree.KindText, xmltree.KindComment:
		return s.label(n)
	default:
		var b []byte
		b = s.appendText(b, n)
		return string(b)
	}
}

func (s *Security) appendText(b []byte, n *xmltree.Node) []byte {
	for _, c := range n.Children() {
		if !s.visible(c) {
			continue
		}
		switch c.Kind() {
		case xmltree.KindText:
			b = append(b, s.label(c)...)
		case xmltree.KindElement:
			b = s.appendText(b, c)
		}
	}
	return b
}

// EvalFiltered evaluates the expression with node as the context node
// under the security filter.
func (c *Compiled) EvalFiltered(node *xmltree.Node, vars Vars, sec *Security) (Value, error) {
	if node == nil {
		return nil, errNilContext
	}
	return c.root.eval(&evalCtx{node: node, pos: 1, size: 1, vars: vars, sec: sec})
}

// SelectFiltered evaluates under the security filter and returns the
// node-set (of source nodes) in document order.
func (c *Compiled) SelectFiltered(node *xmltree.Node, vars Vars, sec *Security) (NodeSet, error) {
	v, err := c.EvalFiltered(node, vars, sec)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, errNotNodeSetf(c.src, v)
	}
	return ns, nil
}

// IsVisible reports whether n passes the filter (nil-safe: everything is
// visible without a filter). Exported for consumers that walk trees
// themselves (e.g. the XSLT processor's built-in template rules).
func (s *Security) IsVisible(n *xmltree.Node) bool { return s.visible(n) }

// EffectiveLabel returns the label the filter presents for n (nil-safe).
func (s *Security) EffectiveLabel(n *xmltree.Node) string { return s.label(n) }

// StringValue returns the XPath string-value of n under the filter
// (nil-safe): only visible text contributes, with effective labels.
func (s *Security) StringValue(n *xmltree.Node) string { return s.stringValue(n) }

// Path renders n's path as the user's materialized view would show it:
// xmltree.Node.Path with every element and attribute label replaced by its
// effective label (so position-only ancestors read RESTRICTED). Only
// meaningful for nodes whose ancestors are all visible — which holds for
// every node a filtered evaluation can return, since the evaluator never
// descends below an invisible node. Nil-safe: without a filter it equals
// n.Path().
func (s *Security) Path(n *xmltree.Node) string {
	if n.Kind() == xmltree.KindDocument {
		return "/"
	}
	var parts []string
	for m := n; m != nil && m.Kind() != xmltree.KindDocument; m = m.Parent() {
		switch m.Kind() {
		case xmltree.KindText:
			parts = append(parts, "text()")
		case xmltree.KindComment:
			parts = append(parts, "comment()")
		case xmltree.KindAttribute:
			parts = append(parts, "@"+s.label(m))
		default:
			parts = append(parts, s.label(m))
		}
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}
