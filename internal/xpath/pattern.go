package xpath

import (
	"fmt"
	"strings"
)

// This file implements the conservative downward-fragment abstraction used
// by the static policy analyzer (internal/policyanalysis): every compiled
// expression maps to a Pattern describing — as a union of root-anchored
// step sequences — which nodes the expression *could* select when evaluated
// with the document node as context (which is exactly how security-rule
// paths are evaluated, see policy.Evaluate).
//
// The abstraction is an over-approximation: every node the expression can
// select on any document, under any variable binding, is matched by the
// Pattern. For expressions inside the downward fragment — absolute or
// document-rooted paths built from child / attribute / descendant /
// descendant-or-self::node() steps with name, wildcard or node-type tests,
// no predicates, unions allowed — the abstraction is lossless and Exact is
// true; satisfiability, overlap and containment are then decidable exactly
// on the Pattern. Predicates, $USER, reverse and sideways axes, and filter
// bases degrade to a sound superset with Exact = false.

// PatternKind classifies the node category one PatternStep matches.
type PatternKind int

// Pattern step kinds. PatAnyNode is only produced by over-approximations
// (it also matches attribute nodes, which no single downward step can
// reach); PatAnyChild is node() on the child axis.
const (
	PatAnyNode PatternKind = iota
	PatAnyChild
	PatElement
	PatNamedElement
	PatText
	PatComment
	PatPI
	PatAnyAttribute
	PatNamedAttribute
)

// String renders the kind as a node test.
func (k PatternKind) String() string {
	switch k {
	case PatAnyNode:
		return "any()"
	case PatAnyChild:
		return "node()"
	case PatElement:
		return "*"
	case PatNamedElement:
		return "name"
	case PatText:
		return "text()"
	case PatComment:
		return "comment()"
	case PatPI:
		return "processing-instruction()"
	case PatAnyAttribute:
		return "@*"
	case PatNamedAttribute:
		return "@name"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// PatternStep matches exactly one node on a root-to-node walk. Gap means
// the step is reached through zero or more intermediate descendant levels
// (the '//' of the abbreviated syntax) rather than as a direct child.
type PatternStep struct {
	Gap  bool
	Kind PatternKind
	Name string // for PatNamedElement / PatNamedAttribute
}

// String renders the step in abbreviated-XPath style.
func (s PatternStep) String() string {
	sep := "/"
	if s.Gap {
		sep = "//"
	}
	switch s.Kind {
	case PatNamedElement:
		return sep + s.Name
	case PatNamedAttribute:
		return sep + "@" + s.Name
	default:
		return sep + s.Kind.String()
	}
}

// Pattern is the abstraction of one expression: the union of its
// alternatives. An alternative with zero steps matches the document node
// itself. A pattern with zero alternatives matches nothing.
type Pattern struct {
	Alts  [][]PatternStep
	Exact bool
}

// String renders the pattern for diagnostics.
func (p *Pattern) String() string {
	if len(p.Alts) == 0 {
		return "∅"
	}
	parts := make([]string, len(p.Alts))
	for i, alt := range p.Alts {
		if len(alt) == 0 {
			parts[i] = "/"
			continue
		}
		var b strings.Builder
		for _, s := range alt {
			b.WriteString(s.String())
		}
		parts[i] = b.String()
	}
	out := strings.Join(parts, " | ")
	if !p.Exact {
		out += " (approx)"
	}
	return out
}

// MatchesRoot reports whether the pattern can match the document node
// itself (an alternative of zero steps).
func (p *Pattern) MatchesRoot() bool {
	for _, alt := range p.Alts {
		if len(alt) == 0 {
			return true
		}
	}
	return false
}

// anyNodePattern is the universal over-approximation: the document node or
// any node whatsoever below it.
func anyNodePattern() *Pattern {
	return &Pattern{
		Alts:  [][]PatternStep{{}, {{Gap: true, Kind: PatAnyNode}}},
		Exact: false,
	}
}

// Pattern computes the downward-fragment abstraction of the expression.
// The abstraction describes evaluation with the *document node* as context
// (the context security rules are evaluated in), so relative location paths
// behave like absolute ones.
func (c *Compiled) Pattern() *Pattern {
	return patternOf(c.root)
}

func patternOf(e expr) *Pattern {
	switch v := e.(type) {
	case *binaryExpr:
		if v.op != opUnion {
			return anyNodePattern()
		}
		l, r := patternOf(v.l), patternOf(v.r)
		alts := make([][]PatternStep, 0, len(l.Alts)+len(r.Alts))
		alts = append(alts, l.Alts...)
		alts = append(alts, r.Alts...)
		return &Pattern{Alts: alts, Exact: l.Exact && r.Exact}
	case *pathExpr:
		return pathPattern(v)
	default:
		// Filter expressions, literals, function calls, variables: no
		// static downward shape.
		return anyNodePattern()
	}
}

// pathPattern abstracts one location path, step by step.
func pathPattern(p *pathExpr) *Pattern {
	if p.base != nil {
		return anyNodePattern()
	}
	exact := true
	alts := [][]PatternStep{{}}
	pendingGap := false
	for _, st := range p.steps {
		if len(st.preds) > 0 {
			exact = false // predicates only filter: dropping them is a superset
		}
		switch st.axis {
		case AxisSelf:
			if st.test.kind != testNode {
				exact = false // self::T filters the context: superset by ignoring
			}
		case AxisChild:
			alts = appendStep(alts, PatternStep{Gap: pendingGap, Kind: childKind(st.test), Name: st.test.name})
			pendingGap = false
		case AxisAttribute:
			k, ok := attrKind(st.test)
			if !ok {
				// attribute::text() and friends select nothing, ever.
				return &Pattern{Exact: exact}
			}
			alts = appendStep(alts, PatternStep{Gap: pendingGap, Kind: k, Name: st.test.name})
			pendingGap = false
		case AxisDescendantOrSelf:
			if st.test.kind == testNode {
				pendingGap = true
				continue
			}
			// descendant-or-self::T: the context itself (over-approximated by
			// ignoring the test) or a matching descendant.
			exact = false
			alts = append(alts, appendStep(alts, PatternStep{Gap: true, Kind: childKind(st.test), Name: st.test.name})...)
		case AxisDescendant:
			alts = appendStep(alts, PatternStep{Gap: true, Kind: childKind(st.test), Name: st.test.name})
			pendingGap = false
		default:
			// Reverse and sideways axes can land anywhere in the document;
			// everything after them is at best a filter.
			return anyNodePattern()
		}
	}
	if pendingGap {
		// A trailing descendant-or-self::node(): the nodes reached so far or
		// anything below them.
		alts = append(alts, appendStep(alts, PatternStep{Gap: true, Kind: PatAnyChild})...)
	}
	return &Pattern{Alts: alts, Exact: exact}
}

// appendStep returns a copy of alts with s appended to every alternative.
func appendStep(alts [][]PatternStep, s PatternStep) [][]PatternStep {
	out := make([][]PatternStep, len(alts))
	for i, a := range alts {
		na := make([]PatternStep, len(a), len(a)+1)
		copy(na, a)
		out[i] = append(na, s)
	}
	return out
}

// childKind maps a node test on the child (or descendant) axis, whose
// principal node type is element.
func childKind(nt nodeTest) PatternKind {
	switch nt.kind {
	case testName:
		return PatNamedElement
	case testWildcard:
		return PatElement
	case testText:
		return PatText
	case testComment:
		return PatComment
	case testPI:
		return PatPI
	default:
		return PatAnyChild
	}
}

// attrKind maps a node test on the attribute axis; ok is false for tests no
// attribute node can satisfy.
func attrKind(nt nodeTest) (PatternKind, bool) {
	switch nt.kind {
	case testName:
		return PatNamedAttribute, true
	case testWildcard, testNode:
		return PatAnyAttribute, true
	default:
		return 0, false
	}
}
