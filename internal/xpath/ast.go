package xpath

import (
	"fmt"
	"strings"
)

// Axis enumerates the XPath 1.0 axes. The namespace axis is not supported
// (the paper's model is namespace-free).
type Axis int

// Supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisParent
	AxisAncestor
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
	AxisAttribute
	AxisSelf
	AxisDescendantOrSelf
	AxisAncestorOrSelf
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"parent":             AxisParent,
	"ancestor":           AxisAncestor,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
	"following":          AxisFollowing,
	"preceding":          AxisPreceding,
	"attribute":          AxisAttribute,
	"self":               AxisSelf,
	"descendant-or-self": AxisDescendantOrSelf,
	"ancestor-or-self":   AxisAncestorOrSelf,
}

// String returns the axis name as written in expressions.
func (a Axis) String() string {
	for name, ax := range axisNames {
		if ax == a {
			return name
		}
	}
	return fmt.Sprintf("axis(%d)", int(a))
}

// isReverse reports whether the axis is a reverse axis (proximity position
// counts backwards in document order).
func (a Axis) isReverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPreceding, AxisPrecedingSibling:
		return true
	default:
		return false
	}
}

// nodeTestKind discriminates node tests.
type nodeTestKind int

const (
	testName     nodeTestKind = iota // QName
	testWildcard                     // *
	testText                         // text()
	testComment                      // comment()
	testPI                           // processing-instruction()
	testNode                         // node()
)

// nodeTest is a step's node test.
type nodeTest struct {
	kind nodeTestKind
	name string // for testName
}

func (nt nodeTest) String() string {
	switch nt.kind {
	case testName:
		return nt.name
	case testWildcard:
		return "*"
	case testText:
		return "text()"
	case testComment:
		return "comment()"
	case testPI:
		return "processing-instruction()"
	default:
		return "node()"
	}
}

// expr is a compiled XPath expression node.
type expr interface {
	eval(ctx *evalCtx) (Value, error)
	String() string
}

// step is one location step: axis::test[pred]...
type step struct {
	axis  Axis
	test  nodeTest
	preds []expr
}

func (s step) String() string {
	var b strings.Builder
	b.WriteString(s.axis.String())
	b.WriteString("::")
	b.WriteString(s.test.String())
	for _, p := range s.preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// pathExpr is a location path: optionally absolute, optionally rooted in a
// filter expression (e.g. "(..)/x" or "$v/x" are modeled with base != nil).
type pathExpr struct {
	absolute bool
	base     expr // nil for plain location paths
	steps    []step
}

func (p *pathExpr) String() string {
	var b strings.Builder
	if p.base != nil {
		b.WriteString(p.base.String())
	} else if p.absolute {
		b.WriteString("/")
	}
	for i, s := range p.steps {
		if i > 0 || p.base != nil {
			b.WriteString("/")
		}
		b.WriteString(s.String())
	}
	if p.absolute && len(p.steps) == 0 && p.base == nil {
		return "/"
	}
	return b.String()
}

// filterExpr is a primary expression with predicates: primary[pred]...
type filterExpr struct {
	primary expr
	preds   []expr
}

func (f *filterExpr) String() string {
	var b strings.Builder
	b.WriteString(f.primary.String())
	for _, p := range f.preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// binaryOp enumerates binary operators.
type binaryOp int

const (
	opOr binaryOp = iota
	opAnd
	opEq
	opNeq
	opLt
	opLeq
	opGt
	opGeq
	opPlus
	opMinus
	opMul
	opDiv
	opMod
	opUnion
)

func (o binaryOp) String() string {
	switch o {
	case opOr:
		return "or"
	case opAnd:
		return "and"
	case opEq:
		return "="
	case opNeq:
		return "!="
	case opLt:
		return "<"
	case opLeq:
		return "<="
	case opGt:
		return ">"
	case opGeq:
		return ">="
	case opPlus:
		return "+"
	case opMinus:
		return "-"
	case opMul:
		return "*"
	case opDiv:
		return "div"
	case opMod:
		return "mod"
	case opUnion:
		return "|"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// binaryExpr applies a binary operator.
type binaryExpr struct {
	op   binaryOp
	l, r expr
}

func (b *binaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.l, b.op, b.r)
}

// negExpr is unary minus.
type negExpr struct{ e expr }

func (n *negExpr) String() string { return fmt.Sprintf("-(%s)", n.e) }

// numberLit is a numeric literal. The original lexeme is kept for
// rendering: XPath's number grammar has no exponent notation, and extreme
// literals can overflow to +Inf, which only the source text can express.
type numberLit struct {
	val  float64
	text string
}

func (n numberLit) String() string { return n.text }

// stringLit is a string literal.
type stringLit string

// String renders the literal. XPath 1.0 has no escape sequences in string
// literals, so the quote style is chosen to avoid the content (a literal
// can never contain both kinds — the grammar cannot express one).
func (s stringLit) String() string {
	if strings.Contains(string(s), `"`) {
		return "'" + string(s) + "'"
	}
	return `"` + string(s) + `"`
}

// varRef references a variable binding.
type varRef string

func (v varRef) String() string { return "$" + string(v) }

// funcCall calls a core library function.
type funcCall struct {
	name string
	fn   *function
	args []expr
}

func (f *funcCall) String() string {
	parts := make([]string, len(f.args))
	for i, a := range f.args {
		parts[i] = a.String()
	}
	return f.name + "(" + strings.Join(parts, ", ") + ")"
}
