// SecurityFor cache behavior: the cross-request mask memo is shared per
// (user, snapshot), replaced when the snapshot moves, reset when the user
// population outgrows the cap, and never poisoned by matcher errors.
// White-box (package rewrite) so the tests can inspect the cache entries
// and pre-seed the shared memo to prove reads actually come from it.
package rewrite

import (
	"fmt"
	"sync"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

func securityForDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(
		"<patients><p0><service>oncology</service><diagnosis>flu</diagnosis></p0></patients>",
		xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func userVars(user string) xpath.Vars {
	return xpath.Vars{"USER": xpath.String(user)}
}

func findLabeled(d *xmltree.Document, label string) *xmltree.Node {
	var out *xmltree.Node
	d.Root().Walk(func(n *xmltree.Node) bool {
		if out == nil && n.Label() == label {
			out = n
		}
		return out == nil
	})
	return out
}

// TestSecurityForSharesMemoPerUserAndSnapshot: two calls for the same
// (user, snapshot) hit one cache entry, and the second call reads masks
// from the shared memo rather than re-running the rule sweep — proven by
// seeding the memo with a deliberately wrong mask between the calls.
func TestSecurityForSharesMemoPerUserAndSnapshot(t *testing.T) {
	h := testHierarchy(t)
	eng := NewEngine(singleRulePolicy(t, h, "//service"), h)
	pg, _ := eng.ProgramFor("laporte")
	if pg == nil {
		t.Fatal("chain-only profile fell back")
	}
	d := securityForDoc(t)
	svc := findLabeled(d, "service")
	if svc == nil {
		t.Fatal("no service node")
	}

	sec1, st1 := pg.SecurityFor("laporte", userVars("laporte"), d)
	if !sec1.Visible(svc) {
		t.Fatal("service should be visible under the accept-read rule")
	}
	if err := st1.Err(); err != nil {
		t.Fatal(err)
	}

	pg.secMu.Lock()
	e := pg.secs["laporte"]
	pg.secMu.Unlock()
	if e == nil || e.snap != d {
		t.Fatal("cache entry missing or keyed to the wrong snapshot")
	}
	if _, ok := e.memo.Load(svc); !ok {
		t.Fatal("first evaluation did not populate the shared memo")
	}

	// Poison the shared memo: if the second call consults it (as it must),
	// the node turns invisible; if it re-ran the rule sweep the poison
	// would be overwritten and the node would stay visible.
	e.memo.Store(svc, uint8(0))
	sec2, _ := pg.SecurityFor("laporte", userVars("laporte"), d)
	if sec2.Visible(svc) {
		t.Fatal("second call re-computed the mask: memo is not shared across calls")
	}
}

// TestSecurityForInvalidatesOnSnapshotMove: a new document pointer replaces
// the user's entry wholesale; stale masks from the old snapshot are gone.
func TestSecurityForInvalidatesOnSnapshotMove(t *testing.T) {
	h := testHierarchy(t)
	eng := NewEngine(singleRulePolicy(t, h, "//service"), h)
	pg, _ := eng.ProgramFor("laporte")
	if pg == nil {
		t.Fatal("chain-only profile fell back")
	}
	d1 := securityForDoc(t)
	sec, _ := pg.SecurityFor("laporte", userVars("laporte"), d1)
	sec.Visible(d1.RootElement())

	pg.secMu.Lock()
	e1 := pg.secs["laporte"]
	pg.secMu.Unlock()

	d2 := d1.Clone()
	pg.SecurityFor("laporte", userVars("laporte"), d2)
	pg.secMu.Lock()
	e2 := pg.secs["laporte"]
	pg.secMu.Unlock()
	if e2 == e1 {
		t.Fatal("snapshot moved but the cache entry was reused")
	}
	if e2.snap != d2 {
		t.Fatalf("entry snap = %p, want %p", e2.snap, d2)
	}
}

// TestSecurityForErrorNotMemoized: a matcher error (unbound $USER) reports
// through the per-call EvalState and leaves no mask behind, so a later
// correct call is not served a poisoned zero.
func TestSecurityForErrorNotMemoized(t *testing.T) {
	h := testHierarchy(t)
	p := policy.New()
	err := p.Add(h, policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "/patients/*[name() = $USER]//node()", Subject: "staff", Priority: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, reason := NewEngine(p, h).ProgramFor("laporte")
	if pg == nil {
		t.Fatalf("profile fell back: %v", reason)
	}
	d := securityForDoc(t)
	svc := findLabeled(d, "service")
	if svc == nil {
		t.Fatal("no service node")
	}

	// First call binds no variables, so every matcher errors; the mask for
	// svc must NOT enter the shared memo as a bogus zero.
	sec, st := pg.SecurityFor("p0", xpath.Vars{}, d)
	sec.Visible(svc)
	if st.Err() == nil {
		t.Fatal("unbound $USER should surface a matcher error")
	}
	pg.secMu.Lock()
	e := pg.secs["p0"]
	pg.secMu.Unlock()
	if _, ok := e.memo.Load(svc); ok {
		t.Fatal("errored evaluation must not memoize a mask")
	}

	// Same user, same snapshot — same entry. With $USER bound, the rule
	// matches p0's descendants, so svc is visible; a memoized zero from the
	// errored call would wrongly hide it.
	sec2, st2 := pg.SecurityFor("p0", userVars("p0"), d)
	if !sec2.Visible(svc) {
		t.Fatal("p0 should see the contents of its own subtree")
	}
	if err := st2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSecurityForCacheReset: the user map never exceeds the cap; crossing
// it resets the cache instead of evicting piecewise.
func TestSecurityForCacheReset(t *testing.T) {
	h := testHierarchy(t)
	eng := NewEngine(singleRulePolicy(t, h, "//service"), h)
	pg, _ := eng.ProgramFor("laporte")
	if pg == nil {
		t.Fatal("chain-only profile fell back")
	}
	d := securityForDoc(t)
	for i := 0; i <= secCacheCap; i++ {
		u := fmt.Sprintf("u%d", i)
		pg.SecurityFor(u, userVars(u), d)
		pg.secMu.Lock()
		n := len(pg.secs)
		pg.secMu.Unlock()
		if n > secCacheCap {
			t.Fatalf("cache grew to %d entries, cap is %d", n, secCacheCap)
		}
	}
	pg.secMu.Lock()
	n := len(pg.secs)
	pg.secMu.Unlock()
	if n != 1 {
		t.Fatalf("after crossing the cap the cache should hold only the newest user, got %d", n)
	}
}

// TestSecurityForConcurrent: many goroutines share one (user, snapshot)
// memo; run under -race this pins the sync.Map discipline.
func TestSecurityForConcurrent(t *testing.T) {
	h := testHierarchy(t)
	eng := NewEngine(singleRulePolicy(t, h, "//service"), h)
	pg, _ := eng.ProgramFor("laporte")
	if pg == nil {
		t.Fatal("chain-only profile fell back")
	}
	d := securityForDoc(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sec, st := pg.SecurityFor("laporte", userVars("laporte"), d)
				d.Root().Walk(func(n *xmltree.Node) bool {
					sec.Visible(n)
					sec.Label(n)
					return true
				})
				if err := st.Err(); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
}
