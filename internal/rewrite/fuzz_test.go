// FuzzRewrite: random (policy seed, query text) pairs must either classify
// as a fallback (with a truthful reason) or agree with the materialized
// view node-for-node — the same contract the differential oracle checks,
// under coverage-guided input generation instead of a fixed corpus.
package rewrite_test

import (
	"testing"

	"securexml/internal/rewrite"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xpath"
)

func FuzzRewrite(f *testing.F) {
	seeds := []struct {
		seed  int64
		query string
	}{
		{1, "//diagnosis"},
		{2, "/patients/*[name() = $USER]/descendant-or-self::node()"},
		{3, "count(//*[name() = 'RESTRICTED'])"},
		{4, "/patients/*[2]"},
		{5, "//service/preceding-sibling::*"},
	}
	for _, s := range seeds {
		f.Add(s.seed, s.query)
	}
	f.Fuzz(func(t *testing.T, seed int64, query string) {
		if seed < 0 {
			seed = -seed
		}
		d, err := workload.Hospital(workload.HospitalConfig{Patients: 3, RecordsPerPatient: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		h, err := workload.HospitalHierarchy(3)
		if err != nil {
			t.Fatal(err)
		}
		p, err := randomPolicy(h, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := xpath.Compile(query); err != nil {
			return // invalid query: every tier rejects it identically
		}
		eng := rewrite.NewEngine(p, h)
		for _, u := range []string{"beaufort", "laporte", "p0", "p1"} {
			pg, reason := eng.ProgramFor(u)
			if pg == nil {
				// A fallback must carry the fragment reason; nothing to
				// compare — the qfilter/view tiers own this profile.
				if reason != rewrite.ReasonRuleFragment {
					t.Fatalf("user %s: nil program with reason %v", u, reason)
				}
				continue
			}
			got, reason, err := rewriteAnswer(pg, d.Root(), u, query)
			if err != nil {
				t.Fatalf("user %s: plan error on a compilable query: %v", u, err)
			}
			if reason == rewrite.ReasonEvalError {
				continue // counted fallback: the lower tiers answer
			}
			pm, err := p.Evaluate(d, h, u)
			if err != nil {
				t.Fatal(err)
			}
			want, err := viewAnswer(view.Materialize(d, pm), u, query)
			if err != nil {
				t.Fatalf("user %s query %q: view eval failed (%v) but rewrite served %v", u, query, err, got)
			}
			if len(got) != len(want) {
				t.Fatalf("user %s query %q: rewrite %v, view %v", u, query, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("user %s query %q row %d: rewrite %q, view %q", u, query, i, got[i], want[i])
				}
			}
		}
	})
}
