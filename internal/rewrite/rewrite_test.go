// Fragment-classification tables: which rule shapes compile to a rewrite
// program and which force a counted fallback, and which query shapes each
// plan mode classifies. White-box (package rewrite) so the PlanTransparent
// execution path — unreachable through the conservative classifier, see
// Program.checkTransparent — stays covered.
package rewrite

import (
	"testing"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

func testHierarchy(t *testing.T) *subject.Hierarchy {
	t.Helper()
	h := subject.NewHierarchy()
	for _, err := range []error{
		h.AddRole("staff"),
		h.AddRole("doctor", "staff"),
		h.AddUser("laporte", "doctor"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// singleRulePolicy wraps one accept-read rule for staff.
func singleRulePolicy(t *testing.T, h *subject.Hierarchy, path string) *policy.Policy {
	t.Helper()
	p := policy.New()
	err := p.Add(h, policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: path, Subject: "staff", Priority: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRuleFragmentTable: every supported rule shape yields a program; every
// unsupported one yields the rule_fragment fallback. The boundary is the
// chain-only NodeMatcher fragment — membership decidable from the
// root-to-node chain alone.
func TestRuleFragmentTable(t *testing.T) {
	cases := []struct {
		path       string
		rewritable bool
	}{
		// Supported: rooted child/attribute/descendant chains with
		// self-contained predicates.
		{"/patients", true},
		{"/patients/*/record", true},
		{"//service", true},
		{"//diagnosis/node()", true},
		{"//text()", true},
		{"//@*", true},
		{"/patients/@id", true},
		{"//record[starts-with(name(), 'rec')]", true},
		{"/patients/*[name() = $USER]", true},
		{"/patients/*[name() = $USER]/descendant-or-self::node()", true},
		{"/descendant-or-self::node()", true},
		{"/patients/self::node()", true},
		// Unsupported: positional and location-path predicates need sibling
		// or subtree context beyond the chain; reverse and sideways axes
		// leave the downward fragment entirely.
		{"/patients/*[1]", false},
		{"/patients/*[last()]", false},
		{"/patients/*[position() < 2]", false},
		{"//record[note]", false},
		{"/patients/*[name() = $USER]/record[note]", false},
		{"//diagnosis/..", false},
		{"//diagnosis/following-sibling::*", false},
		{"//service/preceding-sibling::*", false},
		{"//diagnosis/ancestor::*", false},
	}
	h := testHierarchy(t)
	for _, tc := range cases {
		eng := NewEngine(singleRulePolicy(t, h, tc.path), h)
		pg, reason := eng.ProgramFor("laporte")
		if tc.rewritable && pg == nil {
			t.Errorf("rule %s: fell back (%v), want rewritable", tc.path, reason)
		}
		if !tc.rewritable {
			if pg != nil {
				t.Errorf("rule %s: compiled to a program, want rule_fragment fallback", tc.path)
			} else if reason != ReasonRuleFragment {
				t.Errorf("rule %s: reason %v, want %v", tc.path, reason, ReasonRuleFragment)
			}
		}
	}
}

// TestOneBadRulePoisonsProfile: a single out-of-fragment read rule makes
// the whole profile fall back — a partial axiom-14 merge would be unsound —
// while the same rule on a write privilege is ignored entirely.
func TestOneBadRulePoisonsProfile(t *testing.T) {
	h := testHierarchy(t)
	for _, tc := range []struct {
		priv       policy.Privilege
		rewritable bool
	}{
		{policy.Read, false},
		{policy.Position, false},
		{policy.Insert, true},
		{policy.Update, true},
		{policy.Delete, true},
	} {
		p := singleRulePolicy(t, h, "//service")
		err := p.Add(h, policy.Rule{
			Effect: policy.Accept, Privilege: tc.priv,
			Path: "/patients/*[1]", Subject: "doctor", Priority: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		pg, reason := NewEngine(p, h).ProgramFor("laporte")
		if tc.rewritable && pg == nil {
			t.Errorf("positional %s rule: fell back (%v), want rewritable (write rules are irrelevant to reads)",
				tc.priv, reason)
		}
		if !tc.rewritable && pg != nil {
			t.Errorf("positional %s rule: compiled to a program, want whole-profile fallback", tc.priv)
		}
	}
}

// TestPlanModeTable classifies query shapes against a policy whose only
// grant is read on //service.
func TestPlanModeTable(t *testing.T) {
	h := testHierarchy(t)
	eng := NewEngine(singleRulePolicy(t, h, "//service"), h)
	pg, _ := eng.ProgramFor("laporte")
	if pg == nil {
		t.Fatal("chain-only profile fell back")
	}
	cases := []struct {
		query string
		mode  PlanMode
	}{
		// No word of these patterns ends in "service": statically empty.
		{"//diagnosis", PlanEmpty},
		{"/patients", PlanEmpty},
		{"//diagnosis/text()", PlanEmpty},
		// An inexact query pattern can still prove emptiness — both sides
		// over-approximate, so an empty intersection is conclusive.
		{"/patients/*[name() = $USER]/record", PlanEmpty},
		// These could reach a service word (or the root, which is always
		// visible), so they must run guarded.
		{"//service", PlanGuarded},
		{"/patients/*/service", PlanGuarded},
		{"/", PlanGuarded},
		{"//node()", PlanGuarded},
		// Function calls and reverse axes have no downward shape: the
		// universal over-approximation shares words with everything.
		{"count(//diagnosis)", PlanGuarded},
		{"//diagnosis/..", PlanGuarded},
	}
	for _, tc := range cases {
		pl, err := pg.PlanFor(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if pl.Mode != tc.mode {
			t.Errorf("query %s: mode %v, want %v", tc.query, pl.Mode, tc.mode)
		}
	}
}

// TestPlanEmptyWithoutAccepts: a profile with only deny rules can see
// nothing below the root, so every non-root path query is statically empty.
func TestPlanEmptyWithoutAccepts(t *testing.T) {
	h := testHierarchy(t)
	p := policy.New()
	err := p.Add(h, policy.Rule{
		Effect: policy.Deny, Privilege: policy.Read,
		Path: "//service", Subject: "staff", Priority: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := NewEngine(p, h).ProgramFor("laporte")
	if pg == nil {
		t.Fatal("deny-only profile fell back")
	}
	for _, q := range []string{"//service", "/patients", "//node()"} {
		pl, err := pg.PlanFor(q)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Mode != PlanEmpty {
			t.Errorf("query %s: mode %v, want empty (no accept rules)", q, pl.Mode)
		}
	}
}

// TestPlanTransparentExecution covers the transparent execution path
// directly: the classifier never produces it (attribute-descendant words
// are uncovered by any exact pattern family, see checkTransparent), but
// the plan machinery must still serve it correctly if it ever fires.
func TestPlanTransparentExecution(t *testing.T) {
	d, err := xmltree.ParseString("<patients><p0><service>oncology</service></p0></patients>", xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pg := &Program{transparent: true, plans: make(map[string]*Plan)}
	pl, err := pg.PlanFor("//service")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Mode != PlanTransparent {
		t.Fatalf("mode %v, want transparent", pl.Mode)
	}
	ns, err := pl.Select(d.Root(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].Label() != "service" {
		t.Fatalf("transparent select: got %d nodes, want the raw answer", len(ns))
	}
	if !pg.Transparent() {
		t.Error("Transparent() = false on a transparent program")
	}
}

// TestProgramSharing: users with the same applicable rules share one
// program (and so one plan cache) — $USER stays a runtime variable.
func TestProgramSharing(t *testing.T) {
	h := subject.NewHierarchy()
	for _, err := range []error{
		h.AddRole("patient"),
		h.AddUser("p0", "patient"),
		h.AddUser("p1", "patient"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	p := policy.New()
	err := p.Add(h, policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "/patients/*[name() = $USER]/descendant-or-self::node()", Subject: "patient", Priority: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p, h)
	pg0, _ := eng.ProgramFor("p0")
	pg1, _ := eng.ProgramFor("p1")
	if pg0 == nil || pg1 == nil {
		t.Fatal("patient profile fell back")
	}
	if pg0 != pg1 {
		t.Error("p0 and p1 hold distinct programs; profiles must be shared")
	}
	if rules := pg0.Rules(); len(rules) != 1 {
		t.Errorf("Rules() = %v, want the one patient rule", rules)
	}
}

// TestFallbackCounters: CountFallback moves exactly the per-reason counter;
// ReasonNone and out-of-range values move nothing.
func TestFallbackCounters(t *testing.T) {
	frag := obs.Default().Counter("xmlsec_rewrite_fallback_total", "reason", "rule_fragment")
	evalErr := obs.Default().Counter("xmlsec_rewrite_fallback_total", "reason", "eval_error")
	nsVal := obs.Default().Counter("xmlsec_rewrite_fallback_total", "reason", "nodeset_value")
	f0, e0, n0 := frag.Value(), evalErr.Value(), nsVal.Value()
	CountFallback(ReasonRuleFragment)
	CountFallback(ReasonNodeSetValue)
	CountFallback(ReasonNone)
	CountFallback(Reason(99))
	if d := frag.Value() - f0; d != 1 {
		t.Errorf("rule_fragment moved by %d, want 1", d)
	}
	if d := evalErr.Value() - e0; d != 0 {
		t.Errorf("eval_error moved by %d, want 0", d)
	}
	if d := nsVal.Value() - n0; d != 1 {
		t.Errorf("nodeset_value moved by %d, want 1", d)
	}
}

// TestEnumLabels pins the telemetry labels and diagnostic strings.
func TestEnumLabels(t *testing.T) {
	reasons := map[Reason]string{
		ReasonNone: "none", ReasonRuleFragment: "rule_fragment",
		ReasonEvalError: "eval_error", ReasonNodeSetValue: "nodeset_value",
		Reason(99): "unknown",
	}
	for r, want := range reasons {
		if r.String() != want || r.MetricLabel() != want {
			t.Errorf("reason %d: %q/%q, want %q", int(r), r.String(), r.MetricLabel(), want)
		}
	}
	modes := map[PlanMode]string{
		PlanGuarded: "guarded", PlanTransparent: "transparent",
		PlanEmpty: "empty", PlanMode(99): "unknown",
	}
	for m, want := range modes {
		if m.String() != want {
			t.Errorf("mode %d: %q, want %q", int(m), m.String(), want)
		}
	}
}

// TestGuardedSecurityRestriction spot-checks the chain-derived filter
// itself: position-only nodes are visible as RESTRICTED, unreadable
// subtrees disappear, and the document node survives everything (axioms
// 15–17 without a view).
func TestGuardedSecurityRestriction(t *testing.T) {
	d, err := xmltree.ParseString(
		"<patients><p0><service>oncology</service><diagnosis>flu</diagnosis></p0></patients>",
		xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := testHierarchy(t)
	p := policy.New()
	for i, r := range []policy.Rule{
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/descendant-or-self::node()", Subject: "staff"},
		{Effect: policy.Deny, Privilege: policy.Read, Path: "//service", Subject: "staff"},
		{Effect: policy.Accept, Privilege: policy.Position, Path: "//service", Subject: "staff"},
		{Effect: policy.Deny, Privilege: policy.Read, Path: "//diagnosis", Subject: "staff"},
		{Effect: policy.Deny, Privilege: policy.Position, Path: "//diagnosis", Subject: "staff"},
	} {
		r.Priority = int64(10 + i)
		if err := p.Add(h, r); err != nil {
			t.Fatal(err)
		}
	}
	pg, _ := NewEngine(p, h).ProgramFor("laporte")
	if pg == nil {
		t.Fatal("profile fell back")
	}
	sec, st := pg.Security(xpath.Vars{"USER": xpath.String("laporte")})
	var restricted, hidden, kept int
	for _, n := range d.Nodes() {
		switch {
		case !sec.IsVisible(n):
			hidden++
		case sec.EffectiveLabel(n) == xmltree.Restricted:
			restricted++
		default:
			kept++
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	// Per-node masks: service is position-only (RESTRICTED), the diagnosis
	// element is hidden; its text child is readable *per-node* (only the
	// blanket accept matches it) — hereditary hiding is the evaluator's
	// job, which never descends below an invisible node.
	if restricted != 1 || hidden != 1 || kept != 5 {
		t.Errorf("restricted=%d hidden=%d kept=%d, want 1/1/5", restricted, hidden, kept)
	}
	if !sec.IsVisible(d.Root()) || sec.EffectiveLabel(d.Root()) != d.Root().Label() {
		t.Error("document node must stay visible with its own label")
	}
	// Hereditary hiding through traversal: the readable text below the
	// hidden diagnosis element is unreachable by a guarded evaluation.
	pl, err := pg.PlanFor("//diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	sec2, st2 := pg.Security(xpath.Vars{"USER": xpath.String("laporte")})
	ns, err := pl.Select(d.Root(), xpath.Vars{"USER": xpath.String("laporte")}, sec2)
	if err != nil || st2.Err() != nil {
		t.Fatalf("guarded select: %v / %v", err, st2.Err())
	}
	if len(ns) != 0 {
		t.Errorf("text below a hidden element leaked: %d nodes", len(ns))
	}
}
