// Metamorphic properties of the rewriter — relations that must hold
// between answers without knowing any answer's expected value:
//
//  1. idempotence: rewriting is a fixpoint. Re-planning the same query
//     (cached or from a freshly built engine) yields the same
//     classification and the identical answer — a rewritten query
//     rewritten again is itself.
//  2. full privilege: for a profile that reads everything, the rewritten
//     answer equals the raw query over the unfiltered source document.
//  3. narrowing: appending deny rules (the shape PR 8's repair engine
//     emits) never grows a rewritten answer's node-set, for positive
//     label-test-free queries.
package rewrite_test

import (
	"fmt"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/rewrite"
	"securexml/internal/subject"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// metaAnswer evaluates q for user and renders it, failing the test on any
// error or fallback: metamorphic inputs are all chosen inside the fragment.
func metaAnswer(t *testing.T, eng *rewrite.Engine, root *xmltree.Node, user, q string) []string {
	t.Helper()
	pg, reason := eng.ProgramFor(user)
	if pg == nil {
		t.Fatalf("user %s: unexpected fallback (%v)", user, reason)
	}
	rows, reason, err := rewriteAnswer(pg, root, user, q)
	if err != nil {
		t.Fatalf("user %s query %s: %v", user, q, err)
	}
	if reason != rewrite.ReasonNone {
		t.Fatalf("user %s query %s: unexpected fallback (%v)", user, q, reason)
	}
	return rows
}

// TestRewriteIdempotent: same policy, same query — same plan mode, same
// answer, whether the plan is served from the cache (second PlanFor on one
// engine returns the same plan) or rebuilt from scratch on a second engine.
func TestRewriteIdempotent(t *testing.T) {
	for _, kind := range []string{"paper", "scaled"} {
		d, h, p := roEnv(t, 1, kind)
		e1 := rewrite.NewEngine(p, h)
		e2 := rewrite.NewEngine(p, h)
		for _, u := range h.Users() {
			pg1, _ := e1.ProgramFor(u)
			pg2, _ := e2.ProgramFor(u)
			if pg1 == nil || pg2 == nil {
				t.Fatalf("%s user %s: unexpected fallback", kind, u)
			}
			for _, q := range roQueries {
				pl1, err := pg1.PlanFor(q)
				if err != nil {
					t.Fatal(err)
				}
				pl1again, err := pg1.PlanFor(q)
				if err != nil {
					t.Fatal(err)
				}
				if pl1again != pl1 {
					t.Errorf("%s user %s query %s: re-planning did not hit the plan cache", kind, u, q)
				}
				pl2, err := pg2.PlanFor(q)
				if err != nil {
					t.Fatal(err)
				}
				if pl1.Mode != pl2.Mode {
					t.Errorf("%s user %s query %s: mode %v vs %v across engines", kind, u, q, pl1.Mode, pl2.Mode)
				}
				a1 := metaAnswer(t, e1, d.Root(), u, q)
				a2 := metaAnswer(t, e2, d.Root(), u, q)
				if fmt.Sprint(a1) != fmt.Sprint(a2) {
					t.Errorf("%s user %s query %s:\n first:  %v\n second: %v", kind, u, q, a1, a2)
				}
			}
		}
	}
}

// fullReadPolicy grants read on every node — elements, text, attributes and
// attribute values — to the given subjects.
func fullReadPolicy(t *testing.T, h *subject.Hierarchy, subjects ...string) *policy.Policy {
	t.Helper()
	p := policy.New()
	prio := int64(10)
	for _, subj := range subjects {
		for _, path := range []string{
			"/descendant-or-self::node()",
			"//@*",
			"//@*/descendant-or-self::node()",
		} {
			err := p.Add(h, policy.Rule{
				Effect: policy.Accept, Privilege: policy.Read,
				Path: path, Subject: subj, Priority: prio,
			})
			if err != nil {
				t.Fatal(err)
			}
			prio++
		}
	}
	return p
}

// TestRewriteFullPrivilegeIdentity: under a policy that grants read on
// everything, the rewritten answer of every query equals the raw query
// over the unfiltered source document — the enforcement layer vanishes.
func TestRewriteFullPrivilegeIdentity(t *testing.T) {
	d, h, _ := roEnv(t, 2, "paper")
	p := fullReadPolicy(t, h, "staff", "patient")
	eng := rewrite.NewEngine(p, h)
	for _, u := range []string{"laporte", "beaufort", "p0"} {
		for _, q := range append(append([]string{}, roQueries...), roValueQueries...) {
			got := metaAnswer(t, eng, d.Root(), u, q)
			c, err := xpath.Compile(q)
			if err != nil {
				t.Fatal(err)
			}
			val, err := c.Eval(d.Root(), xpath.Vars{"USER": xpath.String(u)})
			if err != nil {
				t.Fatal(err)
			}
			want := renderValue(val, nil)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("user %s query %s:\n rewritten: %v\n raw:       %v", u, q, got, want)
			}
		}
	}
}

// TestTransparencyStaysConservative pins the classifier's attribute
// frontier: even the full-read policy is not classified PlanTransparent,
// because transparency quantifies over all root-to-node words — including
// attribute-descendant words no exact pattern family can cover — so the
// identity above is reached through guarded evaluation, never by skipping
// the filter on a hunch.
func TestTransparencyStaysConservative(t *testing.T) {
	_, h, _ := roEnv(t, 1, "paper")
	p := fullReadPolicy(t, h, "staff")
	eng := rewrite.NewEngine(p, h)
	pg, _ := eng.ProgramFor("laporte")
	if pg == nil {
		t.Fatal("full-read profile fell back")
	}
	if pg.Transparent() {
		t.Error("full-read profile classified transparent; the word search must keep covering attribute-descendant words")
	}
}

// narrowQueries are positive (no not(), no RESTRICTED label tests)
// queries, for which hiding or restricting more nodes can only shrink the
// answer. Label tests on RESTRICTED and negated predicates are excluded by
// design: substitution can legitimately grow those answers.
var narrowQueries = []string{
	"/patients",
	"/patients/node()",
	"//node()",
	"//text()",
	"/patients/descendant-or-self::node()",
	"//record",
	"//diagnosis",
	"//service/text()",
	"/patients/*[name() = $USER]",
}

// metaIDs extracts the source-identifier column of an answer's rows.
func metaIDs(t *testing.T, eng *rewrite.Engine, root *xmltree.Node, user, q string) map[string]bool {
	t.Helper()
	pg, reason := eng.ProgramFor(user)
	if pg == nil {
		t.Fatalf("user %s: unexpected fallback (%v)", user, reason)
	}
	pl, err := pg.PlanFor(q)
	if err != nil {
		t.Fatal(err)
	}
	vars := xpath.Vars{"USER": xpath.String(user)}
	var sec *xpath.Security
	if pl.Mode == rewrite.PlanGuarded {
		sec, _ = pg.Security(vars)
	}
	if pl.Mode == rewrite.PlanEmpty {
		return map[string]bool{}
	}
	ns, err := pl.Select(root, vars, sec)
	if err != nil {
		t.Fatalf("user %s query %s: %v", user, q, err)
	}
	ids := make(map[string]bool, len(ns))
	for _, n := range ns {
		ids[n.ID().String()] = true
	}
	return ids
}

// TestRewriteNarrowingMonotonic: denying more never shows more. For each
// base policy, append high-priority deny read+position rules (the repair
// engine's narrowing shape) and check every rewritten answer's node-set is
// contained in the base answer's.
func TestRewriteNarrowingMonotonic(t *testing.T) {
	denyPaths := []string{"//diagnosis", "/patients/*/record", "//service"}
	for _, seed := range roSeeds {
		d, h, base := roEnv(t, seed, "paper")
		narrowed, err := workload.HospitalPolicy(h)
		if err != nil {
			t.Fatal(err)
		}
		prio := int64(900)
		denyPath := denyPaths[int(seed)%len(denyPaths)]
		for _, subj := range []string{"staff", "patient"} {
			for _, priv := range []policy.Privilege{policy.Read, policy.Position} {
				err := narrowed.Add(h, policy.Rule{
					Effect: policy.Deny, Privilege: priv,
					Path: denyPath, Subject: subj, Priority: prio,
				})
				if err != nil {
					t.Fatal(err)
				}
				prio++
			}
		}
		baseEng := rewrite.NewEngine(base, h)
		narrowEng := rewrite.NewEngine(narrowed, h)
		for _, u := range h.Users() {
			for _, q := range narrowQueries {
				before := metaIDs(t, baseEng, d.Root(), u, q)
				after := metaIDs(t, narrowEng, d.Root(), u, q)
				for id := range after {
					if !before[id] {
						t.Errorf("seed %d deny %s user %s query %s: node %s appears only after narrowing",
							seed, denyPath, u, q, id)
					}
				}
			}
		}
	}
}
