// Differential oracle for the static query rewriter: for every user and
// every query of a corpus spanning the supported fragment and beyond it,
// the rewrite engine's answer over the *source* document must equal the
// same query over that user's materialized view (view.Materialize, axioms
// 15–17) node-for-node — source identifiers, effective labels, view paths
// and filtered string-values — for the paper policy, the scaled policy and
// seeded random 4-quadrant policies, across documents mutated by seeded
// workload.OpStream sequences. The engine is deliberately built once per
// run and never rebuilt: its plans are document-independent, so surviving
// sixty mutations unchanged is part of the property under test. On
// mismatch the op sequence is greedily minimized, PR 4/5 style.
//
// External test package: the oracle drives the engine purely through its
// exported surface, the same way internal/core does.
package rewrite_test

import (
	"fmt"
	"strings"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/rewrite"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

const (
	roPatients   = 6
	roRecords    = 2
	roOps        = 60
	roCheckEvery = 10
)

var (
	roSeeds = []int64{1, 2, 3}
	roKinds = []string{"paper", "scaled", "random"}
)

// roQueries covers names, wildcards, text tests, predicates, positional
// predicates, reverse and sideways axes, $USER dependence — including
// RESTRICTED-label node tests, which only an enforcement-aware evaluation
// can answer like the view does.
var roQueries = []string{
	"/patients",
	"/patients/*",
	"/patients/node()",
	"//diagnosis",
	"//diagnosis/text()",
	"//service/text()",
	"/patients/p0",
	"/patients/RESTRICTED",
	"/patients/RESTRICTED/service",
	"//RESTRICTED",
	"//*[text() = 'RESTRICTED']",
	"//*[service = 'cardiology']",
	"/patients/*[2]",
	"/patients/*[last()]",
	"//diagnosis/..",
	"//text()",
	"//record",
	"//record/node()",
	"//note",
	"/patients/*[name() = $USER]",
	"/patients/*[name() = $USER]/descendant-or-self::node()",
	"/patients/descendant-or-self::node()",
	"//diagnosis/following-sibling::*",
	"//service/preceding-sibling::*",
	"//tonsillitis",
	"//*[starts-with(text(), 'pneu')]",
}

// roValueQueries exercise the non-node-set result types plus one node-set
// valued expression (whose rows are compared like a Select answer).
var roValueQueries = []string{
	"count(//diagnosis)",
	"count(//*)",
	"string(/patients/p0/diagnosis)",
	"string(//RESTRICTED)",
	"name(/patients/*[1])",
	"count(//*[name() = 'RESTRICTED'])",
	"sum(//nothing)",
	"normalize-space(/patients/p1/service)",
	"boolean(//RESTRICTED)",
}

// roEnv builds a fresh document, hierarchy and policy of the given kind
// (mirrors the shared-scan oracle's ssEnv).
func roEnv(t *testing.T, seed int64, kind string) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := workload.Hospital(workload.HospitalConfig{Patients: roPatients, RecordsPerPatient: roRecords, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	h, err := workload.HospitalHierarchy(roPatients)
	if err != nil {
		t.Fatal(err)
	}
	var p *policy.Policy
	switch kind {
	case "paper":
		p, err = workload.HospitalPolicy(h)
	case "scaled":
		p, err = workload.ScaledPolicy(h, 10)
	case "random":
		p, err = randomPolicy(h, seed)
	default:
		t.Fatalf("unknown policy kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

// randomPolicy draws rules from a path pool spanning all four quadrants of
// the rewriter's partition: (chain-only | out-of-fragment) ×
// ($USER-independent | $USER-dependent). Out-of-fragment read/position
// rules force whole profiles onto the fallback path, so the oracle also
// checks the classifier never serves such a profile.
func randomPolicy(h *subject.Hierarchy, seed int64) (*policy.Policy, error) {
	paths := []string{
		"/patients",                            // chain, indep
		"//service",                            // chain, indep
		"//diagnosis/node()",                   // chain, indep
		"/patients/*/record",                   // chain, indep
		"//record[starts-with(name(), 'rec')]", // chain pred, indep
		"/patients/*[name() = $USER]/descendant-or-self::node()", // chain, dep
		"/patients/*[name() = $USER]",                            // chain, dep
		"/patients/*[1]",                                         // positional pred: fallback, indep
		"//record[note]",                                         // location-path pred: fallback, indep
		"/patients/*[name() = $USER]/record[note]",               // fallback, dep
	}
	subjects := []string{"staff", "secretary", "doctor", "patient", "epidemiologist"}
	p := policy.New()
	n := 8 + int(seed%5)
	for i := 0; i < n; i++ {
		k := (int(seed) + i*7) % len(paths)
		eff := policy.Accept
		if (int(seed)+i)%3 == 0 {
			eff = policy.Deny
		}
		r := policy.Rule{
			Effect:    eff,
			Privilege: policy.Privileges[(int(seed)+i)%len(policy.Privileges)],
			Path:      paths[k],
			Subject:   subjects[(int(seed)+i*3)%len(subjects)],
			Priority:  int64(50 + i),
		}
		if err := p.Add(h, r); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// renderNode renders one answer node the way core.Session presents results:
// source identifier, kind, effective label, view path, filtered
// string-value. Nil sec renders stored labels (the view side, whose labels
// are already effective).
func renderNode(n *xmltree.Node, sec *xpath.Security) string {
	return fmt.Sprintf("%s %v %q %s %q",
		n.ID(), n.Kind(), sec.EffectiveLabel(n), sec.Path(n), sec.StringValue(n))
}

// renderValue renders a full answer: one row per node for node-sets, a
// single "type value" row for atomics.
func renderValue(val xpath.Value, sec *xpath.Security) []string {
	if ns, ok := val.(xpath.NodeSet); ok {
		rows := make([]string, len(ns))
		for i, n := range ns {
			rows[i] = renderNode(n, sec)
		}
		return rows
	}
	return []string{val.TypeName() + " " + val.Str()}
}

// rewriteAnswer evaluates q for user through the engine's plan, returning
// the rendered answer or the fallback reason a real caller would count.
func rewriteAnswer(pg *rewrite.Program, root *xmltree.Node, user, q string) ([]string, rewrite.Reason, error) {
	pl, err := pg.PlanFor(q)
	if err != nil {
		return nil, rewrite.ReasonNone, err
	}
	vars := xpath.Vars{"USER": xpath.String(user)}
	var sec *xpath.Security
	var st *rewrite.EvalState
	switch pl.Mode {
	case rewrite.PlanEmpty:
		return nil, rewrite.ReasonNone, nil
	case rewrite.PlanTransparent:
	default:
		sec, st = pg.Security(vars)
	}
	val, err := pl.Eval(root, vars, sec)
	if err != nil || (st != nil && st.Err() != nil) {
		return nil, rewrite.ReasonEvalError, nil
	}
	return renderValue(val, sec), rewrite.ReasonNone, nil
}

// viewAnswer evaluates q over the user's materialized view — the reference
// semantics (axioms 15–17 by construction).
func viewAnswer(v *view.View, user, q string) ([]string, error) {
	c, err := xpath.Compile(q)
	if err != nil {
		return nil, err
	}
	val, err := c.Eval(v.Doc.Root(), xpath.Vars{"USER": xpath.String(user)})
	if err != nil {
		return nil, err
	}
	return renderValue(val, nil), nil
}

// runRewrite replays ops over a fresh environment, diffing the rewrite
// answer against the view answer for every user × query at every
// checkpoint. One engine persists across the whole run — its plans are
// document-independent, which every post-mutation checkpoint re-verifies.
// Returns the index of the op whose checkpoint failed (-1 on success).
func runRewrite(t *testing.T, seed int64, kind string, ops []*xupdate.Op) (int, string) {
	t.Helper()
	d, h, p := roEnv(t, seed, kind)
	eng := rewrite.NewEngine(p, h)
	queries := append(append([]string{}, roQueries...), roValueQueries...)
	check := func() string {
		for _, u := range h.Users() {
			pg, reason := eng.ProgramFor(u)
			if pg == nil {
				if reason != rewrite.ReasonRuleFragment {
					return fmt.Sprintf("user %s: nil program with reason %v", u, reason)
				}
				continue // out-of-fragment profile: the qfilter/view tiers own it
			}
			pm, err := p.Evaluate(d, h, u)
			if err != nil {
				return fmt.Sprintf("evaluate(%s): %v", u, err)
			}
			v := view.Materialize(d, pm)
			for _, q := range queries {
				got, reason, err := rewriteAnswer(pg, d.Root(), u, q)
				if err != nil {
					return fmt.Sprintf("user %s query %s: %v", u, q, err)
				}
				if reason == rewrite.ReasonEvalError {
					continue // counted fallback: the lower tiers answer
				}
				want, err := viewAnswer(v, u, q)
				if err != nil {
					return fmt.Sprintf("user %s query %s: view eval failed (%v) but rewrite served", u, q, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					return fmt.Sprintf("user %s query %s:\n rewrite: %v\n view:    %v", u, q, got, want)
				}
			}
		}
		return ""
	}
	if diff := check(); diff != "" {
		return 0, "initial document: " + diff
	}
	for i, op := range ops {
		if _, err := xupdate.Execute(d, op, nil); err != nil {
			return i, fmt.Sprintf("execute: %v", err)
		}
		if (i+1)%roCheckEvery != 0 && i != len(ops)-1 {
			continue
		}
		if diff := check(); diff != "" {
			return i, fmt.Sprintf("after op %d (%s %s): %s", i, op.Kind, op.Select, diff)
		}
	}
	return -1, ""
}

// minimizeRewriteOps greedily drops ops while the sequence still fails.
func minimizeRewriteOps(t *testing.T, seed int64, kind string, ops []*xupdate.Op) []*xupdate.Op {
	t.Helper()
	cur := append([]*xupdate.Op(nil), ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			trial := append(append([]*xupdate.Op(nil), cur[:i]...), cur[i+1:]...)
			if idx, _ := runRewrite(t, seed, kind, trial); idx >= 0 {
				cur = trial
				changed = true
				i--
			}
		}
	}
	return cur
}

func dumpRewriteOps(ops []*xupdate.Op) string {
	var b strings.Builder
	for i, op := range ops {
		fmt.Fprintf(&b, "  %2d: %s select=%q", i, op.Kind, op.Select)
		if op.NewValue != "" {
			fmt.Fprintf(&b, " vnew=%q", op.NewValue)
		}
		if op.Content != nil {
			fmt.Fprintf(&b, " content=%q", op.Content.XML())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestRewriteDifferentialOracle(t *testing.T) {
	for _, kind := range roKinds {
		for _, seed := range roSeeds {
			kind, seed := kind, seed
			t.Run(fmt.Sprintf("%s/seed=%d", kind, seed), func(t *testing.T) {
				d, _, _ := roEnv(t, seed, kind)
				stream := workload.OpStream(workload.OpConfig{Doc: d, Seed: seed})
				var ops []*xupdate.Op
				for i := 0; i < roOps; i++ {
					op, err := stream.Next()
					if err != nil {
						t.Fatal(err)
					}
					ops = append(ops, op)
					if _, err := xupdate.Execute(d, op, nil); err != nil {
						t.Fatalf("generating op %d: %v", i, err)
					}
				}
				if idx, diff := runRewrite(t, seed, kind, ops); idx >= 0 {
					minimized := minimizeRewriteOps(t, seed, kind, ops[:idx+1])
					t.Fatalf("rewrite mismatch at op %d:\n%s\nminimized reproducer (%d ops, %s seed %d):\n%s",
						idx, diff, len(minimized), kind, seed, dumpRewriteOps(minimized))
				}
			})
		}
	}
}

// TestPaperProfilesRewritable pins the fragment boundary on the paper
// policy itself: every axiom-13 rule is chain-only, so no user of the
// hospital scenario ever pays for a view on the read path — and the oracle
// above is not vacuously skipping anyone.
func TestPaperProfilesRewritable(t *testing.T) {
	_, h, p := roEnv(t, 1, "paper")
	eng := rewrite.NewEngine(p, h)
	for _, u := range h.Users() {
		if pg, reason := eng.ProgramFor(u); pg == nil {
			t.Errorf("user %s: fell back (%v); every paper profile is chain-only", u, reason)
		}
	}
}

// TestRandomPoliciesExerciseBothPaths keeps the random-policy oracle
// honest: across the seeds, some profiles must compile and some must fall
// back, or the 4-quadrant pool has stopped covering the partition.
func TestRandomPoliciesExerciseBothPaths(t *testing.T) {
	var compiled, fellBack int
	for _, seed := range roSeeds {
		_, h, p := roEnv(t, seed, "random")
		eng := rewrite.NewEngine(p, h)
		for _, u := range h.Users() {
			if pg, _ := eng.ProgramFor(u); pg != nil {
				compiled++
			} else {
				fellBack++
			}
		}
	}
	if compiled == 0 || fellBack == 0 {
		t.Fatalf("random policies: compiled=%d fellBack=%d, want both > 0", compiled, fellBack)
	}
}
