// Package rewrite implements static read enforcement: it turns the policy
// itself into an executable guard so a user's query runs directly on the
// *source* document — no axiom-14 per-node permission mask, no
// materialized axiom-15–17 view — yet returns exactly the answer the same
// query would produce over that user's view, RESTRICTED substitution and
// hereditary hiding included. This is the approach of Cheney's "Static
// Enforceability of XPath-Based Access Control Policies" and
// Mahfoud–Imine's "A General Approach for Securely Querying and Updating
// XML Data" adapted to the paper's priority-merge semantics (axiom 14).
//
// The supported fragment is the chain-only xpath.NodeMatcher fragment of
// the user's applicable read and position rules: each such rule decides a
// node's membership from the node's root-to-node chain alone, so the
// axiom-14 latest-priority merge for {read, position} can be re-run per
// visited node in O(depth × steps) during evaluation — the per-node
// permission relation never exists as data. Rules for the write privileges
// (insert, update, delete) are irrelevant to reads and never disqualify a
// profile; this is deliberately weaker than the incremental-maintenance
// gate (view.NewMaintainer), which needs *all* applicable rules chain-only.
//
// On top of the guarded evaluation, two genuinely static rewrites are
// decided per (profile, query) with the policy analyzer's word automata
// over xpath.Pattern abstractions (intersection/complement searches):
//
//   - PlanEmpty: the query's pattern shares no root-to-node word with any
//     applicable accept read/position rule and cannot select the document
//     node, so no node the query could ever select is visible — the
//     rewritten query is the empty query. Sound for inexact patterns,
//     because both sides only over-approximate.
//   - PlanTransparent: every possible node's latest-priority read decision
//     is an accept (checked over the pattern alphabet, requiring every
//     applicable read rule to be Exact), so the filter is the identity and
//     the rewritten query is the raw query.
//
// Everything else runs as PlanGuarded. Queries or rules outside the
// fragment, and evaluations that fail at runtime, fall back to the
// qfilter/view paths with per-reason counters (xmlsec_rewrite_fallback_total);
// the fallback is sound because the lower tiers are themselves
// answer-equivalent to the view (internal/qfilter's property tests).
//
// Programs are shared per rule *profile* — the set of applicable read and
// position rules — not per user: $USER stays a runtime variable, so every
// patient shares one program and one plan cache. Engines are built per
// policy epoch (internal/core keys them so), which makes every cache here
// document-independent: a rewritten query survives arbitrary document
// mutations, unlike any per-user view or permission mask.
package rewrite

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// Reason says why a query could not be served by the rewrite tier.
type Reason int

// Fallback reasons. ReasonNone means the query was (or could be) served.
const (
	ReasonNone Reason = iota
	// ReasonRuleFragment: some applicable read/position rule is outside
	// the chain-only NodeMatcher fragment, so per-node re-derivation of
	// the axiom-14 merge is unsound for this profile.
	ReasonRuleFragment
	// ReasonEvalError: a rule matcher or the guarded evaluation itself
	// failed at runtime; the authoritative paths decide the outcome.
	ReasonEvalError
	// ReasonNodeSetValue: a value query produced a non-empty node-set.
	// Handing out raw source nodes would leak hidden labels, so node-set
	// values must come from the materialized view.
	ReasonNodeSetValue
	numReasons
)

// String names the reason.
func (r Reason) String() string { return r.MetricLabel() }

// MetricLabel returns the reason's telemetry label. Every branch returns a
// literal so labels stay compile-time bounded (xmlsec-vet obslabel).
func (r Reason) MetricLabel() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonRuleFragment:
		return "rule_fragment"
	case ReasonEvalError:
		return "eval_error"
	case ReasonNodeSetValue:
		return "nodeset_value"
	default:
		return "unknown"
	}
}

// Telemetry: fallbacks by reason, resolved once.
var fallbackCounters = func() (c [numReasons]*obs.Counter) {
	for r := ReasonNone + 1; r < numReasons; r++ {
		c[r] = obs.Default().Counter("xmlsec_rewrite_fallback_total", "reason", r.MetricLabel())
	}
	return
}()

// CountFallback records one rewrite-tier fallback by reason.
func CountFallback(r Reason) {
	if r > ReasonNone && r < numReasons {
		fallbackCounters[r].Inc()
	}
}

// ruleInfo is the rewriter's compiled form of one read/position rule.
type ruleInfo struct {
	subject  string
	priv     policy.Privilege
	effect   policy.Effect
	priority int64
	usesUser bool
	text     string
	matcher  *xpath.NodeMatcher // nil: outside the chain-only fragment
	pattern  *xpath.Pattern
}

// Engine holds the rewriter's state for one (policy, hierarchy) epoch:
// the compiled read/position rules plus the per-profile program cache.
// Safe for concurrent use; internal/core replaces the whole engine when
// the policy epoch moves, so nothing here ever needs invalidation.
type Engine struct {
	h     *subject.Hierarchy
	rules []ruleInfo // ascending priority (policy.Rules order)

	mu       sync.Mutex
	programs map[string]*Program // by profile key (applicable rule indices)
	users    map[string]*Program // login -> program; nil = fragment fallback
}

// NewEngine compiles the policy's read and position rules for rewriting.
// Rules carrying write privileges are ignored: they cannot influence any
// answer under axioms 15–17.
func NewEngine(p *policy.Policy, h *subject.Hierarchy) *Engine {
	e := &Engine{
		h:        h,
		programs: make(map[string]*Program),
		users:    make(map[string]*Program),
	}
	for _, r := range p.Rules() {
		if r.Privilege != policy.Read && r.Privilege != policy.Position {
			continue
		}
		ri := ruleInfo{
			subject:  r.Subject,
			priv:     r.Privilege,
			effect:   r.Effect,
			priority: r.Priority,
			text:     r.String(),
		}
		// Paths were compiled by policy.Add, so this cannot fail for a
		// well-formed policy; a failure just makes the rule non-chain,
		// which falls back safely.
		if c, err := xpath.Compile(r.Path); err == nil {
			ri.matcher, _ = c.NodeMatcher()
			ri.pattern = c.Pattern()
			ri.usesUser = c.UsesVariable("USER")
		}
		e.rules = append(e.rules, ri)
	}
	return e
}

// ProgramFor returns the shared program for the user's rule profile, or a
// fallback reason when some applicable read/position rule is outside the
// chain-only fragment. Programs are cached per profile, so all users with
// the same applicable rules (e.g. every patient — $USER stays a variable)
// share one program and one plan cache.
func (e *Engine) ProgramFor(user string) (*Program, Reason) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pg, ok := e.users[user]; ok {
		if pg == nil {
			return nil, ReasonRuleFragment
		}
		return pg, ReasonNone
	}
	var idx []int
	for i := range e.rules {
		if e.h.ISA(user, e.rules[i].subject) {
			idx = append(idx, i)
		}
	}
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(',')
	}
	key := b.String()
	pg, ok := e.programs[key]
	if !ok {
		pg = buildProgram(e.rules, idx)
		e.programs[key] = pg
	}
	e.users[user] = pg
	if pg == nil {
		return nil, ReasonRuleFragment
	}
	return pg, ReasonNone
}

// Program is the compiled read-enforcement program of one rule profile:
// the applicable read/position rules in ascending priority, their pattern
// abstractions for static classification, and the per-query plan cache.
type Program struct {
	rules       []ruleInfo
	acceptPats  []*xpath.Pattern // patterns of the accept rules (visibility over-approximation)
	transparent bool

	mu    sync.Mutex
	plans map[string]*Plan

	secMu sync.Mutex
	secs  map[string]*userSec
}

// buildProgram compiles the profile selected by idx, or returns nil when
// any applicable rule lacks a chain-only matcher.
func buildProgram(rules []ruleInfo, idx []int) *Program {
	pg := &Program{plans: make(map[string]*Plan)}
	for _, i := range idx {
		if rules[i].matcher == nil {
			return nil
		}
		pg.rules = append(pg.rules, rules[i])
	}
	for i := range pg.rules {
		if pg.rules[i].effect == policy.Accept {
			pg.acceptPats = append(pg.acceptPats, pg.rules[i].pattern)
		}
	}
	pg.transparent = pg.checkTransparent()
	return pg
}

// Rules returns the profile's applicable read/position rules rendered in
// the paper's notation, for diagnostics and tests.
func (pg *Program) Rules() []string {
	out := make([]string, len(pg.rules))
	for i := range pg.rules {
		out[i] = pg.rules[i].text
	}
	return out
}

// Transparent reports whether the profile reads every node of every
// document (so rewriting is the identity).
func (pg *Program) Transparent() bool { return pg.transparent }

// checkTransparent decides profile transparency: no root-to-node word
// exists whose latest-priority read decision is missing or a deny. The
// document node is exempt (axiom 15: the root is always visible, and its
// string-value is covered because all text words must still be readable).
// Soundness needs every applicable read pattern to be Exact — an inexact
// accept pattern over-approximates the rule's true grant.
func (pg *Program) checkTransparent() bool {
	var reads []ruleInfo
	for _, ri := range pg.rules {
		if ri.priv == policy.Read {
			reads = append(reads, ri)
		}
	}
	if len(reads) == 0 {
		return false
	}
	for _, ri := range reads {
		if !ri.pattern.Exact {
			return false
		}
	}
	pats := []*xpath.Pattern{policyanalysis.RootOnlyPattern()}
	for _, ri := range reads {
		pats = append(pats, ri.pattern)
	}
	return !policyanalysis.MatchableWord(pats, func(match []bool) bool {
		if match[0] {
			return false // the document node itself
		}
		last := -1 // reads is in ascending priority, so the last match wins
		for i := range reads {
			if match[i+1] {
				last = i
			}
		}
		return last < 0 || reads[last].effect == policy.Deny
	})
}

// PlanMode classifies a rewritten query.
type PlanMode int

// Plan modes.
const (
	// PlanGuarded evaluates the query on the source document under the
	// chain-derived security filter (the general rewrite).
	PlanGuarded PlanMode = iota
	// PlanTransparent evaluates the raw query: the profile reads
	// everything, so the filter is the identity.
	PlanTransparent
	// PlanEmpty returns the statically empty answer: nothing the query
	// could select is visible to the profile.
	PlanEmpty
)

// String names the mode.
func (m PlanMode) String() string {
	switch m {
	case PlanGuarded:
		return "guarded"
	case PlanTransparent:
		return "transparent"
	case PlanEmpty:
		return "empty"
	default:
		return "unknown"
	}
}

// Plan is one rewritten query: the compiled expression plus its static
// classification for this profile. Plans are cached per (profile, query
// text) and are document-independent.
type Plan struct {
	Mode PlanMode
	c    *xpath.Compiled
}

// maxPlans bounds a profile's plan cache; on overflow the cache resets
// (queries re-plan, nothing breaks).
const maxPlans = 4096

// PlanFor compiles and classifies query for this profile, serving from the
// plan cache when possible. A compile error is the caller's to report — it
// is tier-independent (every tier would fail the same way).
func (pg *Program) PlanFor(query string) (*Plan, error) {
	pg.mu.Lock()
	if pl, ok := pg.plans[query]; ok {
		pg.mu.Unlock()
		return pl, nil
	}
	pg.mu.Unlock()
	c, err := xpath.Compile(query)
	if err != nil {
		return nil, err
	}
	pl := &Plan{Mode: PlanGuarded, c: c}
	if pg.transparent {
		pl.Mode = PlanTransparent
	} else if pg.provablyEmpty(c.Pattern()) {
		pl.Mode = PlanEmpty
	}
	pg.mu.Lock()
	if len(pg.plans) >= maxPlans {
		pg.plans = make(map[string]*Plan)
	}
	pg.plans[query] = pl
	pg.mu.Unlock()
	return pl, nil
}

// provablyEmpty reports whether no node the query could select is visible:
// the query pattern cannot match the document node and shares no word with
// any applicable accept rule's pattern. Both patterns over-approximate, so
// an empty intersection is conclusive regardless of exactness. A pattern
// that can prove emptiness only arises from path/union expressions, which
// always evaluate to node-sets — so an empty plan is always a node-set.
func (pg *Program) provablyEmpty(qp *xpath.Pattern) bool {
	if qp.MatchesRoot() {
		return false
	}
	if len(pg.acceptPats) == 0 {
		return true
	}
	pats := append([]*xpath.Pattern{qp}, pg.acceptPats...)
	return !policyanalysis.MatchableWord(pats, func(match []bool) bool {
		if !match[0] {
			return false
		}
		for _, m := range match[1:] {
			if m {
				return true
			}
		}
		return false
	})
}

// Select evaluates the plan as a node-set query over root (the source
// document node) under sec. Pass the Security from Program.Security for
// guarded plans and nil for transparent ones.
func (pl *Plan) Select(root *xmltree.Node, vars xpath.Vars, sec *xpath.Security) (xpath.NodeSet, error) {
	return pl.c.SelectFiltered(root, vars, sec)
}

// Eval evaluates the plan as an arbitrary expression over root under sec.
func (pl *Plan) Eval(root *xmltree.Node, vars xpath.Vars, sec *xpath.Security) (xpath.Value, error) {
	return pl.c.EvalFiltered(root, vars, sec)
}

// EvalState carries the runtime outcome of one guarded evaluation: if any
// rule matcher failed, the evaluation's answer is unusable and the caller
// must fall back (ReasonEvalError).
type EvalState struct{ err error }

// Err returns the first matcher error, if any.
func (st *EvalState) Err() error { return st.err }

// Visibility mask bits: position admits a node into the view with the
// RESTRICTED label (axiom 17), read with its own label (axiom 16).
const (
	maskPosition = 1 << 0
	maskRead     = 1 << 1
)

// ruleMask re-runs the axiom-14 latest-priority merge for {read, position}
// on one node and folds the two surviving decisions into a visibility
// mask. It is the single source of truth for both the per-evaluation
// Security memo and the cross-request SecurityFor cache.
func (pg *Program) ruleMask(n *xmltree.Node, vars xpath.Vars) (uint8, error) {
	var posSet, readSet bool
	var posEff, readEff policy.Effect
	// Ascending priority: a later match overwrites, so the survivor
	// is the latest-priority decision (axiom 14).
	for i := range pg.rules {
		ri := &pg.rules[i]
		ok, err := ri.matcher.Match(n, vars)
		if err != nil {
			return 0, fmt.Errorf("rewrite: %s: %w", ri.text, err)
		}
		if !ok {
			continue
		}
		if ri.priv == policy.Read {
			readSet, readEff = true, ri.effect
		} else {
			posSet, posEff = true, ri.effect
		}
	}
	var m uint8
	if posSet && posEff == policy.Accept {
		m |= maskPosition
	}
	if readSet && readEff == policy.Accept {
		m |= maskRead
	}
	return m, nil
}

// secFromMask wraps a mask function into the xpath filter: a node is
// visible with read or position (axioms 16–17) and shows its own label
// only with read; the document node is always visible with its own label
// (axiom 15).
func secFromMask(mask func(*xmltree.Node) uint8) *xpath.Security {
	return &xpath.Security{
		Visible: func(n *xmltree.Node) bool {
			if n.Kind() == xmltree.KindDocument {
				return true
			}
			return mask(n) != 0
		},
		Label: func(n *xmltree.Node) string {
			if n.Kind() == xmltree.KindDocument {
				return n.Label()
			}
			if mask(n)&maskRead != 0 {
				return n.Label()
			}
			return xmltree.Restricted
		},
	}
}

// Security builds the chain-derived filter for one evaluation with the
// given variable bindings ($USER must be bound). Visibility and labels
// re-run the axiom-14 latest-priority merge for {read, position} per node,
// memoized for the evaluation; a node is visible with read or position
// (axioms 16–17) and shows its own label only with read. The document
// node is always visible with its own label (axiom 15).
//
// The returned Security and state are single-use and single-goroutine:
// the memo is not locked. For a memo that survives the evaluation and is
// shared across concurrent requests, use SecurityFor.
func (pg *Program) Security(vars xpath.Vars) (*xpath.Security, *EvalState) {
	st := &EvalState{}
	memo := make(map[*xmltree.Node]uint8)
	mask := func(n *xmltree.Node) uint8 {
		if m, ok := memo[n]; ok {
			return m
		}
		m, err := pg.ruleMask(n, vars)
		if err != nil && st.err == nil {
			st.err = err
		}
		memo[n] = m
		return m
	}
	return secFromMask(mask), st
}

// userSec is one user's cross-request mask memo, valid for exactly one
// source-document snapshot. Frozen snapshots make node identity stable, so
// the memo never needs invalidation finer than "the snapshot moved" — the
// whole entry is replaced then. The sync.Map is safe for the concurrent
// readers of one generation.
type userSec struct {
	snap *xmltree.Document
	memo sync.Map // *xmltree.Node → uint8
}

// secCacheCap bounds the per-program user cache; when the population of
// distinct users outgrows it the whole cache is reset rather than evicted
// piecewise (rebuilding a memo costs one rule sweep per visited node).
const secCacheCap = 4096

// SecurityFor is Security with a memo shared across requests: masks
// computed for (user, snapshot) are reused by every concurrent evaluation
// of the same user against the same frozen document, so the axiom-14 rule
// sweep runs once per visited node per generation instead of once per
// request. Programs are already built per policy epoch, so the (user,
// epoch) keying the issue asks for falls out of (Program, user); the
// snapshot pointer invalidates the memo across document generations.
//
// vars must carry the user's own bindings only ($USER) — the memo is keyed
// by user identity, so request-specific bindings would poison it. The
// returned Security is safe for concurrent use; the EvalState is per-call.
// Matcher errors are reported through the state and never memoized.
func (pg *Program) SecurityFor(user string, vars xpath.Vars, snap *xmltree.Document) (*xpath.Security, *EvalState) {
	pg.secMu.Lock()
	if pg.secs == nil || len(pg.secs) >= secCacheCap {
		pg.secs = make(map[string]*userSec)
	}
	e := pg.secs[user]
	if e == nil || e.snap != snap {
		e = &userSec{snap: snap}
		pg.secs[user] = e
	}
	pg.secMu.Unlock()
	st := &EvalState{}
	mask := func(n *xmltree.Node) uint8 {
		if m, ok := e.memo.Load(n); ok {
			return m.(uint8)
		}
		m, err := pg.ruleMask(n, vars)
		if err != nil {
			if st.err == nil {
				st.err = err
			}
			return 0
		}
		e.memo.Store(n, m)
		return m
	}
	return secFromMask(mask), st
}
