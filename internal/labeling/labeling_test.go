package labeling

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDocumentLabel(t *testing.T) {
	if got := DocumentLabel.String(); got != "/" {
		t.Errorf("DocumentLabel.String() = %q, want %q", got, "/")
	}
	if DocumentLabel.Level() != 0 {
		t.Errorf("DocumentLabel.Level() = %d, want 0", DocumentLabel.Level())
	}
	if _, ok := DocumentLabel.Parent(); ok {
		t.Error("DocumentLabel.Parent() ok = true, want false")
	}
	if _, ok := DocumentLabel.Key(); ok {
		t.Error("DocumentLabel.Key() ok = true, want false")
	}
}

func TestLabelStringParseRoundTrip(t *testing.T) {
	cases := []Label{
		{},
		{"a0"},
		{"a0", "a1"},
		{"a0", "a1", "b10"},
		{"b", "zb", "bn"},
	}
	for _, l := range cases {
		s := l.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !got.Equal(l) {
			t.Errorf("Parse(%q) = %v, want %v", s, got, l)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "a0", "/a0/", "//", "/a0//a1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", s)
		}
	}
}

func TestLabelGeometry(t *testing.T) {
	doc := DocumentLabel
	root := doc.Child("a0")
	kid1 := root.Child("a0")
	kid2 := root.Child("a1")
	grand := kid1.Child("a0")

	tests := []struct {
		name string
		got  bool
		want bool
	}{
		{"root child of doc", root.IsChildOf(doc), true},
		{"doc parent of root", doc.IsParentOf(root), true},
		{"kid1 descendant of doc", kid1.IsDescendantOf(doc), true},
		{"doc ancestor of grand", doc.IsAncestorOf(grand), true},
		{"root not ancestor of itself", root.IsAncestorOf(root), false},
		{"kid1 sibling of kid2", kid1.IsSiblingOf(kid2), true},
		{"kid1 not sibling of itself", kid1.IsSiblingOf(kid1), false},
		{"kid1 not sibling of grand", kid1.IsSiblingOf(grand), false},
		{"grand child of kid1", grand.IsChildOf(kid1), true},
		{"grand not child of root", grand.IsChildOf(root), false},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestLabelCompareDocumentOrder(t *testing.T) {
	doc := DocumentLabel
	root := doc.Child("a0")
	kid1 := root.Child("a0")
	kid2 := root.Child("a1")
	grand := kid1.Child("a0")

	// Document order: / < /a0 < /a0/a0 < /a0/a0/a0 < /a0/a1.
	ordered := []Label{doc, root, kid1, grand, kid2}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestHoldsRelations(t *testing.T) {
	root := DocumentLabel.Child("a0")
	a := root.Child("a0")
	b := root.Child("a1")
	aa := a.Child("a0")

	tests := []struct {
		rel  Relation
		x, y Label
		want bool
	}{
		{RelSelf, a, a, true},
		{RelSelf, a, b, false},
		{RelChild, a, root, true},
		{RelParent, root, a, true},
		{RelDescendant, aa, root, true},
		{RelAncestor, root, aa, true},
		{RelFollowingSibling, b, a, true},
		{RelFollowingSibling, a, b, false},
		{RelPrecedingSibling, a, b, true},
		{RelFollowing, b, aa, true},  // b after aa, not a descendant of aa
		{RelFollowing, aa, a, false}, // aa is a descendant of a
		{RelPreceding, aa, b, true},  // aa before b, not an ancestor of b
		{RelPreceding, a, aa, false}, // a is an ancestor of aa
		{RelPreceding, root, b, false} /* ancestor */, {Relation(99), a, b, false},
	}
	for _, tc := range tests {
		if got := Holds(tc.rel, tc.x, tc.y); got != tc.want {
			t.Errorf("Holds(%d, %v, %v) = %v, want %v", tc.rel, tc.x, tc.y, got, tc.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fracpath", "lsdx"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope): expected error")
	}
}

// schemes under test for the shared scheme contract.
func allSchemes() []Scheme { return []Scheme{NewFracPath(), NewLSDX()} }

func TestSchemeFirstIsValid(t *testing.T) {
	for _, s := range allSchemes() {
		k, err := s.First()
		if err != nil {
			t.Fatalf("%s: First: %v", s.Name(), err)
		}
		if err := s.Validate(k); err != nil {
			t.Errorf("%s: First() = %q invalid: %v", s.Name(), k, err)
		}
	}
}

func TestSchemeBetweenRejectsBadBounds(t *testing.T) {
	for _, s := range allSchemes() {
		first, _ := s.First()
		if _, err := s.Between(first, first); err == nil {
			t.Errorf("%s: Between(k, k) should fail", s.Name())
		}
		next, err := s.Between(first, "")
		if err != nil {
			t.Fatalf("%s: Between(first, inf): %v", s.Name(), err)
		}
		if _, err := s.Between(next, first); err == nil {
			t.Errorf("%s: Between(hi, lo) should fail", s.Name())
		}
	}
}

func TestSchemeBetweenRejectsInvalidKeys(t *testing.T) {
	for _, s := range allSchemes() {
		if _, err := s.Between("!bad", ""); err == nil {
			t.Errorf("%s: Between with invalid lo should fail", s.Name())
		}
		if _, err := s.Between("", "!bad"); err == nil {
			t.Errorf("%s: Between with invalid hi should fail", s.Name())
		}
	}
}

// TestSchemeAppendChain appends many keys and checks strict monotonicity and
// validity — the common "append child" path of document building.
func TestSchemeAppendChain(t *testing.T) {
	for _, s := range allSchemes() {
		prev := ""
		for i := 0; i < 5000; i++ {
			k, err := s.Between(prev, "")
			if err != nil {
				t.Fatalf("%s: append %d: %v", s.Name(), i, err)
			}
			if err := s.Validate(k); err != nil {
				t.Fatalf("%s: append %d produced invalid key %q: %v", s.Name(), i, k, err)
			}
			if prev != "" && k <= prev {
				t.Fatalf("%s: append %d: key %q not greater than %q", s.Name(), i, k, prev)
			}
			prev = k
		}
	}
}

// TestSchemePrependChain repeatedly inserts before the smallest key.
func TestSchemePrependChain(t *testing.T) {
	for _, s := range allSchemes() {
		prev := ""
		for i := 0; i < 500; i++ {
			k, err := s.Between("", prev)
			if err != nil {
				t.Fatalf("%s: prepend %d (hi=%q): %v", s.Name(), i, prev, err)
			}
			if err := s.Validate(k); err != nil {
				t.Fatalf("%s: prepend %d produced invalid key %q: %v", s.Name(), i, k, err)
			}
			if prev != "" && k >= prev {
				t.Fatalf("%s: prepend %d: key %q not smaller than %q", s.Name(), i, k, prev)
			}
			prev = k
		}
	}
}

// TestSchemeMidsplitChain repeatedly splits the same gap — the adversarial
// hot-spot insertion pattern.
func TestSchemeMidsplitChain(t *testing.T) {
	for _, s := range allSchemes() {
		lo, err := s.First()
		if err != nil {
			t.Fatal(err)
		}
		hi, err := s.Between(lo, "")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			mid, err := s.Between(lo, hi)
			if err != nil {
				t.Fatalf("%s: split %d between %q and %q: %v", s.Name(), i, lo, hi, err)
			}
			if err := s.Validate(mid); err != nil {
				t.Fatalf("%s: split %d produced invalid key %q: %v", s.Name(), i, mid, err)
			}
			if !(lo < mid && mid < hi) {
				t.Fatalf("%s: split %d: %q not strictly between %q and %q", s.Name(), i, mid, lo, hi)
			}
			if i%2 == 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
}

// TestSchemeRandomInsertionOrder builds a large ordered sequence by inserting
// at random positions and verifies the keys stay sorted and unique.
func TestSchemeRandomInsertionOrder(t *testing.T) {
	for _, s := range allSchemes() {
		rng := rand.New(rand.NewSource(42))
		keys := []string{}
		for i := 0; i < 2000; i++ {
			pos := rng.Intn(len(keys) + 1)
			lo, hi := "", ""
			if pos > 0 {
				lo = keys[pos-1]
			}
			if pos < len(keys) {
				hi = keys[pos]
			}
			k, err := s.Between(lo, hi)
			if err != nil {
				t.Fatalf("%s: insert %d at %d (lo=%q hi=%q): %v", s.Name(), i, pos, lo, hi, err)
			}
			keys = append(keys[:pos:pos], append([]string{k}, keys[pos:]...)...)
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("%s: keys not sorted after random insertion", s.Name())
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				t.Fatalf("%s: duplicate key %q", s.Name(), keys[i])
			}
		}
	}
}

// quick-check: Between really is strictly between for arbitrary bound pairs
// drawn from generated key populations.
func TestQuickBetweenStrict(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		// Generate a pool of valid keys first.
		pool := []string{}
		prev := ""
		for i := 0; i < 200; i++ {
			k, err := s.Between(prev, "")
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, k)
			prev = k
		}
		f := func(i, j uint16) bool {
			a := pool[int(i)%len(pool)]
			b := pool[int(j)%len(pool)]
			if a > b {
				a, b = b, a
			}
			if a == b {
				return true // nothing to check
			}
			mid, err := s.Between(a, b)
			if err != nil {
				return false
			}
			return a < mid && mid < b && s.Validate(mid) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestFracPathValidate(t *testing.T) {
	fp := NewFracPath()
	valid := []string{"a0", "a5", "aZ", "b10", "cZZZ"[:3] + "0", "a0I", "5", "2X", "a9ZZ"}
	for _, k := range valid {
		if err := fp.Validate(k); err != nil {
			t.Errorf("Validate(%q): unexpected error %v", k, err)
		}
	}
	invalid := []string{"", "a", "b1", "b05", "a00", "!", "a5a", "0", "10", "a5 ", "A"[:1] + "a"}
	for _, k := range invalid {
		if err := fp.Validate(k); err == nil {
			t.Errorf("Validate(%q): expected error", k)
		}
	}
}

func TestFracPathAppendGrowsLogarithmically(t *testing.T) {
	fp := NewFracPath()
	prev := ""
	var k string
	var err error
	for i := 0; i < 10000; i++ {
		k, err = fp.Between(prev, "")
		if err != nil {
			t.Fatal(err)
		}
		prev = k
	}
	if len(k) > 6 {
		t.Errorf("fracpath: 10000th append key %q has length %d, want <= 6", k, len(k))
	}
}

func TestLSDXValidate(t *testing.T) {
	x := NewLSDX()
	for _, k := range []string{"b", "z", "zb", "ann"[:2] + "b", "bcd"} {
		if err := x.Validate(k); err != nil {
			t.Errorf("Validate(%q): unexpected error %v", k, err)
		}
	}
	for _, k := range []string{"", "a", "ba", "B", "b1", "b b"} {
		if err := x.Validate(k); err == nil {
			t.Errorf("Validate(%q): expected error", k)
		}
	}
}

func TestLSDXAppendRule(t *testing.T) {
	x := NewLSDX()
	cases := []struct{ lo, want string }{
		{"b", "c"},
		{"y", "z"},
		{"z", "zb"},
		{"zz", "zzb"},
		{"bc", "bd"},
	}
	for _, tc := range cases {
		got, err := x.Between(tc.lo, "")
		if err != nil {
			t.Fatalf("Between(%q, inf): %v", tc.lo, err)
		}
		if got != tc.want {
			t.Errorf("Between(%q, inf) = %q, want %q", tc.lo, got, tc.want)
		}
	}
}

func TestLabelCloneIndependent(t *testing.T) {
	l := Label{"a0", "a1"}
	c := l.Clone()
	c[0] = "zz"
	if l[0] != "a0" {
		t.Error("Clone is not independent of the original")
	}
	if (Label)(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

// TestChildDoesNotAliasParentBacking guards against append-aliasing bugs:
// two children derived from the same parent label must not share storage.
func TestChildDoesNotAliasParentBacking(t *testing.T) {
	parent := DocumentLabel.Child("a0")
	c1 := parent.Child("a0")
	c2 := parent.Child("a1")
	if c1[1] != "a0" || c2[1] != "a1" {
		t.Fatalf("sibling labels alias each other: %v %v", c1, c2)
	}
	p, ok := c1.Parent()
	if !ok || !p.Equal(parent) {
		t.Fatalf("Parent(%v) = %v, want %v", c1, p, parent)
	}
	// Appending a child to the returned parent must not clobber c1's key.
	_ = p.Child("zz")
	if c1[1] != "a0" {
		t.Error("Parent() result aliases the child's backing array")
	}
}

func TestKeyByteOrderMatchesStringsCompare(t *testing.T) {
	// The Label geometry relies on byte-wise comparison of keys. Check that
	// generated keys compare consistently under strings.Compare.
	for _, s := range allSchemes() {
		prev := ""
		for i := 0; i < 100; i++ {
			k, err := s.Between(prev, "")
			if err != nil {
				t.Fatal(err)
			}
			if prev != "" && strings.Compare(prev, k) != -1 {
				t.Fatalf("%s: strings.Compare(%q, %q) != -1", s.Name(), prev, k)
			}
			prev = k
		}
	}
}
