// Package labeling implements persistent node-numbering schemes for XML
// trees, as required by §3.1 of Gabillon's formal access control model:
// identifiers assigned to nodes never change across updates, and all tree
// relationships (parent, ancestor, sibling order, document order) are
// derivable from the identifiers alone.
//
// A node identifier is a Label: a path of sibling keys, one per tree level.
// Sibling keys are produced by a Scheme. Every Scheme must emit keys whose
// plain byte-wise order equals sibling order; Label relies on that invariant
// so that geometry tests are scheme-independent.
//
// Two schemes ship with the package:
//
//   - fracpath: fractional-indexed keys with a variable-length integer part,
//     so appending n siblings yields keys of length O(log n). This is our
//     stand-in for the Gabillon–Fansi persistent scheme the paper cites.
//   - lsdx: an LSDX-style alphabetic scheme (Duong & Zhang), where appends
//     extend a letter sequence and grow linearly on hot spots. Shipped for
//     the ablation benchmark.
package labeling

import (
	"errors"
	"fmt"
	"strings"
)

// Scheme generates sibling keys. Keys are non-empty strings whose byte-wise
// lexicographic order is the sibling order. Keys, once handed out, are never
// re-issued or rewritten (persistence).
type Scheme interface {
	// Name identifies the scheme ("fracpath", "lsdx").
	Name() string
	// First returns the key for the first child inserted under a parent
	// that has no children yet. Equivalent to Between("", "").
	First() (string, error)
	// Between returns a fresh key strictly between lo and hi in byte order.
	// lo == "" means "before the first existing sibling" and hi == "" means
	// "after the last existing sibling". When both are empty any key may be
	// returned. Between fails if lo >= hi (with both non-empty) or if either
	// bound is not a valid key of the scheme.
	Between(lo, hi string) (string, error)
	// Validate reports whether s is a well-formed key of this scheme.
	Validate(s string) error
}

// ErrBadBounds is returned by Between when lo >= hi.
var ErrBadBounds = errors.New("labeling: lo must be strictly less than hi")

// Label identifies one node in a document: a path of sibling keys from the
// root element down to the node. The document node is the empty Label.
//
// Geometry is purely positional: m is a descendant of l iff l is a strict
// component-wise prefix of m; document order is component-wise byte order
// with prefixes first. These relations depend only on the Label values, so
// they survive arbitrary document updates, as §3.1 requires.
type Label []string

// DocumentLabel is the label of the document node ("/" in the paper).
var DocumentLabel = Label{}

// String renders the label in the canonical "/k1/k2/..." form; the document
// node renders as "/".
func (l Label) String() string {
	if len(l) == 0 {
		return "/"
	}
	var b strings.Builder
	for _, k := range l {
		b.WriteByte('/')
		b.WriteString(k)
	}
	return b.String()
}

// Parse parses the canonical form produced by String.
func Parse(s string) (Label, error) {
	if s == "" {
		return nil, errors.New("labeling: empty label text")
	}
	if s == "/" {
		return DocumentLabel, nil
	}
	if s[0] != '/' {
		return nil, fmt.Errorf("labeling: label %q must start with '/'", s)
	}
	parts := strings.Split(s[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("labeling: label %q has an empty component", s)
		}
	}
	return Label(parts), nil
}

// Level is the depth of the node: 0 for the document node, 1 for the root
// element, and so on.
func (l Label) Level() int { return len(l) }

// Clone returns an independent copy of l.
func (l Label) Clone() Label {
	if l == nil {
		return nil
	}
	c := make(Label, len(l))
	copy(c, l)
	return c
}

// Child returns the label of a child of l carrying sibling key key.
func (l Label) Child(key string) Label {
	c := make(Label, len(l)+1)
	copy(c, l)
	c[len(l)] = key
	return c
}

// Parent returns the label of l's parent. ok is false for the document node,
// which has no parent.
func (l Label) Parent() (parent Label, ok bool) {
	if len(l) == 0 {
		return nil, false
	}
	return l[: len(l)-1 : len(l)-1], true
}

// Key returns the node's own sibling key (the last component). ok is false
// for the document node.
func (l Label) Key() (key string, ok bool) {
	if len(l) == 0 {
		return "", false
	}
	return l[len(l)-1], true
}

// Equal reports whether l and m identify the same node.
func (l Label) Equal(m Label) bool {
	if len(l) != len(m) {
		return false
	}
	for i := range l {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// IsAncestorOf reports whether l is a strict ancestor of m.
func (l Label) IsAncestorOf(m Label) bool {
	if len(l) >= len(m) {
		return false
	}
	for i := range l {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// IsDescendantOf reports whether l is a strict descendant of m.
func (l Label) IsDescendantOf(m Label) bool { return m.IsAncestorOf(l) }

// IsParentOf reports whether l is the parent of m.
func (l Label) IsParentOf(m Label) bool {
	return len(m) == len(l)+1 && l.IsAncestorOf(m)
}

// IsChildOf reports whether l is a child of m.
func (l Label) IsChildOf(m Label) bool { return m.IsParentOf(l) }

// IsSiblingOf reports whether l and m are distinct nodes sharing a parent.
func (l Label) IsSiblingOf(m Label) bool {
	if len(l) == 0 || len(l) != len(m) || l.Equal(m) {
		return false
	}
	for i := 0; i < len(l)-1; i++ {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// Compare orders labels in document order: ancestors precede descendants,
// and siblings are ordered by their keys. Returns -1, 0 or +1.
func (l Label) Compare(m Label) int {
	n := len(l)
	if len(m) < n {
		n = len(m)
	}
	for i := 0; i < n; i++ {
		if c := strings.Compare(l[i], m[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(l) < len(m):
		return -1
	case len(l) > len(m):
		return 1
	default:
		return 0
	}
}

// Relation names the positional relationship of one node to another, as in
// the tree geometry predicates of §3.2.
type Relation int

// Geometry relations between a node a and a node b, in the direction
// "a is <relation> of b".
const (
	RelSelf Relation = iota
	RelChild
	RelParent
	RelDescendant // strict, excludes child? no: includes all strict descendants
	RelAncestor   // strict
	RelFollowingSibling
	RelPrecedingSibling
	RelFollowing // document order after b, not a descendant of b
	RelPreceding // document order before b, not an ancestor of b
)

// Holds reports whether relation rel holds between a and b ("a rel b"), using
// only the labels. RelDescendant and RelAncestor are strict; RelChild implies
// RelDescendant and RelParent implies RelAncestor.
func Holds(rel Relation, a, b Label) bool {
	switch rel {
	case RelSelf:
		return a.Equal(b)
	case RelChild:
		return a.IsChildOf(b)
	case RelParent:
		return a.IsParentOf(b)
	case RelDescendant:
		return a.IsDescendantOf(b)
	case RelAncestor:
		return a.IsAncestorOf(b)
	case RelFollowingSibling:
		return a.IsSiblingOf(b) && a.Compare(b) > 0
	case RelPrecedingSibling:
		return a.IsSiblingOf(b) && a.Compare(b) < 0
	case RelFollowing:
		return a.Compare(b) > 0 && !a.IsDescendantOf(b)
	case RelPreceding:
		return a.Compare(b) < 0 && !a.IsAncestorOf(b)
	default:
		return false
	}
}

// ByName returns the scheme registered under name.
func ByName(name string) (Scheme, error) {
	switch name {
	case "fracpath":
		return NewFracPath(), nil
	case "lsdx":
		return NewLSDX(), nil
	default:
		return nil, fmt.Errorf("labeling: unknown scheme %q", name)
	}
}
