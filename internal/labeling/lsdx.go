package labeling

import "fmt"

// LSDX is an LSDX-style alphabetic key scheme after Duong & Zhang (ACSW
// 2005), the dynamic labelling scheme the paper cites as reference [8].
// Keys are lowercase letter strings that never end in 'a'; byte order is
// sibling order. Like the original, the scheme never relabels a node:
//
//   - the first child of a fresh parent gets "b";
//   - appending after key k increments k's last letter, or extends with "b"
//     once the letter 'z' is reached ("y" → "z" → "zb" → "zc" → ...);
//   - inserting between two keys extends the left key with a letter between
//     the next letters of both, matching the LSDX "concatenate" rule.
//
// Appending n siblings therefore produces keys of length O(n/25): linear
// growth on hot spots. The scheme exists alongside fracpath precisely to
// expose that difference in the labelling ablation benchmark (B4).
type LSDX struct{}

// NewLSDX returns the LSDX scheme. The scheme is stateless; the value may be
// shared freely.
func NewLSDX() *LSDX { return &LSDX{} }

// Name implements Scheme.
func (*LSDX) Name() string { return "lsdx" }

// First implements Scheme.
func (*LSDX) First() (string, error) { return "b", nil }

// Validate implements Scheme.
func (*LSDX) Validate(s string) error {
	if s == "" {
		return fmt.Errorf("lsdx: empty key")
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 'a' || s[i] > 'z' {
			return fmt.Errorf("lsdx: key %q has byte %q outside 'a'..'z'", s, s[i])
		}
	}
	if s[len(s)-1] == 'a' {
		return fmt.Errorf("lsdx: key %q must not end in 'a'", s)
	}
	return nil
}

// Between implements Scheme.
func (x *LSDX) Between(lo, hi string) (string, error) {
	if lo != "" {
		if err := x.Validate(lo); err != nil {
			return "", err
		}
	}
	if hi != "" {
		if err := x.Validate(hi); err != nil {
			return "", err
		}
	}
	switch {
	case lo == "" && hi == "":
		return x.First()
	case hi == "":
		return lsdxAfter(lo), nil
	case lo == "":
		return lsdxMid("", hi), nil
	}
	if lo >= hi {
		return "", fmt.Errorf("%w: lo=%q hi=%q", ErrBadBounds, lo, hi)
	}
	return lsdxMid(lo, hi), nil
}

// lsdxAfter implements the LSDX append rule: increment the last letter, or
// extend with 'b' when the last letter is 'z'.
func lsdxAfter(lo string) string {
	last := lo[len(lo)-1]
	if last < 'z' {
		return lo[:len(lo)-1] + string(last+1)
	}
	return lo + "b"
}

// lsdxMid returns a letter string strictly between a and b in byte order,
// never ending in 'a'. a == "" is the open lower bound, b == "" the open
// upper bound. Preconditions: a < b when both non-empty; neither ends 'a'.
func lsdxMid(a, b string) string {
	if b != "" {
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		if n > 0 {
			return b[:n] + lsdxMid(a[n:], b[n:])
		}
	}
	digA := 0
	if a != "" {
		digA = int(a[0] - 'a')
	}
	digB := 26
	if b != "" {
		digB = int(b[0] - 'a')
	}
	if digB-digA > 1 {
		return string(byte('a' + (digA+digB)/2))
	}
	if a != "" {
		return a[:1] + lsdxMid(a[1:], "")
	}
	return string(byte('a'+digA)) + lsdxMid("", b[1:])
}
