package labeling

import (
	"fmt"
	"strings"
)

// fracDigits is the base-36 digit alphabet used by fracpath keys. Byte order
// of the digits equals numeric order, so lexicographic comparison of digit
// strings of equal length equals numeric comparison.
const fracDigits = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"

// FracPath is a fractional-indexing key scheme with a variable-length
// integer part. It is the package's primary scheme and our substitute for
// the (unavailable) Gabillon–Fansi persistent labelling scheme [12]: keys
// are assigned once, never rewritten, and appending n siblings produces keys
// of length O(log n) rather than O(n).
//
// Key grammar (byte order of keys equals sibling order):
//
//	key      = subzero | headed
//	subzero  = 1*DIGIT                ; not ending in '0'; value in (0,1)
//	headed   = head int [frac]
//	head     = 'a'..'z'               ; 'a'+k means k+1 integer digits
//	int      = (k+1)*DIGIT            ; base-36 integer, fixed width
//	frac     = 1*DIGIT                ; not ending in '0'
//	DIGIT    = '0'-'9' / 'A'-'Z'
//
// Subzero keys sort before all headed keys because ASCII digits and capitals
// precede lowercase head letters. Within headed keys, a longer integer part
// has a later head letter, so byte order equals numeric order. The fraction
// extends a key, and an extension sorts after its prefix, which again
// matches numeric order for fractions (no trailing zero digits).
type FracPath struct{}

// NewFracPath returns the fracpath scheme. The scheme is stateless; the
// value may be shared freely.
func NewFracPath() *FracPath { return &FracPath{} }

// Name implements Scheme.
func (*FracPath) Name() string { return "fracpath" }

// First implements Scheme. The genesis key is "a0" (integer 0, no fraction).
func (*FracPath) First() (string, error) { return "a0", nil }

// Validate implements Scheme.
func (*FracPath) Validate(s string) error {
	if s == "" {
		return fmt.Errorf("fracpath: empty key")
	}
	head := s[0]
	if isFracDigit(head) {
		// Subzero pure-fraction key.
		return validateFrac(s, "fracpath: subzero key")
	}
	if head < 'a' || head > 'z' {
		return fmt.Errorf("fracpath: key %q has invalid head byte %q", s, head)
	}
	width := int(head-'a') + 1
	if len(s) < 1+width {
		return fmt.Errorf("fracpath: key %q shorter than its declared integer width %d", s, width)
	}
	for i := 1; i <= width; i++ {
		if !isFracDigit(s[i]) {
			return fmt.Errorf("fracpath: key %q has non-digit %q in integer part", s, s[i])
		}
	}
	if width > 1 && s[1] == '0' {
		return fmt.Errorf("fracpath: key %q has a non-minimal integer part", s)
	}
	if frac := s[1+width:]; frac != "" {
		return validateFrac(frac, "fracpath: fraction of key "+s)
	}
	return nil
}

func validateFrac(frac, what string) error {
	for i := 0; i < len(frac); i++ {
		if !isFracDigit(frac[i]) {
			return fmt.Errorf("%s: non-digit byte %q", what, frac[i])
		}
	}
	if frac[len(frac)-1] == '0' {
		return fmt.Errorf("%s: must not end in '0'", what)
	}
	return nil
}

func isFracDigit(b byte) bool {
	return (b >= '0' && b <= '9') || (b >= 'A' && b <= 'Z')
}

func fracDigitVal(b byte) int {
	if b >= '0' && b <= '9' {
		return int(b - '0')
	}
	return int(b-'A') + 10
}

// Between implements Scheme.
func (f *FracPath) Between(lo, hi string) (string, error) {
	if lo != "" {
		if err := f.Validate(lo); err != nil {
			return "", err
		}
	}
	if hi != "" {
		if err := f.Validate(hi); err != nil {
			return "", err
		}
	}
	switch {
	case lo == "" && hi == "":
		return f.First()
	case hi == "":
		return fracAfter(lo)
	case lo == "":
		return fracBefore(hi)
	}
	if lo >= hi {
		return "", fmt.Errorf("%w: lo=%q hi=%q", ErrBadBounds, lo, hi)
	}
	loSub, hiSub := isFracDigit(lo[0]), isFracDigit(hi[0])
	switch {
	case loSub && hiSub:
		return fracMid(lo, hi), nil
	case loSub && !hiSub:
		// Any headed key below hi works; prefer the smallest integer.
		if hi > "a0" {
			return "a0", nil
		}
		// hi is exactly "a0": stay in subzero space above lo.
		return fracMid(lo, ""), nil
	case !loSub && hiSub:
		return "", fmt.Errorf("%w: headed lo=%q above subzero hi=%q", ErrBadBounds, lo, hi)
	}
	// Both headed.
	li, lif := splitHeaded(lo)
	hiI, hif := splitHeaded(hi)
	switch {
	case hiI >= li+2:
		return headedKey(li + 1)
	case hiI == li+1:
		// Extend lo's integer with a fraction above lo's fraction.
		k, err := headedKey(li)
		if err != nil {
			return "", err
		}
		return k + fracMid(lif, ""), nil
	default: // hiI == li
		k, err := headedKey(li)
		if err != nil {
			return "", err
		}
		return k + fracMid(lif, hif), nil
	}
}

// fracAfter returns a key strictly greater than lo: the next integer.
func fracAfter(lo string) (string, error) {
	if isFracDigit(lo[0]) {
		return "a0", nil // any headed key exceeds a subzero key
	}
	n, _ := splitHeaded(lo)
	return headedKey(n + 1)
}

// fracBefore returns a key strictly smaller than hi: the previous integer,
// or a subzero fraction when hi's integer part is already 0.
func fracBefore(hi string) (string, error) {
	if isFracDigit(hi[0]) {
		return fracMid("", hi), nil
	}
	n, _ := splitHeaded(hi)
	if n > 0 {
		return headedKey(n - 1)
	}
	// hi is "a0" or "a0<frac>": drop into subzero space.
	return fracMid("", ""), nil
}

// splitHeaded decodes a headed key into its integer value and fraction.
func splitHeaded(key string) (n uint64, frac string) {
	width := int(key[0]-'a') + 1
	for i := 1; i <= width; i++ {
		n = n*36 + uint64(fracDigitVal(key[i]))
	}
	return n, key[1+width:]
}

// headedKey encodes integer n as a minimal-width headed key.
func headedKey(n uint64) (string, error) {
	digits := make([]byte, 0, 14)
	if n == 0 {
		digits = append(digits, '0')
	}
	for v := n; v > 0; v /= 36 {
		digits = append(digits, fracDigits[v%36])
	}
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	if len(digits) > 26 {
		return "", fmt.Errorf("fracpath: integer part overflow for %d", n)
	}
	var b strings.Builder
	b.WriteByte(byte('a' + len(digits) - 1))
	b.Write(digits)
	return b.String(), nil
}

// fracMid returns a fraction string strictly between a and b in byte order.
// a == "" is the exclusive lower bound 0, b == "" the upper bound 1. The
// result never ends in '0', so it remains extendable on both sides.
// Preconditions: a < b when both are non-empty, and neither ends in '0'.
func fracMid(a, b string) string {
	if b != "" {
		// Strip the common prefix; the midpoint shares it.
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		if n > 0 {
			return b[:n] + fracMid(a[n:], b[n:])
		}
	}
	// First digits now differ (or a bound is empty/exhausted).
	digA := 0
	if a != "" {
		digA = fracDigitVal(a[0])
	}
	digB := len(fracDigits)
	if b != "" {
		digB = fracDigitVal(b[0])
	}
	if digB-digA > 1 {
		return string(fracDigits[(digA+digB)/2])
	}
	// Consecutive (or equal-with-empty-a) leading digits: keep a's digit and
	// recurse into the tail with an open upper bound, or keep b's digit side.
	if a != "" {
		return a[:1] + fracMid(a[1:], "")
	}
	// a is empty; b starts with digit 0 or 1.
	return string(fracDigits[digA]) + fracMid("", b[1:])
}
