package xslt

import (
	"testing"

	"securexml/internal/xmltree"
)

// FuzzParseStylesheet checks the stylesheet parser never panics and that
// accepted stylesheets transform a small document without panicking
// (errors are fine; crashes are not).
func FuzzParseStylesheet(f *testing.F) {
	seeds := []string{
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><r/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet><xsl:template match="*"><xsl:copy><xsl:apply-templates/></xsl:copy></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet><xsl:template match="a|b" priority="2"><xsl:value-of select="."/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet><xsl:template match="/"><e a="{name()}"><xsl:for-each select="//x"><xsl:sort select="@k"/><v/></xsl:for-each></e></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet><xsl:template match="/"><xsl:choose><xsl:when test="1">y</xsl:when><xsl:otherwise>n</xsl:otherwise></xsl:choose></xsl:template></xsl:stylesheet>`,
		`<wrong/>`, ``, `<xsl:stylesheet>`, `<xsl:stylesheet><xsl:template match="//["/></xsl:stylesheet>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := xmltree.MustParse("<a><b x='1'>t</b><c/></a>")
	f.Fuzz(func(t *testing.T, src string) {
		sheet, err := ParseStylesheet(src)
		if err != nil {
			return
		}
		_, _ = sheet.Transform(doc, nil, nil)
	})
}
