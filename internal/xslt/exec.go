package xslt

import (
	"fmt"
	"sort"
	"strings"

	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// Transform applies the stylesheet to doc and returns the result as a
// fragment document. vars supplies XPath variable bindings; sec optionally
// restricts the transformation to a user's authorized view (nil = full
// access) — this is the security-processor mode of §5.
func (s *Stylesheet) Transform(doc *xmltree.Document, vars xpath.Vars, sec *xpath.Security) (*xmltree.Document, error) {
	out := xmltree.NewFragment(doc.Scheme())
	ex := &executor{
		sheet: s,
		doc:   doc,
		vars:  vars,
		sec:   sec,
		out:   out,
		cur:   out.Root(),
		match: make(map[*compiledPattern]map[*xmltree.Node]bool, len(s.templates)*2),
	}
	if err := ex.applyTemplates([]*xmltree.Node{doc.Root()}); err != nil {
		return nil, err
	}
	return ex.out, nil
}

// TransformString is Transform rendered to XML text.
func (s *Stylesheet) TransformString(doc *xmltree.Document, vars xpath.Vars, sec *xpath.Security) (string, error) {
	out, err := s.Transform(doc, vars, sec)
	if err != nil {
		return "", err
	}
	return out.XML(), nil
}

// executor carries one transformation run. cur is the current output
// parent: instructions always append beneath it.
type executor struct {
	sheet *Stylesheet
	doc   *xmltree.Document
	vars  xpath.Vars
	sec   *xpath.Security
	out   *xmltree.Document
	cur   *xmltree.Node
	// match caches, per pattern, the set of source nodes it matches
	// (evaluated once from the root, under the security filter).
	match map[*compiledPattern]map[*xmltree.Node]bool
	depth int
}

// maxDepth bounds template recursion (cyclic apply-templates guard).
const maxDepth = 512

// matches reports whether the template matches node n.
func (ex *executor) matches(t *template, n *xmltree.Node) (bool, error) {
	for _, cp := range t.patterns {
		if cp.src == "/" {
			if n.Kind() == xmltree.KindDocument {
				return true, nil
			}
			continue
		}
		set, ok := ex.match[cp]
		if !ok {
			ns, err := cp.anchored.SelectFiltered(ex.doc.Root(), ex.vars, ex.sec)
			if err != nil {
				return false, fmt.Errorf("xslt: evaluating match %q: %w", cp.src, err)
			}
			set = make(map[*xmltree.Node]bool, len(ns))
			for _, m := range ns {
				set[m] = true
			}
			ex.match[cp] = set
		}
		if set[n] {
			return true, nil
		}
	}
	return false, nil
}

// bestTemplate picks the highest-priority matching template (later
// stylesheet order wins ties).
func (ex *executor) bestTemplate(n *xmltree.Node) (*template, error) {
	var best *template
	for _, t := range ex.sheet.templates {
		ok, err := ex.matches(t, n)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if best == nil || t.priority >= best.priority {
			best = t
		}
	}
	return best, nil
}

// applyTemplates processes each node with its best template, falling back
// to the XSLT built-in rules: document/element → recurse into children;
// text/attribute → emit the (effective) string value.
func (ex *executor) applyTemplates(nodes []*xmltree.Node) error {
	ex.depth++
	defer func() { ex.depth-- }()
	if ex.depth > maxDepth {
		return fmt.Errorf("xslt: template recursion deeper than %d (cyclic apply-templates?)", maxDepth)
	}
	for _, n := range nodes {
		if !ex.sec.IsVisible(n) {
			continue
		}
		t, err := ex.bestTemplate(n)
		if err != nil {
			return err
		}
		if t != nil {
			if err := ex.sequence(t.body, n); err != nil {
				return err
			}
			continue
		}
		switch n.Kind() {
		case xmltree.KindDocument, xmltree.KindElement:
			if err := ex.applyTemplates(n.Children()); err != nil {
				return err
			}
		case xmltree.KindText, xmltree.KindAttribute:
			if err := ex.emitText(ex.sec.StringValue(n)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sequence executes the children of a template/instruction element with
// ctx as the context node, emitting under the current output parent.
func (ex *executor) sequence(container, ctx *xmltree.Node) error {
	for _, c := range container.Children() {
		if err := ex.instruction(c, ctx); err != nil {
			return err
		}
	}
	return nil
}

// into runs fn with the output parent switched to el.
func (ex *executor) into(el *xmltree.Node, fn func() error) error {
	saved := ex.cur
	ex.cur = el
	err := fn()
	ex.cur = saved
	return err
}

func (ex *executor) emitText(text string) error {
	if text == "" {
		return nil
	}
	_, err := ex.out.AppendChild(ex.cur, xmltree.KindText, text)
	return err
}

// instruction executes one node of a template body.
func (ex *executor) instruction(n *xmltree.Node, ctx *xmltree.Node) error {
	switch n.Kind() {
	case xmltree.KindText:
		return ex.emitText(n.Label())
	case xmltree.KindElement:
		// handled below
	default:
		return nil
	}
	local, isXSL := xslLocal(n)
	if !isXSL {
		return ex.literalElement(n, ctx)
	}
	switch local {
	case "apply-templates":
		sel := "child::node()"
		if s, ok := n.AttrValue("select"); ok {
			sel = s
		}
		ns, err := ex.selectNodes(sel, ctx)
		if err != nil {
			return err
		}
		specs, err := sortSpecs(n)
		if err != nil {
			return err
		}
		ns, err = ex.sortNodes(ns, specs)
		if err != nil {
			return err
		}
		return ex.applyTemplates(ns)
	case "value-of":
		sel, ok := n.AttrValue("select")
		if !ok {
			return fmt.Errorf("xslt: xsl:value-of lacks select")
		}
		v, err := ex.eval(sel, ctx)
		if err != nil {
			return err
		}
		return ex.emitText(ex.valueString(v))
	case "for-each":
		sel, ok := n.AttrValue("select")
		if !ok {
			return fmt.Errorf("xslt: xsl:for-each lacks select")
		}
		ns, err := ex.selectNodes(sel, ctx)
		if err != nil {
			return err
		}
		specs, err := sortSpecs(n)
		if err != nil {
			return err
		}
		ns, err = ex.sortNodes(ns, specs)
		if err != nil {
			return err
		}
		for _, item := range ns {
			if err := ex.sequence(n, item); err != nil {
				return err
			}
		}
		return nil
	case "if":
		test, ok := n.AttrValue("test")
		if !ok {
			return fmt.Errorf("xslt: xsl:if lacks test")
		}
		v, err := ex.eval(test, ctx)
		if err != nil {
			return err
		}
		if v.Bool() {
			return ex.sequence(n, ctx)
		}
		return nil
	case "choose":
		for _, c := range n.Children() {
			cl, isX := xslLocal(c)
			if !isX {
				continue
			}
			switch cl {
			case "when":
				test, ok := c.AttrValue("test")
				if !ok {
					return fmt.Errorf("xslt: xsl:when lacks test")
				}
				v, err := ex.eval(test, ctx)
				if err != nil {
					return err
				}
				if v.Bool() {
					return ex.sequence(c, ctx)
				}
			case "otherwise":
				return ex.sequence(c, ctx)
			}
		}
		return nil
	case "copy-of":
		sel, ok := n.AttrValue("select")
		if !ok {
			return fmt.Errorf("xslt: xsl:copy-of lacks select")
		}
		v, err := ex.eval(sel, ctx)
		if err != nil {
			return err
		}
		if ns, isNS := v.(xpath.NodeSet); isNS {
			for _, m := range ns {
				if err := ex.secureCopy(m); err != nil {
					return err
				}
			}
			return nil
		}
		return ex.emitText(v.Str())
	case "element":
		name, ok := n.AttrValue("name")
		if !ok {
			return fmt.Errorf("xslt: xsl:element lacks name")
		}
		name, err := ex.expandAVT(name, ctx)
		if err != nil {
			return err
		}
		el, err := ex.out.AppendChild(ex.cur, xmltree.KindElement, name)
		if err != nil {
			return err
		}
		return ex.into(el, func() error { return ex.sequence(n, ctx) })
	case "attribute":
		name, ok := n.AttrValue("name")
		if !ok {
			return fmt.Errorf("xslt: xsl:attribute lacks name")
		}
		name, err := ex.expandAVT(name, ctx)
		if err != nil {
			return err
		}
		if ex.cur.Kind() != xmltree.KindElement {
			return fmt.Errorf("xslt: xsl:attribute outside an element")
		}
		// Execute the body into a scratch element; its string value becomes
		// the attribute value.
		scratch, err := ex.out.AppendChild(ex.cur, xmltree.KindElement, "scratch")
		if err != nil {
			return err
		}
		if err := ex.into(scratch, func() error { return ex.sequence(n, ctx) }); err != nil {
			return err
		}
		value := scratch.StringValue()
		if err := ex.out.Remove(scratch); err != nil {
			return err
		}
		_, err = ex.out.SetAttribute(ex.cur, name, value)
		return err
	case "text":
		return ex.emitText(n.StringValue())
	case "copy":
		return ex.shallowCopy(n, ctx)
	case "sort":
		// Handled by the enclosing for-each/apply-templates; standalone
		// sorts are meaningless.
		return nil
	default:
		return fmt.Errorf("xslt: unsupported instruction xsl:%s", local)
	}
}

// shallowCopy implements xsl:copy: a copy of the context node without
// attributes or children, whose body executes inside the copy (for
// elements). With the security filter the effective label is copied.
func (ex *executor) shallowCopy(instr, ctx *xmltree.Node) error {
	switch ctx.Kind() {
	case xmltree.KindDocument:
		// Copying the document node is a no-op wrapper.
		return ex.sequence(instr, ctx)
	case xmltree.KindText, xmltree.KindComment:
		return ex.emitText(ex.sec.EffectiveLabel(ctx))
	case xmltree.KindAttribute:
		if ex.cur.Kind() != xmltree.KindElement {
			return fmt.Errorf("xslt: xsl:copy of an attribute outside an element")
		}
		_, err := ex.out.SetAttribute(ex.cur, ex.sec.EffectiveLabel(ctx), ex.sec.StringValue(ctx))
		return err
	default: // element
		el, err := ex.out.AppendChild(ex.cur, xmltree.KindElement, ex.sec.EffectiveLabel(ctx))
		if err != nil {
			return err
		}
		return ex.into(el, func() error { return ex.sequence(instr, ctx) })
	}
}

// sortSpec is one xsl:sort criterion.
type sortSpec struct {
	selectExpr string
	descending bool
	numeric    bool
}

// sortSpecs extracts leading xsl:sort children of a for-each or
// apply-templates instruction.
func sortSpecs(n *xmltree.Node) ([]sortSpec, error) {
	var specs []sortSpec
	for _, c := range n.Children() {
		local, isX := xslLocal(c)
		if !isX || local != "sort" {
			continue
		}
		spec := sortSpec{selectExpr: "."}
		if sel, ok := c.AttrValue("select"); ok {
			spec.selectExpr = sel
		}
		if ord, ok := c.AttrValue("order"); ok && ord == "descending" {
			spec.descending = true
		}
		if dt, ok := c.AttrValue("data-type"); ok && dt == "number" {
			spec.numeric = true
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// sortNodes orders ns by the sort criteria (stable; document order is the
// tiebreak since the input arrives in document order).
func (ex *executor) sortNodes(ns []*xmltree.Node, specs []sortSpec) ([]*xmltree.Node, error) {
	if len(specs) == 0 {
		return ns, nil
	}
	type keyed struct {
		n    *xmltree.Node
		keys []string
		nums []float64
	}
	items := make([]keyed, len(ns))
	for i, n := range ns {
		items[i].n = n
		for _, sp := range specs {
			v, err := ex.eval(sp.selectExpr, n)
			if err != nil {
				return nil, err
			}
			s := ex.valueString(v)
			items[i].keys = append(items[i].keys, s)
			items[i].nums = append(items[i].nums, xpath.String(s).Num())
		}
	}
	sort.SliceStable(items, func(a, b int) bool {
		for k, sp := range specs {
			var less, greater bool
			if sp.numeric {
				less = items[a].nums[k] < items[b].nums[k]
				greater = items[a].nums[k] > items[b].nums[k]
			} else {
				c := strings.Compare(items[a].keys[k], items[b].keys[k])
				less, greater = c < 0, c > 0
			}
			if sp.descending {
				less, greater = greater, less
			}
			if less {
				return true
			}
			if greater {
				return false
			}
		}
		return false
	})
	out := make([]*xmltree.Node, len(items))
	for i, it := range items {
		out[i] = it.n
	}
	return out, nil
}

// literalElement copies a literal result element, expanding attribute
// value templates, and executes its children into it.
func (ex *executor) literalElement(n *xmltree.Node, ctx *xmltree.Node) error {
	el, err := ex.out.AppendChild(ex.cur, xmltree.KindElement, literalName(n.Label()))
	if err != nil {
		return err
	}
	for _, a := range n.Attributes() {
		val, err := ex.expandAVT(a.StringValue(), ctx)
		if err != nil {
			return err
		}
		if _, err := ex.out.SetAttribute(el, literalName(a.Label()), val); err != nil {
			return err
		}
	}
	return ex.into(el, func() error { return ex.sequence(n, ctx) })
}

// secureCopy deep-copies a source node into the output under the filter:
// invisible nodes vanish, labels are the effective ones.
func (ex *executor) secureCopy(n *xmltree.Node) error {
	if !ex.sec.IsVisible(n) {
		return nil
	}
	switch n.Kind() {
	case xmltree.KindDocument:
		for _, c := range n.Children() {
			if err := ex.secureCopy(c); err != nil {
				return err
			}
		}
		return nil
	case xmltree.KindAttribute:
		if ex.cur.Kind() != xmltree.KindElement {
			return ex.emitText(ex.sec.StringValue(n))
		}
		_, err := ex.out.SetAttribute(ex.cur, ex.sec.EffectiveLabel(n), ex.sec.StringValue(n))
		return err
	case xmltree.KindText, xmltree.KindComment:
		return ex.emitText(ex.sec.EffectiveLabel(n))
	default: // element
		el, err := ex.out.AppendChild(ex.cur, xmltree.KindElement, ex.sec.EffectiveLabel(n))
		if err != nil {
			return err
		}
		return ex.into(el, func() error {
			for _, a := range n.Attributes() {
				if err := ex.secureCopy(a); err != nil {
					return err
				}
			}
			for _, c := range n.Children() {
				if err := ex.secureCopy(c); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// eval evaluates an expression with ctx as context, under the filter.
func (ex *executor) eval(src string, ctx *xmltree.Node) (xpath.Value, error) {
	c, err := xpath.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("xslt: %w", err)
	}
	return c.EvalFiltered(ctx, ex.vars, ex.sec)
}

// selectNodes evaluates a node-set expression.
func (ex *executor) selectNodes(src string, ctx *xmltree.Node) ([]*xmltree.Node, error) {
	c, err := xpath.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("xslt: %w", err)
	}
	return c.SelectFiltered(ctx, ex.vars, ex.sec)
}

// valueString converts an evaluation result to its string form, respecting
// the filter for node-sets.
func (ex *executor) valueString(v xpath.Value) string {
	if ns, ok := v.(xpath.NodeSet); ok {
		if len(ns) == 0 {
			return ""
		}
		return ex.sec.StringValue(ns[0])
	}
	return v.Str()
}

// expandAVT substitutes {expr} attribute value templates.
func (ex *executor) expandAVT(src string, ctx *xmltree.Node) (string, error) {
	if !strings.ContainsAny(src, "{}") {
		return src, nil
	}
	var b strings.Builder
	for i := 0; i < len(src); {
		switch src[i] {
		case '{':
			if i+1 < len(src) && src[i+1] == '{' { // escaped
				b.WriteByte('{')
				i += 2
				continue
			}
			end := strings.IndexByte(src[i+1:], '}')
			if end < 0 {
				return "", fmt.Errorf("xslt: unterminated attribute value template in %q", src)
			}
			expr := src[i+1 : i+1+end]
			v, err := ex.eval(expr, ctx)
			if err != nil {
				return "", err
			}
			b.WriteString(ex.valueString(v))
			i += end + 2
		case '}':
			if i+1 < len(src) && src[i+1] == '}' { // escaped
				b.WriteByte('}')
				i += 2
				continue
			}
			return "", fmt.Errorf("xslt: stray '}' in attribute value template %q", src)
		default:
			b.WriteByte(src[i])
			i++
		}
	}
	return b.String(), nil
}
