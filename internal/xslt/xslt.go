// Package xslt implements a compact XSLT 1.0 subset on top of the XPath
// engine — the "XSLT-based security processor" the paper's conclusion
// describes as work in progress (§5: "We are also currently implementing
// an XSLT-based security processor based on our model").
//
// The security angle: Transform accepts an xpath.Security filter. With the
// filter derived from a user's permissions (qfilter.ForPerms), the
// stylesheet executes directly against the source document but can only
// observe the user's authorized view — patterns don't match invisible
// nodes, value-of/copy-of see effective (possibly RESTRICTED) labels, and
// pruned subtrees simply don't exist. That is precisely a security
// processor: one pass, no materialized intermediate view.
//
// Supported instructions: xsl:template (match/priority), xsl:apply-templates
// (select), xsl:value-of (select), xsl:for-each (select), xsl:if (test),
// xsl:choose/when/otherwise, xsl:copy-of (select), xsl:element (name),
// xsl:attribute (name), xsl:text, literal result elements, and attribute
// value templates ({expr}) in literal attributes. Omitted: modes, named
// templates/call-template, keys, imports, number formatting.
package xslt

import (
	"errors"
	"fmt"
	"strings"

	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// XSLNamespace is the XSLT 1.0 namespace.
const XSLNamespace = "http://www.w3.org/1999/XSL/Transform"

// Stylesheet is a parsed, reusable stylesheet.
type Stylesheet struct {
	templates []*template
}

// template is one xsl:template rule.
type template struct {
	matchSrc string
	patterns []*compiledPattern
	priority float64
	body     *xmltree.Node // the template element in the stylesheet tree
}

// compiledPattern anchors a match pattern for evaluation from the root.
type compiledPattern struct {
	src      string
	anchored *xpath.Compiled
}

// errParse wraps stylesheet parse failures.
var errParse = errors.New("xslt: invalid stylesheet")

// ParseStylesheet reads an <xsl:stylesheet> document. The stylesheet is
// written with the conventional xsl: prefix; the namespace declaration is
// accepted but not required (matching the rest of the model's
// namespace-free treatment).
func ParseStylesheet(src string) (*Stylesheet, error) {
	doc, err := xmltree.ParseString(src, xmltree.ParseOptions{KeepPrefixes: true})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errParse, err)
	}
	root := doc.RootElement()
	rootLocal, rootIsXSL := xslLocal(root)
	if root == nil || !rootIsXSL || (rootLocal != "stylesheet" && rootLocal != "transform") {
		return nil, fmt.Errorf("%w: root element must be xsl:stylesheet", errParse)
	}
	sheet := &Stylesheet{}
	for _, c := range root.Children() {
		if c.Kind() != xmltree.KindElement {
			continue
		}
		local, isXSL := xslLocal(c)
		if !isXSL || local != "template" {
			return nil, fmt.Errorf("%w: unsupported top-level element <%s>", errParse, c.Label())
		}
		match, ok := c.AttrValue("match")
		if !ok || match == "" {
			return nil, fmt.Errorf("%w: xsl:template lacks a match pattern", errParse)
		}
		t := &template{matchSrc: match, body: c}
		for _, alt := range strings.Split(match, "|") {
			alt = strings.TrimSpace(alt)
			if alt == "" {
				return nil, fmt.Errorf("%w: empty alternative in match %q", errParse, match)
			}
			cp, err := compilePattern(alt)
			if err != nil {
				return nil, err
			}
			t.patterns = append(t.patterns, cp)
		}
		t.priority = defaultPriority(match)
		if p, ok := c.AttrValue("priority"); ok {
			t.priority = xpath.String(p).Num()
		}
		sheet.templates = append(sheet.templates, t)
	}
	if len(sheet.templates) == 0 {
		return nil, fmt.Errorf("%w: stylesheet has no templates", errParse)
	}
	return sheet, nil
}

// MustParseStylesheet panics on error; for tests and fixed stylesheets.
func MustParseStylesheet(src string) *Stylesheet {
	s, err := ParseStylesheet(src)
	if err != nil {
		panic(err)
	}
	return s
}

// xslLocal reports whether a node is an XSLT instruction element and
// returns its local name. Both the resolved namespace and the bare "xsl"
// prefix (undeclared namespace) are accepted.
func xslLocal(n *xmltree.Node) (string, bool) {
	if n == nil || n.Kind() != xmltree.KindElement {
		return "", false
	}
	label := n.Label()
	if rest, ok := strings.CutPrefix(label, XSLNamespace+":"); ok {
		return rest, true
	}
	if rest, ok := strings.CutPrefix(label, "xsl:"); ok {
		return rest, true
	}
	return "", false
}

// literalName strips any non-XSL namespace URL from a literal result
// element's label (literal elements in a prefix-preserving parse may carry
// their own namespaces, which the output does not retain).
func literalName(label string) string {
	if i := strings.LastIndexByte(label, ':'); i >= 0 {
		return label[i+1:]
	}
	return label
}

// compilePattern anchors a single (non-union) pattern: absolute patterns
// compile as written, relative patterns match at any depth, per XSLT's
// pattern semantics.
func compilePattern(p string) (*compiledPattern, error) {
	anchor := p
	if !strings.HasPrefix(p, "/") {
		anchor = "//" + p
	}
	c, err := xpath.Compile(anchor)
	if err != nil {
		return nil, fmt.Errorf("%w: match pattern %q: %v", errParse, p, err)
	}
	return &compiledPattern{src: p, anchored: c}, nil
}

// defaultPriority approximates the spec's default priorities: bare node
// tests get low priority, structured patterns higher.
func defaultPriority(match string) float64 {
	switch match {
	case "/", "*", "node()":
		return -0.5
	case "text()", "comment()":
		return -0.5
	}
	if strings.ContainsAny(match, "/[") {
		return 0.5
	}
	return 0
}
