package xslt

import (
	"strings"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/qfilter"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

func med(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func transform(t *testing.T, sheet, docXML string, sec *xpath.Security) string {
	t.Helper()
	s, err := ParseStylesheet(sheet)
	if err != nil {
		t.Fatal(err)
	}
	d, err := xmltree.ParseString(docXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.TransformString(d, nil, sec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIdentityish(t *testing.T) {
	// Built-in rules alone: with one trivial template at the root, text
	// percolates up.
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><xsl:apply-templates/></xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	want := "otolaryngologytonsillitispneumologypneumonia"
	if strings.Join(strings.Fields(out), "") != want {
		t.Errorf("builtin text percolation = %q", out)
	}
}

func TestLiteralElementsAndValueOf(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <report><xsl:apply-templates select="//diagnosis"/></report>
		  </xsl:template>
		  <xsl:template match="diagnosis">
		    <case><xsl:value-of select="text()"/></case>
		  </xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	d, err := xmltree.ParseString(out, xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("output not well-formed: %v\n%s", err, out)
	}
	cases, err := xpath.Select(d, "/report/case", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 || cases[0].StringValue() != "tonsillitis" {
		t.Errorf("cases = %d, first = %q\n%s", len(cases), cases[0].StringValue(), out)
	}
}

func TestForEachIfChoose(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <list>
		      <xsl:for-each select="/patients/*">
		        <xsl:if test="service">
		          <item severity="{string-length(diagnosis)}">
		            <xsl:choose>
		              <xsl:when test="diagnosis = 'pneumonia'">serious</xsl:when>
		              <xsl:otherwise>routine</xsl:otherwise>
		            </xsl:choose>
		          </item>
		        </xsl:if>
		      </xsl:for-each>
		    </list>
		  </xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	d, err := xmltree.ParseString(out, xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("bad output: %v\n%s", err, out)
	}
	items, err := xpath.Select(d, "/list/item", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("%d items\n%s", len(items), out)
	}
	if items[0].StringValue() != "routine" || items[1].StringValue() != "serious" {
		t.Errorf("choose results: %q, %q", items[0].StringValue(), items[1].StringValue())
	}
	if sev, _ := items[1].AttrValue("severity"); sev != "9" { // len("pneumonia")
		t.Errorf("AVT severity = %q", sev)
	}
}

func TestElementAttributeTextInstructions(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <xsl:element name="x{count(//diagnosis)}">
		      <xsl:attribute name="kind">report</xsl:attribute>
		      <xsl:text>fixed text</xsl:text>
		    </xsl:element>
		  </xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	if !strings.Contains(out, `<x2 kind="report">fixed text</x2>`) {
		t.Errorf("constructed element wrong: %s", out)
	}
}

func TestCopyOf(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <dump><xsl:copy-of select="/patients/franck"/></dump>
		  </xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	d, err := xmltree.ParseString(out, xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("bad output: %v\n%s", err, out)
	}
	ns, err := xpath.Select(d, "/dump/franck/diagnosis/text()", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].Label() != "tonsillitis" {
		t.Errorf("copy-of incomplete:\n%s", out)
	}
}

func TestTemplatePriorities(t *testing.T) {
	// The more specific pattern must win over the generic one.
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><r><xsl:apply-templates select="//diagnosis"/></r></xsl:template>
		  <xsl:template match="*"><generic/></xsl:template>
		  <xsl:template match="franck/diagnosis"><franckcase/></xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	if !strings.Contains(out, "<franckcase/>") || !strings.Contains(out, "<generic/>") {
		t.Errorf("priorities wrong:\n%s", out)
	}
	// Explicit priority overrides.
	out = transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><r><xsl:apply-templates select="//diagnosis"/></r></xsl:template>
		  <xsl:template match="*" priority="10"><generic/></xsl:template>
		  <xsl:template match="franck/diagnosis"><franckcase/></xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	if strings.Contains(out, "<franckcase/>") {
		t.Errorf("explicit priority ignored:\n%s", out)
	}
}

func TestUnionMatch(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><r><xsl:apply-templates select="/patients/*/*"/></r></xsl:template>
		  <xsl:template match="service | diagnosis"><hit/></xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	if strings.Count(out, "<hit/>") != 4 {
		t.Errorf("union match hits = %d, want 4\n%s", strings.Count(out, "<hit/>"), out)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<notastylesheet/>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"/>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template/></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><stray/></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="//["><x/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="a||b"><x/></xsl:template></xsl:stylesheet>`,
	}
	for _, src := range bad {
		if _, err := ParseStylesheet(src); err == nil {
			t.Errorf("accepted bad stylesheet: %s", src)
		}
	}
}

func TestExecutionErrors(t *testing.T) {
	cases := []string{
		// missing select/test attributes and unsupported instruction
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><xsl:value-of/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><xsl:for-each/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><xsl:if>x</xsl:if></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><xsl:copy-of/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><xsl:unknown-thing/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><e a="{unclosed"/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><e a="stray}brace"/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><xsl:value-of select="//["/></xsl:template></xsl:stylesheet>`,
	}
	d := med(t)
	for _, src := range cases {
		s, err := ParseStylesheet(src)
		if err != nil {
			continue // parse-time rejection is fine too
		}
		if _, err := s.Transform(d, nil, nil); err == nil {
			t.Errorf("executed bad stylesheet: %s", src)
		}
	}
}

func TestInfiniteRecursionGuard(t *testing.T) {
	s := MustParseStylesheet(`
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><xsl:apply-templates select="//patients"/></xsl:template>
		  <xsl:template match="patients"><xsl:apply-templates select="//patients"/></xsl:template>
		</xsl:stylesheet>`)
	if _, err := s.Transform(med(t), nil, nil); err == nil {
		t.Error("cyclic apply-templates terminated without error")
	}
}

func TestAVTEscapes(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><e a="{{literal}} and {count(//service)}"/></xsl:template>
		</xsl:stylesheet>`, medXML, nil)
	if !strings.Contains(out, `a="{literal} and 2"`) {
		t.Errorf("AVT escapes wrong: %s", out)
	}
}

// --- the security-processor mode ---------------------------------------------

// secretarySec builds the axiom-13 secretary filter.
func secretarySec(t *testing.T, d *xmltree.Document) *xpath.Security {
	t.Helper()
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := p.Evaluate(d, h, "beaufort")
	if err != nil {
		t.Fatal(err)
	}
	return qfilter.ForPerms(pm)
}

// robertSec builds the filter for patient robert.
func robertSec(t *testing.T, d *xmltree.Document) *xpath.Security {
	t.Helper()
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := p.Evaluate(d, h, "robert")
	if err != nil {
		t.Fatal(err)
	}
	return qfilter.ForPerms(pm)
}

// TestSecurityProcessorFiltersTransform: the same stylesheet, run as
// different users, produces per-user reports — diagnosis content appears
// as RESTRICTED for the secretary and franck's data vanishes for robert.
func TestSecurityProcessorFiltersTransform(t *testing.T) {
	sheet := `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <report>
		      <xsl:for-each select="/patients/*">
		        <row patient="{name()}" dx="{diagnosis}"/>
		      </xsl:for-each>
		    </report>
		  </xsl:template>
		</xsl:stylesheet>`
	d := med(t)

	// Unfiltered (admin view).
	full := transform(t, sheet, medXML, nil)
	if !strings.Contains(full, `dx="tonsillitis"`) {
		t.Errorf("full transform wrong:\n%s", full)
	}

	// Secretary: names visible, diagnoses RESTRICTED.
	s := MustParseStylesheet(sheet)
	secOut, err := s.TransformString(d, nil, secretarySec(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(secOut, `patient="franck"`) {
		t.Errorf("secretary lost names:\n%s", secOut)
	}
	if strings.Contains(secOut, "tonsillitis") || !strings.Contains(secOut, `dx="RESTRICTED"`) {
		t.Errorf("secretary report leaks or lacks RESTRICTED:\n%s", secOut)
	}

	// Robert: only his own row.
	robOut, err := s.TransformString(d, nil, robertSec(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(robOut, "franck") || strings.Contains(robOut, "tonsillitis") {
		t.Errorf("robert's report leaks franck:\n%s", robOut)
	}
	if !strings.Contains(robOut, `dx="pneumonia"`) {
		t.Errorf("robert lost his own data:\n%s", robOut)
	}
}

// TestSecureCopyOf: copy-of under the filter deep-copies the *view*.
func TestSecureCopyOf(t *testing.T) {
	d := med(t)
	s := MustParseStylesheet(`
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><dump><xsl:copy-of select="/patients"/></dump></xsl:template>
		</xsl:stylesheet>`)
	out, err := s.TransformString(d, nil, secretarySec(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "tonsillitis") || strings.Contains(out, "pneumonia") {
		t.Errorf("secure copy-of leaked content:\n%s", out)
	}
	if strings.Count(out, "RESTRICTED") != 2 {
		t.Errorf("secure copy-of RESTRICTED count wrong:\n%s", out)
	}
	if !strings.Contains(out, "<service>") {
		t.Errorf("secure copy-of lost visible structure:\n%s", out)
	}
}

// TestSecurityProcessorMatchesViewTransform: transforming through the
// filter equals transforming the materialized view — the §5 equivalence,
// now for whole stylesheets.
func TestSecurityProcessorMatchesViewTransform(t *testing.T) {
	sheet := MustParseStylesheet(`
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <summary total="{count(/patients/*)}">
		      <xsl:for-each select="//diagnosis"><d><xsl:value-of select="."/></d></xsl:for-each>
		    </summary>
		  </xsl:template>
		</xsl:stylesheet>`)
	d := med(t)
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range h.Users() {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := sheet.TransformString(d, xpath.Vars{"USER": xpath.String(user)}, qfilter.ForPerms(pm))
		if err != nil {
			t.Fatal(err)
		}
		v := materialize(t, d, pm)
		onView, err := sheet.TransformString(v, xpath.Vars{"USER": xpath.String(user)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if filtered != onView {
			t.Errorf("%s: filtered transform differs from view transform:\n%s\nvs\n%s",
				user, filtered, onView)
		}
	}
}

func materialize(t *testing.T, d *xmltree.Document, pm *policy.Perms) *xmltree.Document {
	t.Helper()
	return view.Materialize(d, pm).Doc
}

func TestCopyOfDocumentNodeAndAttributes(t *testing.T) {
	// copy-of "/" unwraps the document node; attribute selections copy onto
	// the current output element.
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <wrap><xsl:copy-of select="/"/></wrap>
		  </xsl:template>
		</xsl:stylesheet>`,
		`<r a="1"><b c="2">t</b></r>`, nil)
	d, err := xmltree.ParseString(out, xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("bad output: %v\n%s", err, out)
	}
	ns, err := xpath.Select(d, "/wrap/r[@a='1']/b[@c='2']/text()", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].Label() != "t" {
		t.Errorf("document copy-of incomplete:\n%s", out)
	}
	// Selecting attributes directly copies them onto the current element.
	out2 := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <wrap><xsl:copy-of select="//@*"/></wrap>
		  </xsl:template>
		</xsl:stylesheet>`,
		`<r a="1"><b c="2">t</b></r>`, nil)
	if !strings.Contains(out2, `a="1"`) || !strings.Contains(out2, `c="2"`) {
		t.Errorf("attribute copy-of: %s", out2)
	}
}

func TestCopyOfAtomic(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><n><xsl:copy-of select="1 + 2"/></n></xsl:template>
		</xsl:stylesheet>`, `<r/>`, nil)
	if !strings.Contains(out, "<n>3</n>") {
		t.Errorf("atomic copy-of: %s", out)
	}
}

func TestValueOfEmptyNodeSet(t *testing.T) {
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><n>[<xsl:value-of select="//missing"/>]</n></xsl:template>
		</xsl:stylesheet>`, `<r/>`, nil)
	if !strings.Contains(out, "<n>[]</n>") {
		t.Errorf("empty value-of: %s", out)
	}
}

func TestAttributeInstructionErrors(t *testing.T) {
	// xsl:attribute at the output root (no element) fails.
	s := MustParseStylesheet(`
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><xsl:attribute name="a">v</xsl:attribute></xsl:template>
		</xsl:stylesheet>`)
	if _, err := s.Transform(med(t), nil, nil); err == nil {
		t.Error("xsl:attribute at output root accepted")
	}
	// Missing name attributes.
	for _, body := range []string{
		`<xsl:element>x</xsl:element>`,
		`<xsl:attribute>x</xsl:attribute>`,
	} {
		src := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="/"><o>` +
			body + `</o></xsl:template></xsl:stylesheet>`
		s, err := ParseStylesheet(src)
		if err != nil {
			continue
		}
		if _, err := s.Transform(med(t), nil, nil); err == nil {
			t.Errorf("accepted: %s", body)
		}
	}
}

func TestStylesheetWithoutNamespaceDeclaration(t *testing.T) {
	// The bare xsl: prefix (no xmlns declaration) works too.
	out := transform(t, `
		<xsl:stylesheet>
		  <xsl:template match="/"><ok><xsl:value-of select="count(//*)"/></ok></xsl:template>
		</xsl:stylesheet>`, `<r><a/><b/></r>`, nil)
	if !strings.Contains(out, "<ok>3</ok>") {
		t.Errorf("prefix-only stylesheet: %s", out)
	}
}

// squash removes all whitespace between markup for order assertions.
func squash(s string) string { return strings.Join(strings.Fields(s), "") }

func TestSort(t *testing.T) {
	src := `<r><e k="b" n="10"/><e k="a" n="9"/><e k="c" n="100"/></r>`
	out := transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <s><xsl:for-each select="//e"><xsl:sort select="@k"/><v><xsl:value-of select="@k"/></v></xsl:for-each></s>
		  </xsl:template>
		</xsl:stylesheet>`, src, nil)
	if !strings.Contains(squash(out), "<v>a</v><v>b</v><v>c</v>") {
		t.Errorf("text sort wrong:\n%s", out)
	}
	// Numeric vs lexicographic: "9" < "10" numerically, "10" < "9" textually.
	out = transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <s><xsl:for-each select="//e"><xsl:sort select="@n" data-type="number"/><v><xsl:value-of select="@n"/></v></xsl:for-each></s>
		  </xsl:template>
		</xsl:stylesheet>`, src, nil)
	if !strings.Contains(squash(out), "<v>9</v><v>10</v><v>100</v>") {
		t.Errorf("numeric sort wrong:\n%s", out)
	}
	// Descending + apply-templates.
	out = transform(t, `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <s><xsl:apply-templates select="//e"><xsl:sort select="@k" order="descending"/></xsl:apply-templates></s>
		  </xsl:template>
		  <xsl:template match="e"><v><xsl:value-of select="@k"/></v></xsl:template>
		</xsl:stylesheet>`, src, nil)
	if !strings.Contains(squash(out), "<v>c</v><v>b</v><v>a</v>") {
		t.Errorf("descending apply-templates sort wrong:\n%s", out)
	}
}

// TestIdentityTransformEqualsView: THE theorem of the §5 security
// processor — the classic identity stylesheet, executed through a user's
// filter, reproduces exactly the materialized view of axioms 15–17.
func TestIdentityTransformEqualsView(t *testing.T) {
	identity := MustParseStylesheet(`
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/"><xsl:apply-templates/></xsl:template>
		  <xsl:template match="*">
		    <xsl:copy>
		      <xsl:apply-templates select="@*"/>
		      <xsl:apply-templates/>
		    </xsl:copy>
		  </xsl:template>
		  <xsl:template match="@*"><xsl:copy/></xsl:template>
		  <xsl:template match="text()"><xsl:copy/></xsl:template>
		</xsl:stylesheet>`)
	d := med(t)
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range h.Users() {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			t.Fatal(err)
		}
		got, err := identity.TransformString(d, xpath.Vars{"USER": xpath.String(user)}, qfilter.ForPerms(pm))
		if err != nil {
			t.Fatal(err)
		}
		want := view.Materialize(d, pm).Doc.XML()
		if strings.TrimSpace(got) != strings.TrimSpace(want) {
			t.Errorf("%s: identity-through-filter differs from the materialized view:\n%s\nvs\n%s",
				user, got, want)
		}
	}
}
