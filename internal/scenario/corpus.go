package scenario

import (
	"fmt"
	"math/rand"

	"securexml/internal/labeling"
	"securexml/internal/policy"
	"securexml/internal/storage"
	"securexml/internal/subject"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
)

// This file generates seeded policy corpora in shapes richer than the
// hospital demo — per-object ACL sharing, deep RBAC role trees, and
// ReBAC-style $USER owner/friend predicates — at parameterized rule
// counts. Two consumers: the analyzer/repair engine uses faulty corpora as
// fixtures (each seeded fault records the finding it must produce, and the
// engine must synthesize a validated repair for it), and the cache tier
// uses clean corpora as a cold-evaluation stress load.
//
// Generation discipline for clean corpora (Faults = 0 must analyze to zero
// findings): priorities ascend in emit order; broad accepts precede narrow
// denies (so no accept postdates an overlapping deny); every subject has a
// user in scope; every write grant is emitted alongside a read grant
// covering its region for the same users; no position grants outside the
// paper policy (covert-channel hazards need position); and per-object
// regions are rooted under distinct depth-2 element names, which both
// mirrors real multi-tenant layouts and keeps the analyzer's pairwise
// passes inside small discriminator buckets.

// Fault records one seeded defect and the finding it must produce.
type Fault struct {
	// Code is the expected finding code; Priority its expected anchor.
	Code     string
	Priority int64
}

// CorpusConfig parameterizes GenerateCorpus.
type CorpusConfig struct {
	// Shape is one of Shapes(): "acl", "rbac", "rebac" or "hospital".
	Shape string
	// Rules is the approximate organic rule count (faults add a few more).
	Rules int
	// Seed drives deterministic generation.
	Seed int64
	// Faults seeds this many defects, cycling through the repairable
	// kinds: conflict-overlap, dead-rule, write-insert-invisible,
	// write-unselectable-target, priority-collision (at most one
	// collision; extra cycles fall back to conflict-overlap).
	Faults int
}

// Corpus is one generated scenario.
type Corpus struct {
	Name      string
	Doc       *xmltree.Document
	Hierarchy *subject.Hierarchy
	// Rules is the policy in emit order (ascending priorities except for
	// seeded collision faults).
	Rules []policy.Rule
	// Faults lists the seeded defects with their expected findings.
	Faults []Fault
}

// Shapes lists the supported corpus shapes.
func Shapes() []string { return []string{"acl", "rbac", "rebac", "hospital"} }

// GenerateCorpus builds a corpus deterministically from its config.
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) {
	b := &builder{
		h:   subject.NewHierarchy(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	b.doc = xmltree.New(labeling.NewFracPath())
	var err error
	switch cfg.Shape {
	case "acl":
		err = b.acl(cfg)
	case "rbac":
		err = b.rbac(cfg)
	case "rebac":
		err = b.rebac(cfg)
	case "hospital":
		err = b.hospital(cfg)
	default:
		return nil, fmt.Errorf("scenario: unknown corpus shape %q (have %v)", cfg.Shape, Shapes())
	}
	if err != nil {
		return nil, err
	}
	faults, err := b.seedFaults(cfg.Faults)
	if err != nil {
		return nil, err
	}
	return &Corpus{
		Name:      fmt.Sprintf("%s-%d-seed%d-faults%d", cfg.Shape, cfg.Rules, cfg.Seed, cfg.Faults),
		Doc:       b.doc,
		Hierarchy: b.h,
		Rules:     b.rules,
		Faults:    faults,
	}, nil
}

// Snapshot packages the corpus in the storage format xmlsec-lint reads.
func (c *Corpus) Snapshot() *storage.Snapshot {
	return &storage.Snapshot{
		SchemeName: "fracpath",
		Doc:        c.Doc,
		Subjects:   c.Hierarchy,
		Rules:      c.Rules,
	}
}

// Policy builds an Add-validated policy from the corpus rules. It fails on
// corpora with seeded priority collisions, which Add rejects by design.
func (c *Corpus) Policy() (*policy.Policy, error) {
	p := policy.New()
	for _, r := range c.Rules {
		if err := p.Add(c.Hierarchy, r); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// builder accumulates one corpus.
type builder struct {
	doc   *xmltree.Document
	h     *subject.Hierarchy
	rules []policy.Rule
	next  int64
	rng   *rand.Rand
	// reopen lists organic denies a conflict fault may reopen: the deny's
	// priority, a strictly narrower path inside its region, and its
	// subject.
	reopen []reopenTarget
	// dupSafe indexes rules whose duplication is a pure bookkeeping fault
	// (disjoint from fault regions, harmless to re-state).
	dupSafe []int
	// faultSubject is a populated subject outside the scope of any broad
	// read grant, used for write-fault rules so their regions stay
	// invisible.
	faultSubject string
}

type reopenTarget struct {
	priority   int64
	narrowPath string
	subject    string
}

// rule appends a rule at the next ascending priority and returns it.
func (b *builder) rule(e policy.Effect, p policy.Privilege, path, subj string) int64 {
	b.next++
	b.rules = append(b.rules, policy.Rule{
		Effect: e, Privilege: p, Path: path, Subject: subj, Priority: b.next,
	})
	return b.next
}

func (b *builder) el(parent *xmltree.Node, name string) (*xmltree.Node, error) {
	return b.doc.AppendChild(parent, xmltree.KindElement, name)
}

func (b *builder) elText(parent *xmltree.Node, name, text string) error {
	n, err := b.el(parent, name)
	if err != nil {
		return err
	}
	_, err = b.doc.AppendChild(n, xmltree.KindText, text)
	return err
}

// acl builds per-object sharing: each object under /objects has an owner
// and one sharee with subtree read, the owner holds the write privileges
// on the object's data region, and a trailing deny keeps each object's
// meta region from its sharee.
func (b *builder) acl(cfg CorpusConfig) error {
	objects := cfg.Rules / 6
	if objects < 1 {
		objects = 1
	}
	users := objects / 3
	if users < 4 {
		users = 4
	}
	if users > 64 {
		users = 64
	}
	if err := b.h.AddRole("admin"); err != nil {
		return err
	}
	if err := b.h.AddRole("member"); err != nil {
		return err
	}
	if err := b.h.AddUser("root", "admin"); err != nil {
		return err
	}
	names := make([]string, users)
	for i := range names {
		names[i] = fmt.Sprintf("u%d", i)
		if err := b.h.AddUser(names[i], "member"); err != nil {
			return err
		}
	}
	b.faultSubject = "member"
	root, err := b.el(b.doc.Root(), "objects")
	if err != nil {
		return err
	}
	for i := 0; i < objects; i++ {
		o, err := b.el(root, fmt.Sprintf("o%d", i))
		if err != nil {
			return err
		}
		if err := b.elText(o, "owner", names[i%users]); err != nil {
			return err
		}
		meta, err := b.el(o, "meta")
		if err != nil {
			return err
		}
		if err := b.elText(meta, "created", fmt.Sprintf("day%d", b.rng.Intn(365))); err != nil {
			return err
		}
		data, err := b.el(o, "data")
		if err != nil {
			return err
		}
		if err := b.elText(data, "item", fmt.Sprintf("payload%d", i)); err != nil {
			return err
		}
	}
	b.rule(policy.Accept, policy.Read, "/descendant-or-self::node()", "admin")
	b.rule(policy.Accept, policy.Insert, "/objects", "admin")
	for i := 0; i < objects; i++ {
		owner, sharee := names[i%users], names[(i+1)%users]
		obj := fmt.Sprintf("/objects/o%d", i)
		idx := len(b.rules)
		b.rule(policy.Accept, policy.Read, obj+"/descendant-or-self::node()", owner)
		b.dupSafe = append(b.dupSafe, idx)
		b.rule(policy.Accept, policy.Read, obj+"/descendant-or-self::node()", sharee)
		b.rule(policy.Accept, policy.Insert, obj+"/data", owner)
		b.rule(policy.Accept, policy.Update, obj+"/data/node()", owner)
		b.rule(policy.Accept, policy.Delete, obj+"/data/item", owner)
	}
	for i := 0; i < objects; i++ {
		sharee := names[(i+1)%users]
		obj := fmt.Sprintf("/objects/o%d", i)
		p := b.rule(policy.Deny, policy.Read, obj+"/meta/node()", sharee)
		b.reopen = append(b.reopen, reopenTarget{p, obj + "/meta/created", sharee})
	}
	return nil
}

// rbac builds a three-level role tree (division > department > team) over
// /org: division roles hold subtree read, team roles hold the write
// privileges on their documents, and doc1 bodies are denied to their own
// team last.
func (b *builder) rbac(cfg CorpusConfig) error {
	teams := cfg.Rules / 5
	if teams < 1 {
		teams = 1
	}
	divisions := teams / 8
	if divisions < 2 {
		divisions = 2
	}
	const depsPerDiv = 2
	b.faultSubject = "div0" // populated via its teams' users
	org, err := b.el(b.doc.Root(), "org")
	if err != nil {
		return err
	}
	type teamRef struct{ div, dep, team string }
	var refs []teamRef
	divEl := make(map[string]*xmltree.Node)
	depEl := make(map[string]*xmltree.Node)
	for t := 0; t < teams; t++ {
		d := t % divisions
		e := (t / divisions) % depsPerDiv
		div := fmt.Sprintf("div%d", d)
		dep := fmt.Sprintf("dep%d_%d", d, e)
		team := fmt.Sprintf("team%d_%d_%d", d, e, t)
		if divEl[div] == nil {
			if err := b.h.AddRole(div); err != nil {
				return err
			}
			if divEl[div], err = b.el(org, div); err != nil {
				return err
			}
		}
		if depEl[dep] == nil {
			if err := b.h.AddRole(dep, div); err != nil {
				return err
			}
			if depEl[dep], err = b.el(divEl[div], dep); err != nil {
				return err
			}
		}
		if err := b.h.AddRole(team, dep); err != nil {
			return err
		}
		if err := b.h.AddUser("u_"+team, team); err != nil {
			return err
		}
		tn, err := b.el(depEl[dep], team)
		if err != nil {
			return err
		}
		for n := 0; n < 2; n++ {
			doc, err := b.el(tn, fmt.Sprintf("doc%d", n))
			if err != nil {
				return err
			}
			if err := b.elText(doc, "title", fmt.Sprintf("%s report %d", team, n)); err != nil {
				return err
			}
			body, err := b.el(doc, "body")
			if err != nil {
				return err
			}
			if _, err := b.doc.AppendChild(body, xmltree.KindText,
				fmt.Sprintf("findings %d", b.rng.Intn(1000))); err != nil {
				return err
			}
		}
		refs = append(refs, teamRef{div, dep, team})
	}
	for div := range divEl {
		b.rule(policy.Accept, policy.Read, "/org/"+div+"/descendant-or-self::node()", div)
	}
	for _, r := range refs {
		base := "/org/" + r.div + "/" + r.dep + "/" + r.team
		idx := len(b.rules)
		b.rule(policy.Accept, policy.Insert, base, r.team)
		b.dupSafe = append(b.dupSafe, idx)
		b.rule(policy.Accept, policy.Update, base+"/*/title/node()", r.team)
		b.rule(policy.Accept, policy.Delete, base+"/doc0/body/node()", r.team)
	}
	for _, r := range refs {
		base := "/org/" + r.div + "/" + r.dep + "/" + r.team
		p := b.rule(policy.Deny, policy.Read, base+"/doc1/body/node()", r.team)
		b.reopen = append(b.reopen, reopenTarget{p, base + "/doc1/body/text()", r.team})
	}
	return nil
}

// rebac builds relationship-based sharing: generic $USER rules give every
// member the full privileges on objects they own (the owner element names
// the user), per-object exact rules share content with a friend, and the
// /objects/audit region is denied to members last.
func (b *builder) rebac(cfg CorpusConfig) error {
	objects := (cfg.Rules - 10) / 2
	if objects < 1 {
		objects = 1
	}
	users := objects / 3
	if users < 4 {
		users = 4
	}
	if users > 64 {
		users = 64
	}
	if err := b.h.AddRole("member"); err != nil {
		return err
	}
	names := make([]string, users)
	for i := range names {
		names[i] = fmt.Sprintf("u%d", i)
		if err := b.h.AddUser(names[i], "member"); err != nil {
			return err
		}
	}
	b.faultSubject = "member"
	root, err := b.el(b.doc.Root(), "objects")
	if err != nil {
		return err
	}
	for i := 0; i < objects; i++ {
		o, err := b.el(root, fmt.Sprintf("o%d", i))
		if err != nil {
			return err
		}
		if err := b.elText(o, "owner", names[i%users]); err != nil {
			return err
		}
		content, err := b.el(o, "content")
		if err != nil {
			return err
		}
		if err := b.elText(content, "post", fmt.Sprintf("note %d", b.rng.Intn(1000))); err != nil {
			return err
		}
	}
	audit, err := b.el(root, "audit")
	if err != nil {
		return err
	}
	logs := 3
	for j := 0; j < logs; j++ {
		log, err := b.el(audit, fmt.Sprintf("log%d", j))
		if err != nil {
			return err
		}
		if err := b.elText(log, "entry", fmt.Sprintf("event %d", j)); err != nil {
			return err
		}
	}
	// Generic relationship rules: ownership via the $USER binding.
	b.rule(policy.Accept, policy.Read, "/objects/*[owner = $USER]/descendant-or-self::node()", "member")
	b.rule(policy.Accept, policy.Insert, "/objects/*[owner = $USER]/content", "member")
	b.rule(policy.Accept, policy.Update, "/objects/*[owner = $USER]/content/node()", "member")
	b.rule(policy.Accept, policy.Delete, "/objects/*[owner = $USER]/content/post", "member")
	// Explicit friend shares, one per object.
	for i := 0; i < objects; i++ {
		friend := names[(i+2)%users]
		idx := len(b.rules)
		b.rule(policy.Accept, policy.Read, fmt.Sprintf("/objects/o%d/content/descendant-or-self::node()", i), friend)
		b.dupSafe = append(b.dupSafe, idx)
	}
	for j := 0; j < logs; j++ {
		path := fmt.Sprintf("/objects/audit/log%d/entry/node()", j)
		p := b.rule(policy.Deny, policy.Read, path, "member")
		b.reopen = append(b.reopen, reopenTarget{p, fmt.Sprintf("/objects/audit/log%d/entry/text()", j), "member"})
	}
	return nil
}

// hospital scales the paper's own scenario: the 12-rule policy of axiom 13
// over a workload-generated document, plus per-patient doctor rules.
func (b *builder) hospital(cfg CorpusConfig) error {
	patients := (cfg.Rules - 12) / 2
	if patients < 2 {
		patients = 2
	}
	h, err := workload.HospitalHierarchy(patients)
	if err != nil {
		return err
	}
	doc, err := workload.Hospital(workload.HospitalConfig{
		Patients:          patients,
		RecordsPerPatient: 1,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return err
	}
	b.h, b.doc = h, doc
	b.faultSubject = "patient"
	pol, err := policy.PaperPolicy(h)
	if err != nil {
		return err
	}
	for _, r := range pol.Rules() {
		b.rules = append(b.rules, *r)
		b.next = r.Priority
	}
	// The paper's own refinement denies are the reopen targets.
	b.reopen = append(b.reopen,
		reopenTarget{11, "//diagnosis/text()", "secretary"},
		reopenTarget{15, "/patients/p0", "epidemiologist"},
	)
	for i := 0; i < patients; i++ {
		base := fmt.Sprintf("/patients/p%d", i)
		idx := len(b.rules)
		b.rule(policy.Accept, policy.Read, base+"/descendant-or-self::node()", "doctor")
		b.dupSafe = append(b.dupSafe, idx)
		b.rule(policy.Accept, policy.Delete, base+"/record/node()", "doctor")
	}
	return nil
}

// seedFaults appends n defects, cycling the repairable kinds. Fault rules
// live in reserved regions (/limbo*, /vault* — absent from the document
// and disjoint from every organic rule) except the conflict and collision
// kinds, which by nature target organic rules.
func (b *builder) seedFaults(n int) ([]Fault, error) {
	var faults []Fault
	kinds := []string{"conflict", "dead", "insert", "update", "collision"}
	usedCollision := false
	var collisionIdx []int
	ci, region := 0, 0
	for k := 0; k < n; k++ {
		kind := kinds[k%len(kinds)]
		if kind == "collision" {
			if usedCollision || len(b.dupSafe) == 0 {
				kind = "conflict"
			} else {
				usedCollision = true
			}
		}
		switch kind {
		case "conflict":
			if len(b.reopen) == 0 {
				return nil, fmt.Errorf("scenario: shape has no reopen targets for conflict faults")
			}
			t := b.reopen[ci%len(b.reopen)]
			ci++
			p := b.rule(policy.Accept, policy.Read, t.narrowPath, t.subject)
			faults = append(faults, Fault{Code: "conflict-overlap", Priority: p})
		case "dead":
			region++
			zone := fmt.Sprintf("/limbo%d", region)
			p := b.rule(policy.Deny, policy.Read, zone+"/zone/node()", b.faultSubject)
			b.rule(policy.Deny, policy.Read, zone+"/descendant-or-self::node()", b.faultSubject)
			faults = append(faults, Fault{Code: "dead-rule", Priority: p})
		case "insert":
			region++
			p := b.rule(policy.Accept, policy.Insert, fmt.Sprintf("/vault%d/stash", region), b.faultSubject)
			faults = append(faults, Fault{Code: "write-insert-invisible", Priority: p})
		case "update":
			region++
			p := b.rule(policy.Accept, policy.Update, fmt.Sprintf("/vault%d/stash/node()", region), b.faultSubject)
			faults = append(faults, Fault{Code: "write-unselectable-target", Priority: p})
		case "collision":
			collisionIdx = append(collisionIdx, b.dupSafe[int(b.rng.Int63n(int64(len(b.dupSafe))))])
		}
	}
	// Collision duplicates go last so the priority-disorder finding they
	// also cause anchors deterministically on the duplicate.
	for _, idx := range collisionIdx {
		dup := b.rules[idx]
		b.rules = append(b.rules, dup)
		faults = append(faults,
			Fault{Code: "priority-collision", Priority: dup.Priority},
			Fault{Code: "priority-disorder", Priority: dup.Priority},
		)
	}
	return faults, nil
}
