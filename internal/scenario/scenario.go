// Package scenario builds the paper's running example — the Fig. 2
// medical-files database, the Fig. 3 subject hierarchy and the axiom-13
// policy — on the public core API. The demo, shell and server binaries all
// start from it, so it lives in one place.
package scenario

import (
	"securexml/internal/core"
	"securexml/internal/policy"
)

// PaperDocumentXML is the Fig. 2 database, with robert's subtree filled in
// as §4.4.1 reveals it.
const PaperDocumentXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

// Users lists the Fig. 3 users with their roles, for display.
var Users = []struct{ Name, Role string }{
	{"beaufort", "secretary"},
	{"laporte", "doctor"},
	{"richard", "epidemiologist"},
	{"robert", "patient"},
	{"franck", "patient"},
}

// Setup loads the document, declares the Fig. 3 hierarchy and installs the
// twelve rules of axiom 13 into db.
func Setup(db *core.Database) error {
	steps := []error{
		db.LoadXMLString(PaperDocumentXML),
		db.AddRole("staff"),
		db.AddRole("secretary", "staff"),
		db.AddRole("doctor", "staff"),
		db.AddRole("epidemiologist", "staff"),
		db.AddRole("patient"),
		db.AddUser("beaufort", "secretary"),
		db.AddUser("laporte", "doctor"),
		db.AddUser("richard", "epidemiologist"),
		db.AddUser("robert", "patient"),
		db.AddUser("franck", "patient"),
		// Axiom 13, rules 1-12 (priorities assigned in issue order).
		db.Grant(policy.Read, "/descendant-or-self::node()", "staff"),
		db.Revoke(policy.Read, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Position, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Read, "/patients", "patient"),
		db.Grant(policy.Read, "/patients/*[name() = $USER]/descendant-or-self::node()", "patient"),
		db.Revoke(policy.Read, "/patients/*", "epidemiologist"),
		db.Grant(policy.Position, "/patients/*", "epidemiologist"),
		db.Grant(policy.Insert, "/patients", "secretary"),
		db.Grant(policy.Update, "/patients/*", "secretary"),
		db.Grant(policy.Insert, "//diagnosis", "doctor"),
		db.Grant(policy.Update, "//diagnosis/node()", "doctor"),
		db.Grant(policy.Delete, "//diagnosis/node()", "doctor"),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	return nil
}

// New builds a fresh database with the scenario installed.
func New() (*core.Database, error) {
	db := core.New()
	if err := Setup(db); err != nil {
		return nil, err
	}
	return db, nil
}
