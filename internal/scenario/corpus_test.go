package scenario

import (
	"bytes"
	"fmt"
	"testing"

	"securexml/internal/policyanalysis"
	"securexml/internal/storage"
)

// TestCleanCorporaAnalyzeClean is the generator's core contract: with no
// seeded faults, every shape must produce a policy the analyzer finds
// nothing wrong with, at several sizes and seeds.
func TestCleanCorporaAnalyzeClean(t *testing.T) {
	for _, shape := range Shapes() {
		for _, rules := range []int{30, 150} {
			for seed := int64(1); seed <= 3; seed++ {
				c, err := GenerateCorpus(CorpusConfig{Shape: shape, Rules: rules, Seed: seed})
				if err != nil {
					t.Fatalf("%s/%d/%d: %v", shape, rules, seed, err)
				}
				rep := policyanalysis.AnalyzeRules(c.Hierarchy, c.Rules)
				if len(rep.Findings) != 0 {
					t.Fatalf("%s (rules=%d seed=%d) not clean:\n%s", shape, rules, seed, rep.Text())
				}
			}
		}
	}
}

// TestCorpusDeterminism: the same config generates the same rules.
func TestCorpusDeterminism(t *testing.T) {
	cfg := CorpusConfig{Shape: "acl", Rules: 100, Seed: 7, Faults: 6}
	a, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if a.Rules[i].String() != b.Rules[i].String() {
			t.Fatalf("rule %d differs: %s vs %s", i, a.Rules[i].String(), b.Rules[i].String())
		}
	}
}

// TestSeededFaultsDetectedAndRepaired: every seeded fault must surface as
// its recorded finding, every repairable finding must come with at least
// one validated repair, and Fix must converge to zero repairable findings.
func TestSeededFaultsDetectedAndRepaired(t *testing.T) {
	for _, shape := range Shapes() {
		t.Run(shape, func(t *testing.T) {
			c, err := GenerateCorpus(CorpusConfig{Shape: shape, Rules: 80, Seed: 11, Faults: 7})
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Faults) == 0 {
				t.Fatal("no faults recorded")
			}
			rr := policyanalysis.PlanRepairs(c.Doc, c.Hierarchy, c.Rules)
			have := map[string]bool{}
			for _, f := range rr.Findings {
				have[f.Code+"@"+fmt.Sprint(f.Priority)] = true
			}
			for _, fa := range c.Faults {
				if !have[fa.Code+"@"+fmt.Sprint(fa.Priority)] {
					t.Errorf("seeded fault %s@%d not found; findings:\n%s", fa.Code, fa.Priority, rr.Text())
				}
			}
			repaired := map[string]bool{}
			for _, r := range rr.Repairs {
				repaired[r.Code+"@"+fmt.Sprint(r.Priority)] = true
			}
			for _, f := range rr.Findings {
				if policyanalysis.RepairableCodes[f.Code] && !repaired[f.Code+"@"+fmt.Sprint(f.Priority)] {
					t.Errorf("repairable finding %s@%d has no validated repair", f.Code, f.Priority)
				}
			}
			fixed, applied, after := policyanalysis.Fix(c.Doc, c.Hierarchy, c.Rules)
			if len(applied) == 0 {
				t.Fatal("Fix applied nothing on a faulty corpus")
			}
			for _, f := range after.Findings {
				if policyanalysis.RepairableCodes[f.Code] {
					t.Errorf("repairable finding survived Fix: %s@%d", f.Code, f.Priority)
				}
			}
			if rep := policyanalysis.AnalyzeRules(c.Hierarchy, fixed); len(rep.Findings) != 0 {
				t.Errorf("corpus not fully clean after Fix:\n%s", rep.Text())
			}
		})
	}
}

// TestCorpusSnapshotRoundTrip: the snapshot a corpus writes reloads into
// the same analysis, which is the path xmlsec-lint -scenario exercises.
func TestCorpusSnapshotRoundTrip(t *testing.T) {
	c, err := GenerateCorpus(CorpusConfig{Shape: "rbac", Rules: 60, Seed: 3, Faults: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := storage.Write(&buf, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := storage.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before := policyanalysis.AnalyzeRules(c.Hierarchy, c.Rules)
	after := policyanalysis.AnalyzeRules(snap.Subjects, snap.Rules)
	if before.Text() != after.Text() {
		t.Fatalf("analysis changed across snapshot round-trip:\nbefore:\n%s\nafter:\n%s", before.Text(), after.Text())
	}
}

// TestCorpusPolicyBuilds: clean corpora must pass policy.Add validation,
// the precondition for using them as an EvaluateShared stress load.
func TestCorpusPolicyBuilds(t *testing.T) {
	for _, shape := range Shapes() {
		c, err := GenerateCorpus(CorpusConfig{Shape: shape, Rules: 60, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := c.Policy()
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if pol.Len() != len(c.Rules) {
			t.Fatalf("%s: policy dropped rules: %d vs %d", shape, pol.Len(), len(c.Rules))
		}
		for _, u := range c.Hierarchy.Users()[:1] {
			if _, err := pol.Evaluate(c.Doc, c.Hierarchy, u); err != nil {
				t.Fatalf("%s: Evaluate(%s): %v", shape, u, err)
			}
		}
	}
}
