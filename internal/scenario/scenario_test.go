package scenario

import (
	"strings"
	"testing"
)

func TestNewBuildsThePaperState(t *testing.T) {
	db, err := New()
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Nodes != 12 || st.Rules != 12 || st.Users != 5 || st.Roles != 5 {
		t.Errorf("stats = %+v, want the 12/12/5/5 paper state", st)
	}
	for _, u := range Users {
		s, err := db.Session(u.Name)
		if err != nil {
			t.Fatalf("session for %s: %v", u.Name, err)
		}
		if _, err := s.ViewXML(); err != nil {
			t.Fatalf("view for %s: %v", u.Name, err)
		}
	}
	// Spot-check the semantics end to end.
	sec, err := db.Session("beaufort")
	if err != nil {
		t.Fatal(err)
	}
	xml, err := sec.ViewXML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "RESTRICTED") || strings.Contains(xml, "tonsillitis") {
		t.Errorf("secretary view wrong:\n%s", xml)
	}
}

func TestSetupIsRejectedTwice(t *testing.T) {
	db, err := New()
	if err != nil {
		t.Fatal(err)
	}
	// Re-running Setup on the same database must fail loudly (duplicate
	// subjects), not silently double the policy.
	if err := Setup(db); err == nil {
		t.Error("double Setup succeeded")
	}
}
