package workload

import (
	"testing"

	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

func opStreamDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := Hospital(HospitalConfig{Patients: 4, RecordsPerPatient: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestOpStreamDeterministic: same seed, same document → identical op
// sequences.
func TestOpStreamDeterministic(t *testing.T) {
	mk := func() []string {
		d := opStreamDoc(t)
		s := OpStream(OpConfig{Doc: d, Seed: 42})
		var out []string
		for i := 0; i < 50; i++ {
			op, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, op.Kind.String()+" "+op.Select+" "+op.NewValue)
			if _, err := xupdate.Execute(d, op, nil); err != nil {
				t.Fatalf("op %d (%s %s): %v", i, op.Kind, op.Select, err)
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestOpStreamTargetsLiveNodes: every generated op selects exactly one
// node of the current document and executes without error, across a long
// mutating run.
func TestOpStreamTargetsLiveNodes(t *testing.T) {
	d := opStreamDoc(t)
	s := OpStream(OpConfig{Doc: d, Seed: 3})
	kinds := make(map[xupdate.Kind]int)
	for i := 0; i < 200; i++ {
		op, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		res, err := xupdate.Execute(d, op, nil)
		if err != nil {
			t.Fatalf("op %d (%s %s): %v", i, op.Kind, op.Select, err)
		}
		if res.Selected != 1 {
			t.Fatalf("op %d (%s %s): selected %d nodes, want exactly 1", i, op.Kind, op.Select, res.Selected)
		}
		if len(res.Skipped) != 0 {
			t.Fatalf("op %d (%s %s): skipped: %+v", i, op.Kind, op.Select, res.Skipped)
		}
		kinds[op.Kind]++
	}
	for _, k := range kindOrder {
		if kinds[k] == 0 {
			t.Errorf("default mix never produced %s", k)
		}
	}
	if d.Len() < 2 {
		t.Error("document degenerated to (almost) nothing")
	}
}

// TestOpStreamWeights: zero-weight kinds never appear; the remove-only mix
// shrinks the tree.
func TestOpStreamWeights(t *testing.T) {
	d := opStreamDoc(t)
	before := d.Len()
	s := OpStream(OpConfig{Doc: d, Seed: 9, Weights: OpWeights{Remove: 1}})
	for i := 0; i < 10; i++ {
		op, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if op.Kind != xupdate.Remove {
			t.Fatalf("remove-only mix produced %s", op.Kind)
		}
		if _, err := xupdate.Execute(d, op, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() >= before {
		t.Error("remove-only mix did not shrink the document")
	}
	if _, err := OpStream(OpConfig{Doc: d, Seed: 1, Weights: OpWeights{Update: -1}}).Next(); err == nil {
		t.Error("non-positive weights should error")
	}
}

func TestChurnPlanDeterministic(t *testing.T) {
	users := []string{"u1", "u2", "u3", "u4", "u5"}
	a := ChurnPlan(users, 20, 4, 99)
	b := ChurnPlan(users, 20, 4, 99)
	if len(a) != 20 {
		t.Fatalf("got %d sessions, want 20", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d differs across same-seed plans: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := ChurnPlan(users, 20, 4, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
	// Churn means every user appears: 20 sessions over 5 users round-robin.
	seen := map[string]bool{}
	for _, s := range a {
		seen[s.User] = true
		if s.Ops < 1 || s.Ops > 4 {
			t.Fatalf("ops %d outside [1,4]", s.Ops)
		}
	}
	if len(seen) != len(users) {
		t.Fatalf("plan covers %d users, want %d", len(seen), len(users))
	}
}

func TestChurnPlanEmpty(t *testing.T) {
	if p := ChurnPlan(nil, 10, 3, 1); p != nil {
		t.Fatalf("nil users: got %v, want nil", p)
	}
	if p := ChurnPlan([]string{"u"}, 0, 3, 1); p != nil {
		t.Fatalf("zero sessions: got %v, want nil", p)
	}
}
