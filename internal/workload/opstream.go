package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// OpWeights is the relative mix of the six XUpdate operations an OpStream
// draws from. Zero-valued weights exclude the operation.
type OpWeights struct {
	Update       int
	Rename       int
	Append       int
	InsertBefore int
	InsertAfter  int
	Remove       int
}

// DefaultOpWeights is a mixed read-world update profile: mostly content
// updates and relabels, some structure growth, some deletion.
var DefaultOpWeights = OpWeights{Update: 3, Rename: 3, Append: 2, InsertBefore: 1, InsertAfter: 1, Remove: 2}

// OpConfig configures an OpStream.
type OpConfig struct {
	// Doc is the live document the stream targets. The stream reads it on
	// every Next to pick currently existing nodes, so ops stay valid as
	// the document evolves — callers must apply each op (or not) before
	// drawing the next.
	Doc *xmltree.Document
	// Seed drives deterministic generation.
	Seed int64
	// Weights is the op mix; the zero value means DefaultOpWeights.
	Weights OpWeights
}

// Stream is a deterministic source of executable XUpdate operations
// against a live document. It is the shared generator of the differential,
// metamorphic and race suites: one seed, one op sequence.
type Stream struct {
	cfg OpConfig
	rng *rand.Rand
	n   int
}

// OpStream builds a stream. The zero weight mix falls back to
// DefaultOpWeights.
func OpStream(cfg OpConfig) *Stream {
	if cfg.Weights == (OpWeights{}) {
		cfg.Weights = DefaultOpWeights
	}
	return &Stream{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// kindOrder fixes the weighted-draw order.
var kindOrder = []xupdate.Kind{
	xupdate.Update, xupdate.Rename, xupdate.Append,
	xupdate.InsertBefore, xupdate.InsertAfter, xupdate.Remove,
}

func (w OpWeights) weight(k xupdate.Kind) int {
	switch k {
	case xupdate.Update:
		return w.Update
	case xupdate.Rename:
		return w.Rename
	case xupdate.Append:
		return w.Append
	case xupdate.InsertBefore:
		return w.InsertBefore
	case xupdate.InsertAfter:
		return w.InsertAfter
	case xupdate.Remove:
		return w.Remove
	default:
		return 0
	}
}

// Next returns the next operation. The select path addresses exactly one
// currently live node by child position, so the op is executable verbatim
// by both the unsecured and the secured executor. Next only errors when
// the document has no eligible target for any operation kind.
func (s *Stream) Next() (*xupdate.Op, error) {
	total := 0
	for _, k := range kindOrder {
		total += s.cfg.Weights.weight(k)
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: all op weights are zero")
	}
	pick := s.rng.Intn(total)
	idx := 0
	for i, k := range kindOrder {
		if pick -= s.cfg.Weights.weight(k); pick < 0 {
			idx = i
			break
		}
	}
	// Fall back through the other kinds when the drawn one has no
	// eligible target (e.g. Remove on a nearly empty tree).
	for off := 0; off < len(kindOrder); off++ {
		k := kindOrder[(idx+off)%len(kindOrder)]
		if s.cfg.Weights.weight(k) == 0 && off > 0 {
			continue
		}
		if op := s.build(k); op != nil {
			return op, nil
		}
	}
	return nil, fmt.Errorf("workload: no eligible target for any operation")
}

// build draws a target for kind and assembles the op, or nil if no node is
// eligible.
func (s *Stream) build(k xupdate.Kind) *xupdate.Op {
	var cands []*xmltree.Node
	for _, n := range s.cfg.Doc.Nodes() {
		if s.eligible(k, n) {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	target := cands[s.rng.Intn(len(cands))]
	s.n++
	var op *xupdate.Op
	var err error
	switch k {
	case xupdate.Update:
		op, err = xupdate.NewOp(k, pathTo(target), fmt.Sprintf("v%d-%s", s.n, illnesses[s.rng.Intn(len(illnesses))]))
	case xupdate.Rename:
		arg := illnesses[s.rng.Intn(len(illnesses))]
		if target.Kind() == xmltree.KindElement && s.rng.Intn(2) == 0 {
			arg = fmt.Sprintf("e%d", s.n)
		}
		op, err = xupdate.NewOp(k, pathTo(target), arg)
	case xupdate.Append, xupdate.InsertBefore, xupdate.InsertAfter:
		op, err = xupdate.NewOp(k, pathTo(target), s.fragment())
	case xupdate.Remove:
		op, err = xupdate.NewOp(k, pathTo(target), "")
	}
	if err != nil {
		// NewOp only fails on malformed input; paths and fragments here
		// are generated well formed.
		panic("workload: generated invalid op: " + err.Error())
	}
	return op
}

// eligible reports whether n can be the target of kind k such that the
// operation actually mutates the document.
func (s *Stream) eligible(k xupdate.Kind, n *xmltree.Node) bool {
	switch n.Kind() {
	case xmltree.KindDocument:
		return false
	case xmltree.KindElement:
		if n.Parent() != nil && n.Parent().Kind() == xmltree.KindDocument {
			// The root element: mutable in place, but no siblings may be
			// added beside it and removing it empties the document.
			return k == xupdate.Append || k == xupdate.Update
		}
	}
	switch k {
	case xupdate.Update:
		// Only element/attribute targets mutate (text targets are skipped
		// by the executor as having no children to relabel).
		return n.Kind() == xmltree.KindElement || n.Kind() == xmltree.KindAttribute
	case xupdate.Rename:
		return true
	case xupdate.Append:
		return n.Kind() == xmltree.KindElement
	case xupdate.InsertBefore, xupdate.InsertAfter:
		// Siblings exist for children of elements only.
		return n.Kind() != xmltree.KindAttribute &&
			n.Parent() != nil && n.Parent().Kind() == xmltree.KindElement
	case xupdate.Remove:
		return true
	default:
		return false
	}
}

// fragment returns a small content tree, occasionally attribute-bearing.
func (s *Stream) fragment() string {
	s.n++
	switch s.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("<rec><v>t%d</v></rec>", s.n)
	case 1:
		return fmt.Sprintf(`<rec id="r%d">%s</rec>`, s.n, services[s.rng.Intn(len(services))])
	default:
		return fmt.Sprintf("<note>n%d</note>", s.n)
	}
}

// pathTo builds a positional XPath selecting exactly n: one
// node()[i]/attribute::node()[k] step per ancestor, robust against any
// label (including RESTRICTED lookalikes and generated names).
func pathTo(n *xmltree.Node) string {
	var segs []string
	for c := n; c.Parent() != nil; c = c.Parent() {
		p := c.Parent()
		if c.Kind() == xmltree.KindAttribute {
			for i, a := range p.Attributes() {
				if a == c {
					segs = append(segs, fmt.Sprintf("attribute::node()[%d]", i+1))
					break
				}
			}
			continue
		}
		segs = append(segs, fmt.Sprintf("node()[%d]", p.ChildIndex(c)+1))
	}
	// Reverse into root-to-node order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return "/" + strings.Join(segs, "/")
}

// SessionPlan is one cold session of a churn mix: which user logs in and
// how many operations it performs before the next session starts.
type SessionPlan struct {
	User string
	Ops  int
}

// ChurnPlan builds a cold-session churn mix: sessions distinct users drawn
// from users (round-robin shuffled per seed), each doing between 1 and
// maxOps operations. Many users with few ops each is the worst case for
// per-session view caches and the best case for the cross-user rule cache
// — B12 and the shared-scan race stress both replay plans from here, so
// the plan is deterministic in (users, sessions, maxOps, seed).
func ChurnPlan(users []string, sessions, maxOps int, seed int64) []SessionPlan {
	if len(users) == 0 || sessions <= 0 {
		return nil
	}
	if maxOps < 1 {
		maxOps = 1
	}
	rng := rand.New(rand.NewSource(seed))
	order := make([]string, len(users))
	copy(order, users)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	plan := make([]SessionPlan, sessions)
	for i := range plan {
		plan[i] = SessionPlan{
			User: order[i%len(order)],
			Ops:  1 + rng.Intn(maxOps),
		}
	}
	return plan
}
