package workload

import (
	"testing"

	"securexml/internal/labeling"
	"securexml/internal/policy"
	"securexml/internal/view"
	"securexml/internal/xpath"
)

func TestHospitalShape(t *testing.T) {
	d, err := Hospital(HospitalConfig{Patients: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	patients, err := xpath.Select(d, "/patients/*", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(patients) != 10 {
		t.Fatalf("%d patients, want 10", len(patients))
	}
	diag, err := xpath.Select(d, "//diagnosis/text()", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag) != 10 {
		t.Errorf("%d diagnosis texts", len(diag))
	}
	// Deterministic per seed.
	d2, err := Hospital(HospitalConfig{Patients: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.XML() != d2.XML() {
		t.Error("generation not deterministic")
	}
	d3, err := Hospital(HospitalConfig{Patients: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.XML() == d3.XML() {
		t.Error("different seeds produced identical documents")
	}
}

func TestHospitalRecordsDeepenTree(t *testing.T) {
	d, err := Hospital(HospitalConfig{Patients: 3, RecordsPerPatient: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := xpath.Select(d, "//record", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Errorf("%d records, want 12", len(recs))
	}
}

func TestHospitalEndToEndWithPaperPolicy(t *testing.T) {
	d, err := Hospital(HospitalConfig{Patients: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := HospitalHierarchy(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := HospitalPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	// Patient p2 sees exactly their own file.
	pm, err := p.Evaluate(d, h, "p2")
	if err != nil {
		t.Fatal(err)
	}
	v := view.Materialize(d, pm)
	own, err := xpath.Select(v.Doc, "/patients/*", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(own) != 1 || own[0].Label() != "p2" {
		t.Errorf("p2 sees %d patients", len(own))
	}
	// Secretary sees all patients but restricted diagnosis content.
	pmS, err := p.Evaluate(d, h, "beaufort")
	if err != nil {
		t.Fatal(err)
	}
	vS := view.Materialize(d, pmS)
	if vS.Restricted != 5 {
		t.Errorf("secretary view restricted = %d, want 5", vS.Restricted)
	}
}

func TestScaledPolicy(t *testing.T) {
	h, err := HospitalHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ScaledPolicy(h, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 62 {
		t.Errorf("rules = %d, want 62", p.Len())
	}
	// The scaled policy still evaluates cleanly.
	d, err := Hospital(HospitalConfig{Patients: 3, RecordsPerPatient: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(d, h, "laporte"); err != nil {
		t.Fatal(err)
	}
	_ = policy.Read // keep the import honest if assertions change
}

func TestRandomTree(t *testing.T) {
	d, err := RandomTree(TreeConfig{Nodes: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Len(); got < 450 || got > 560 {
		t.Errorf("tree size %d not near 500", got)
	}
	d2, err := RandomTree(TreeConfig{Nodes: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d.XML() != d2.XML() {
		t.Error("random tree not deterministic per seed")
	}
	// Alternate scheme works too.
	d3, err := RandomTree(TreeConfig{Nodes: 100, Seed: 7, Scheme: labeling.NewLSDX()})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Scheme().Name() != "lsdx" {
		t.Error("scheme option ignored")
	}
	if XML(d3) == "" {
		t.Error("XML helper failed")
	}
}
