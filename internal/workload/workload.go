// Package workload generates synthetic databases, subject hierarchies and
// policies at parameterized scale for the benchmark harness. The paper has
// no empirical evaluation (it is a formal model); these generators provide
// the scaling study a systems release needs (experiments B1–B6 in
// DESIGN.md). All generation is deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"securexml/internal/labeling"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

// services and illnesses provide label variety for hospital documents.
var (
	services  = []string{"cardiology", "oncology", "pneumology", "otolaryngology", "neurology", "orthopedics"}
	illnesses = []string{"tonsillitis", "pneumonia", "angina", "bronchitis", "migraine", "fracture", "flu"}
)

// HospitalConfig sizes a synthetic medical-files database in the shape of
// the paper's Fig. 2.
type HospitalConfig struct {
	// Patients is the number of patient elements under /patients.
	Patients int
	// RecordsPerPatient adds extra visit records under each patient
	// (deepens the tree). 0 keeps the paper's flat shape.
	RecordsPerPatient int
	// Seed drives deterministic generation.
	Seed int64
	// Scheme selects the labeling scheme (nil = fracpath).
	Scheme labeling.Scheme
}

// Hospital builds the document. Patient elements are named p0, p1, ... so
// the paper's $USER-based patient rule works with synthetic users of the
// same names.
func Hospital(cfg HospitalConfig) (*xmltree.Document, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := xmltree.New(cfg.Scheme)
	root, err := d.AppendChild(d.Root(), xmltree.KindElement, "patients")
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Patients; i++ {
		p, err := d.AppendChild(root, xmltree.KindElement, fmt.Sprintf("p%d", i))
		if err != nil {
			return nil, err
		}
		svc, err := d.AppendChild(p, xmltree.KindElement, "service")
		if err != nil {
			return nil, err
		}
		if _, err := d.AppendChild(svc, xmltree.KindText, services[rng.Intn(len(services))]); err != nil {
			return nil, err
		}
		diag, err := d.AppendChild(p, xmltree.KindElement, "diagnosis")
		if err != nil {
			return nil, err
		}
		if _, err := d.AppendChild(diag, xmltree.KindText, illnesses[rng.Intn(len(illnesses))]); err != nil {
			return nil, err
		}
		for r := 0; r < cfg.RecordsPerPatient; r++ {
			rec, err := d.AppendChild(p, xmltree.KindElement, "record")
			if err != nil {
				return nil, err
			}
			note, err := d.AppendChild(rec, xmltree.KindElement, "note")
			if err != nil {
				return nil, err
			}
			if _, err := d.AppendChild(note, xmltree.KindText,
				fmt.Sprintf("visit %d: %s", r, illnesses[rng.Intn(len(illnesses))])); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// HospitalHierarchy builds the paper's role tree plus nPatients synthetic
// patient users named p0..p(n-1) matching the Hospital document.
func HospitalHierarchy(nPatients int) (*subject.Hierarchy, error) {
	h := subject.NewHierarchy()
	steps := []error{
		h.AddRole("staff"),
		h.AddRole("secretary", "staff"),
		h.AddRole("doctor", "staff"),
		h.AddRole("epidemiologist", "staff"),
		h.AddRole("patient"),
		h.AddUser("beaufort", "secretary"),
		h.AddUser("laporte", "doctor"),
		h.AddUser("richard", "epidemiologist"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < nPatients; i++ {
		if err := h.AddUser(fmt.Sprintf("p%d", i), "patient"); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// HospitalPolicy is the axiom-13 policy transposed to the synthetic
// documents.
func HospitalPolicy(h *subject.Hierarchy) (*policy.Policy, error) {
	return policy.PaperPolicy(h)
}

// ScaledPolicy appends n extra rule pairs (accept + partial deny) targeting
// rotating paths, on top of the paper policy — for the conflict-resolution
// scaling benchmark (B6). Rules bind to the staff role so they apply to
// staff sessions.
func ScaledPolicy(h *subject.Hierarchy, n int) (*policy.Policy, error) {
	p, err := policy.PaperPolicy(h)
	if err != nil {
		return nil, err
	}
	paths := []string{
		"//service", "//diagnosis", "//record", "//note",
		"//service/node()", "//record/node()", "/patients/*",
	}
	for i := 0; i < n; i++ {
		path := paths[i%len(paths)]
		eff := policy.Accept
		if i%3 == 2 {
			eff = policy.Deny
		}
		priv := policy.Privileges[i%len(policy.Privileges)]
		err := p.Add(h, policy.Rule{
			Effect: eff, Privilege: priv, Path: path,
			Subject: "staff", Priority: int64(100 + i),
		})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// TreeConfig sizes a generic random tree.
type TreeConfig struct {
	// Nodes is the approximate element count.
	Nodes int
	// MaxFanout bounds children per element.
	MaxFanout int
	// Seed drives deterministic generation.
	Seed int64
	// Scheme selects the labeling scheme (nil = fracpath).
	Scheme labeling.Scheme
}

// RandomTree builds a random element tree with occasional text leaves, for
// XPath and labeling benchmarks.
func RandomTree(cfg TreeConfig) (*xmltree.Document, error) {
	if cfg.MaxFanout <= 0 {
		cfg.MaxFanout = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := xmltree.New(cfg.Scheme)
	root, err := d.AppendChild(d.Root(), xmltree.KindElement, "root")
	if err != nil {
		return nil, err
	}
	open := []*xmltree.Node{root}
	names := []string{"a", "b", "c", "d", "item", "group"}
	for count := 1; count < cfg.Nodes; {
		parent := open[rng.Intn(len(open))]
		n, err := d.AppendChild(parent, xmltree.KindElement, names[rng.Intn(len(names))])
		if err != nil {
			return nil, err
		}
		count++
		if rng.Intn(3) == 0 {
			if _, err := d.AppendChild(n, xmltree.KindText, fmt.Sprintf("v%d", count)); err != nil {
				return nil, err
			}
			count++
		}
		if len(open) < cfg.MaxFanout*4 || rng.Intn(2) == 0 {
			open = append(open, n)
		}
	}
	return d, nil
}

// XML renders any document to a string (convenience for examples/benches).
func XML(d *xmltree.Document) string {
	var b strings.Builder
	if err := d.Write(&b, xmltree.WriteOptions{Indent: "  "}); err != nil {
		return ""
	}
	return b.String()
}
