// Package admin implements the security administration model the paper
// omits for space (§4.3: "we cannot state the policy constraining the
// management of users, roles and security rules... nor any kind of
// delegation mechanism, whereas in [10] we included the privilege to
// transfer privileges"). It restores that capability in the spirit of
// [10] and of SQL's GRANT OPTION:
//
//   - a designated owner holds full administrative authority;
//   - authority over (privilege, scope) can be delegated, optionally with
//     the right to delegate further (WithGrant);
//   - a subject may issue a policy rule only if their authority covers the
//     rule: same privilege, and the rule's addressed node set is contained
//     in the delegated scope (evaluated on the current document);
//   - revoking a delegation cascades: delegations that are no longer
//     justified by a valid chain back to the owner are dropped, exactly
//     like SQL's REVOKE ... CASCADE.
package admin

import (
	"errors"
	"fmt"

	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// Errors returned by administrative checks.
var (
	ErrNotAuthorized  = errors.New("admin: subject lacks administrative authority")
	ErrUnknownSubject = errors.New("admin: unknown subject")
)

// Delegation is one grant of administrative authority.
type Delegation struct {
	// Grantor issued the delegation.
	Grantor string
	// Grantee receives authority.
	Grantee string
	// Privilege the authority covers.
	Privilege policy.Privilege
	// Scope is an XPath expression; the grantee may administer Privilege
	// on nodes addressed by Scope (and any rule whose addressed nodes are
	// contained in it).
	Scope string
	// WithGrant allows the grantee to delegate further.
	WithGrant bool
}

// String renders the delegation.
func (d Delegation) String() string {
	wg := ""
	if d.WithGrant {
		wg = " with grant option"
	}
	return fmt.Sprintf("delegate(%s -> %s, %s on %s%s)", d.Grantor, d.Grantee, d.Privilege, d.Scope, wg)
}

// Authority tracks the delegation graph rooted at the owner.
type Authority struct {
	owner       string
	delegations []Delegation
}

// New creates an authority with the given owner. The owner implicitly
// holds every administrative right and cannot be revoked.
func New(owner string) *Authority {
	return &Authority{owner: owner}
}

// Owner returns the owning subject.
func (a *Authority) Owner() string { return a.owner }

// Delegations returns a snapshot of the current (valid) delegations.
func (a *Authority) Delegations() []Delegation {
	return append([]Delegation(nil), a.delegations...)
}

// nodesOf evaluates an XPath scope on the document with $USER bound to the
// evaluating subject, returning the addressed node identifiers.
func nodesOf(doc *xmltree.Document, path, user string) (map[string]bool, error) {
	c, err := xpath.Compile(path)
	if err != nil {
		return nil, fmt.Errorf("admin: scope path: %w", err)
	}
	ns, err := c.Select(doc.Root(), xpath.Vars{"USER": xpath.String(user)})
	if err != nil {
		return nil, fmt.Errorf("admin: evaluating scope: %w", err)
	}
	out := make(map[string]bool, len(ns))
	for _, n := range ns {
		out[n.ID().String()] = true
	}
	return out, nil
}

// covers reports whether sub ⊆ super.
func covers(super, sub map[string]bool) bool {
	for id := range sub {
		if !super[id] {
			return false
		}
	}
	return true
}

// authorityScopes returns the scopes (as node-id sets) under which s holds
// authority for priv: the owner's is universal (nil sentinel), everyone
// else's is the union of valid delegations to any subject s' with
// isa(s, s'). needGrant restricts to delegations carrying WithGrant.
func (a *Authority) authorityScopes(doc *xmltree.Document, h *subject.Hierarchy, s string, priv policy.Privilege, needGrant bool) ([]map[string]bool, bool, error) {
	if s == a.owner {
		return nil, true, nil // universal authority
	}
	var scopes []map[string]bool
	for _, d := range a.delegations {
		if d.Privilege != priv {
			continue
		}
		if needGrant && !d.WithGrant {
			continue
		}
		if !h.ISA(s, d.Grantee) {
			continue
		}
		set, err := nodesOf(doc, d.Scope, s)
		if err != nil {
			return nil, false, err
		}
		scopes = append(scopes, set)
	}
	return scopes, false, nil
}

// coveredByAny reports whether target is contained in at least one scope.
func coveredByAny(scopes []map[string]bool, target map[string]bool) bool {
	for _, s := range scopes {
		if covers(s, target) {
			return true
		}
	}
	return false
}

// CanIssue reports whether subject s may issue a rule for priv on rulePath:
// s is the owner, or some valid delegation to s (or a role of s) covers the
// rule's addressed node set.
func (a *Authority) CanIssue(doc *xmltree.Document, h *subject.Hierarchy, s string, priv policy.Privilege, rulePath string) (bool, error) {
	if !h.Exists(s) {
		return false, fmt.Errorf("%w: %q", ErrUnknownSubject, s)
	}
	scopes, universal, err := a.authorityScopes(doc, h, s, priv, false)
	if err != nil {
		return false, err
	}
	if universal {
		return true, nil
	}
	target, err := nodesOf(doc, rulePath, s)
	if err != nil {
		return false, err
	}
	return coveredByAny(scopes, target), nil
}

// Delegate records a new delegation after checking the grantor's authority:
// the grantor must be the owner or hold a WithGrant delegation covering the
// new delegation's scope for the same privilege.
func (a *Authority) Delegate(doc *xmltree.Document, h *subject.Hierarchy, d Delegation) error {
	if !h.Exists(d.Grantor) {
		return fmt.Errorf("%w: grantor %q", ErrUnknownSubject, d.Grantor)
	}
	if !h.Exists(d.Grantee) {
		return fmt.Errorf("%w: grantee %q", ErrUnknownSubject, d.Grantee)
	}
	scopes, universal, err := a.authorityScopes(doc, h, d.Grantor, d.Privilege, true)
	if err != nil {
		return err
	}
	if !universal {
		target, err := nodesOf(doc, d.Scope, d.Grantor)
		if err != nil {
			return err
		}
		if !coveredByAny(scopes, target) {
			return fmt.Errorf("%w: %s cannot delegate %s on %s", ErrNotAuthorized, d.Grantor, d.Privilege, d.Scope)
		}
	} else if _, err := nodesOf(doc, d.Scope, d.Grantor); err != nil {
		return err // validate the scope path even for the owner
	}
	a.delegations = append(a.delegations, d)
	return nil
}

// Revoke removes the delegations from grantor to grantee for priv and then
// prunes every delegation no longer reachable from the owner through valid
// WithGrant chains (cascading revocation).
func (a *Authority) Revoke(doc *xmltree.Document, h *subject.Hierarchy, grantor, grantee string, priv policy.Privilege) (removed int, err error) {
	kept := a.delegations[:0]
	for _, d := range a.delegations {
		if d.Grantor == grantor && d.Grantee == grantee && d.Privilege == priv {
			removed++
			continue
		}
		kept = append(kept, d)
	}
	a.delegations = kept
	pruned, err := a.prune(doc, h)
	if err != nil {
		return removed, err
	}
	return removed + pruned, nil
}

// prune drops delegations whose grantor no longer holds delegable authority
// over their scope, iterating until stable (chains collapse).
func (a *Authority) prune(doc *xmltree.Document, h *subject.Hierarchy) (int, error) {
	removedTotal := 0
	for {
		removed := 0
		kept := a.delegations[:0]
		for i, d := range a.delegations {
			ok, err := a.grantorStillAuthorized(doc, h, d, i)
			if err != nil {
				return removedTotal, err
			}
			if ok {
				kept = append(kept, d)
			} else {
				removed++
			}
		}
		a.delegations = kept
		removedTotal += removed
		if removed == 0 {
			return removedTotal, nil
		}
	}
}

// grantorStillAuthorized re-checks delegation d (at index self, which is
// excluded from its own justification) against the current graph.
func (a *Authority) grantorStillAuthorized(doc *xmltree.Document, h *subject.Hierarchy, d Delegation, self int) (bool, error) {
	if d.Grantor == a.owner {
		return true, nil
	}
	target, err := nodesOf(doc, d.Scope, d.Grantor)
	if err != nil {
		return false, err
	}
	for i, j := range a.delegations {
		if i == self || j.Privilege != d.Privilege || !j.WithGrant {
			continue
		}
		if !h.ISA(d.Grantor, j.Grantee) {
			continue
		}
		set, err := nodesOf(doc, j.Scope, d.Grantor)
		if err != nil {
			return false, err
		}
		if covers(set, target) {
			return true, nil
		}
	}
	return false, nil
}

// GuardedAdd issues a rule into pol on behalf of issuer, enforcing the
// administration model: the rule is added only when CanIssue holds.
func (a *Authority) GuardedAdd(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, issuer string, r policy.Rule) error {
	ok, err := a.CanIssue(doc, h, issuer, r.Privilege, r.Path)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s cannot issue %s", ErrNotAuthorized, issuer, r.String())
	}
	return pol.Add(h, r)
}

// GuardedAddChecked is GuardedAdd followed by a static analysis of the
// resulting policy: it returns the analyzer findings that involve the
// newly issued rule (anchored on it or listing it as related), so the
// issuing tool can warn — at grant time — about rules that are born dead,
// reopen earlier denies, or can never be exercised. Each involved finding
// also comes with the repair engine's validated candidate edits for it,
// classified against doc as semantics-preserving or -changing, so the
// grantor sees not just what the new rule broke but the minimal ways to
// unbreak it. The rule is added regardless: findings are advice, not
// vetoes (the dynamic semantics stay authoritative).
func (a *Authority) GuardedAddChecked(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, issuer string, r policy.Rule) ([]policyanalysis.Finding, []policyanalysis.Repair, error) {
	if err := a.GuardedAdd(doc, h, pol, issuer, r); err != nil {
		return nil, nil, err
	}
	rules := make([]policy.Rule, 0, pol.Len())
	for _, pr := range pol.Rules() {
		rules = append(rules, *pr)
	}
	rr := policyanalysis.PlanRepairs(doc, h, rules)
	var involved []policyanalysis.Finding
	involves := map[string]bool{}
	for _, f := range rr.Findings {
		hit := f.Priority == r.Priority
		for _, p := range f.Related {
			if p == r.Priority {
				hit = true
				break
			}
		}
		if hit {
			involved = append(involved, f)
			involves[f.Code+"@"+fmt.Sprint(f.Priority)] = true
		}
	}
	var repairs []policyanalysis.Repair
	for _, rep := range rr.Repairs {
		if involves[rep.Code+"@"+fmt.Sprint(rep.Priority)] {
			repairs = append(repairs, rep)
		}
	}
	return involved, repairs, nil
}
