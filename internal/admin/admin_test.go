package admin

import (
	"errors"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

const medXML = `<patients><franck><service>oto</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumo</service><diagnosis>pneumonia</diagnosis></robert></patients>`

func env(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *Authority) {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.PaperHierarchy()
	if err := h.AddUser("dba"); err != nil {
		t.Fatal(err)
	}
	return d, h, New("dba")
}

func TestOwnerCanIssueAnything(t *testing.T) {
	d, h, a := env(t)
	for _, priv := range policy.Privileges {
		ok, err := a.CanIssue(d, h, "dba", priv, "/descendant-or-self::node()")
		if err != nil || !ok {
			t.Errorf("owner CanIssue(%s) = %v, %v", priv, ok, err)
		}
	}
	if a.Owner() != "dba" {
		t.Errorf("Owner = %q", a.Owner())
	}
}

func TestNonOwnerDeniedWithoutDelegation(t *testing.T) {
	d, h, a := env(t)
	ok, err := a.CanIssue(d, h, "laporte", policy.Read, "//diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("undelegated subject can issue rules")
	}
	if _, err := a.CanIssue(d, h, "ghost", policy.Read, "//x"); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("unknown subject: %v", err)
	}
}

func TestDelegationScopeContainment(t *testing.T) {
	d, h, a := env(t)
	// dba delegates administration of read over franck's subtree to laporte.
	err := a.Delegate(d, h, Delegation{
		Grantor: "dba", Grantee: "laporte", Privilege: policy.Read,
		Scope: "/patients/franck/descendant-or-self::node()",
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path string
		want bool
	}{
		{"/patients/franck/diagnosis", true},                  // inside scope
		{"/patients/franck/descendant-or-self::node()", true}, // the whole scope
		{"/patients/robert/diagnosis", false},                 // outside
		{"//diagnosis", false},                                // straddles the boundary
		{"//nosuchthing", true},                               // empty set ⊆ anything
	}
	for _, tc := range cases {
		ok, err := a.CanIssue(d, h, "laporte", policy.Read, tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.want {
			t.Errorf("CanIssue(laporte, read, %s) = %v, want %v", tc.path, ok, tc.want)
		}
	}
	// The delegation is privilege-specific.
	ok, err := a.CanIssue(d, h, "laporte", policy.Delete, "/patients/franck/diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("delegation leaked across privileges")
	}
}

func TestDelegationToRoleCoversMembers(t *testing.T) {
	d, h, a := env(t)
	if err := a.Delegate(d, h, Delegation{
		Grantor: "dba", Grantee: "doctor", Privilege: policy.Insert, Scope: "//diagnosis",
	}); err != nil {
		t.Fatal(err)
	}
	ok, err := a.CanIssue(d, h, "laporte", policy.Insert, "//diagnosis")
	if err != nil || !ok {
		t.Errorf("role-delegated authority not inherited: %v %v", ok, err)
	}
	ok, err = a.CanIssue(d, h, "beaufort", policy.Insert, "//diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("delegation to doctor leaked to secretary")
	}
}

func TestWithGrantChains(t *testing.T) {
	d, h, a := env(t)
	// dba -> laporte (with grant) -> beaufort.
	if err := a.Delegate(d, h, Delegation{
		Grantor: "dba", Grantee: "laporte", Privilege: policy.Read,
		Scope: "//diagnosis/node()", WithGrant: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Delegate(d, h, Delegation{
		Grantor: "laporte", Grantee: "beaufort", Privilege: policy.Read,
		Scope: "/patients/franck/diagnosis/node()",
	}); err != nil {
		t.Fatal(err)
	}
	ok, err := a.CanIssue(d, h, "beaufort", policy.Read, "/patients/franck/diagnosis/node()")
	if err != nil || !ok {
		t.Errorf("chained delegation broken: %v %v", ok, err)
	}
	// Without WithGrant the middle cannot extend the chain.
	if err := a.Delegate(d, h, Delegation{
		Grantor: "beaufort", Grantee: "richard", Privilege: policy.Read,
		Scope: "/patients/franck/diagnosis/node()",
	}); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("grantee without grant option delegated: %v", err)
	}
	// The middle cannot delegate beyond its own scope either.
	if err := a.Delegate(d, h, Delegation{
		Grantor: "laporte", Grantee: "richard", Privilege: policy.Read,
		Scope: "//service", WithGrant: false,
	}); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("scope escalation allowed: %v", err)
	}
}

func TestRevokeCascades(t *testing.T) {
	d, h, a := env(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.Delegate(d, h, Delegation{Grantor: "dba", Grantee: "laporte",
		Privilege: policy.Read, Scope: "//diagnosis/node()", WithGrant: true}))
	must(a.Delegate(d, h, Delegation{Grantor: "laporte", Grantee: "beaufort",
		Privilege: policy.Read, Scope: "//diagnosis/node()", WithGrant: true}))
	must(a.Delegate(d, h, Delegation{Grantor: "beaufort", Grantee: "richard",
		Privilege: policy.Read, Scope: "//diagnosis/node()"}))
	if len(a.Delegations()) != 3 {
		t.Fatalf("%d delegations", len(a.Delegations()))
	}
	removed, err := a.Revoke(d, h, "dba", "laporte", policy.Read)
	if err != nil {
		t.Fatal(err)
	}
	// The whole chain collapses: 1 revoked + 2 cascaded.
	if removed != 3 || len(a.Delegations()) != 0 {
		t.Errorf("removed=%d remaining=%d, want 3/0", removed, len(a.Delegations()))
	}
	ok, err := a.CanIssue(d, h, "richard", policy.Read, "//diagnosis/node()")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cascaded-revoked authority survived")
	}
}

func TestRevokeKeepsIndependentChains(t *testing.T) {
	d, h, a := env(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Two independent grants to beaufort; revoking one keeps the other.
	must(a.Delegate(d, h, Delegation{Grantor: "dba", Grantee: "laporte",
		Privilege: policy.Read, Scope: "//diagnosis/node()", WithGrant: true}))
	must(a.Delegate(d, h, Delegation{Grantor: "laporte", Grantee: "beaufort",
		Privilege: policy.Read, Scope: "//diagnosis/node()"}))
	must(a.Delegate(d, h, Delegation{Grantor: "dba", Grantee: "beaufort",
		Privilege: policy.Read, Scope: "//diagnosis/node()"}))
	if _, err := a.Revoke(d, h, "dba", "laporte", policy.Read); err != nil {
		t.Fatal(err)
	}
	// laporte's grant and its dependent fall; dba's direct grant survives.
	if len(a.Delegations()) != 1 {
		t.Fatalf("%d delegations remain, want 1", len(a.Delegations()))
	}
	ok, err := a.CanIssue(d, h, "beaufort", policy.Read, "//diagnosis/node()")
	if err != nil || !ok {
		t.Errorf("independently granted authority lost: %v %v", ok, err)
	}
}

func TestGuardedAdd(t *testing.T) {
	d, h, a := env(t)
	pol := policy.New()
	rule := policy.Rule{Effect: policy.Accept, Privilege: policy.Read,
		Path: "/patients/franck/diagnosis", Subject: "secretary", Priority: 1}
	// laporte has no authority yet.
	if err := a.GuardedAdd(d, h, pol, "laporte", rule); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("unauthorized add: %v", err)
	}
	if pol.Len() != 0 {
		t.Fatal("rule slipped in")
	}
	if err := a.Delegate(d, h, Delegation{Grantor: "dba", Grantee: "laporte",
		Privilege: policy.Read, Scope: "/patients/franck/descendant-or-self::node()"}); err != nil {
		t.Fatal(err)
	}
	if err := a.GuardedAdd(d, h, pol, "laporte", rule); err != nil {
		t.Fatal(err)
	}
	if pol.Len() != 1 {
		t.Error("authorized rule not added")
	}
	// The owner can always add.
	rule2 := rule
	rule2.Priority = 2
	rule2.Path = "//service"
	if err := a.GuardedAdd(d, h, pol, "dba", rule2); err != nil {
		t.Fatal(err)
	}
}

func TestDelegateValidation(t *testing.T) {
	d, h, a := env(t)
	if err := a.Delegate(d, h, Delegation{Grantor: "ghost", Grantee: "laporte",
		Privilege: policy.Read, Scope: "//x"}); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("unknown grantor: %v", err)
	}
	if err := a.Delegate(d, h, Delegation{Grantor: "dba", Grantee: "ghost",
		Privilege: policy.Read, Scope: "//x"}); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("unknown grantee: %v", err)
	}
	if err := a.Delegate(d, h, Delegation{Grantor: "dba", Grantee: "laporte",
		Privilege: policy.Read, Scope: "//["}); err == nil {
		t.Error("bad scope path accepted")
	}
	d2 := Delegation{Grantor: "dba", Grantee: "laporte", Privilege: policy.Read,
		Scope: "//diagnosis", WithGrant: true}
	if err := a.Delegate(d, h, d2); err != nil {
		t.Fatal(err)
	}
	if s := d2.String(); s == "" {
		t.Error("empty String")
	}
}

func TestGuardedAddChecked(t *testing.T) {
	d, h, a := env(t)
	pol, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	// A benign rule: no findings involve it.
	findings, repairs, err := a.GuardedAddChecked(d, h, pol, "dba", policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read, Path: "//service", Subject: "doctor", Priority: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || len(repairs) != 0 {
		t.Errorf("benign rule produced advice: %+v / %+v", findings, repairs)
	}
	// A rule that shadows and reopens the secretary deny: the issuance
	// succeeds but returns the warnings, each with suggested repairs.
	findings, repairs, err = a.GuardedAddChecked(d, h, pol, "dba", policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read, Path: "//diagnosis/node()", Subject: "secretary", Priority: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	codes := map[string]bool{}
	for _, f := range findings {
		codes[f.Code] = true
	}
	if !codes[policyanalysis.CodeConflictOverlap] || !codes[policyanalysis.CodeDeadRule] {
		t.Errorf("expected conflict-overlap and dead-rule involvement, got %+v", findings)
	}
	repaired := map[string]bool{}
	for _, r := range repairs {
		if !r.Validated {
			t.Errorf("unvalidated repair surfaced: %+v", r)
		}
		repaired[r.Code] = true
	}
	for _, f := range findings {
		if policyanalysis.RepairableCodes[f.Code] && !repaired[f.Code] {
			t.Errorf("involved finding %s has no suggested repair", f.Code)
		}
	}
	if pol.Len() != 14 {
		t.Errorf("rules = %d, want 14 (findings must not veto)", pol.Len())
	}
	// Authority failures surface as errors, without analysis.
	if _, _, err := a.GuardedAddChecked(d, h, pol, "laporte", policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read, Path: "//x", Subject: "doctor", Priority: 32,
	}); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("unauthorized issuer: %v", err)
	}
}
