package core

import (
	"fmt"
	"sync"
	"testing"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

// tierCounts snapshots the per-tier query counters (process-global, so
// assertions are on deltas).
func tierCounts() (rw, qf, vw uint64) {
	return queryTierCounters[TierRewrite].Value(),
		queryTierCounters[TierQfilter].Value(),
		queryTierCounters[TierView].Value()
}

func rewriteFallbackCounts() (frag, nsVal uint64) {
	return obs.Default().Counter("xmlsec_rewrite_fallback_total", "reason", "rule_fragment").Value(),
		obs.Default().Counter("xmlsec_rewrite_fallback_total", "reason", "nodeset_value").Value()
}

// TestQueryTierRouting drives each rung of the read ladder and asserts both
// the reported tier and the tier/fallback telemetry.
func TestQueryTierRouting(t *testing.T) {
	db := hospital(t)
	s := session(t, db, "laporte")

	// Chain-only profile: the rewrite tier serves node-set and atomic
	// queries without touching any view.
	r0, q0, v0 := tierCounts()
	res, tier, err := s.QueryTiered("//diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierRewrite || len(res) != 2 {
		t.Fatalf("doctor query: tier %v with %d results, want rewrite/2", tier, len(res))
	}
	if _, tier, err = s.QueryValueTiered("count(//diagnosis)"); err != nil || tier != TierRewrite {
		t.Fatalf("doctor count: tier %v err %v, want rewrite", tier, err)
	}
	r1, q1, v1 := tierCounts()
	if r1 != r0+2 || q1 != q0 || v1 != v0 {
		t.Errorf("tier counters after rewrite-served queries: rewrite+%d qfilter+%d view+%d, want 2/0/0",
			r1-r0, q1-q0, v1-v0)
	}

	// A non-empty node-set value must come from the materialized view
	// (raw source nodes would leak hidden labels), counted as a
	// nodeset_value fallback.
	f0, n0 := rewriteFallbackCounts()
	val, tier, err := s.QueryValueTiered("//diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierView {
		t.Fatalf("node-set value: tier %v, want view", tier)
	}
	if ns, ok := val.(xpath.NodeSet); !ok || len(ns) != 2 {
		t.Fatalf("node-set value: %v", val)
	}
	f1, n1 := rewriteFallbackCounts()
	if n1 != n0+1 || f1 != f0 {
		t.Errorf("fallback counters: nodeset_value+%d rule_fragment+%d, want 1/0", n1-n0, f1-f0)
	}

	// An out-of-fragment rule poisons the whole profile: staff queries
	// fall back to qfilter (rule_fragment counted), and once the session
	// holds a fresh view, the ladder prefers the free view directly.
	if err := db.AddRule(policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "/patients/*[1]", Subject: "staff", Priority: 500,
	}); err != nil {
		t.Fatal(err)
	}
	f1, _ = rewriteFallbackCounts()
	if _, tier, err = s.QueryTiered("//diagnosis"); err != nil || tier != TierQfilter {
		t.Fatalf("poisoned profile: tier %v err %v, want qfilter", tier, err)
	}
	f2, _ := rewriteFallbackCounts()
	if f2 != f1+1 {
		t.Errorf("rule_fragment fallback moved by %d, want 1", f2-f1)
	}
	if _, err := s.View(); err != nil {
		t.Fatal(err)
	}
	if _, tier, err = s.QueryTiered("//diagnosis"); err != nil || tier != TierView {
		t.Fatalf("poisoned profile with fresh view: tier %v err %v, want view", tier, err)
	}
}

// TestQueryTierAgreement cross-checks the rungs end-to-end on the public
// API: the same query answered before and after profile poisoning (rewrite
// vs qfilter vs view) yields identical results.
func TestQueryTierAgreement(t *testing.T) {
	queries := []string{"//diagnosis", "/patients/*", "//RESTRICTED", "/patients/*[name() = $USER]", "//text()"}
	for _, user := range []string{"laporte", "beaufort", "richard", "franck"} {
		db := hospital(t)
		s := session(t, db, user)
		for _, q := range queries {
			if _, tier, err := s.QueryTiered(q); err != nil || tier != TierRewrite {
				t.Fatalf("user %s query %s: tier %v err %v, want rewrite", user, q, tier, err)
			}
		}
		// Poison the profile for every subject so all users drop a rung.
		for i, subj := range []string{"staff", "patient"} {
			if err := db.AddRule(policy.Rule{
				Effect: policy.Deny, Privilege: policy.Insert,
				Path: "/patients/*[1]", Subject: subj, Priority: int64(600 + i),
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Write privileges never disqualify: still the rewrite tier.
		if _, tier, err := s.QueryTiered("//diagnosis"); err != nil || tier != TierRewrite {
			t.Fatalf("user %s: write-rule poisoning changed the read tier to %v (err %v)", user, tier, err)
		}
		for i, subj := range []string{"staff", "patient"} {
			if err := db.AddRule(policy.Rule{
				Effect: policy.Accept, Privilege: policy.Position,
				Path: "/patients/*[last()]", Subject: subj, Priority: int64(700 + i),
			}); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range queries {
			// A fresh session holds no view, so the ladder lands on the
			// qfilter rung (the original session would serve the view it
			// cached computing the reference answer — also correct, but
			// not the rung under test here).
			res, tier, err := session(t, db, user).QueryTiered(q)
			if err != nil {
				t.Fatal(err)
			}
			if tier != TierQfilter {
				t.Fatalf("user %s query %s: tier %v, want qfilter", user, q, tier)
			}
			if fmt.Sprint(res) != fmt.Sprint(viewReference(t, s, q)) {
				t.Errorf("user %s query %s: qfilter answer diverged from view", user, q)
			}
		}
	}
}

// viewReference evaluates q over the session's materialized view through
// the public View API — the reference answer for any tier.
func viewReference(t *testing.T, s *Session, q string) []Result {
	t.Helper()
	v, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	c, err := xpath.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := c.Select(v.Doc.Root(), xpath.Vars{"USER": xpath.String(s.User())})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{Kind: n.Kind(), Label: n.Label(), Path: n.Path(), Value: n.StringValue()}
	}
	return out
}

// TestTierEnumLabels pins the ladder's telemetry labels.
func TestTierEnumLabels(t *testing.T) {
	want := map[Tier]string{
		TierRewrite: "rewrite", TierQfilter: "qfilter", TierView: "view", Tier(99): "unknown",
	}
	for tier, label := range want {
		if tier.String() != label || tier.MetricLabel() != label {
			t.Errorf("tier %d: %q/%q, want %q", int(tier), tier.String(), tier.MetricLabel(), label)
		}
	}
}

// TestLadderEpochChurnRace hammers the read ladder from concurrent
// sessions while the policy epoch moves (grants/revokes rebuild the
// rewrite engine) and the document mutates — the invariants the rewrite
// tier's epoch-keyed engine cache must survive. Run with -race.
func TestLadderEpochChurnRace(t *testing.T) {
	db := hospital(t)
	readers := []*Session{
		session(t, db, "laporte"),
		session(t, db, "beaufort"),
		session(t, db, "franck"),
	}
	writer := session(t, db, "laporte")
	const iters = 60
	var wg sync.WaitGroup
	for _, s := range readers {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := s.QueryTiered("//diagnosis"); err != nil {
					t.Errorf("%s query: %v", s.User(), err)
					return
				}
				if _, _, err := s.QueryValueTiered("count(//*)"); err != nil {
					t.Errorf("%s count: %v", s.User(), err)
					return
				}
				if _, _, err := s.QueryTiered("/patients/*[name() = $USER]"); err != nil {
					t.Errorf("%s self query: %v", s.User(), err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var err error
			if i%2 == 0 {
				err = db.Grant(policy.Read, "//service", "patient")
			} else {
				err = db.Revoke(policy.Read, "//service", "patient")
			}
			if err != nil {
				t.Errorf("churn %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			_, err := writer.Update(&xupdate.Op{
				Kind:     xupdate.Update,
				Select:   "/patients/franck/diagnosis",
				NewValue: fmt.Sprintf("tonsillitis-%d", i),
			})
			if err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
}
