package core

import (
	"fmt"
	"sync"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// TestIncrementalViewRaceStress hammers the incremental view-maintenance
// path under -race: every user's session is shared by two reader
// goroutines (so each read after a write patches the shared cached view
// in place), while writers stream single-node updates, structural grafts
// and removals, and an administrator occasionally flips the policy epoch
// to force full rebuilds and maintainer recompiles. After the storm, each
// shared session's patched view must serialize identically to the view of
// a fresh session for the same user.
func TestIncrementalViewRaceStress(t *testing.T) {
	db := hospital(t)
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	fail := func(err error) {
		if err != nil {
			errs <- err
		}
	}

	users := []string{"beaufort", "laporte", "richard", "robert", "franck"}
	shared := make(map[string]*Session, len(users))
	for _, u := range users {
		shared[u] = session(t, db, u)
	}

	// Readers: two goroutines per shared session.
	for _, u := range users {
		s := shared[u]
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if _, err := s.Query("//service"); err != nil {
						fail(err)
						return
					}
					if _, err := s.ViewXML(); err != nil {
						fail(err)
						return
					}
					if _, err := s.QueryValue("count(//diagnosis)"); err != nil {
						fail(err)
						return
					}
				}
			}()
		}
	}

	// Writer 1: the doctor rewrites diagnosis texts (single-node deltas,
	// the incremental sweet spot) and occasionally deletes them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := db.Session("laporte")
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: fmt.Sprintf("dx%d", i)}); err != nil {
				fail(err)
				return
			}
			if i%7 == 6 {
				if _, err := s.Update(&xupdate.Op{Kind: xupdate.Remove, Select: "//diagnosis/node()"}); err != nil {
					fail(err)
					return
				}
			}
		}
	}()

	// Writer 2: the secretary grafts new patients (insert deltas).
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := db.Session("beaufort")
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < iters; i++ {
			frag, err := xmltree.ParseString(fmt.Sprintf("<p%d><service>s%d</service></p%d>", i, i, i), xmltree.ParseOptions{Fragment: true})
			if err != nil {
				fail(err)
				return
			}
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Append, Select: "/patients", Content: frag}); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Administrator: periodic policy churn forces epoch misses between
	// incremental applies, exercising the rebuild/recompile transition.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			if err := db.Grant(policy.Read, "//service", "staff"); err != nil {
				fail(err)
				return
			}
			if err := db.Revoke(policy.Read, "//note", "secretary"); err != nil {
				fail(err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent check: every shared session's (incrementally patched)
	// view must match a fresh session's from-scratch materialization.
	for _, u := range users {
		got, err := shared[u].ViewXML()
		if err != nil {
			t.Fatal(err)
		}
		want, err := session(t, db, u).ViewXML()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("user %s: patched view diverged from fresh view\npatched:\n%s\nfresh:\n%s", u, got, want)
		}
	}
}
