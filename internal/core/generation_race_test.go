// Generation-level concurrency properties of the copy-on-write core, all
// meant to run under -race: pinned generations are immutable snapshots
// even while group-commit churn publishes successors; the group-commit
// queue coalesces a round of writes into ONE published generation without
// losing any of them; and the clone-apply-publish executor is
// behavior-identical to the in-place unsecured executor (the differential
// oracle of the pre-COW design, re-run over the COW path).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"securexml/internal/policy"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

// TestGenerationPinnedSnapshotIsolation: a reader that pins a generation
// keeps a fully stable snapshot — same version, same serialization, frozen
// document — no matter how much write and policy churn happens after the
// pin, and successive gen() loads observe a non-decreasing sequence.
func TestGenerationPinnedSnapshotIsolation(t *testing.T) {
	db := hospital(t)
	g0 := db.gen()
	xml0 := g0.doc.XML()
	ver0 := g0.ver()
	if !g0.doc.Frozen() {
		t.Fatal("published generation document is not frozen")
	}

	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		if err != nil {
			errs <- err
		}
	}

	// Readers: pin a fresh generation each round, read it twice with work
	// in between, and demand bit-for-bit stability plus seq monotonicity.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for i := 0; i < iters; i++ {
				g := db.gen()
				if g.seq < lastSeq {
					fail(fmt.Errorf("generation seq went backwards: %d after %d", g.seq, lastSeq))
					return
				}
				lastSeq = g.seq
				v := g.ver()
				if _, err := xpath.Select(g.doc, "//service", nil); err != nil {
					fail(err)
					return
				}
				if g.ver() != v {
					fail(fmt.Errorf("pinned generation version moved %d -> %d", v, g.ver()))
					return
				}
				if !g.doc.Frozen() {
					fail(fmt.Errorf("pinned generation document not frozen"))
					return
				}
			}
		}()
	}

	// Writers: the doctor rewrites diagnoses, the secretary grafts
	// patients — steady group-commit churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := db.Session("laporte")
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: fmt.Sprintf("dx%d", i)}); err != nil {
				fail(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := db.Session("beaufort")
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < iters; i++ {
			frag, err := xmltree.ParseString(fmt.Sprintf("<g%d><service>s%d</service></g%d>", i, i, i), xmltree.ParseOptions{Fragment: true})
			if err != nil {
				fail(err)
				return
			}
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Append, Select: "/patients", Content: frag}); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Admin: epoch churn swaps the policy/subject components.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			if err := db.Grant(policy.Read, "//service", "staff"); err != nil {
				fail(err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The generation pinned before the storm is untouched by all of it.
	if g0.ver() != ver0 {
		t.Fatalf("pinned generation version moved %d -> %d", ver0, g0.ver())
	}
	if got := g0.doc.XML(); got != xml0 {
		t.Fatalf("pinned generation serialization changed under churn\nbefore:\n%s\nafter:\n%s", xml0, got)
	}
	if db.gen() == g0 {
		t.Fatal("churn published no new generation")
	}
}

// TestGroupCommitCoalescesRound stalls the commit leader so three
// concurrent writes pile up in the queue, then verifies the whole round is
// published as exactly ONE new generation — with every write present and
// each writer seeing its own write at return (read-your-writes).
func TestGroupCommitCoalescesRound(t *testing.T) {
	db := hospital(t)

	stall := make(chan struct{})
	entered := make(chan struct{})
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		// A no-op request: it occupies the leader slot until released and
		// publishes nothing (a round without changes is discarded).
		db.submit(func(c *commitCtx) {
			close(entered)
			<-stall
		})
	}()
	<-entered

	const writers = 3
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := db.Session("beaufort")
			if err != nil {
				errs <- err
				return
			}
			frag, err := xmltree.ParseString(fmt.Sprintf("<w%d/>", i), xmltree.ParseOptions{Fragment: true})
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Append, Select: "/patients", Content: frag}); err != nil {
				errs <- err
				return
			}
			// Read-your-writes: the generation visible after Update returns
			// must already contain this write.
			ns, err := xpath.Select(db.gen().doc, fmt.Sprintf("//w%d", i), nil)
			if err != nil {
				errs <- err
				return
			}
			if len(ns) != 1 {
				errs <- fmt.Errorf("writer %d: write not visible after Update returned", i)
			}
		}(i)
	}

	// Wait for all three to be queued behind the stalled leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		db.commitMu.Lock()
		n := len(db.queue)
		db.commitMu.Unlock()
		if n == writers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d writers queued behind the stalled leader", n, writers)
		}
		time.Sleep(time.Millisecond)
	}

	seq0 := db.gen().seq
	close(stall)
	wg.Wait()
	leaderDone.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := db.gen().seq; got != seq0+1 {
		t.Fatalf("three queued writes published %d generations, want exactly 1", got-seq0)
	}
	src := db.SourceXML()
	for i := 0; i < writers; i++ {
		ns, err := xpath.Select(db.gen().doc, fmt.Sprintf("//w%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != 1 {
			t.Fatalf("write w%d lost in the coalesced round; source:\n%s", i, src)
		}
	}
}

// TestCOWExecutorDifferentialOracle replays a deterministic OpStream
// through an omnipotent session (secured semantics degenerate to the
// unsecured ones when every privilege is granted everywhere) and through
// the raw in-place executor on a mirror document. The COW
// clone-apply-publish pipeline must leave the database source identical to
// the mirror — while concurrent readers pin and re-read old generations
// the whole time.
func TestCOWExecutorDifferentialOracle(t *testing.T) {
	const ops = 120
	for _, seed := range []int64{1, 42} {
		mirror, err := workload.Hospital(workload.HospitalConfig{Patients: 6, RecordsPerPatient: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		xml := mirror.XML()
		db := New()
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(db.LoadXMLString(xml))
		must(db.AddRole("root"))
		must(db.AddUser("omni", "root"))
		for _, priv := range policy.Privileges {
			// node() never matches attributes (they are not on the child
			// axis), so omnipotence needs the attribute subtrees granted
			// explicitly.
			must(db.Grant(priv, "/descendant-or-self::node()", "root"))
			must(db.Grant(priv, "/descendant-or-self::node()/attribute::node()/descendant-or-self::node()", "root"))
		}
		s := session(t, db, "omni")

		// Background readers pinning generations during the replay.
		done := make(chan struct{})
		var stopped atomic.Bool
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stopped.Load() {
					g := db.gen()
					v := g.ver()
					if _, err := xpath.Select(g.doc, "//record", nil); err != nil {
						errs <- err
						return
					}
					if g.ver() != v {
						errs <- fmt.Errorf("pinned generation version moved during replay")
						return
					}
				}
			}()
		}

		stream := workload.OpStream(workload.OpConfig{Doc: mirror, Seed: seed})
		for i := 0; i < ops; i++ {
			op, err := stream.Next()
			if err != nil {
				t.Fatal(err)
			}
			// Known, deliberate semantic split: unsecured Update on an EMPTY
			// element creates a text child (axiom 4–5 reading), the secured
			// executor refuses (axioms 20–21 need a visible child). Skip the
			// op on both sides so the docs stay in lockstep.
			if op.Kind == xupdate.Update {
				ns, err := xpath.Select(mirror, op.Select, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(ns) == 1 && len(ns[0].Children()) == 0 {
					continue
				}
			}
			if _, err := xupdate.Execute(mirror, op, nil); err != nil {
				t.Fatalf("seed %d op %d (mirror): %v", seed, i, err)
			}
			if _, err := s.Update(op); err != nil {
				t.Fatalf("seed %d op %d (session): %v", seed, i, err)
			}
		}
		stopped.Store(true)
		wg.Wait()
		close(done)
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		if got, want := db.SourceXML(), mirror.XML(); got != want {
			t.Fatalf("seed %d: COW executor diverged from in-place executor\ncow:\n%s\nmirror:\n%s", seed, got, want)
		}
	}
}
