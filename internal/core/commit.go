package core

import (
	"time"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// Telemetry: one histogram point per commit round (how many writes were
// coalesced into one published generation, and how long the round took
// end to end), plus the published sequence number and the age the
// replaced generation reached — the write-side counterpart of the
// lock-free read story.
var (
	commitBatchSize = obs.Default().Histogram("xmlsec_commit_batch_size", obs.SizeBuckets)
	commitLatency   = obs.Default().Histogram("xmlsec_commit_latency_seconds", obs.LatencyBuckets)
	generationSeq   = obs.Default().Gauge("xmlsec_generation_seq")
	generationAge   = obs.Default().Histogram("xmlsec_generation_age_seconds", obs.LatencyBuckets)
)

// commitReq is one write waiting in the group-commit queue.
type commitReq struct {
	// apply runs on the leader goroutine against the round's scratch
	// state; it communicates results to the submitter through captured
	// variables (the done close is the happens-before edge).
	apply func(c *commitCtx)
	done  chan struct{}
}

// commitCtx is the scratch state of one commit round: the base generation
// plus lazily cloned components. A request mutates the clone returned by
// mutableDoc/mutableSubjects/mutablePolicy; untouched components are
// carried over by pointer into the next generation (an admin-only round
// shares the document, a write-only round shares policy and subjects).
type commitCtx struct {
	db   *Database
	base *generation

	// doc is the scratch document clone; nil until the first mutableDoc
	// (or a LoadXML replacement). The clone cost is paid once per round
	// and amortized across every write in the batch.
	doc      *xmltree.Document
	subjects *subject.Hierarchy
	policy   *policy.Policy
	docGen   uint64
	epoch    uint64
	// adminChanged is set by a *successful* admin operation; without it
	// the round's subject/policy clones are discarded at publish.
	adminChanged bool
	// docReset marks a LoadXML replacement this round: docGen moved and
	// the delta log restarts.
	docReset bool
	// batches are the delta batches recorded by successful updates this
	// round, in order (post-replacement only, when docReset is set).
	batches []deltaBatch
}

// mutableDoc returns the round's scratch document, cloning the base
// snapshot on first use.
func (c *commitCtx) mutableDoc() *xmltree.Document {
	if c.doc == nil {
		c.doc = c.base.doc.Clone()
	}
	return c.doc
}

// mutableSubjects returns the round's scratch hierarchy, cloning on first
// use.
func (c *commitCtx) mutableSubjects() *subject.Hierarchy {
	if c.subjects == nil {
		c.subjects = c.base.subjects.Clone()
	}
	return c.subjects
}

// mutablePolicy returns the round's scratch policy, cloning on first use.
func (c *commitCtx) mutablePolicy() *policy.Policy {
	if c.policy == nil {
		c.policy = c.base.policy.Clone()
	}
	return c.policy
}

// curSubjects returns the hierarchy a request in this round must read:
// the scratch clone if an earlier request in the round already touched
// it, the base otherwise.
func (c *commitCtx) curSubjects() *subject.Hierarchy {
	if c.subjects != nil {
		return c.subjects
	}
	return c.base.subjects
}

// curPolicy is curSubjects for the policy.
func (c *commitCtx) curPolicy() *policy.Policy {
	if c.policy != nil {
		return c.policy
	}
	return c.base.policy
}

// submit enqueues fn into the group-commit queue and blocks until the
// round containing it has been published (or discarded, for a round of
// failures). The first writer to arrive becomes the leader: it drains the
// queue in rounds, applying each round's requests sequentially with no
// lock held, publishing ONE generation per round, and closing every done
// channel after the atomic store — so a writer that returns always sees
// its own write in the next gen() load (read-your-writes).
func (db *Database) submit(fn func(c *commitCtx)) {
	req := &commitReq{apply: fn, done: make(chan struct{})}
	db.commitMu.Lock()
	db.queue = append(db.queue, req)
	if db.leader {
		db.commitMu.Unlock()
		<-req.done
		return
	}
	db.leader = true
	for len(db.queue) > 0 {
		round := db.queue
		db.queue = nil
		db.commitMu.Unlock()
		db.commitRound(round)
		db.commitMu.Lock()
	}
	db.leader = false
	db.commitMu.Unlock()
	// Our own request was in the first round this leader processed.
	<-req.done
}

// commitRound applies one round of queued requests against a shared
// scratch context, publishes the resulting generation, then releases the
// submitters. It runs on the leader goroutine with no lock held.
func (db *Database) commitRound(round []*commitReq) {
	start := time.Now()
	base := db.current.Load()
	c := &commitCtx{db: db, base: base, docGen: base.docGen, epoch: base.epoch}
	for _, r := range round {
		r.apply(c)
	}
	db.publish(c)
	commitBatchSize.Observe(float64(len(round)))
	commitLatency.Observe(time.Since(start).Seconds())
	for _, r := range round {
		close(r.done)
	}
}

// publish builds the next generation from the round's scratch state and
// stores it. A round where nothing actually changed (every request failed
// or was a no-op) publishes nothing and discards its speculative clones.
func (db *Database) publish(c *commitCtx) {
	base := c.base
	docMoved := c.doc != nil && (c.docReset || c.doc.Version() != base.ver())
	if !docMoved && !c.adminChanged {
		return
	}
	next := &generation{
		seq:      base.seq + 1,
		doc:      base.doc,
		subjects: base.subjects,
		policy:   base.policy,
		docGen:   c.docGen,
		epoch:    c.epoch,
		born:     time.Now(),
		log:      base.log,
	}
	if c.adminChanged {
		if c.subjects != nil {
			next.subjects = c.subjects
		}
		if c.policy != nil {
			next.policy = c.policy
		}
	}
	if docMoved {
		next.doc = c.doc
		next.doc.Freeze()
		if c.docReset {
			next.log = nil
		}
		next.log = appendTrimmed(next.log, mergeRoundBatches(c.batches))
	}
	generationSeq.Set(int64(next.seq))
	generationAge.Observe(time.Since(base.born).Seconds())
	db.current.Store(next)
}

// mergeRoundBatches collapses the round's batches into one coalesced
// batch per contiguous version run. Version gaps between batches (a
// failed executor moved the version without recording deltas) are
// preserved as gaps, so deltaChain still refuses to patch across them.
func mergeRoundBatches(batches []deltaBatch) []deltaBatch {
	if len(batches) == 0 {
		return nil
	}
	var out []deltaBatch
	runFrom, runTo := batches[0].fromVer, batches[0].toVer
	var run []xupdate.Delta
	run = append(run, batches[0].deltas...)
	flush := func() {
		out = append(out, deltaBatch{fromVer: runFrom, toVer: runTo, deltas: xupdate.Coalesce(run)})
	}
	for _, b := range batches[1:] {
		if b.fromVer != runTo {
			flush()
			runFrom, run = b.fromVer, nil
		}
		runTo = b.toVer
		run = append(run, b.deltas...)
	}
	flush()
	return out
}

// appendTrimmed appends the round's merged batches to the shared-backing
// log and trims to deltaLogCap by reslicing (never by copying down —
// published generations keep indexing the same backing slots).
func appendTrimmed(log []deltaBatch, batches []deltaBatch) []deltaBatch {
	log = append(log, batches...)
	if len(log) > deltaLogCap {
		log = log[len(log)-deltaLogCap:]
	}
	return log
}
