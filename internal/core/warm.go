package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"securexml/internal/obs"
)

// warmPoolActive gauges how many warm-up workers are materializing views
// right now; zero between WarmSessions calls.
var warmPoolActive = obs.Default().Gauge("xmlsec_warm_pool_active")

// Warm materializes the session's view without returning it, so a later
// View/Query/Transform starts from the cache instead of a cold axiom-14
// evaluation. The first warmed user also fills the database's cross-user
// rule cache, making every other user's warm-up cheap.
func (s *Session) Warm(ctx context.Context) error {
	start := time.Now()
	_, err := s.currentView(ctx, s.db.gen())
	if err != nil {
		sessionOp("warm", "error")
		s.db.recordCtx(ctx, "warm", s.user, "", "error: "+err.Error(), time.Since(start))
		return err
	}
	sessionOp("warm", "ok")
	return nil
}

// WarmSessions materializes the views of many users through a bounded
// worker pool, sharing the cross-user rule cache so N cold users cost
// roughly one document scan plus per-user merges. users nil means every
// declared user; workers <= 0 means GOMAXPROCS. It returns how many users
// were warmed successfully and the first error encountered (remaining
// users are still attempted — a bad user must not shadow the rest of the
// fleet). The warm-up races harmlessly with concurrent writes: a view
// invalidated mid-warm is simply rebuilt or patched on next use.
func (db *Database) WarmSessions(ctx context.Context, users []string, workers int) (int, error) {
	if users == nil {
		users = db.Users()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(users) {
		workers = len(users)
	}
	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		warmed   int
		firstErr error
	)
	work := make(chan string)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			warmPoolActive.Add(1)
			defer warmPoolActive.Add(-1)
			for user := range work {
				s, err := db.SharedSession(user)
				if err == nil {
					err = s.Warm(ctx)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: warming %q: %w", user, err)
					}
				} else {
					warmed++
				}
				mu.Unlock()
			}
		}()
	}
	for _, u := range users {
		if ctx.Err() != nil {
			break
		}
		work <- u
	}
	close(work)
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	outcome := "ok"
	if firstErr != nil {
		outcome = "error: " + firstErr.Error()
	}
	db.recordCtx(ctx, "warm-sessions", "system",
		fmt.Sprintf("%d/%d users, %d workers", warmed, len(users), workers), outcome, time.Since(start))
	return warmed, firstErr
}
