package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"securexml/internal/labeling"
	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

// hospital builds the complete paper scenario on the public API.
func hospital(t *testing.T) *Database {
	t.Helper()
	db := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.LoadXMLString(medXML))
	must(db.AddRole("staff"))
	must(db.AddRole("secretary", "staff"))
	must(db.AddRole("doctor", "staff"))
	must(db.AddRole("epidemiologist", "staff"))
	must(db.AddRole("patient"))
	must(db.AddUser("beaufort", "secretary"))
	must(db.AddUser("laporte", "doctor"))
	must(db.AddUser("richard", "epidemiologist"))
	must(db.AddUser("robert", "patient"))
	must(db.AddUser("franck", "patient"))

	must(db.Grant(policy.Read, "/descendant-or-self::node()", "staff"))
	must(db.Revoke(policy.Read, "//diagnosis/node()", "secretary"))
	must(db.Grant(policy.Position, "//diagnosis/node()", "secretary"))
	must(db.Grant(policy.Read, "/patients", "patient"))
	must(db.Grant(policy.Read, "/patients/*[name() = $USER]/descendant-or-self::node()", "patient"))
	must(db.Revoke(policy.Read, "/patients/*", "epidemiologist"))
	must(db.Grant(policy.Position, "/patients/*", "epidemiologist"))
	must(db.Grant(policy.Insert, "/patients", "secretary"))
	must(db.Grant(policy.Update, "/patients/*", "secretary"))
	must(db.Grant(policy.Insert, "//diagnosis", "doctor"))
	must(db.Grant(policy.Update, "//diagnosis/node()", "doctor"))
	must(db.Grant(policy.Delete, "//diagnosis/node()", "doctor"))
	return db
}

func session(t *testing.T, db *Database, user string) *Session {
	t.Helper()
	s, err := db.Session(user)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionValidation(t *testing.T) {
	db := hospital(t)
	if _, err := db.Session("mallory"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown user: %v", err)
	}
	if _, err := db.Session("doctor"); !errors.Is(err, ErrNotUser) {
		t.Errorf("role session: %v", err)
	}
	s := session(t, db, "laporte")
	if s.User() != "laporte" {
		t.Errorf("User = %q", s.User())
	}
}

func TestQueryOnView(t *testing.T) {
	db := hospital(t)
	// Doctor sees diagnosis content.
	doc := session(t, db, "laporte")
	res, err := doc.Query("//diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Value != "tonsillitis" {
		t.Errorf("doctor query = %+v", res)
	}
	// Secretary sees RESTRICTED placeholders.
	sec := session(t, db, "beaufort")
	res, err = sec.Query("//diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Label != xmltree.Restricted {
		t.Errorf("secretary query = %+v", res)
	}
	// Patient robert sees only his own subtree.
	rob := session(t, db, "robert")
	res, err = rob.Query("/patients/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Label != "robert" {
		t.Errorf("robert query = %+v", res)
	}
	// Malformed query errors.
	if _, err := rob.Query("//["); err == nil {
		t.Error("bad query accepted")
	}
}

func TestQueryValue(t *testing.T) {
	db := hospital(t)
	rob := session(t, db, "robert")
	v, err := rob.QueryValue("count(//diagnosis)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Num() != 1 {
		t.Errorf("robert counts %v diagnoses, want 1 (only his own)", v.Num())
	}
	doc := session(t, db, "laporte")
	v, err = doc.QueryValue("count(//diagnosis)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Num() != 2 {
		t.Errorf("doctor counts %v diagnoses", v.Num())
	}
	if _, err := doc.QueryValue("//["); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestViewXML(t *testing.T) {
	db := hospital(t)
	sec := session(t, db, "beaufort")
	out, err := sec.ViewXML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RESTRICTED") {
		t.Errorf("secretary view lacks RESTRICTED:\n%s", out)
	}
	if strings.Contains(out, "tonsillitis") {
		t.Error("secretary view leaks diagnosis content")
	}
}

func TestUpdateThroughSession(t *testing.T) {
	db := hospital(t)
	doc := session(t, db, "laporte")
	res, err := doc.Update(&xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "cured"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result = %+v", res)
	}
	got, err := doc.Query("/patients/franck/diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != "cured" {
		t.Errorf("after update: %+v", got)
	}
	// The secretary's view refreshes too (cache keyed by doc version) but
	// still hides the content.
	sec := session(t, db, "beaufort")
	sres, err := sec.Query("/patients/franck/diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(sres) != 1 || sres[0].Label != xmltree.Restricted {
		t.Errorf("secretary sees %+v", sres)
	}
}

func TestUpdateDeniedInvisible(t *testing.T) {
	db := hospital(t)
	rob := session(t, db, "robert")
	res, err := rob.Update(&xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck"})
	if err != nil {
		t.Fatal(err)
	}
	// franck is not even in robert's view.
	if res.Selected != 0 || res.Applied != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestViewCacheInvalidation(t *testing.T) {
	db := hospital(t)
	sec := session(t, db, "beaufort")
	// View() hands out snapshots (the cached instance is patched in place
	// on updates), so caching shows in the counters, not in identity.
	h0, _, _, _ := cacheCounts()
	v1, err := sec.View()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sec.View(); err != nil {
		t.Fatal(err)
	}
	h1, _, _, _ := cacheCounts()
	if h1 != h0+1 {
		t.Error("view not cached across unchanged reads")
	}
	if v1.Restricted == 0 {
		t.Error("secretary should start with RESTRICTED diagnosis content")
	}
	// A policy change invalidates.
	if err := db.Grant(policy.Read, "//diagnosis/node()", "secretary"); err != nil {
		t.Fatal(err)
	}
	v3, err := sec.View()
	if err != nil {
		t.Fatal(err)
	}
	if v3.Restricted != 0 {
		t.Error("new grant not reflected")
	}
	// A document change is reflected on the next read (incrementally or by
	// rebuild — either way the content must be current).
	doc := session(t, db, "laporte")
	if _, err := doc.Update(&xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "flu"}); err != nil {
		t.Fatal(err)
	}
	got, err := sec.Query("/patients/franck/diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != "flu" {
		t.Errorf("document change not reflected in cached view: %+v", got)
	}
}

func TestApplyModifications(t *testing.T) {
	db := hospital(t)
	sec := session(t, db, "beaufort")
	results, err := sec.Apply(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/patients">
		    <xupdate:element name="albert"><service>cardiology</service><diagnosis/></xupdate:element>
		  </xupdate:append>
		  <xupdate:rename select="/patients/albert">adalbert</xupdate:rename>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Applied != 1 || results[1].Applied != 1 {
		t.Fatalf("results = %+v", results)
	}
	got, err := sec.Query("/patients/adalbert/service/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != "cardiology" {
		t.Errorf("after apply: %+v", got)
	}
	if _, err := sec.Apply("<garbage"); err == nil {
		t.Error("bad modifications accepted")
	}
}

func TestAuditTrail(t *testing.T) {
	db := hospital(t)
	sec := session(t, db, "beaufort")
	if _, err := sec.Query("//diagnosis"); err != nil {
		t.Fatal(err)
	}
	if _, err := sec.Update(&xupdate.Op{Kind: xupdate.Rename, Select: "/patients/franck", NewValue: "f"}); err != nil {
		t.Fatal(err)
	}
	entries := db.Audit()
	if len(entries) == 0 {
		t.Fatal("no audit entries")
	}
	var sawQuery, sawUpdate bool
	for _, e := range entries {
		if e.User == "beaufort" && e.Action == "query" {
			sawQuery = true
		}
		if e.User == "beaufort" && e.Action == "update" && strings.Contains(e.Detail, "rename") {
			sawUpdate = true
		}
	}
	if !sawQuery || !sawUpdate {
		t.Errorf("audit missing entries: query=%v update=%v", sawQuery, sawUpdate)
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq <= entries[i-1].Seq {
			t.Fatal("audit sequence not increasing")
		}
	}
}

func TestAuditLimit(t *testing.T) {
	db := New(WithAuditLimit(3))
	if err := db.LoadXMLString("<r/>"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	s := session(t, db, "u")
	for i := 0; i < 10; i++ {
		if _, err := s.Query("/r"); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.Audit()); got != 3 {
		t.Errorf("audit kept %d entries, want 3", got)
	}
	off := New(WithAuditLimit(0))
	if err := off.LoadXMLString("<r/>"); err != nil {
		t.Fatal(err)
	}
	if got := len(off.Audit()); got != 0 {
		t.Errorf("disabled audit kept %d entries", got)
	}
}

func TestWithScheme(t *testing.T) {
	db := New(WithScheme(labeling.NewLSDX()))
	if err := db.LoadXMLString(medXML); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Nodes != 12 {
		t.Errorf("nodes = %d", db.Stats().Nodes)
	}
}

func TestStats(t *testing.T) {
	db := hospital(t)
	st := db.Stats()
	if st.Nodes != 12 || st.Rules != 12 || st.Users != 5 || st.Roles != 5 {
		t.Errorf("stats = %+v", st)
	}
	if len(db.Rules()) != 12 {
		t.Errorf("Rules() = %d", len(db.Rules()))
	}
	if len(db.Users()) != 5 || len(db.Roles()) != 5 {
		t.Error("Users/Roles wrong")
	}
	if !strings.Contains(db.SourceXML(), "tonsillitis") {
		t.Error("SourceXML truncated")
	}
	if !db.Hierarchy().ISA("beaufort", "staff") {
		t.Error("Hierarchy copy broken")
	}
}

func TestAdministrationErrors(t *testing.T) {
	db := New()
	if err := db.Grant(policy.Read, "//x", "ghost"); err == nil {
		t.Error("grant to unknown subject accepted")
	}
	if err := db.AddUser("u", "ghost"); err == nil {
		t.Error("user under unknown role accepted")
	}
	if err := db.LoadXMLString("<unclosed"); err == nil {
		t.Error("bad XML accepted")
	}
	if err := db.AddRule(policy.Rule{Effect: policy.Accept, Privilege: policy.Read, Path: "//x", Subject: "ghost", Priority: 99}); err == nil {
		t.Error("AddRule with unknown subject accepted")
	}
}

// TestConcurrentReadersAndWriters hammers the database from several
// goroutines; run with -race this validates the locking discipline.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := hospital(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, user := range []string{"laporte", "beaufort", "richard", "robert"} {
		user := user
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := db.Session(user)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 30; i++ {
				if _, err := s.Query("//diagnosis"); err != nil {
					errs <- err
					return
				}
				if _, err := s.ViewXML(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := db.Session("laporte")
		if err != nil {
			errs <- err
			return
		}
		for i := 0; i < 20; i++ {
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "v"}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	db := hospital(t)
	// Mutate a bit first so the snapshot isn't the pristine state.
	doc := session(t, db, "laporte")
	if _, err := doc.Update(&xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "flu"}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Same stats (except doc version counter, which restarts).
	a, b := db.Stats(), restored.Stats()
	if a.Nodes != b.Nodes || a.Rules != b.Rules || a.Users != b.Users || a.Roles != b.Roles {
		t.Errorf("stats after restore: %+v vs %+v", a, b)
	}
	// Views identical for every user.
	for _, user := range db.Users() {
		s1 := session(t, db, user)
		s2 := session(t, restored, user)
		v1, err := s1.ViewXML()
		if err != nil {
			t.Fatal(err)
		}
		v2, err := s2.ViewXML()
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Errorf("%s: view differs after restore:\n%s\nvs\n%s", user, v1, v2)
		}
	}
	// And the restored database accepts further secured updates.
	s, err := restored.Session("laporte")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Update(&xupdate.Op{Kind: xupdate.Remove, Select: "//diagnosis/node()"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 {
		t.Errorf("restored db update applied = %d", res.Applied)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	// A snapshot whose rule names an unknown subject fails at restore.
	bad := "securexml-snapshot 1\nscheme fracpath\nrule accept read 1 ghost \"//x\"\nend\n"
	if _, err := Open(strings.NewReader(bad)); err == nil {
		t.Error("dangling rule subject accepted")
	}
}

func TestApplyWithVariablesAndValueOf(t *testing.T) {
	db := hospital(t)
	doc := session(t, db, "laporte")
	results, err := doc.Apply(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:variable name="dx" select="/patients/franck/diagnosis/text()"/>
		  <xupdate:append select="/patients/robert/diagnosis">
		    <xupdate:element name="note">was: <xupdate:value-of select="$dx"/></xupdate:element>
		  </xupdate:append>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[1].Applied != 1 {
		t.Fatalf("results = %+v", results)
	}
	got, err := doc.Query("/patients/robert/diagnosis/note")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != "was: tonsillitis" {
		t.Errorf("note = %+v", got)
	}
	// A variable bound against a restricted view copies RESTRICTED, not the
	// hidden content.
	sec := session(t, db, "beaufort") // holds insert on /patients via rule 8
	results, err = sec.Apply(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:variable name="dx" select="/patients/franck/diagnosis/text()"/>
		  <xupdate:append select="/patients">
		    <xupdate:element name="memo"><xupdate:value-of select="$dx"/></xupdate:element>
		  </xupdate:append>
		</xupdate:modifications>`)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Applied != 1 {
		t.Fatalf("secretary append refused: %+v", results[1])
	}
	memo, err := sec.Query("/patients/memo")
	if err != nil {
		t.Fatal(err)
	}
	if len(memo) != 1 || memo[0].Value != xmltree.Restricted {
		t.Errorf("memo = %+v, want RESTRICTED content", memo)
	}
}

// TestJournalRecovery: snapshot + journal replay reproduces the exact
// database state, including operations with variables and value-of, and
// tolerates a torn journal tail.
func TestJournalRecovery(t *testing.T) {
	var log strings.Builder
	db := hospitalWithOptions(t, WithJournal(&log, 0))

	// Take the snapshot BEFORE the journaled operations.
	var snap strings.Builder
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}

	// A working day of journaled writes.
	sec := session(t, db, "beaufort")
	if _, err := sec.Apply(`
		<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		  <xupdate:append select="/patients">
		    <xupdate:element name="albert"><service>cardiology</service><diagnosis/></xupdate:element>
		  </xupdate:append>
		</xupdate:modifications>`); err != nil {
		t.Fatal(err)
	}
	doc := session(t, db, "laporte")
	if _, err := doc.Update(&xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "pharyngitis"}); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Update(&xupdate.Op{Kind: xupdate.Remove, Select: "/patients/robert/diagnosis/text()"}); err != nil {
		t.Fatal(err)
	}
	// A refused op must NOT be journaled (nothing applied).
	rob := session(t, db, "robert")
	if _, err := rob.Update(&xupdate.Op{Kind: xupdate.Rename, Select: "/patients/robert", NewValue: "king"}); err != nil {
		t.Fatal(err)
	}

	// Recover from snapshot + journal.
	restored, lastSeq, err := Recover(strings.NewReader(snap.String()), strings.NewReader(log.String()))
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 3 {
		t.Errorf("lastSeq = %d, want 3 (the refused op was not logged)", lastSeq)
	}
	if restored.SourceXML() != db.SourceXML() {
		t.Errorf("recovered state differs:\n%s\nvs\n%s", restored.SourceXML(), db.SourceXML())
	}

	// Torn tail: cut the journal mid-entry; recovery keeps the prefix.
	torn := log.String()[:len(log.String())-10]
	partial, _, err := Recover(strings.NewReader(snap.String()), strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if partial.SourceXML() == db.SourceXML() {
		t.Error("torn journal unexpectedly reproduced the full state")
	}
	if !strings.Contains(partial.SourceXML(), "albert") {
		t.Error("torn-tail recovery lost the intact prefix")
	}
}

// hospitalWithOptions is hospital(t) with extra database options.
func hospitalWithOptions(t *testing.T, opts ...Option) *Database {
	t.Helper()
	db := New(opts...)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.LoadXMLString(medXML))
	must(db.AddRole("staff"))
	must(db.AddRole("secretary", "staff"))
	must(db.AddRole("doctor", "staff"))
	must(db.AddRole("epidemiologist", "staff"))
	must(db.AddRole("patient"))
	must(db.AddUser("beaufort", "secretary"))
	must(db.AddUser("laporte", "doctor"))
	must(db.AddUser("richard", "epidemiologist"))
	must(db.AddUser("robert", "patient"))
	must(db.AddUser("franck", "patient"))
	must(db.Grant(policy.Read, "/descendant-or-self::node()", "staff"))
	must(db.Revoke(policy.Read, "//diagnosis/node()", "secretary"))
	must(db.Grant(policy.Position, "//diagnosis/node()", "secretary"))
	must(db.Grant(policy.Read, "/patients", "patient"))
	must(db.Grant(policy.Read, "/patients/*[name() = $USER]/descendant-or-self::node()", "patient"))
	must(db.Revoke(policy.Read, "/patients/*", "epidemiologist"))
	must(db.Grant(policy.Position, "/patients/*", "epidemiologist"))
	must(db.Grant(policy.Insert, "/patients", "secretary"))
	must(db.Grant(policy.Update, "/patients/*", "secretary"))
	must(db.Grant(policy.Insert, "//diagnosis", "doctor"))
	must(db.Grant(policy.Update, "//diagnosis/node()", "doctor"))
	must(db.Grant(policy.Delete, "//diagnosis/node()", "doctor"))
	return db
}

func TestRecoverErrors(t *testing.T) {
	if _, _, err := Recover(strings.NewReader("junk"), strings.NewReader("")); err == nil {
		t.Error("bad snapshot accepted")
	}
	// Journal entry by an unknown user fails replay.
	var snap strings.Builder
	db := hospital(t)
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	badLog := "entry 1 mallory 24\n<xupdate:modifications/>\n"
	if _, _, err := Recover(strings.NewReader(snap.String()), strings.NewReader(badLog)); err == nil {
		t.Error("journal from unknown user replayed")
	}
}

func TestSessionTransform(t *testing.T) {
	db := hospital(t)
	sheet := `
		<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		  <xsl:template match="/">
		    <r><xsl:for-each select="/patients/*"><p n="{name()}" d="{diagnosis}"/></xsl:for-each></r>
		  </xsl:template>
		</xsl:stylesheet>`
	doc := session(t, db, "laporte")
	out, err := doc.Transform(sheet)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `d="tonsillitis"`) {
		t.Errorf("doctor transform:\n%s", out)
	}
	sec := session(t, db, "beaufort")
	out, err = sec.Transform(sheet)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "tonsillitis") || !strings.Contains(out, `d="RESTRICTED"`) {
		t.Errorf("secretary transform leaks:\n%s", out)
	}
	if _, err := sec.Transform("<bad"); err == nil {
		t.Error("bad stylesheet accepted")
	}
	// Audit records the transform.
	found := false
	for _, e := range db.Audit() {
		if e.Action == "transform" && e.User == "beaufort" {
			found = true
		}
	}
	if !found {
		t.Error("transform not audited")
	}
}

func TestAnalyzePolicy(t *testing.T) {
	db := hospital(t)
	rep := db.AnalyzePolicy()
	if rep.Rules != 12 || len(rep.Findings) != 0 {
		t.Fatalf("paper database must analyze clean, got rules=%d:\n%s", rep.Rules, rep.Text())
	}
	// Granting secretary update where it holds position without read is the
	// §2.2 covert-channel interplay; the analyzer must surface it.
	if err := db.Grant(policy.Update, "//diagnosis/node()", "secretary"); err != nil {
		t.Fatal(err)
	}
	rep = db.AnalyzePolicy()
	found := false
	for _, f := range rep.Findings {
		if f.Code == policyanalysis.CodeCovertChannel {
			found = true
		}
	}
	if !found {
		t.Errorf("covert-channel hazard not reported:\n%s", rep.Text())
	}
}
