// Session.Explain: the user-facing decision-provenance endpoint. It
// combines the policy layer's axiom-14 story (internal/policy/explain.go)
// with what the production path actually served — the cached Perms cell
// and the materialized view — and cross-checks the two: the re-derived
// winner must equal the production cell for every privilege, and the
// axiom 15–17 verdict derived from the cells alone must match the view
// node-for-node. A mismatch means the provenance explanation and the
// enforcement disagree, which the differential tests treat as a bug.
package core

import (
	"context"
	"fmt"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

var explainStage = obs.Stage("session_explain")

// Visibility verdicts of the explain layer (axioms 15–17).
const (
	// VerdictVisible: the node appears in the view with its real label
	// (read privilege, axiom 16).
	VerdictVisible = "visible"
	// VerdictRestricted: the node appears with the RESTRICTED label
	// (position without read, axiom 17).
	VerdictRestricted = "restricted"
	// VerdictHiddenByParent: the node holds read or position itself, but
	// an ancestor is not selected, so the whole subtree is pruned (the
	// "parent must be selected" condition of axiom 16/17).
	VerdictHiddenByParent = "hidden-by-parent"
	// VerdictNoRead: the node holds neither read nor position and is
	// hidden by its own cells (closed world).
	VerdictNoRead = "no-read"
)

// NodeExplanation is one node's full explain record: the axiom-14 rule
// story, where the production cell came from, and the axiom 15–17
// visibility verdict, with the differential check result.
type NodeExplanation struct {
	policy.NodeStory
	// Origin is the production cell's location: "overlay",
	// "shared-profile" or "private" (see Perms.CellOrigin).
	Origin string `json:"origin"`
	// Visibility is the axiom 15–17 verdict derived from the cells.
	Visibility string `json:"visibility"`
	// Consistent is false when the re-derived story disagrees with the
	// production Perms cell or the materialized view.
	Consistent bool     `json:"consistent"`
	Mismatches []string `json:"mismatches,omitempty"`
}

// Explanation is the result of Session.Explain.
type Explanation struct {
	User            string            `json:"user"`
	XPath           string            `json:"xpath"`
	DocVersion      uint64            `json:"doc_version"`
	PolicyEpoch     uint64            `json:"policy_epoch"`
	RulesApplicable int               `json:"rules_applicable"`
	Nodes           []NodeExplanation `json:"nodes"`
	// Consistent is the conjunction of the per-node checks.
	Consistent bool `json:"consistent"`
}

// Explain re-derives the access-control story for every node the XPath
// expression matches on the *source* document (hidden nodes are exactly
// the ones worth explaining, so selection must not run on the view).
// It is a diagnostic operation — each call costs a cold policy
// evaluation — and is never on the hot path.
func (s *Session) Explain(path string) (*Explanation, error) {
	return s.ExplainCtx(context.Background(), path)
}

// ExplainCtx is Explain with a request context.
func (s *Session) ExplainCtx(ctx context.Context, path string) (*Explanation, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_explain", explainStage)
	// Pin one generation for the whole explanation: the view, the
	// permission cells and the re-derived story all come from the same
	// snapshot even while commits land concurrently.
	g := s.db.gen()
	v, pm, err := s.currentViewPerms(ctx, g)
	if err != nil {
		sessionOp("explain", "error")
		s.db.recordCtx(ctx, "explain", s.user, path, "error: "+err.Error(), sp.End())
		return nil, err
	}
	ns, err := xpath.Select(g.doc, path, s.vars())
	if err != nil {
		sessionOp("explain", "error")
		s.db.recordCtx(ctx, "explain", s.user, path, "error: "+err.Error(), sp.End())
		return nil, err
	}
	stories, applicable, err := g.policy.Explain(g.doc, g.subjects, s.user, ns)
	if err != nil {
		sessionOp("explain", "error")
		s.db.recordCtx(ctx, "explain", s.user, path, "error: "+err.Error(), sp.End())
		return nil, err
	}
	ex := &Explanation{
		User: s.user, XPath: path,
		DocVersion: g.ver(), PolicyEpoch: g.epoch,
		RulesApplicable: applicable,
		Nodes:           make([]NodeExplanation, 0, len(ns)),
		Consistent:      true,
	}
	for i, n := range ns {
		ne := explainNode(stories[i], n, pm, v)
		if !ne.Consistent {
			ex.Consistent = false
		}
		ex.Nodes = append(ex.Nodes, ne)
	}
	sessionOp("explain", "ok")
	s.db.recordCtx(ctx, "explain", s.user, path,
		fmt.Sprintf("%d nodes, consistent=%t", len(ex.Nodes), ex.Consistent), sp.End())
	return ex, nil
}

// explainNode assembles one node's explanation and runs the differential
// checks against the production permissions and view.
func explainNode(st policy.NodeStory, n *xmltree.Node, pm *policy.Perms, v *view.View) NodeExplanation {
	ne := NodeExplanation{
		NodeStory:  st,
		Origin:     pm.CellOrigin(st.NodeID),
		Consistent: true,
	}
	// Differential check 1 (axiom 14): the re-derived winner must equal
	// the production cell, privilege by privilege.
	for j, priv := range policy.Privileges {
		story := st.Privileges[j]
		actual := pm.PeekID(st.NodeID, priv)
		if story.Granted != actual {
			ne.Consistent = false
			ne.Mismatches = append(ne.Mismatches, fmt.Sprintf(
				"axiom-14: provenance says %s=%t, production cell says %t",
				priv, story.Granted, actual))
		}
	}
	// Axiom 15–17 verdict, derived from the cells alone.
	ne.Visibility = deriveVisibility(n, pm)
	// Differential check 2: the derived verdict must match the
	// materialized view node-for-node.
	visible := ne.Visibility == VerdictVisible || ne.Visibility == VerdictRestricted
	if v.Visible(st.NodeID) != visible {
		ne.Consistent = false
		ne.Mismatches = append(ne.Mismatches, fmt.Sprintf(
			"axiom-15-17: verdict %q but view visibility is %t",
			ne.Visibility, v.Visible(st.NodeID)))
	} else if visible && v.IsRestricted(st.NodeID) != (ne.Visibility == VerdictRestricted) &&
		n.Label() != xmltree.Restricted {
		// A source node legitimately labeled RESTRICTED is
		// indistinguishable by design (the cover-story semantics), so the
		// restricted cross-check skips it.
		ne.Consistent = false
		ne.Mismatches = append(ne.Mismatches, fmt.Sprintf(
			"axiom-17: verdict %q but view restricted=%t",
			ne.Visibility, v.IsRestricted(st.NodeID)))
	}
	return ne
}

// deriveVisibility computes the axiom 15–17 verdict for n from the
// permission cells alone (no view): the document node is always in the
// view (axiom 15); otherwise the node needs read or position itself —
// read keeps the label (axiom 16), position alone shows RESTRICTED
// (axiom 17) — and every ancestor up to the document node must be
// selected too, or the node vanishes with its subtree.
func deriveVisibility(n *xmltree.Node, pm *policy.Perms) string {
	if n.Kind() == xmltree.KindDocument {
		return VerdictVisible
	}
	id := n.ID().String()
	if !selectedLocally(pm, id) {
		return VerdictNoRead
	}
	for a := n.Parent(); a != nil && a.Kind() != xmltree.KindDocument; a = a.Parent() {
		if !selectedLocally(pm, a.ID().String()) {
			return VerdictHiddenByParent
		}
	}
	if pm.PeekID(id, policy.Read) {
		return VerdictVisible
	}
	return VerdictRestricted
}

// selectedLocally reports whether the node's own cells admit it into the
// view (read or position), ignoring ancestors.
func selectedLocally(pm *policy.Perms, id string) bool {
	return pm.PeekID(id, policy.Read) || pm.PeekID(id, policy.Position)
}
