package core

import (
	"context"
	"testing"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/xupdate"
)

// cacheCounts snapshots the view-cache counters so tests can assert on
// deltas: the registry is process-global and other tests contribute too.
func cacheCounts() (hits, cold, doc, epoch uint64) {
	return cacheHits.Value(), cacheMissCold.Value(), cacheMissDoc.Value(), cacheMissEpoch.Value()
}

// TestViewCacheCounters walks the session cache through its four outcomes —
// cold miss, hit, doc-version miss after a write, policy-epoch miss after a
// grant — and asserts exactly one counter moves each time. Views are pulled
// explicitly: since the read ladder (QueryTieredCtx), queries for chain-only
// profiles are served by the rewrite tier and never touch the view cache —
// View/ViewXML and the write path remain the cache's clients.
func TestViewCacheCounters(t *testing.T) {
	db := hospital(t)
	s := session(t, db, "laporte")

	h0, c0, d0, e0 := cacheCounts()
	if _, err := s.View(); err != nil {
		t.Fatal(err)
	}
	h1, c1, d1, e1 := cacheCounts()
	if c1 != c0+1 || h1 != h0 || d1 != d0 || e1 != e0 {
		t.Errorf("first view: want one cold miss, got hits+%d cold+%d doc+%d epoch+%d",
			h1-h0, c1-c0, d1-d0, e1-e0)
	}

	// Same session, nothing changed: pure hit.
	if _, err := s.View(); err != nil {
		t.Fatal(err)
	}
	h2, c2, d2, e2 := cacheCounts()
	if h2 != h1+1 || c2 != c1 || d2 != d1 || e2 != e1 {
		t.Errorf("repeat view: want one hit, got hits+%d cold+%d doc+%d epoch+%d",
			h2-h1, c2-c1, d2-d1, e2-e1)
	}

	// An applied update bumps the document version. The paper policy is
	// chain-only for laporte, so the *next read* patches the cached view
	// incrementally: the applied counter moves, no hit or miss does.
	incApplied := obs.Default().Counter("xmlsec_view_incremental_applied_total")
	if _, err := s.Update(&xupdate.Op{
		Kind:     xupdate.Update,
		Select:   "/patients/franck/diagnosis",
		NewValue: "pharyngitis",
	}); err != nil {
		t.Fatal(err)
	}
	h3, _, d3, e3 := cacheCounts()
	i3 := incApplied.Value()
	if _, err := s.View(); err != nil {
		t.Fatal(err)
	}
	h4, _, d4, e4 := cacheCounts()
	i4 := incApplied.Value()
	if i4 != i3+1 || d4 != d3 || h4 != h3 || e4 != e3 {
		t.Errorf("view after write: want one incremental apply, got applied+%d hits+%d doc+%d epoch+%d",
			i4-i3, h4-h3, d4-d3, e4-e3)
	}

	// A grant bumps the policy epoch without touching the document.
	if err := db.Grant(policy.Read, "//service", "patient"); err != nil {
		t.Fatal(err)
	}
	h5, _, d5, e5 := cacheCounts()
	if _, err := s.View(); err != nil {
		t.Fatal(err)
	}
	h6, _, d6, e6 := cacheCounts()
	if e6 != e5+1 || h6 != h5 || d6 != d5 {
		t.Errorf("view after grant: want one policy_epoch miss, got hits+%d doc+%d epoch+%d",
			h6-h5, d6-d5, e6-e5)
	}
}

// TestAuditCarriesRequestID asserts the observability contract on the audit
// stream: entries record the request id from the context and a measured
// duration.
func TestAuditCarriesRequestID(t *testing.T) {
	db := hospital(t)
	s := session(t, db, "laporte")
	ctx := obs.WithRequestID(context.Background(), "req-telemetry-1")
	if _, err := s.QueryCtx(ctx, "//diagnosis"); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range db.Audit() {
		if e.ReqID == "req-telemetry-1" {
			found = true
			if e.Action != "query" {
				t.Errorf("Action = %q, want query", e.Action)
			}
			if e.Duration <= 0 {
				t.Errorf("Duration = %v, want > 0", e.Duration)
			}
		}
	}
	if !found {
		t.Fatal("no audit entry carries the request id")
	}
	// Context-free calls still audit, with an empty ReqID.
	if _, err := s.Query("//service"); err != nil {
		t.Fatal(err)
	}
	last := db.Audit()[len(db.Audit())-1]
	if last.ReqID != "" {
		t.Errorf("context-free query ReqID = %q, want empty", last.ReqID)
	}
	if last.Duration <= 0 {
		t.Errorf("context-free query Duration = %v, want > 0", last.Duration)
	}
}
