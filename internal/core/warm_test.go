package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/workload"
	"securexml/internal/xupdate"
)

func TestSharedSessionSingleton(t *testing.T) {
	db := hospital(t)
	a, err := db.SharedSession("laporte")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.SharedSession("laporte")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("SharedSession returned distinct sessions for one user")
	}
	if _, err := db.SharedSession("staff"); !errors.Is(err, ErrNotUser) {
		t.Fatalf("role login: got %v, want ErrNotUser", err)
	}
	if _, err := db.SharedSession("nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user: got %v, want ErrUnknownUser", err)
	}
}

func TestWarmSessionsAllUsers(t *testing.T) {
	db := hospital(t)
	n, err := db.WarmSessions(context.Background(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(db.Users()); n != want {
		t.Fatalf("warmed %d users, want %d", n, want)
	}
	// A warmed shared session serves its first View from the cache.
	before := obs.Default().Counter("xmlsec_view_cache_hits_total").Value()
	s, err := db.SharedSession("laporte")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(); err != nil {
		t.Fatal(err)
	}
	if after := obs.Default().Counter("xmlsec_view_cache_hits_total").Value(); after != before+1 {
		t.Fatalf("view after warm-up: cache hits %d -> %d, want a hit", before, after)
	}
	if g := obs.Default().Gauge("xmlsec_warm_pool_active").Value(); g != 0 {
		t.Fatalf("warm pool gauge %d after completion, want 0", g)
	}
}

func TestWarmSessionsBadUser(t *testing.T) {
	db := hospital(t)
	n, err := db.WarmSessions(context.Background(), []string{"laporte", "ghost", "beaufort"}, 2)
	if err == nil {
		t.Fatal("want error for unknown user")
	}
	if n != 2 {
		t.Fatalf("warmed %d, want 2 (bad user must not shadow the rest)", n)
	}
}

func TestWarmSessionsCanceled(t *testing.T) {
	db := hospital(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.WarmSessions(ctx, nil, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSharedScanChurnRace replays a workload.ChurnPlan — many distinct
// users, few ops each — against one database while a writer mutates the
// document and the policy and WarmSessions repeatedly re-warms the fleet.
// This is the shared rule cache's contention path: concurrent cold
// evaluations racing cache fills, invalidation by doc version and policy
// epoch. Run under -race; the assertion is that nothing errors.
func TestSharedScanChurnRace(t *testing.T) {
	db := hospital(t)
	users := []string{"beaufort", "laporte", "richard", "robert", "franck"}
	plan := workload.ChurnPlan(users, 40, 3, 7)
	errs := make(chan error, 256)
	fail := func(err error) {
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}
	var wg sync.WaitGroup

	// Churn sessions: each plan entry opens the user's shared session cold
	// (or invalidated) and reads a few times.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := g; i < len(plan); i += 4 {
				s, err := db.SharedSession(plan[i].User)
				if err != nil {
					fail(err)
					return
				}
				for k := 0; k < plan[i].Ops; k++ {
					if _, err := s.Query("//service"); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}

	// Writer: document updates (version moves) and policy changes (epoch
	// moves), both of which must invalidate the shared rule cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := db.SharedSession("laporte")
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < 10; i++ {
			op := &xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: fmt.Sprintf("v%d", i)}
			if _, err := w.Update(op); err != nil {
				fail(err)
				return
			}
			if err := db.Grant(policy.Read, "//service", "doctor"); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Concurrent warm-ups racing the writer's invalidations.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := db.WarmSessions(context.Background(), users, 3); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
