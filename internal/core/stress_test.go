package core

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// TestConcurrentSessionStress exercises the full concurrency claim of the
// package doc under -race: parallel readers (shared sessions), writers,
// and a policy administrator mutating subjects and rules — plus the
// analyzer and snapshot writer, which read everything — all on one
// Database. The assertions are weak on purpose (no operation may error);
// the value of the test is the interleaving itself.
func TestConcurrentSessionStress(t *testing.T) {
	db := hospital(t)
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	fail := func(err error) {
		if err != nil {
			errs <- err
		}
	}

	// Readers: two goroutines share one session to stress the view cache.
	shared := session(t, db, "laporte")
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := shared.Query("//diagnosis"); err != nil {
					fail(err)
					return
				}
				if _, err := shared.ViewXML(); err != nil {
					fail(err)
					return
				}
				if _, err := shared.QueryValue("count(//service)"); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	for _, user := range []string{"beaufort", "richard", "robert"} {
		user := user
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := db.Session(user)
			if err != nil {
				fail(err)
				return
			}
			for i := 0; i < iters; i++ {
				if _, err := s.Query("/patients/*"); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	// Writers: a doctor rewriting diagnoses, a secretary appending patients.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := db.Session("laporte")
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: fmt.Sprintf("v%d", i)}); err != nil {
				fail(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := db.Session("beaufort")
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < iters; i++ {
			frag, err := xmltree.ParseString(fmt.Sprintf("<p%d/>", i), xmltree.ParseOptions{Fragment: true})
			if err != nil {
				fail(err)
				return
			}
			if _, err := s.Update(&xupdate.Op{Kind: xupdate.Append, Select: "/patients", Content: frag}); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Administrator: rules, subjects, analysis, stats, audit, snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := db.Grant(policy.Read, "//service", "staff"); err != nil {
				fail(err)
				return
			}
			if err := db.Revoke(policy.Read, "//note", "secretary"); err != nil {
				fail(err)
				return
			}
			if err := db.AddUser(fmt.Sprintf("stress%d", i), "doctor"); err != nil {
				fail(err)
				return
			}
			if rep := db.AnalyzePolicy(); rep.Rules == 0 {
				fail(fmt.Errorf("analyzer saw an empty policy"))
				return
			}
			db.Stats()
			db.Audit()
			if err := db.Save(io.Discard); err != nil {
				fail(err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
