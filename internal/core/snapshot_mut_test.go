// Dynamic twin of the snapshotimmut vet pass: the static pass proves no
// code outside the view layer writes to a Session.View snapshot; this
// test proves the snapshot really is an independent copy at runtime.
// One session mutates its View() snapshot as hostilely as the xmltree
// API allows while every other user's session keeps querying, and
// afterwards each session's view must be cell-for-cell identical to a
// freshly built reference database — no session's permissions may move.
// Run under -race (make race) this also proves snapshot hand-out does
// not race with the shared view cache.
package core

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotMutationIsolated(t *testing.T) {
	db := hospital(t)
	users := db.Users()

	// Go through SharedSession so every user shares the singleton session
	// and the cross-user rule cache — the tier the vet passes guard.
	shared := func(u string) *Session {
		t.Helper()
		s, err := db.SharedSession(u)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	attacker := shared("laporte")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			v, err := attacker.View()
			if err != nil {
				t.Errorf("attacker view: %v", err)
				return
			}
			// Vandalize the snapshot: strip the root's children, rename and
			// relabel what remains, and zero the accounting fields.
			for _, c := range v.Doc.Root().Children() {
				_ = v.Doc.Remove(c)
			}
			v.Restricted, v.Hidden = 0, 0
		}
	}()
	for _, u := range users {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			s := shared(u)
			for i := 0; i < 5; i++ {
				if _, err := s.Query("/descendant-or-self::node()"); err != nil {
					t.Errorf("query as %s: %v", u, err)
					return
				}
				if _, err := s.ViewXML(); err != nil {
					t.Errorf("view xml as %s: %v", u, err)
					return
				}
			}
		}(u)
	}
	wg.Wait()

	// Differential oracle: every session's view — including the attacker's
	// own — must match a untouched reference database user-for-user.
	ref := hospital(t)
	for _, u := range users {
		want, err := session(t, ref, u).ViewXML()
		if err != nil {
			t.Fatalf("reference view for %s: %v", u, err)
		}
		got, err := shared(u).ViewXML()
		if err != nil {
			t.Fatalf("view for %s: %v", u, err)
		}
		if got != want {
			t.Errorf("user %s: view changed after snapshot mutation\n got: %s\nwant: %s", u, got, want)
		}
	}
	// The attacker's snapshot damage stayed in the snapshot: a fresh one
	// still shows the patients.
	v, err := attacker.View()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Doc.XML(), "<service>") {
		t.Errorf("fresh snapshot lost content: %s", v.Doc.XML())
	}
}
