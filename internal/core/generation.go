package core

import (
	"sync"
	"time"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// generation is one immutable snapshot of the database: the document, the
// subject hierarchy and the policy, published together by a single atomic
// store (Database.current). Readers load the pointer once, pin the
// generation for the whole request, and never take a lock — every field is
// frozen before publication (the document literally so, via Freeze; the
// hierarchy and policy by the copy-on-write discipline of the commit loop,
// which mutates clones and never a published component).
//
// Generations do not link to their predecessors: a prev chain would retain
// up to deltaLogCap full document snapshots. The incremental-view history
// lives in log instead — an append-only slice whose backing array is
// shared between consecutive generations. That sharing is race-free
// because only the commit leader appends, always to the latest
// generation's log, each backing slot is written exactly once, and the
// write happens-before the atomic Store that publishes the slot; readers
// only index below their own slice length.
type generation struct {
	seq uint64
	doc *xmltree.Document // frozen
	// subjects and policy are read-only once published; admin commits
	// clone-and-swap them (see commitCtx).
	subjects *subject.Hierarchy
	policy   *policy.Policy
	// docGen distinguishes document *replacements* (LoadXML) from
	// mutations: a fresh document restarts its version counter, so the
	// version alone cannot key session caches.
	docGen uint64
	// epoch counts policy/hierarchy changes, keying rewrite programs,
	// rule caches and view caches exactly as before the COW refactor.
	epoch uint64
	born  time.Time
	// log is the bounded ring of recent update batches (oldest first),
	// consumed by session caches to patch views incrementally instead of
	// re-materializing (see internal/view/incremental.go).
	log []deltaBatch

	// rules is the cross-user RuleCache for this generation, built
	// lazily by the first cold evaluation; RuleCache is internally
	// synchronized, and tying it to the generation makes invalidation
	// structural (a new generation starts a new cache) instead of a
	// compare-and-swap on (gen, version, epoch).
	rulesOnce sync.Once
	rules     *policy.RuleCache
}

// ver returns the document version of the snapshot.
func (g *generation) ver() uint64 { return g.doc.Version() }

// ruleCache returns the generation's shared rule cache, creating it on
// first use.
func (g *generation) ruleCache() *policy.RuleCache {
	g.rulesOnce.Do(func() { g.rules = policy.NewRuleCache() })
	return g.rules
}

// deltaBatch records the coalesced structural changes of one group-commit
// round (or one replayed operation), spanning document versions
// (fromVer, toVer].
type deltaBatch struct {
	fromVer, toVer uint64
	deltas         []xupdate.Delta
}

// deltaLogCap bounds the delta log; sessions further behind than the
// oldest retained batch rebuild from scratch.
const deltaLogCap = 256

// deltaChain collects the contiguous delta batches leading from document
// version from up to this generation's version. It returns ok=false when
// the log has a gap — the oldest batches were trimmed, or an update
// mutated the document without recording a batch (e.g. an executor error
// after partial application).
func (g *generation) deltaChain(from uint64) ([][]xupdate.Delta, bool) {
	cur := from
	var out [][]xupdate.Delta
	for _, b := range g.log {
		if b.toVer <= cur {
			continue
		}
		if b.fromVer != cur {
			return nil, false
		}
		out = append(out, b.deltas)
		cur = b.toVer
	}
	if cur != g.ver() {
		return nil, false
	}
	return out, true
}

// gen returns the current generation. The single atomic load is the whole
// read-side synchronization protocol: callers pin the result in a local
// and use it for the entire request, giving snapshot-isolated, lock-free
// reads that never block on writers.
func (db *Database) gen() *generation { return db.current.Load() }

// install publishes a wholesale replacement generation from construction
// paths (New, Open) before the database serves concurrent requests. The
// document is frozen here; subjects and policy must not be retained
// mutable by the caller.
func (db *Database) install(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy) {
	next := &generation{
		doc:      doc,
		subjects: h,
		policy:   pol,
		born:     time.Now(),
	}
	if prev := db.current.Load(); prev != nil {
		next.seq = prev.seq + 1
		next.docGen = prev.docGen + 1
		next.epoch = prev.epoch + 1
	}
	doc.Freeze()
	db.current.Store(next)
}
