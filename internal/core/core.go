// Package core assembles the paper's model into a usable secure XML
// database: a Database holds the source document, the subject hierarchy and
// the security policy; Sessions expose per-user queries and updates with the
// paper's access controls enforced throughout.
//
// Reads (§4.4.1): every query is evaluated against the user's materialized
// view (axioms 15–17), cached per (document version, policy epoch).
// Writes (§4.4.2): every XUpdate operation selects its targets on the view
// and checks per-node privileges (axioms 18–25).
//
// Database is safe for concurrent use, with lock-free snapshot reads:
// the document, subject hierarchy and policy live in an immutable
// generation published through an atomic pointer (see generation.go).
// Readers pin one generation per request and never block on writers;
// writers batch into a group-commit queue whose leader applies each round
// against copy-on-write clones and publishes one new generation per round
// (see commit.go).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securexml/internal/access"
	"securexml/internal/journal"
	"securexml/internal/labeling"
	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/qfilter"
	"securexml/internal/rewrite"
	"securexml/internal/storage"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xslt"
	"securexml/internal/xupdate"
)

// Telemetry: session-level stages plus the per-session view cache (the
// registry's hit rate is the leverage of caching materialized views across
// queries within one (document version, policy epoch) window).
var (
	queryStage     = obs.Stage("session_query")
	valueStage     = obs.Stage("session_query_value")
	viewStage      = obs.Stage("session_view")
	updateStage    = obs.Stage("session_update")
	applyStage     = obs.Stage("session_apply")
	transformStage = obs.Stage("session_transform")
	xpathStage     = obs.Stage("xpath_eval")

	cacheHits      = obs.Default().Counter("xmlsec_view_cache_hits_total")
	cacheMissCold  = obs.Default().Counter("xmlsec_view_cache_misses_total", "reason", "cold")
	cacheMissDoc   = obs.Default().Counter("xmlsec_view_cache_misses_total", "reason", "doc_version")
	cacheMissEpoch = obs.Default().Counter("xmlsec_view_cache_misses_total", "reason", "policy_epoch")

	// Incremental maintenance fallbacks, by reason: the policy is not
	// chain-only for the user (ineligible), the delta log no longer covers
	// the cached version (gap), or patching failed mid-batch (error).
	// Successful patches are counted by the view package
	// (xmlsec_view_incremental_applied_total).
	incFallbackIneligible = obs.Default().Counter("xmlsec_view_incremental_fallback_total", "reason", "ineligible")
	incFallbackGap        = obs.Default().Counter("xmlsec_view_incremental_fallback_total", "reason", "gap")
	incFallbackError      = obs.Default().Counter("xmlsec_view_incremental_fallback_total", "reason", "error")

	// auditDepth tracks the audit ring's current occupancy, so operators
	// can see eviction pressure (the ring drops oldest entries at the
	// configured limit) before entries are silently lost.
	auditDepth = obs.Default().Gauge("xmlsec_audit_ring_depth")
)

// Tier identifies which rung of the read ladder served a query (§4.4.1
// enforcement strategies): the static rewrite over the source document,
// the qfilter per-node security filter, or the materialized view.
type Tier int

// The ladder tiers, cheapest first.
const (
	TierRewrite Tier = iota
	TierQfilter
	TierView
	numTiers
)

// TierAuto is the sentinel for the normal ladder descent (no pinning).
// The forced-tier entry points take it to mean "pick the cheapest tier
// that can serve the query", i.e. the default behavior.
const TierAuto Tier = -1

// ParseTier parses a tier name as accepted by the server's -tier flag and
// the shell's tier command: rewrite, qfilter, view, or auto.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "rewrite":
		return TierRewrite, nil
	case "qfilter":
		return TierQfilter, nil
	case "view":
		return TierView, nil
	case "auto", "":
		return TierAuto, nil
	default:
		return TierAuto, fmt.Errorf("core: unknown tier %q (want rewrite, qfilter, view or auto)", s)
	}
}

// String names the tier.
func (t Tier) String() string { return t.MetricLabel() }

// MetricLabel returns the tier's telemetry label; every branch is a
// literal so labels stay compile-time bounded (xmlsec-vet obslabel).
func (t Tier) MetricLabel() string {
	switch t {
	case TierRewrite:
		return "rewrite"
	case TierQfilter:
		return "qfilter"
	case TierView:
		return "view"
	default:
		return "unknown"
	}
}

// Telemetry: queries served per ladder tier, resolved once.
var queryTierCounters = func() (c [numTiers]*obs.Counter) {
	for t := Tier(0); t < numTiers; t++ {
		c[t] = obs.Default().Counter("xmlsec_query_tier_total", "tier", t.MetricLabel())
	}
	return
}()

// countTier records one query served by tier.
func countTier(t Tier) {
	if t >= 0 && t < numTiers {
		queryTierCounters[t].Inc()
	}
}

// sessionOp counts one session operation by name and outcome (ok | error).
func sessionOp(op, outcome string) {
	obs.Default().Counter("xmlsec_session_ops_total", "op", op, "outcome", outcome).Inc()
}

// Errors returned by core operations.
var (
	ErrUnknownUser = errors.New("core: unknown user")
	ErrNotUser     = errors.New("core: sessions are for users, not roles")
	// ErrTierUnavailable: a query was pinned to one ladder tier (A/B
	// debugging via the server -tier flag or the shell tier command) and
	// that tier cannot serve it — the rewrite fragment does not cover the
	// user's rules, or a pinned qfilter value query produced a node-set
	// (which only the view tier may hand out without leaking).
	ErrTierUnavailable = errors.New("core: forced tier cannot serve this query")
)

// Option configures a Database.
type Option func(*Database)

// WithScheme selects the labeling scheme (default fracpath).
func WithScheme(s labeling.Scheme) Option {
	return func(db *Database) { db.scheme = s }
}

// WithAuditLimit bounds the in-memory audit log (default 4096 entries; the
// oldest entries are dropped first). A limit of 0 disables auditing.
func WithAuditLimit(n int) Option {
	return func(db *Database) { db.auditLimit = n }
}

// WithJournal attaches an operation log: every successfully executed
// modification is appended as an <xupdate:modifications> document framed
// with its user. seqStart continues an existing journal (0 starts fresh);
// after Recover, pass the returned last sequence number.
func WithJournal(w io.Writer, seqStart uint64) Option {
	return func(db *Database) { db.journal = journal.NewWriter(w, seqStart) }
}

// Database is a secure XML database.
type Database struct {
	// Configuration, set by Options (and AttachJournal) before the
	// database is shared; immutable while requests are in flight, so it
	// needs no lock.
	scheme     labeling.Scheme
	auditLimit int
	journal    *journal.Writer

	// current is the published generation (see generation.go). One
	// atomic load pins a consistent (document, subjects, policy)
	// snapshot for a whole request; the commit leader is the only
	// storer.
	current atomic.Pointer[generation]

	// Group-commit state: writers enqueue under commitMu; the first
	// arriver becomes the leader and drains the queue in rounds with the
	// lock dropped while applying (see commit.go).
	commitMu sync.Mutex
	queue    []*commitReq
	leader   bool

	// The audit ring has its own lock so lock-free read paths can still
	// append entries.
	auditMu  sync.Mutex
	audit    []AuditEntry
	auditSeq uint64

	// sessions holds the per-user shared sessions handed out by
	// SharedSession, so server requests and warm-up hit one view cache per
	// user instead of re-materializing per connection.
	sessMu   sync.Mutex
	sessions map[string]*Session

	// rewriteEng is the static query-rewriting engine for policy epoch
	// rewriteEpoch (see internal/rewrite). It is keyed by the epoch alone —
	// rewritten plans depend only on the policy and hierarchy, so they
	// survive arbitrary document mutations. Own lock because the query
	// path holds no database-wide lock at all.
	rewriteMu    sync.Mutex
	rewriteEng   *rewrite.Engine
	rewriteEpoch uint64
}

// rewriteEngineFor returns the rewrite engine for the generation's policy
// epoch, replacing the cached one when the policy or the subject
// hierarchy moved (both bump the epoch). The engine reads only the
// generation's immutable policy and hierarchy, so no further
// synchronization is needed once built. Readers pinned to an older
// generation than the cached epoch rebuild transiently; epoch moves are
// rare admin events, so the thrash window is negligible.
func (db *Database) rewriteEngineFor(g *generation) *rewrite.Engine {
	db.rewriteMu.Lock()
	defer db.rewriteMu.Unlock()
	if db.rewriteEng == nil || db.rewriteEpoch != g.epoch {
		db.rewriteEng = rewrite.NewEngine(g.policy, g.subjects)
		db.rewriteEpoch = g.epoch
	}
	return db.rewriteEng
}

// New creates an empty database: no document, no subjects, no rules.
func New(opts ...Option) *Database {
	db := &Database{
		scheme:     labeling.NewFracPath(),
		auditLimit: 4096,
	}
	for _, o := range opts {
		o(db)
	}
	db.install(xmltree.New(db.scheme), subject.NewHierarchy(), policy.New())
	return db
}

// LoadXML replaces the database content with the document read from r.
func (db *Database) LoadXML(r io.Reader) error {
	doc, err := xmltree.Parse(r, xmltree.ParseOptions{Scheme: db.scheme})
	if err != nil {
		return err
	}
	db.submit(func(c *commitCtx) {
		c.doc = doc
		c.docGen++
		c.docReset = true
		c.batches = nil
		db.record("system", "load", fmt.Sprintf("%d nodes", doc.Len()), "ok")
	})
	return nil
}

// LoadXMLString is LoadXML over a string.
func (db *Database) LoadXMLString(s string) error { return db.LoadXML(strings.NewReader(s)) }

// Save writes a durable snapshot of the database — the document with its
// persistent identifiers, the subject hierarchy and the policy — to w.
// The audit log is not part of the snapshot (export it via Audit). The
// snapshot is one pinned generation: a commit racing with Save lands in
// the next generation and is simply not part of this snapshot.
func (db *Database) Save(w io.Writer) error {
	g := db.gen()
	rules := make([]policy.Rule, 0, g.policy.Len())
	for _, r := range g.policy.Rules() {
		rules = append(rules, *r)
	}
	return storage.Write(w, &storage.Snapshot{
		SchemeName: db.scheme.Name(),
		Doc:        g.doc,
		Subjects:   g.subjects,
		Rules:      rules,
	})
}

// Open restores a database from a snapshot written by Save. Node
// identifiers, subjects and rule priorities are restored exactly; rule
// paths are recompiled (a snapshot from a newer, incompatible grammar
// fails here rather than at query time).
func Open(r io.Reader, opts ...Option) (*Database, error) {
	snap, err := storage.Read(r)
	if err != nil {
		return nil, err
	}
	scheme, err := labeling.ByName(snap.SchemeName)
	if err != nil {
		return nil, err
	}
	db := New(append([]Option{WithScheme(scheme)}, opts...)...)
	// Assemble the restored components privately, then publish them as one
	// generation — the database has not escaped yet, so nothing observes
	// the intermediate state.
	pol := policy.New()
	for _, rule := range snap.Rules {
		if err := pol.Add(snap.Subjects, rule); err != nil {
			return nil, fmt.Errorf("core: restoring rule %s: %w", rule.String(), err)
		}
	}
	db.install(snap.Doc, snap.Subjects, pol)
	db.record("system", "open", fmt.Sprintf("%d nodes, %d rules", snap.Doc.Len(), pol.Len()), "ok")
	return db, nil
}

// --- administration -----------------------------------------------------------

// AddRole declares a role under optional parent roles. Like every admin
// operation it rides the group-commit queue: a successful change clones
// the hierarchy, bumps the policy epoch and publishes a new generation
// (sharing the document pointer — admin-only rounds copy no tree).
func (db *Database) AddRole(name string, parents ...string) error {
	var err error
	db.submit(func(c *commitCtx) {
		if err = c.mutableSubjects().AddRole(name, parents...); err != nil {
			return
		}
		c.adminChanged = true
		c.epoch++
		db.record("system", "add-role", name, "ok")
	})
	return err
}

// AddUser declares a user belonging to the given roles.
func (db *Database) AddUser(name string, roles ...string) error {
	var err error
	db.submit(func(c *commitCtx) {
		if err = c.mutableSubjects().AddUser(name, roles...); err != nil {
			return
		}
		c.adminChanged = true
		c.epoch++
		db.record("system", "add-user", name, "ok")
	})
	return err
}

// Grant appends an accept rule (latest priority, §4.3 discipline).
func (db *Database) Grant(priv policy.Privilege, path, subj string) error {
	var err error
	db.submit(func(c *commitCtx) {
		if err = c.mutablePolicy().Grant(c.curSubjects(), priv, path, subj); err != nil {
			return
		}
		c.adminChanged = true
		c.epoch++
		db.record("system", "grant", fmt.Sprintf("%s on %s to %s", priv, path, subj), "ok")
	})
	return err
}

// Revoke appends a deny rule (latest priority).
func (db *Database) Revoke(priv policy.Privilege, path, subj string) error {
	var err error
	db.submit(func(c *commitCtx) {
		if err = c.mutablePolicy().Revoke(c.curSubjects(), priv, path, subj); err != nil {
			return
		}
		c.adminChanged = true
		c.epoch++
		db.record("system", "revoke", fmt.Sprintf("%s on %s from %s", priv, path, subj), "ok")
	})
	return err
}

// AddRule inserts a rule with an explicit priority.
func (db *Database) AddRule(r policy.Rule) error {
	var err error
	db.submit(func(c *commitCtx) {
		if err = c.mutablePolicy().Add(c.curSubjects(), r); err != nil {
			return
		}
		c.adminChanged = true
		c.epoch++
		db.record("system", "add-rule", r.String(), "ok")
	})
	return err
}

// Rules returns a snapshot of the policy rules.
func (db *Database) Rules() []policy.Rule {
	g := db.gen()
	out := make([]policy.Rule, 0, g.policy.Len())
	for _, r := range g.policy.Rules() {
		out = append(out, *r)
	}
	return out
}

// Users returns all user names.
func (db *Database) Users() []string {
	return db.gen().subjects.Users()
}

// Roles returns all role names.
func (db *Database) Roles() []string {
	return db.gen().subjects.Roles()
}

// Hierarchy returns an independent copy of the subject hierarchy.
func (db *Database) Hierarchy() *subject.Hierarchy {
	return db.gen().subjects.Clone()
}

// AnalyzePolicy runs the static policy analyzer (internal/policyanalysis)
// over the current policy and subject hierarchy. The analysis needs no
// document, so it is safe at any point of the administration workflow.
func (db *Database) AnalyzePolicy() *policyanalysis.Report {
	g := db.gen()
	return policyanalysis.Analyze(g.subjects, g.policy)
}

// PlanRepairs runs the analyzer with repair synthesis over the current
// policy. The live document drives the repair engine's differential
// oracle, so candidate repairs come back classified semantics-preserving
// or semantics-changing against the current permission matrix.
func (db *Database) PlanRepairs() *policyanalysis.RepairReport {
	return db.PlanRepairsCtx(context.Background())
}

// PlanRepairsCtx is PlanRepairs with request-scoped tracing.
func (db *Database) PlanRepairsCtx(ctx context.Context) *policyanalysis.RepairReport {
	g := db.gen()
	rules := make([]policy.Rule, 0, g.policy.Len())
	for _, r := range g.policy.Rules() {
		rules = append(rules, *r)
	}
	return policyanalysis.PlanRepairsCtx(ctx, g.doc, g.subjects, rules)
}

// SourceXML serializes the raw source document — administrator use only;
// regular access goes through Session views.
func (db *Database) SourceXML() string {
	return db.gen().doc.XML()
}

// SourceSketch renders the raw source document's structure sketch (node
// identifiers and labels) — administrator use only, like SourceXML.
func (db *Database) SourceSketch() string {
	return db.gen().doc.Sketch()
}

// Stats summarizes the database state.
type Stats struct {
	Nodes      int
	Rules      int
	Users      int
	Roles      int
	DocVersion uint64
	// Generation is the sequence number of the published COW generation;
	// it advances once per group-commit round (which may coalesce several
	// writes), while DocVersion advances per node mutation.
	Generation  uint64
	PolicyEpoch uint64
}

// Stats returns current counters.
func (db *Database) Stats() Stats {
	g := db.gen()
	return Stats{
		Nodes:       g.doc.Len(),
		Rules:       g.policy.Len(),
		Users:       len(g.subjects.Users()),
		Roles:       len(g.subjects.Roles()),
		DocVersion:  g.ver(),
		Generation:  g.seq,
		PolicyEpoch: g.epoch,
	}
}

// --- audit --------------------------------------------------------------------

// AuditEntry is one recorded action.
type AuditEntry struct {
	Seq     uint64
	User    string
	Action  string // "query", "update", "grant", ...
	Detail  string
	Outcome string
	// ReqID correlates the entry with an HTTP request (X-Request-Id) and
	// its access-log line; "" outside a request context.
	ReqID string
	// Duration is the wall time of the operation; 0 for administrative
	// actions that are not timed.
	Duration time.Duration
}

// record appends an audit entry without request correlation. It takes the
// audit lock itself, so it is safe from both the lock-free read paths and
// the commit leader. Auditing is disabled with limit 0 — checked before
// the lock, so a bench-configured silent database pays nothing here.
func (db *Database) record(user, action, detail, outcome string) {
	if db.auditLimit == 0 {
		return
	}
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	db.recordFull(user, action, detail, outcome, "", 0)
}

// recordFull appends one fully annotated audit entry. Callers hold
// db.auditMu.
func (db *Database) recordFull(user, action, detail, outcome, reqID string, d time.Duration) {
	if db.auditLimit == 0 {
		return
	}
	db.auditSeq++
	db.audit = append(db.audit, AuditEntry{
		Seq: db.auditSeq, User: user, Action: action, Detail: detail, Outcome: outcome,
		ReqID: reqID, Duration: d,
	})
	if len(db.audit) > db.auditLimit {
		db.audit = db.audit[len(db.audit)-db.auditLimit:]
	}
	auditDepth.Set(int64(len(db.audit)))
}

// Audit returns a snapshot of the audit log, oldest first.
func (db *Database) Audit() []AuditEntry {
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	return append([]AuditEntry(nil), db.audit...)
}

// --- sessions -----------------------------------------------------------------

// viewEntry is one published cell of a session's view cache: the
// materialized (or incrementally patched) view, the axiom-14 permissions
// it was derived from, and the snapshot coordinates they belong to. An
// entry is immutable after publication — v.Doc is frozen and pm is never
// mutated in place — so concurrent requests on one shared session can
// read the same entry while another request swaps in a newer one.
type viewEntry struct {
	v     *view.View
	pm    *policy.Perms
	ver   uint64
	epoch uint64
	gen   uint64 // docGen of the generation the entry was built against
}

// Session is an authenticated connection for one user.
type Session struct {
	db   *Database
	user string

	mu    sync.Mutex
	entry *viewEntry
	// maint is the compiled incremental maintainer for (policy epoch
	// maintEpoch); nil with maintReady=true means the policy is not
	// chain-only for this user and every doc change must re-materialize.
	maint      *view.Maintainer
	maintEpoch uint64
	maintReady bool
}

// Session opens a session for a declared user. Roles cannot log in.
func (db *Database) Session(user string) (*Session, error) {
	kind, ok := db.gen().subjects.KindOf(user)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	if kind != subject.User {
		return nil, fmt.Errorf("%w: %q is a role", ErrNotUser, user)
	}
	return &Session{db: db, user: user}, nil
}

// SharedSession returns the database's singleton session for user,
// creating it on first use. Unlike Session, repeated calls for the same
// user share one view cache, so a warmed view keeps serving every later
// request for that user (the server's request path and WarmSessions both
// go through here). Sessions are already safe for concurrent use.
func (db *Database) SharedSession(user string) (*Session, error) {
	db.sessMu.Lock()
	if s, ok := db.sessions[user]; ok {
		db.sessMu.Unlock()
		return s, nil
	}
	db.sessMu.Unlock()
	// Validate outside sessMu: keeping user validation (a generation
	// read) out of the lock's scope keeps sessMu a pure map guard.
	s, err := db.Session(user)
	if err != nil {
		return nil, err
	}
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	if prior, ok := db.sessions[user]; ok {
		return prior, nil
	}
	if db.sessions == nil {
		db.sessions = make(map[string]*Session)
	}
	db.sessions[user] = s
	return s, nil
}

// User returns the session's login.
func (s *Session) User() string { return s.user }

// vars returns the XPath bindings of the session ($USER, §4.3).
func (s *Session) vars() xpath.Vars {
	return xpath.Vars{"USER": xpath.String(s.user)}
}

// currentView returns the session's view of the pinned generation g,
// rebuilding it only when the document or the policy changed since the
// cached entry. A document change whose deltas are still in the
// generation's log is absorbed by patching a copy of the cached view
// (axioms 15–17 re-run over the touched subtrees only); policy changes
// and document replacements always re-materialize. The returned view is
// immutable (frozen) and remains valid after newer generations are
// published — callers need no lock.
func (s *Session) currentView(ctx context.Context, g *generation) (*view.View, error) {
	v, _, err := s.currentViewPerms(ctx, g)
	return v, err
}

// currentViewPerms is currentView exposing the axiom-14 permissions the
// view was derived from (the Explain layer re-reads the same cell the
// production path served).
func (s *Session) currentViewPerms(ctx context.Context, g *generation) (*view.View, *policy.Perms, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ver, epoch, gen := g.ver(), g.epoch, g.docGen
	e := s.entry
	if e != nil && e.gen == gen && e.ver == ver && e.epoch == epoch {
		cacheHits.Inc()
		obs.AnnotateCtx(ctx, "view_source", "cache_hit")
		return e.v, e.pm, nil
	}
	if e != nil && e.gen == gen && e.epoch == epoch && e.ver < ver {
		if ne := s.tryIncremental(ctx, g, e); ne != nil {
			// Counted as xmlsec_view_incremental_applied_total by the view
			// package — neither a plain hit nor a materializing miss.
			s.entry = ne
			obs.AnnotateCtx(ctx, "view_source", "incremental")
			return ne.v, ne.pm, nil
		}
		// A hard patch error poisoned the entry (tryIncremental set
		// s.entry = nil) so the rebuild below starts cold.
		e = s.entry
	}
	switch {
	case e == nil:
		cacheMissCold.Inc()
		obs.AnnotateCtx(ctx, "view_source", "materialize_cold")
	case e.gen != gen || e.ver != ver:
		cacheMissDoc.Inc()
		obs.AnnotateCtx(ctx, "view_source", "materialize_doc")
	default:
		cacheMissEpoch.Inc()
		obs.AnnotateCtx(ctx, "view_source", "materialize_epoch")
	}
	pm, err := g.policy.EvaluateSharedCtx(ctx, g.doc, g.subjects, s.user, g.ruleCache())
	if err != nil {
		return nil, nil, err
	}
	v := view.MaterializeCtx(ctx, g.doc, pm)
	v.Doc.Freeze()
	s.entry = &viewEntry{v: v, pm: pm, ver: ver, epoch: epoch, gen: gen}
	return v, pm, nil
}

// tryIncremental builds a fresh cache entry by patching a copy of e from
// e.ver up to the generation's version using the generation's delta log.
// It returns nil when patching is not possible (the caller
// re-materializes; the reason was counted) — and poisons s.entry on a
// hard patch error. The published entry e itself is never mutated: the
// maintainer runs on a Snapshot clone of the view and a Clone of the
// permissions, so readers concurrently serving from e are undisturbed.
// Callers hold s.mu.
func (s *Session) tryIncremental(ctx context.Context, g *generation, e *viewEntry) *viewEntry {
	if !s.maintReady || s.maintEpoch != e.epoch {
		s.maint, _ = view.NewMaintainer(g.policy, g.subjects, s.user)
		s.maintEpoch = e.epoch
		s.maintReady = true
	}
	if s.maint == nil {
		incFallbackIneligible.Inc()
		obs.AnnotateCtx(ctx, "incremental_fallback", "ineligible")
		return nil
	}
	chain, ok := g.deltaChain(e.ver)
	if !ok {
		incFallbackGap.Inc()
		obs.AnnotateCtx(ctx, "incremental_fallback", "gap")
		return nil
	}
	v := e.v.Snapshot()
	pm := e.pm.Clone()
	for _, deltas := range chain {
		if err := s.maint.ApplyCtx(ctx, v, g.doc, pm, deltas); err != nil {
			// The entry's coordinates no longer have a usable continuation;
			// poison the cache so the rebuild starts cold instead of
			// retrying a failing patch on every request.
			s.entry = nil
			incFallbackError.Inc()
			obs.AnnotateCtx(ctx, "incremental_fallback", "error")
			return nil
		}
	}
	v.Doc.Freeze()
	return &viewEntry{v: v, pm: pm, ver: g.ver(), epoch: e.epoch, gen: e.gen}
}

// View returns an independent snapshot of the user's current view. The
// cached view instance is frozen and shared across concurrent requests,
// so callers get a mutable Snapshot copy.
func (s *Session) View() (*view.View, error) {
	return s.ViewCtx(context.Background())
}

// ViewCtx is View with a request context: a failed materialization is
// audited with the context's request ID (successes are not audited —
// views are rebuilt implicitly on most operations and would drown the
// log).
func (s *Session) ViewCtx(ctx context.Context) (*view.View, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_view", viewStage)
	v, err := s.currentView(ctx, s.db.gen())
	if err != nil {
		sessionOp("view", "error")
		s.db.recordCtx(ctx, "view", s.user, "", "error: "+err.Error(), sp.End())
		return nil, err
	}
	sp.End()
	sessionOp("view", "ok")
	return v.Snapshot(), nil
}

// ViewXML serializes the user's view.
func (s *Session) ViewXML() (string, error) {
	return s.ViewXMLCtx(context.Background())
}

// ViewXMLCtx is ViewXML with a request context. Serialization reads the
// shared frozen view directly — no snapshot copy.
func (s *Session) ViewXMLCtx(ctx context.Context) (string, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_view", viewStage)
	v, err := s.currentView(ctx, s.db.gen())
	if err != nil {
		sessionOp("view", "error")
		s.db.recordCtx(ctx, "view", s.user, "", "error: "+err.Error(), sp.End())
		return "", err
	}
	sp.End()
	sessionOp("view", "ok")
	return v.Doc.XML(), nil
}

// Result is one node matched by a query, described without exposing
// internal identifiers.
type Result struct {
	Kind  xmltree.Kind
	Label string
	Path  string // view path, e.g. /patients/RESTRICTED/diagnosis
	Value string // XPath string-value
}

// Query evaluates an XPath expression and returns the matching nodes as
// the user's view shows them (§4.4.1). Queries route through a three-tier
// read ladder — static rewrite over the source document, qfilter security
// filter, materialized view — whose tiers are answer-equivalent (pinned by
// internal/rewrite's differential oracle and internal/qfilter's property
// tests), so the tier choice is invisible except in latency and the
// xmlsec_query_tier_total counters.
func (s *Session) Query(path string) ([]Result, error) {
	return s.QueryCtx(context.Background(), path)
}

// QueryCtx is Query with a request context: the request ID (if any) is
// threaded into the audit entry alongside the operation's duration.
func (s *Session) QueryCtx(ctx context.Context, path string) ([]Result, error) {
	out, _, err := s.QueryTieredCtx(ctx, path)
	return out, err
}

// QueryTiered is Query also reporting which ladder tier served the answer.
func (s *Session) QueryTiered(path string) ([]Result, Tier, error) {
	return s.QueryTieredCtx(context.Background(), path)
}

// QueryTieredCtx evaluates path through the read ladder:
//
//  1. The static rewrite runs the query on the source document with the
//     policy compiled into a chain-derived security filter — no per-node
//     permission mask, no view; plans are cached per (policy epoch, rule
//     profile, query), independent of the document and of user count.
//  2. Outside the rewriter's fragment, the qfilter path evaluates on the
//     source under the user's axiom-14 mask (skipped when the session's
//     cached view is already current — then the view is free).
//  3. Otherwise the materialized view serves, warming the session cache.
//
// The whole ladder runs against one pinned generation: no lock is taken
// and concurrent commits cannot tear the snapshot.
func (s *Session) QueryTieredCtx(ctx context.Context, path string) ([]Result, Tier, error) {
	return s.QueryTierCtx(ctx, path, TierAuto)
}

// QueryTierCtx is QueryTieredCtx with the ladder pinned to one tier
// (TierAuto descends normally). Pinning exists for A/B debugging — the
// server's -tier flag and the shell's tier command route here. A pinned
// tier that cannot serve the query fails with ErrTierUnavailable instead
// of falling through, so a pinned comparison never silently measures a
// different tier.
func (s *Session) QueryTierCtx(ctx context.Context, path string, forced Tier) ([]Result, Tier, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_query", queryStage)
	g := s.db.gen()
	fail := func(tier Tier, err error) ([]Result, Tier, error) {
		sessionOp("query", "error")
		s.db.recordCtx(ctx, "query", s.user, path, "error: "+err.Error(), sp.End())
		return nil, tier, err
	}
	done := func(tier Tier, out []Result) ([]Result, Tier, error) {
		countTier(tier)
		sp.Annotate("query_tier", tier.String())
		sessionOp("query", "ok")
		s.db.recordCtx(ctx, "query", s.user, path, fmt.Sprintf("%d nodes", len(out)), sp.End())
		return out, tier, nil
	}

	// Tier 1: static rewrite.
	if forced == TierAuto || forced == TierRewrite {
		if pg, _ := s.db.rewriteEngineFor(g).ProgramFor(s.user); pg != nil {
			pl, err := pg.PlanFor(path)
			if err != nil {
				return fail(TierRewrite, err) // compile errors are tier-independent
			}
			switch pl.Mode {
			case rewrite.PlanEmpty:
				return done(TierRewrite, []Result{})
			case rewrite.PlanTransparent:
				_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
				ns, err := pl.Select(g.doc.Root(), s.vars(), nil)
				xe.AnnotateInt("selected", int64(len(ns)))
				xe.End()
				if err == nil {
					return done(TierRewrite, filteredResults(ns, nil))
				}
				rewrite.CountFallback(rewrite.ReasonEvalError)
				if forced == TierRewrite {
					return fail(TierRewrite, err)
				}
			default:
				sec, st := pg.SecurityFor(s.user, s.vars(), g.doc)
				_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
				ns, err := pl.Select(g.doc.Root(), s.vars(), sec)
				xe.AnnotateInt("selected", int64(len(ns)))
				xe.End()
				if err == nil && st.Err() == nil {
					return done(TierRewrite, filteredResults(ns, sec))
				}
				rewrite.CountFallback(rewrite.ReasonEvalError)
				if forced == TierRewrite {
					if err == nil {
						err = st.Err()
					}
					return fail(TierRewrite, err)
				}
			}
		} else {
			rewrite.CountFallback(rewrite.ReasonRuleFragment)
			if forced == TierRewrite {
				return fail(TierRewrite, fmt.Errorf("%w: policy outside the rewrite fragment for %q", ErrTierUnavailable, s.user))
			}
		}
	}

	// Tier 2: qfilter, unless the cached view is already current (a
	// pinned qfilter skips that shortcut — the point of pinning is to
	// measure this tier).
	if forced == TierQfilter || (forced == TierAuto && !s.viewFresh(g)) {
		pm, err := g.policy.EvaluateSharedCtx(ctx, g.doc, g.subjects, s.user, g.ruleCache())
		if err != nil {
			return fail(TierQfilter, err)
		}
		c, err := xpath.Compile(path)
		if err != nil {
			return fail(TierQfilter, err)
		}
		sec := qfilter.ForPerms(pm)
		_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
		ns, err := c.SelectFiltered(g.doc.Root(), s.vars(), sec)
		xe.AnnotateInt("selected", int64(len(ns)))
		xe.End()
		if err != nil {
			return fail(TierQfilter, err)
		}
		return done(TierQfilter, filteredResults(ns, sec))
	}

	// Tier 3: the materialized view.
	v, err := s.currentView(ctx, g)
	if err != nil {
		return fail(TierView, err)
	}
	_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
	ns, err := xpath.Select(v.Doc, path, s.vars())
	xe.AnnotateInt("selected", int64(len(ns)))
	xe.End()
	if err != nil {
		return fail(TierView, err)
	}
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{Kind: n.Kind(), Label: n.Label(), Path: n.Path(), Value: n.StringValue()}
	}
	return done(TierView, out)
}

// filteredResults renders source nodes exactly as the user's materialized
// view would show them: effective labels, filtered string-values, view
// paths. A nil sec means the profile is transparent (stored labels).
func filteredResults(ns xpath.NodeSet, sec *xpath.Security) []Result {
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{
			Kind:  n.Kind(),
			Label: sec.EffectiveLabel(n),
			Path:  sec.Path(n),
			Value: sec.StringValue(n),
		}
	}
	return out
}

// viewFresh reports whether the session's cached view matches the pinned
// generation's (docGen, version, epoch) exactly — without materializing
// or patching anything.
func (s *Session) viewFresh(g *generation) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry
	return e != nil && e.gen == g.docGen && e.ver == g.ver() && e.epoch == g.epoch
}

// QueryValue evaluates an XPath expression that may yield an atomic value
// (count(), boolean tests, string()...) against the user's view, through
// the same read ladder as Query. Non-empty node-set values always come
// from the materialized view: handing out raw source nodes would leak
// hidden labels.
func (s *Session) QueryValue(path string) (xpath.Value, error) {
	return s.QueryValueCtx(context.Background(), path)
}

// QueryValueCtx is QueryValue with a request context: the request ID (if
// any) is threaded into the audit entry alongside the operation's
// duration.
func (s *Session) QueryValueCtx(ctx context.Context, path string) (xpath.Value, error) {
	val, _, err := s.QueryValueTieredCtx(ctx, path)
	return val, err
}

// QueryValueTiered is QueryValue also reporting the serving tier.
func (s *Session) QueryValueTiered(path string) (xpath.Value, Tier, error) {
	return s.QueryValueTieredCtx(context.Background(), path)
}

// QueryValueTieredCtx evaluates an arbitrary expression through the read
// ladder (see QueryTieredCtx). Atomic values are served by the first tier
// that succeeds; a non-empty node-set forces the view tier.
func (s *Session) QueryValueTieredCtx(ctx context.Context, path string) (xpath.Value, Tier, error) {
	return s.QueryValueTierCtx(ctx, path, TierAuto)
}

// QueryValueTierCtx is QueryValueTieredCtx with the ladder pinned to one
// tier (see QueryTierCtx). A pinned rewrite or qfilter query whose value
// is a non-empty node-set fails with ErrTierUnavailable: only the view
// tier may hand out node-sets without leaking hidden labels.
func (s *Session) QueryValueTierCtx(ctx context.Context, path string, forced Tier) (xpath.Value, Tier, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_query_value", valueStage)
	g := s.db.gen()
	fail := func(tier Tier, err error) (xpath.Value, Tier, error) {
		sessionOp("query_value", "error")
		s.db.recordCtx(ctx, "query_value", s.user, path, "error: "+err.Error(), sp.End())
		return nil, tier, err
	}
	done := func(tier Tier, val xpath.Value) (xpath.Value, Tier, error) {
		countTier(tier)
		sp.Annotate("query_tier", tier.String())
		sessionOp("query_value", "ok")
		s.db.recordCtx(ctx, "query_value", s.user, path, val.TypeName(), sp.End())
		return val, tier, nil
	}

	// Tier 1: static rewrite.
	nodeSetValue := false
	if forced == TierAuto || forced == TierRewrite {
		if pg, _ := s.db.rewriteEngineFor(g).ProgramFor(s.user); pg != nil {
			pl, err := pg.PlanFor(path)
			if err != nil {
				return fail(TierRewrite, err)
			}
			if pl.Mode == rewrite.PlanEmpty {
				// Empty plans only arise from path expressions, whose value is
				// a node-set — here the provably empty one.
				return done(TierRewrite, xpath.NodeSet(nil))
			}
			var sec *xpath.Security
			var st *rewrite.EvalState
			if pl.Mode == rewrite.PlanGuarded {
				sec, st = pg.SecurityFor(s.user, s.vars(), g.doc)
			}
			_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
			val, err := pl.Eval(g.doc.Root(), s.vars(), sec)
			xe.End()
			stErr := error(nil)
			if st != nil {
				stErr = st.Err()
			}
			switch {
			case err != nil || stErr != nil:
				rewrite.CountFallback(rewrite.ReasonEvalError)
				if forced == TierRewrite {
					if err == nil {
						err = stErr
					}
					return fail(TierRewrite, err)
				}
			default:
				if ns, ok := val.(xpath.NodeSet); ok && len(ns) > 0 {
					nodeSetValue = true
					rewrite.CountFallback(rewrite.ReasonNodeSetValue)
					if forced == TierRewrite {
						return fail(TierRewrite, fmt.Errorf("%w: non-empty node-set values must come from the view tier", ErrTierUnavailable))
					}
				} else {
					return done(TierRewrite, val)
				}
			}
		} else {
			rewrite.CountFallback(rewrite.ReasonRuleFragment)
			if forced == TierRewrite {
				return fail(TierRewrite, fmt.Errorf("%w: policy outside the rewrite fragment for %q", ErrTierUnavailable, s.user))
			}
		}
	}

	// Tier 2: qfilter — pointless for node-set values (it would also
	// produce source nodes) and skipped when the cached view is current
	// (unless pinned, which also bypasses the freshness shortcut).
	if forced == TierQfilter || (forced == TierAuto && !nodeSetValue && !s.viewFresh(g)) {
		pm, err := g.policy.EvaluateSharedCtx(ctx, g.doc, g.subjects, s.user, g.ruleCache())
		if err != nil {
			return fail(TierQfilter, err)
		}
		c, err := xpath.Compile(path)
		if err != nil {
			return fail(TierQfilter, err)
		}
		_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
		val, err := c.EvalFiltered(g.doc.Root(), s.vars(), qfilter.ForPerms(pm))
		xe.End()
		if err != nil {
			return fail(TierQfilter, err)
		}
		if ns, ok := val.(xpath.NodeSet); !ok || len(ns) == 0 {
			return done(TierQfilter, val)
		}
		if forced == TierQfilter {
			return fail(TierQfilter, fmt.Errorf("%w: non-empty node-set values must come from the view tier", ErrTierUnavailable))
		}
	}

	// Tier 3: the materialized view.
	v, err := s.currentView(ctx, g)
	if err != nil {
		return fail(TierView, err)
	}
	c, err := xpath.Compile(path)
	if err != nil {
		return fail(TierView, err)
	}
	_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
	val, err := c.Eval(v.Doc.Root(), s.vars())
	xe.End()
	if err != nil {
		return fail(TierView, err)
	}
	return done(TierView, val)
}

// recordCtx is record with the context's request ID and a duration.
func (db *Database) recordCtx(ctx context.Context, action, user, detail, outcome string, d time.Duration) {
	if db.auditLimit == 0 {
		return
	}
	db.auditMu.Lock()
	db.recordFull(user, action, detail, outcome, obs.RequestID(ctx), d)
	db.auditMu.Unlock()
}

// Update executes one XUpdate operation with the paper's write access
// controls (axioms 18–25). It returns the per-node result.
func (s *Session) Update(op *xupdate.Op) (*xupdate.Result, error) {
	return s.UpdateCtx(context.Background(), op)
}

// UpdateCtx is Update with a request context (request ID into the audit
// entry, duration into the telemetry registry).
func (s *Session) UpdateCtx(ctx context.Context, op *xupdate.Op) (*xupdate.Result, error) {
	res, err := s.updateWithVars(ctx, op, nil)
	if err == nil && s.db.journal != nil && res.Applied > 0 {
		if jerr := s.journalOp(ctx, op); jerr != nil {
			return res, fmt.Errorf("core: operation applied but journaling failed: %w", jerr)
		}
	}
	return res, err
}

// journalOp appends a single-operation modification document.
func (s *Session) journalOp(ctx context.Context, op *xupdate.Op) error {
	doc, err := xupdate.ModificationsString([]*xupdate.Op{op})
	if err != nil {
		return err
	}
	_, err = s.db.journal.AppendCtx(ctx, s.user, doc)
	return err
}

// updateWithVars executes one secured operation through the group-commit
// queue. The closure runs on the commit leader's goroutine against the
// round's scratch document clone; the span therefore measures queue wait
// plus execution, which is the latency the caller actually experiences.
func (s *Session) updateWithVars(ctx context.Context, op *xupdate.Op, extra xpath.Vars) (*xupdate.Result, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_update", updateStage)
	var res *xupdate.Result
	var err error
	s.db.submit(func(c *commitCtx) {
		doc := c.mutableDoc()
		fromVer := doc.Version()
		res, _, err = access.ExecuteWithVarsCtx(ctx, doc, c.curSubjects(), c.curPolicy(), s.user, op, extra)
		if err != nil {
			// A failed executor may have partially mutated the scratch
			// document; no batch is recorded, so if the round still
			// publishes (another write succeeded), the version gap forces
			// session caches to re-materialize (deltaChain reports it).
			sessionOp("update", "error")
			s.db.recordCtx(ctx, "update", s.user, opDetail(op), "error: "+err.Error(), sp.End())
			return
		}
		if toVer := doc.Version(); toVer != fromVer {
			c.batches = append(c.batches, deltaBatch{fromVer: fromVer, toVer: toVer, deltas: res.Deltas})
		}
		sessionOp("update", "ok")
		s.db.recordCtx(ctx, "update", s.user, opDetail(op),
			fmt.Sprintf("selected=%d applied=%d skipped=%d", res.Selected, res.Applied, len(res.Skipped)),
			sp.End())
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Apply parses an <xupdate:modifications> document and executes its
// operations in order, returning one result per operation (a zero result
// for xupdate:variable bindings, which are threaded through the sequence
// and evaluated against the user's view). Execution stops at the first
// hard error; privilege refusals are not errors (they appear as skipped
// nodes in the results).
func (s *Session) Apply(modifications string) ([]*xupdate.Result, error) {
	return s.ApplyCtx(context.Background(), modifications)
}

// ApplyCtx is Apply with a request context.
func (s *Session) ApplyCtx(ctx context.Context, modifications string) ([]*xupdate.Result, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_apply", applyStage)
	results, err := s.apply(ctx, modifications)
	if err != nil {
		sp.End()
		sessionOp("apply", "error")
		return results, err
	}
	sp.End()
	sessionOp("apply", "ok")
	if s.db.journal != nil && anyApplied(results) {
		if _, jerr := s.db.journal.AppendCtx(ctx, s.user, modifications); jerr != nil {
			return results, fmt.Errorf("core: modifications applied but journaling failed: %w", jerr)
		}
	}
	return results, nil
}

func anyApplied(results []*xupdate.Result) bool {
	for _, r := range results {
		if r.Applied > 0 {
			return true
		}
	}
	return false
}

// apply executes a modification document without journaling (used by Apply
// and by journal replay).
func (s *Session) apply(ctx context.Context, modifications string) ([]*xupdate.Result, error) {
	ops, err := xupdate.ParseModificationsString(modifications)
	if err != nil {
		return nil, err
	}
	env := xpath.Vars{}
	results := make([]*xupdate.Result, 0, len(ops))
	for _, op := range ops {
		if op.Kind == xupdate.Variable {
			if err := op.Validate(); err != nil {
				return results, err
			}
			v, err := s.ViewCtx(ctx)
			if err != nil {
				return results, err
			}
			val, err := op.BindVariable(v.Doc.Root(), mergeUser(env, s.user))
			if err != nil {
				return results, err
			}
			env[op.VarName()] = val
			results = append(results, &xupdate.Result{})
			continue
		}
		res, err := s.updateWithVars(ctx, op, env)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// mergeUser returns env plus the $USER binding.
func mergeUser(env xpath.Vars, user string) xpath.Vars {
	out := make(xpath.Vars, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out["USER"] = xpath.String(user)
	return out
}

func opDetail(op *xupdate.Op) string {
	switch op.Kind {
	case xupdate.Rename, xupdate.Update:
		return fmt.Sprintf("%s select=%s vnew=%s", op.Kind, op.Select, op.NewValue)
	default:
		return fmt.Sprintf("%s select=%s", op.Kind, op.Select)
	}
}

// ApplyAs implements journal.Applier: it executes a logged modification
// document as the given user through the normal security path, without
// re-journaling. Used by Recover.
func (db *Database) ApplyAs(user, modifications string) error {
	s, err := db.Session(user)
	if err != nil {
		return err
	}
	_, err = s.apply(context.Background(), modifications)
	return err
}

// Recover rebuilds state from a snapshot plus its journal suffix: the
// snapshot is restored, then every journal entry is re-executed through
// the security path. It returns the database and the last replayed
// sequence number (pass it to WithJournal to continue the same log).
// A torn final journal entry (crash during append) is tolerated: the
// intact prefix is applied.
func Recover(snapshot, journalLog io.Reader, opts ...Option) (*Database, uint64, error) {
	db, err := Open(snapshot, opts...)
	if err != nil {
		return nil, 0, err
	}
	entries, err := journal.Read(journalLog)
	if err != nil && !errors.Is(err, journal.ErrCorrupt) {
		return nil, 0, err
	}
	torn := err != nil
	applied, lastSeq, err := journal.Replay(db, entries)
	if err != nil {
		return nil, lastSeq, err
	}
	detail := fmt.Sprintf("replayed %d entries", applied)
	if torn {
		detail += " (torn tail discarded)"
	}
	db.record("system", "recover", detail, "ok")
	return db, lastSeq, nil
}

// AttachJournal attaches (or replaces) the operation log on an existing
// database — the recovery sequence is: Recover(snapshot, journal), then
// AttachJournal(appendHandle, lastSeq) to continue the same log. Like the
// journal Option, it must run before the database serves concurrent
// requests: the journal handle is read without a lock on the update path.
func (db *Database) AttachJournal(w io.Writer, seqStart uint64) {
	db.journal = journal.NewWriter(w, seqStart)
}

// Transform runs an XSLT stylesheet as the session user through the §5
// security-processor path: the stylesheet executes against the source
// document but observes only the user's authorized view (qfilter.ForPerms
// over the axiom-14 permissions). No intermediate view is materialized.
func (s *Session) Transform(stylesheet string) (string, error) {
	return s.TransformCtx(context.Background(), stylesheet)
}

// TransformCtx is Transform with a request context.
func (s *Session) TransformCtx(ctx context.Context, stylesheet string) (string, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_transform", transformStage)
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		sp.End()
		sessionOp("transform", "error")
		return "", err
	}
	g := s.db.gen()
	pm, err := g.policy.EvaluateSharedCtx(ctx, g.doc, g.subjects, s.user, g.ruleCache())
	if err != nil {
		sp.End()
		sessionOp("transform", "error")
		return "", err
	}
	out, err := sheet.TransformString(g.doc, s.vars(), qfilter.ForPerms(pm))
	if err != nil {
		sessionOp("transform", "error")
		s.db.recordCtx(ctx, "transform", s.user, "stylesheet", "error: "+err.Error(), sp.End())
		return "", err
	}
	sessionOp("transform", "ok")
	s.db.recordCtx(ctx, "transform", s.user, "stylesheet", fmt.Sprintf("%d bytes", len(out)), sp.End())
	return out, nil
}
