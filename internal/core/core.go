// Package core assembles the paper's model into a usable secure XML
// database: a Database holds the source document, the subject hierarchy and
// the security policy; Sessions expose per-user queries and updates with the
// paper's access controls enforced throughout.
//
// Reads (§4.4.1): every query is evaluated against the user's materialized
// view (axioms 15–17), cached per (document version, policy epoch).
// Writes (§4.4.2): every XUpdate operation selects its targets on the view
// and checks per-node privileges (axioms 18–25).
//
// Database is safe for concurrent use: reads share an RWMutex read lock,
// updates and administration take the write lock.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"securexml/internal/access"
	"securexml/internal/journal"
	"securexml/internal/labeling"
	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/qfilter"
	"securexml/internal/rewrite"
	"securexml/internal/storage"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xslt"
	"securexml/internal/xupdate"
)

// Telemetry: session-level stages plus the per-session view cache (the
// registry's hit rate is the leverage of caching materialized views across
// queries within one (document version, policy epoch) window).
var (
	queryStage     = obs.Stage("session_query")
	valueStage     = obs.Stage("session_query_value")
	viewStage      = obs.Stage("session_view")
	updateStage    = obs.Stage("session_update")
	applyStage     = obs.Stage("session_apply")
	transformStage = obs.Stage("session_transform")
	xpathStage     = obs.Stage("xpath_eval")

	cacheHits      = obs.Default().Counter("xmlsec_view_cache_hits_total")
	cacheMissCold  = obs.Default().Counter("xmlsec_view_cache_misses_total", "reason", "cold")
	cacheMissDoc   = obs.Default().Counter("xmlsec_view_cache_misses_total", "reason", "doc_version")
	cacheMissEpoch = obs.Default().Counter("xmlsec_view_cache_misses_total", "reason", "policy_epoch")

	// Incremental maintenance fallbacks, by reason: the policy is not
	// chain-only for the user (ineligible), the delta log no longer covers
	// the cached version (gap), or patching failed mid-batch (error).
	// Successful patches are counted by the view package
	// (xmlsec_view_incremental_applied_total).
	incFallbackIneligible = obs.Default().Counter("xmlsec_view_incremental_fallback_total", "reason", "ineligible")
	incFallbackGap        = obs.Default().Counter("xmlsec_view_incremental_fallback_total", "reason", "gap")
	incFallbackError      = obs.Default().Counter("xmlsec_view_incremental_fallback_total", "reason", "error")

	// auditDepth tracks the audit ring's current occupancy, so operators
	// can see eviction pressure (the ring drops oldest entries at the
	// configured limit) before entries are silently lost.
	auditDepth = obs.Default().Gauge("xmlsec_audit_ring_depth")
)

// Tier identifies which rung of the read ladder served a query (§4.4.1
// enforcement strategies): the static rewrite over the source document,
// the qfilter per-node security filter, or the materialized view.
type Tier int

// The ladder tiers, cheapest first.
const (
	TierRewrite Tier = iota
	TierQfilter
	TierView
	numTiers
)

// String names the tier.
func (t Tier) String() string { return t.MetricLabel() }

// MetricLabel returns the tier's telemetry label; every branch is a
// literal so labels stay compile-time bounded (xmlsec-vet obslabel).
func (t Tier) MetricLabel() string {
	switch t {
	case TierRewrite:
		return "rewrite"
	case TierQfilter:
		return "qfilter"
	case TierView:
		return "view"
	default:
		return "unknown"
	}
}

// Telemetry: queries served per ladder tier, resolved once.
var queryTierCounters = func() (c [numTiers]*obs.Counter) {
	for t := Tier(0); t < numTiers; t++ {
		c[t] = obs.Default().Counter("xmlsec_query_tier_total", "tier", t.MetricLabel())
	}
	return
}()

// countTier records one query served by tier.
func countTier(t Tier) {
	if t >= 0 && t < numTiers {
		queryTierCounters[t].Inc()
	}
}

// sessionOp counts one session operation by name and outcome (ok | error).
func sessionOp(op, outcome string) {
	obs.Default().Counter("xmlsec_session_ops_total", "op", op, "outcome", outcome).Inc()
}

// Errors returned by core operations.
var (
	ErrUnknownUser = errors.New("core: unknown user")
	ErrNotUser     = errors.New("core: sessions are for users, not roles")
)

// Option configures a Database.
type Option func(*Database)

// WithScheme selects the labeling scheme (default fracpath).
func WithScheme(s labeling.Scheme) Option {
	return func(db *Database) { db.scheme = s }
}

// WithAuditLimit bounds the in-memory audit log (default 4096 entries; the
// oldest entries are dropped first). A limit of 0 disables auditing.
func WithAuditLimit(n int) Option {
	return func(db *Database) { db.auditLimit = n }
}

// WithJournal attaches an operation log: every successfully executed
// modification is appended as an <xupdate:modifications> document framed
// with its user. seqStart continues an existing journal (0 starts fresh);
// after Recover, pass the returned last sequence number.
func WithJournal(w io.Writer, seqStart uint64) Option {
	return func(db *Database) { db.journal = journal.NewWriter(w, seqStart) }
}

// Database is a secure XML database.
type Database struct {
	// Configuration, set by Options (and AttachJournal) before the
	// database is shared; immutable while requests are in flight, so it
	// needs no lock.
	scheme     labeling.Scheme
	auditLimit int
	journal    *journal.Writer

	mu          sync.RWMutex
	doc         *xmltree.Document
	subjects    *subject.Hierarchy
	policy      *policy.Policy
	policyEpoch uint64
	// docGen distinguishes document *replacements* (LoadXML) from
	// mutations: a fresh document restarts its version counter, so the
	// version alone cannot key session caches.
	docGen uint64
	// deltaLog is a bounded ring of recent update batches, consumed by
	// session caches to patch views incrementally instead of
	// re-materializing (see internal/view/incremental.go).
	deltaLog []deltaBatch

	// The audit ring has its own lock so read-path operations (which hold
	// db.mu only for reading) can still append entries.
	auditMu  sync.Mutex
	audit    []AuditEntry
	auditSeq uint64

	// ruleCache shares the $USER-independent rule node-sets of the current
	// (docGen, doc version, policyEpoch) across every session's cold
	// evaluation. It has its own lock because currentView runs under
	// db.mu.RLock and therefore cannot upgrade to swap the cache.
	ruleCacheMu    sync.Mutex
	ruleCache      *policy.RuleCache
	ruleCacheGen   uint64
	ruleCacheVer   uint64
	ruleCacheEpoch uint64

	// sessions holds the per-user shared sessions handed out by
	// SharedSession, so server requests and warm-up hit one view cache per
	// user instead of re-materializing per connection.
	sessMu   sync.Mutex
	sessions map[string]*Session

	// rewriteEng is the static query-rewriting engine for policy epoch
	// rewriteEpoch (see internal/rewrite). It is keyed by the epoch alone —
	// rewritten plans depend only on the policy and hierarchy, so they
	// survive arbitrary document mutations. Own lock for the same reason
	// as ruleCache: the query path holds db.mu only for reading.
	rewriteMu    sync.Mutex
	rewriteEng   *rewrite.Engine
	rewriteEpoch uint64
}

// rewriteEngine returns the rewrite engine for the current policy epoch,
// replacing it when the policy or the subject hierarchy moved (both bump
// policyEpoch). Callers hold db.mu (read or write), which pins the epoch
// and excludes concurrent mutation of the policy and hierarchy the engine
// reads.
func (db *Database) rewriteEngine() *rewrite.Engine {
	epoch := db.policyEpoch
	db.rewriteMu.Lock()
	defer db.rewriteMu.Unlock()
	if db.rewriteEng == nil || db.rewriteEpoch != epoch {
		db.rewriteEng = rewrite.NewEngine(db.policy, db.subjects)
		db.rewriteEpoch = epoch
	}
	return db.rewriteEng
}

// sharedRuleCache returns the cross-user rule cache for the database's
// current document and policy, replacing it when either moved so stale
// node-ID sets are never merged into a fresh snapshot's permissions.
// Callers hold db.mu (read or write), which pins gen/version/epoch for the
// duration of the evaluation that uses the cache.
func (db *Database) sharedRuleCache() *policy.RuleCache {
	gen, ver, epoch := db.docGen, db.doc.Version(), db.policyEpoch
	db.ruleCacheMu.Lock()
	defer db.ruleCacheMu.Unlock()
	if db.ruleCache == nil || db.ruleCacheGen != gen || db.ruleCacheVer != ver || db.ruleCacheEpoch != epoch {
		db.ruleCache = policy.NewRuleCache()
		db.ruleCacheGen, db.ruleCacheVer, db.ruleCacheEpoch = gen, ver, epoch
	}
	return db.ruleCache
}

// deltaBatch records the structural changes of one executed operation,
// spanning document versions (FromVer, ToVer].
type deltaBatch struct {
	fromVer, toVer uint64
	deltas         []xupdate.Delta
}

// deltaLogCap bounds the delta log; sessions further behind than the
// oldest retained batch rebuild from scratch.
const deltaLogCap = 256

// pushDeltaBatch appends one update's deltas. Callers hold db.mu for
// writing.
func (db *Database) pushDeltaBatch(fromVer, toVer uint64, deltas []xupdate.Delta) {
	db.deltaLog = append(db.deltaLog, deltaBatch{fromVer: fromVer, toVer: toVer, deltas: deltas})
	if len(db.deltaLog) > deltaLogCap {
		db.deltaLog = db.deltaLog[len(db.deltaLog)-deltaLogCap:]
	}
}

// deltaChain collects the contiguous delta batches leading from document
// version from to version to. It returns ok=false when the log has a gap —
// the oldest batches were trimmed, or an update mutated the document
// without recording a batch (e.g. an executor error after partial
// application). Callers hold db.mu (read or write).
func (db *Database) deltaChain(from, to uint64) ([][]xupdate.Delta, bool) {
	cur := from
	var out [][]xupdate.Delta
	for _, b := range db.deltaLog {
		if b.toVer <= cur {
			continue
		}
		if b.fromVer != cur {
			return nil, false
		}
		out = append(out, b.deltas)
		cur = b.toVer
	}
	if cur != to {
		return nil, false
	}
	return out, true
}

// New creates an empty database: no document, no subjects, no rules.
func New(opts ...Option) *Database {
	db := &Database{
		scheme:     labeling.NewFracPath(),
		subjects:   subject.NewHierarchy(),
		policy:     policy.New(),
		auditLimit: 4096,
	}
	for _, o := range opts {
		o(db)
	}
	db.doc = xmltree.New(db.scheme)
	return db
}

// LoadXML replaces the database content with the document read from r.
func (db *Database) LoadXML(r io.Reader) error {
	doc, err := xmltree.Parse(r, xmltree.ParseOptions{Scheme: db.scheme})
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.doc = doc
	db.docGen++
	db.deltaLog = nil
	db.record("system", "load", fmt.Sprintf("%d nodes", doc.Len()), "ok")
	return nil
}

// LoadXMLString is LoadXML over a string.
func (db *Database) LoadXMLString(s string) error { return db.LoadXML(strings.NewReader(s)) }

// Save writes a durable snapshot of the database — the document with its
// persistent identifiers, the subject hierarchy and the policy — to w.
// The audit log is not part of the snapshot (export it via Audit).
func (db *Database) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rules := make([]policy.Rule, 0, db.policy.Len())
	for _, r := range db.policy.Rules() {
		rules = append(rules, *r)
	}
	return storage.Write(w, &storage.Snapshot{
		SchemeName: db.scheme.Name(),
		Doc:        db.doc,
		Subjects:   db.subjects,
		Rules:      rules,
	})
}

// Open restores a database from a snapshot written by Save. Node
// identifiers, subjects and rule priorities are restored exactly; rule
// paths are recompiled (a snapshot from a newer, incompatible grammar
// fails here rather than at query time).
func Open(r io.Reader, opts ...Option) (*Database, error) {
	snap, err := storage.Read(r)
	if err != nil {
		return nil, err
	}
	scheme, err := labeling.ByName(snap.SchemeName)
	if err != nil {
		return nil, err
	}
	db := New(append([]Option{WithScheme(scheme)}, opts...)...)
	// The database cannot have escaped yet, but restoring under the lock
	// keeps the guarded-field discipline checkable rather than exceptional.
	db.mu.Lock()
	db.doc = snap.Doc
	db.subjects = snap.Subjects
	for _, rule := range snap.Rules {
		if err := db.policy.Add(db.subjects, rule); err != nil {
			db.mu.Unlock()
			return nil, fmt.Errorf("core: restoring rule %s: %w", rule.String(), err)
		}
	}
	detail := fmt.Sprintf("%d nodes, %d rules", db.doc.Len(), db.policy.Len())
	db.mu.Unlock()
	db.record("system", "open", detail, "ok")
	return db, nil
}

// --- administration -----------------------------------------------------------

// AddRole declares a role under optional parent roles.
func (db *Database) AddRole(name string, parents ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.subjects.AddRole(name, parents...); err != nil {
		return err
	}
	db.policyEpoch++
	db.record("system", "add-role", name, "ok")
	return nil
}

// AddUser declares a user belonging to the given roles.
func (db *Database) AddUser(name string, roles ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.subjects.AddUser(name, roles...); err != nil {
		return err
	}
	db.policyEpoch++
	db.record("system", "add-user", name, "ok")
	return nil
}

// Grant appends an accept rule (latest priority, §4.3 discipline).
func (db *Database) Grant(priv policy.Privilege, path, subj string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.policy.Grant(db.subjects, priv, path, subj); err != nil {
		return err
	}
	db.policyEpoch++
	db.record("system", "grant", fmt.Sprintf("%s on %s to %s", priv, path, subj), "ok")
	return nil
}

// Revoke appends a deny rule (latest priority).
func (db *Database) Revoke(priv policy.Privilege, path, subj string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.policy.Revoke(db.subjects, priv, path, subj); err != nil {
		return err
	}
	db.policyEpoch++
	db.record("system", "revoke", fmt.Sprintf("%s on %s from %s", priv, path, subj), "ok")
	return nil
}

// AddRule inserts a rule with an explicit priority.
func (db *Database) AddRule(r policy.Rule) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.policy.Add(db.subjects, r); err != nil {
		return err
	}
	db.policyEpoch++
	db.record("system", "add-rule", r.String(), "ok")
	return nil
}

// Rules returns a snapshot of the policy rules.
func (db *Database) Rules() []policy.Rule {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]policy.Rule, 0, db.policy.Len())
	for _, r := range db.policy.Rules() {
		out = append(out, *r)
	}
	return out
}

// Users returns all user names.
func (db *Database) Users() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.subjects.Users()
}

// Roles returns all role names.
func (db *Database) Roles() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.subjects.Roles()
}

// Hierarchy returns an independent copy of the subject hierarchy.
func (db *Database) Hierarchy() *subject.Hierarchy {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.subjects.Clone()
}

// AnalyzePolicy runs the static policy analyzer (internal/policyanalysis)
// over the current policy and subject hierarchy. The analysis needs no
// document, so it is safe at any point of the administration workflow.
func (db *Database) AnalyzePolicy() *policyanalysis.Report {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return policyanalysis.Analyze(db.subjects, db.policy)
}

// PlanRepairs runs the analyzer with repair synthesis over the current
// policy. The live document drives the repair engine's differential
// oracle, so candidate repairs come back classified semantics-preserving
// or semantics-changing against the current permission matrix.
func (db *Database) PlanRepairs() *policyanalysis.RepairReport {
	return db.PlanRepairsCtx(context.Background())
}

// PlanRepairsCtx is PlanRepairs with request-scoped tracing.
func (db *Database) PlanRepairsCtx(ctx context.Context) *policyanalysis.RepairReport {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rules := make([]policy.Rule, 0, db.policy.Len())
	for _, r := range db.policy.Rules() {
		rules = append(rules, *r)
	}
	return policyanalysis.PlanRepairsCtx(ctx, db.doc, db.subjects, rules)
}

// SourceXML serializes the raw source document — administrator use only;
// regular access goes through Session views.
func (db *Database) SourceXML() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.doc.XML()
}

// SourceSketch renders the raw source document's structure sketch (node
// identifiers and labels) — administrator use only, like SourceXML.
func (db *Database) SourceSketch() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.doc.Sketch()
}

// Stats summarizes the database state.
type Stats struct {
	Nodes       int
	Rules       int
	Users       int
	Roles       int
	DocVersion  uint64
	PolicyEpoch uint64
}

// Stats returns current counters.
func (db *Database) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{
		Nodes:       db.doc.Len(),
		Rules:       db.policy.Len(),
		Users:       len(db.subjects.Users()),
		Roles:       len(db.subjects.Roles()),
		DocVersion:  db.doc.Version(),
		PolicyEpoch: db.policyEpoch,
	}
}

// --- audit --------------------------------------------------------------------

// AuditEntry is one recorded action.
type AuditEntry struct {
	Seq     uint64
	User    string
	Action  string // "query", "update", "grant", ...
	Detail  string
	Outcome string
	// ReqID correlates the entry with an HTTP request (X-Request-Id) and
	// its access-log line; "" outside a request context.
	ReqID string
	// Duration is the wall time of the operation; 0 for administrative
	// actions that are not timed.
	Duration time.Duration
}

// record appends an audit entry without request correlation. It takes the
// audit lock itself, so it is safe to call with db.mu held in either mode
// (db.mu always orders before db.auditMu). Auditing is disabled with
// limit 0.
func (db *Database) record(user, action, detail, outcome string) {
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	db.recordFull(user, action, detail, outcome, "", 0)
}

// recordFull appends one fully annotated audit entry. Callers hold
// db.auditMu.
func (db *Database) recordFull(user, action, detail, outcome, reqID string, d time.Duration) {
	if db.auditLimit == 0 {
		return
	}
	db.auditSeq++
	db.audit = append(db.audit, AuditEntry{
		Seq: db.auditSeq, User: user, Action: action, Detail: detail, Outcome: outcome,
		ReqID: reqID, Duration: d,
	})
	if len(db.audit) > db.auditLimit {
		db.audit = db.audit[len(db.audit)-db.auditLimit:]
	}
	auditDepth.Set(int64(len(db.audit)))
}

// Audit returns a snapshot of the audit log, oldest first.
func (db *Database) Audit() []AuditEntry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.auditMu.Lock()
	defer db.auditMu.Unlock()
	return append([]AuditEntry(nil), db.audit...)
}

// --- sessions -----------------------------------------------------------------

// Session is an authenticated connection for one user.
type Session struct {
	db   *Database
	user string

	mu          sync.Mutex
	cached      *view.View
	cachedPerms *policy.Perms
	cachedVer   uint64
	cachedEpoch uint64
	cachedGen   uint64

	// maint is the compiled incremental maintainer for (policy epoch
	// maintEpoch); nil with maintReady=true means the policy is not
	// chain-only for this user and every doc change must re-materialize.
	maint      *view.Maintainer
	maintEpoch uint64
	maintReady bool
}

// Session opens a session for a declared user. Roles cannot log in.
func (db *Database) Session(user string) (*Session, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	kind, ok := db.subjects.KindOf(user)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	if kind != subject.User {
		return nil, fmt.Errorf("%w: %q is a role", ErrNotUser, user)
	}
	return &Session{db: db, user: user}, nil
}

// SharedSession returns the database's singleton session for user,
// creating it on first use. Unlike Session, repeated calls for the same
// user share one view cache, so a warmed view keeps serving every later
// request for that user (the server's request path and WarmSessions both
// go through here). Sessions are already safe for concurrent use.
func (db *Database) SharedSession(user string) (*Session, error) {
	db.sessMu.Lock()
	if s, ok := db.sessions[user]; ok {
		db.sessMu.Unlock()
		return s, nil
	}
	db.sessMu.Unlock()
	// Validate outside sessMu: Session takes db.mu, and holding both here
	// would order sessMu before db.mu on this path for no benefit.
	s, err := db.Session(user)
	if err != nil {
		return nil, err
	}
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	if prior, ok := db.sessions[user]; ok {
		return prior, nil
	}
	if db.sessions == nil {
		db.sessions = make(map[string]*Session)
	}
	db.sessions[user] = s
	return s, nil
}

// User returns the session's login.
func (s *Session) User() string { return s.user }

// vars returns the XPath bindings of the session ($USER, §4.3).
func (s *Session) vars() xpath.Vars {
	return xpath.Vars{"USER": xpath.String(s.user)}
}

// currentView returns the session's view, rebuilding it only when the
// document or the policy changed. A document change whose deltas are still
// in the log is absorbed by patching the cached view in place (axioms
// 15–17 re-run over the touched subtrees only); policy changes and
// document replacements always re-materialize. Callers must hold db.mu
// (read or write): patching happens under s.mu, and any later write that
// could patch again is excluded by db.mu for as long as the caller reads
// the returned view.
func (s *Session) currentView(ctx context.Context) (*view.View, error) {
	v, _, err := s.currentViewPerms(ctx)
	return v, err
}

// currentViewPerms is currentView exposing the axiom-14 permissions the
// view was derived from (the Explain layer re-reads the same cell the
// production path served). Callers must hold db.mu, exactly like
// currentView, and for the same reasons.
func (s *Session) currentViewPerms(ctx context.Context) (*view.View, *policy.Perms, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ver, epoch, gen := s.db.doc.Version(), s.db.policyEpoch, s.db.docGen
	if s.cached != nil && s.cachedGen == gen && s.cachedVer == ver && s.cachedEpoch == epoch {
		cacheHits.Inc()
		obs.AnnotateCtx(ctx, "view_source", "cache_hit")
		return s.cached, s.cachedPerms, nil
	}
	if s.cached != nil && s.cachedPerms != nil && s.cachedGen == gen && s.cachedEpoch == epoch &&
		s.tryIncremental(ctx, ver) {
		// Counted as xmlsec_view_incremental_applied_total by the view
		// package — neither a plain hit nor a materializing miss.
		obs.AnnotateCtx(ctx, "view_source", "incremental")
		return s.cached, s.cachedPerms, nil
	}
	switch {
	case s.cached == nil:
		cacheMissCold.Inc()
		obs.AnnotateCtx(ctx, "view_source", "materialize_cold")
	case s.cachedGen != gen || s.cachedVer != ver:
		cacheMissDoc.Inc()
		obs.AnnotateCtx(ctx, "view_source", "materialize_doc")
	default:
		cacheMissEpoch.Inc()
		obs.AnnotateCtx(ctx, "view_source", "materialize_epoch")
	}
	pm, err := s.db.policy.EvaluateSharedCtx(ctx, s.db.doc, s.db.subjects, s.user, s.db.sharedRuleCache())
	if err != nil {
		return nil, nil, err
	}
	s.cached = view.MaterializeCtx(ctx, s.db.doc, pm)
	s.cachedPerms = pm
	s.cachedVer = ver
	s.cachedEpoch = epoch
	s.cachedGen = gen
	return s.cached, s.cachedPerms, nil
}

// tryIncremental patches the cached view from s.cachedVer up to ver using
// the database delta log. It reports whether the cache is now current; on
// false the caller re-materializes (and the reason was counted). Callers
// hold s.mu and db.mu.
func (s *Session) tryIncremental(ctx context.Context, ver uint64) bool {
	if !s.maintReady || s.maintEpoch != s.cachedEpoch {
		s.maint, _ = view.NewMaintainer(s.db.policy, s.db.subjects, s.user)
		s.maintEpoch = s.cachedEpoch
		s.maintReady = true
	}
	if s.maint == nil {
		incFallbackIneligible.Inc()
		obs.AnnotateCtx(ctx, "incremental_fallback", "ineligible")
		return false
	}
	chain, ok := s.db.deltaChain(s.cachedVer, ver)
	if !ok {
		incFallbackGap.Inc()
		obs.AnnotateCtx(ctx, "incremental_fallback", "gap")
		return false
	}
	for _, deltas := range chain {
		if err := s.maint.ApplyCtx(ctx, s.cached, s.db.doc, s.cachedPerms, deltas); err != nil {
			// The view may be half-patched: poison it so the rebuild below
			// starts cold instead of serving damaged state.
			s.cached = nil
			s.cachedPerms = nil
			incFallbackError.Inc()
			obs.AnnotateCtx(ctx, "incremental_fallback", "error")
			return false
		}
	}
	s.cachedVer = ver
	return true
}

// View returns an independent snapshot of the user's current view. The
// session cache patches its view in place on document updates, so the
// cached instance cannot be handed out of the lock's scope.
func (s *Session) View() (*view.View, error) {
	return s.ViewCtx(context.Background())
}

// ViewCtx is View with a request context: a failed materialization is
// audited with the context's request ID (successes are not audited —
// views are rebuilt implicitly on most operations and would drown the
// log).
func (s *Session) ViewCtx(ctx context.Context) (*view.View, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_view", viewStage)
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	v, err := s.currentView(ctx)
	if err != nil {
		sessionOp("view", "error")
		s.db.recordCtx(ctx, "view", s.user, "", "error: "+err.Error(), sp.End())
		return nil, err
	}
	sp.End()
	sessionOp("view", "ok")
	return v.Snapshot(), nil
}

// ViewXML serializes the user's view.
func (s *Session) ViewXML() (string, error) {
	return s.ViewXMLCtx(context.Background())
}

// ViewXMLCtx is ViewXML with a request context. Serialization happens
// under the database read lock, against the shared cached view — no
// snapshot copy.
func (s *Session) ViewXMLCtx(ctx context.Context) (string, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_view", viewStage)
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	v, err := s.currentView(ctx)
	if err != nil {
		sessionOp("view", "error")
		s.db.recordCtx(ctx, "view", s.user, "", "error: "+err.Error(), sp.End())
		return "", err
	}
	sp.End()
	sessionOp("view", "ok")
	return v.Doc.XML(), nil
}

// Result is one node matched by a query, described without exposing
// internal identifiers.
type Result struct {
	Kind  xmltree.Kind
	Label string
	Path  string // view path, e.g. /patients/RESTRICTED/diagnosis
	Value string // XPath string-value
}

// Query evaluates an XPath expression and returns the matching nodes as
// the user's view shows them (§4.4.1). Queries route through a three-tier
// read ladder — static rewrite over the source document, qfilter security
// filter, materialized view — whose tiers are answer-equivalent (pinned by
// internal/rewrite's differential oracle and internal/qfilter's property
// tests), so the tier choice is invisible except in latency and the
// xmlsec_query_tier_total counters.
func (s *Session) Query(path string) ([]Result, error) {
	return s.QueryCtx(context.Background(), path)
}

// QueryCtx is Query with a request context: the request ID (if any) is
// threaded into the audit entry alongside the operation's duration.
func (s *Session) QueryCtx(ctx context.Context, path string) ([]Result, error) {
	out, _, err := s.QueryTieredCtx(ctx, path)
	return out, err
}

// QueryTiered is Query also reporting which ladder tier served the answer.
func (s *Session) QueryTiered(path string) ([]Result, Tier, error) {
	return s.QueryTieredCtx(context.Background(), path)
}

// QueryTieredCtx evaluates path through the read ladder:
//
//  1. The static rewrite runs the query on the source document with the
//     policy compiled into a chain-derived security filter — no per-node
//     permission mask, no view; plans are cached per (policy epoch, rule
//     profile, query), independent of the document and of user count.
//  2. Outside the rewriter's fragment, the qfilter path evaluates on the
//     source under the user's axiom-14 mask (skipped when the session's
//     cached view is already current — then the view is free).
//  3. Otherwise the materialized view serves, warming the session cache.
func (s *Session) QueryTieredCtx(ctx context.Context, path string) ([]Result, Tier, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_query", queryStage)
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	fail := func(tier Tier, err error) ([]Result, Tier, error) {
		sessionOp("query", "error")
		s.db.recordCtx(ctx, "query", s.user, path, "error: "+err.Error(), sp.End())
		return nil, tier, err
	}
	done := func(tier Tier, out []Result) ([]Result, Tier, error) {
		countTier(tier)
		sp.Annotate("query_tier", tier.String())
		sessionOp("query", "ok")
		s.db.recordCtx(ctx, "query", s.user, path, fmt.Sprintf("%d nodes", len(out)), sp.End())
		return out, tier, nil
	}

	// Tier 1: static rewrite.
	if pg, _ := s.db.rewriteEngine().ProgramFor(s.user); pg != nil {
		pl, err := pg.PlanFor(path)
		if err != nil {
			return fail(TierRewrite, err) // compile errors are tier-independent
		}
		switch pl.Mode {
		case rewrite.PlanEmpty:
			return done(TierRewrite, []Result{})
		case rewrite.PlanTransparent:
			_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
			ns, err := pl.Select(s.db.doc.Root(), s.vars(), nil)
			xe.AnnotateInt("selected", int64(len(ns)))
			xe.End()
			if err == nil {
				return done(TierRewrite, filteredResults(ns, nil))
			}
			rewrite.CountFallback(rewrite.ReasonEvalError)
		default:
			sec, st := pg.Security(s.vars())
			_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
			ns, err := pl.Select(s.db.doc.Root(), s.vars(), sec)
			xe.AnnotateInt("selected", int64(len(ns)))
			xe.End()
			if err == nil && st.Err() == nil {
				return done(TierRewrite, filteredResults(ns, sec))
			}
			rewrite.CountFallback(rewrite.ReasonEvalError)
		}
	} else {
		rewrite.CountFallback(rewrite.ReasonRuleFragment)
	}

	// Tier 2: qfilter, unless the cached view is already current.
	if !s.viewFresh() {
		pm, err := s.db.policy.EvaluateSharedCtx(ctx, s.db.doc, s.db.subjects, s.user, s.db.sharedRuleCache())
		if err != nil {
			return fail(TierQfilter, err)
		}
		c, err := xpath.Compile(path)
		if err != nil {
			return fail(TierQfilter, err)
		}
		sec := qfilter.ForPerms(pm)
		_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
		ns, err := c.SelectFiltered(s.db.doc.Root(), s.vars(), sec)
		xe.AnnotateInt("selected", int64(len(ns)))
		xe.End()
		if err != nil {
			return fail(TierQfilter, err)
		}
		return done(TierQfilter, filteredResults(ns, sec))
	}

	// Tier 3: the materialized view.
	v, err := s.currentView(ctx)
	if err != nil {
		return fail(TierView, err)
	}
	_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
	ns, err := xpath.Select(v.Doc, path, s.vars())
	xe.AnnotateInt("selected", int64(len(ns)))
	xe.End()
	if err != nil {
		return fail(TierView, err)
	}
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{Kind: n.Kind(), Label: n.Label(), Path: n.Path(), Value: n.StringValue()}
	}
	return done(TierView, out)
}

// filteredResults renders source nodes exactly as the user's materialized
// view would show them: effective labels, filtered string-values, view
// paths. A nil sec means the profile is transparent (stored labels).
func filteredResults(ns xpath.NodeSet, sec *xpath.Security) []Result {
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{
			Kind:  n.Kind(),
			Label: sec.EffectiveLabel(n),
			Path:  sec.Path(n),
			Value: sec.StringValue(n),
		}
	}
	return out
}

// viewFresh reports whether the session's cached view matches the current
// (docGen, version, epoch) exactly — without materializing or patching
// anything. Callers hold db.mu.
func (s *Session) viewFresh() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cached != nil && s.cachedGen == s.db.docGen &&
		s.cachedVer == s.db.doc.Version() && s.cachedEpoch == s.db.policyEpoch
}

// QueryValue evaluates an XPath expression that may yield an atomic value
// (count(), boolean tests, string()...) against the user's view, through
// the same read ladder as Query. Non-empty node-set values always come
// from the materialized view: handing out raw source nodes would leak
// hidden labels.
func (s *Session) QueryValue(path string) (xpath.Value, error) {
	return s.QueryValueCtx(context.Background(), path)
}

// QueryValueCtx is QueryValue with a request context: the request ID (if
// any) is threaded into the audit entry alongside the operation's
// duration.
func (s *Session) QueryValueCtx(ctx context.Context, path string) (xpath.Value, error) {
	val, _, err := s.QueryValueTieredCtx(ctx, path)
	return val, err
}

// QueryValueTiered is QueryValue also reporting the serving tier.
func (s *Session) QueryValueTiered(path string) (xpath.Value, Tier, error) {
	return s.QueryValueTieredCtx(context.Background(), path)
}

// QueryValueTieredCtx evaluates an arbitrary expression through the read
// ladder (see QueryTieredCtx). Atomic values are served by the first tier
// that succeeds; a non-empty node-set forces the view tier.
func (s *Session) QueryValueTieredCtx(ctx context.Context, path string) (xpath.Value, Tier, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_query_value", valueStage)
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	fail := func(tier Tier, err error) (xpath.Value, Tier, error) {
		sessionOp("query_value", "error")
		s.db.recordCtx(ctx, "query_value", s.user, path, "error: "+err.Error(), sp.End())
		return nil, tier, err
	}
	done := func(tier Tier, val xpath.Value) (xpath.Value, Tier, error) {
		countTier(tier)
		sp.Annotate("query_tier", tier.String())
		sessionOp("query_value", "ok")
		s.db.recordCtx(ctx, "query_value", s.user, path, val.TypeName(), sp.End())
		return val, tier, nil
	}

	// Tier 1: static rewrite.
	nodeSetValue := false
	if pg, _ := s.db.rewriteEngine().ProgramFor(s.user); pg != nil {
		pl, err := pg.PlanFor(path)
		if err != nil {
			return fail(TierRewrite, err)
		}
		if pl.Mode == rewrite.PlanEmpty {
			// Empty plans only arise from path expressions, whose value is
			// a node-set — here the provably empty one.
			return done(TierRewrite, xpath.NodeSet(nil))
		}
		var sec *xpath.Security
		var st *rewrite.EvalState
		if pl.Mode == rewrite.PlanGuarded {
			sec, st = pg.Security(s.vars())
		}
		_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
		val, err := pl.Eval(s.db.doc.Root(), s.vars(), sec)
		xe.End()
		stErr := error(nil)
		if st != nil {
			stErr = st.Err()
		}
		switch {
		case err != nil || stErr != nil:
			rewrite.CountFallback(rewrite.ReasonEvalError)
		default:
			if ns, ok := val.(xpath.NodeSet); ok && len(ns) > 0 {
				nodeSetValue = true
				rewrite.CountFallback(rewrite.ReasonNodeSetValue)
			} else {
				return done(TierRewrite, val)
			}
		}
	} else {
		rewrite.CountFallback(rewrite.ReasonRuleFragment)
	}

	// Tier 2: qfilter — pointless for node-set values (it would also
	// produce source nodes) and skipped when the cached view is current.
	if !nodeSetValue && !s.viewFresh() {
		pm, err := s.db.policy.EvaluateSharedCtx(ctx, s.db.doc, s.db.subjects, s.user, s.db.sharedRuleCache())
		if err != nil {
			return fail(TierQfilter, err)
		}
		c, err := xpath.Compile(path)
		if err != nil {
			return fail(TierQfilter, err)
		}
		_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
		val, err := c.EvalFiltered(s.db.doc.Root(), s.vars(), qfilter.ForPerms(pm))
		xe.End()
		if err != nil {
			return fail(TierQfilter, err)
		}
		if ns, ok := val.(xpath.NodeSet); !ok || len(ns) == 0 {
			return done(TierQfilter, val)
		}
	}

	// Tier 3: the materialized view.
	v, err := s.currentView(ctx)
	if err != nil {
		return fail(TierView, err)
	}
	c, err := xpath.Compile(path)
	if err != nil {
		return fail(TierView, err)
	}
	_, xe := obs.StartSpanCtx(ctx, "xpath_eval", xpathStage)
	val, err := c.Eval(v.Doc.Root(), s.vars())
	xe.End()
	if err != nil {
		return fail(TierView, err)
	}
	return done(TierView, val)
}

// recordCtx is record with the context's request ID and a duration.
func (db *Database) recordCtx(ctx context.Context, action, user, detail, outcome string, d time.Duration) {
	db.auditMu.Lock()
	db.recordFull(user, action, detail, outcome, obs.RequestID(ctx), d)
	db.auditMu.Unlock()
}

// Update executes one XUpdate operation with the paper's write access
// controls (axioms 18–25). It returns the per-node result.
func (s *Session) Update(op *xupdate.Op) (*xupdate.Result, error) {
	return s.UpdateCtx(context.Background(), op)
}

// UpdateCtx is Update with a request context (request ID into the audit
// entry, duration into the telemetry registry).
func (s *Session) UpdateCtx(ctx context.Context, op *xupdate.Op) (*xupdate.Result, error) {
	res, err := s.updateWithVars(ctx, op, nil)
	if err == nil && s.db.journal != nil && res.Applied > 0 {
		if jerr := s.journalOp(ctx, op); jerr != nil {
			return res, fmt.Errorf("core: operation applied but journaling failed: %w", jerr)
		}
	}
	return res, err
}

// journalOp appends a single-operation modification document.
func (s *Session) journalOp(ctx context.Context, op *xupdate.Op) error {
	doc, err := xupdate.ModificationsString([]*xupdate.Op{op})
	if err != nil {
		return err
	}
	_, err = s.db.journal.AppendCtx(ctx, s.user, doc)
	return err
}

func (s *Session) updateWithVars(ctx context.Context, op *xupdate.Op, extra xpath.Vars) (*xupdate.Result, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_update", updateStage)
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	fromVer := s.db.doc.Version()
	res, _, err := access.ExecuteWithVarsCtx(ctx, s.db.doc, s.db.subjects, s.db.policy, s.user, op, extra)
	if err != nil {
		// A failed executor may have partially mutated the document; no
		// batch is recorded, so the version gap forces session caches to
		// re-materialize (deltaChain reports the gap).
		sessionOp("update", "error")
		s.db.recordCtx(ctx, "update", s.user, opDetail(op), "error: "+err.Error(), sp.End())
		return nil, err
	}
	if toVer := s.db.doc.Version(); toVer != fromVer {
		s.db.pushDeltaBatch(fromVer, toVer, res.Deltas)
	}
	sessionOp("update", "ok")
	s.db.recordCtx(ctx, "update", s.user, opDetail(op),
		fmt.Sprintf("selected=%d applied=%d skipped=%d", res.Selected, res.Applied, len(res.Skipped)),
		sp.End())
	return res, nil
}

// Apply parses an <xupdate:modifications> document and executes its
// operations in order, returning one result per operation (a zero result
// for xupdate:variable bindings, which are threaded through the sequence
// and evaluated against the user's view). Execution stops at the first
// hard error; privilege refusals are not errors (they appear as skipped
// nodes in the results).
func (s *Session) Apply(modifications string) ([]*xupdate.Result, error) {
	return s.ApplyCtx(context.Background(), modifications)
}

// ApplyCtx is Apply with a request context.
func (s *Session) ApplyCtx(ctx context.Context, modifications string) ([]*xupdate.Result, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_apply", applyStage)
	results, err := s.apply(ctx, modifications)
	if err != nil {
		sp.End()
		sessionOp("apply", "error")
		return results, err
	}
	sp.End()
	sessionOp("apply", "ok")
	if s.db.journal != nil && anyApplied(results) {
		if _, jerr := s.db.journal.AppendCtx(ctx, s.user, modifications); jerr != nil {
			return results, fmt.Errorf("core: modifications applied but journaling failed: %w", jerr)
		}
	}
	return results, nil
}

func anyApplied(results []*xupdate.Result) bool {
	for _, r := range results {
		if r.Applied > 0 {
			return true
		}
	}
	return false
}

// apply executes a modification document without journaling (used by Apply
// and by journal replay).
func (s *Session) apply(ctx context.Context, modifications string) ([]*xupdate.Result, error) {
	ops, err := xupdate.ParseModificationsString(modifications)
	if err != nil {
		return nil, err
	}
	env := xpath.Vars{}
	results := make([]*xupdate.Result, 0, len(ops))
	for _, op := range ops {
		if op.Kind == xupdate.Variable {
			if err := op.Validate(); err != nil {
				return results, err
			}
			v, err := s.ViewCtx(ctx)
			if err != nil {
				return results, err
			}
			val, err := op.BindVariable(v.Doc.Root(), mergeUser(env, s.user))
			if err != nil {
				return results, err
			}
			env[op.VarName()] = val
			results = append(results, &xupdate.Result{})
			continue
		}
		res, err := s.updateWithVars(ctx, op, env)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// mergeUser returns env plus the $USER binding.
func mergeUser(env xpath.Vars, user string) xpath.Vars {
	out := make(xpath.Vars, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out["USER"] = xpath.String(user)
	return out
}

func opDetail(op *xupdate.Op) string {
	switch op.Kind {
	case xupdate.Rename, xupdate.Update:
		return fmt.Sprintf("%s select=%s vnew=%s", op.Kind, op.Select, op.NewValue)
	default:
		return fmt.Sprintf("%s select=%s", op.Kind, op.Select)
	}
}

// ApplyAs implements journal.Applier: it executes a logged modification
// document as the given user through the normal security path, without
// re-journaling. Used by Recover.
func (db *Database) ApplyAs(user, modifications string) error {
	s, err := db.Session(user)
	if err != nil {
		return err
	}
	_, err = s.apply(context.Background(), modifications)
	return err
}

// Recover rebuilds state from a snapshot plus its journal suffix: the
// snapshot is restored, then every journal entry is re-executed through
// the security path. It returns the database and the last replayed
// sequence number (pass it to WithJournal to continue the same log).
// A torn final journal entry (crash during append) is tolerated: the
// intact prefix is applied.
func Recover(snapshot, journalLog io.Reader, opts ...Option) (*Database, uint64, error) {
	db, err := Open(snapshot, opts...)
	if err != nil {
		return nil, 0, err
	}
	entries, err := journal.Read(journalLog)
	if err != nil && !errors.Is(err, journal.ErrCorrupt) {
		return nil, 0, err
	}
	torn := err != nil
	applied, lastSeq, err := journal.Replay(db, entries)
	if err != nil {
		return nil, lastSeq, err
	}
	detail := fmt.Sprintf("replayed %d entries", applied)
	if torn {
		detail += " (torn tail discarded)"
	}
	db.record("system", "recover", detail, "ok")
	return db, lastSeq, nil
}

// AttachJournal attaches (or replaces) the operation log on an existing
// database — the recovery sequence is: Recover(snapshot, journal), then
// AttachJournal(appendHandle, lastSeq) to continue the same log. Like the
// journal Option, it must run before the database serves concurrent
// requests: the journal handle is read without a lock on the update path.
func (db *Database) AttachJournal(w io.Writer, seqStart uint64) {
	db.journal = journal.NewWriter(w, seqStart)
}

// Transform runs an XSLT stylesheet as the session user through the §5
// security-processor path: the stylesheet executes against the source
// document but observes only the user's authorized view (qfilter.ForPerms
// over the axiom-14 permissions). No intermediate view is materialized.
func (s *Session) Transform(stylesheet string) (string, error) {
	return s.TransformCtx(context.Background(), stylesheet)
}

// TransformCtx is Transform with a request context.
func (s *Session) TransformCtx(ctx context.Context, stylesheet string) (string, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "session_transform", transformStage)
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		sp.End()
		sessionOp("transform", "error")
		return "", err
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	pm, err := s.db.policy.EvaluateSharedCtx(ctx, s.db.doc, s.db.subjects, s.user, s.db.sharedRuleCache())
	if err != nil {
		sp.End()
		sessionOp("transform", "error")
		return "", err
	}
	out, err := sheet.TransformString(s.db.doc, s.vars(), qfilter.ForPerms(pm))
	if err != nil {
		sessionOp("transform", "error")
		s.db.recordCtx(ctx, "transform", s.user, "stylesheet", "error: "+err.Error(), sp.End())
		return "", err
	}
	sessionOp("transform", "ok")
	s.db.recordCtx(ctx, "transform", s.user, "stylesheet", fmt.Sprintf("%d bytes", len(out)), sp.End())
	return out, nil
}
