package core

import (
	"context"
	"strings"
	"testing"

	"securexml/internal/obs"
	"securexml/internal/policy"
)

// findPriv returns the privilege story with the given name.
func findPriv(t *testing.T, ne NodeExplanation, name string) policy.PrivilegeStory {
	t.Helper()
	for _, ps := range ne.Privileges {
		if ps.Privilege == name {
			return ps
		}
	}
	t.Fatalf("node %s has no %q story", ne.Path, name)
	return policy.PrivilegeStory{}
}

// TestExplainPaperScenario checks the provenance stories on the paper's
// hospital policy: the secretary's diagnosis denial (axiom 14: the revoke
// defeats the staff-wide grant), the RESTRICTED verdict it produces, and
// the patient's $USER-overlay cells.
func TestExplainPaperScenario(t *testing.T) {
	db := hospital(t)

	sec := session(t, db, "beaufort")
	ex, err := sec.Explain("//diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Consistent {
		t.Fatalf("secretary explain inconsistent: %+v", ex)
	}
	if ex.User != "beaufort" || ex.RulesApplicable == 0 || len(ex.Nodes) != 2 {
		t.Fatalf("explain header: %+v", ex)
	}
	for _, ne := range ex.Nodes {
		read := findPriv(t, ne, "read")
		if read.Granted || read.Winner == nil {
			t.Fatalf("secretary read on %s: %+v", ne.Path, read)
		}
		if !strings.Contains(read.Winner.Rule, "deny") || !strings.Contains(read.Winner.Rule, "secretary") {
			t.Fatalf("winner should be the secretary deny rule: %s", read.Winner.Rule)
		}
		if len(read.Defeated) == 0 || !strings.Contains(read.Defeated[0].Rule, "staff") {
			t.Fatalf("the staff-wide grant should be defeated: %+v", read.Defeated)
		}
		if read.Winner.Priority <= read.Defeated[0].Priority {
			t.Fatal("axiom 14: the winner must carry the latest priority")
		}
		pos := findPriv(t, ne, "position")
		if !pos.Granted {
			t.Fatalf("secretary position on %s: %+v", ne.Path, pos)
		}
		if ne.Visibility != VerdictRestricted {
			t.Fatalf("diagnosis content verdict = %q, want %q", ne.Visibility, VerdictRestricted)
		}
	}

	// Doctor: plain staff read, fully visible.
	doc := session(t, db, "laporte")
	dex, err := doc.Explain("//diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if !dex.Consistent {
		t.Fatalf("doctor explain inconsistent: %+v", dex)
	}
	for _, ne := range dex.Nodes {
		if ne.Visibility != VerdictVisible || !findPriv(t, ne, "read").Granted {
			t.Fatalf("doctor should read diagnosis content: %+v", ne)
		}
	}

	// Patient robert: own subtree readable through the $USER rule (an
	// overlay cell), franck's subtree hidden with no addressing rule.
	pat := session(t, db, "robert")
	own, err := pat.Explain("/patients/robert/diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if !own.Consistent || len(own.Nodes) != 1 {
		t.Fatalf("patient explain: %+v", own)
	}
	ne := own.Nodes[0]
	if ne.Visibility != VerdictVisible || ne.Origin != "overlay" {
		t.Fatalf("patient's own diagnosis: visibility=%q origin=%q, want visible/overlay", ne.Visibility, ne.Origin)
	}
	if w := findPriv(t, ne, "read").Winner; w == nil || !strings.Contains(w.Rule, "$USER") {
		t.Fatalf("patient read winner should be the $USER rule: %+v", w)
	}
	other, err := pat.Explain("/patients/franck/diagnosis/text()")
	if err != nil {
		t.Fatal(err)
	}
	if !other.Consistent || len(other.Nodes) != 1 {
		t.Fatalf("patient cross-read explain: %+v", other)
	}
	one := other.Nodes[0]
	if one.Visibility == VerdictVisible || one.Visibility == VerdictRestricted {
		t.Fatalf("franck's diagnosis must not be in robert's view: %q", one.Visibility)
	}
	if findPriv(t, one, "read").Granted {
		t.Fatal("closed world: no rule grants robert read on franck's data")
	}
}

// TestExplainDifferentialOracle is the oracle the issue demands: for
// seeded random 4-quadrant policies, the re-derived provenance winner must
// equal the Evaluate/EvaluateShared cell for every (user, node, privilege)
// and the axiom 15–17 verdict must match Materialize node-for-node — both
// cross-checks run inside explainNode, so Consistent==true over every node
// of the document is the assertion.
func TestExplainDifferentialOracle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		db := randomExplainDB(t, seed)
		for _, user := range db.Users() {
			s := session(t, db, user)
			ex, err := s.ExplainCtx(context.Background(), "/descendant-or-self::node()")
			if err != nil {
				t.Fatalf("seed %d user %s: %v", seed, user, err)
			}
			if len(ex.Nodes) == 0 {
				t.Fatalf("seed %d user %s: no nodes explained", seed, user)
			}
			for _, ne := range ex.Nodes {
				if !ne.Consistent {
					t.Errorf("seed %d user %s node %s: %v", seed, user, ne.Path, ne.Mismatches)
				}
				switch ne.Origin {
				case "overlay", "shared-profile", "private":
				default:
					t.Errorf("seed %d user %s node %s: bad origin %q", seed, user, ne.Path, ne.Origin)
				}
			}
			if !ex.Consistent {
				t.Fatalf("seed %d user %s: provenance disagrees with production", seed, user)
			}
		}
	}
}

// randomExplainDB mirrors the shared-scan test generator on the public
// API: rules drawn from a pool spanning all four quadrants of the
// shared-scan partition, (chain-only | fallback) × ($USER-independent |
// $USER-dependent), so the oracle exercises bank walks, per-rule
// fallbacks, shared profiles and overlays alike.
func randomExplainDB(t *testing.T, seed int64) *Database {
	t.Helper()
	db := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.LoadXMLString(`<patients>` +
		`<franck><service>oto</service><diagnosis>tonsillitis</diagnosis><record><note>n1</note></record></franck>` +
		`<robert><service>pneumo</service><diagnosis>pneumonia</diagnosis><record>r2</record></robert>` +
		`</patients>`))
	must(db.AddRole("staff"))
	must(db.AddRole("secretary", "staff"))
	must(db.AddRole("doctor", "staff"))
	must(db.AddRole("epidemiologist", "staff"))
	must(db.AddRole("patient"))
	must(db.AddUser("beaufort", "secretary"))
	must(db.AddUser("laporte", "doctor"))
	must(db.AddUser("franck", "patient"))
	must(db.AddUser("robert", "patient"))
	paths := []string{
		"/patients",
		"//service",
		"//diagnosis/node()",
		"/patients/*/record",
		"//record[starts-with(name(), 'rec')]",
		"/patients/*[name() = $USER]/descendant-or-self::node()",
		"/patients/*[name() = $USER]",
		"/patients/*[1]",
		"//record[note]",
		"/patients/*[name() = $USER]/record[note]",
	}
	subjects := []string{"staff", "secretary", "doctor", "patient", "epidemiologist"}
	n := 8 + int(seed%5)
	for i := 0; i < n; i++ {
		path := paths[(int(seed)+i*7)%len(paths)]
		priv := policy.Privileges[(int(seed)+i)%len(policy.Privileges)]
		subj := subjects[(int(seed)+i*3)%len(subjects)]
		if (int(seed)+i)%3 == 0 {
			must(db.Revoke(priv, path, subj))
		} else {
			must(db.Grant(priv, path, subj))
		}
	}
	return db
}

func TestExplainErrors(t *testing.T) {
	db := hospital(t)
	s := session(t, db, "laporte")
	if _, err := s.Explain("///"); err == nil {
		t.Fatal("bad xpath must error")
	}
	// The error lands in the audit trail like every session op.
	found := false
	for _, e := range db.Audit() {
		if e.Action == "explain" && strings.HasPrefix(e.Outcome, "error") {
			found = true
		}
	}
	if !found {
		t.Fatal("failed explain not audited")
	}
}

// TestExplainDoesNotCountDecisions: the diagnostic path must not inflate
// the enforcement counters (PeekID, not HasID).
func TestExplainDoesNotCountDecisions(t *testing.T) {
	db := hospital(t)
	s := session(t, db, "laporte")
	if _, err := s.View(); err != nil { // warm the view outside Explain
		t.Fatal(err)
	}
	before := decisionCount()
	if _, err := s.Explain("//diagnosis"); err != nil {
		t.Fatal(err)
	}
	if after := decisionCount(); after != before {
		t.Fatalf("explain moved xmlsec_policy_decisions_total %d -> %d", before, after)
	}
}

func decisionCount() uint64 {
	var total uint64
	for _, c := range obs.Default().Snapshot().Counters {
		if c.Name == "xmlsec_policy_decisions_total" {
			total += c.Value
		}
	}
	return total
}

// TestExplainTracesSpans: under an active trace the explain call shows up
// as a session_explain span (the diagnostic path is itself observable).
func TestExplainTracesSpans(t *testing.T) {
	db := hospital(t)
	s := session(t, db, "laporte")
	tracer := obs.NewTracer(4, 0, nil)
	ctx, trace := tracer.StartTrace(context.Background(), "test_explain")
	if _, err := s.ExplainCtx(ctx, "//diagnosis"); err != nil {
		t.Fatal(err)
	}
	trace.Finish()
	ex := trace.Export()
	if len(ex.Root.Children) != 1 || ex.Root.Children[0].Name != "session_explain" {
		t.Fatalf("trace children: %+v", ex.Root.Children)
	}
}
