package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"securexml/internal/labeling"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// Scheme is the labeling scheme to number nodes with; nil means fracpath.
	Scheme labeling.Scheme
	// KeepWhitespace keeps whitespace-only text nodes. By default they are
	// dropped, matching the paper's data-centric tree model.
	KeepWhitespace bool
	// KeepComments keeps comment nodes. By default they are dropped.
	KeepComments bool
	// Fragment allows several top-level elements.
	Fragment bool
	// KeepPrefixes labels namespaced elements and attributes as
	// "<space>:<local>", where <space> is the resolved namespace URL (or
	// the verbatim prefix when undeclared). Default parsing keeps local
	// names only, matching the paper's namespace-free model; stylesheet
	// parsing (internal/xslt) needs to tell xsl: instructions from literal
	// result elements.
	KeepPrefixes bool
}

// prefixedName renders a name under the KeepPrefixes convention.
func prefixedName(n xml.Name, keep bool) string {
	if keep && n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// Parse reads an XML document from r into a tree, numbering every node with
// a persistent identifier as it is created.
func Parse(r io.Reader, opts ParseOptions) (*Document, error) {
	var d *Document
	if opts.Fragment {
		d = NewFragment(opts.Scheme)
	} else {
		d = New(opts.Scheme)
	}
	dec := xml.NewDecoder(r)
	cur := d.root
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el, err := d.AppendChild(cur, KindElement, prefixedName(t.Name, opts.KeepPrefixes))
			if err != nil {
				return nil, fmt.Errorf("xmltree: parse <%s>: %w", t.Name.Local, err)
			}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue // namespace declarations are not attributes here
				}
				if _, err := d.SetAttribute(el, prefixedName(a.Name, opts.KeepPrefixes), a.Value); err != nil {
					return nil, fmt.Errorf("xmltree: parse attribute %s: %w", a.Name.Local, err)
				}
			}
			cur = el
		case xml.EndElement:
			if cur.kind != KindElement {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element </%s>", t.Name.Local)
			}
			cur = cur.parent
		case xml.CharData:
			text := string(t)
			if !opts.KeepWhitespace && strings.TrimSpace(text) == "" {
				continue
			}
			if cur.kind == KindDocument && !opts.Fragment {
				continue // ignore stray top-level text outside fragments
			}
			if _, err := d.AppendChild(cur, KindText, text); err != nil {
				return nil, fmt.Errorf("xmltree: parse text: %w", err)
			}
		case xml.Comment:
			if !opts.KeepComments || cur.kind == KindDocument {
				continue
			}
			if _, err := d.AppendChild(cur, KindComment, string(t)); err != nil {
				return nil, fmt.Errorf("xmltree: parse comment: %w", err)
			}
		case xml.ProcInst, xml.Directive:
			// Prologue noise; outside the model.
		}
	}
	if cur != d.root {
		return nil, fmt.Errorf("xmltree: parse: unexpected EOF inside <%s>", cur.label)
	}
	if !opts.Fragment && d.RootElement() == nil {
		return nil, fmt.Errorf("xmltree: parse: document has no root element")
	}
	return d, nil
}

// ParseString is Parse over a string.
func ParseString(s string, opts ParseOptions) (*Document, error) {
	return Parse(strings.NewReader(s), opts)
}

// MustParse parses s with default options and panics on error. For tests and
// examples.
func MustParse(s string) *Document {
	d, err := ParseString(s, ParseOptions{})
	if err != nil {
		panic(err)
	}
	return d
}

// MustParseFragment parses a multi-rooted fragment and panics on error.
func MustParseFragment(s string) *Document {
	d, err := ParseString(s, ParseOptions{Fragment: true})
	if err != nil {
		panic(err)
	}
	return d
}
