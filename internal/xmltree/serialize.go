package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// WriteOptions controls serialization.
type WriteOptions struct {
	// Indent pretty-prints with the given unit (e.g. "  "). Empty writes a
	// compact single line.
	Indent string
	// ShowIDs annotates every element with a sxml:id attribute carrying its
	// persistent identifier. Useful for debugging and the demo binary; the
	// identifiers are normally internal only (§4.4.1: "numbers are for
	// internal processing only and are not visible to users").
	ShowIDs bool
}

// Write serializes the document (or fragment) to w.
func (d *Document) Write(w io.Writer, opts WriteOptions) error {
	for _, c := range d.root.children {
		if err := writeNode(w, c, opts, 0); err != nil {
			return err
		}
		if opts.Indent != "" {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// XML returns the serialized document as a string, pretty-printed with
// two-space indentation.
func (d *Document) XML() string {
	var b strings.Builder
	if err := d.Write(&b, WriteOptions{Indent: "  "}); err != nil {
		return "<!-- serialization error: " + err.Error() + " -->"
	}
	return b.String()
}

// CompactXML returns the document on a single line.
func (d *Document) CompactXML() string {
	var b strings.Builder
	if err := d.Write(&b, WriteOptions{}); err != nil {
		return "<!-- serialization error: " + err.Error() + " -->"
	}
	return b.String()
}

// hasTextChild reports whether n has a direct text child (mixed content).
func hasTextChild(n *Node) bool {
	for _, c := range n.children {
		if c.kind == KindText {
			return true
		}
	}
	return false
}

func writeNode(w io.Writer, n *Node, opts WriteOptions, depth int) error {
	pad := ""
	nl := ""
	if opts.Indent != "" {
		pad = strings.Repeat(opts.Indent, depth)
		nl = "\n"
	}
	switch n.kind {
	case KindText:
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(n.label)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s%s", pad, esc.String())
		return err
	case KindComment:
		_, err := fmt.Fprintf(w, "%s<!--%s-->", pad, n.label)
		return err
	case KindElement:
		if _, err := fmt.Fprintf(w, "%s<%s", pad, n.label); err != nil {
			return err
		}
		if opts.ShowIDs {
			if _, err := fmt.Fprintf(w, " sxml:id=%q", n.id.String()); err != nil {
				return err
			}
		}
		for _, a := range n.attrs {
			var esc strings.Builder
			if err := xml.EscapeText(&esc, []byte(a.StringValue())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, " %s=%q", a.label, esc.String()); err != nil {
				return err
			}
		}
		if len(n.children) == 0 {
			_, err := io.WriteString(w, "/>")
			return err
		}
		// Mixed content (any text child) renders inline: indentation would
		// inject whitespace into the character data.
		if hasTextChild(n) {
			if _, err := io.WriteString(w, ">"); err != nil {
				return err
			}
			inline := opts
			inline.Indent = ""
			for _, c := range n.children {
				if err := writeNode(w, c, inline, 0); err != nil {
					return err
				}
			}
			_, err := fmt.Fprintf(w, "</%s>", n.label)
			return err
		}
		if _, err := io.WriteString(w, ">"+nl); err != nil {
			return err
		}
		for _, c := range n.children {
			if err := writeNode(w, c, opts, depth+1); err != nil {
				return err
			}
			if _, err := io.WriteString(w, nl); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s</%s>", pad, n.label)
		return err
	case KindAttribute:
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(n.StringValue())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s%s=%q", pad, n.label, esc.String())
		return err
	default:
		return fmt.Errorf("xmltree: cannot serialize %s node", n.kind)
	}
}

// Sketch renders the tree in the indented "node facts" style used by the
// paper's figures: one line per node with its identifier and label, e.g.
//
//	/                    document
//	  /a0                patients
//	    /a0/a0           franck
//
// It is what cmd/xmlsec-demo prints when reproducing Fig. 1 and Fig. 2.
func (d *Document) Sketch() string {
	var b strings.Builder
	d.root.Walk(func(n *Node) bool {
		indent := strings.Repeat("  ", n.id.Level())
		switch n.kind {
		case KindDocument:
			fmt.Fprintf(&b, "%s%-24s document\n", indent, n.id.String())
		case KindText:
			fmt.Fprintf(&b, "%s%-24s text()  %s\n", indent, n.id.String(), n.label)
		case KindAttribute:
			fmt.Fprintf(&b, "%s%-24s @%s\n", indent, n.id.String(), n.label)
		case KindComment:
			fmt.Fprintf(&b, "%s%-24s comment()\n", indent, n.id.String())
		default:
			fmt.Fprintf(&b, "%s%-24s %s\n", indent, n.id.String(), n.label)
		}
		return true
	})
	return b.String()
}
