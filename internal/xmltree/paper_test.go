package xmltree

// Reproduction of the paper's Fig. 2 sample database and the node/geometry
// facts of §3.3 (experiment F2 in DESIGN.md).

import (
	"testing"

	"securexml/internal/labeling"
)

// PaperDocumentXML is the medical-files database of Fig. 2: the document
// node /, root element n1=patients, n2=franck with n3=service
// (n4=otolaryngology) and n5=diagnosis (n6=tonsillitis), and n7=robert, whose
// subtree the paper elides ("…") but later reveals in §4.4.1 as n8=service
// (n9=pneumology) and n10=diagnosis (n11=pneumonia).
const PaperDocumentXML = `<patients>
  <franck>
    <service>otolaryngology</service>
    <diagnosis>tonsillitis</diagnosis>
  </franck>
  <robert>
    <service>pneumology</service>
    <diagnosis>pneumonia</diagnosis>
  </robert>
</patients>`

// paperNodeNames maps the paper's node numbers n1..n11 to (kind, label).
var paperNodeFacts = []struct {
	paperID string
	kind    Kind
	label   string
}{
	{"/", KindDocument, "/"},
	{"n1", KindElement, "patients"},
	{"n2", KindElement, "franck"},
	{"n3", KindElement, "service"},
	{"n4", KindText, "otolaryngology"},
	{"n5", KindElement, "diagnosis"},
	{"n6", KindText, "tonsillitis"},
	{"n7", KindElement, "robert"},
	{"n8", KindElement, "service"},
	{"n9", KindText, "pneumology"},
	{"n10", KindElement, "diagnosis"},
	{"n11", KindText, "pneumonia"},
}

// paperChildFacts is the child relation of §3.3 (extended to robert's
// subtree): child(x, y) = "x is a child of y".
var paperChildFacts = [][2]string{
	{"n1", "/"},
	{"n2", "n1"}, {"n7", "n1"},
	{"n3", "n2"}, {"n5", "n2"},
	{"n4", "n3"}, {"n6", "n5"},
	{"n8", "n7"}, {"n10", "n7"},
	{"n9", "n8"}, {"n11", "n10"},
}

// paperNodes binds the paper's node numbers to the parsed tree, relying on
// document order: Fig. 2 numbers nodes in document order.
func paperNodes(t *testing.T, d *Document) map[string]*Node {
	t.Helper()
	all := d.Nodes()
	if len(all) != len(paperNodeFacts) {
		t.Fatalf("document has %d nodes, want %d", len(all), len(paperNodeFacts))
	}
	m := make(map[string]*Node, len(all))
	for i, f := range paperNodeFacts {
		n := all[i]
		if n.Kind() != f.kind || n.Label() != f.label {
			t.Fatalf("node %s: got (%s, %q), want (%s, %q)",
				f.paperID, n.Kind(), n.Label(), f.kind, f.label)
		}
		m[f.paperID] = n
	}
	return m
}

// TestFig2NodeFacts checks that parsing the Fig. 2 document yields exactly
// the set F of node facts (axiom 1), with the document node labeled "/".
func TestFig2NodeFacts(t *testing.T) {
	d := MustParse(PaperDocumentXML)
	nodes := paperNodes(t, d)
	if nodes["/"] != d.Root() {
		t.Error("first node in document order is not the document node")
	}
	if nodes["/"].ID().String() != "/" {
		t.Errorf("document node identifier = %q, want /", nodes["/"].ID())
	}
}

// TestFig2ChildFacts checks the derived child relation of §3.3, computed
// purely from the persistent identifiers as the paper's numbering-scheme
// axioms require.
func TestFig2ChildFacts(t *testing.T) {
	d := MustParse(PaperDocumentXML)
	nodes := paperNodes(t, d)

	want := make(map[[2]string]bool, len(paperChildFacts))
	for _, f := range paperChildFacts {
		want[f] = true
	}
	for cid, c := range nodes {
		for pid, p := range nodes {
			got := labeling.Holds(labeling.RelChild, c.ID(), p.ID())
			if got != want[[2]string{cid, pid}] {
				t.Errorf("child(%s, %s) = %v, want %v", cid, pid, got, want[[2]string{cid, pid}])
			}
		}
	}
}

// TestFig2GeometryExamples spot-checks the other geometry predicates of
// §3.2 on the paper's document.
func TestFig2GeometryExamples(t *testing.T) {
	d := MustParse(PaperDocumentXML)
	n := paperNodes(t, d)

	check := func(name string, got, want bool) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("descendant(n4, n1)", labeling.Holds(labeling.RelDescendant, n["n4"].ID(), n["n1"].ID()), true)
	check("descendant_or_self(n4, n4)",
		labeling.Holds(labeling.RelDescendant, n["n4"].ID(), n["n4"].ID()) ||
			labeling.Holds(labeling.RelSelf, n["n4"].ID(), n["n4"].ID()), true)
	check("ancestor(n1, n6)", labeling.Holds(labeling.RelAncestor, n["n1"].ID(), n["n6"].ID()), true)
	check("following_sibling(n7, n2)", labeling.Holds(labeling.RelFollowingSibling, n["n7"].ID(), n["n2"].ID()), true)
	check("preceding_sibling(n2, n7)", labeling.Holds(labeling.RelPrecedingSibling, n["n2"].ID(), n["n7"].ID()), true)
	check("following(n8, n6)", labeling.Holds(labeling.RelFollowing, n["n8"].ID(), n["n6"].ID()), true)
	check("preceding(n6, n8)", labeling.Holds(labeling.RelPreceding, n["n6"].ID(), n["n8"].ID()), true)
	check("not child(n4, n1)", labeling.Holds(labeling.RelChild, n["n4"].ID(), n["n1"].ID()), false)
	check("not following(n6, n8)", labeling.Holds(labeling.RelFollowing, n["n6"].ID(), n["n8"].ID()), false)
}

// TestFig2AppendAlbert reproduces the §3.4.2 append example at the tree
// level: inserting albert's record under /patients yields the new geometry
// facts the paper lists (preceding_sibling(n7, n1”), child(n1”, n1), …).
func TestFig2AppendAlbert(t *testing.T) {
	d := MustParse(PaperDocumentXML)
	n := paperNodes(t, d)

	frag := MustParseFragment(`<albert><service>cardiology</service><diagnosis/></albert>`)
	top, err := d.Graft(n["n1"], GraftAppend, frag.Root().Children()[0])
	if err != nil {
		t.Fatal(err)
	}
	// child(n1'', n1)
	if !labeling.Holds(labeling.RelChild, top.ID(), n["n1"].ID()) {
		t.Error("albert not derived as child of patients")
	}
	// preceding_sibling(n7, n1''): robert immediately precedes albert.
	if !labeling.Holds(labeling.RelPrecedingSibling, n["n7"].ID(), top.ID()) {
		t.Error("robert not derived as preceding sibling of albert")
	}
	// child(n2'', n1'') and child(n4'', n1''): service and diagnosis under albert.
	service, diagnosis := top.Children()[0], top.Children()[1]
	if service.Label() != "service" || diagnosis.Label() != "diagnosis" {
		t.Fatalf("albert children = %v", labels(top.Children()))
	}
	// preceding_sibling(n2'', n4'')
	if !labeling.Holds(labeling.RelPrecedingSibling, service.ID(), diagnosis.ID()) {
		t.Error("service not derived as preceding sibling of diagnosis")
	}
	// Existing nodes keep their identifiers (axiom 6 / §3.1 no renumbering).
	for pid, node := range n {
		if d.NodeByID(node.ID()) != node {
			t.Errorf("node %s lost or renumbered after append", pid)
		}
	}
}
