package xmltree

import (
	"math/rand"
	"strings"
	"testing"

	"securexml/internal/labeling"
)

const medicalXML = `<patients>
  <franck>
    <service>otolaryngology</service>
    <diagnosis>tonsillitis</diagnosis>
  </franck>
  <robert>
    <service>pneumology</service>
    <diagnosis>pneumonia</diagnosis>
  </robert>
</patients>`

func TestParseBasic(t *testing.T) {
	d := MustParse(medicalXML)
	root := d.RootElement()
	if root == nil || root.Label() != "patients" {
		t.Fatalf("root element = %v, want patients", root)
	}
	if got := len(root.Children()); got != 2 {
		t.Fatalf("patients has %d children, want 2", got)
	}
	franck := root.Children()[0]
	if franck.Label() != "franck" {
		t.Fatalf("first child = %q, want franck", franck.Label())
	}
	if got := franck.StringValue(); got != "otolaryngologytonsillitis" {
		t.Errorf("franck string-value = %q", got)
	}
	diag := franck.Children()[1]
	if diag.Label() != "diagnosis" || diag.StringValue() != "tonsillitis" {
		t.Errorf("diagnosis = %q/%q", diag.Label(), diag.StringValue())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                    // no root element
		"<a><b></a>",          // mismatched tags
		"<a></a><b></b>",      // two roots in non-fragment mode
		"just text, no roots", // no element at all
	}
	for _, src := range cases {
		if _, err := ParseString(src, ParseOptions{}); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestParseFragmentAllowsMultipleRoots(t *testing.T) {
	f, err := ParseString("<a/><b/>", ParseOptions{Fragment: true})
	if err != nil {
		t.Fatalf("fragment parse: %v", err)
	}
	if got := len(f.Root().Children()); got != 2 {
		t.Errorf("fragment has %d top nodes, want 2", got)
	}
}

func TestParseAttributes(t *testing.T) {
	d := MustParse(`<a x="1" y="two &amp; three"><b z="3"/></a>`)
	a := d.RootElement()
	if got, _ := a.AttrValue("x"); got != "1" {
		t.Errorf("@x = %q, want 1", got)
	}
	if got, _ := a.AttrValue("y"); got != "two & three" {
		t.Errorf("@y = %q", got)
	}
	if _, ok := a.AttrValue("missing"); ok {
		t.Error("missing attribute reported present")
	}
	b := a.Children()[0]
	if got, _ := b.AttrValue("z"); got != "3" {
		t.Errorf("b/@z = %q, want 3", got)
	}
	// Attribute nodes precede children in document order.
	x := a.Attr("x")
	if CompareDocOrder(x, b) >= 0 {
		t.Error("attribute does not precede element children in document order")
	}
}

func TestParseKeepsWhitespaceWhenAsked(t *testing.T) {
	src := "<a> <b/> </a>"
	d1, err := ParseString(src, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d1.RootElement().Children()); got != 1 {
		t.Errorf("default parse kept %d children, want 1", got)
	}
	d2, err := ParseString(src, ParseOptions{KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d2.RootElement().Children()); got != 3 {
		t.Errorf("KeepWhitespace parse kept %d children, want 3", got)
	}
}

func TestParseComments(t *testing.T) {
	src := "<a><!-- note --><b/></a>"
	d, err := ParseString(src, ParseOptions{KeepComments: true})
	if err != nil {
		t.Fatal(err)
	}
	kids := d.RootElement().Children()
	if len(kids) != 2 || kids[0].Kind() != KindComment {
		t.Fatalf("comment not kept: %v", kids)
	}
	d2, err := ParseString(src, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.RootElement().Children()) != 1 {
		t.Error("comment kept by default")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d := MustParse(medicalXML)
	out := d.XML()
	d2, err := ParseString(out, ParseOptions{})
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	// Structures must match (identifiers may differ between the two parses).
	if !sameShape(d.Root(), d2.Root()) {
		t.Errorf("round trip changed the tree:\n%s\nvs\n%s", d.Sketch(), d2.Sketch())
	}
}

func TestSerializeEscaping(t *testing.T) {
	d := New(nil)
	a, err := d.AppendChild(d.Root(), KindElement, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendChild(a, KindText, `<&>"special"`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetAttribute(a, "q", `a"b<c`); err != nil {
		t.Fatal(err)
	}
	out := d.CompactXML()
	d2, err := ParseString(out, ParseOptions{})
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if got := d2.RootElement().StringValue(); got != `<&>"special"` {
		t.Errorf("text survived as %q", got)
	}
	if got, _ := d2.RootElement().AttrValue("q"); got != `a"b<c` {
		t.Errorf("attribute survived as %q", got)
	}
}

func sameShape(a, b *Node) bool {
	if a.Kind() != b.Kind() || a.Label() != b.Label() ||
		len(a.Children()) != len(b.Children()) || len(a.Attributes()) != len(b.Attributes()) {
		return false
	}
	for i := range a.Attributes() {
		if !sameShape(a.Attributes()[i], b.Attributes()[i]) {
			return false
		}
	}
	for i := range a.Children() {
		if !sameShape(a.Children()[i], b.Children()[i]) {
			return false
		}
	}
	return true
}

func TestAppendChildRejectsSecondRoot(t *testing.T) {
	d := MustParse("<a/>")
	if _, err := d.AppendChild(d.Root(), KindElement, "b"); err != ErrSecondRoot {
		t.Errorf("second root: got %v, want ErrSecondRoot", err)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	d := MustParse("<a><m/></a>")
	a := d.RootElement()
	m := a.Children()[0]
	x, err := d.InsertBefore(m, KindElement, "x")
	if err != nil {
		t.Fatal(err)
	}
	z, err := d.InsertAfter(m, KindElement, "z")
	if err != nil {
		t.Fatal(err)
	}
	y, err := d.InsertAfter(x, KindElement, "y")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "y", "m", "z"}
	for i, c := range a.Children() {
		if c.Label() != want[i] {
			t.Fatalf("children order %v, want %v", labels(a.Children()), want)
		}
	}
	// Sibling order must also be derivable from identifiers alone.
	for _, pair := range [][2]*Node{{x, y}, {y, m}, {m, z}} {
		if CompareDocOrder(pair[0], pair[1]) >= 0 {
			t.Errorf("identifier order of %s and %s contradicts sibling order",
				pair[0].Label(), pair[1].Label())
		}
	}
	if !labeling.Holds(labeling.RelFollowingSibling, z.ID(), x.ID()) {
		t.Error("z not derived as following sibling of x")
	}
}

func labels(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Label()
	}
	return out
}

func TestInsertBesideErrors(t *testing.T) {
	d := MustParse("<a/>")
	if _, err := d.InsertBefore(d.Root(), KindElement, "x"); err != ErrDocumentNode {
		t.Errorf("insert before document node: %v", err)
	}
	if _, err := d.InsertAfter(d.RootElement(), KindElement, "x"); err != ErrSecondRoot {
		t.Errorf("insert sibling of root element: %v", err)
	}
	other := MustParse("<b/>")
	if _, err := d.InsertAfter(other.RootElement(), KindElement, "x"); err != ErrNotInDocument {
		t.Errorf("foreign node: %v", err)
	}
}

func TestIdentifiersPersistAcrossUpdates(t *testing.T) {
	d := MustParse(medicalXML)
	robert := d.RootElement().Children()[1]
	robertID := robert.ID().String()
	franck := d.RootElement().Children()[0]

	// Delete franck, insert new patients, rename things: robert keeps his id.
	if err := d.Remove(franck); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertBefore(robert, KindElement, "albert"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertAfter(robert, KindElement, "zoe"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename(d.RootElement(), "people"); err != nil {
		t.Fatal(err)
	}
	if got := robert.ID().String(); got != robertID {
		t.Errorf("robert's identifier changed across updates: %q -> %q", robertID, got)
	}
	if d.NodeByID(robert.ID()) != robert {
		t.Error("index lookup by persistent identifier broken after updates")
	}
}

func TestRemoveSubtree(t *testing.T) {
	d := MustParse(medicalXML)
	before := d.Len()
	franck := d.RootElement().Children()[0]
	sub := franck.Subtree()
	if err := d.Remove(franck); err != nil {
		t.Fatal(err)
	}
	if got := d.Len(); got != before-len(sub) {
		t.Errorf("Len() = %d after removing %d nodes from %d", got, len(sub), before)
	}
	for _, n := range sub {
		if d.NodeByID(n.ID()) != nil {
			t.Errorf("removed node %s still indexed", n.ID())
		}
	}
	if err := d.Remove(d.Root()); err != ErrDocumentNode {
		t.Errorf("removing document node: %v", err)
	}
}

func TestRemoveAttribute(t *testing.T) {
	d := MustParse(`<a x="1" y="2"/>`)
	a := d.RootElement()
	x := a.Attr("x")
	if err := d.Remove(x); err != nil {
		t.Fatal(err)
	}
	if a.Attr("x") != nil {
		t.Error("attribute x still present after Remove")
	}
	if a.Attr("y") == nil {
		t.Error("attribute y lost")
	}
}

func TestSetAttributeReplacesValue(t *testing.T) {
	d := MustParse(`<a x="1"/>`)
	a := d.RootElement()
	idBefore := a.Attr("x").ID().String()
	v := d.Version()
	if _, err := d.SetAttribute(a, "x", "2"); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.AttrValue("x"); got != "2" {
		t.Errorf("@x = %q, want 2", got)
	}
	if a.Attr("x").ID().String() != idBefore {
		t.Error("attribute identifier changed on value update")
	}
	if d.Version() == v {
		t.Error("version not bumped on attribute update")
	}
	// Idempotent set does not bump the version.
	v = d.Version()
	if _, err := d.SetAttribute(a, "x", "2"); err != nil {
		t.Fatal(err)
	}
	if d.Version() != v {
		t.Error("version bumped on no-op attribute set")
	}
	if _, err := d.SetAttribute(a.Attr("x"), "y", "3"); err == nil {
		t.Error("SetAttribute on attribute node should fail")
	}
}

func TestRenameErrors(t *testing.T) {
	d := MustParse("<a/>")
	if err := d.Rename(d.Root(), "x"); err != ErrDocumentNode {
		t.Errorf("rename document node: %v", err)
	}
	other := MustParse("<b/>")
	if err := d.Rename(other.RootElement(), "x"); err != ErrNotInDocument {
		t.Errorf("rename foreign node: %v", err)
	}
}

func TestGraftAppend(t *testing.T) {
	d := MustParse(medicalXML)
	frag := MustParseFragment(`<albert><service>cardiology</service><diagnosis/></albert>`)
	top, err := d.Graft(d.RootElement(), GraftAppend, frag.Root().Children()[0])
	if err != nil {
		t.Fatal(err)
	}
	kids := d.RootElement().Children()
	if kids[len(kids)-1] != top {
		t.Error("grafted tree is not the last child")
	}
	if top.Label() != "albert" || len(top.Children()) != 2 {
		t.Errorf("grafted tree malformed: %s", top.Label())
	}
	// Fresh identifiers were allocated in this document.
	top.Walk(func(n *Node) bool {
		if d.NodeByID(n.ID()) != n {
			t.Errorf("grafted node %s not indexed", n.ID())
		}
		return true
	})
}

func TestGraftBeforeAfterPositions(t *testing.T) {
	d := MustParse("<a><m/></a>")
	m := d.RootElement().Children()[0]
	fb := MustParseFragment("<x/>")
	if _, err := d.Graft(m, GraftBefore, fb.Root().Children()[0]); err != nil {
		t.Fatal(err)
	}
	fa := MustParseFragment("<z/>")
	if _, err := d.Graft(m, GraftAfter, fa.Root().Children()[0]); err != nil {
		t.Fatal(err)
	}
	got := labels(d.RootElement().Children())
	want := []string{"x", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("children = %v, want %v", got, want)
		}
	}
	if _, err := d.Graft(m, GraftMode(99), fa.Root().Children()[0]); err == nil {
		t.Error("unknown graft mode accepted")
	}
	if _, err := d.Graft(m, GraftAppend, nil); err == nil {
		t.Error("nil fragment accepted")
	}
}

func TestCloneEqualAndIndependence(t *testing.T) {
	d := MustParse(medicalXML)
	c := d.Clone()
	if !Equal(d, c) {
		t.Fatal("clone not Equal to original")
	}
	// Identifiers are preserved so clones can map back to source nodes.
	for _, n := range d.Nodes() {
		cn := c.NodeByID(n.ID())
		if cn == nil || cn.Label() != n.Label() || cn.Kind() != n.Kind() {
			t.Fatalf("clone lost node %s", n.ID())
		}
	}
	// Mutating the clone leaves the original alone.
	if err := c.Rename(c.RootElement(), "changed"); err != nil {
		t.Fatal(err)
	}
	if d.RootElement().Label() != "patients" {
		t.Error("mutating clone affected original")
	}
	if Equal(d, c) {
		t.Error("Equal ignores label change")
	}
}

func TestNodesInDocumentOrder(t *testing.T) {
	d := MustParse(medicalXML)
	ns := d.Nodes()
	for i := 1; i < len(ns); i++ {
		if CompareDocOrder(ns[i-1], ns[i]) >= 0 {
			t.Fatalf("Nodes() not in document order at %d: %s !< %s",
				i, ns[i-1].ID(), ns[i].ID())
		}
	}
	if d.Len() != len(ns) {
		t.Errorf("Len() = %d, Nodes() = %d", d.Len(), len(ns))
	}
}

func TestSortDocOrderDedup(t *testing.T) {
	d := MustParse(medicalXML)
	ns := d.Nodes()
	shuffled := append([]*Node{}, ns...)
	shuffled = append(shuffled, ns[0], ns[3]) // duplicates
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	sorted := SortDocOrder(shuffled)
	if len(sorted) != len(ns) {
		t.Fatalf("SortDocOrder kept %d nodes, want %d", len(sorted), len(ns))
	}
	for i := range ns {
		if sorted[i] != ns[i] {
			t.Fatalf("SortDocOrder order mismatch at %d", i)
		}
	}
}

// TestGeometryAgreesWithPointers is the §3.1 soundness property: relations
// derived from identifiers alone must coincide with the pointer structure,
// on a randomly built and randomly mutated document.
func TestGeometryAgreesWithPointers(t *testing.T) {
	for _, schemeName := range []string{"fracpath", "lsdx"} {
		scheme, err := labeling.ByName(schemeName)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		d := New(scheme)
		root, err := d.AppendChild(d.Root(), KindElement, "root")
		if err != nil {
			t.Fatal(err)
		}
		elems := []*Node{root}
		for i := 0; i < 300; i++ {
			target := elems[rng.Intn(len(elems))]
			var n *Node
			switch rng.Intn(4) {
			case 0, 1:
				n, err = d.AppendChild(target, KindElement, "e")
			case 2:
				if target == root {
					continue
				}
				n, err = d.InsertBefore(target, KindElement, "e")
			default:
				if target == root {
					continue
				}
				n, err = d.InsertAfter(target, KindElement, "e")
			}
			if err != nil {
				t.Fatal(err)
			}
			elems = append(elems, n)
		}
		// Random removals.
		for i := 0; i < 30; i++ {
			n := elems[1+rng.Intn(len(elems)-1)]
			if n.Document() != d {
				continue // already removed with an ancestor
			}
			if err := d.Remove(n); err != nil {
				t.Fatal(err)
			}
		}
		checkGeometry(t, schemeName, d)
	}
}

func checkGeometry(t *testing.T, scheme string, d *Document) {
	t.Helper()
	ns := d.Nodes()
	if len(ns) > 120 {
		ns = ns[:120] // O(n²) check; cap the work
	}
	for _, a := range ns {
		for _, b := range ns {
			if gotChild := labeling.Holds(labeling.RelChild, a.ID(), b.ID()); gotChild != isPointerChild(a, b) {
				t.Fatalf("%s: child(%s, %s) from labels = %v, from pointers = %v",
					scheme, a.ID(), b.ID(), gotChild, isPointerChild(a, b))
			}
			if gotDesc := labeling.Holds(labeling.RelDescendant, a.ID(), b.ID()); gotDesc != isPointerDescendant(a, b) {
				t.Fatalf("%s: descendant(%s, %s) mismatch", scheme, a.ID(), b.ID())
			}
			if gotFS := labeling.Holds(labeling.RelFollowingSibling, a.ID(), b.ID()); gotFS != isPointerFollowingSibling(a, b) {
				t.Fatalf("%s: following-sibling(%s, %s) mismatch", scheme, a.ID(), b.ID())
			}
		}
	}
}

func isPointerChild(a, b *Node) bool { return a.Parent() == b }

func isPointerDescendant(a, b *Node) bool {
	for p := a.Parent(); p != nil; p = p.Parent() {
		if p == b {
			return true
		}
	}
	return false
}

func isPointerFollowingSibling(a, b *Node) bool {
	if a.Parent() == nil || a.Parent() != b.Parent() || a == b {
		return false
	}
	if a.Kind() == KindAttribute || b.Kind() == KindAttribute {
		return false
	}
	p := a.Parent()
	return p.ChildIndex(a) > p.ChildIndex(b)
}

func TestPathAndSketch(t *testing.T) {
	d := MustParse(`<patients><franck><diagnosis>tonsillitis</diagnosis></franck></patients>`)
	diag := d.RootElement().Children()[0].Children()[0]
	if got := diag.Path(); got != "/patients/franck/diagnosis" {
		t.Errorf("Path = %q", got)
	}
	txt := diag.Children()[0]
	if got := txt.Path(); got != "/patients/franck/diagnosis/text()" {
		t.Errorf("text path = %q", got)
	}
	if got := d.Root().Path(); got != "/" {
		t.Errorf("document path = %q", got)
	}
	sk := d.Sketch()
	for _, want := range []string{"patients", "franck", "diagnosis", "text()  tonsillitis", "document"} {
		if !strings.Contains(sk, want) {
			t.Errorf("Sketch missing %q:\n%s", want, sk)
		}
	}
}

func TestSiblingAndChildNavigation(t *testing.T) {
	d := MustParse("<a><x/><y/><z/></a>")
	a := d.RootElement()
	x, y, z := a.Children()[0], a.Children()[1], a.Children()[2]
	if x.PrecedingSibling() != nil || x.FollowingSibling() != y {
		t.Error("x sibling navigation wrong")
	}
	if y.PrecedingSibling() != x || y.FollowingSibling() != z {
		t.Error("y sibling navigation wrong")
	}
	if z.FollowingSibling() != nil {
		t.Error("z has a following sibling")
	}
	if a.FirstChild() != x || a.LastChild() != z {
		t.Error("first/last child wrong")
	}
	if a.ChildIndex(d.Root()) != -1 {
		t.Error("ChildIndex of non-child should be -1")
	}
}

func TestWalkPrune(t *testing.T) {
	d := MustParse(medicalXML)
	var visited []string
	d.Root().Walk(func(n *Node) bool {
		if n.Label() == "franck" {
			visited = append(visited, n.Label())
			return false // prune franck's subtree
		}
		if n.Kind() == KindElement {
			visited = append(visited, n.Label())
		}
		return true
	})
	for _, l := range visited {
		if l == "service" && visited[1] == "franck" && l != "robert" {
			// service under franck must not appear before robert
			break
		}
	}
	want := []string{"patients", "franck", "robert", "service", "diagnosis"}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindDocument: "document", KindElement: "element", KindText: "text",
		KindAttribute: "attribute", KindComment: "comment", Kind(42): "kind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	for m, want := range map[GraftMode]string{
		GraftAppend: "append", GraftBefore: "insert-before",
		GraftAfter: "insert-after", GraftMode(9): "graftmode(9)",
	} {
		if m.String() != want {
			t.Errorf("GraftMode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestShowIDsSerialization(t *testing.T) {
	d := MustParse("<a><b/></a>")
	var b strings.Builder
	if err := d.Write(&b, WriteOptions{Indent: " ", ShowIDs: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sxml:id=") {
		t.Errorf("ShowIDs output missing ids: %s", b.String())
	}
}
