package xmltree

import (
	"errors"
	"fmt"
	"sort"

	"securexml/internal/labeling"
)

// Document is a mutable XML document tree with persistent node identifiers.
//
// All structural mutations go through Document methods so that:
//
//   - every node receives a fresh identifier from the labeling scheme at
//     insertion time and keeps it until removal (§3.1: no renumbering);
//   - the label→node index stays consistent;
//   - the version counter advances on every mutation (used by higher layers
//     to invalidate cached views).
//
// Document is not safe for concurrent use; the core package serializes
// access.
type Document struct {
	scheme   labeling.Scheme
	root     *Node // the document node, label "/"
	index    map[string]*Node
	names    map[string]map[*Node]struct{} // element-name index
	version  uint64
	fragment bool // fragments may carry several top-level nodes
	frozen   bool // frozen documents reject every mutation (see Freeze)
}

// Errors returned by Document mutations.
var (
	ErrNotInDocument   = errors.New("xmltree: node does not belong to this document")
	ErrDocumentNode    = errors.New("xmltree: operation not applicable to the document node")
	ErrSecondRoot      = errors.New("xmltree: the document node already has a root element")
	ErrAttributeTarget = errors.New("xmltree: operation not applicable to an attribute node")
	ErrFrozen          = errors.New("xmltree: document is frozen (published snapshot generations are immutable; Clone first)")
)

// New creates an empty document (just the document node) using the given
// labeling scheme. A nil scheme defaults to fracpath.
func New(scheme labeling.Scheme) *Document {
	if scheme == nil {
		scheme = labeling.NewFracPath()
	}
	d := &Document{
		scheme: scheme,
		index:  make(map[string]*Node),
		names:  make(map[string]map[*Node]struct{}),
	}
	d.root = &Node{kind: KindDocument, label: "/", id: labeling.DocumentLabel, doc: d}
	d.index["/"] = d.root
	return d
}

// NewFragment creates a construction buffer for XUpdate content trees. A
// fragment is an ordinary document except that its document node may carry
// any number of top-level nodes.
func NewFragment(scheme labeling.Scheme) *Document {
	d := New(scheme)
	d.fragment = true
	return d
}

// IsFragment reports whether the document is a multi-root fragment buffer.
func (d *Document) IsFragment() bool { return d.fragment }

// Scheme returns the labeling scheme of the document.
func (d *Document) Scheme() labeling.Scheme { return d.scheme }

// Root returns the document node (identifier "/").
func (d *Document) Root() *Node { return d.root }

// RootElement returns the single element child of the document node, or nil
// for an empty document.
func (d *Document) RootElement() *Node {
	for _, c := range d.root.children {
		if c.kind == KindElement {
			return c
		}
	}
	return nil
}

// Version returns the mutation counter. It increases on every structural or
// label change and never decreases.
func (d *Document) Version() uint64 { return d.version }

// NodeByID returns the node with the given persistent identifier, or nil.
func (d *Document) NodeByID(id labeling.Label) *Node { return d.index[id.String()] }

// Len returns the number of nodes in the document, including the document
// node and attribute nodes.
func (d *Document) Len() int { return len(d.index) }

// Nodes returns every node in document order.
func (d *Document) Nodes() []*Node {
	out := make([]*Node, 0, len(d.index))
	d.root.Walk(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// --- construction -----------------------------------------------------------

// siblingKey allocates a key strictly between the identifiers of lo and hi,
// where either may be nil meaning the open end.
func (d *Document) siblingKey(lo, hi *Node) (string, error) {
	var loK, hiK string
	if lo != nil {
		loK, _ = lo.id.Key()
	}
	if hi != nil {
		hiK, _ = hi.id.Key()
	}
	return d.scheme.Between(loK, hiK)
}

func (d *Document) register(n *Node) {
	d.index[n.id.String()] = n
	n.doc = d
	if n.kind == KindElement {
		set := d.names[n.label]
		if set == nil {
			set = make(map[*Node]struct{})
			d.names[n.label] = set
		}
		set[n] = struct{}{}
	}
}

func (d *Document) unregister(n *Node) {
	delete(d.index, n.id.String())
	n.doc = nil
	if n.kind == KindElement {
		if set := d.names[n.label]; set != nil {
			delete(set, n)
			if len(set) == 0 {
				delete(d.names, n.label)
			}
		}
	}
}

// ElementsByName returns every element with the given name, in document
// order — the name index backing the XPath engine's fast path for
// absolute //name queries. The returned slice is freshly allocated.
func (d *Document) ElementsByName(name string) []*Node {
	set := d.names[name]
	if len(set) == 0 {
		return nil
	}
	out := make([]*Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	return SortDocOrder(out)
}

// newChildNode allocates a node with a fresh identifier under parent, with a
// sibling key strictly between the keys of lo and hi (nil = open end).
func (d *Document) newChildNode(parent *Node, kind Kind, label string, lo, hi *Node) (*Node, error) {
	key, err := d.siblingKey(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("xmltree: allocating identifier under %s: %w", parent.Path(), err)
	}
	n := &Node{kind: kind, label: label, id: parent.id.Child(key), parent: parent}
	d.register(n)
	return n, nil
}

// MirrorChild appends a node under parent that carries a caller-supplied
// persistent identifier instead of a freshly allocated one. It exists for
// view materialization (§4.4.1): view nodes keep the source document's
// identifiers so that write operations selected on the view can be mapped
// back to source nodes. The identifier must be a child identifier of
// parent's and must be greater than the identifier of the last child (or
// last attribute, for attribute kinds) already mirrored — i.e. callers
// mirror in document order. Attribute kinds are attached to the attribute
// list.
func (d *Document) MirrorChild(parent *Node, kind Kind, label string, id labeling.Label) (*Node, error) {
	if err := d.checkOwned(parent); err != nil {
		return nil, err
	}
	if !id.IsChildOf(parent.id) {
		return nil, fmt.Errorf("xmltree: mirrored identifier %s is not a child of %s", id, parent.id)
	}
	if d.index[id.String()] != nil {
		return nil, fmt.Errorf("xmltree: identifier %s already present", id)
	}
	var prev *Node
	if kind == KindAttribute {
		if len(parent.attrs) > 0 {
			prev = parent.attrs[len(parent.attrs)-1]
		}
	} else if len(parent.children) > 0 {
		prev = parent.children[len(parent.children)-1]
	}
	if prev != nil && prev.id.Compare(id) >= 0 {
		return nil, fmt.Errorf("xmltree: mirrored identifier %s out of document order after %s", id, prev.id)
	}
	n := &Node{kind: kind, label: label, id: id.Clone(), parent: parent}
	d.register(n)
	if kind == KindAttribute {
		parent.attrs = append(parent.attrs, n)
	} else {
		parent.children = append(parent.children, n)
	}
	d.version++
	return n, nil
}

// MirrorInsert is MirrorChild without the append-only restriction: the
// mirrored node is spliced into parent's child (or attribute) list at the
// position its identifier dictates. It exists for incremental view
// maintenance, where a source node can become visible after later siblings
// were already mirrored. The identifier ordering invariant (§3.1: sibling
// keys sort in document order) keeps the splice position well defined.
func (d *Document) MirrorInsert(parent *Node, kind Kind, label string, id labeling.Label) (*Node, error) {
	if err := d.checkOwned(parent); err != nil {
		return nil, err
	}
	if !id.IsChildOf(parent.id) {
		return nil, fmt.Errorf("xmltree: mirrored identifier %s is not a child of %s", id, parent.id)
	}
	if d.index[id.String()] != nil {
		return nil, fmt.Errorf("xmltree: identifier %s already present", id)
	}
	list := &parent.children
	if kind == KindAttribute {
		list = &parent.attrs
	}
	pos := sort.Search(len(*list), func(i int) bool { return (*list)[i].id.Compare(id) > 0 })
	n := &Node{kind: kind, label: label, id: id.Clone(), parent: parent}
	d.register(n)
	*list = append(*list, nil)
	copy((*list)[pos+1:], (*list)[pos:])
	(*list)[pos] = n
	d.version++
	return n, nil
}

// AppendChild creates a new node of the given kind as the last child of
// parent and returns it. Appending a second element under the document node
// is rejected.
func (d *Document) AppendChild(parent *Node, kind Kind, label string) (*Node, error) {
	if err := d.checkOwned(parent); err != nil {
		return nil, err
	}
	if parent.kind == KindDocument && kind == KindElement && !d.fragment && d.RootElement() != nil {
		return nil, ErrSecondRoot
	}
	if kind == KindAttribute {
		return d.SetAttribute(parent, label, "")
	}
	lo := parent.LastChild()
	if lo == nil && len(parent.attrs) > 0 {
		// Attribute identifiers share the sibling key space and must stay
		// below all child identifiers (attributes precede children in
		// document order).
		lo = parent.attrs[len(parent.attrs)-1]
	}
	n, err := d.newChildNode(parent, kind, label, lo, nil)
	if err != nil {
		return nil, err
	}
	parent.children = append(parent.children, n)
	d.version++
	return n, nil
}

// InsertBefore creates a new node as the immediately preceding sibling of
// ref and returns it.
func (d *Document) InsertBefore(ref *Node, kind Kind, label string) (*Node, error) {
	return d.insertBeside(ref, kind, label, true)
}

// InsertAfter creates a new node as the immediately following sibling of ref
// and returns it.
func (d *Document) InsertAfter(ref *Node, kind Kind, label string) (*Node, error) {
	return d.insertBeside(ref, kind, label, false)
}

func (d *Document) insertBeside(ref *Node, kind Kind, label string, before bool) (*Node, error) {
	if err := d.checkOwned(ref); err != nil {
		return nil, err
	}
	if ref.kind == KindDocument {
		return nil, ErrDocumentNode
	}
	if ref.kind == KindAttribute || kind == KindAttribute {
		return nil, ErrAttributeTarget
	}
	parent := ref.parent
	if parent.kind == KindDocument && kind == KindElement && !d.fragment {
		return nil, ErrSecondRoot
	}
	i := parent.ChildIndex(ref)
	var lo, hi *Node
	pos := i
	if before {
		hi = ref
		if i > 0 {
			lo = parent.children[i-1]
		} else if len(parent.attrs) > 0 {
			lo = parent.attrs[len(parent.attrs)-1]
		}
	} else {
		lo = ref
		pos = i + 1
		if i < len(parent.children)-1 {
			hi = parent.children[i+1]
		}
	}
	n, err := d.newChildNode(parent, kind, label, lo, hi)
	if err != nil {
		return nil, err
	}
	parent.children = append(parent.children, nil)
	copy(parent.children[pos+1:], parent.children[pos:])
	parent.children[pos] = n
	d.version++
	return n, nil
}

// SetAttribute sets (or replaces the value of) an attribute on an element.
// The attribute is modeled as an Attribute node with one Text child holding
// the value. The attribute node's identifier is allocated before the
// element's first non-attribute child so that document order puts
// attributes first, as XPath requires.
func (d *Document) SetAttribute(elem *Node, name, value string) (*Node, error) {
	if err := d.checkOwned(elem); err != nil {
		return nil, err
	}
	if elem.kind != KindElement {
		return nil, fmt.Errorf("xmltree: SetAttribute on %s node: %w", elem.kind, ErrAttributeTarget)
	}
	if a := elem.Attr(name); a != nil {
		// Replace the value text child.
		if txt := a.FirstChild(); txt != nil {
			if txt.label != value {
				txt.label = value
				d.version++
			}
			return a, nil
		}
		txt, err := d.newChildNode(a, KindText, value, nil, nil)
		if err != nil {
			return nil, err
		}
		a.children = append(a.children, txt)
		d.version++
		return a, nil
	}
	var lo, hi *Node
	if len(elem.attrs) > 0 {
		lo = elem.attrs[len(elem.attrs)-1]
	}
	hi = elem.FirstChild()
	a, err := d.newChildNode(elem, KindAttribute, name, lo, hi)
	if err != nil {
		return nil, err
	}
	elem.attrs = append(elem.attrs, a)
	txt, err := d.newChildNode(a, KindText, value, nil, nil)
	if err != nil {
		return nil, err
	}
	a.children = append(a.children, txt)
	d.version++
	return a, nil
}

// Rename changes the label of a node (xupdate:rename for elements and
// attributes; for text nodes it replaces the content, which is how
// xupdate:update is expressed on a text child).
func (d *Document) Rename(n *Node, label string) error {
	if err := d.checkOwned(n); err != nil {
		return err
	}
	if n.kind == KindDocument {
		return ErrDocumentNode
	}
	if n.label != label {
		if n.kind == KindElement {
			// Keep the name index in step.
			if set := d.names[n.label]; set != nil {
				delete(set, n)
				if len(set) == 0 {
					delete(d.names, n.label)
				}
			}
			set := d.names[label]
			if set == nil {
				set = make(map[*Node]struct{})
				d.names[label] = set
			}
			set[n] = struct{}{}
		}
		n.label = label
		d.version++
	}
	return nil
}

// Remove deletes node n and its entire subtree from the document
// (xupdate:remove semantics: deleting a node deletes the subtree of which it
// is the root). Removing the document node is rejected.
func (d *Document) Remove(n *Node) error {
	if err := d.checkOwned(n); err != nil {
		return err
	}
	if n.kind == KindDocument {
		return ErrDocumentNode
	}
	parent := n.parent
	if n.kind == KindAttribute {
		for i, a := range parent.attrs {
			if a == n {
				parent.attrs = append(parent.attrs[:i], parent.attrs[i+1:]...)
				break
			}
		}
	} else {
		i := parent.ChildIndex(n)
		parent.children = append(parent.children[:i], parent.children[i+1:]...)
	}
	n.Walk(func(m *Node) bool {
		d.unregister(m)
		return true
	})
	n.parent = nil
	d.version++
	return nil
}

func (d *Document) checkOwned(n *Node) error {
	if d.frozen {
		return ErrFrozen
	}
	if n == nil || n.doc != d {
		return ErrNotInDocument
	}
	return nil
}

// Freeze marks the document immutable: every subsequent mutation returns
// ErrFrozen. The core package freezes a document when it is published as a
// copy-on-write generation root (or as a cached view snapshot shared across
// session readers); lock-free readers may then traverse it without any
// synchronization beyond the atomic generation load. Freezing is one-way —
// obtain a mutable tree with Clone, which always returns an unfrozen copy.
func (d *Document) Freeze() { d.frozen = true }

// Frozen reports whether the document has been frozen by Freeze.
func (d *Document) Frozen() bool { return d.frozen }

// --- fragments and grafting -------------------------------------------------

// GraftMode says where a fragment is attached relative to a reference node.
type GraftMode int

// Graft positions, matching the three creating XUpdate operations (§3.4.2).
const (
	GraftAppend GraftMode = iota // last child of ref
	GraftBefore                  // immediately preceding sibling of ref
	GraftAfter                   // immediately following sibling of ref
)

// String returns the XUpdate operation name for the mode.
func (m GraftMode) String() string {
	switch m {
	case GraftAppend:
		return "append"
	case GraftBefore:
		return "insert-before"
	case GraftAfter:
		return "insert-after"
	default:
		return fmt.Sprintf("graftmode(%d)", int(m))
	}
}

// Graft deep-copies the subtree rooted at the fragment node src (typically
// from another Document used as a construction buffer) into this document,
// positioned relative to ref according to mode. It returns the new root node
// of the copied subtree. Fresh identifiers are allocated for every copied
// node (the create_number predicate of axiom 7).
func (d *Document) Graft(ref *Node, mode GraftMode, src *Node) (*Node, error) {
	if err := d.checkOwned(ref); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("xmltree: nil fragment")
	}
	var top *Node
	var err error
	switch mode {
	case GraftAppend:
		top, err = d.AppendChild(ref, src.kind, src.label)
	case GraftBefore:
		top, err = d.InsertBefore(ref, src.kind, src.label)
	case GraftAfter:
		top, err = d.InsertAfter(ref, src.kind, src.label)
	default:
		return nil, fmt.Errorf("xmltree: unknown graft mode %d", int(mode))
	}
	if err != nil {
		return nil, err
	}
	if err := d.copyInto(top, src); err != nil {
		return nil, err
	}
	return top, nil
}

// copyInto deep-copies src's attributes and children under dst.
func (d *Document) copyInto(dst, src *Node) error {
	for _, a := range src.attrs {
		if _, err := d.SetAttribute(dst, a.label, a.StringValue()); err != nil {
			return err
		}
	}
	for _, c := range src.children {
		nc, err := d.AppendChild(dst, c.kind, c.label)
		if err != nil {
			return err
		}
		if err := d.copyInto(nc, c); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the document. The copy preserves node
// identifiers, so labels in the clone identify the same logical nodes; this
// is what view materialization relies on to map view nodes back to source
// nodes. The copy is never frozen, regardless of the receiver: Clone is the
// sanctioned way to obtain a mutable tree from a published generation root.
//
// Nodes are allocated from a single arena and the indexes are presized, so
// cloning is one pass with O(1) allocations per node class — this is the
// dominant cost of a group commit and is amortized across every write in
// the batch.
func (d *Document) Clone() *Document {
	n := len(d.index)
	c := &Document{
		scheme:   d.scheme,
		index:    make(map[string]*Node, n),
		names:    make(map[string]map[*Node]struct{}, len(d.names)),
		version:  d.version,
		fragment: d.fragment,
	}
	arena := make([]Node, 1, n)
	c.root = &arena[0]
	*c.root = Node{kind: KindDocument, label: "/", id: labeling.DocumentLabel, doc: c}
	c.index["/"] = c.root
	cloneUnder(c, &arena, c.root, d.root)
	return c
}

func cloneUnder(c *Document, arena *[]Node, dst, src *Node) {
	if len(src.attrs) > 0 {
		dst.attrs = make([]*Node, 0, len(src.attrs))
		for _, a := range src.attrs {
			na := arenaNode(arena)
			*na = Node{kind: a.kind, label: a.label, id: a.id, parent: dst}
			c.register(na)
			dst.attrs = append(dst.attrs, na)
			cloneUnder(c, arena, na, a)
		}
	}
	if len(src.children) > 0 {
		dst.children = make([]*Node, 0, len(src.children))
		for _, k := range src.children {
			nk := arenaNode(arena)
			*nk = Node{kind: k.kind, label: k.label, id: k.id, parent: dst}
			c.register(nk)
			dst.children = append(dst.children, nk)
			cloneUnder(c, arena, nk, k)
		}
	}
}

// arenaNode hands out the next node from the arena, growing it in fresh
// blocks when the presized capacity is exhausted (a document mutated after
// sizing, or a fragment). Nodes already handed out are never moved — append
// to a full arena would reallocate, so a new block is started instead.
func arenaNode(arena *[]Node) *Node {
	a := *arena
	if len(a) == cap(a) {
		a = make([]Node, 0, cap(a)+cap(a)/2+8)
		*arena = a
	}
	a = append(a, Node{})
	*arena = a
	return &a[len(a)-1]
}

// Equal reports whether two documents are structurally identical: same
// shapes, kinds, labels and identifiers.
func Equal(a, b *Document) bool { return nodeEqual(a.root, b.root) }

func nodeEqual(a, b *Node) bool {
	if a.kind != b.kind || a.label != b.label || !a.id.Equal(b.id) {
		return false
	}
	if len(a.attrs) != len(b.attrs) || len(a.children) != len(b.children) {
		return false
	}
	for i := range a.attrs {
		if !nodeEqual(a.attrs[i], b.attrs[i]) {
			return false
		}
	}
	for i := range a.children {
		if !nodeEqual(a.children[i], b.children[i]) {
			return false
		}
	}
	return true
}
