package xmltree

// Additional edge-case coverage: MirrorChild invariants, serializer corner
// cases, clones with attributes, and the remaining small accessors.

import (
	"strings"
	"testing"

	"securexml/internal/labeling"
)

func TestMirrorChildHappyPath(t *testing.T) {
	src := MustParse(`<a x="1"><b>t</b><c/></a>`)
	dst := New(src.Scheme())
	// Mirror the whole tree in document order.
	var mirror func(dstParent *Node, srcParent *Node)
	mirror = func(dstParent, srcParent *Node) {
		for _, a := range srcParent.Attributes() {
			n, err := dst.MirrorChild(dstParent, a.Kind(), a.Label(), a.ID())
			if err != nil {
				t.Fatal(err)
			}
			mirror(n, a)
		}
		for _, c := range srcParent.Children() {
			n, err := dst.MirrorChild(dstParent, c.Kind(), c.Label(), c.ID())
			if err != nil {
				t.Fatal(err)
			}
			mirror(n, c)
		}
	}
	mirror(dst.Root(), src.Root())
	if !Equal(src, dst) {
		t.Fatalf("mirrored tree differs:\n%s\nvs\n%s", src.Sketch(), dst.Sketch())
	}
}

func TestMirrorChildRejectsViolations(t *testing.T) {
	src := MustParse("<a><b/><c/></a>")
	a := src.RootElement()
	b, c := a.Children()[0], a.Children()[1]

	dst := New(src.Scheme())
	da, err := dst.MirrorChild(dst.Root(), KindElement, "a", a.ID())
	if err != nil {
		t.Fatal(err)
	}
	// Not a child identifier of the parent.
	if _, err := dst.MirrorChild(dst.Root(), KindElement, "x", b.ID()); err == nil {
		t.Error("grandchild identifier accepted under the document node")
	}
	// Out of document order.
	if _, err := dst.MirrorChild(da, KindElement, "c", c.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.MirrorChild(da, KindElement, "b", b.ID()); err == nil {
		t.Error("out-of-order mirror accepted")
	}
	// Duplicate identifier.
	if _, err := dst.MirrorChild(da, KindElement, "c2", c.ID()); err == nil {
		t.Error("duplicate identifier accepted")
	}
	// Foreign parent.
	if _, err := src.MirrorChild(da, KindElement, "x", c.ID()); err == nil {
		t.Error("foreign parent accepted")
	}
}

func TestSchemeAndFragmentAccessors(t *testing.T) {
	d := New(labeling.NewLSDX())
	if d.Scheme().Name() != "lsdx" {
		t.Errorf("Scheme = %q", d.Scheme().Name())
	}
	if d.IsFragment() {
		t.Error("plain document reports fragment")
	}
	f := NewFragment(nil)
	if !f.IsFragment() {
		t.Error("fragment does not report fragment")
	}
}

func TestNodeNameAndDescendant(t *testing.T) {
	d := MustParse(`<a x="1"><b>t</b></a>`)
	a := d.RootElement()
	b := a.Children()[0]
	txt := b.Children()[0]
	if a.Name() != "a" || a.Attr("x").Name() != "x" {
		t.Error("Name of element/attribute wrong")
	}
	if txt.Name() != "" || d.Root().Name() != "" {
		t.Error("Name of text/document should be empty")
	}
	if !txt.IsDescendantOf(a) || !b.IsDescendantOf(a) {
		t.Error("IsDescendantOf false negatives")
	}
	if a.IsDescendantOf(b) || a.IsDescendantOf(a) {
		t.Error("IsDescendantOf false positives")
	}
	if !a.Attr("x").IsDescendantOf(a) {
		t.Error("attribute not a descendant of its element")
	}
}

func TestSerializeCornerCases(t *testing.T) {
	// Empty element, mixed content, comments, attribute on nested element.
	d, err := ParseString(`<a><empty/><mix>text<b/>tail</mix><!--c--></a>`,
		ParseOptions{KeepComments: true})
	if err != nil {
		t.Fatal(err)
	}
	compact := d.CompactXML()
	for _, want := range []string{"<empty/>", "<!--c-->", "text", "tail"} {
		if !strings.Contains(compact, want) {
			t.Errorf("compact output missing %q: %s", want, compact)
		}
	}
	pretty := d.XML()
	d2, err := ParseString(pretty, ParseOptions{KeepComments: true})
	if err != nil {
		t.Fatalf("pretty output not reparseable: %v\n%s", err, pretty)
	}
	if !sameShape(d.Root(), d2.Root()) {
		t.Error("pretty round trip changed the tree")
	}
}

func TestWriteFragmentMultiRoot(t *testing.T) {
	f := MustParseFragment("<a/>text<b/>")
	out := f.CompactXML()
	if !strings.Contains(out, "<a/>") || !strings.Contains(out, "<b/>") || !strings.Contains(out, "text") {
		t.Errorf("fragment serialization wrong: %q", out)
	}
}

func TestCloneWithAttributes(t *testing.T) {
	d := MustParse(`<a x="1" y="2"><b z="3">t</b></a>`)
	c := d.Clone()
	if !Equal(d, c) {
		t.Fatal("clone with attributes not Equal")
	}
	// nodeEqual notices attribute differences.
	if _, err := c.SetAttribute(c.RootElement(), "x", "changed"); err != nil {
		t.Fatal(err)
	}
	if Equal(d, c) {
		t.Error("Equal missed attribute value change")
	}
	d2 := MustParse(`<a x="1"><b/></a>`)
	d3 := MustParse(`<a><b/></a>`)
	if Equal(d2, d3) {
		t.Error("Equal missed attribute count difference")
	}
}

func TestGraftCopiesAttributes(t *testing.T) {
	d := MustParse("<root/>")
	frag := MustParseFragment(`<item id="7" cls="x"><sub k="v">t</sub></item>`)
	top, err := d.Graft(d.RootElement(), GraftAppend, frag.Root().Children()[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := top.AttrValue("id"); got != "7" {
		t.Errorf("grafted @id = %q", got)
	}
	sub := top.Children()[0]
	if got, _ := sub.AttrValue("k"); got != "v" {
		t.Errorf("nested grafted @k = %q", got)
	}
	if sub.StringValue() != "t" {
		t.Errorf("nested text = %q", sub.StringValue())
	}
}

func TestSetAttributeOnEmptiedAttr(t *testing.T) {
	// Replacing the value of an attribute whose text child was removed.
	d := MustParse(`<a x="1"/>`)
	attr := d.RootElement().Attr("x")
	if err := d.Remove(attr.FirstChild()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetAttribute(d.RootElement(), "x", "2"); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.RootElement().AttrValue("x"); got != "2" {
		t.Errorf("@x = %q", got)
	}
}
