package xmltree

import (
	"errors"
	"testing"
)

func buildFreezeDoc(t *testing.T) *Document {
	t.Helper()
	d := New(nil)
	root, err := d.AppendChild(d.Root(), KindElement, "hospital")
	if err != nil {
		t.Fatalf("root: %v", err)
	}
	svc, err := d.AppendChild(root, KindElement, "service")
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	if _, err := d.SetAttribute(svc, "name", "cardiology"); err != nil {
		t.Fatalf("attr: %v", err)
	}
	if _, err := d.AppendChild(svc, KindText, "ward 3"); err != nil {
		t.Fatalf("text: %v", err)
	}
	return d
}

func TestFreezeRejectsEveryMutation(t *testing.T) {
	d := buildFreezeDoc(t)
	svc := d.ElementsByName("service")[0]
	ver := d.Version()
	d.Freeze()
	if !d.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}

	mutations := map[string]func() error{
		"AppendChild":  func() error { _, err := d.AppendChild(svc, KindElement, "bed"); return err },
		"InsertBefore": func() error { _, err := d.InsertBefore(svc, KindElement, "bed"); return err },
		"InsertAfter":  func() error { _, err := d.InsertAfter(svc, KindElement, "bed"); return err },
		"SetAttribute": func() error { _, err := d.SetAttribute(svc, "name", "x"); return err },
		"Rename":       func() error { return d.Rename(svc, "clinic") },
		"Remove":       func() error { return d.Remove(svc) },
		"Graft": func() error {
			f := NewFragment(nil)
			fn, _ := f.AppendChild(f.Root(), KindElement, "bed")
			_, err := d.Graft(svc, GraftAppend, fn)
			return err
		},
		"MirrorChild": func() error {
			_, err := d.MirrorChild(d.Root(), KindElement, "x", svc.ID())
			return err
		},
		"MirrorInsert": func() error {
			_, err := d.MirrorInsert(d.Root(), KindElement, "x", svc.ID())
			return err
		},
	}
	for name, fn := range mutations {
		if err := fn(); !errors.Is(err, ErrFrozen) {
			t.Errorf("%s on frozen doc: err = %v, want ErrFrozen", name, err)
		}
	}
	if d.Version() != ver {
		t.Fatalf("version moved on frozen doc: %d -> %d", ver, d.Version())
	}
}

func TestCloneOfFrozenIsMutable(t *testing.T) {
	d := buildFreezeDoc(t)
	d.Freeze()
	c := d.Clone()
	if c.Frozen() {
		t.Fatal("clone of frozen document is frozen")
	}
	if !Equal(d, c) {
		t.Fatal("clone differs from original")
	}
	if c.Version() != d.Version() {
		t.Fatalf("clone version %d != original %d", c.Version(), d.Version())
	}
	svc := c.ElementsByName("service")[0]
	if _, err := c.AppendChild(svc, KindElement, "bed"); err != nil {
		t.Fatalf("mutating clone: %v", err)
	}
	if Equal(d, c) {
		t.Fatal("mutating the clone changed the frozen original")
	}
}

func TestClonePreservesIndexesAndFragment(t *testing.T) {
	d := buildFreezeDoc(t)
	c := d.Clone()
	if c.Len() != d.Len() {
		t.Fatalf("clone Len %d != original %d", c.Len(), d.Len())
	}
	for _, n := range d.Nodes() {
		cn := c.NodeByID(n.ID())
		if cn == nil {
			t.Fatalf("clone lost node %s", n.ID())
		}
		if cn.Label() != n.Label() || cn.Kind() != n.Kind() {
			t.Fatalf("clone node %s mismatch: %s/%v vs %s/%v",
				n.ID(), cn.Label(), cn.Kind(), n.Label(), n.Kind())
		}
		if cn == n {
			t.Fatalf("clone shares node %s with original", n.ID())
		}
	}
	// Name index survives the clone.
	if got := len(c.ElementsByName("service")); got != 1 {
		t.Fatalf("clone ElementsByName(service) = %d, want 1", got)
	}

	f := NewFragment(nil)
	if _, err := f.AppendChild(f.Root(), KindElement, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AppendChild(f.Root(), KindElement, "b"); err != nil {
		t.Fatal(err)
	}
	fc := f.Clone()
	if !fc.IsFragment() {
		t.Fatal("clone of fragment lost fragment flag")
	}
	// Fragment clones must still accept multiple top-level nodes.
	if _, err := fc.AppendChild(fc.Root(), KindElement, "c"); err != nil {
		t.Fatalf("fragment clone rejects second root: %v", err)
	}
}
