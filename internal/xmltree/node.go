// Package xmltree implements the XML database tree of §3.1 of the paper: a
// document is a tree of nodes, each with a unique persistent identifier (a
// labeling.Label) and a label (an element name or a text value). The
// identifier of a node never changes across updates, and the tree geometry
// predicates of §3.2 (child, parent, descendant, ancestor, siblings,
// following, preceding) are derivable from identifiers alone.
//
// The paper models only document, element and text nodes. This package adds
// attribute nodes for XML fidelity: an attribute is modeled as a node whose
// label is the attribute name with a single text child carrying the value,
// so the access control machinery applies to attributes unchanged.
package xmltree

import (
	"fmt"
	"sort"
	"strings"

	"securexml/internal/labeling"
)

// Kind discriminates node types.
type Kind int

// Node kinds. The paper's model has Document, Element and Text; Attribute
// and Comment are XML-fidelity extensions.
const (
	KindDocument Kind = iota
	KindElement
	KindText
	KindAttribute
	KindComment
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindDocument:
		return "document"
	case KindElement:
		return "element"
	case KindText:
		return "text"
	case KindAttribute:
		return "attribute"
	case KindComment:
		return "comment"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Restricted is the replacement label shown in user views for nodes on which
// the user holds only the position privilege (§2.1, axiom 17). The semantics
// is Sandhu & Jajodia's "the label exists but you are not allowed to see it".
const Restricted = "RESTRICTED"

// Node is one node of a document tree.
//
// A Node belongs to exactly one Document and must only be mutated through
// Document methods, which maintain the label index and version counter.
type Node struct {
	kind     Kind
	label    string
	id       labeling.Label
	parent   *Node
	children []*Node // document order; for elements: attribute nodes first? no — attrs held separately
	attrs    []*Node // attribute nodes of an element, in definition order
	doc      *Document
}

// Kind returns the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Label returns the node's label: the element name for elements, the text
// value for text nodes, the attribute name for attributes, "/" for the
// document node.
func (n *Node) Label() string { return n.label }

// ID returns the node's persistent identifier. The returned label must not
// be mutated.
func (n *Node) ID() labeling.Label { return n.id }

// Parent returns the parent node, or nil for the document node.
func (n *Node) Parent() *Node { return n.parent }

// Document returns the document the node belongs to.
func (n *Node) Document() *Document { return n.doc }

// Children returns the node's children in document order. Attribute nodes
// are not included; use Attributes. The returned slice must not be modified.
func (n *Node) Children() []*Node { return n.children }

// Attributes returns an element's attribute nodes in definition order. The
// returned slice must not be modified.
func (n *Node) Attributes() []*Node { return n.attrs }

// FirstChild returns the first child in document order, or nil.
func (n *Node) FirstChild() *Node {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[0]
}

// LastChild returns the last child in document order, or nil.
func (n *Node) LastChild() *Node {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[len(n.children)-1]
}

// ChildIndex returns the position of child c under n, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, k := range n.children {
		if k == c {
			return i
		}
	}
	return -1
}

// PrecedingSibling returns the sibling immediately before n, or nil.
func (n *Node) PrecedingSibling() *Node {
	p := n.parent
	if p == nil || n.kind == KindAttribute {
		return nil
	}
	i := p.ChildIndex(n)
	if i <= 0 {
		return nil
	}
	return p.children[i-1]
}

// FollowingSibling returns the sibling immediately after n, or nil.
func (n *Node) FollowingSibling() *Node {
	p := n.parent
	if p == nil || n.kind == KindAttribute {
		return nil
	}
	i := p.ChildIndex(n)
	if i < 0 || i == len(p.children)-1 {
		return nil
	}
	return p.children[i+1]
}

// Attr returns the attribute node with the given name, or nil.
func (n *Node) Attr(name string) *Node {
	for _, a := range n.attrs {
		if a.label == name {
			return a
		}
	}
	return nil
}

// AttrValue returns the string value of the named attribute; ok reports
// whether the attribute exists.
func (n *Node) AttrValue(name string) (value string, ok bool) {
	a := n.Attr(name)
	if a == nil {
		return "", false
	}
	return a.StringValue(), true
}

// StringValue returns the XPath string-value of the node: the concatenated
// text descendants for document/element/attribute nodes, the content for
// text and comment nodes.
func (n *Node) StringValue() string {
	switch n.kind {
	case KindText, KindComment:
		return n.label
	default:
		var b strings.Builder
		n.walkText(&b)
		return b.String()
	}
}

func (n *Node) walkText(b *strings.Builder) {
	for _, c := range n.children {
		switch c.kind {
		case KindText:
			b.WriteString(c.label)
		case KindElement:
			c.walkText(b)
		}
	}
}

// Name returns the XPath "expanded name" of the node: the element or
// attribute name, and "" for other kinds.
func (n *Node) Name() string {
	switch n.kind {
	case KindElement, KindAttribute:
		return n.label
	default:
		return ""
	}
}

// IsDescendantOf reports whether n is a strict descendant of m, derived from
// the persistent identifiers (not from pointers), as §3.1 requires.
// Attribute identifiers live under their owner element's identifier, so the
// relation covers them uniformly.
func (n *Node) IsDescendantOf(m *Node) bool { return n.id.IsDescendantOf(m.id) }

// Walk visits n and every descendant (attributes included, before children)
// in document order. If fn returns false the subtree below the current node
// is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, a := range n.attrs {
		a.Walk(fn)
	}
	for _, c := range n.children {
		c.Walk(fn)
	}
}

// Subtree returns n and all its descendants in document order.
func (n *Node) Subtree() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		out = append(out, m)
		return true
	})
	return out
}

// Path returns a human-readable element path for diagnostics, e.g.
// "/patients/franck/diagnosis" or "/patients/franck/@id". Text nodes render
// as "text()". It is not a unique identifier — labels are.
func (n *Node) Path() string {
	if n.kind == KindDocument {
		return "/"
	}
	var parts []string
	for m := n; m != nil && m.kind != KindDocument; m = m.parent {
		switch m.kind {
		case KindText:
			parts = append(parts, "text()")
		case KindComment:
			parts = append(parts, "comment()")
		case KindAttribute:
			parts = append(parts, "@"+m.label)
		default:
			parts = append(parts, m.label)
		}
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// CompareDocOrder orders nodes by document order using their persistent
// identifiers. It returns -1, 0 or +1.
func CompareDocOrder(a, b *Node) int { return a.id.Compare(b.id) }

// SortDocOrder sorts nodes in place into document order and removes
// duplicates, returning the possibly shortened slice.
func SortDocOrder(nodes []*Node) []*Node {
	sort.Slice(nodes, func(i, j int) bool { return CompareDocOrder(nodes[i], nodes[j]) < 0 })
	out := nodes[:0]
	for i, n := range nodes {
		if i == 0 || n != nodes[i-1] {
			out = append(out, n)
		}
	}
	return out
}
