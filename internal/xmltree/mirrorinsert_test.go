package xmltree

import "testing"

// TestMirrorInsertSplices: mirroring out of document order splices at the
// position the identifier dictates, where MirrorChild would refuse.
func TestMirrorInsertSplices(t *testing.T) {
	src, err := ParseString(`<r a="1"><x/><y/><z/></r>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root := src.RootElement()
	x, y, z := root.Children()[0], root.Children()[1], root.Children()[2]
	attr := root.Attributes()[0]

	dst := New(src.Scheme())
	mroot, err := dst.MirrorChild(dst.Root(), KindElement, "r", root.ID())
	if err != nil {
		t.Fatal(err)
	}
	// Mirror x and z first, then y out of order.
	for _, n := range []*Node{x, z} {
		if _, err := dst.MirrorChild(mroot, n.Kind(), n.Label(), n.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dst.MirrorChild(mroot, y.Kind(), y.Label(), y.ID()); err == nil {
		t.Fatal("MirrorChild accepted an out-of-order mirror")
	}
	if _, err := dst.MirrorInsert(mroot, y.Kind(), y.Label(), y.ID()); err != nil {
		t.Fatal(err)
	}
	got := dst.RootElement().Children()
	if len(got) != 3 || got[0].Label() != "x" || got[1].Label() != "y" || got[2].Label() != "z" {
		t.Fatalf("children after splice: %v", []string{got[0].Label(), got[1].Label(), got[2].Label()})
	}
	// Attributes splice into the attribute list.
	if _, err := dst.MirrorInsert(mroot, KindAttribute, attr.Label(), attr.ID()); err != nil {
		t.Fatal(err)
	}
	if len(dst.RootElement().Attributes()) != 1 {
		t.Fatal("attribute not mirrored")
	}
	// Duplicate ids are rejected.
	if _, err := dst.MirrorInsert(mroot, y.Kind(), y.Label(), y.ID()); err == nil {
		t.Fatal("duplicate identifier accepted")
	}
	// Non-child identifiers are rejected.
	if _, err := dst.MirrorInsert(mroot, KindElement, "bad", root.ID()); err == nil {
		t.Fatal("non-child identifier accepted")
	}
}
