package logicmodel

// Metamorphic extension of the E9 equivalence suite: after a secured write,
// the *incrementally maintained* view (internal/view.Maintainer patching a
// previously materialized view with the executor's delta report) must equal
// the Datalog derivation of the view axioms 15–17 evaluated over the
// axiom-18–25 post-update database. This closes the loop between the two
// implementations: the native fast path and the logic model must agree not
// just on fresh materializations but on patched ones.

import (
	"fmt"
	"math/rand"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// maintainAndCompare materializes user's view of d, executes op on a clone
// as writer via the secured executor, patches the view with the reported
// deltas, and compares the patched view against the logic model's
// node_view facts derived from the post-update clone. It returns the
// post-update clone so callers can chain further ops.
func maintainAndCompare(t *testing.T, tag string, d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, writer string, op *xupdate.Op) *xmltree.Document {
	t.Helper()
	type state struct {
		v  *view.View
		pm *policy.Perms
		m  *view.Maintainer
	}
	states := make(map[string]*state)
	for _, u := range h.Users() {
		pm, err := p.Evaluate(d, h, u)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := view.NewMaintainer(p, h, u)
		if !ok {
			t.Fatalf("%s: user %s: policy must be chain-only for the maintainer", tag, u)
		}
		states[u] = &state{v: view.Materialize(d, pm), pm: pm, m: m}
	}
	clone := d.Clone()
	res, _, err := accessExecute(clone, h, p, writer, op)
	if err != nil {
		t.Fatalf("%s: execute: %v", tag, err)
	}
	for _, u := range h.Users() {
		st := states[u]
		if err := st.m.Apply(st.v, clone, st.pm, res.Deltas); err != nil {
			t.Fatalf("%s: user %s: apply: %v", tag, u, err)
		}
		m, err := Build(clone, h, p, u)
		if err != nil {
			t.Fatal(err)
		}
		compareViewToLogic(t, fmt.Sprintf("%s: user %s", tag, u), st.v, m.ViewFacts())
	}
	return clone
}

// compareViewToLogic requires the maintained view and the logic model's
// node_view facts to contain exactly the same (id, label) pairs.
func compareViewToLogic(t *testing.T, tag string, v *view.View, logic map[string]string) {
	t.Helper()
	native := make(map[string]string)
	for _, n := range v.Doc.Nodes() {
		native[n.ID().String()] = n.Label()
	}
	if len(native) != len(logic) {
		t.Errorf("%s: view sizes differ: maintained %d, logic %d", tag, len(native), len(logic))
	}
	for id, label := range native {
		if logic[id] != label {
			t.Errorf("%s: node_view(%s): maintained %q, logic %q", tag, id, label, logic[id])
		}
	}
	for id := range logic {
		if _, ok := native[id]; !ok {
			t.Errorf("%s: logic view has node %s the maintained view lacks", tag, id)
		}
	}
}

// TestMetamorphicPaperMaintainedView replays the paper write scenario
// (the same op tables as the direct equivalence tests) and checks every
// user's incrementally maintained view against the Datalog axioms.
func TestMetamorphicPaperMaintainedView(t *testing.T) {
	for _, tc := range []struct {
		writer string
		op     *xupdate.Op
	}{
		{"beaufort", &xupdate.Op{Kind: xupdate.Rename, Select: "/patients/*", NewValue: "patient"}},
		{"laporte", &xupdate.Op{Kind: xupdate.Rename, Select: "//diagnosis", NewValue: "dx"}},
		{"robert", &xupdate.Op{Kind: xupdate.Rename, Select: "/patients/robert", NewValue: "me"}},
		{"laporte", &xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "seen"}},
		{"beaufort", &xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "leak"}},
		{"richard", &xupdate.Op{Kind: xupdate.Update, Select: "/patients/RESTRICTED", NewValue: "x"}},
		{"laporte", &xupdate.Op{Kind: xupdate.Remove, Select: "//diagnosis/node()"}},
		{"beaufort", &xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck"}},
		{"robert", &xupdate.Op{Kind: xupdate.Remove, Select: "/patients/robert"}},
		{"beaufort", mkInsert(t, xupdate.Append, "/patients")},
		{"laporte", mkInsert(t, xupdate.Append, "//diagnosis")},
		{"robert", mkInsert(t, xupdate.Append, "/patients/robert")},
		{"beaufort", mkInsert(t, xupdate.InsertBefore, "/patients/franck")},
		{"beaufort", mkInsert(t, xupdate.InsertAfter, "/patients/franck/service")},
	} {
		d, h, p := paperEnv(t)
		tag := fmt.Sprintf("%s %s by %s", tc.op.Kind, tc.op.Select, tc.writer)
		maintainAndCompare(t, tag, d, h, p, tc.writer, tc.op)
	}
}

// TestMetamorphicPaperOpChain chains several paper writes on one document,
// re-checking the axiom equivalence after every step (each step starts
// from the previous step's post-update database).
func TestMetamorphicPaperOpChain(t *testing.T) {
	d, h, p := paperEnv(t)
	for i, tc := range []struct {
		writer string
		op     *xupdate.Op
	}{
		{"laporte", &xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "reviewed"}},
		{"laporte", mkInsert(t, xupdate.Append, "//diagnosis")},
		{"robert", &xupdate.Op{Kind: xupdate.Rename, Select: "/patients/robert", NewValue: "me"}},
		{"beaufort", &xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck/service"}},
	} {
		tag := fmt.Sprintf("chain step %d: %s %s by %s", i, tc.op.Kind, tc.op.Select, tc.writer)
		d = maintainAndCompare(t, tag, d, h, p, tc.writer, tc.op)
	}
}

// TestMetamorphicRandomMaintainedView fuzzes documents, policies and write
// ops: after each secured write the maintained views of u1 and u2 must
// match the Datalog view derivation over the post-update database.
func TestMetamorphicRandomMaintainedView(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	sels := []string{"//a", "//diagnosis", "/root/*", "//b", "//c/node()"}
	for i := 0; i < 15; i++ {
		d := randomDoc(t, rng)
		h := randomHierarchy(t)
		p := randomPolicy(t, rng, h)
		var op *xupdate.Op
		switch rng.Intn(4) {
		case 0:
			op = &xupdate.Op{Kind: xupdate.Rename, Select: sels[rng.Intn(len(sels))], NewValue: "renamed"}
		case 1:
			op = &xupdate.Op{Kind: xupdate.Update, Select: sels[rng.Intn(len(sels))], NewValue: "updated"}
		case 2:
			op = mkInsert(t, xupdate.Append, sels[rng.Intn(len(sels))])
		default:
			op = &xupdate.Op{Kind: xupdate.Remove, Select: sels[rng.Intn(len(sels))]}
		}
		tag := fmt.Sprintf("iter %d: %s %s", i, op.Kind, op.Select)
		maintainAndCompare(t, tag, d, h, p, "u2", op)
	}
}
