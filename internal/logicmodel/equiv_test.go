package logicmodel

// Experiment E9 (DESIGN.md): the paper's Horn-clause axioms, run as Datalog
// rules, agree with the native engines on perm facts (axiom 14), views
// (axioms 15–17) and post-update databases (axioms 18–25) — on the paper's
// own scenario and on randomized documents and policies.

import (
	"fmt"
	"math/rand"
	"testing"

	"securexml/internal/access"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

// accessExecute aliases the native secured executor for readability.
var accessExecute = access.Execute

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

func paperEnv(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

// checkPermEquivalence compares the logic model's perm facts with the
// native evaluator for every node and privilege.
func checkPermEquivalence(t *testing.T, d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, user string) {
	t.Helper()
	m, err := Build(d, h, p, user)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := p.Evaluate(d, h, user)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nodes() {
		for _, priv := range policy.Privileges {
			native := pm.Has(n, priv)
			logic := m.HasPerm(n.ID().String(), priv)
			if native != logic {
				t.Errorf("user %s: perm(%s [%s], %s): native=%v logic=%v",
					user, n.ID(), n.Path(), priv, native, logic)
			}
		}
	}
}

// checkViewEquivalence compares the logic model's node_view facts with the
// native materializer.
func checkViewEquivalence(t *testing.T, d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, user string) {
	t.Helper()
	m, err := Build(d, h, p, user)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := p.Evaluate(d, h, user)
	if err != nil {
		t.Fatal(err)
	}
	v := view.Materialize(d, pm)
	native := make(map[string]string)
	for _, n := range v.Doc.Nodes() {
		native[n.ID().String()] = n.Label()
	}
	logic := m.ViewFacts()
	if len(native) != len(logic) {
		t.Errorf("user %s: view sizes differ: native %d, logic %d", user, len(native), len(logic))
	}
	for id, label := range native {
		if logic[id] != label {
			t.Errorf("user %s: node_view(%s): native %q, logic %q", user, id, label, logic[id])
		}
	}
	for id := range logic {
		if _, ok := native[id]; !ok {
			t.Errorf("user %s: logic view has extra node %s", user, id)
		}
	}
}

func TestPaperPermEquivalence(t *testing.T) {
	d, h, p := paperEnv(t)
	for _, user := range h.Users() {
		checkPermEquivalence(t, d, h, p, user)
	}
}

func TestPaperViewEquivalence(t *testing.T) {
	d, h, p := paperEnv(t)
	for _, user := range h.Users() {
		checkViewEquivalence(t, d, h, p, user)
	}
}

// checkWriteEquivalence runs a destructive op natively on a clone and
// compares the resulting database with the logic model's node_dbnew facts.
func checkWriteEquivalence(t *testing.T, d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, user string, op *xupdate.Op) {
	t.Helper()
	pm, err := p.Evaluate(d, h, user)
	if err != nil {
		t.Fatal(err)
	}
	v := view.Materialize(d, pm)
	m, err := BuildWithOp(d, h, p, user, v, op)
	if err != nil {
		t.Fatal(err)
	}
	logic := m.NewDBFacts()

	clone := d.Clone()
	if _, _, err := accessExecute(clone, h, p, user, op); err != nil {
		t.Fatal(err)
	}
	native := make(map[string]string)
	for _, n := range clone.Nodes() {
		native[n.ID().String()] = n.Label()
	}
	if len(native) != len(logic) {
		t.Errorf("%s by %s: db sizes differ: native %d, logic %d", op.Kind, user, len(native), len(logic))
	}
	for id, label := range native {
		if logic[id] != label {
			t.Errorf("%s by %s: node_dbnew(%s): native %q, logic %q", op.Kind, user, id, label, logic[id])
		}
	}
}

func TestPaperRenameEquivalence(t *testing.T) {
	d, h, p := paperEnv(t)
	for _, tc := range []struct {
		user string
		op   *xupdate.Op
	}{
		{"beaufort", &xupdate.Op{Kind: xupdate.Rename, Select: "/patients/*", NewValue: "patient"}},
		{"laporte", &xupdate.Op{Kind: xupdate.Rename, Select: "//diagnosis", NewValue: "dx"}},
		{"robert", &xupdate.Op{Kind: xupdate.Rename, Select: "/patients/robert", NewValue: "me"}},
	} {
		checkWriteEquivalence(t, d, h, p, tc.user, tc.op)
	}
}

func TestPaperUpdateEquivalence(t *testing.T) {
	d, h, p := paperEnv(t)
	for _, tc := range []struct {
		user string
		op   *xupdate.Op
	}{
		{"laporte", &xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "seen"}},
		{"beaufort", &xupdate.Op{Kind: xupdate.Update, Select: "//diagnosis", NewValue: "leak"}},
		{"richard", &xupdate.Op{Kind: xupdate.Update, Select: "/patients/RESTRICTED", NewValue: "x"}},
	} {
		checkWriteEquivalence(t, d, h, p, tc.user, tc.op)
	}
}

func TestPaperRemoveEquivalence(t *testing.T) {
	d, h, p := paperEnv(t)
	for _, tc := range []struct {
		user string
		op   *xupdate.Op
	}{
		{"laporte", &xupdate.Op{Kind: xupdate.Remove, Select: "//diagnosis/node()"}},
		{"beaufort", &xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck"}},
		{"robert", &xupdate.Op{Kind: xupdate.Remove, Select: "/patients/robert"}},
	} {
		checkWriteEquivalence(t, d, h, p, tc.user, tc.op)
	}
}

// TestPaperInsertPointsEquivalence compares where the logic model permits
// insertion with where the native engine actually inserted.
func TestPaperInsertPointsEquivalence(t *testing.T) {
	for _, tc := range []struct {
		user string
		op   *xupdate.Op
	}{
		{"beaufort", mkInsert(t, xupdate.Append, "/patients")},
		{"laporte", mkInsert(t, xupdate.Append, "//diagnosis")},
		{"robert", mkInsert(t, xupdate.Append, "/patients/robert")},
		{"beaufort", mkInsert(t, xupdate.InsertBefore, "/patients/franck")},
		{"beaufort", mkInsert(t, xupdate.InsertAfter, "/patients/franck/service")},
		{"laporte", mkInsert(t, xupdate.InsertBefore, "//diagnosis/node()")},
	} {
		d, h, p := paperEnv(t)
		pm, err := p.Evaluate(d, h, tc.user)
		if err != nil {
			t.Fatal(err)
		}
		v := view.Materialize(d, pm)
		m, err := BuildWithOp(d, h, p, tc.user, v, tc.op)
		if err != nil {
			t.Fatal(err)
		}
		logic := m.InsertPoints()

		// Natively: applied targets = selected on view minus skipped.
		clone := d.Clone()
		res, rv, err := accessExecute(clone, h, p, tc.user, tc.op)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := xpath.Select(rv.Doc, tc.op.Select, xpath.Vars{"USER": xpath.String(tc.user)})
		if err != nil {
			t.Fatal(err)
		}
		skipped := make(map[string]bool)
		for _, s := range res.Skipped {
			skipped[s.NodeID] = true
		}
		native := make(map[string]bool)
		for _, n := range sel {
			if !skipped[n.ID().String()] {
				native[n.ID().String()] = true
			}
		}
		if fmt.Sprint(native) != fmt.Sprint(logic) {
			t.Errorf("%s %s by %s: insert points native %v, logic %v",
				tc.op.Kind, tc.op.Select, tc.user, native, logic)
		}
	}
}

func mkInsert(t *testing.T, kind xupdate.Kind, sel string) *xupdate.Op {
	t.Helper()
	frag, err := xmltree.ParseString("<x/>", xmltree.ParseOptions{Fragment: true})
	if err != nil {
		t.Fatal(err)
	}
	return &xupdate.Op{Kind: kind, Select: sel, Content: frag}
}

// --- randomized equivalence ---------------------------------------------------

// randomDoc builds a small random tree.
func randomDoc(t *testing.T, rng *rand.Rand) *xmltree.Document {
	t.Helper()
	d := xmltree.New(nil)
	root, err := d.AppendChild(d.Root(), xmltree.KindElement, "root")
	if err != nil {
		t.Fatal(err)
	}
	elems := []*xmltree.Node{root}
	names := []string{"a", "b", "c", "diagnosis"}
	for i := 0; i < 12+rng.Intn(10); i++ {
		parent := elems[rng.Intn(len(elems))]
		if rng.Intn(4) == 0 {
			if _, err := d.AppendChild(parent, xmltree.KindText, fmt.Sprintf("t%d", i)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		n, err := d.AppendChild(parent, xmltree.KindElement, names[rng.Intn(len(names))])
		if err != nil {
			t.Fatal(err)
		}
		elems = append(elems, n)
	}
	return d
}

// randomPolicy builds a random rule set over a fixed path pool.
func randomPolicy(t *testing.T, rng *rand.Rand, h *subject.Hierarchy) *policy.Policy {
	t.Helper()
	paths := []string{
		"/descendant-or-self::node()", "//a", "//b", "//c/node()", "//diagnosis",
		"/root/*", "//a/node()", "/root", "//diagnosis/node()", "//b/*",
	}
	subjects := []string{"r1", "r2", "u1", "u2"}
	p := policy.New()
	n := 4 + rng.Intn(8)
	for i := 0; i < n; i++ {
		eff := policy.Accept
		if rng.Intn(3) == 0 {
			eff = policy.Deny
		}
		priv := policy.Privileges[rng.Intn(len(policy.Privileges))]
		err := p.Add(h, policy.Rule{
			Effect: eff, Privilege: priv,
			Path:     paths[rng.Intn(len(paths))],
			Subject:  subjects[rng.Intn(len(subjects))],
			Priority: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func randomHierarchy(t *testing.T) *subject.Hierarchy {
	t.Helper()
	h := subject.NewHierarchy()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(h.AddRole("r1"))
	must(h.AddRole("r2", "r1"))
	must(h.AddUser("u1", "r1"))
	must(h.AddUser("u2", "r2"))
	return h
}

// TestRandomizedEquivalence fuzzes documents and policies and requires the
// logic model and the native engines to agree on perms and views.
func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20250704))
	for i := 0; i < 25; i++ {
		d := randomDoc(t, rng)
		h := randomHierarchy(t)
		p := randomPolicy(t, rng, h)
		for _, user := range []string{"u1", "u2"} {
			checkPermEquivalence(t, d, h, p, user)
			checkViewEquivalence(t, d, h, p, user)
		}
	}
}

// TestRandomizedWriteEquivalence fuzzes destructive ops.
func TestRandomizedWriteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sels := []string{"//a", "//diagnosis", "/root/*", "//b", "//c/node()"}
	for i := 0; i < 15; i++ {
		d := randomDoc(t, rng)
		h := randomHierarchy(t)
		p := randomPolicy(t, rng, h)
		var op *xupdate.Op
		switch rng.Intn(3) {
		case 0:
			op = &xupdate.Op{Kind: xupdate.Rename, Select: sels[rng.Intn(len(sels))], NewValue: "renamed"}
		case 1:
			op = &xupdate.Op{Kind: xupdate.Update, Select: sels[rng.Intn(len(sels))], NewValue: "updated"}
		default:
			op = &xupdate.Op{Kind: xupdate.Remove, Select: sels[rng.Intn(len(sels))]}
		}
		checkWriteEquivalence(t, d, h, p, "u2", op)
	}
}
