// Package logicmodel encodes the paper's axioms 11–25 literally as Datalog
// rules over the internal/datalog engine — the faithful executable
// counterpart of the author's Prolog prototype. It exists as a reference
// oracle: property tests check that the native engines (internal/policy,
// internal/view, internal/access) derive exactly the same perm facts, view
// facts and post-update databases.
//
// Division of labour, matching the paper: the paper does not give axioms
// for the xpath predicate or for create_number ("these axioms can be found
// in our prototype" / "depend on the numbering scheme"); likewise this
// package is fed xpath(p, n) facts computed by the native XPath engine and
// compares insertion *points* rather than generated identifiers.
package logicmodel

import (
	"fmt"

	"securexml/internal/datalog"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

// axioms is the rule set of §4, in the paper's numbering. The perm relation
// is specialized to the logged session user (predicate logged/1), as the
// paper's access control axioms all are.
const axioms = `
% axiom 11: reflexivity of isa
isa(S, S) :- subject(S).
% axiom 12: transitivity of isa (isa_edge holds the direct facts of set S)
isa(S, T) :- isa_edge(S, T).
isa(S, T) :- isa_edge(S, M), isa(M, T).

% axiom 14: conflict resolution. defeated(N, R, T) holds when a deny rule
% applicable to the logged user covers node N for privilege R strictly
% later than T. prio/1 ranges over the priorities in use, binding T.
prio(T) :- rulef(E, R, P, S, T).
defeated(N, R, T) :- prio(T), logged(S), isa(S, S2), rulef(deny, R, P2, S2, T2),
                     xpathf(P2, N), gt(T2, T).
perm(N, R) :- logged(S), isa(S, S2), rulef(accept, R, P, S2, T),
              xpathf(P, N), not defeated(N, R, T).

% axioms 15-17: the view. selected/1 is the "parent is itself selected"
% recursion; the document node is always selected (axiom 15).
selected("/").
selected(N) :- child(N, P), selected(P), perm(N, read).
selected(N) :- child(N, P), selected(P), perm(N, position).
% axioms 16 and 17 both require child(n, n') — the document node is covered
% only by axiom 15, never relabeled.
node_view(N, V) :- node(N, V), selected(N), child(N, P), perm(N, read).
node_view(N, "RESTRICTED") :- node(N, V), selected(N), child(N, P),
                              perm(N, position), not perm(N, read).
node_view("/", "/").

% tree geometry: descendant-or-self, derived from child as in set RS of 3.3
desc_or_self(N, N) :- node(N, V).
desc_or_self(N, A) :- child(N, P), desc_or_self(P, A).
`

// updateAxioms encodes the write axioms 18–25 for one operation. The facts
// xpath_view(N) (the op's PATH evaluated on the view) and child_view(C, N)
// are supplied from the materialized view, and vnew/1 carries the VNEW
// parameter.
const updateAxioms = `
% axioms 18-19 (xupdate:rename), with the 4.4.2 RESTRICTED refinement:
% a node is renamed iff addressed on the view and the user holds update and
% read on it.
renamed(N) :- op(rename), xpath_view(N), perm(N, update), perm(N, read).

% axioms 20-21 (xupdate:update): the children in the view of the addressed
% nodes, requiring update and read on the child.
updated(N) :- op(update), xpath_view(NP), child_view(N, NP),
              perm(N, update), perm(N, read).

% axiom 22 (xupdate:append): insertion point is the addressed node itself.
insert_at(N) :- op(append), xpath_view(N), perm(N, insert).

% axioms 23-24 (insert-before/after): the insert privilege sits on the
% parent (in the view) of the addressed node.
insert_at(N) :- op(insert-before), xpath_view(N), child_view(N, F), perm(F, insert).
insert_at(N) :- op(insert-after), xpath_view(N), child_view(N, F), perm(F, insert).

% axiom 25 (xupdate:remove): everything at or below an addressed,
% delete-permitted node disappears.
delroot(NP) :- op(remove), xpath_view(NP), perm(NP, delete).
deleted(N) :- node(N, V), desc_or_self(N, NP), delroot(NP).

% the new database: changed nodes take VNEW, unchanged and undeleted nodes
% keep their labels (the "not addressed / not permitted -> unchanged" halves
% of axioms 18, 20 and 25).
changed(N) :- renamed(N).
changed(N) :- updated(N).
changed(N) :- deleted(N).
node_dbnew(N, W) :- renamed(N), vnew(W).
node_dbnew(N, W) :- updated(N), vnew(W).
node_dbnew(N, V) :- node(N, V), not changed(N).
`

// Model is the logic encoding of one (document, hierarchy, policy, user)
// state, optionally extended with one update operation.
type Model struct {
	engine *datalog.Engine
	db     *datalog.DB
}

// Build constructs and evaluates the model for the session user.
func Build(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, user string) (*Model, error) {
	return build(doc, h, pol, user, nil, nil)
}

// BuildWithOp constructs the model extended with the write axioms for op.
// The view v must be the user's materialized view of doc (it supplies the
// xpath_view and child_view facts, mirroring §4.4.2's "selecting nodes is
// performed on the view").
func BuildWithOp(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, user string, v *view.View, op *xupdate.Op) (*Model, error) {
	return build(doc, h, pol, user, v, op)
}

func build(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, user string, v *view.View, op *xupdate.Op) (*Model, error) {
	src := axioms
	if op != nil {
		src += updateAxioms
	}
	e, err := datalog.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("logicmodel: axioms: %w", err)
	}

	// Database facts: node/2 and child/2 (sets F and the derived geometry
	// of §3.3).
	for _, n := range doc.Nodes() {
		e.Fact("node", n.ID().String(), n.Label())
		if p := n.Parent(); p != nil {
			e.Fact("child", n.ID().String(), p.ID().String())
		}
	}

	// Subject facts (set S, axiom 10).
	subjects, isa := h.Facts()
	for _, s := range subjects {
		e.Fact("subject", s)
	}
	for _, edge := range isa {
		e.Fact("isa_edge", edge[0], edge[1])
	}
	e.Fact("logged", user)

	// Policy facts (set P, axiom 13) plus the xpath(p, n) extension of each
	// rule path, computed by the native XPath engine on the source document
	// with $USER bound — exactly what the prototype's xpath axioms compute.
	vars := xpath.Vars{"USER": xpath.String(user)}
	for i, r := range pol.Rules() {
		pathID := fmt.Sprintf("p%d", i)
		e.Fact("rulef", r.Effect.String(), r.Privilege.String(), pathID,
			r.Subject, fmt.Sprintf("%d", r.Priority))
		c, err := xpath.Compile(r.Path)
		if err != nil {
			return nil, fmt.Errorf("logicmodel: rule path %q: %w", r.Path, err)
		}
		ns, err := c.Select(doc.Root(), vars)
		if err != nil {
			return nil, fmt.Errorf("logicmodel: evaluating rule path %q: %w", r.Path, err)
		}
		for _, n := range ns {
			e.Fact("xpathf", pathID, n.ID().String())
		}
	}

	if op != nil {
		opName := map[xupdate.Kind]string{
			xupdate.Rename:       "rename",
			xupdate.Update:       "update",
			xupdate.Append:       "append",
			xupdate.InsertBefore: "insert-before",
			xupdate.InsertAfter:  "insert-after",
			xupdate.Remove:       "remove",
		}[op.Kind]
		if opName == "" {
			return nil, fmt.Errorf("logicmodel: unknown op kind %d", int(op.Kind))
		}
		e.Fact("op", opName)
		if op.NewValue != "" || op.Kind == xupdate.Rename || op.Kind == xupdate.Update {
			e.Fact("vnew", op.NewValue)
		}
		// xpath_view: the op's PATH evaluated on the view (§4.4.2).
		sel, err := xpath.Select(v.Doc, op.Select, vars)
		if err != nil {
			return nil, fmt.Errorf("logicmodel: op path on view: %w", err)
		}
		for _, n := range sel {
			e.Fact("xpath_view", n.ID().String())
		}
		// child_view facts.
		for _, n := range v.Doc.Nodes() {
			if p := n.Parent(); p != nil {
				e.Fact("child_view", n.ID().String(), p.ID().String())
			}
		}
	}

	db, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("logicmodel: evaluation: %w", err)
	}
	return &Model{engine: e, db: db}, nil
}

// HasPerm reports the derived perm(n, r) fact for the logged user.
func (m *Model) HasPerm(nodeID string, priv policy.Privilege) bool {
	return m.db.Has("perm", nodeID, priv.String())
}

// ViewFacts returns the derived node_view relation: node id → view label.
func (m *Model) ViewFacts() map[string]string {
	out := make(map[string]string)
	for _, t := range m.db.All("node_view") {
		out[t[0]] = t[1]
	}
	return out
}

// NewDBFacts returns the derived node_dbnew relation after an update
// operation: node id → new label. Only meaningful for models built with
// BuildWithOp and a rename/update/remove op (creating ops add nodes, which
// Datalog cannot invent identifiers for; use InsertPoints for those).
func (m *Model) NewDBFacts() map[string]string {
	out := make(map[string]string)
	for _, t := range m.db.All("node_dbnew") {
		out[t[0]] = t[1]
	}
	return out
}

// InsertPoints returns the derived insert_at relation: the nodes (by id)
// at which a creating operation is permitted to insert.
func (m *Model) InsertPoints() map[string]bool {
	out := make(map[string]bool)
	for _, t := range m.db.All("insert_at") {
		out[t[0]] = true
	}
	return out
}

// DB exposes the underlying evaluated database for inspection (demo use).
func (m *Model) DB() *datalog.DB { return m.db }
