package srcanalysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockguardPass proves the mutex discipline the shared-scan tier documents
// in comments. A struct field is *guarded* when its comment says
// "guarded by <mu>" or when it sits in the same blank-line-free group as a
// sync.Mutex/RWMutex field (the Go convention the Database, Session and
// RuleCache structs follow). A guarded field may be touched only where the
// analysis can see the guard held:
//
//   - unguarded-access: the enclosing function neither calls
//     <mu>.Lock/RLock on the guard (outside nested closures) nor carries a
//     "callers hold <mu>" annotation, and the value is not a freshly
//     constructed local (constructors may initialize before sharing).
//     Inside a `go func(){...}` literal the surrounding function's locks
//     and annotations do not count — the goroutine runs after they are
//     released — so only locks taken inside the literal itself satisfy the
//     guard; the same rule covers locals guarded by a var-block mutex
//     (the WarmSessions pattern).
//   - guard-escape: a return statement hands a guarded reference-carrying
//     value (pointer, slice, map, ...) out of the critical section, where
//     the guard no longer protects it. Licensed when the function is
//     annotated "callers hold <mu>" (the caller is still inside the
//     section), when the escaping value carries its own synchronization
//     (a struct with a mutex or atomic field defends itself), or when the
//     value is rooted in a fresh local.
//
// The analysis is flow-insensitive and ignores instance identity: holding
// *any* a.mu licenses touching *any* A.guarded — the discipline proven is
// "this code never touches a guarded field without thinking about the
// lock", which is exactly what the comments promised and nothing enforced.
var lockguardPass = &pass{
	name: "lockguard",
	doc:  "guarded struct fields touched without their mutex held or escaping the critical section",
	run:  runLockguard,
}

func runLockguard(a *analysis) {
	guards := make(map[types.Object][]types.Object)
	for _, pkg := range a.targets {
		collectFieldGuards(a.prog.Fset, pkg, guards)
	}
	for _, pkg := range a.targets {
		inspectFuncs(pkg, func(fd *ast.FuncDecl) {
			held := make(map[types.Object]bool)
			annotated := false
			for _, path := range holdPaths(commentText(fd.Doc)) {
				if mv := resolveMutexPath(pkg, fd, path); mv != nil {
					held[mv] = true
					annotated = true
				}
			}
			for _, m := range locksIn(pkg, fd.Body) {
				held[m] = true
			}
			w := &lockWalker{
				a: a, pkg: pkg,
				guards:      guards,
				localGuards: collectLocalGuards(a.prog.Fset, pkg, fd.Body),
				fresh:       freshLocals(pkg, fd),
				annotated:   annotated,
			}
			w.walk(fd.Body, held, false)
		})
	}
}

// collectFieldGuards maps every guarded struct field object to its
// guarding mutex objects. Guards attach two ways: an explicit
// "guarded by <path>" field comment (which also opens a guarded group for
// the blank-line-adjacent fields that follow), or plain adjacency to a
// mutex-typed field. sync/sync-atomic-typed fields synchronize themselves
// and are never guarded; a blank line ends a group.
func collectFieldGuards(fset *token.FileSet, pkg *Pkg, guards map[types.Object][]types.Object) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tobj := pkg.Info.Defs[ts.Name]
				if tobj == nil {
					continue
				}
				collectStructGuards(fset, pkg, tobj.Type(), st, guards)
			}
		}
	}
}

func collectStructGuards(fset *token.FileSet, pkg *Pkg, structType types.Type, st *ast.StructType, guards map[types.Object][]types.Object) {
	var current types.Object // the group's guard, nil outside a group
	prevEnd := -1
	for _, field := range st.Fields.List {
		start := fset.Position(field.Pos()).Line
		if field.Doc != nil {
			start = fset.Position(field.Doc.Pos()).Line
		}
		end := fset.Position(field.End()).Line
		if field.Comment != nil {
			end = fset.Position(field.Comment.End()).Line
		}
		if prevEnd >= 0 && start-prevEnd > 1 {
			current = nil // blank line: the mutex-adjacency group ends
		}
		prevEnd = end

		var ft types.Type
		if tv, ok := pkg.Info.Types[field.Type]; ok {
			ft = tv.Type
		}
		var explicit types.Object
		for _, path := range guardedPaths(commentText(field.Doc, field.Comment)) {
			if mv := mutexVar(fieldPath(structType, strings.Split(path, "."))); mv != nil {
				explicit = mv
				break
			}
		}
		switch {
		case explicit != nil:
			current = explicit
			guardNames(pkg, field, current, guards)
		case ft != nil && isMutexType(ft):
			// The mutex itself opens a group and is never guarded.
			if len(field.Names) > 0 {
				if obj := pkg.Info.Defs[field.Names[0]]; obj != nil {
					current = obj
				}
			}
		case ft != nil && isSyncType(ft):
			// Self-synchronizing (WaitGroup, Once, atomics): neither guarded
			// nor a group break.
		case current != nil:
			guardNames(pkg, field, current, guards)
		}
	}
}

func guardNames(pkg *Pkg, field *ast.Field, mutex types.Object, guards map[types.Object][]types.Object) {
	for _, name := range field.Names {
		if obj := pkg.Info.Defs[name]; obj != nil {
			guards[obj] = append(guards[obj], mutex)
		}
	}
}

// collectLocalGuards applies the same adjacency convention to `var (...)`
// blocks: locals declared after a mutex in the same block are guarded by
// it. They are enforced only inside `go` literals — within the declaring
// function the mutex exists to coordinate with its goroutines.
func collectLocalGuards(fset *token.FileSet, pkg *Pkg, body *ast.BlockStmt) map[types.Object][]types.Object {
	guards := make(map[types.Object][]types.Object)
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		var current types.Object
		prevEnd := -1
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			start := fset.Position(vs.Pos()).Line
			if vs.Doc != nil {
				start = fset.Position(vs.Doc.Pos()).Line
			}
			if prevEnd >= 0 && start-prevEnd > 1 {
				current = nil
			}
			prevEnd = fset.Position(vs.End()).Line
			for _, name := range vs.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				switch {
				case isMutexType(obj.Type()):
					current = obj
				case isSyncType(obj.Type()):
				case current != nil:
					guards[obj] = append(guards[obj], current)
				}
			}
		}
		return true
	})
	return guards
}

// locksIn collects the mutex objects whose Lock or RLock the body calls
// directly — nested function literals are excluded, since their locks
// protect a different dynamic extent.
func locksIn(pkg *Pkg, body ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || !isMutexType(tv.Type) {
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				out = append(out, obj)
			}
		case *ast.SelectorExpr:
			if s := pkg.Info.Selections[x]; s != nil {
				out = append(out, s.Obj())
			} else if obj := pkg.Info.Uses[x.Sel]; obj != nil {
				out = append(out, obj) // package-level mutex
			}
		}
		return true
	})
	return out
}

// lockWalker carries one function's checking context down its body.
type lockWalker struct {
	a           *analysis
	pkg         *Pkg
	guards      map[types.Object][]types.Object
	localGuards map[types.Object][]types.Object
	fresh       map[types.Object]bool
	annotated   bool // the function has a resolved "callers hold" annotation
}

func (w *lockWalker) walk(node ast.Node, held map[types.Object]bool, inGo bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if fl, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				// The goroutine body runs after the caller's locks are
				// released: it starts with only the locks it takes itself.
				goHeld := make(map[types.Object]bool)
				for _, m := range locksIn(w.pkg, fl.Body) {
					goHeld[m] = true
				}
				w.walk(fl.Body, goHeld, true)
				for _, arg := range x.Call.Args {
					w.walk(arg, held, inGo)
				}
				return false
			}
		case *ast.FuncLit:
			// A synchronously invoked or stored literal inherits the
			// surrounding context and may add its own locks.
			inner := make(map[types.Object]bool, len(held))
			for m := range held {
				inner[m] = true
			}
			for _, m := range locksIn(w.pkg, x.Body) {
				inner[m] = true
			}
			w.walk(x.Body, inner, inGo)
			return false
		case *ast.SelectorExpr:
			w.checkSelector(x, held)
		case *ast.Ident:
			w.checkLocal(x, held, inGo)
		case *ast.ReturnStmt:
			w.checkReturn(x, held)
		}
		return true
	})
}

// checkSelector flags a guarded field touched without its guard.
func (w *lockWalker) checkSelector(e *ast.SelectorExpr, held map[types.Object]bool) {
	sel := w.pkg.Info.Selections[e]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	mutexes := w.guards[sel.Obj()]
	if len(mutexes) == 0 {
		return
	}
	for _, m := range mutexes {
		if held[m] {
			return
		}
	}
	if w.fresh[rootIdentObj(w.pkg, e)] {
		return // initializing a not-yet-shared object
	}
	w.a.reportf(w.pkg, e.Pos(), "unguarded-access", types.ExprString(e),
		"%s is guarded by %s, which this code neither holds nor is annotated to inherit",
		types.ExprString(e), mutexes[0].Name())
}

// checkLocal flags var-block-guarded locals used inside go literals
// without the guard.
func (w *lockWalker) checkLocal(id *ast.Ident, held map[types.Object]bool, inGo bool) {
	if !inGo {
		return
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	mutexes := w.localGuards[obj]
	if len(mutexes) == 0 {
		return
	}
	for _, m := range mutexes {
		if held[m] {
			return
		}
	}
	w.a.reportf(w.pkg, id.Pos(), "unguarded-access", id.Name,
		"%s is guarded by %s and this goroutine does not lock it",
		id.Name, mutexes[0].Name())
}

// checkReturn flags guarded reference values escaping the critical
// section via return.
func (w *lockWalker) checkReturn(ret *ast.ReturnStmt, held map[types.Object]bool) {
	for _, r := range ret.Results {
		e, ok := ast.Unparen(r).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		sel := w.pkg.Info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal || len(w.guards[sel.Obj()]) == 0 {
			continue
		}
		t := sel.Obj().Type()
		if !refType(t) {
			continue // a value copy does not alias the guarded state
		}
		if w.annotated || selfSynchronized(t, 2) || w.fresh[rootIdentObj(w.pkg, e)] {
			continue
		}
		w.a.reportf(w.pkg, r.Pos(), "guard-escape", types.ExprString(e),
			"returning %s hands a guarded reference out of its critical section; clone it or annotate the contract",
			types.ExprString(e))
	}
}
