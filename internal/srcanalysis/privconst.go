package srcanalysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// privconstPass guards axiom 14's closed privilege set: a policy rule's
// privilege is one of the five named constants of internal/policy
// (Position, Read, Insert, Update, Delete). Outside that package, code
// must not fabricate privilege values — neither by explicit conversion
// (policy.Privilege(n)) nor by untyped integer literals that the type
// checker silently converts (p.Grant(h, 3, ...)). Either could mint a
// privilege the conflict-resolution rules never considered.
var privconstPass = &pass{
	name: "privconst",
	doc:  "privilege values must be the named constants of internal/policy",
	run:  runPrivconst,
}

func runPrivconst(a *analysis) {
	policyPath := a.internalPath("policy")
	for _, pkg := range a.targets {
		if pkg.Path == policyPath {
			continue
		}
		converted := make(map[ast.Expr]bool)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				tn, ok := calleeOf(pkg.Info, call).(*types.TypeName)
				if !ok || !typeFromPkg(tn.Type(), policyPath, "Privilege") {
					return true
				}
				if len(call.Args) == 1 {
					converted[ast.Unparen(call.Args[0])] = true
				}
				a.reportf(pkg, call.Pos(), "privilege-conversion", types.ExprString(call),
					"%s fabricates a privilege outside axiom 14's named set; use the policy.* constants", types.ExprString(call))
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				lit := intLiteral(n)
				if lit == nil || converted[lit] {
					return true
				}
				tv, ok := pkg.Info.Types[lit]
				if !ok || !typeFromPkg(tv.Type, policyPath, "Privilege") {
					return true
				}
				a.reportf(pkg, lit.Pos(), "privilege-literal", types.ExprString(lit),
					"integer literal %s is implicitly typed as policy.Privilege; use the policy.* constants", types.ExprString(lit))
				return true
			})
		}
	}
}

// intLiteral matches an integer literal, possibly under a sign.
func intLiteral(n ast.Node) ast.Expr {
	switch e := n.(type) {
	case *ast.BasicLit:
		if e.Kind == token.INT {
			return e
		}
	case *ast.UnaryExpr:
		if lit, ok := e.X.(*ast.BasicLit); ok && lit.Kind == token.INT {
			return e
		}
	}
	return nil
}
