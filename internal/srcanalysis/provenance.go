package srcanalysis

import (
	"go/ast"
	"go/types"
)

// Shared provenance engine for the cowdiscipline and snapshotimmut passes:
// a flow-insensitive least-fixpoint taint analysis, the dual of the
// viewbypass cleanliness oracle. Where cleanliness asks "is this value
// provably locally constructed", taint asks "can this value alias shared
// state" — a source function's result, a source field's content, or
// anything assembled from them. Taint propagates through assignments,
// selectors, indexing, composite literals and module-function returns, and
// is *broken* by exactly the operations that create an independent value:
//
//   - a value-typed copy (the refType gate: copying an int, a string or a
//     plain struct of them cannot alias anything);
//   - a sanctioned clone: maps.Clone, slices.Clone, or a method named
//     Clone or Snapshot (the module's deep-copy spelling);
//   - a freshly constructed local (composite literal / new).
//
// Locals start untainted and are promoted when any assignment gives them a
// tainted right-hand side; cross-function queries memoize with a pending
// state that resolves optimistically (a cycle is untainted), which keeps
// the engine noise-free — every report traces to a concrete source.
type taintSpec struct {
	// sources are functions/methods whose results carry shared state.
	sources map[types.Object]bool
	// sourceFields are struct fields whose reads carry shared state.
	sourceFields map[types.Object]bool
	// methodProp propagates taint through method calls: a method invoked
	// on a tainted receiver returns tainted values (used by snapshotimmut,
	// where every accessor of a shared snapshot yields shared nodes).
	methodProp bool
}

type tainter struct {
	a     *analysis
	spec  *taintSpec
	fn    map[types.Object]verdict
	vars  map[*ast.FuncDecl]map[types.Object]bool
	fresh map[*ast.FuncDecl]map[types.Object]bool
	depth int
}

// taintEnv is the per-function judging context.
type taintEnv struct {
	pkg     *Pkg
	tainted map[types.Object]bool
	fresh   map[types.Object]bool
}

func newTainter(a *analysis, spec *taintSpec) *tainter {
	return &tainter{
		a:     a,
		spec:  spec,
		fn:    make(map[types.Object]verdict),
		vars:  make(map[*ast.FuncDecl]map[types.Object]bool),
		fresh: make(map[*ast.FuncDecl]map[types.Object]bool),
	}
}

// funcEnv computes (and caches) the tainted-local set of a function body.
// Least fixpoint: every local starts untainted and is promoted when any
// assignment to it has a tainted right-hand side.
func (t *tainter) funcEnv(pkg *Pkg, fd *ast.FuncDecl) *taintEnv {
	if set, ok := t.vars[fd]; ok {
		return &taintEnv{pkg: pkg, tainted: set, fresh: t.fresh[fd]}
	}
	asgs := collectAssignments(pkg, fd)
	set := make(map[types.Object]bool, len(asgs))
	t.vars[fd] = set // publish before judging: self-references see the optimistic set
	t.fresh[fd] = freshLocals(pkg, fd)
	env := &taintEnv{pkg: pkg, tainted: set, fresh: t.fresh[fd]}
	for changed := true; changed; {
		changed = false
		for _, as := range asgs {
			if !set[as.obj] && t.assignTainted(env, as) {
				set[as.obj] = true
				changed = true
			}
		}
	}
	return env
}

func (t *tainter) assignTainted(env *taintEnv, as assignment) bool {
	switch rhs := ast.Unparen(as.rhs).(type) {
	case *ast.TypeAssertExpr:
		return t.exprTainted(env, rhs.X)
	case *ast.CallExpr:
		return t.callTainted(env, rhs)
	default:
		return t.exprTainted(env, as.rhs)
	}
}

// exprTainted reports whether the expression's value can alias a source.
func (t *tainter) exprTainted(env *taintEnv, e ast.Expr) bool {
	if t.depth > maxCleanDepth {
		return false
	}
	t.depth++
	defer func() { t.depth-- }()

	e = ast.Unparen(e)
	if tv, ok := env.pkg.Info.Types[e]; ok && tv.Type != nil && !refType(tv.Type) {
		return false // a value copy cannot alias the shared state
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := env.pkg.Info.Uses[x]
		if obj == nil {
			obj = env.pkg.Info.Defs[x]
		}
		return env.tainted[obj]
	case *ast.SelectorExpr:
		sel := env.pkg.Info.Selections[x]
		if sel == nil {
			return false // qualified identifier
		}
		if sel.Kind() == types.FieldVal && t.spec.sourceFields[sel.Obj()] {
			// Reading a source field taints — unless the owner is a fresh
			// local still being constructed.
			return !env.fresh[rootIdentObj(env.pkg, x.X)]
		}
		return t.exprTainted(env, x.X)
	case *ast.IndexExpr:
		return t.exprTainted(env, x.X)
	case *ast.SliceExpr:
		return t.exprTainted(env, x.X)
	case *ast.StarExpr:
		return t.exprTainted(env, x.X)
	case *ast.UnaryExpr:
		return t.exprTainted(env, x.X)
	case *ast.TypeAssertExpr:
		return t.exprTainted(env, x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.exprTainted(env, el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return t.callTainted(env, x)
	}
	return false
}

// callTainted judges the value(s) produced by a call expression.
func (t *tainter) callTainted(env *taintEnv, call *ast.CallExpr) bool {
	callee := calleeOf(env.pkg.Info, call)
	switch obj := callee.(type) {
	case *types.TypeName:
		return len(call.Args) == 1 && t.exprTainted(env, call.Args[0])
	case *types.Builtin:
		if obj.Name() == "append" {
			for _, arg := range call.Args {
				if t.exprTainted(env, arg) {
					return true
				}
			}
		}
		return false
	case *types.Func:
		if t.spec.sources[obj] {
			return true
		}
		if isCloneCall(obj) {
			return false
		}
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if !t.spec.methodProp {
				return false
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && env.pkg.Info.Selections[sel] != nil {
				return t.exprTainted(env, sel.X)
			}
			return false
		}
		if t.inModule(objPkgPath(obj)) {
			return t.fnTainted(obj)
		}
		return false
	}
	return false
}

// isCloneCall recognizes the sanctioned copy operations: maps.Clone,
// slices.Clone, and any method named Clone or Snapshot (the module's
// deep-copy convention, e.g. xmltree.Document.Clone, view.View.Snapshot).
func isCloneCall(fn *types.Func) bool {
	switch objPkgPath(fn) {
	case "maps", "slices":
		return fn.Name() == "Clone"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fn.Name() == "Clone" || fn.Name() == "Snapshot"
	}
	return false
}

func (t *tainter) inModule(path string) bool {
	mod := t.a.prog.ModulePath
	return path == mod || len(path) > len(mod) && path[:len(mod)+1] == mod+"/"
}

// fnTainted reports whether any return statement of the module function
// returns a tainted value. Cycles resolve untainted, so only returns with
// a concrete source path are flagged.
func (t *tainter) fnTainted(obj types.Object) bool {
	switch t.fn[obj] {
	case cleanV: // here: "not tainted"
		return false
	case dirtyV:
		return true
	case pending:
		return false
	}
	t.fn[obj] = pending
	site := t.a.prog.declOf(obj)
	res := false
	if site != nil && site.decl.Body != nil {
		env := t.funcEnv(site.pkg, site.decl)
		forReturns(site.decl.Body, func(ret *ast.ReturnStmt) {
			if res {
				return
			}
			for _, r := range ret.Results {
				if t.exprTainted(env, r) {
					res = true
				}
			}
		})
	}
	if res {
		t.fn[obj] = dirtyV
	} else {
		t.fn[obj] = cleanV
	}
	return res
}
