// Package srcanalysis is the source-level invariant checker behind
// cmd/xmlsec-vet: it parses and type-checks the whole module with
// go/parser and go/types (stdlib only, no x/tools) and proves, pass by
// pass, that the Go code keeps the paper's access-control model closed.
//
// The seven passes and the invariants they guard:
//
//   - viewbypass: only the trusted internal packages may touch raw
//     xmltree nodes or call the unsecured executors. Everything else must
//     go through the core session API, whose reads materialize the
//     axiom 15–17 view and whose writes run the axiom 18–25 checks.
//   - privconst: privilege values are born only as the named constants of
//     internal/policy (axiom 14's closed privilege set). Integer literals
//     and conversions that could fabricate a privilege are flagged.
//   - obslabel: metric label values handed to internal/obs must be
//     compile-time constants (or provably bounded), so the telemetry
//     layer cannot become the §2.2 covert channel for document content.
//   - ctxflow: request contexts are accepted and forwarded along the hot
//     path, so every audited operation keeps its request identity.
//   - lockguard: mutex-guarded struct fields ("guarded by mu" or
//     mutex-adjacent by convention) are touched only with the guard held
//     or under a "callers hold" annotation, and never escape their
//     critical section by return or goroutine capture.
//   - cowdiscipline: values from the shared-scan cache ("callers must
//     clone") are never mutated without a clone or the clone-on-first-
//     write helpers — a missed clone would leak one user's grants into
//     another's session.
//   - snapshotimmut: Session.View snapshots are read-only outside
//     internal/core and internal/view; callers edit private Clones only.
//
// Findings use the shared internal/findings schema (the same JSON CI
// consumes from xmlsec-lint). A committed baseline file grandfathers
// individually justified findings; stale baseline entries are errors, so
// the baseline can only shrink.
package srcanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"securexml/internal/findings"
)

// Tool is the analyzer name stamped on every finding.
const Tool = "xmlsec-vet"

// Config selects what to load and what to check.
type Config struct {
	// ModuleDir is the module root (the directory holding go.mod).
	ModuleDir string
	// ExtraDirs maps additional import paths to directories parsed and
	// type-checked as if they were module packages. Tests use this to
	// analyze seeded testdata sources against the real module.
	ExtraDirs map[string]string
	// Packages restricts the analysis to these import paths (they must be
	// module packages or ExtraDirs entries). Empty means every package
	// discovered in the module.
	Packages []string
	// Passes restricts which passes run. Empty means all of them.
	Passes []string
}

// pass is one registered invariant check.
type pass struct {
	name string
	doc  string
	run  func(a *analysis)
}

// registry holds the passes in their fixed execution order.
var registry = []*pass{viewbypassPass, privconstPass, obslabelPass, ctxflowPass, lockguardPass, cowdisciplinePass, snapshotimmutPass}

// Passes returns the registered pass names in execution order.
func Passes() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.name
	}
	return out
}

// PassDoc returns the one-line description of a pass ("" if unknown).
func PassDoc(name string) string {
	for _, p := range registry {
		if p.name == name {
			return p.doc
		}
	}
	return ""
}

// analysis is the shared state passes report into.
type analysis struct {
	prog    *Program
	targets []*Pkg
	cur     *pass
	raw     []rawFinding
}

// rawFinding pairs a finding with its resolved position for stable
// sorting and baseline matching.
type rawFinding struct {
	pos  token.Position
	file string
	f    findings.Finding
}

// reportf records one finding for the running pass.
func (a *analysis) reportf(pkg *Pkg, pos token.Pos, code, key, format string, args ...any) {
	tp := a.prog.position(pos)
	a.raw = append(a.raw, rawFinding{
		pos:  tp,
		file: tp.Filename,
		f: findings.Finding{
			Tool:     Tool,
			Pass:     a.cur.name,
			Code:     code,
			Severity: findings.Error,
			Message:  fmt.Sprintf(format, args...),
			Pos:      fmt.Sprintf("%s:%d:%d", tp.Filename, tp.Line, tp.Column),
			Function: enclosingFunc(pkg, pos),
			Key:      key,
		},
	})
}

// Run executes the selected passes over the selected packages and folds
// the baseline in: matched findings are suppressed and counted, unmatched
// baseline entries become stale-entry errors.
func (p *Program) Run(cfg Config, base *Baseline) (*findings.Report, error) {
	sel, err := selectPasses(cfg.Passes)
	if err != nil {
		return nil, err
	}
	targets, err := p.targetPkgs(cfg.Packages)
	if err != nil {
		return nil, err
	}
	a := &analysis{prog: p, targets: targets}
	for _, ps := range sel {
		a.cur = ps
		ps.run(a)
	}
	sort.SliceStable(a.raw, func(i, j int) bool {
		pi, pj := a.raw[i].pos, a.raw[j].pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return a.raw[i].f.Code < a.raw[j].f.Code
	})

	rep := &findings.Report{Tool: Tool, Analyzed: len(targets)}
	used := make([]bool, 0)
	if base != nil {
		used = make([]bool, len(base.Entries))
	}
	for i := range a.raw {
		rf := &a.raw[i]
		if base != nil {
			if idx := base.match(rf); idx >= 0 {
				used[idx] = true
				rep.Suppressed++
				continue
			}
		}
		rep.Findings = append(rep.Findings, rf.f)
	}
	if base != nil {
		for i, e := range base.Entries {
			if used[i] {
				continue
			}
			rep.Findings = append(rep.Findings, findings.Finding{
				Tool: Tool, Pass: "baseline", Code: "stale-entry",
				Severity: findings.Error,
				Message: fmt.Sprintf("baseline entry %s/%s key=%q matched no finding; delete it",
					e.Pass, e.Code, e.Key),
				Pos: e.File, Function: e.Function, Key: e.Key,
			})
		}
	}
	return rep, nil
}

// selectPasses resolves pass names (empty = all, order preserved from the
// registry).
func selectPasses(names []string) ([]*pass, error) {
	if len(names) == 0 {
		return registry, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		found := false
		for _, p := range registry {
			if p.name == n {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("srcanalysis: unknown pass %q (have %s)", n, strings.Join(Passes(), ", "))
		}
		want[n] = true
	}
	var out []*pass
	for _, p := range registry {
		if want[p.name] {
			out = append(out, p)
		}
	}
	return out, nil
}

// targetPkgs resolves the package selection (empty = every module
// package).
func (p *Program) targetPkgs(paths []string) ([]*Pkg, error) {
	if len(paths) == 0 {
		paths = p.ModulePackages()
	}
	out := make([]*Pkg, 0, len(paths))
	for _, path := range paths {
		pkg := p.Package(path)
		if pkg == nil {
			return nil, fmt.Errorf("srcanalysis: package %s was not loaded", path)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// --- shared pass helpers -------------------------------------------------------

// internalPath returns the module-internal import path for a short name
// ("xmltree" -> "securexml/internal/xmltree").
func (a *analysis) internalPath(short string) string {
	return a.prog.ModulePath + "/internal/" + short
}

// untrustedInternal are the internal packages that must still go through
// the core session API: they face users, so they get no raw-node license.
var untrustedInternal = map[string]bool{"shell": true, "server": true}

// trustedPkg reports whether the import path belongs to the trusted
// enforcement core: the internal packages that implement the model
// (xmltree, xpath, view, access, policy, core, ...), minus the user-facing
// ones (shell, server).
func (a *analysis) trustedPkg(path string) bool {
	rest, ok := strings.CutPrefix(path, a.prog.ModulePath+"/internal/")
	if !ok {
		return false
	}
	short, _, _ := strings.Cut(rest, "/")
	return !untrustedInternal[short]
}

// objPkgPath returns the import path of the object's package ("" for
// builtins and nil objects).
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedBase strips pointers, slices, arrays and maps down to a named type
// (nil if the base is unnamed).
func namedBase(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeFromPkg reports whether t's named base is declared in the package
// with the given import path (optionally restricted to one type name).
func typeFromPkg(t types.Type, pkgPath string, names ...string) bool {
	n := namedBase(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, name := range names {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// isConst reports whether the expression has a compile-time constant
// value.
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// inspectFuncs walks every function declaration body of a package.
func inspectFuncs(pkg *Pkg, fn func(decl *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
