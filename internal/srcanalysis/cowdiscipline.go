package srcanalysis

import (
	"go/ast"
	"go/types"
)

// cowdisciplinePass proves the copy-on-write contract of the shared-scan
// cache tier. RuleCache interns per-rule node sets and per-profile grant
// masks and hands them to every session that shares the cache version;
// the functions that return them say "callers must clone" in their doc
// comments, and Perms carries the clone-on-first-write helpers (mutable,
// Rescore, Forget). One forgotten clone silently leaks a privilege edit
// from one user's Perms into every other session's — the exact axiom-14
// violation the tier was built to avoid.
//
// The pass taints every value reachable from a "callers must clone"
// function result or struct field (see the provenance engine) and flags
// any mutation of a tainted value as shared-mutation: index, field or
// dereference assignment, ++/--, delete, in-place append and copy, and
// the in-place sorts of sort and slices. A mutation is licensed when:
//
//   - the value was cloned first (maps.Clone, slices.Clone, a Clone or
//     Snapshot method) — cloning launders the taint at the source;
//   - the value is rooted in a freshly constructed local (a Perms being
//     assembled by Evaluate is not yet shared);
//   - the function first calls a *cleansing method* on the same root — a
//     method that replaces the shared field with a clone, like
//     Perms.mutable, or that transitively calls one, like Rescore and
//     Forget. That is the clone-on-first-write discipline, recognized
//     structurally rather than by name.
var cowdisciplinePass = &pass{
	name: "cowdiscipline",
	doc:  "mutations of shared cache values (\"callers must clone\") not dominated by a clone",
	run:  runCowdiscipline,
}

func runCowdiscipline(a *analysis) {
	spec := &taintSpec{
		sources:      make(map[types.Object]bool),
		sourceFields: make(map[types.Object]bool),
	}
	for _, pkg := range a.targets {
		collectCloneContracts(pkg, spec)
	}
	if len(spec.sources) == 0 && len(spec.sourceFields) == 0 {
		return
	}
	t := newTainter(a, spec)
	cleansing := cleansingMethods(a, spec)
	for _, pkg := range a.targets {
		inspectFuncs(pkg, func(fd *ast.FuncDecl) {
			env := t.funcEnv(pkg, fd)
			cleansed := cleansedRoots(pkg, fd, cleansing)
			checkMutations(a, t, env, fd, func(target ast.Expr, key string, pos ast.Node) {
				if cleansed[rootIdentObj(pkg, target)] {
					return
				}
				a.reportf(pkg, pos.Pos(), "shared-mutation", key,
					"%s mutates a shared cache value that callers must clone first (maps.Clone/slices.Clone or the clone-on-first-write helpers)", key)
			})
		})
	}
}

// collectCloneContracts gathers the "callers must clone" sources: annotated
// functions (their results are shared) and annotated struct fields (their
// contents are shared).
func collectCloneContracts(pkg *Pkg, spec *taintSpec) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if mustClone(commentText(d.Doc)) {
					if obj := pkg.Info.Defs[d.Name]; obj != nil {
						spec.sources[obj] = true
					}
				}
			case *ast.GenDecl:
				for _, s := range d.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !mustClone(commentText(field.Doc, field.Comment)) {
							continue
						}
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								spec.sourceFields[obj] = true
							}
						}
					}
				}
			}
		}
	}
}

// cleansingMethods computes, by fixpoint, the methods that implement
// clone-on-first-write: they assign a shared field of their receiver from
// a clone-derived value (directly or via a local), or call another
// cleansing method on their receiver.
func cleansingMethods(a *analysis, spec *taintSpec) map[types.Object]bool {
	cleansing := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		for _, pkg := range a.targets {
			inspectFuncs(pkg, func(fd *ast.FuncDecl) {
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil || cleansing[obj] || fd.Recv == nil {
					return
				}
				if methodCleanses(pkg, fd, spec, cleansing) {
					cleansing[obj] = true
					changed = true
				}
			})
		}
	}
	return cleansing
}

func methodCleanses(pkg *Pkg, fd *ast.FuncDecl, spec *taintSpec, cleansing map[types.Object]bool) bool {
	recv := recvObj(pkg, fd)
	if recv == nil {
		return false
	}
	asgs := collectAssignments(pkg, fd)
	cloneLocal := func(obj types.Object) bool {
		for _, as := range asgs {
			if as.obj == obj && cloneExpr(pkg, as.rhs) {
				return true
			}
		}
		return false
	}
	res := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if res {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selection := pkg.Info.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal ||
					!spec.sourceFields[selection.Obj()] || rootIdentObj(pkg, sel.X) != recv {
					continue
				}
				rhs := ast.Unparen(s.Rhs[i])
				if cloneExpr(pkg, rhs) {
					res = true
					return false
				}
				if id, ok := rhs.(*ast.Ident); ok && cloneLocal(pkg.Info.Uses[id]) {
					res = true
					return false
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pkg.Info, s)
			if callee != nil && cleansing[callee] && rootIdentObj(pkg, sel.X) == recv {
				res = true
				return false
			}
		}
		return true
	})
	return res
}

// cloneExpr reports whether the expression is a direct sanctioned clone
// call.
func cloneExpr(pkg *Pkg, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calleeOf(pkg.Info, call).(*types.Func)
	return ok && isCloneCall(fn)
}

func recvObj(pkg *Pkg, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// cleansedRoots collects the local roots the function calls a cleansing
// method on: after p.mutable(), mutations through p are licensed.
func cleansedRoots(pkg *Pkg, fd *ast.FuncDecl, cleansing map[types.Object]bool) map[types.Object]bool {
	roots := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if callee := calleeOf(pkg.Info, call); callee != nil && cleansing[callee] {
			if root := rootIdentObj(pkg, sel.X); root != nil {
				roots[root] = true
			}
		}
		return true
	})
	return roots
}

// checkMutations walks the function body and invokes report for every
// mutation of a tainted value. The callback receives the mutated target
// (for root licensing) and the stable finding key.
func checkMutations(a *analysis, t *tainter, env *taintEnv, fd *ast.FuncDecl, report func(target ast.Expr, key string, pos ast.Node)) {
	mutate := func(target ast.Expr, key string, pos ast.Node) {
		if t.exprTainted(env, target) {
			report(target, key, pos)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkAssignTarget(env, lhs, mutate)
			}
		case *ast.IncDecStmt:
			checkAssignTarget(env, s.X, mutate)
		case *ast.CallExpr:
			checkCallMutation(env, s, mutate)
		}
		return true
	})
}

// checkAssignTarget maps an assignment left-hand side to the value it
// mutates: m[k] = v and *p = v mutate the container/pointee; x.f = v
// mutates the object x refers to.
func checkAssignTarget(env *taintEnv, lhs ast.Expr, mutate func(target ast.Expr, key string, pos ast.Node)) {
	key := types.ExprString(lhs)
	switch x := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		mutate(x.X, key, lhs)
	case *ast.StarExpr:
		mutate(x.X, key, lhs)
	case *ast.SelectorExpr:
		if sel := env.pkg.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			mutate(x.X, key, lhs)
		}
	}
}

// checkCallMutation flags the mutating builtins and the in-place sorts.
func checkCallMutation(env *taintEnv, call *ast.CallExpr, mutate func(target ast.Expr, key string, pos ast.Node)) {
	if len(call.Args) == 0 {
		return
	}
	key := types.ExprString(call)
	switch fn := calleeOf(env.pkg.Info, call).(type) {
	case *types.Builtin:
		switch fn.Name() {
		case "delete", "copy":
			mutate(call.Args[0], key, call)
		case "append":
			// Plain append may grow in place, overwriting the shared
			// backing array's spare capacity.
			if len(call.Args) > 1 {
				mutate(call.Args[0], key, call)
			}
		}
	case *types.Func:
		name := fn.Name()
		switch objPkgPath(fn) {
		case "sort":
			switch name {
			case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
				mutate(call.Args[0], key, call)
			}
		case "slices":
			switch name {
			case "Sort", "SortFunc", "SortStableFunc", "Reverse":
				mutate(call.Args[0], key, call)
			}
		}
	}
}
