package srcanalysis

import (
	"go/ast"
	"go/types"
)

// snapshotimmutPass proves that session snapshots are read-only outside
// their owning packages. core.Session.View and ViewCtx return a *view.View
// backed by an xmltree.Document; incremental maintenance hands the same
// snapshot structure to later calls, and the write path maps view
// identifiers back through it — a caller that edits the snapshot in place
// corrupts every later read of the same session and the axiom 18–25
// mapping. The banked dense-index slices and cached per-profile merges of
// the RuleCache carry the same contract inside internal/policy, where the
// cowdiscipline and lockguard passes enforce it; this pass closes the
// exported surface.
//
// Every value reachable from a View()/ViewCtx() result is tainted, with
// method propagation: v.Doc, v.Doc.Root(), any node walked from it. Two
// findings:
//
//   - snapshot-write: an assignment (field, index, dereference, ++/--,
//     delete/append/copy) whose target is snapshot-derived;
//   - snapshot-mutator: calling one of xmltree.Document's mutating methods
//     (AppendChild, Remove, Rename, ...) on a snapshot-derived document.
//
// Cloning first (view.View.Snapshot, xmltree.Document.Clone) launders the
// taint: edits to a private copy are the sanctioned pattern. The owning
// packages internal/core and internal/view are exempt — maintaining the
// snapshot is their job.
//
// Generation roots (S29) carry the same contract with a dynamic twin:
// every document published in a copy-on-write generation is frozen
// (xmltree.Document.Freeze), so its mutators return ErrFrozen at runtime.
// This pass is the compile-time half — it catches snapshot writes before
// they run — while the freeze bit catches whatever provenance tracking
// cannot see (reflection, node handles laundered through interfaces).
// Clone remains the single sanctioned escape on both halves: it always
// returns an unfrozen, unshared copy.
var snapshotimmutPass = &pass{
	name: "snapshotimmut",
	doc:  "in-place mutation of Session.View snapshots outside the owning packages",
	run:  runSnapshotimmut,
}

// documentMutators are the xmltree.Document methods that change the tree.
var documentMutators = map[string]bool{
	"MirrorChild":  true,
	"MirrorInsert": true,
	"AppendChild":  true,
	"InsertBefore": true,
	"InsertAfter":  true,
	"SetAttribute": true,
	"Rename":       true,
	"Remove":       true,
	"Graft":        true,
}

func runSnapshotimmut(a *analysis) {
	spec := &taintSpec{
		sources:      snapshotSources(a),
		sourceFields: map[types.Object]bool{},
		methodProp:   true,
	}
	if len(spec.sources) == 0 {
		return
	}
	t := newTainter(a, spec)
	xmltreePath := a.internalPath("xmltree")
	owners := map[string]bool{a.internalPath("core"): true, a.internalPath("view"): true}
	for _, pkg := range a.targets {
		if owners[pkg.Path] {
			continue
		}
		inspectFuncs(pkg, func(fd *ast.FuncDecl) {
			env := t.funcEnv(pkg, fd)
			checkMutations(a, t, env, fd, func(target ast.Expr, key string, pos ast.Node) {
				a.reportf(pkg, pos.Pos(), "snapshot-write", key,
					"%s writes into a Session.View snapshot; snapshots are shared and read-only — Clone/Snapshot a private copy first", key)
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := calleeOf(pkg.Info, call).(*types.Func)
				if !ok || !documentMutators[fn.Name()] || objPkgPath(fn) != xmltreePath {
					return true
				}
				if !t.exprTainted(env, sel.X) {
					return true
				}
				a.reportf(pkg, call.Pos(), "snapshot-mutator", types.ExprString(call.Fun),
					"%s mutates a Session.View snapshot document in place; Clone it before editing", types.ExprString(call.Fun))
				return true
			})
		})
	}
}

// snapshotSources resolves the snapshot-producing methods:
// (*core.Session).View and ViewCtx.
func snapshotSources(a *analysis) map[types.Object]bool {
	sources := make(map[types.Object]bool)
	core := a.prog.Package(a.internalPath("core"))
	if core == nil {
		return sources
	}
	obj, ok := core.Types.Scope().Lookup("Session").(*types.TypeName)
	if !ok {
		return sources
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return sources
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() == "View" || m.Name() == "ViewCtx" {
			sources[m] = true
		}
	}
	return sources
}
