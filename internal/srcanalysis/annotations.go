package srcanalysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Concurrency contracts are written where Go programmers already write
// them — in comments — and parsed here so lockguard, cowdiscipline and
// snapshotimmut can enforce them instead of trusting them:
//
//	guarded by <path>       on a struct field: the named mutex protects it
//	                        (and, by convention, the rest of the field's
//	                        blank-line-free group).
//	callers hold <path>     on a function: the body runs inside the named
//	callers must hold <path> mutex's critical section; several mutexes are
//	                        listed with "and" or commas.
//	callers must clone      on a function or field: the returned / stored
//	                        value is shared and must be cloned before any
//	                        write (the copy-on-write contract).
//
// The phrases may appear anywhere in a doc or line comment, in natural
// prose, case-insensitively; comment lines are joined with spaces first so
// a sentence may wrap ("Callers\n// hold c.mu" still parses). Paths
// resolve against the annotated declaration: for a function, the first
// segment names the receiver, a parameter, or a field of the receiver's
// struct; for a field, a field of the enclosing struct; later segments are
// field selections. A path that resolves to anything but a sync.Mutex or
// sync.RWMutex is ignored as prose, not a contract — so a typo silently
// weakens nothing that the adjacency convention or a lock call does not
// already cover.

// annotPath matches one dotted identifier path (no trailing dot, so a
// sentence period does not join the path).
const annotPath = `[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*`

var (
	guardedByRe = regexp.MustCompile(`(?i)\bguarded by\s+(` + annotPath +
		`(?:(?:,\s*|,?\s+and\s+)` + annotPath + `)*)`)
	callersHoldRe = regexp.MustCompile(`(?i)\bcallers (?:must )?hold\s+(` + annotPath +
		`(?:(?:,\s*|,?\s+and\s+)` + annotPath + `)*)`)
	mustCloneRe = regexp.MustCompile(`(?i)\bcallers must clone\b`)
)

// commentText joins the given comment groups into one space-separated
// string, so annotations spanning comment lines still match.
func commentText(groups ...*ast.CommentGroup) string {
	var b strings.Builder
	for _, g := range groups {
		if g == nil {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strings.ReplaceAll(g.Text(), "\n", " "))
	}
	return b.String()
}

// splitAnnotPaths tokenizes the captured path list ("s.mu and db.mu",
// "a.mu, b.mu") into individual paths.
func splitAnnotPaths(list string) []string {
	var out []string
	for _, tok := range strings.Fields(strings.ReplaceAll(list, ",", " ")) {
		if strings.EqualFold(tok, "and") {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// guardedPaths extracts every "guarded by ..." path from comment text.
func guardedPaths(text string) []string {
	var out []string
	for _, m := range guardedByRe.FindAllStringSubmatch(text, -1) {
		out = append(out, splitAnnotPaths(m[1])...)
	}
	return out
}

// holdPaths extracts every "callers (must) hold ..." path from comment
// text.
func holdPaths(text string) []string {
	var out []string
	for _, m := range callersHoldRe.FindAllStringSubmatch(text, -1) {
		out = append(out, splitAnnotPaths(m[1])...)
	}
	return out
}

// mustClone reports whether the comment text carries the copy-on-write
// contract.
func mustClone(text string) bool { return mustCloneRe.MatchString(text) }

// --- path resolution -----------------------------------------------------------

// structOf unwraps pointers and named types down to a struct type.
func structOf(t types.Type) *types.Struct {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		case *types.Struct:
			return u
		default:
			return nil
		}
	}
}

// fieldByName finds a struct's direct field by name.
func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// fieldPath navigates a dotted field path from a struct-carrying type and
// returns the final field variable (nil if any step fails to resolve).
func fieldPath(t types.Type, segs []string) *types.Var {
	var fv *types.Var
	for _, seg := range segs {
		st := structOf(t)
		if st == nil {
			return nil
		}
		fv = fieldByName(st, seg)
		if fv == nil {
			return nil
		}
		t = fv.Type()
	}
	return fv
}

// resolveMutexPath resolves one annotation path against a function
// declaration: the first segment names the receiver or a parameter (the
// rest selects fields from it), or directly a field of the receiver's
// struct. The result is the mutex's field variable, nil when the path does
// not land on a sync.Mutex/RWMutex.
func resolveMutexPath(pkg *Pkg, fd *ast.FuncDecl, path string) *types.Var {
	segs := strings.Split(path, ".")
	fields := []*ast.Field{}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, f := range fields {
		for _, name := range f.Names {
			if name.Name != segs[0] {
				continue
			}
			obj := pkg.Info.Defs[name]
			if obj == nil {
				return nil
			}
			if len(segs) == 1 {
				return nil // a bare receiver/param is not a mutex field
			}
			return mutexVar(fieldPath(obj.Type(), segs[1:]))
		}
	}
	// Not a receiver/parameter name: try it as a field path of the
	// receiver's struct ("db.mu" on a Session method → Session.db → mu).
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]; ok {
			return mutexVar(fieldPath(tv.Type, segs))
		}
		// Receiver field with no name still has a type expression object.
		if len(fd.Recv.List[0].Names) > 0 {
			if obj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
				return mutexVar(fieldPath(obj.Type(), segs))
			}
		}
	}
	return nil
}

// mutexVar filters a resolved field down to an actual mutex.
func mutexVar(fv *types.Var) *types.Var {
	if fv == nil || !isMutexType(fv.Type()) {
		return nil
	}
	return fv
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// isSyncType reports whether t is declared in sync or sync/atomic — such
// fields synchronize themselves and are excluded from the mutex-adjacency
// convention.
func isSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// selfSynchronized reports whether the type carries its own
// synchronization — a mutex or atomic field within two levels of struct
// nesting. Handing such a value out of a guard's critical section is safe:
// the value defends itself.
func selfSynchronized(t types.Type, depth int) bool {
	st := structOf(t)
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isSyncType(ft) {
			return true
		}
		if depth > 0 && selfSynchronized(ft, depth-1) {
			return true
		}
	}
	return false
}

// refType reports whether values of t share state when copied — they
// contain a pointer, slice, map, channel, function or interface. Plain
// value types (ints, strings, arrays/structs of them) are safe to copy
// out of a critical section or a shared snapshot.
func refType(t types.Type) bool {
	return refTypeSeen(t, make(map[types.Type]bool))
}

func refTypeSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Basic:
		return false
	case *types.Named:
		return refTypeSeen(u.Underlying(), seen)
	case *types.Array:
		return refTypeSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refTypeSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		// Pointer, Slice, Map, Chan, Signature, Interface, Tuple, ...
		return true
	}
}

// --- fresh locals --------------------------------------------------------------

// freshLocals computes the function's freshly constructed locals: variables
// whose every assignment is a composite literal (possibly behind &) or
// new(). A fresh object is not yet shared, so constructors may initialize
// its guarded fields without the lock and populate its copy-on-write maps
// without cloning.
func freshLocals(pkg *Pkg, fd *ast.FuncDecl) map[types.Object]bool {
	byObj := make(map[types.Object][]assignment)
	for _, as := range collectAssignments(pkg, fd) {
		byObj[as.obj] = append(byObj[as.obj], as)
	}
	out := make(map[types.Object]bool)
	for obj, asgs := range byObj {
		fresh := true
		for _, as := range asgs {
			if !freshExpr(pkg, as.rhs) {
				fresh = false
				break
			}
		}
		if fresh {
			out[obj] = true
		}
	}
	return out
}

// freshExpr matches the constructor forms: T{...}, &T{...}, new(T).
func freshExpr(pkg *Pkg, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		b, ok := calleeOf(pkg.Info, x).(*types.Builtin)
		return ok && b.Name() == "new"
	}
	return false
}

// rootIdentObj unwraps selector/index/star/slice/unary chains to the root
// identifier's object (nil when the chain is not rooted in an identifier).
func rootIdentObj(pkg *Pkg, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			if pkg.Info.Selections[x] == nil {
				return nil // qualified identifier: package-level root
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			// A chain through a call (f().x) has no stable root.
			return nil
		default:
			return nil
		}
	}
}
