package srcanalysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Pkg is one type-checked package of the module under analysis.
type Pkg struct {
	// Path is the import path ("securexml/internal/core"). Command and
	// example directories get their directory-derived path even though they
	// are not importable.
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded module: every package parsed with go/parser and
// type-checked with go/types (stdlib dependencies are type-checked from
// GOROOT source, keeping the analyzer dependency-free). Passes receive the
// whole Program so they can resolve cross-package call sites and function
// bodies.
type Program struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	pkgs      map[string]*Pkg // by import path; module + extra packages
	modPaths  []string        // module packages discovered by the walk, sorted
	extraDirs map[string]string
	std       types.Importer
	loading   map[string]bool

	// Lazy program-wide indexes (built on first use).
	funcDecls map[types.Object]*declSite
	params    map[types.Object]*paramSite
	recvs     map[types.Object]*paramSite // receiver objects, index -1
	calls     map[types.Object][]*callSite
}

// declSite locates a function declaration.
type declSite struct {
	pkg  *Pkg
	decl *ast.FuncDecl
}

// paramSite locates one parameter within a function declaration.
type paramSite struct {
	fn    types.Object // the declared function the parameter belongs to
	index int          // position in the flattened parameter list
}

// callSite locates one call expression.
type callSite struct {
	pkg  *Pkg
	call *ast.CallExpr
}

// Load parses and type-checks the module rooted at cfg.ModuleDir (every
// package directory outside testdata and dot-directories) plus any
// cfg.ExtraDirs packages (used by tests to analyze seeded testdata sources
// as if they were module packages).
func Load(cfg Config) (*Program, error) {
	moduleDir, err := filepath.Abs(cfg.ModuleDir)
	if err != nil {
		return nil, err
	}
	modulePath, err := modulePathOf(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:       fset,
		ModuleDir:  moduleDir,
		ModulePath: modulePath,
		pkgs:       make(map[string]*Pkg),
		extraDirs:  cfg.ExtraDirs,
		std:        importer.ForCompiler(fset, "source", nil),
		loading:    make(map[string]bool),
	}
	paths, err := prog.discover()
	if err != nil {
		return nil, err
	}
	prog.modPaths = paths
	for _, path := range paths {
		if _, err := prog.load(path); err != nil {
			return nil, err
		}
	}
	extras := make([]string, 0, len(cfg.ExtraDirs))
	for path := range cfg.ExtraDirs {
		extras = append(extras, path)
	}
	sort.Strings(extras)
	for _, path := range extras {
		if _, err := prog.load(path); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// modulePathOf reads the module directive from go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("srcanalysis: %s is not a module root: %w", dir, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("srcanalysis: no module directive in %s/go.mod", dir)
}

// discover walks the module for package directories, skipping VCS metadata,
// dot-directories and testdata trees (the go tool does the same).
func (p *Program) discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(p.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != p.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(p.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, p.ModulePath)
		} else {
			paths = append(paths, p.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// dirFor maps an import path to its directory: ExtraDirs first, then the
// module layout.
func (p *Program) dirFor(path string) string {
	if dir, ok := p.extraDirs[path]; ok {
		return dir
	}
	if path == p.ModulePath {
		return p.ModuleDir
	}
	return filepath.Join(p.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, p.ModulePath+"/")))
}

// load parses and type-checks one module package (memoized).
func (p *Program) load(path string) (*Pkg, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("srcanalysis: import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	dir := p.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("srcanalysis: loading %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("srcanalysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("srcanalysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: p}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("srcanalysis: type-checking %s: %w", path, err)
	}
	pkg := &Pkg{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	p.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module packages resolve through the
// program loader, everything else through the GOROOT source importer.
func (p *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
		pkg, err := p.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return p.std.Import(path)
}

// Package returns a loaded package by import path (nil if not loaded).
func (p *Program) Package(path string) *Pkg { return p.pkgs[path] }

// ModulePackages returns the import paths discovered by the module walk
// (extras excluded), sorted.
func (p *Program) ModulePackages() []string {
	return append([]string(nil), p.modPaths...)
}

// position renders a node position relative to the module root.
func (p *Program) position(pos token.Pos) token.Position {
	tp := p.Fset.Position(pos)
	if rel, err := filepath.Rel(p.ModuleDir, tp.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		tp.Filename = filepath.ToSlash(rel)
	}
	return tp
}

// --- program-wide indexes ------------------------------------------------------

// buildIndexes fills the lazy declaration, parameter and call-site maps.
func (p *Program) buildIndexes() {
	if p.funcDecls != nil {
		return
	}
	p.funcDecls = make(map[types.Object]*declSite)
	p.params = make(map[types.Object]*paramSite)
	p.recvs = make(map[types.Object]*paramSite)
	p.calls = make(map[types.Object][]*callSite)
	for _, pkg := range p.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				p.funcDecls[obj] = &declSite{pkg: pkg, decl: fd}
				if fd.Recv != nil {
					for _, field := range fd.Recv.List {
						for _, name := range field.Names {
							if ro := pkg.Info.Defs[name]; ro != nil {
								p.recvs[ro] = &paramSite{fn: obj, index: -1}
							}
						}
					}
				}
				idx := 0
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						idx++
						continue
					}
					for _, name := range field.Names {
						if po := pkg.Info.Defs[name]; po != nil {
							p.params[po] = &paramSite{fn: obj, index: idx}
						}
						idx++
					}
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj := calleeOf(pkg.Info, call); obj != nil {
					p.calls[obj] = append(p.calls[obj], &callSite{pkg: pkg, call: call})
				}
				return true
			})
		}
	}
}

// calleeOf resolves the object a call expression invokes (function, method
// or, for conversions, the type name). Returns nil for calls through
// function values or literals.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// declOf returns the AST declaration of a function object, if it was loaded.
func (p *Program) declOf(obj types.Object) *declSite {
	p.buildIndexes()
	return p.funcDecls[obj]
}

// paramOf reports whether obj is a parameter of a loaded function
// declaration.
func (p *Program) paramOf(obj types.Object) *paramSite {
	p.buildIndexes()
	return p.params[obj]
}

// recvOf reports whether obj is the receiver of a loaded method
// declaration (index -1).
func (p *Program) recvOf(obj types.Object) *paramSite {
	p.buildIndexes()
	return p.recvs[obj]
}

// callsOf returns every loaded call site that invokes obj.
func (p *Program) callsOf(obj types.Object) []*callSite {
	p.buildIndexes()
	return p.calls[obj]
}

// enclosingFunc names the function declaration containing pos
// ("Type.Method" for methods), or "" at file scope.
func enclosingFunc(pkg *Pkg, pos token.Pos) string {
	for _, file := range pkg.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
			}
			return fd.Name.Name
		}
	}
	return ""
}

// recvTypeName renders a receiver type expression's base type name.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	default:
		return "?"
	}
}
