package srcanalysis

import (
	"go/ast"
	"go/types"
)

// obslabelPass keeps the telemetry layer out of the §2.2 covert-channel
// business: every string handed to internal/obs as a metric name or label
// value must be provably drawn from a finite, compile-time set. A label
// interpolated from document content (fmt.Sprintf of a node value, a user
// string, a query) would republish data on /metrics that the view already
// redacted.
//
// Accepted label sources:
//   - compile-time constants (including constant expressions),
//   - calls to bounded-label functions — functions whose every return
//     statement yields an accepted value (e.g. Kind.MetricLabel, which
//     switches over the enum and returns literals),
//   - parameters, when every call site of the enclosing function in the
//     whole program passes an accepted value (constant-forwarding
//     helpers like core's sessionOp).
var obslabelPass = &pass{
	name: "obslabel",
	doc:  "metric names and label values must be compile-time bounded",
	run:  runObslabel,
}

func runObslabel(a *analysis) {
	o := &obslabel{a: a, bounded: make(map[types.Object]verdict), fwd: make(map[types.Object]verdict)}
	obsPath := a.internalPath("obs")
	for _, pkg := range a.targets {
		if pkg.Path == obsPath {
			continue // the sink itself handles labels generically
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(pkg.Info, call)
				if objPkgPath(callee) != obsPath || !isObsEntry(callee.Name()) {
					return true
				}
				if call.Ellipsis.IsValid() {
					a.reportf(pkg, call.Ellipsis, "nonconstant-label", types.ExprString(call.Args[len(call.Args)-1]),
						"obs.%s called with expanded label slice; labels must be spelled out so they are provably bounded", callee.Name())
					return true
				}
				for _, arg := range call.Args {
					if !isStringExpr(pkg.Info, arg) {
						continue
					}
					if o.boundedExpr(pkg, arg) {
						continue
					}
					a.reportf(pkg, arg.Pos(), "nonconstant-label", types.ExprString(arg),
						"obs.%s receives %s, which is not compile-time bounded; dynamic label values can re-leak view-restricted content on /metrics (§2.2)",
						callee.Name(), types.ExprString(arg))
				}
				return true
			})
		}
	}
}

// obslabel holds the memoized bounded-function and forwarded-parameter
// verdicts.
type obslabel struct {
	a       *analysis
	bounded map[types.Object]verdict // function: all returns bounded
	fwd     map[types.Object]verdict // parameter: all call sites bounded
	depth   int
}

// isObsEntry matches the obs package entry points that accept metric
// names or label values — registry constructors plus the tracing surface
// (span names, annotation keys and string annotation values all land on
// /traces, which republishes like /metrics). Tracer.Get is deliberately
// absent: a trace ID is user input used for lookup, never stored.
func isObsEntry(name string) bool {
	switch name {
	case "Counter", "Gauge", "Histogram", "Stage",
		"StartSpanCtx", "StartTrace",
		"Annotate", "AnnotateInt", "AnnotateCtx", "AnnotateIntCtx":
		return true
	}
	return false
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boundedExpr reports whether the expression's value is drawn from a
// compile-time-bounded set.
func (o *obslabel) boundedExpr(pkg *Pkg, e ast.Expr) bool {
	if o.depth > maxCleanDepth {
		return false
	}
	o.depth++
	defer func() { o.depth-- }()

	e = ast.Unparen(e)
	if isConst(pkg.Info, e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			return false
		}
		if _, ok := obj.(*types.Const); ok {
			return true
		}
		return o.forwardedParam(obj)
	case *ast.CallExpr:
		callee := calleeOf(pkg.Info, x)
		fn, ok := callee.(*types.Func)
		if !ok {
			return false
		}
		return o.boundedFn(fn)
	}
	return false
}

// boundedFn reports whether every return statement of the function yields
// a bounded value (single string result only).
func (o *obslabel) boundedFn(fn *types.Func) bool {
	switch o.bounded[fn] {
	case cleanV:
		return true
	case dirtyV, pending:
		return false
	}
	o.bounded[fn] = pending
	ok := false
	if site := o.a.prog.declOf(fn); site != nil && site.decl.Body != nil {
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Results().Len() == 1 {
			ok = true
			forReturns(site.decl.Body, func(ret *ast.ReturnStmt) {
				if len(ret.Results) != 1 || !o.boundedExpr(site.pkg, ret.Results[0]) {
					ok = false
				}
			})
		}
	}
	if ok {
		o.bounded[fn] = cleanV
	} else {
		o.bounded[fn] = dirtyV
	}
	return ok
}

// forwardedParam reports whether obj is a function parameter whose every
// call site in the loaded program passes a bounded value.
func (o *obslabel) forwardedParam(obj types.Object) bool {
	switch o.fwd[obj] {
	case cleanV:
		return true
	case dirtyV, pending:
		return false
	}
	ps := o.a.prog.paramOf(obj)
	if ps == nil {
		return false
	}
	o.fwd[obj] = pending
	sites := o.a.prog.callsOf(ps.fn)
	ok := len(sites) > 0
	for _, site := range sites {
		if site.call.Ellipsis.IsValid() || ps.index >= len(site.call.Args) ||
			!o.boundedExpr(site.pkg, site.call.Args[ps.index]) {
			ok = false
			break
		}
	}
	if ok {
		o.fwd[obj] = cleanV
	} else {
		o.fwd[obj] = dirtyV
	}
	return ok
}
