package srcanalysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// viewbypassPass proves that only the trusted enforcement core touches raw
// xmltree nodes. The paper's guarantees hold only if every read goes
// through the axiom 15–17 view and every write through the axiom 18–25
// checks; a single untrusted call to the unsecured executors or a method
// call on a document of unknown provenance reopens both holes.
//
// Three rules, in decreasing strictness:
//
//   - xmltree-import: the user-facing internal packages (shell, server)
//     may not import internal/xmltree at all — they are fully mediated by
//     the core session API.
//   - unsecured-write: no untrusted package may call xupdate.Execute,
//     xupdate.ExecuteAll or baseline.Execute (the axiom 2–9 executors that
//     skip the view).
//   - raw-node-access: in untrusted packages, methods and fields of
//     xmltree values may only be used on *locally constructed* documents
//     (built by xmltree constructors or returned by trusted packages,
//     tracked through local assignments, same-package helpers and
//     parameters whose every call site passes a clean value). A document
//     of unknown provenance may be someone else's source document.
//
// The trusted side includes internal/rewrite: the static-rewriting tier
// reads raw source documents by design — its guarded plans re-impose the
// axiom 15–17 labels during evaluation, which is exactly the license the
// untrusted packages don't get.
var viewbypassPass = &pass{
	name: "viewbypass",
	doc:  "raw xmltree access and unsecured executors outside the trusted core",
	run:  runViewbypass,
}

func runViewbypass(a *analysis) {
	c := newCleanliness(a)
	xmltreePath := a.internalPath("xmltree")
	for _, pkg := range a.targets {
		if a.trustedPkg(pkg.Path) {
			continue
		}
		if a.strictMediated(pkg.Path) {
			for _, file := range pkg.Files {
				for _, imp := range file.Imports {
					if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == xmltreePath {
						a.reportf(pkg, imp.Pos(), "xmltree-import", "xmltree",
							"%s must stay fully mediated by the core session API and may not import internal/xmltree", pkg.Path)
					}
				}
			}
		}
		inspectFuncs(pkg, func(fd *ast.FuncDecl) {
			env := c.funcEnv(pkg, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					if key, ok := a.unsecuredWriter(calleeOf(pkg.Info, e)); ok {
						a.reportf(pkg, e.Pos(), "unsecured-write", key,
							"%s applies writes without the axiom 18–25 view-evaluated checks; go through core.Session", key)
					}
				case *ast.SelectorExpr:
					sel := pkg.Info.Selections[e]
					if sel == nil || !typeFromPkg(sel.Recv(), xmltreePath) {
						return true
					}
					if c.exprClean(env, e.X) || c.chainDirty(env, e.X) {
						return true
					}
					a.reportf(pkg, e.Pos(), "raw-node-access", types.ExprString(e),
						"%s reads or mutates an xmltree value of unknown provenance; only locally constructed documents or the core session API are allowed here",
						types.ExprString(e))
				}
				return true
			})
		})
	}
}

// strictMediated reports whether the package is user-facing internal code
// with a no-xmltree-import rule.
func (a *analysis) strictMediated(path string) bool {
	return path == a.internalPath("shell") || path == a.internalPath("server")
}

// unsecuredWriter reports whether obj is one of the executors that skip
// the view (axioms 2–9), and returns its stable finding key.
func (a *analysis) unsecuredWriter(obj types.Object) (string, bool) {
	switch objPkgPath(obj) {
	case a.internalPath("xupdate"):
		if obj.Name() == "Execute" || obj.Name() == "ExecuteAll" {
			return "xupdate." + obj.Name(), true
		}
	case a.internalPath("baseline"):
		if obj.Name() == "Execute" {
			return "baseline.Execute", true
		}
	}
	return "", false
}

// --- cleanliness oracle --------------------------------------------------------

// cleanliness decides whether an expression holding module data is
// "locally constructed": produced by a trusted package, by an xmltree
// constructor, or assembled in this package purely from such values. The
// analysis is flow-insensitive (a variable is clean only if every
// assignment to it is clean) and crosses function boundaries two ways:
// same-module functions are clean if every node-carrying result of every
// return statement is clean, and parameters are clean if every call site
// in the loaded program passes a clean argument.
type cleanliness struct {
	a *analysis
	// fn and param memoize the cross-function queries; the bool is the
	// verdict, presence marks "in progress" cycles as dirty.
	fn    map[types.Object]verdict
	param map[types.Object]verdict
	vars  map[*ast.FuncDecl]map[types.Object]bool
	depth int
}

type verdict int8

const (
	pending verdict = iota + 1
	cleanV
	dirtyV
)

// funcEnv is the per-function context expressions are judged in.
type funcEnv struct {
	pkg   *Pkg
	clean map[types.Object]bool
}

const maxCleanDepth = 16

func newCleanliness(a *analysis) *cleanliness {
	return &cleanliness{
		a:     a,
		fn:    make(map[types.Object]verdict),
		param: make(map[types.Object]verdict),
		vars:  make(map[*ast.FuncDecl]map[types.Object]bool),
	}
}

// carriesNodes reports whether the type can transport module data
// (anything whose named base is declared in this module). Basic types,
// stdlib types and untyped nils cannot smuggle nodes, so expressions of
// those types are vacuously clean.
func (c *cleanliness) carriesNodes(t types.Type) bool {
	if t == nil {
		return false
	}
	n := namedBase(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == c.a.prog.ModulePath || len(path) > len(c.a.prog.ModulePath) &&
		path[:len(c.a.prog.ModulePath)+1] == c.a.prog.ModulePath+"/"
}

// funcEnv computes (and caches) the clean variable set of a function body.
// Greatest fixpoint: every tracked variable starts clean and is demoted
// when any assignment to it has a dirty right-hand side.
func (c *cleanliness) funcEnv(pkg *Pkg, fd *ast.FuncDecl) *funcEnv {
	if set, ok := c.vars[fd]; ok {
		return &funcEnv{pkg: pkg, clean: set}
	}
	asgs := collectAssignments(pkg, fd)
	set := make(map[types.Object]bool, len(asgs))
	for _, as := range asgs {
		set[as.obj] = true
	}
	c.vars[fd] = set // publish before judging: self-references see the optimistic set
	env := &funcEnv{pkg: pkg, clean: set}
	for changed := true; changed; {
		changed = false
		for _, as := range asgs {
			if set[as.obj] && !c.assignClean(env, as) {
				set[as.obj] = false
				changed = true
			}
		}
	}
	return env
}

// assignment is one definition of a tracked local variable.
type assignment struct {
	obj types.Object
	// rhs is the defining expression; for multi-value forms it is the
	// single call/range/assert expression all left-hand sides share.
	rhs ast.Expr
}

// collectAssignments gathers every assignment to node-carrying local
// variables in the body (closures included — their locals are judged in
// the same environment).
func collectAssignments(pkg *Pkg, fd *ast.FuncDecl) []assignment {
	var out []assignment
	track := func(id ast.Expr, rhs ast.Expr) {
		ident, ok := id.(*ast.Ident)
		if !ok || ident.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[ident]
		if obj == nil {
			obj = pkg.Info.Uses[ident]
		}
		if v, ok := obj.(*types.Var); ok && rhs != nil {
			out = append(out, assignment{obj: v, rhs: rhs})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
				for _, lhs := range s.Lhs {
					track(lhs, s.Rhs[0])
				}
				return true
			}
			for i, lhs := range s.Lhs {
				if i < len(s.Rhs) {
					track(lhs, s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Values) == 1 && len(s.Names) > 1 {
				for _, name := range s.Names {
					track(name, s.Values[0])
				}
				return true
			}
			for i, name := range s.Names {
				if i < len(s.Values) {
					track(name, s.Values[i])
				}
			}
		case *ast.RangeStmt:
			track(s.Key, s.X)
			track(s.Value, s.X)
		}
		return true
	})
	return out
}

// assignClean judges one assignment's right-hand side for the assigned
// variable.
func (c *cleanliness) assignClean(env *funcEnv, as assignment) bool {
	switch rhs := ast.Unparen(as.rhs).(type) {
	case *ast.TypeAssertExpr:
		return c.exprClean(env, rhs.X)
	case *ast.CallExpr:
		return c.callClean(env, rhs)
	default:
		return c.exprClean(env, as.rhs)
	}
}

// exprClean reports whether the expression's value is locally
// constructed.
func (c *cleanliness) exprClean(env *funcEnv, e ast.Expr) bool {
	if c.depth > maxCleanDepth {
		return false
	}
	c.depth++
	defer func() { c.depth-- }()

	e = ast.Unparen(e)
	tv, ok := env.pkg.Info.Types[e]
	if ok && !c.carriesNodes(tv.Type) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := env.pkg.Info.Uses[x]
		if obj == nil {
			obj = env.pkg.Info.Defs[x]
		}
		switch obj.(type) {
		case *types.Const, *types.Nil:
			return true
		case *types.Var:
			if env.clean[obj] {
				return true
			}
			return c.paramClean(obj)
		}
		return false
	case *ast.SelectorExpr:
		if sel := env.pkg.Info.Selections[x]; sel != nil {
			return c.exprClean(env, x.X)
		}
		// Qualified identifier: package-level values of trusted packages
		// are clean by definition.
		obj := env.pkg.Info.Uses[x.Sel]
		return obj != nil && c.a.trustedPkg(objPkgPath(obj))
	case *ast.CallExpr:
		return c.callClean(env, x)
	case *ast.UnaryExpr:
		return c.exprClean(env, x.X)
	case *ast.StarExpr:
		return c.exprClean(env, x.X)
	case *ast.IndexExpr:
		return c.exprClean(env, x.X)
	case *ast.SliceExpr:
		return c.exprClean(env, x.X)
	case *ast.TypeAssertExpr:
		return c.exprClean(env, x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if !c.exprClean(env, el) {
				return false
			}
		}
		return true
	}
	return false
}

// callClean judges the value(s) produced by a call expression.
func (c *cleanliness) callClean(env *funcEnv, call *ast.CallExpr) bool {
	callee := calleeOf(env.pkg.Info, call)
	if callee == nil {
		return false
	}
	switch obj := callee.(type) {
	case *types.TypeName:
		// Conversion: as clean as its operand.
		return len(call.Args) == 1 && c.exprClean(env, call.Args[0])
	case *types.Builtin:
		switch obj.Name() {
		case "new", "make":
			return true
		case "append":
			for _, arg := range call.Args {
				if !c.exprClean(env, arg) {
					return false
				}
			}
			return true
		}
		return false
	case *types.Func:
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			// Method call: the result is as trustworthy as its receiver.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && env.pkg.Info.Selections[sel] != nil {
				return c.exprClean(env, sel.X)
			}
			return false
		}
		path := objPkgPath(obj)
		if c.a.trustedPkg(path) {
			return true
		}
		if path == "" || !c.inModule(path) {
			// Non-module functions cannot produce module node types; if the
			// static type says otherwise (interfaces), stay conservative.
			return !c.resultCarriesNodes(obj)
		}
		return c.fnClean(obj)
	}
	return false
}

func (c *cleanliness) inModule(path string) bool {
	mod := c.a.prog.ModulePath
	return path == mod || len(path) > len(mod) && path[:len(mod)+1] == mod+"/"
}

func (c *cleanliness) resultCarriesNodes(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if c.carriesNodes(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// fnClean reports whether every node-carrying result of every return
// statement of the function is clean.
func (c *cleanliness) fnClean(obj types.Object) bool {
	switch c.fn[obj] {
	case cleanV:
		return true
	case dirtyV, pending:
		return false
	}
	c.fn[obj] = pending
	site := c.a.prog.declOf(obj)
	res := false
	if site != nil && site.decl.Body != nil {
		res = c.returnsClean(site)
	}
	if res {
		c.fn[obj] = cleanV
	} else {
		c.fn[obj] = dirtyV
	}
	return res
}

func (c *cleanliness) returnsClean(site *declSite) bool {
	sig, ok := site.pkg.Info.Defs[site.decl.Name].Type().(*types.Signature)
	if !ok {
		return false
	}
	env := c.funcEnv(site.pkg, site.decl)
	clean := true
	forReturns(site.decl.Body, func(ret *ast.ReturnStmt) {
		if !clean {
			return
		}
		if len(ret.Results) == 0 {
			// Naked return: named results are judged like locals.
			for i := 0; i < sig.Results().Len(); i++ {
				rv := sig.Results().At(i)
				if c.carriesNodes(rv.Type()) && !env.clean[rv] {
					clean = false
				}
			}
			return
		}
		if len(ret.Results) == 1 && sig.Results().Len() > 1 {
			// return f() forwarding: clean iff the inner call is.
			if !c.exprClean(env, ret.Results[0]) {
				clean = false
			}
			return
		}
		for i, r := range ret.Results {
			if i < sig.Results().Len() && c.carriesNodes(sig.Results().At(i).Type()) && !c.exprClean(env, r) {
				clean = false
			}
		}
	})
	return clean
}

// forReturns visits the return statements belonging to the body itself,
// not to nested function literals.
func forReturns(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			fn(s)
		}
		return true
	})
}

// paramClean reports whether every call site in the loaded program passes
// a clean value for this parameter (or receiver).
func (c *cleanliness) paramClean(obj types.Object) bool {
	switch c.param[obj] {
	case cleanV:
		return true
	case dirtyV, pending:
		return false
	}
	ps := c.a.prog.paramOf(obj)
	if ps == nil {
		rs := c.a.prog.recvOf(obj)
		if rs == nil {
			return false
		}
		ps = rs
	}
	c.param[obj] = pending
	sites := c.a.prog.callsOf(ps.fn)
	res := len(sites) > 0
	for _, site := range sites {
		if !c.argClean(site, ps.index) {
			res = false
			break
		}
	}
	if res {
		c.param[obj] = cleanV
	} else {
		c.param[obj] = dirtyV
	}
	return res
}

// argClean judges the argument (index >= 0) or receiver (index == -1) of
// one call site, in the caller's environment.
func (c *cleanliness) argClean(site *callSite, index int) bool {
	fd := enclosingDecl(site.pkg, site.call.Pos())
	var env *funcEnv
	if fd != nil {
		env = c.funcEnv(site.pkg, fd)
	} else {
		env = &funcEnv{pkg: site.pkg, clean: map[types.Object]bool{}}
	}
	if index == -1 {
		sel, ok := ast.Unparen(site.call.Fun).(*ast.SelectorExpr)
		if !ok || site.pkg.Info.Selections[sel] == nil {
			return false
		}
		return c.exprClean(env, sel.X)
	}
	if index >= len(site.call.Args) {
		return false
	}
	return c.exprClean(env, site.call.Args[index])
}

// chainDirty reports whether the expression's own base is an unclean
// xmltree value — in which case the inner link of the chain is (or will
// be) flagged and flagging this one too would be noise.
func (c *cleanliness) chainDirty(env *funcEnv, e ast.Expr) bool {
	xmltreePath := c.a.internalPath("xmltree")
	inner := func(x ast.Expr) bool {
		tv, ok := env.pkg.Info.Types[x]
		if ok && typeFromPkg(tv.Type, xmltreePath) && !c.exprClean(env, x) {
			return true
		}
		return c.chainDirty(env, x)
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && env.pkg.Info.Selections[sel] != nil {
			return inner(sel.X)
		}
	case *ast.SelectorExpr:
		if env.pkg.Info.Selections[x] != nil {
			return inner(x.X)
		}
	case *ast.IndexExpr:
		return inner(x.X)
	case *ast.StarExpr:
		return inner(x.X)
	case *ast.UnaryExpr:
		return inner(x.X)
	}
	return false
}

// enclosingDecl finds the function declaration containing pos.
func enclosingDecl(pkg *Pkg, pos token.Pos) *ast.FuncDecl {
	for _, file := range pkg.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
