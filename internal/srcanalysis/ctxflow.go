package srcanalysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowPass proves the request context actually flows along the hot
// path. The audit log ties every mediated operation to a request ID
// carried in a context.Context; a dropped context silently severs that
// tie while the code still compiles. Three rules:
//
//   - ctx-unused: a function declares a named context parameter and never
//     reads it — the context dies there, and so does the request identity.
//   - ctx-background: a function that already has a context parameter
//     calls context.Background() or context.TODO() — a fresh root context
//     where the caller's should have been forwarded.
//   - ctx-shim: when both F and FCtx exist, the exported non-context
//     variant F must be exactly a one-statement forwarder to FCtx with
//     context.Background(); any extra logic in F means the two paths can
//     drift and the context-free one becomes the unaudited back door.
var ctxflowPass = &pass{
	name: "ctxflow",
	doc:  "request contexts must be accepted and forwarded on the hot path",
	run:  runCtxflow,
}

func runCtxflow(a *analysis) {
	for _, pkg := range a.targets {
		inspectFuncs(pkg, func(fd *ast.FuncDecl) {
			checkCtxParams(a, pkg, fd)
		})
		checkCtxShims(a, pkg)
	}
}

// ctxParams returns the declared context.Context parameter objects of the
// function (named ones only; blank and unnamed parameters cannot be
// forwarded and are skipped by ctx-unused but still arm ctx-background).
func ctxParams(pkg *Pkg, fd *ast.FuncDecl) (named []*ast.Ident, hasAny bool) {
	for _, field := range fd.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok || !typeFromPkg(tv.Type, "context", "Context") {
			continue
		}
		hasAny = true
		for _, name := range field.Names {
			if name.Name != "_" {
				named = append(named, name)
			}
		}
	}
	return named, hasAny
}

func checkCtxParams(a *analysis, pkg *Pkg, fd *ast.FuncDecl) {
	named, hasAny := ctxParams(pkg, fd)
	for _, name := range named {
		obj := pkg.Info.Defs[name]
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			a.reportf(pkg, name.Pos(), "ctx-unused", name.Name,
				"%s accepts a context but never uses it; the request identity is lost here", fd.Name.Name)
		}
	}
	if !hasAny {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pkg.Info, call)
		if objPkgPath(callee) == "context" && (callee.Name() == "Background" || callee.Name() == "TODO") {
			a.reportf(pkg, call.Pos(), "ctx-background", "context."+callee.Name(),
				"context.%s inside a function that already has a context parameter; forward the parameter instead", callee.Name())
		}
		return true
	})
}

// checkCtxShims enforces the F / FCtx pairing convention.
func checkCtxShims(a *analysis, pkg *Pkg) {
	decls := make(map[string]*ast.FuncDecl)
	objs := make(map[string]types.Object)
	key := func(fd *ast.FuncDecl) string {
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
		}
		return fd.Name.Name
	}
	inspectFuncs(pkg, func(fd *ast.FuncDecl) {
		decls[key(fd)] = fd
		objs[key(fd)] = pkg.Info.Defs[fd.Name]
	})
	for k, fd := range decls {
		if !fd.Name.IsExported() || strings.HasSuffix(fd.Name.Name, "Ctx") {
			continue
		}
		ctxObj, ok := objs[k+"Ctx"]
		if !ok || ctxObj == nil {
			continue
		}
		if !isThinShim(pkg, fd, ctxObj) {
			a.reportf(pkg, fd.Pos(), "ctx-shim", fd.Name.Name,
				"%s has a %sCtx variant but is not a one-statement forwarder to it; the context-free path must not carry its own logic",
				fd.Name.Name, fd.Name.Name)
		}
	}
}

// isThinShim reports whether fd's body is exactly one statement calling
// ctxObj with a fresh root context as the first argument.
func isThinShim(pkg *Pkg, fd *ast.FuncDecl, ctxObj types.Object) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(s.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	}
	if call == nil || calleeOf(pkg.Info, call) != ctxObj || len(call.Args) == 0 {
		return false
	}
	root, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := calleeOf(pkg.Info, root)
	return objPkgPath(callee) == "context" && (callee.Name() == "Background" || callee.Name() == "TODO")
}
