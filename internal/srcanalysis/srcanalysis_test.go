package srcanalysis

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"securexml/internal/findings"
)

// The testdata packages are loaded once, alongside the real module, under
// synthetic import paths: type-checking the whole module with the source
// importer dominates the test's cost, so every test shares one Program.
const testPkgPrefix = "vettest/"

var (
	progOnce   sync.Once
	sharedProg *Program
	sharedErr  error
)

func loadShared(t *testing.T) *Program {
	t.Helper()
	progOnce.Do(func() {
		modDir, err := filepath.Abs("../..")
		if err != nil {
			sharedErr = err
			return
		}
		extra := make(map[string]string)
		for _, pass := range Passes() {
			for _, kind := range []string{"bad", "good"} {
				dir, err := filepath.Abs(filepath.Join("testdata", "src", pass, kind))
				if err != nil {
					sharedErr = err
					return
				}
				extra[testPkgPrefix+pass+"/"+kind] = dir
			}
		}
		sharedProg, sharedErr = Load(Config{ModuleDir: modDir, ExtraDirs: extra})
	})
	if sharedErr != nil {
		t.Fatalf("loading module + testdata: %v", sharedErr)
	}
	return sharedProg
}

// runPass analyzes one testdata package with one pass.
func runPass(t *testing.T, pass, pkg string, base *Baseline) *findings.Report {
	t.Helper()
	rep, err := loadShared(t).Run(Config{Packages: []string{pkg}, Passes: []string{pass}}, base)
	if err != nil {
		t.Fatalf("running %s on %s: %v", pass, pkg, err)
	}
	return rep
}

// triples renders findings as sorted pass/code/key triples for comparison.
func triples(rep *findings.Report) []string {
	out := make([]string, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		out = append(out, f.Pass+"/"+f.Code+"/"+f.Key)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSeededViolations proves each pass flags its seeded bad package with
// exactly the expected findings, and that each finding is an error (so
// make vet exits non-zero on any of them).
func TestSeededViolations(t *testing.T) {
	cases := []struct {
		pass string
		want []string
	}{
		{"viewbypass", []string{
			"viewbypass/raw-node-access/doc.XML",
			"viewbypass/unsecured-write/baseline.Execute",
			"viewbypass/unsecured-write/xupdate.Execute",
		}},
		{"privconst", []string{
			"privconst/privilege-conversion/policy.Privilege(n)",
			"privconst/privilege-literal/3",
		}},
		{"obslabel", []string{
			"obslabel/nonconstant-label/fmt.Sprintf(\"stage_%s\", name)",
			"obslabel/nonconstant-label/fmt.Sprintf(\"u-%s\", user)",
			"obslabel/nonconstant-label/verdict(v)",
		}},
		{"ctxflow", []string{
			"ctxflow/ctx-background/context.Background",
			"ctxflow/ctx-shim/Fix",
			"ctxflow/ctx-shim/Handle",
			"ctxflow/ctx-unused/ctx",
		}},
		{"lockguard", []string{
			"lockguard/guard-escape/b.items",
			"lockguard/unguarded-access/b.items",
			"lockguard/unguarded-access/c.n",
			"lockguard/unguarded-access/c.total",
		}},
		{"cowdiscipline", []string{
			"cowdiscipline/shared-mutation/append(rs, 1)",
			"cowdiscipline/shared-mutation/delete(m, id)",
			"cowdiscipline/shared-mutation/m[id]",
		}},
		{"snapshotimmut", []string{
			"snapshotimmut/snapshot-mutator/v.Doc.Remove",
			"snapshotimmut/snapshot-write/v.Restricted",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.pass, func(t *testing.T) {
			rep := runPass(t, tc.pass, testPkgPrefix+tc.pass+"/bad", nil)
			if got := triples(rep); !equalStrings(got, tc.want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, tc.want)
			}
			if rep.ExitCode() != 2 {
				t.Errorf("exit code = %d, want 2 (errors)", rep.ExitCode())
			}
			for _, f := range rep.Findings {
				if f.Severity != findings.Error {
					t.Errorf("%s/%s at %s: severity %s, want error", f.Pass, f.Code, f.Pos, f.Severity)
				}
				if f.Pos == "" || f.Function == "" && f.Code != "privilege-literal" {
					t.Errorf("%s/%s: missing position or function anchor: %+v", f.Pass, f.Code, f)
				}
			}
		})
	}
}

// TestConformingPackagesClean proves the conforming twin of each bad
// package produces no findings: constructors, mediated sessions, constant
// labels and forwarded contexts all pass.
func TestConformingPackagesClean(t *testing.T) {
	for _, pass := range Passes() {
		t.Run(pass, func(t *testing.T) {
			rep := runPass(t, pass, testPkgPrefix+pass+"/good", nil)
			if len(rep.Findings) != 0 {
				t.Errorf("conforming package flagged: %v", triples(rep))
			}
			if rep.ExitCode() != 0 {
				t.Errorf("exit code = %d, want 0", rep.ExitCode())
			}
		})
	}
}

// TestBaselineSuppression proves a baseline entry suppresses exactly the
// finding it names — same pass, code, file, function and key — and
// nothing else, and that an entry matching nothing becomes a stale-entry
// error.
func TestBaselineSuppression(t *testing.T) {
	badFile := "internal/srcanalysis/testdata/src/viewbypass/bad/bad.go"
	base := &Baseline{Entries: []BaselineEntry{{
		Pass: "viewbypass", Code: "unsecured-write",
		File: badFile, Function: "Compare", Key: "baseline.Execute",
		Justification: "seeded covert-channel comparison",
	}}}
	rep := runPass(t, "viewbypass", testPkgPrefix+"viewbypass/bad", base)
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", rep.Suppressed)
	}
	want := []string{
		"viewbypass/raw-node-access/doc.XML",
		"viewbypass/unsecured-write/xupdate.Execute",
	}
	if got := triples(rep); !equalStrings(got, want) {
		t.Errorf("surviving findings mismatch\n got: %v\nwant: %v", got, want)
	}

	stale := &Baseline{Entries: []BaselineEntry{{
		Pass: "viewbypass", Code: "unsecured-write",
		File: badFile, Function: "NoSuchFunc", Key: "xupdate.ExecuteAll",
		Justification: "matches nothing",
	}}}
	rep = runPass(t, "viewbypass", testPkgPrefix+"viewbypass/bad", stale)
	if rep.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", rep.Suppressed)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Pass == "baseline" && f.Code == "stale-entry" {
			found = true
			if f.Severity != findings.Error {
				t.Errorf("stale-entry severity = %s, want error", f.Severity)
			}
		}
	}
	if !found {
		t.Errorf("stale baseline entry not reported: %v", triples(rep))
	}
}

// TestRepoSelfScan proves the repository itself passes all seven passes
// under the committed baseline: no findings, and every baseline entry
// still matches something (no stale entries). This is the same invariant
// make vet enforces in CI.
func TestRepoSelfScan(t *testing.T) {
	modDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(filepath.Join(modDir, "vet-baseline.json"))
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	rep, err := loadShared(t).Run(Config{}, base)
	if err != nil {
		t.Fatalf("self-scan: %v", err)
	}
	if len(rep.Findings) != 0 {
		for _, f := range rep.Findings {
			t.Errorf("unexpected finding: %s/%s %s %s key=%q", f.Pass, f.Code, f.Pos, f.Message, f.Key)
		}
	}
	// The committed baseline's 5 entries cover exactly the 6 intentionally
	// unsecured call sites (the two covertchannel probes share one entry):
	// the B3 write-floor pair, the B15 differential mirror, and the §2.2
	// covert-channel demos.
	if rep.Suppressed != 6 {
		t.Errorf("suppressed = %d, want 6 (update this with vet-baseline.json)", rep.Suppressed)
	}
	if rep.ExitCode() != 0 {
		t.Errorf("exit code = %d, want 0", rep.ExitCode())
	}
}

// TestTrustedPackageClassification pins the viewbypass trust boundary:
// every enforcement-core package — including internal/rewrite, whose
// static-rewriting tier reads raw source documents and re-imposes the
// labels itself — holds the raw-node license, while the user-facing
// packages and everything outside the module do not.
func TestTrustedPackageClassification(t *testing.T) {
	a := &analysis{prog: &Program{ModulePath: "securexml"}}
	trusted := []string{
		"securexml/internal/xmltree",
		"securexml/internal/xpath",
		"securexml/internal/view",
		"securexml/internal/policy",
		"securexml/internal/qfilter",
		"securexml/internal/rewrite",
		"securexml/internal/core",
	}
	for _, path := range trusted {
		if !a.trustedPkg(path) {
			t.Errorf("trustedPkg(%q) = false, want true", path)
		}
	}
	untrusted := []string{
		"securexml/internal/shell",
		"securexml/internal/server",
		"securexml/internal/shell/subpkg",
		"securexml/cmd/xmlsec-bench",
		"fmt",
		"vettest/viewbypass/bad",
	}
	for _, path := range untrusted {
		if a.trustedPkg(path) {
			t.Errorf("trustedPkg(%q) = true, want false", path)
		}
	}
}

// TestBaselineValidation proves malformed baselines are rejected.
func TestBaselineValidation(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err != nil {
		t.Errorf("missing baseline file should be an empty baseline, got %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"entries":[{"pass":"viewbypass","code":"x","file":"f"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("entry without justification should be rejected")
	}
}

// TestUnknownPassAndPackage proves selection errors surface instead of
// silently analyzing nothing.
func TestUnknownPassAndPackage(t *testing.T) {
	p := loadShared(t)
	if _, err := p.Run(Config{Passes: []string{"nosuchpass"}}, nil); err == nil {
		t.Error("unknown pass should be an error")
	}
	if _, err := p.Run(Config{Packages: []string{"securexml/internal/nosuchpkg"}}, nil); err == nil {
		t.Error("unknown package should be an error")
	}
}
