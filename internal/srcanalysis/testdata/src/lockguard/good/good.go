// Package lockguardgood is the conforming twin of lockguardbad: guarded
// fields are touched under the lock or behind a "callers hold"
// annotation, constructors initialize fresh objects lock-free, values are
// copied out of critical sections, and goroutines lock for themselves.
package lockguardgood

import "sync"

// Store keeps immutable configuration above the guarded group.
type Store struct {
	name string // immutable after construction, set before sharing

	mu    sync.Mutex
	items map[string]int
	count int
}

// NewStore initializes guarded fields on a fresh, not-yet-shared object:
// no lock needed before the value escapes.
func NewStore(name string) *Store {
	s := &Store{name: name}
	s.items = make(map[string]int)
	return s
}

// Add records a key under the lock.
func (s *Store) Add(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[key]++
	s.count++
}

// size reports the entry count. Callers hold s.mu.
func (s *Store) size() int { return s.count }

// Len locks and delegates to the annotated helper.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size()
}

// Copy hands out an independent copy, not the guarded map.
func (s *Store) Copy() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.items))
	for k, v := range s.items {
		out[k] = v
	}
	return out
}

// Tally coordinates goroutines over a var-block mutex: total is guarded
// by adjacency, and every goroutine takes the lock itself.
func Tally(keys []string) int {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
	)
	for range keys {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}
