// Package lockguardbad seeds the lockguard violations: guarded fields
// touched without their mutex, a guarded slice escaping its critical
// section, and a goroutine capturing guarded state past the unlock.
package lockguardbad

import "sync"

// Counter demonstrates both guard spellings: n is guarded by adjacency to
// mu, total by an explicit annotation after the blank line.
type Counter struct {
	mu sync.Mutex
	n  int

	// total is the running sum, guarded by mu.
	total int
}

// Bump touches both guarded fields without taking the lock.
func (c *Counter) Bump(v int) {
	c.n++
	c.total += v
}

// Box holds a guarded slice.
type Box struct {
	mu    sync.Mutex
	items []string
}

// Items takes the lock but returns the guarded slice itself: the caller
// keeps an alias the mutex no longer protects.
func (b *Box) Items() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.items
}

// Spin captures guarded state in a goroutine that outlives the critical
// section: the Lock below is released before the goroutine runs.
func (b *Box) Spin() {
	b.mu.Lock()
	go func() {
		b.items = nil
	}()
	b.mu.Unlock()
}
