// Package privconstbad seeds the privconst violations: fabricated
// privilege values outside axiom 14's named constant set.
package privconstbad

import "securexml/internal/policy"

// Forge converts an arbitrary integer into a privilege.
func Forge(n int) policy.Privilege {
	return policy.Privilege(n)
}

// Raw is an integer literal silently typed as a privilege.
var Raw policy.Privilege = 3
