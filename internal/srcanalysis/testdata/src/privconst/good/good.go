// Package privconstgood shows the conforming privilege sources: the named
// constants and the parser.
package privconstgood

import "securexml/internal/policy"

// Named uses only the axiom-14 constants.
func Named() []policy.Privilege {
	return []policy.Privilege{policy.Read, policy.Update}
}

// Parsed goes through the validating parser, which rejects anything
// outside the named set.
func Parsed(s string) (policy.Privilege, error) {
	return policy.ParsePrivilege(s)
}
