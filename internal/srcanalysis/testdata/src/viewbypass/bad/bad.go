// Package viewbypassbad seeds the viewbypass violations: unsecured
// executor calls and raw node access on documents of unknown provenance.
package viewbypassbad

import (
	"securexml/internal/baseline"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// Probe applies an operation directly to the source document (axioms
// 2–9), skipping the view-evaluated checks of axioms 18–25.
func Probe(doc *xmltree.Document, op *xupdate.Op) (*xupdate.Result, error) {
	return xupdate.Execute(doc, op, nil)
}

// Peek serializes a document of unknown provenance: nothing proves it is
// the caller's own view.
func Peek(doc *xmltree.Document) string {
	return doc.XML()
}

// Compare runs the SQL-semantics executor, the §2.2 covert channel.
func Compare(doc *xmltree.Document, h *subject.Hierarchy, pol *policy.Policy, op *xupdate.Op) (*xupdate.Result, error) {
	return baseline.Execute(doc, h, pol, "user", op)
}
