// Package viewbypassgood shows the conforming shapes the viewbypass pass
// must accept: locally constructed documents and core-mediated access.
package viewbypassgood

import (
	"securexml/internal/core"
	"securexml/internal/xmltree"
)

// Local constructs and reads its own document: local construction is a
// package's own data, not a bypass.
func Local() (string, error) {
	d, err := xmltree.ParseString("<a><b/></a>", xmltree.ParseOptions{})
	if err != nil {
		return "", err
	}
	return d.XML(), nil
}

// Mediated goes through the session API: reads come from the axiom 15–17
// view.
func Mediated(db *core.Database, user, path string) ([]core.Result, error) {
	s, err := db.Session(user)
	if err != nil {
		return nil, err
	}
	return s.Query(path)
}

// render's parameter is clean because its only call site passes a locally
// constructed document.
func render(d *xmltree.Document) string { return d.CompactXML() }

// Indirect hands a local document to a helper.
func Indirect() (string, error) {
	d, err := xmltree.ParseString("<x/>", xmltree.ParseOptions{})
	if err != nil {
		return "", err
	}
	return render(d), nil
}
