// Package obslabelbad seeds the obslabel violations: dynamic strings
// interpolated into metric labels and stage names.
package obslabelbad

import (
	"fmt"

	"securexml/internal/obs"
)

// Leak interpolates a runtime value into a metric label: whatever the
// view redacted could reappear on /metrics.
func Leak(user string) {
	obs.Default().Counter("vettest_requests_total", "user", fmt.Sprintf("u-%s", user)).Inc()
}

// StageLeak builds a stage name dynamically.
func StageLeak(name string) {
	obs.Stage(fmt.Sprintf("stage_%s", name))
}

// RepairLeak labels a repair counter with a runtime-computed verdict
// instead of one literal counter per outcome.
func RepairLeak(v int) {
	obs.Default().Counter("vettest_repairs_total", "outcome", verdict(v)).Inc()
}

func verdict(v int) string {
	return fmt.Sprintf("v%d", v)
}
